package ccsched

import (
	"math/big"
	"testing"
)

func apiInstance() *Instance {
	return &Instance{
		P:     []int64{7, 4, 9, 3, 5},
		Class: []int{0, 0, 1, 2, 1},
		M:     2,
		Slots: 2,
	}
}

func TestFacadeRoundTrip(t *testing.T) {
	in := apiInstance()
	parsed, err := ParseInstance(FormatInstance(in))
	if err != nil {
		t.Fatal(err)
	}
	if parsed.N() != in.N() || parsed.M != in.M {
		t.Error("facade round trip mismatch")
	}
	if err := CheckFeasible(in); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeApproxAll(t *testing.T) {
	in := apiInstance()
	s, err := ApproxSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Compact.Validate(in); err != nil {
		t.Error(err)
	}
	p, err := ApproxPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Schedule.Validate(in); err != nil {
		t.Error(err)
	}
	np, err := ApproxNonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := np.Schedule.Validate(in); err != nil {
		t.Error(err)
	}
	// Relaxation ordering on the same instance.
	if s.Makespan().Cmp(core2Rat(np.Makespan(in))) > 0 {
		// Splittable approx can exceed non-preemptive approx only through
		// approximation slack, but both stay within 2x/7/3x of their LBs,
		// so we only sanity-check against gross inversions.
		lb, _ := LowerBound(in, Splittable)
		if s.Makespan().Cmp(new(big.Rat).Mul(lb, big.NewRat(2, 1))) > 0 {
			t.Error("splittable approx exceeds its guarantee")
		}
	}
}

func core2Rat(v int64) *big.Rat { return new(big.Rat).SetInt64(v) }

func TestFacadeGenerate(t *testing.T) {
	for _, fam := range GeneratorFamilies() {
		in, err := Generate(fam, GeneratorConfig{N: 20, Classes: 4, Machines: 3, Slots: 2, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if err := in.Validate(); err != nil {
			t.Errorf("%s: %v", fam, err)
		}
	}
	if _, err := Generate("bogus", GeneratorConfig{}); err == nil {
		t.Error("want unknown family error")
	}
}

func TestFacadeExact(t *testing.T) {
	in := apiInstance()
	sched, opt, err := ExactNonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Validate(in); err != nil {
		t.Error(err)
	}
	if sched.Makespan(in) != opt {
		t.Error("schedule does not match reported optimum")
	}
	splitOpt, err := ExactSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if splitOpt.Cmp(core2Rat(opt)) > 0 {
		t.Error("splittable optimum exceeds non-preemptive optimum")
	}
	lb, err := LowerBound(in, Splittable)
	if err != nil {
		t.Fatal(err)
	}
	if splitOpt.Cmp(lb) < 0 {
		t.Error("splittable optimum below certified lower bound")
	}
}

func TestFacadePTAS(t *testing.T) {
	in := apiInstance()
	res, err := PTASNonPreemptive(in, PTASOptions{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Error(err)
	}
	_, opt, err := ExactNonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan(in); 3*got > 7*opt {
		t.Errorf("PTAS result %d above 7/3 x OPT %d", got, opt)
	}
}
