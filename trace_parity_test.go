// Trace inertness: enabling Options.Trace must not change any output —
// not the makespan, not the certified lower bound, not the schedule, not a
// single deterministic report counter. The span collector only observes; a
// divergence here means tracing leaked into control flow. The differential
// below runs traced and untraced solves across every generator family,
// all three variants, and both serial and parallel engines, and requires
// the normalized results to be bit-identical.
package ccsched_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"ccsched"
)

// normalizedJSON serializes a result with the trace and the run-to-run
// nondeterministic diagnostics removed (speculative-probe and intra-engine
// counters vary with scheduling regardless of tracing), leaving exactly the
// deterministic surface: makespan, lower bound, tier, schedules, accepted
// guess, probe count, N-fold parameters.
func normalizedJSON(t *testing.T, res *ccsched.Result) []byte {
	t.Helper()
	r := *res
	r.Trace = nil
	r.Report.BBNodes = 0
	r.Report.BBPivots = 0
	r.Report.WarmHits = 0
	r.Report.CacheHits = 0
	r.Report.BrickScanWorkers = 0
	r.Report.BBSubtreeSteals = 0
	r.Report.BatchedLPSolves = 0
	data, err := json.Marshal(&r)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestTraceParityAllFamilies is the tracing differential: for every
// generator family × variant × EngineParallelism ∈ {1, 4}, a traced solve
// must be bit-identical to the untraced solve of the same instance, and the
// traced result must actually carry a root span.
func TestTraceParityAllFamilies(t *testing.T) {
	for _, family := range ccsched.GeneratorFamilies() {
		// Per-variant sizes and node budgets mirror variantCases: each PTAS
		// solve stays well under a second, and the preemptive scheme (whose
		// configuration sets grow fastest) gets the smallest instance.
		for _, vc := range []struct {
			variant  ccsched.Variant
			n, cls   int
			maxNodes int
		}{
			{ccsched.Splittable, 16, 4, 300},
			{ccsched.NonPreemptive, 12, 4, 300},
			{ccsched.Preemptive, 8, 2, 150},
		} {
			variant := vc.variant
			in, err := ccsched.Generate(family, ccsched.GeneratorConfig{
				N: vc.n, Classes: vc.cls, Machines: 3, Slots: 2, PMax: 100, Seed: 7,
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, engPar := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/%v/engpar=%d", family, variant, engPar), func(t *testing.T) {
					// ε = 1 keeps the guess grid (and therefore the runtime)
					// small without skipping any pipeline stage; the race job
					// runs this whole matrix.
					opts := ccsched.Options{
						Variant: variant, Tier: ccsched.TierPTAS, Epsilon: 1,
						MaxNodes: vc.maxNodes, Parallelism: 1, EngineParallelism: engPar, NoCache: true,
					}
					plain, err := ccsched.Solve(context.Background(), in, opts)
					if err != nil {
						t.Fatalf("untraced: %v", err)
					}
					opts.Trace = true
					traced, err := ccsched.Solve(context.Background(), in, opts)
					if err != nil {
						t.Fatalf("traced: %v", err)
					}
					if plain.Trace != nil {
						t.Fatal("untraced solve carries a trace")
					}
					if traced.Trace == nil || len(traced.Trace.Spans) == 0 {
						t.Fatal("traced solve has no spans")
					}
					if traced.Trace.Spans[0].Name != "solve" || traced.Trace.Spans[0].Parent != -1 {
						t.Fatalf("root span %+v, want solve/-1", traced.Trace.Spans[0])
					}
					a, b := normalizedJSON(t, plain), normalizedJSON(t, traced)
					if !bytes.Equal(a, b) {
						t.Errorf("traced result diverges\nuntraced: %s\ntraced:   %s", a, b)
					}
				})
			}
		}
	}
}
