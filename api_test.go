package ccsched

import (
	"errors"
	"math/big"
	"sync"
	"testing"
)

// TestExactSolversEnforceLimits checks the documented size limits are
// enforced with the ErrTooLarge sentinel instead of running forever.
func TestExactSolversEnforceLimits(t *testing.T) {
	big_ := &Instance{M: 2, Slots: 2}
	for j := 0; j < 30; j++ {
		big_.P = append(big_.P, int64(j+1))
		big_.Class = append(big_.Class, j%3)
	}
	if _, _, err := ExactNonPreemptive(big_); !errors.Is(err, ErrTooLarge) {
		t.Errorf("ExactNonPreemptive(30 jobs) = %v, want ErrTooLarge", err)
	}
	wide := &Instance{M: 7, Slots: 2}
	for j := 0; j < 8; j++ {
		wide.P = append(wide.P, 5)
		wide.Class = append(wide.Class, j)
	}
	if _, err := ExactSplittable(wide); !errors.Is(err, ErrTooLarge) {
		t.Errorf("ExactSplittable(C=8, m=7) = %v, want ErrTooLarge", err)
	}
}

// TestRatConvertersAtBoundary builds a schedule by hand through the public
// converters and validates it with exact arithmetic.
func TestRatConvertersAtBoundary(t *testing.T) {
	in := &Instance{P: []int64{5}, Class: []int{0}, M: 2, Slots: 1}
	s := &SplitSchedule{Pieces: []SplitPiece{
		{Job: 0, Machine: 0, Size: RatValue(5, 2)},
		{Job: 0, Machine: 1, Size: RatFromBig(big.NewRat(5, 2))},
	}}
	if err := s.Validate(in); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if got := s.Makespan(); got.Cmp(big.NewRat(5, 2)) != 0 {
		t.Errorf("Makespan() = %s, want 5/2", got.RatString())
	}
}

// TestConcurrentSolversWithOptions runs solvers with different explicit
// limits in parallel; with the former package-level global this was a data
// race (caught under -race).
func TestConcurrentSolversWithOptions(t *testing.T) {
	in, err := Generate("uniform", GeneratorConfig{
		N: 50, Classes: 6, Machines: 8, Slots: 2, PMax: 100, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		limit := int64(1)
		if i%2 == 0 {
			limit = 1 << 16
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := ApproxSplittableOpts(in, ApproxOptions{ExplicitMachineLimit: limit})
			if err != nil {
				t.Error(err)
				return
			}
			if err := res.Compact.Validate(in); err != nil {
				t.Error(err)
			}
		}()
	}
	wg.Wait()
}
