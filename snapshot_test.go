package ccsched

// Crash-recovery tests for durable sessions. The contract under test is
// two-sided: a clean snapshot restores *warm* (the next solve answers its
// probes from the restored verdicts and seeds), while a damaged one —
// truncated, bit-flipped, version-bumped, digest-spliced — either fails the
// restore outright (envelope damage) or degrades the damaged section to a
// cold solve (warm-section damage). In every surviving case the restored
// session's makespan must be bit-identical to a cold solve of the same
// instance; no corruption may ever surface as a wrong answer.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"
)

// snapshotTestSession builds a small session, runs it through a couple of
// delta rounds so it accumulates warm state, and returns it solved.
func snapshotTestSession(t *testing.T, opts Options) *Session {
	t.Helper()
	in, err := Generate("uniform", GeneratorConfig{
		N: 60, Classes: 8, Machines: 5, Slots: 2, PMax: 1000, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Solve(ctx); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 2; round++ {
		ids := sess.JobIDs()
		for i := 0; i < 4; i++ {
			if err := sess.Resize(ids[rng.Intn(len(ids))], 1+rng.Int63n(1000)); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := sess.Solve(ctx); err != nil {
			t.Fatal(err)
		}
	}
	return sess
}

var snapshotTestOpts = Options{Variant: Splittable, Tier: TierPTAS, Epsilon: 1}

// requireColdParity fails unless sess solves to the same makespan as a cold
// solve of its instance with a fresh cache.
func requireColdParity(t *testing.T, sess *Session) *Result {
	t.Helper()
	ctx := context.Background()
	got, err := sess.Solve(ctx)
	if err != nil {
		t.Fatalf("restored session solve: %v", err)
	}
	coldOpts := sess.Options()
	coldOpts.Cache = NewFeasibilityCache()
	want, err := Solve(ctx, sess.Instance(), coldOpts)
	if err != nil {
		t.Fatalf("cold reference solve: %v", err)
	}
	if got.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("restored session makespan %s != cold %s", got.Makespan.RatString(), want.Makespan.RatString())
	}
	return got
}

// TestSessionSnapshotRoundTrip checks the full warm path: snapshot, restore
// in a "new process", re-solve. The restored solve must be bit-identical to
// cold and answer its probes from the restored cache (warm restore), and
// the restored session must keep accepting deltas with intact parity.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	sess := snapshotTestSession(t, snapshotTestOpts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(data)
	if err != nil {
		t.Fatalf("RestoreSession: %v", err)
	}
	if got, want := restored.JobIDs(), sess.JobIDs(); len(got) != len(want) {
		t.Fatalf("restored %d job ids, want %d", len(got), len(want))
	} else {
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("job id %d restored as %d, want %d", i, got[i], want[i])
			}
		}
	}
	res := requireColdParity(t, restored)
	if res.Report.CacheHits == 0 {
		t.Fatalf("restored re-solve answered no probe from the restored cache (report %+v)", res.Report)
	}
	// The restored session must still be a session: deltas apply, ids mint
	// past the snapshot's NextID, and parity holds after mutation.
	newIDs, err := restored.AddJobs([]int64{500}, []int{3})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range restored.JobIDs()[:len(restored.JobIDs())-1] {
		if newIDs[0] == id {
			t.Fatalf("restored session minted duplicate job id %d", newIDs[0])
		}
	}
	requireColdParity(t, restored)
}

// TestSessionSnapshotEncodeFixedPoint checks that encode(decode(encode(s)))
// == encode(decode(s)): once a snapshot has been through one restore, the
// codec is a byte-exact fixed point (deterministic export order, exact
// float round trips).
func TestSessionSnapshotEncodeFixedPoint(t *testing.T) {
	sess := snapshotTestSession(t, snapshotTestOpts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RestoreSession(data)
	if err != nil {
		t.Fatal(err)
	}
	data1, err := r1.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RestoreSession(data1)
	if err != nil {
		t.Fatalf("restore of re-encoded snapshot: %v", err)
	}
	data2, err := r2.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatalf("snapshot re-encode is not a fixed point:\n%s\nvs\n%s", data1, data2)
	}
}

// TestSessionSnapshotVersionBump checks that a snapshot from a different
// schema version is refused outright — the one kind of damage that must not
// restore at all, because nothing in the document can be interpreted.
func TestSessionSnapshotVersionBump(t *testing.T) {
	sess := snapshotTestSession(t, snapshotTestOpts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	doc["version"] = json.RawMessage("999")
	bumped, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreSession(bumped); err == nil {
		t.Fatal("version-bumped snapshot restored; want refusal")
	}
}

// TestSessionSnapshotTruncated checks that prefixes of a valid snapshot
// never panic and never produce a session whose solve disagrees with cold.
func TestSessionSnapshotTruncated(t *testing.T) {
	sess := snapshotTestSession(t, snapshotTestOpts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{0, 1, len(data) / 4, len(data) / 2, len(data) - 1} {
		restored, err := RestoreSession(data[:cut])
		if err != nil {
			continue // refused: fine
		}
		requireColdParity(t, restored)
	}
}

// TestSessionSnapshotCorruptCacheDegradesToCold flips the verdict evidence
// of every restored cache entry (solution cells and ray bits) and checks
// that the re-verification layer drops the damaged entries: the solve still
// succeeds and still matches cold exactly. This is the dropped-never-
// trusted invariant end to end — corrupt warm state costs time, never
// correctness.
func TestSessionSnapshotCorruptCacheDegradesToCold(t *testing.T) {
	sess := snapshotTestSession(t, snapshotTestOpts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Version  int             `json:"version"`
		Options  json.RawMessage `json:"options"`
		Instance json.RawMessage `json:"instance"`
		JobIDs   json.RawMessage `json:"job_ids"`
		NextID   json.RawMessage `json:"next_id"`
		Digest   json.RawMessage `json:"instance_digest"`
		State    json.RawMessage `json:"state,omitempty"`
		Cache    *struct {
			Entries []map[string]json.RawMessage `json:"entries"`
		} `json:"cache,omitempty"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cache == nil || len(doc.Cache.Entries) == 0 {
		t.Fatal("test snapshot carries no cache entries; nothing to corrupt")
	}
	for _, e := range doc.Cache.Entries {
		if x, ok := e["x"]; ok {
			var sol [][]int64
			if err := json.Unmarshal(x, &sol); err != nil {
				t.Fatal(err)
			}
			if len(sol) > 0 && len(sol[0]) > 0 {
				sol[0][0] += 12345 // breaks Check: bounds or balance
			}
			fixed, err := json.Marshal(sol)
			if err != nil {
				t.Fatal(err)
			}
			e["x"] = fixed
		}
		if r, ok := e["ray"]; ok {
			var ray []uint64
			if err := json.Unmarshal(r, &ray); err != nil {
				t.Fatal(err)
			}
			for i := range ray {
				ray[i] = 0 // an all-zero ray certifies nothing
			}
			fixed, err := json.Marshal(ray)
			if err != nil {
				t.Fatal(err)
			}
			e["ray"] = fixed
		}
	}
	corrupt, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(corrupt)
	if err != nil {
		t.Fatalf("corrupt-cache snapshot must still restore (envelope intact): %v", err)
	}
	requireColdParity(t, restored)
}

// TestSessionSnapshotDigestMismatchDropsWarmState edits the instance inside
// the snapshot without updating the digest; the envelope restores but the
// warm sections must be dropped (they were learned on a different
// instance), and the solve must match a cold solve of the edited instance.
func TestSessionSnapshotDigestMismatchDropsWarmState(t *testing.T) {
	sess := snapshotTestSession(t, snapshotTestOpts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	var in Instance
	if err := json.Unmarshal(doc["instance"], &in); err != nil {
		t.Fatal(err)
	}
	in.P[0] += 17
	edited, err := json.Marshal(&in)
	if err != nil {
		t.Fatal(err)
	}
	doc["instance"] = edited
	spliced, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreSession(spliced)
	if err != nil {
		t.Fatalf("digest-mismatched snapshot must still restore the envelope: %v", err)
	}
	res := requireColdParity(t, restored)
	if res.Report.CertHits != 0 {
		t.Fatalf("digest mismatch must drop carried certificates, got %d cert hits", res.Report.CertHits)
	}
}

// TestSessionSnapshotBitFlips flips single bits across a valid snapshot and
// requires: no panic, and any snapshot that does restore solves to the cold
// makespan. Most flips land in JSON syntax or the envelope (refused); some
// land in warm-section payloads (dropped or re-verified away).
func TestSessionSnapshotBitFlips(t *testing.T) {
	sess := snapshotTestSession(t, snapshotTestOpts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		flipped := append([]byte(nil), data...)
		pos := rng.Intn(len(flipped))
		flipped[pos] ^= 1 << uint(rng.Intn(8))
		restored, err := RestoreSession(flipped)
		if err != nil {
			continue
		}
		requireColdParity(t, restored)
	}
}

// TestSessionSnapshotNoCache checks that a NoCache session snapshots and
// restores without a cache section and still solves correctly.
func TestSessionSnapshotNoCache(t *testing.T) {
	opts := snapshotTestOpts
	opts.NoCache = true
	sess := snapshotTestSession(t, opts)
	data, err := sess.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, []byte(`"cache"`)) {
		t.Fatal("NoCache session snapshot contains a cache section")
	}
	restored, err := RestoreSession(data)
	if err != nil {
		t.Fatal(err)
	}
	requireColdParity(t, restored)
}
