// Command benchdiff is the CI perf-regression gate: it compares a `go test
// -bench` run against the committed BENCH_BASELINE.json and fails (exit 1)
// when any gated benchmark regressed beyond the thresholds — by default
// >25% ns/op or >10% allocs/op.
//
// Raw ns/op numbers are not portable across hosts, so the gate normalizes
// by host speed: both the baseline and every run carry a calibration
// measurement (a fixed single-threaded SHA-256 workload benchdiff times
// itself), and ns/op thresholds are scaled by the ratio of the two before
// comparison. Allocation counts are host-independent and compared as is.
// The calibration scale is clamped to [0.25, 4]: a host further than 4×
// from the baseline machine should re-baseline instead.
//
// Usage:
//
//	go test -run '^$' -bench 'E1SplittableApprox$' -benchmem | tee bench.txt
//	go run ./scripts/benchdiff -baseline BENCH_BASELINE.json -in bench.txt
//
// Input may be plain `go test -bench` output or a `go test -json` stream
// (benchmark lines are extracted from the Output events). Multiple runs of
// the same benchmark (-count > 1) are aggregated by minimum, the standard
// noise-robust choice for gating.
//
// Re-baselining (after an intentional perf change, or to adopt a new
// runner class): run the gated benchmarks on the reference machine and
// write the baseline with -update:
//
//	go test -run '^$' -bench 'E1SplittableApprox$|E10PTASTier$|SessionChurn$' \
//	    -benchtime 3x -benchmem | go run ./scripts/benchdiff -update -baseline BENCH_BASELINE.json
//
// Only benchmarks present in the baseline gate the build; extra benchmarks
// in the run are ignored, and baseline entries missing from the run fail
// the gate (so a renamed benchmark cannot silently stop being gated).
package main

import (
	"bufio"
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// baselineFile is the schema of BENCH_BASELINE.json.
type baselineFile struct {
	// Note documents how to re-baseline; informational.
	Note string `json:"note,omitempty"`
	// CalibrationNs is the reference host's calibration time (see
	// calibrate).
	CalibrationNs float64 `json:"calibration_ns"`
	// NumCPU is the reference host's CPU count. Rows that need more CPUs
	// than the comparing host has (an ep=<k> benchmark name component with
	// k beyond NumCPU) are skipped with a logged reason instead of passing
	// vacuously — a 1-CPU runner executes parallel code serially and would
	// otherwise green-light any multi-core regression.
	NumCPU int `json:"num_cpu,omitempty"`
	// Benchmarks maps benchmark names (GOMAXPROCS suffix stripped) to their
	// reference numbers.
	Benchmarks map[string]benchNumbers `json:"benchmarks"`
}

// benchNumbers are the gated per-benchmark metrics.
type benchNumbers struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench` result line.
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+(.*)$`)

// parseBench extracts benchmark results from r (plain or -json stream),
// aggregating duplicates by min ns/op (and its paired allocs).
func parseBench(r io.Reader) (map[string]benchNumbers, error) {
	out := make(map[string]benchNumbers)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "{") {
			var ev struct {
				Output string `json:"Output"`
			}
			if err := json.Unmarshal([]byte(line), &ev); err != nil {
				continue
			}
			line = strings.TrimSuffix(ev.Output, "\n")
		}
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		name := stripProcs(m[1])
		fields := strings.Fields(m[2])
		var ns float64
		var allocs int64
		ok := false
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				ns, ok = v, true
			case "allocs/op":
				allocs = int64(v)
			}
		}
		if !ok {
			continue
		}
		if prev, seen := out[name]; !seen || ns < prev.NsPerOp {
			out[name] = benchNumbers{NsPerOp: ns, AllocsPerOp: allocs}
		}
	}
	return out, sc.Err()
}

// stripProcs removes the trailing -<GOMAXPROCS> suffix Go appends to
// benchmark names.
func stripProcs(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// calibrate times a fixed CPU-bound workload (sequential SHA-256 over 16
// MiB, best of three) to measure this host's single-thread speed. The
// workload has no allocations and no code from the repository, so it moves
// only with the hardware, never with the change under test.
func calibrate() float64 {
	buf := make([]byte, 1<<20)
	for i := range buf {
		buf[i] = byte(uint32(i) * 2654435761)
	}
	best := time.Duration(1<<63 - 1)
	for trial := 0; trial < 3; trial++ {
		start := time.Now()
		h := sha256.New()
		for i := 0; i < 16; i++ {
			h.Write(buf)
		}
		h.Sum(nil)
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return float64(best.Nanoseconds())
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "benchdiff: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		baselinePath = flag.String("baseline", "BENCH_BASELINE.json", "baseline file")
		in           = flag.String("in", "-", "bench output to compare ('-' = stdin)")
		maxNs        = flag.Float64("max-ns-regress", 0.25, "maximum tolerated ns/op regression (fraction)")
		maxAllocs    = flag.Float64("max-allocs-regress", 0.10, "maximum tolerated allocs/op regression (fraction)")
		update       = flag.Bool("update", false, "write the baseline from this run instead of comparing")
		noCal        = flag.Bool("skip-calibration", false, "compare raw ns/op without host-speed normalization")
	)
	flag.Parse()

	var src io.Reader = os.Stdin
	if *in != "-" {
		f, err := os.Open(*in)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		src = f
	}
	run, err := parseBench(src)
	if err != nil {
		fatalf("parsing bench output: %v", err)
	}
	if len(run) == 0 {
		fatalf("no benchmark results found in %s", *in)
	}

	if *update {
		bf := baselineFile{
			Note:          "perf-regression gate reference; re-baseline with: go test -run '^$' -bench <gated> -benchtime 3x -count 2 -benchmem | go run ./scripts/benchdiff -update -baseline BENCH_BASELINE.json",
			CalibrationNs: calibrate(),
			NumCPU:        runtime.NumCPU(),
			Benchmarks:    run,
		}
		data, err := json.MarshalIndent(bf, "", "  ")
		if err != nil {
			fatalf("%v", err)
		}
		if err := os.WriteFile(*baselinePath, append(data, '\n'), 0o644); err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("benchdiff: wrote %s with %d benchmarks (calibration %.0f ns)\n", *baselinePath, len(run), bf.CalibrationNs)
		return
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		fatalf("%v", err)
	}
	var base baselineFile
	if err := json.Unmarshal(data, &base); err != nil {
		fatalf("parsing %s: %v", *baselinePath, err)
	}
	scale := 1.0
	if !*noCal && base.CalibrationNs > 0 {
		scale = calibrate() / base.CalibrationNs
		if scale < 0.25 {
			scale = 0.25
		}
		if scale > 4 {
			scale = 4
		}
	}
	fmt.Printf("benchdiff: host-speed scale %.3f (ns/op thresholds scaled accordingly)\n", scale)

	names := make([]string, 0, len(base.Benchmarks))
	for name := range base.Benchmarks {
		names = append(names, name)
	}
	sort.Strings(names)
	failed, skipped := 0, 0
	for _, name := range names {
		want := base.Benchmarks[name]
		if k := epWorkers(name); k > runtime.NumCPU() {
			fmt.Printf("skip %s: needs %d CPUs, host has %d — a time-shared run cannot gate a parallel row\n",
				name, k, runtime.NumCPU())
			skipped++
			continue
		}
		got, ok := run[name]
		if !ok {
			fmt.Printf("FAIL %s: gated benchmark missing from the run\n", name)
			failed++
			continue
		}
		nsLimit := want.NsPerOp * scale * (1 + *maxNs)
		allocLimit := float64(want.AllocsPerOp) * (1 + *maxAllocs)
		nsRatio := got.NsPerOp / (want.NsPerOp * scale)
		switch {
		case got.NsPerOp > nsLimit:
			fmt.Printf("FAIL %s: ns/op %.0f vs baseline %.0f (scaled) — %.2fx exceeds the %.0f%% budget\n",
				name, got.NsPerOp, want.NsPerOp*scale, nsRatio, *maxNs*100)
			failed++
		case float64(got.AllocsPerOp) > allocLimit && want.AllocsPerOp > 0:
			fmt.Printf("FAIL %s: allocs/op %d vs baseline %d exceeds the %.0f%% budget\n",
				name, got.AllocsPerOp, want.AllocsPerOp, *maxAllocs*100)
			failed++
		default:
			fmt.Printf("ok   %s: ns/op %.2fx of baseline, allocs %d vs %d\n",
				name, nsRatio, got.AllocsPerOp, want.AllocsPerOp)
		}
	}
	if failed > 0 {
		fatalf("%d of %d gated benchmarks regressed", failed, len(names))
	}
	if skipped > 0 {
		fmt.Printf("benchdiff: %d gated benchmarks within budget, %d skipped (insufficient CPUs)\n",
			len(names)-skipped, skipped)
		return
	}
	fmt.Printf("benchdiff: all %d gated benchmarks within budget\n", len(names))
}

// epWorkers extracts the worker count from an `ep=<k>` component of a
// benchmark name (the E11 convention for EngineParallelism sub-rows); 0
// when the name has none.
var epRow = regexp.MustCompile(`\bep=(\d+)\b`)

func epWorkers(name string) int {
	m := epRow.FindStringSubmatch(name)
	if m == nil {
		return 0
	}
	k, err := strconv.Atoi(m[1])
	if err != nil {
		return 0
	}
	return k
}
