// Command promlint validates a Prometheus text exposition document (a
// /metrics?format=prom scrape) against the format rules in
// internal/promtext. CI pipes a live scrape through it; a format violation
// exits nonzero with the offending line.
//
// Usage:
//
//	curl -s localhost:8080/metrics?format=prom | go run ./scripts/promlint
//	go run ./scripts/promlint scrape.txt
package main

import (
	"fmt"
	"io"
	"os"

	"ccsched/internal/promtext"
)

func main() {
	var (
		data []byte
		err  error
	)
	if len(os.Args) > 1 {
		data, err = os.ReadFile(os.Args[1])
	} else {
		data, err = io.ReadAll(os.Stdin)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	if err := promtext.Lint(data); err != nil {
		fmt.Fprintln(os.Stderr, "promlint:", err)
		os.Exit(1)
	}
	fmt.Println("promlint: ok")
}
