// Command checkdoc enforces the repository's documentation bar: every
// exported top-level identifier (functions, methods, types, and const/var
// specs) in the listed packages must carry a doc comment. CI runs it as part
// of the docs job; run it locally with
//
//	go run ./scripts/checkdoc .  ./internal/... ./cmd/...
//
// Arguments are package directories (a trailing /... walks recursively).
// Test files are skipped. Exit status 1 lists every undocumented symbol.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	args := os.Args[1:]
	if len(args) == 0 {
		args = []string{"./..."}
	}
	var dirs []string
	for _, a := range args {
		if rest, ok := strings.CutSuffix(a, "/..."); ok {
			root := rest
			if root == "" {
				root = "."
			}
			err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") && p != root {
						return fs.SkipDir
					}
					dirs = append(dirs, p)
				}
				return nil
			})
			if err != nil {
				fatal(err)
			}
		} else {
			dirs = append(dirs, a)
		}
	}
	bad := 0
	for _, dir := range dirs {
		missing, err := check(dir)
		if err != nil {
			fatal(err)
		}
		for _, m := range missing {
			fmt.Println(m)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "checkdoc: %d exported symbols lack doc comments\n", bad)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "checkdoc:", err)
	os.Exit(1)
}

// check parses the non-test Go files of one directory and returns a
// "file:line: symbol" entry per undocumented exported symbol.
func check(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("no such directory %s", dir)
		}
		return nil, err
	}
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s is exported but has no doc comment", p.Filename, p.Line, what))
	}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				switch d := decl.(type) {
				case *ast.FuncDecl:
					if d.Name.IsExported() && d.Doc == nil {
						name := d.Name.Name
						if d.Recv != nil && len(d.Recv.List) > 0 {
							name = recvName(d.Recv.List[0].Type) + "." + name
						}
						report(d.Pos(), "func "+name)
					}
				case *ast.GenDecl:
					groupDoc := d.Doc != nil
					for _, spec := range d.Specs {
						switch s := spec.(type) {
						case *ast.TypeSpec:
							if s.Name.IsExported() && !groupDoc && s.Doc == nil {
								report(s.Pos(), "type "+s.Name.Name)
							}
						case *ast.ValueSpec:
							// A doc comment on the grouped decl covers all
							// specs; otherwise each exported spec needs one.
							if groupDoc || s.Doc != nil || s.Comment != nil {
								continue
							}
							for _, n := range s.Names {
								if n.IsExported() {
									report(s.Pos(), "const/var "+n.Name)
								}
							}
						}
					}
				}
			}
		}
	}
	return out, nil
}

// recvName extracts the receiver type name from a method receiver
// expression, unwrapping pointers and generic instantiations.
func recvName(e ast.Expr) string {
	switch t := e.(type) {
	case *ast.StarExpr:
		return recvName(t.X)
	case *ast.Ident:
		return t.Name
	case *ast.IndexExpr:
		return recvName(t.X)
	case *ast.IndexListExpr:
		return recvName(t.X)
	default:
		return "?"
	}
}
