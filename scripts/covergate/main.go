// Command covergate is the CI coverage gate: it computes total statement
// coverage from a `go test -coverprofile` file and fails (exit 1) when it
// drops below the committed floor.
//
// The floor is deliberately a ratchet, not a target: it is seeded from the
// coverage the suite actually had when the gate landed, so the job starts
// green and only a change that *loses* covered statements can trip it.
// After a PR that meaningfully raises coverage, bump -floor's default here
// so the gain cannot silently erode.
//
// Usage:
//
//	go test -coverprofile=cover.out ./...
//	go run ./scripts/covergate -profile cover.out
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// floorDefault is the committed coverage floor (percent of statements).
// Seeded from the PR 10 suite; see the package comment for the ratchet
// policy.
const floorDefault = 69.0

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "covergate: "+format+"\n", args...)
	os.Exit(1)
}

// parseProfile sums covered and total statement counts over a coverage
// profile. Lines have the form
//
//	name.go:line.col,line.col numStmts hitCount
//
// after a leading "mode:" header. Duplicate blocks (merged profiles from
// multiple packages) are counted as emitted — the same accounting
// `go tool cover -func` uses for its total row.
func parseProfile(path string) (covered, total int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "mode:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return 0, 0, fmt.Errorf("malformed profile line: %q", line)
		}
		stmts, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("malformed statement count in %q: %v", line, err)
		}
		hits, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("malformed hit count in %q: %v", line, err)
		}
		total += stmts
		if hits > 0 {
			covered += stmts
		}
	}
	return covered, total, sc.Err()
}

func main() {
	var (
		profile = flag.String("profile", "cover.out", "coverage profile from go test -coverprofile")
		floor   = flag.Float64("floor", floorDefault, "minimum total statement coverage (percent)")
	)
	flag.Parse()
	covered, total, err := parseProfile(*profile)
	if err != nil {
		fatalf("%v", err)
	}
	if total == 0 {
		fatalf("profile %s covers zero statements — wrong file?", *profile)
	}
	pct := 100 * float64(covered) / float64(total)
	fmt.Printf("covergate: %.1f%% of statements covered (%d/%d), floor %.1f%%\n", pct, covered, total, *floor)
	if pct < *floor {
		fatalf("coverage %.1f%% is below the %.1f%% floor — add tests or, if statements were intentionally removed, re-seed the floor", pct, *floor)
	}
}
