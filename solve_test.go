package ccsched_test

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"ccsched"
)

// solveTestInstance builds a moderate uniform instance per variant.
func solveTestInstance(t *testing.T, n, classes int, m int64) *ccsched.Instance {
	t.Helper()
	in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
		N: n, Classes: classes, Machines: m, Slots: 2, PMax: 100, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// variantCase pairs a variant with an instance and engine budget its PTAS
// solves in well under a second (the preemptive scheme's configuration sets
// grow fastest, so it gets the smallest instance, mirroring experiment E7).
type variantCase struct {
	variant  ccsched.Variant
	in       *ccsched.Instance
	maxNodes int
}

func variantCases(t *testing.T, seed int64) []variantCase {
	t.Helper()
	gen := func(n, classes int, m int64, slots int) *ccsched.Instance {
		in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
			N: n, Classes: classes, Machines: m, Slots: slots, PMax: 100, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	return []variantCase{
		{ccsched.Splittable, gen(16, 4, 3, 2), 300},
		{ccsched.NonPreemptive, gen(12, 4, 3, 2), 300},
		{ccsched.Preemptive, gen(8, 2, 2, 1), 150},
	}
}

// TestSolveParityWithWrappers proves the unified Solve facade returns the
// same makespans as the nine legacy wrappers it subsumes, and that the
// parallel speculative guess search and the feasibility cache leave results
// bit-identical to the sequential, uncached path.
func TestSolveParityWithWrappers(t *testing.T) {
	for _, tc := range variantCases(t, 11) {
		seq, err := ccsched.Solve(context.Background(), tc.in, ccsched.Options{
			Variant: tc.variant, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: tc.maxNodes,
			Parallelism: 1, NoCache: true,
		})
		if err != nil {
			t.Fatalf("variant %v sequential: %v", tc.variant, err)
		}
		if seq.Makespan.Cmp(seq.LowerBound) < 0 {
			t.Errorf("variant %v: makespan %s below certified lower bound %s",
				tc.variant, seq.Makespan.RatString(), seq.LowerBound.RatString())
		}
		// Parallel speculative search, fresh cache, and warm cache must all
		// reproduce the sequential result exactly.
		cache := ccsched.NewFeasibilityCache()
		for _, opts := range []ccsched.Options{
			{Variant: tc.variant, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: tc.maxNodes, Parallelism: 4, NoCache: true},
			{Variant: tc.variant, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: tc.maxNodes, Parallelism: 4, Cache: cache},
			{Variant: tc.variant, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: tc.maxNodes, Parallelism: 1, Cache: cache},
		} {
			got, err := ccsched.Solve(context.Background(), tc.in, opts)
			if err != nil {
				t.Fatalf("variant %v opts %+v: %v", tc.variant, opts, err)
			}
			if got.Makespan.Cmp(seq.Makespan) != 0 {
				t.Errorf("variant %v opts %+v: makespan %s != sequential %s",
					tc.variant, opts, got.Makespan.RatString(), seq.Makespan.RatString())
			}
			if got.Report.Guess != seq.Report.Guess || got.Report.Guesses != seq.Report.Guesses {
				t.Errorf("variant %v opts %+v: probe trace (%d, %d) != sequential (%d, %d)",
					tc.variant, opts, got.Report.Guess, got.Report.Guesses, seq.Report.Guess, seq.Report.Guesses)
			}
		}
		// The third run above re-walked a fully warmed cache.
		warm, err := ccsched.Solve(context.Background(), tc.in, ccsched.Options{
			Variant: tc.variant, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: tc.maxNodes,
			Parallelism: 1, Cache: cache,
		})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Report.CacheHits == 0 {
			t.Errorf("variant %v: warmed cache produced no hits", tc.variant)
		}
	}

	// Legacy wrappers agree with the facade.
	in := solveTestInstance(t, 16, 4, 3)
	ptasSeq, err := ccsched.PTASSplittable(in, ccsched.PTASOptions{Epsilon: 0.5, MaxNodes: 300})
	if err != nil {
		t.Fatal(err)
	}
	uni, err := ccsched.Solve(context.Background(), in, ccsched.Options{
		Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: 300, Parallelism: 1, NoCache: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ptasSeq.Makespan().Cmp(uni.Makespan) != 0 {
		t.Errorf("PTASSplittable %s != Solve %s", ptasSeq.Makespan().RatString(), uni.Makespan.RatString())
	}
	apxRes, err := ccsched.ApproxSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	apxUni, err := ccsched.Solve(context.Background(), in, ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierApprox})
	if err != nil {
		t.Fatal(err)
	}
	if apxRes.Makespan().Cmp(apxUni.Makespan) != 0 {
		t.Errorf("ApproxSplittable %s != Solve/TierApprox %s", apxRes.Makespan().RatString(), apxUni.Makespan.RatString())
	}
}

// TestSolveSchedulesValidate checks the populated schedule fields are
// consistent with the instance for each variant and tier.
func TestSolveSchedulesValidate(t *testing.T) {
	for _, tier := range []ccsched.Tier{ccsched.TierApprox, ccsched.TierPTAS} {
		for _, tc := range variantCases(t, 13) {
			res, err := ccsched.Solve(context.Background(), tc.in, ccsched.Options{
				Variant: tc.variant, Tier: tier, Epsilon: 0.5, MaxNodes: tc.maxNodes, NoCache: true,
			})
			if err != nil {
				t.Fatalf("%v/%v: %v", tier, tc.variant, err)
			}
			switch tc.variant {
			case ccsched.Splittable:
				if res.CompactSplit == nil {
					t.Fatalf("%v/%v: missing compact schedule", tier, tc.variant)
				}
				if err := res.CompactSplit.Validate(tc.in); err != nil {
					t.Errorf("%v/%v: %v", tier, tc.variant, err)
				}
			case ccsched.Preemptive:
				if res.Preemptive == nil {
					t.Fatalf("%v/%v: missing schedule", tier, tc.variant)
				}
				if err := res.Preemptive.Validate(tc.in); err != nil {
					t.Errorf("%v/%v: %v", tier, tc.variant, err)
				}
			case ccsched.NonPreemptive:
				if res.NonPreemptive == nil {
					t.Fatalf("%v/%v: missing schedule", tier, tc.variant)
				}
				if err := res.NonPreemptive.Validate(tc.in); err != nil {
					t.Errorf("%v/%v: %v", tier, tc.variant, err)
				}
			}
		}
	}
}

// TestSolveExactTier exercises the exact tier through the facade, including
// the unsupported-variant error.
func TestSolveExactTier(t *testing.T) {
	in := &ccsched.Instance{
		P:     []int64{4, 3, 5, 2},
		Class: []int{0, 0, 1, 1},
		M:     2,
		Slots: 1,
	}
	res, err := ccsched.Solve(context.Background(), in, ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierExact})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan.RatString() != "7" {
		t.Errorf("exact non-preemptive optimum %s, want 7", res.Makespan.RatString())
	}
	if res.NonPreemptive == nil {
		t.Error("exact non-preemptive should carry a schedule")
	}
	if _, err := ccsched.Solve(context.Background(), in, ccsched.Options{Variant: ccsched.Preemptive, Tier: ccsched.TierExact}); err == nil {
		t.Error("exact preemptive should be rejected")
	}
	big := solveTestInstance(t, 200, 20, 8)
	if _, err := ccsched.Solve(context.Background(), big, ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierExact}); !errors.Is(err, ccsched.ErrTooLarge) {
		t.Errorf("oversized exact solve: got %v, want ErrTooLarge", err)
	}
}

// cancelInstance is sized so every variant's PTAS runs for tens of seconds
// uncancelled (measured ≥ 30s sequential at ε = 0.5 on the development
// machine); the cancellation tests below abort it after milliseconds.
func cancelInstance(t *testing.T) *ccsched.Instance {
	t.Helper()
	in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
		N: 100, Classes: 20, Machines: 10, Slots: 3, PMax: 10000, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestSolveCancellation proves Solve honors context cancellation promptly —
// within one N-fold iteration boundary, not after the full multi-second
// solve — for each variant, sequentially, with parallel probes, and with
// intra-engine parallelism (subtree workers in flight must not delay the
// abort: the committing walker sees ctx, cancels its claim context and joins
// the workers before returning).
func TestSolveCancellation(t *testing.T) {
	in := cancelInstance(t)
	for _, variant := range []ccsched.Variant{ccsched.Splittable, ccsched.Preemptive, ccsched.NonPreemptive} {
		for _, par := range []int{1, 4} {
			for _, engPar := range []int{1, 4} {
				ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
				start := time.Now()
				_, err := ccsched.Solve(ctx, in, ccsched.Options{
					Variant: variant, Tier: ccsched.TierPTAS, Epsilon: 0.5,
					Parallelism: par, EngineParallelism: engPar, NoCache: true,
				})
				elapsed := time.Since(start)
				cancel()
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("variant %v par=%d engpar=%d: err %v, want DeadlineExceeded", variant, par, engPar, err)
				}
				// Generous bound for slow CI and the race detector's overhead:
				// the solve runs tens of seconds uncancelled, so returning this
				// fast proves promptness.
				if elapsed > 10*time.Second {
					t.Errorf("variant %v par=%d engpar=%d: returned after %s, cancellation not prompt",
						variant, par, engPar, elapsed)
				}
			}
		}
	}
}

// TestSolveExactCancellation proves the exact tier also honors context
// cancellation: a branch-and-bound search that runs for seconds on
// near-equal job sizes (weak pruning) aborts at the deadline.
func TestSolveExactCancellation(t *testing.T) {
	p := make([]int64, 24)
	cls := make([]int, 24)
	for i := range p {
		p[i] = int64(100 + (i*7)%3 - 1) // 99..101: no quick optimality proof
		cls[i] = i % 12
	}
	in := &ccsched.Instance{P: p, Class: cls, M: 5, Slots: 3}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := ccsched.Solve(ctx, in, ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierExact})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want DeadlineExceeded", err)
	}
	if elapsed > 5*time.Second {
		t.Errorf("exact tier returned after %s, cancellation not prompt", elapsed)
	}
}

// TestSolvePreCanceledContext checks an already-canceled context never
// starts work.
func TestSolvePreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	in := solveTestInstance(t, 20, 4, 3)
	if _, err := ccsched.Solve(ctx, in, ccsched.Options{Variant: ccsched.Splittable}); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want Canceled", err)
	}
}

// TestSolveConcurrentSharedCache hammers one FeasibilityCache from
// concurrent Solve calls across variants and workloads. Run under the race
// detector (the CI docs job does) it proves the cache and the speculative
// search are data-race free; in any mode it checks cross-call result
// consistency against an uncached reference.
func TestSolveConcurrentSharedCache(t *testing.T) {
	cache := ccsched.NewFeasibilityCache()
	type job struct {
		variant ccsched.Variant
		seed    int64
	}
	genFor := func(variant ccsched.Variant, seed int64) (*ccsched.Instance, int, error) {
		// Per-variant sizing mirrors variantCases: the preemptive scheme
		// needs the smallest instances and a node cap.
		switch variant {
		case ccsched.Preemptive:
			in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
				N: 8, Classes: 2, Machines: 2, Slots: 1, PMax: 30, Seed: seed,
			})
			return in, 150, err
		default:
			in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
				N: 14, Classes: 4, Machines: 3, Slots: 2, PMax: 60, Seed: seed,
			})
			return in, 300, err
		}
	}
	var jobs []job
	for _, v := range []ccsched.Variant{ccsched.Splittable, ccsched.Preemptive, ccsched.NonPreemptive} {
		for seed := int64(1); seed <= 3; seed++ {
			jobs = append(jobs, job{v, seed})
		}
	}
	want := make(map[job]string)
	for _, j := range jobs {
		in, maxNodes, err := genFor(j.variant, j.seed)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := ccsched.Solve(context.Background(), in, ccsched.Options{
			Variant: j.variant, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: maxNodes, Parallelism: 1, NoCache: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		want[j] = ref.Makespan.RatString()
	}
	var wg sync.WaitGroup
	errs := make(chan error, len(jobs)*2)
	for round := 0; round < 2; round++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				in, maxNodes, err := genFor(j.variant, j.seed)
				if err != nil {
					errs <- err
					return
				}
				res, err := ccsched.Solve(context.Background(), in, ccsched.Options{
					Variant: j.variant, Tier: ccsched.TierPTAS, Epsilon: 0.5, MaxNodes: maxNodes, Parallelism: 2, Cache: cache,
				})
				if err != nil {
					errs <- err
					return
				}
				if got := res.Makespan.RatString(); got != want[j] {
					errs <- errors.New("cached concurrent solve diverged: " + got + " != " + want[j])
				}
			}(j)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if cache.Len() == 0 {
		t.Error("shared cache stayed empty")
	}
}
