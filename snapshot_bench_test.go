package ccsched

// The PR 6 restore benchmark: the cost of bringing a churn-scale durable
// session back from its snapshot. One op = RestoreSession on the serialized
// state of the resize-churn workload (uniform n=1000, splittable PTAS at
// ε=1) after several solved rounds — envelope validation, instance-digest
// check, and the per-section decode of templates, seeds, carried bases and
// the feasibility cache. It bounds the boot-time line in ccserved's
// restore-on-boot path and the latency of a PUT /v1/sessions/{id}/export
// migration; the CI perf gate tracks it via scripts/benchdiff.

import (
	"context"
	"testing"
)

// churnSnapshot builds the benchmark input: the resize-churn session after
// rounds solved rounds, serialized with SnapshotState.
func churnSnapshot(b *testing.B, rounds int) []byte {
	b.Helper()
	ctx := context.Background()
	sess, err := NewSession(churnBase(b), churnOpts)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sess.Solve(ctx); err != nil {
		b.Fatal(err)
	}
	mirror := sess.Instance()
	ids := sess.JobIDs()
	for i := 0; i < rounds; i++ {
		prev := append([]int64(nil), mirror.P...)
		resizeRound(i, mirror.P)
		for pos := range mirror.P {
			if mirror.P[pos] != prev[pos] {
				if err := sess.Resize(ids[pos], mirror.P[pos]); err != nil {
					b.Fatal(err)
				}
			}
		}
		if _, err := sess.Solve(ctx); err != nil {
			b.Fatal(err)
		}
	}
	data, err := sess.SnapshotState()
	if err != nil {
		b.Fatal(err)
	}
	return data
}

// BenchmarkSessionRestore measures RestoreSession on the resize-churn
// session's snapshot after four solved rounds (the warm state a ccserved
// checkpoint or export carries at steady state).
func BenchmarkSessionRestore(b *testing.B) {
	data := churnSnapshot(b, 4)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RestoreSession(data); err != nil {
			b.Fatal(err)
		}
	}
}
