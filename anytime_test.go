package ccsched

// Differential tests for the anytime tier: the ladder's final rung must be
// bit-identical to a cold TierPTAS solve at the terminal ε (warm reuse
// across rungs is verdict-preserving), the published gaps must never
// increase, and the first answer must be the tagged constant-factor rung.

import (
	"context"
	"fmt"
	"testing"
)

// anytimeParityCase runs the full ladder on in and checks the update
// stream's invariants plus final parity against a cold TierPTAS solve.
func anytimeParityCase(t *testing.T, in *Instance, opts Options) {
	t.Helper()
	ctx := context.Background()
	var updates []*Result
	final, err := SolveAnytime(ctx, in, opts, func(r *Result) {
		updates = append(updates, r)
	})
	if err != nil {
		t.Fatalf("SolveAnytime: %v", err)
	}
	if len(updates) < 2 {
		t.Fatalf("got %d updates, want at least the first answer and the terminal rung", len(updates))
	}
	first := updates[0]
	if first.Anytime == nil || first.Anytime.Rung != 0 || first.Tier != TierAnytime {
		t.Fatalf("first update is not the tagged rung-0 answer: %+v", first.Anytime)
	}
	for i, u := range updates {
		if u.Anytime == nil {
			t.Fatalf("update %d missing Anytime tag", i)
		}
		if i > 0 {
			prev := updates[i-1]
			if u.Anytime.Rung <= prev.Anytime.Rung {
				t.Fatalf("update %d rung %d did not advance past %d", i, u.Anytime.Rung, prev.Anytime.Rung)
			}
			if u.Makespan.Cmp(prev.Makespan) > 0 {
				t.Fatalf("update %d makespan %s worse than previous %s (gap must be monotone non-increasing)",
					i, u.Makespan.RatString(), prev.Makespan.RatString())
			}
		}
		if u.LowerBound.Cmp(first.LowerBound) != 0 {
			t.Fatalf("update %d lower bound %s drifted from %s", i, u.LowerBound.RatString(), first.LowerBound.RatString())
		}
	}
	last := updates[len(updates)-1]
	if last != final || !last.Anytime.Final {
		t.Fatalf("last update (rung %d, final=%v) is not the returned final result", last.Anytime.Rung, last.Anytime.Final)
	}
	coldOpts := opts
	coldOpts.Tier = TierPTAS
	coldOpts.Cache = NewFeasibilityCache() // honestly cold: no shared verdicts
	want, err := Solve(ctx, in, coldOpts)
	if err != nil {
		t.Fatalf("cold solve: %v", err)
	}
	if final.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("final anytime makespan %s != cold TierPTAS %s (report %+v vs %+v)",
			final.Makespan.RatString(), want.Makespan.RatString(), final.Report, want.Report)
	}
	if final.LowerBound.Cmp(want.LowerBound) != 0 {
		t.Fatalf("final anytime lower bound %s != cold %s", final.LowerBound.RatString(), want.LowerBound.RatString())
	}
}

// TestAnytimeFinalParityAllFamilies drives the anytime ladder on all six
// generator families under all three variants: the splittable cases descend
// a three-rung ladder (1 → ½), the heavier preemptive and non-preemptive
// constructions a two-rung ladder at terminal ε = 1.
func TestAnytimeFinalParityAllFamilies(t *testing.T) {
	cases := []struct {
		variant Variant
		cfg     GeneratorConfig
		opts    Options
	}{
		{Splittable,
			GeneratorConfig{N: 40, Classes: 6, Machines: 5, Slots: 2, PMax: 200},
			Options{Variant: Splittable, Epsilon: 0.5, Parallelism: 2}},
		{Preemptive,
			GeneratorConfig{N: 8, Classes: 2, Machines: 2, Slots: 1, PMax: 30},
			Options{Variant: Preemptive, Epsilon: 1, MaxNodes: 120, Parallelism: 2}},
		{NonPreemptive,
			GeneratorConfig{N: 10, Classes: 3, Machines: 3, Slots: 2, PMax: 40},
			Options{Variant: NonPreemptive, Epsilon: 1, Parallelism: 2}},
	}
	for _, fam := range GeneratorFamilies() {
		for _, tc := range cases {
			t.Run(fmt.Sprintf("%s/%s", fam, tc.variant), func(t *testing.T) {
				cfg := tc.cfg
				cfg.Seed = 7
				in, err := Generate(fam, cfg)
				if err != nil {
					t.Fatal(err)
				}
				anytimeParityCase(t, in, tc.opts)
			})
		}
	}
}

// TestAnytimeLadderRestartOnDelta pins the delta contract: a delta landing
// between rungs restarts the ladder from a fresh rung-0 answer, and the
// rerun terminal rung matches a cold solve of the mutated instance.
func TestAnytimeLadderRestartOnDelta(t *testing.T) {
	in, err := Generate("uniform", GeneratorConfig{N: 24, Classes: 4, Machines: 4, Slots: 2, PMax: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Variant: Splittable, Tier: TierAnytime, Epsilon: 1}
	sess, err := NewSession(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	l := NewLadder(sess)
	res, done, err := l.Step(ctx)
	if err != nil || done || res == nil || res.Anytime.Rung != 0 {
		t.Fatalf("first step: res=%v done=%v err=%v", res, done, err)
	}
	// Delta between rungs: the ladder must restart from rung 0.
	if _, err := sess.AddJobs([]int64{55}, []int{1}); err != nil {
		t.Fatal(err)
	}
	res, done, err = l.Step(ctx)
	if err != nil || done || res == nil || res.Anytime.Rung != 0 {
		t.Fatalf("post-delta step did not restart at rung 0: res=%v done=%v err=%v", res, done, err)
	}
	var final *Result
	for !done {
		var r *Result
		r, done, err = l.Step(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if r != nil {
			final = r
		}
	}
	if final == nil || !final.Anytime.Final {
		t.Fatal("ladder finished without a final result")
	}
	coldOpts := opts
	coldOpts.Tier = TierPTAS
	coldOpts.Cache = NewFeasibilityCache()
	want, err := Solve(ctx, sess.Instance(), coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	if final.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("post-delta final %s != cold %s", final.Makespan.RatString(), want.Makespan.RatString())
	}
	// The session's current result is the ladder's final answer.
	cur, err := sess.Solve(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if cur != final {
		t.Fatal("session's current result is not the ladder's final publish")
	}
}
