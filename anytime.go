package ccsched

import (
	"context"
	"math/big"
	"sync"
)

// The anytime tier: an instant constant-factor answer followed by a
// descending ε-ladder of PTAS refinements. Solve (and Session.Solve) with
// TierAnytime return only the ladder's first rung — the strongly
// polynomial 2-approx (7/3 non-preemptive) with its certified LowerBound,
// so the caller holds a bounded answer in milliseconds. Refinement is
// explicit: a Ladder steps through PTAS rungs at ε = 1, ½, ¼, … down to
// Options.Epsilon, reusing the session's warm-start templates and
// feasibility cache between rungs, and installs each improvement as the
// session's current result atomically. The terminal rung runs the PTAS at
// exactly Options.Epsilon, so its makespan is bit-identical to a cold
// TierPTAS solve of the same instance (warm reuse is verdict-preserving;
// the anytime parity differential pins this on every generator family).

// AnytimeInfo tags a TierAnytime result with its position on the ε-ladder.
type AnytimeInfo struct {
	// Rung is the ladder position that produced this result: 0 is the
	// constant-factor first answer, Rungs-1 the terminal PTAS rung.
	Rung int `json:"rung"`
	// Rungs is the total ladder length, first answer included.
	Rungs int `json:"rungs"`
	// Epsilon is the PTAS accuracy of this rung (0 on rung 0 — the
	// constant-factor tier has a fixed ratio, not an ε).
	Epsilon float64 `json:"epsilon"`
	// Gap is the live optimality gap Makespan/LowerBound − 1, computed
	// from the exact rationals and rounded for display. The certified
	// bound: OPT lies within [Makespan/(1+Gap), Makespan].
	Gap float64 `json:"gap"`
	// Final marks the terminal rung: no further refinement will follow
	// for this instance generation.
	Final bool `json:"final"`
}

// anytimeLadder returns the descending PTAS rungs for a terminal accuracy:
// ε halves from 1 until it reaches terminal (0 selects the PTAS default
// 0.5), with terminal itself always the last rung. A terminal ≥ 1 yields
// the single rung [terminal].
func anytimeLadder(terminal float64) []float64 {
	if terminal <= 0 {
		terminal = 0.5
	}
	if terminal >= 1 {
		return []float64{terminal}
	}
	var rungs []float64
	for e := 1.0; e > terminal; e /= 2 {
		rungs = append(rungs, e)
		if e/2 <= terminal {
			break
		}
	}
	return append(rungs, terminal)
}

// anytimeGap computes Makespan/LowerBound − 1 exactly, then rounds to
// float64 for the wire. A zero lower bound (empty instance) reports a zero
// gap — there is nothing left to refine.
func anytimeGap(makespan, lb *big.Rat) float64 {
	if makespan == nil || lb == nil || lb.Sign() <= 0 {
		return 0
	}
	gap := new(big.Rat).Quo(makespan, lb)
	gap.Sub(gap, big.NewRat(1, 1))
	f, _ := gap.Float64()
	return f
}

// solveAnytimeFirst produces the TierAnytime first answer: the
// constant-factor schedule tagged with rung 0 of the ladder implied by
// opts.Epsilon. runTiers dispatches here; refinement belongs to Ladder.
func solveAnytimeFirst(in *Instance, opts Options, res *Result) error {
	if err := solveApprox(in, opts, res); err != nil {
		return err
	}
	res.Anytime = &AnytimeInfo{
		Rung:  0,
		Rungs: len(anytimeLadder(opts.Epsilon)) + 1,
		Gap:   anytimeGap(res.Makespan, res.LowerBound),
	}
	return nil
}

// A Ladder drives TierAnytime refinement over a session, one rung per
// Step. It is a position, not a goroutine: callers (the serving layer's
// low-priority refinement pool, or SolveAnytime's loop) decide when each
// rung runs, so refinement can be paused, budgeted, or canceled between
// rungs. The ladder binds to the session's instance generation — a delta
// landing mid-rung discards that rung's result and the next Step restarts
// from the fresh constant-factor first answer.
//
// A Ladder is safe for concurrent use, but steps serialize internally:
// the session's warm state belongs to one PTAS solve at a time.
type Ladder struct {
	s *Session

	mu    sync.Mutex
	rungs []float64
	// next is the rung the next Step runs: 0 is the constant-factor first
	// answer, i ≥ 1 the PTAS at rungs[i-1]. gen is the session generation
	// the position belongs to (0 = unbound). best is the best makespan
	// published for this generation, the publish-only-improvements filter.
	next int
	gen  uint64
	best *big.Rat
}

// NewLadder returns a ladder over the session's ε-ladder (terminal rung at
// the session's Options.Epsilon). The session keeps working normally —
// deltas apply, Solve answers with the current best — while the caller
// steps the ladder at its own pace.
func NewLadder(s *Session) *Ladder {
	return &Ladder{s: s, rungs: anytimeLadder(s.Options().Epsilon)}
}

// Rungs returns the total ladder length including the first answer.
func (l *Ladder) Rungs() int { return len(l.rungs) + 1 }

// Step runs one rung against the session's current instance and publishes
// the result into the session if it improves the published best (the
// terminal rung always publishes — it is the anytime answer, bit-identical
// to a cold TierPTAS solve at the terminal ε). It returns the published
// result (nil when the rung brought no improvement or a concurrent delta
// invalidated it) and whether the ladder has reached the terminal rung for
// the current instance generation. After a delta, the next Step restarts
// the ladder from rung 0 automatically. Cancellation via ctx aborts only
// the in-flight rung; the ladder position is unchanged and Step may be
// retried.
func (l *Ladder) Step(ctx context.Context) (*Result, bool, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	l.s.mu.Lock()
	if l.gen != l.s.gen {
		l.gen, l.next, l.best = l.s.gen, 0, nil
	}
	gen := l.gen
	rung := l.next
	in := l.s.in.Clone()
	opts := l.s.opts
	// Rung 0 may already be installed: Session.Solve on a TierAnytime
	// session computes exactly the first answer. Reuse it instead of
	// re-running the approx tier.
	var cached *Result
	if rung == 0 && l.s.last != nil && l.s.lastGen == gen &&
		l.s.last.Anytime != nil && l.s.last.Anytime.Rung == 0 {
		cached = l.s.last
	}
	l.s.mu.Unlock()

	if rung > len(l.rungs) {
		return nil, true, nil
	}

	// The solve runs outside the session lock so deltas stay responsive
	// mid-rung; only the ladder's own warm PTAS solves touch the session
	// state, and l.mu serializes those.
	var res *Result
	if cached != nil {
		res = cached
	} else {
		opts.Trace = false
		opts.FallbackTier = TierAuto
		var err error
		if rung == 0 {
			opts.Tier = TierAnytime
			res, err = solveWith(ctx, in, opts, nil)
		} else {
			opts.Tier = TierPTAS
			opts.Epsilon = l.rungs[rung-1]
			res, err = solveWith(ctx, in, opts, l.s.state)
		}
		if err != nil {
			return nil, false, err
		}
	}

	final := rung == len(l.rungs)
	if cached == nil {
		// Shared results (the reused rung-0 install) are immutable and
		// already carry their tag; only freshly solved rungs get tagged.
		eps := 0.0
		if rung > 0 {
			eps = l.rungs[rung-1]
		}
		res.Tier = TierAnytime
		res.Anytime = &AnytimeInfo{
			Rung:    rung,
			Rungs:   len(l.rungs) + 1,
			Epsilon: eps,
			Gap:     anytimeGap(res.Makespan, res.LowerBound),
			Final:   final,
		}
	}

	l.s.mu.Lock()
	defer l.s.mu.Unlock()
	if cached == nil {
		l.s.resolves++
	}
	if l.s.gen != gen {
		// A delta landed mid-rung: the result belongs to a dead
		// generation. Drop it; the next Step rebinds and restarts.
		return nil, false, nil
	}
	l.next++
	improved := l.best == nil || res.Makespan.Cmp(l.best) < 0
	if improved {
		l.best = res.Makespan
	}
	if improved || final {
		l.s.last, l.s.lastGen = res, gen
		return res, final, nil
	}
	return nil, final, nil
}

// SolveAnytime runs the whole TierAnytime ladder synchronously: the
// constant-factor first answer, then every PTAS rung down to
// opts.Epsilon, invoking onUpdate (when non-nil) with each published
// improvement in order — the last call carries the final result, which
// SolveAnytime also returns. It is the library-level equivalent of
// watching a server-side refinement to completion, and the harness the
// anytime parity tests and first-answer benchmarks drive.
func SolveAnytime(ctx context.Context, in *Instance, opts Options, onUpdate func(*Result)) (*Result, error) {
	opts.Tier = TierAnytime
	sess, err := NewSession(in, opts)
	if err != nil {
		return nil, err
	}
	l := NewLadder(sess)
	var last *Result
	for {
		res, done, err := l.Step(ctx)
		if err != nil {
			return nil, err
		}
		if res != nil {
			last = res
			if onUpdate != nil {
				onUpdate(res)
			}
		}
		if done {
			return last, nil
		}
	}
}
