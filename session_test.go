package ccsched

// Differential tests for scheduling sessions: a session re-solve must
// return a makespan bit-identical to a cold Solve of the mutated instance.
// Random delta streams (resizes, removals, arrivals, machine changes) run
// against every generator family; the cold reference solves with an
// isolated fresh cache and no session state, under Parallelism=3 so the
// speculative search is exercised on the reference side while the session
// side runs its seeded sequential search — the two must agree exactly.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"
)

// applySessionDeltas mutates the session with a deterministic random delta
// batch: ~5% resizes plus a removal, an arrival, and an occasional machine
// change.
func applySessionDeltas(t *testing.T, s *Session, rng *rand.Rand, pmax int64, classes int) {
	t.Helper()
	ids := s.JobIDs()
	if len(ids) == 0 {
		t.Fatal("session ran out of jobs")
	}
	resizes := len(ids)/20 + 1
	for i := 0; i < resizes; i++ {
		id := ids[rng.Intn(len(ids))]
		if err := s.Resize(id, 1+rng.Int63n(pmax)); err != nil {
			t.Fatal(err)
		}
	}
	if len(ids) > 8 {
		if err := s.RemoveJobs(ids[rng.Intn(len(ids))]); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AddJobs([]int64{1 + rng.Int63n(pmax)}, []int{rng.Intn(classes)}); err != nil {
		t.Fatal(err)
	}
	if rng.Intn(4) == 0 {
		in := s.Instance()
		m := in.M + int64(rng.Intn(3)) - 1
		if m < 1 {
			m = 1
		}
		if err := s.SetMachines(m); err != nil {
			t.Fatal(err)
		}
	}
}

// sessionParityCase runs one session through `rounds` delta rounds and
// compares every re-solve against a cold Solve of the same instance.
func sessionParityCase(t *testing.T, in *Instance, opts Options, rounds int, seed int64, pmax int64, classes int) {
	t.Helper()
	sess, err := NewSession(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed * 31337))
	ctx := context.Background()
	for round := 0; round <= rounds; round++ {
		if round > 0 {
			applySessionDeltas(t, sess, rng, pmax, classes)
		}
		got, err := sess.Solve(ctx)
		if err != nil {
			t.Fatalf("round %d: session solve: %v", round, err)
		}
		coldOpts := opts
		coldOpts.Cache = NewFeasibilityCache() // honestly cold: no shared verdicts
		want, err := Solve(ctx, sess.Instance(), coldOpts)
		if err != nil {
			t.Fatalf("round %d: cold solve: %v", round, err)
		}
		if got.Makespan.Cmp(want.Makespan) != 0 {
			t.Fatalf("round %d: session makespan %s != cold %s (report %+v vs %+v)",
				round, got.Makespan.RatString(), want.Makespan.RatString(), got.Report, want.Report)
		}
		if got.LowerBound.Cmp(want.LowerBound) != 0 {
			t.Fatalf("round %d: session lower bound %s != cold %s",
				round, got.LowerBound.RatString(), want.LowerBound.RatString())
		}
	}
	if sess.Resolves() != int64(rounds)+1 {
		t.Fatalf("session ran %d solves, want %d", sess.Resolves(), rounds+1)
	}
}

// TestSessionDeltaParityAllFamilies drives random delta streams on all six
// generator families (splittable PTAS) and checks bit-identical makespans
// against cold solves every round.
func TestSessionDeltaParityAllFamilies(t *testing.T) {
	for _, fam := range GeneratorFamilies() {
		for seed := int64(1); seed <= 3; seed++ {
			t.Run(fmt.Sprintf("%s/seed=%d", fam, seed), func(t *testing.T) {
				in, err := Generate(fam, GeneratorConfig{
					N: 40, Classes: 6, Machines: 5, Slots: 2, PMax: 200, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				opts := Options{Variant: Splittable, Tier: TierPTAS, Epsilon: 1, Parallelism: 3}
				sessionParityCase(t, in, opts, 5, seed, 200, 6)
			})
		}
	}
}

// TestSessionDeltaParityVariants covers the preemptive and non-preemptive
// pipelines (smaller instances; their PTAS constructions are heavier).
func TestSessionDeltaParityVariants(t *testing.T) {
	cases := []struct {
		variant Variant
		cfg     GeneratorConfig
		opts    Options
	}{
		{Preemptive,
			GeneratorConfig{N: 8, Classes: 2, Machines: 2, Slots: 1, PMax: 30, Seed: 7},
			Options{Variant: Preemptive, Tier: TierPTAS, Epsilon: 1, MaxNodes: 120, Parallelism: 3}},
		{NonPreemptive,
			GeneratorConfig{N: 10, Classes: 3, Machines: 3, Slots: 2, PMax: 40, Seed: 7},
			Options{Variant: NonPreemptive, Tier: TierPTAS, Epsilon: 1, Parallelism: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.variant.String(), func(t *testing.T) {
			in, err := Generate("uniform", tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			sessionParityCase(t, in, tc.opts, 3, tc.cfg.Seed, tc.cfg.PMax, tc.cfg.Classes)
		})
	}
}

// TestSessionSolveSnapshotConsistency pins the contract the HTTP pipeline
// depends on: a SolveSnapshot of an older snapshot returns the result for
// THAT snapshot (its flight key and permutation were computed from it),
// even when deltas landed in between, and does not clobber the session's
// current state.
func TestSessionSolveSnapshotConsistency(t *testing.T) {
	in, err := Generate("uniform", GeneratorConfig{N: 12, Classes: 3, Machines: 3, Slots: 2, PMax: 60, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{Variant: Splittable, Tier: TierApprox}
	sess, err := NewSession(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	snap, ids, gen := sess.Snapshot()
	// Deltas land while the snapshot's "flight" is still queued.
	if err := sess.Resize(ids[0], 9999); err != nil {
		t.Fatal(err)
	}
	got, err := sess.SolveSnapshot(context.Background(), snap, gen)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Solve(context.Background(), snap, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("SolveSnapshot returned %s for the snapshot, want %s (solved the mutated instance instead?)",
			got.Makespan.RatString(), want.Makespan.RatString())
	}
	// The session's own Solve must still see the mutation (the stale
	// snapshot result was not installed as current).
	cur, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if cur.Makespan.Cmp(got.Makespan) == 0 {
		t.Fatal("current solve returned the stale snapshot's makespan; the 9999 resize was lost")
	}
	if sess.Resolves() != 2 {
		t.Fatalf("resolves = %d, want 2 (snapshot + current)", sess.Resolves())
	}
}

// TestSessionDeltaAPI exercises the delta surface itself: stable ids,
// all-or-nothing removals, validation, and the no-delta fast path.
func TestSessionDeltaAPI(t *testing.T) {
	in, err := Generate("uniform", GeneratorConfig{N: 6, Classes: 2, Machines: 2, Slots: 2, PMax: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewSession(in, Options{Variant: Splittable, Tier: TierApprox})
	if err != nil {
		t.Fatal(err)
	}
	ids := sess.JobIDs()
	if len(ids) != 6 {
		t.Fatalf("got %d ids, want 6", len(ids))
	}
	added, err := sess.AddJobs([]int64{7, 9}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 || added[0] == added[1] {
		t.Fatalf("bad ids from AddJobs: %v", added)
	}
	if err := sess.RemoveJobs(ids[0], added[0]); err != nil {
		t.Fatal(err)
	}
	if err := sess.RemoveJobs(ids[0]); err == nil {
		t.Fatal("removing an already-removed id succeeded")
	}
	if err := sess.RemoveJobs(ids[1], 999999); err == nil {
		t.Fatal("partially-unknown removal succeeded")
	}
	if got := len(sess.JobIDs()); got != 6 {
		t.Fatalf("after failed removal: %d jobs, want 6 (all-or-nothing)", got)
	}
	if err := sess.Resize(added[1], 0); err == nil {
		t.Fatal("zero-size resize succeeded")
	}
	if err := sess.Resize(added[1], 11); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetMachines(0); err == nil {
		t.Fatal("zero machines accepted")
	}
	if err := sess.SetSlots(0); err == nil {
		t.Fatal("zero slots accepted")
	}
	res1, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := sess.Solve(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res1 != res2 {
		t.Fatal("no-delta Solve re-ran instead of returning the cached result")
	}
	if sess.Resolves() != 1 {
		t.Fatalf("resolves = %d, want 1", sess.Resolves())
	}
	// The session instance mirrors the deltas.
	cur := sess.Instance()
	if cur.N() != 6 {
		t.Fatalf("instance has %d jobs, want 6", cur.N())
	}
}
