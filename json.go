package ccsched

import (
	"fmt"

	"ccsched/internal/core"
)

// JSON wire formats. Instance, Options and Result all serialize with
// encoding/json: Instance uses the {"machines","slots","p","class"} shape
// (validated on decode), Variant and Tier encode as their conventional
// names, exact rationals (*big.Rat and schedule-piece Rat values) encode as
// "p/q" strings, and Options.Cache is never serialized. These codecs are
// what cmd/ccserved speaks on the wire and what ccgen -json / ccsolve's
// JSON stdin produce and consume; see docs/ARCHITECTURE.md ("Service
// layer").

// ParseVariant maps the conventional variant names ("splittable",
// "preemptive", "nonpreemptive"/"non-preemptive") to a Variant.
func ParseVariant(s string) (Variant, error) { return core.ParseVariant(s) }

// ParseTier maps the tier names ("auto", "approx", "ptas", "exact",
// "anytime") to a Tier.
func ParseTier(s string) (Tier, error) {
	switch s {
	case "auto":
		return TierAuto, nil
	case "approx":
		return TierApprox, nil
	case "ptas":
		return TierPTAS, nil
	case "exact":
		return TierExact, nil
	case "anytime":
		return TierAnytime, nil
	default:
		return 0, fmt.Errorf("ccsched: unknown tier %q", s)
	}
}

// MarshalText implements encoding.TextMarshaler, so tiers serialize as
// their conventional names in JSON.
func (t Tier) MarshalText() ([]byte, error) {
	switch t {
	case TierAuto, TierApprox, TierPTAS, TierExact, TierAnytime:
		return []byte(t.String()), nil
	default:
		return nil, fmt.Errorf("ccsched: cannot marshal unknown tier %d", int(t))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler; see ParseTier.
func (t *Tier) UnmarshalText(text []byte) error {
	parsed, err := ParseTier(string(text))
	if err != nil {
		return err
	}
	*t = parsed
	return nil
}
