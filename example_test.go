package ccsched_test

import (
	"context"
	"fmt"
	"time"

	"ccsched"
)

// ExampleSolve runs the unified context-aware entry point: variant and
// tier come from Options, the deadline cancels the solve down to the ILP
// iteration, and parallel speculative guess probes return bit-identical
// schedules at any Parallelism.
func ExampleSolve() {
	in := &ccsched.Instance{
		P:     []int64{9, 7, 6, 5, 4, 4, 3, 2},
		Class: []int{0, 1, 0, 2, 1, 2, 0, 1},
		M:     2,
		Slots: 2,
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := ccsched.Solve(ctx, in, ccsched.Options{
		Variant:     ccsched.NonPreemptive,
		Tier:        ccsched.TierPTAS,
		Epsilon:     0.5,
		Parallelism: 4,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("makespan:", res.Makespan.RatString())
	fmt.Println("lower bound:", res.LowerBound.RatString())
	// Output:
	// makespan: 27
	// lower bound: 20
}

// ExampleApproxNonPreemptive schedules a small instance with the paper's
// 7/3-approximation and prints the makespan.
func ExampleApproxNonPreemptive() {
	in := &ccsched.Instance{
		P:     []int64{4, 3, 5, 2},
		Class: []int{0, 0, 1, 1},
		M:     2,
		Slots: 1, // machines host one class each
	}
	res, err := ccsched.ApproxNonPreemptive(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("makespan:", res.Makespan(in))
	// Output: makespan: 7
}

// ExampleApproxSplittable shows that splitting drops the makespan to the
// area bound when slots allow it.
func ExampleApproxSplittable() {
	in := &ccsched.Instance{
		P:     []int64{100},
		Class: []int{0},
		M:     4,
		Slots: 1,
	}
	res, err := ccsched.ApproxSplittable(in)
	if err != nil {
		panic(err)
	}
	fmt.Println("makespan:", res.Makespan().RatString())
	// Output: makespan: 25
}

// ExampleLowerBound certifies a bound the optimal makespan cannot beat.
func ExampleLowerBound() {
	in := &ccsched.Instance{
		P:     []int64{30},
		Class: []int{0},
		M:     3,
		Slots: 1,
	}
	lb, err := ccsched.LowerBound(in, ccsched.Splittable)
	if err != nil {
		panic(err)
	}
	fmt.Println("lower bound:", lb.RatString())
	// Output: lower bound: 10
}

// ExampleParseInstance reads the textual instance format.
func ExampleParseInstance() {
	in, err := ccsched.ParseInstance(`
machines 2
slots 1
job 6 0
job 4 1
`)
	if err != nil {
		panic(err)
	}
	fmt.Printf("n=%d C=%d m=%d\n", in.N(), in.NumClasses(), in.M)
	// Output: n=2 C=2 m=2
}

// ExampleCheckFeasible demonstrates the C ≤ c·m feasibility condition.
func ExampleCheckFeasible() {
	in := &ccsched.Instance{
		P:     []int64{1, 1, 1},
		Class: []int{0, 1, 2},
		M:     1,
		Slots: 2, // three classes, two total slots: impossible
	}
	fmt.Println(ccsched.CheckFeasible(in))
	// Output: core: more classes than total class slots (C > c*m)
}
