package ccsched

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"ccsched/internal/ptas"
)

// Durable sessions. SnapshotState serializes everything a Session is —
// its instance, stable job ids, options — plus everything it has learned
// (the ptas warm state and the guess-feasibility cache) into one versioned,
// self-describing JSON document; RestoreSession rebuilds a Session from it
// in a later process.
//
// The envelope (version, options, instance, job ids) is validated strictly:
// any defect there fails the restore, because a session with a wrong
// instance or dangling ids is not degraded, it is wrong. The warm sections
// (templates, search seeds, cache verdicts) follow the opposite rule —
// *dropped, never trusted*: each section is validated independently and a
// stale or corrupt one is discarded, degrading that component to a cold
// solve. What survives is re-verified at point of use (certificates are
// re-checked from scratch, basis restores are verdict-only, restored cache
// verdicts re-verify their evidence against a freshly built N-fold before
// the first hit counts), so a restored session can never return a makespan
// different from a cold solve of the same instance — only reach it faster.

// SnapshotVersion is the schema version written by Session.SnapshotState
// and required by RestoreSession. Bump it on any incompatible change to the
// snapshot document; old processes then refuse new snapshots (and vice
// versa) instead of guessing.
const SnapshotVersion = 1

// sessionSnapshot is the JSON document produced by Session.SnapshotState.
type sessionSnapshot struct {
	Version  int       `json:"version"`
	Options  Options   `json:"options"`
	Instance *Instance `json:"instance"`
	JobIDs   []int64   `json:"job_ids"`
	NextID   int64     `json:"next_id"`
	// Digest is the hex SHA-256 of the instance content. The warm sections
	// below were learned on exactly this instance; a mismatch (a spliced or
	// hand-edited document) drops them while the envelope still restores.
	Digest string              `json:"instance_digest"`
	State  *ptas.StateSnapshot `json:"state,omitempty"`
	Cache  *ptas.CacheSnapshot `json:"cache,omitempty"`
}

// instanceDigest hashes the instance content for the snapshot cross-check.
func instanceDigest(in *Instance) string {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(in.M)
	put(int64(in.Slots))
	put(int64(in.N()))
	for _, p := range in.P {
		put(p)
	}
	for _, c := range in.Class {
		put(int64(c))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// SnapshotState serializes the session — instance, job ids, options, and
// all warm solver state including the feasibility cache — into a versioned
// JSON document for RestoreSession. The snapshot is consistent: it is taken
// under the session lock, so it never interleaves with a delta or a solve.
// Taking a snapshot does not disturb the session.
func (s *Session) SnapshotState() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := sessionSnapshot{
		Version:  SnapshotVersion,
		Options:  s.opts,
		Instance: s.in,
		JobIDs:   s.ids,
		NextID:   s.nextID,
		Digest:   instanceDigest(s.in),
		State:    s.state.Export(),
		Cache:    s.opts.Cache.Export(),
	}
	return json.Marshal(snap)
}

// RestoreSession rebuilds a session from a SnapshotState document. The
// envelope — schema version, options, instance, job ids — must be valid in
// full or the restore fails. The warm sections are restored on the
// dropped-never-trusted rule: a section that fails validation (or whose
// instance digest no longer matches) is discarded and that component starts
// cold, and everything that does restore is re-verified before it can
// influence a verdict, so the restored session's first Solve returns a
// makespan bit-identical to a cold solve of the same instance. The restored
// session owns a private feasibility cache seeded from the snapshot (unless
// the options say NoCache); its first Solve call re-solves from the
// restored warm state.
func RestoreSession(data []byte) (*Session, error) {
	var snap sessionSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("ccsched: decoding snapshot: %w", err)
	}
	if snap.Version != SnapshotVersion {
		return nil, fmt.Errorf("ccsched: snapshot schema version %d, this build speaks %d", snap.Version, SnapshotVersion)
	}
	if snap.Instance == nil {
		return nil, fmt.Errorf("ccsched: snapshot has no instance")
	}
	in := snap.Instance
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("ccsched: snapshot instance: %w", err)
	}
	switch snap.Options.Variant {
	case Splittable, Preemptive, NonPreemptive:
	default:
		return nil, fmt.Errorf("ccsched: snapshot has unknown variant %v", snap.Options.Variant)
	}
	if len(snap.JobIDs) != in.N() {
		return nil, fmt.Errorf("ccsched: snapshot has %d job ids for %d jobs", len(snap.JobIDs), in.N())
	}
	seen := make(map[int64]bool, len(snap.JobIDs))
	for _, id := range snap.JobIDs {
		if id < 1 || id > snap.NextID {
			return nil, fmt.Errorf("ccsched: snapshot job id %d outside [1,%d]", id, snap.NextID)
		}
		if seen[id] {
			return nil, fmt.Errorf("ccsched: snapshot job id %d duplicated", id)
		}
		seen[id] = true
	}
	// The envelope is good; everything beyond this point degrades instead
	// of failing. Warm sections learned on a different instance (digest
	// mismatch) are dropped wholesale.
	state, cache := snap.State, snap.Cache
	if snap.Digest != instanceDigest(in) {
		state, cache = nil, nil
	}
	opts := snap.Options
	opts.Cache = nil
	if !opts.NoCache {
		opts.Cache = ptas.RestoreCache(cache)
	}
	s := &Session{
		in:     in.Clone(),
		ids:    append([]int64(nil), snap.JobIDs...),
		nextID: snap.NextID,
		opts:   opts,
		gen:    1,
	}
	s.state = ptas.RestoreState(state, s.in)
	return s, nil
}
