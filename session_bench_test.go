package ccsched

// The PR 5 churn benchmarks: the acceptance workloads for scheduling
// sessions. One op = one churn round: mutate 5% of a uniform n=1000
// instance and re-solve with the splittable PTAS at ε=1. The session
// sub-benchmarks re-solve through a Session (carried templates, seeded
// search, session-keyed feasibility cache under derived digests, carried
// certificates); the cold sub-benchmarks solve the identical mutated
// instances from scratch with an isolated fresh cache per round — what a
// stateless server does. The session differential tests prove both produce
// bit-identical makespans.
//
// Two workloads bound the space:
//
//   - BenchmarkSessionChurn ("resize churn"): 5% of jobs re-estimate their
//     size by up to ±2% per round — the steady-state trickle of a live
//     scheduler. The rounded class loads the guess N-folds are built from
//     rarely change, so session re-solves mostly skip the engines via the
//     derived-digest feasibility cache. This is the PR 5 acceptance row.
//   - BenchmarkSessionChurnRedraw ("redraw churn"): 5% of jobs redrawn
//     uniformly from [1, pmax], plus departures and arrivals — an
//     adversarial workload whose rounded loads change almost every round.
//     Here bit-parity forces the session to redo nearly all engine work,
//     so the two rows converge; reported for honesty, not gated.

import (
	"context"
	"math/rand"
	"testing"
)

const (
	churnN       = 1000
	churnClasses = 100
	churnM       = 50
	churnSlots   = 3
	churnPMax    = 10000
	churnFrac    = 20 // 1/20 = 5% of jobs mutated per round
)

func churnBase(b *testing.B) *Instance {
	b.Helper()
	in, err := Generate("uniform", GeneratorConfig{
		N: churnN, Classes: churnClasses, Machines: churnM, Slots: churnSlots, PMax: churnPMax, Seed: 101,
	})
	if err != nil {
		b.Fatal(err)
	}
	return in
}

var churnOpts = Options{Variant: Splittable, Tier: TierPTAS, Epsilon: 1, Parallelism: 1}

// resizeRound applies round i of the resize-churn workload to p (the
// current processing times, mutated in place): 5% of jobs re-estimate by up
// to ±2%. Deterministic in (i, current state), so the session and cold
// sub-benchmarks replay identical instance streams.
func resizeRound(i int, p []int64) {
	rng := rand.New(rand.NewSource(int64(i)*7717 + 5))
	for k := 0; k < len(p)/churnFrac; k++ {
		pos := rng.Intn(len(p))
		cur := p[pos]
		next := cur + rng.Int63n(2*cur/50+1) - cur/50
		if next < 1 {
			next = 1
		}
		p[pos] = next
	}
}

// BenchmarkSessionChurn is the PR 5 acceptance benchmark (resize churn);
// the CI perf gate tracks both rows via scripts/benchdiff.
func BenchmarkSessionChurn(b *testing.B) {
	ctx := context.Background()
	b.Run("session", func(b *testing.B) {
		sess, err := NewSession(churnBase(b), churnOpts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Solve(ctx); err != nil {
			b.Fatal(err)
		}
		mirror := sess.Instance()
		ids := sess.JobIDs()
		var cacheHits, certHits, probes int64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			prev := append([]int64(nil), mirror.P...)
			resizeRound(i, mirror.P)
			for pos := range mirror.P {
				if mirror.P[pos] != prev[pos] {
					if err := sess.Resize(ids[pos], mirror.P[pos]); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StartTimer()
			res, err := sess.Solve(ctx)
			if err != nil {
				b.Fatal(err)
			}
			cacheHits += int64(res.Report.CacheHits)
			certHits += int64(res.Report.CertHits)
			probes += int64(res.Report.Guesses)
		}
		b.ReportMetric(float64(probes)/float64(b.N), "probes/op")
		b.ReportMetric(float64(cacheHits)/float64(b.N), "cachehits/op")
		b.ReportMetric(float64(certHits)/float64(b.N), "certhits/op")
	})
	b.Run("cold", func(b *testing.B) {
		in := churnBase(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			resizeRound(i, in.P)
			coldOpts := churnOpts
			coldOpts.Cache = NewFeasibilityCache()
			b.StartTimer()
			if _, err := Solve(ctx, in, coldOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// churnDelta is one redraw round's mutation batch, expressed positionally
// against the current job order (identical on the session and mirror
// sides).
type churnDelta struct {
	resizePos []int
	resizeP   []int64
	removePos []int // strictly descending
	addP      []int64
	addClass  []int
}

// churnRound derives redraw round i's delta deterministically from i alone.
// Mutations never repeat exactly, keeping every round's re-solve honest.
func churnRound(i, njobs int) churnDelta {
	rng := rand.New(rand.NewSource(int64(i)*9973 + 101))
	total := njobs / churnFrac
	removes := total / 8
	adds := removes // keep n stable so rounds stay comparable
	resizes := total - removes - adds
	d := churnDelta{}
	for k := 0; k < resizes; k++ {
		d.resizePos = append(d.resizePos, rng.Intn(njobs))
		d.resizeP = append(d.resizeP, 1+rng.Int63n(churnPMax))
	}
	seen := map[int]bool{}
	for len(d.removePos) < removes {
		p := rng.Intn(njobs)
		if !seen[p] {
			seen[p] = true
			d.removePos = append(d.removePos, p)
		}
	}
	// Descending order so positional removal is well-defined.
	for a := 0; a < len(d.removePos); a++ {
		for b := a + 1; b < len(d.removePos); b++ {
			if d.removePos[b] > d.removePos[a] {
				d.removePos[a], d.removePos[b] = d.removePos[b], d.removePos[a]
			}
		}
	}
	for k := 0; k < adds; k++ {
		d.addP = append(d.addP, 1+rng.Int63n(churnPMax))
		d.addClass = append(d.addClass, rng.Intn(churnClasses))
	}
	return d
}

// applyChurnToSession applies a redraw delta through the Session API.
func applyChurnToSession(b *testing.B, s *Session, d churnDelta) {
	b.Helper()
	ids := s.JobIDs()
	for k, pos := range d.resizePos {
		if err := s.Resize(ids[pos], d.resizeP[k]); err != nil {
			b.Fatal(err)
		}
	}
	rm := make([]int64, len(d.removePos))
	for k, pos := range d.removePos {
		rm[k] = ids[pos]
	}
	if err := s.RemoveJobs(rm...); err != nil {
		b.Fatal(err)
	}
	if _, err := s.AddJobs(d.addP, d.addClass); err != nil {
		b.Fatal(err)
	}
}

// applyChurnToInstance applies the same redraw delta positionally to a
// plain instance, mirroring the Session's remove-filter + append semantics.
func applyChurnToInstance(in *Instance, d churnDelta) {
	for k, pos := range d.resizePos {
		in.P[pos] = d.resizeP[k]
	}
	for _, pos := range d.removePos {
		in.P = append(in.P[:pos], in.P[pos+1:]...)
		in.Class = append(in.Class[:pos], in.Class[pos+1:]...)
	}
	in.P = append(in.P, d.addP...)
	in.Class = append(in.Class, d.addClass...)
}

// BenchmarkSessionChurnRedraw is the adversarial redraw workload (see the
// file comment). Not part of the CI perf gate: individual rounds span
// 50ms–8s depending on how hard the drifted instances' N-folds happen to
// be, which no cross-host threshold survives.
func BenchmarkSessionChurnRedraw(b *testing.B) {
	ctx := context.Background()
	b.Run("session", func(b *testing.B) {
		sess, err := NewSession(churnBase(b), churnOpts)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sess.Solve(ctx); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			applyChurnToSession(b, sess, churnRound(i, len(sess.JobIDs())))
			b.StartTimer()
			if _, err := sess.Solve(ctx); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cold", func(b *testing.B) {
		in := churnBase(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			applyChurnToInstance(in, churnRound(i, in.N()))
			coldOpts := churnOpts
			coldOpts.Cache = NewFeasibilityCache()
			b.StartTimer()
			if _, err := Solve(ctx, in, coldOpts); err != nil {
				b.Fatal(err)
			}
		}
	})
}
