// Package panicsafe converts panics in solver code into typed errors.
//
// A panic anywhere in the LP → ILP → N-fold → PTAS pipeline used to kill
// the whole process: the engines run worker goroutines (speculative guess
// probes, branch-and-bound subtree workers, brick-scan ranges) and a panic
// on any of them cannot be recovered by the caller. This package provides
// the two halves of the containment protocol:
//
//   - Worker goroutines recover themselves and convert the panic into an
//     *Error (Capture), which travels to the joining goroutine through the
//     worker's normal result channel — or, where the joiner re-panics with
//     the captured value, keeps its original stack and label through any
//     number of hops (Capture passes *Error values through untouched).
//   - Boundary functions — ccsched.Solve and the service's flight runner —
//     defer Recover, so whatever reaches them surfaces as an error wrapping
//     ErrInternal instead of unwinding the process.
//
// The resulting error carries the panic value, the stack captured at the
// original recovery site, and the label of the component (mirroring the
// solve-trace span names) that panicked, so an ErrInternal in a log or an
// HTTP 500 body is attributable without a core dump.
package panicsafe

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// ErrInternal is the sentinel wrapped by every recovered panic. Callers
// branch with errors.Is(err, ErrInternal); it is re-exported as
// ccsched.ErrInternal.
var ErrInternal = errors.New("internal error (recovered panic)")

// Error is one recovered panic as a typed error.
type Error struct {
	// Value is the value the panic was raised with.
	Value any
	// Stack is the goroutine stack captured at the original recovery site
	// (not at any later re-panic hop).
	Stack []byte
	// Span labels the component that panicked, mirroring the solve-trace
	// span vocabulary ("guess_probe", "bb_worker", "brick_scan", "solve",
	// "flight").
	Span string
}

// Error renders the panic value and its component label; the stack is kept
// for logs (see Stack) rather than inlined into every message.
func (e *Error) Error() string {
	return fmt.Sprintf("%v in %s: %v", ErrInternal, e.Span, e.Value)
}

// Unwrap ties every recovered panic to ErrInternal for errors.Is.
func (e *Error) Unwrap() error { return ErrInternal }

// Capture converts a recover() value into an *Error labeled with span,
// grabbing the current goroutine's stack. A value that is already an
// *Error — a worker's captured panic re-raised on the joining goroutine —
// passes through untouched, keeping the original stack and label.
func Capture(v any, span string) *Error {
	if pe, ok := v.(*Error); ok {
		return pe
	}
	return &Error{Value: v, Stack: debug.Stack(), Span: span}
}

// Recover is the deferred boundary helper:
//
//	defer panicsafe.Recover(&err, "solve")
//
// On panic it stores the captured *Error into *errp; without one it leaves
// *errp alone. It must be the deferred function itself (not called from
// inside another deferred function), or recover() sees nothing.
func Recover(errp *error, span string) {
	if v := recover(); v != nil {
		*errp = Capture(v, span)
	}
}
