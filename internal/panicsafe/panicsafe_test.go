package panicsafe

import (
	"errors"
	"strings"
	"testing"
)

// TestRecoverConvertsPanic checks the deferred boundary helper: a panic
// becomes an error wrapping ErrInternal, carrying the value, a stack and
// the span label; no panic leaves the error slot alone.
func TestRecoverConvertsPanic(t *testing.T) {
	boom := func() (err error) {
		defer Recover(&err, "solve")
		panic("kaboom")
	}
	err := boom()
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("errors.Is(err, ErrInternal) = false for %v", err)
	}
	var pe *Error
	if !errors.As(err, &pe) {
		t.Fatalf("errors.As(*Error) failed for %T", err)
	}
	if pe.Value != "kaboom" || pe.Span != "solve" || len(pe.Stack) == 0 {
		t.Fatalf("captured error incomplete: value=%v span=%q stack=%d bytes", pe.Value, pe.Span, len(pe.Stack))
	}
	if !strings.Contains(err.Error(), "kaboom") || !strings.Contains(err.Error(), "solve") {
		t.Fatalf("message %q missing value or span", err.Error())
	}

	calm := func() (err error) {
		defer Recover(&err, "solve")
		return nil
	}
	if err := calm(); err != nil {
		t.Fatalf("no panic, but err = %v", err)
	}
}

// TestCapturePassthrough checks the re-panic hop protocol: a worker's
// captured *Error re-panicked on the joining goroutine keeps its original
// stack and span through a second Capture.
func TestCapturePassthrough(t *testing.T) {
	orig := Capture("first", "brick_scan")
	again := Capture(orig, "solve")
	if again != orig {
		t.Fatalf("Capture re-wrapped an existing *Error (span now %q)", again.Span)
	}
}
