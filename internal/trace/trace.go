// Package trace is the solve pipeline's zero-dependency span collector: a
// bounded, concurrency-safe timeline of hierarchical spans (solve →
// guess_search → probe → engine stages) attached to one Solve call.
//
// The design constraints, in order:
//
//   - Disabled tracing must be free. Span is a small value type whose
//     methods no-op when no Collector is attached, so an untraced hot path
//     pays exactly one nil check per would-be span — no allocation, no
//     time.Now, no lock. The zero Span is valid and disabled.
//   - Tracing must be inert. A Collector only ever records names, clocks
//     and int64 attributes; nothing in this package is readable by solver
//     code, so attaching a collector cannot influence a verdict, guess or
//     schedule (the trace-parity differential tests pin this end to end).
//   - Cardinality must be bounded. A collector holds at most its span
//     limit; spans past the limit are not dropped silently but aggregated
//     by name into summary rows (count + total duration), so a pathological
//     solve (thousands of branch-and-bound batches) still exports a small,
//     complete-by-construction document.
//
// Spans may start and end on different goroutines than their parent (the
// speculative probe search does this); the collector serializes all writes
// behind one mutex, which is acceptable because traced spans are created at
// stage granularity (per probe, per engine run, per node batch), never per
// LP pivot.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// DefaultSpanLimit is the per-collector span cap used when NewCollector is
// given a non-positive limit. Past it, spans aggregate into summary rows.
const DefaultSpanLimit = 512

// Attr is one int64 span attribute (a counter or label the span carries).
type Attr struct {
	// Key names the attribute ("t", "nodes", "pivots", ...).
	Key string `json:"k"`
	// Val is the attribute value.
	Val int64 `json:"v"`
}

// A builds an Attr; it exists to keep call sites one token per attribute.
func A(key string, val int64) Attr { return Attr{Key: key, Val: val} }

// Collector accumulates the spans of one solve. Create with NewCollector,
// hand out spans via Root/Child, and Export once the solve finished. Safe
// for concurrent use by any number of goroutines.
type Collector struct {
	mu    sync.Mutex
	start time.Time
	limit int
	spans []spanRec
	agg   map[string]*aggRec
}

// spanRec is one recorded span. start/end are offsets from the collector
// epoch; end < 0 marks a still-open span (closed at Export time).
type spanRec struct {
	name       string
	parent     int
	start, end time.Duration
	attrs      []Attr
}

// aggRec accumulates spans beyond the cap, by name.
type aggRec struct {
	count int64
	total time.Duration
}

// NewCollector returns an empty collector capped at limit spans
// (DefaultSpanLimit when limit <= 0).
func NewCollector(limit int) *Collector {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Collector{start: time.Now(), limit: limit}
}

// Span is a handle on one live span, or a disabled no-op handle when its
// collector pointer is nil (the zero value). Copy freely; End at most once.
type Span struct {
	c *Collector
	// idx is the span's index in the collector, or aggIdx for spans past
	// the cap (recorded only as name + duration into the aggregate rows).
	idx  int
	name string
	t0   time.Time
}

// aggIdx marks a Span that exists only as an aggregate row contribution.
const aggIdx = -2

// rootIdx is the parent index of root spans in the exported document.
const rootIdx = -1

// Enabled reports whether the span actually records (false for the zero
// Span and for every span derived from it). Hot paths use it to skip
// attribute computation that only feeds tracing.
func (s Span) Enabled() bool { return s.c != nil }

// Root opens a top-level span. A nil collector returns a disabled span, so
// callers thread Collector pointers without nil checks of their own.
func (c *Collector) Root(name string) Span {
	if c == nil {
		return Span{}
	}
	return c.open(name, rootIdx)
}

// Child opens a sub-span of s. On a disabled span it returns another
// disabled span — the one nil check that makes untraced solves free.
func (s Span) Child(name string) Span {
	if s.c == nil {
		return Span{}
	}
	parent := s.idx
	if parent == aggIdx {
		// Children of an aggregated span aggregate too: the cap bounds the
		// whole subtree, not just one generation.
		return Span{c: s.c, idx: aggIdx, name: name, t0: time.Now()}
	}
	return s.c.open(name, parent)
}

// open records a new span (or routes it to the aggregate rows past the cap).
func (c *Collector) open(name string, parent int) Span {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.spans) >= c.limit {
		return Span{c: c, idx: aggIdx, name: name, t0: now}
	}
	c.spans = append(c.spans, spanRec{name: name, parent: parent, start: now.Sub(c.start), end: -1})
	return Span{c: c, idx: len(c.spans) - 1, name: name, t0: now}
}

// End closes the span, attaching attrs. Ending a disabled span is a no-op;
// ending twice keeps the first closure.
func (s Span) End(attrs ...Attr) {
	if s.c == nil {
		return
	}
	now := time.Now()
	s.c.mu.Lock()
	defer s.c.mu.Unlock()
	if s.idx == aggIdx {
		if s.c.agg == nil {
			s.c.agg = make(map[string]*aggRec)
		}
		r := s.c.agg[s.name]
		if r == nil {
			r = &aggRec{}
			s.c.agg[s.name] = r
		}
		r.count++
		r.total += now.Sub(s.t0)
		return
	}
	rec := &s.c.spans[s.idx]
	if rec.end >= 0 {
		return
	}
	rec.end = now.Sub(s.c.start)
	if len(attrs) > 0 {
		rec.attrs = append(rec.attrs, attrs...)
	}
}

// SpanRecord is one exported span of a Trace. Parent is the index of the
// enclosing span in Trace.Spans, or -1 for a root span. Times are integer
// microseconds from the collector epoch, so jq arithmetic over them is
// exact.
type SpanRecord struct {
	// Name identifies the pipeline stage ("solve", "guess_search",
	// "probe", "nfold_augment", "bb", ...).
	Name string `json:"name"`
	// Parent indexes the enclosing span in Spans (-1 for roots).
	Parent int `json:"parent"`
	// StartUs is the span's start offset in microseconds.
	StartUs int64 `json:"start_us"`
	// DurUs is the span's wall-clock duration in microseconds.
	DurUs int64 `json:"dur_us"`
	// Attrs carries the stage's counters (cache hits, nodes, pivots, ...).
	Attrs []Attr `json:"attrs,omitempty"`
}

// Aggregate is one summary row for spans recorded past the collector's span
// cap: everything of one name folded into a count and a total duration.
type Aggregate struct {
	// Name is the aggregated spans' stage name.
	Name string `json:"name"`
	// Count is how many spans were folded into this row.
	Count int64 `json:"count"`
	// TotalUs is their summed duration in microseconds.
	TotalUs int64 `json:"total_us"`
}

// Trace is the exported span timeline of one solve, as serialized into
// Result.Trace. Spans is bounded by the collector's span limit; spans past
// the limit appear only in Aggregated.
type Trace struct {
	// Spans is the recorded timeline in creation order (parents precede
	// children).
	Spans []SpanRecord `json:"spans"`
	// Aggregated summarizes spans beyond the span cap, by name, sorted.
	Aggregated []Aggregate `json:"aggregated,omitempty"`
	// SpanLimit echoes the collector's cap, so a reader can tell a complete
	// timeline from a truncated-and-aggregated one.
	SpanLimit int `json:"span_limit"`
}

// Export renders the collected spans. Still-open spans are closed at the
// export instant. Export may be called on a nil collector (returns nil).
func (c *Collector) Export() *Trace {
	if c == nil {
		return nil
	}
	now := time.Now().Sub(c.start)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := &Trace{SpanLimit: c.limit, Spans: make([]SpanRecord, len(c.spans))}
	for i, rec := range c.spans {
		end := rec.end
		if end < 0 {
			end = now
		}
		out.Spans[i] = SpanRecord{
			Name:    rec.name,
			Parent:  rec.parent,
			StartUs: rec.start.Microseconds(),
			DurUs:   (end - rec.start).Microseconds(),
			Attrs:   rec.attrs,
		}
	}
	for name, r := range c.agg {
		out.Aggregated = append(out.Aggregated, Aggregate{Name: name, Count: r.count, TotalUs: r.total.Microseconds()})
	}
	sort.Slice(out.Aggregated, func(i, j int) bool { return out.Aggregated[i].Name < out.Aggregated[j].Name })
	return out
}

// Attr returns the value of the named attribute and whether it is present.
func (r SpanRecord) Attr(key string) (int64, bool) {
	for _, a := range r.Attrs {
		if a.Key == key {
			return a.Val, true
		}
	}
	return 0, false
}

// Render pretty-prints the trace: the span tree with durations and
// attributes, a per-stage self-time table, and the slowest probe spans.
// This is what ccsolve -trace shows.
func (t *Trace) Render(w io.Writer) {
	if t == nil || len(t.Spans) == 0 {
		fmt.Fprintln(w, "trace: empty")
		return
	}
	children := make([][]int, len(t.Spans))
	var roots []int
	for i, sp := range t.Spans {
		if sp.Parent >= 0 && sp.Parent < len(t.Spans) {
			children[sp.Parent] = append(children[sp.Parent], i)
		} else {
			roots = append(roots, i)
		}
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		sp := t.Spans[i]
		var b strings.Builder
		fmt.Fprintf(&b, "%s%-*s %9.3fms", strings.Repeat("  ", depth), 24-2*depth, sp.Name, float64(sp.DurUs)/1000)
		for _, a := range sp.Attrs {
			fmt.Fprintf(&b, " %s=%d", a.Key, a.Val)
		}
		fmt.Fprintln(w, b.String())
		for _, c := range children[i] {
			walk(c, depth+1)
		}
	}
	for _, r := range roots {
		walk(r, 0)
	}
	if len(t.Aggregated) > 0 {
		fmt.Fprintln(w, "aggregated (past span cap):")
		for _, a := range t.Aggregated {
			fmt.Fprintf(w, "  %-22s ×%-6d %9.3fms total\n", a.Name, a.Count, float64(a.TotalUs)/1000)
		}
	}

	// Self time per stage: a span's duration minus its children's.
	type stage struct {
		name          string
		count         int64
		totalUs, self int64
	}
	childUs := make([]int64, len(t.Spans))
	for i, sp := range t.Spans {
		if sp.Parent >= 0 && sp.Parent < len(t.Spans) {
			childUs[sp.Parent] += sp.DurUs
		}
		_ = i
	}
	byName := map[string]*stage{}
	order := []string{}
	for i, sp := range t.Spans {
		st := byName[sp.Name]
		if st == nil {
			st = &stage{name: sp.Name}
			byName[sp.Name] = st
			order = append(order, sp.Name)
		}
		st.count++
		st.totalUs += sp.DurUs
		self := sp.DurUs - childUs[i]
		if self > 0 {
			st.self += self
		}
	}
	fmt.Fprintln(w, "self time per stage:")
	for _, name := range order {
		st := byName[name]
		fmt.Fprintf(w, "  %-22s ×%-6d total %9.3fms  self %9.3fms\n",
			st.name, st.count, float64(st.totalUs)/1000, float64(st.self)/1000)
	}

	// Slowest probes.
	var probes []int
	for i, sp := range t.Spans {
		if sp.Name == "probe" {
			probes = append(probes, i)
		}
	}
	if len(probes) > 0 {
		sort.Slice(probes, func(a, b int) bool { return t.Spans[probes[a]].DurUs > t.Spans[probes[b]].DurUs })
		if len(probes) > 5 {
			probes = probes[:5]
		}
		fmt.Fprintln(w, "slowest probes:")
		for _, i := range probes {
			sp := t.Spans[i]
			tGuess, _ := sp.Attr("t")
			feas, _ := sp.Attr("feasible")
			fmt.Fprintf(w, "  T=%-12d %9.3fms feasible=%d\n", tGuess, float64(sp.DurUs)/1000, feas)
		}
	}
}
