package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// TestDisabledSpanIsInert pins the nil-safe disabled path: every operation
// on the zero Span (and children derived from it) must be a no-op.
func TestDisabledSpanIsInert(t *testing.T) {
	var s Span
	if s.Enabled() {
		t.Fatal("zero Span reports Enabled")
	}
	c := s.Child("x")
	if c.Enabled() {
		t.Fatal("child of zero Span reports Enabled")
	}
	c.End(A("k", 1))
	s.End()
	var nilC *Collector
	if nilC.Export() != nil {
		t.Fatal("nil collector exported a trace")
	}
	if nilC.Root("r").Enabled() {
		t.Fatal("nil collector handed out an enabled span")
	}
}

// TestHierarchyAndAttrs checks parent indices, attributes, and creation
// order in the exported document.
func TestHierarchyAndAttrs(t *testing.T) {
	col := NewCollector(0)
	root := col.Root("solve")
	search := root.Child("guess_search")
	probe := search.Child("probe")
	probe.End(A("t", 42), A("feasible", 1))
	search.End(A("probes", 1))
	root.End()
	tr := col.Export()
	if len(tr.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(tr.Spans))
	}
	if tr.Spans[0].Name != "solve" || tr.Spans[0].Parent != -1 {
		t.Fatalf("bad root span: %+v", tr.Spans[0])
	}
	if tr.Spans[1].Parent != 0 || tr.Spans[2].Parent != 1 {
		t.Fatalf("bad parent chain: %+v", tr.Spans)
	}
	if v, ok := tr.Spans[2].Attr("t"); !ok || v != 42 {
		t.Fatalf("probe span lost attr t: %+v", tr.Spans[2])
	}
	if _, ok := tr.Spans[2].Attr("missing"); ok {
		t.Fatal("Attr invented a value")
	}
	for i, sp := range tr.Spans {
		if sp.DurUs < 0 || sp.StartUs < 0 {
			t.Fatalf("span %d has negative time: %+v", i, sp)
		}
	}
}

// TestDoubleEndKeepsFirst verifies ending twice does not extend a span.
func TestDoubleEndKeepsFirst(t *testing.T) {
	col := NewCollector(0)
	s := col.Root("solve")
	s.End(A("a", 1))
	s.End(A("b", 2))
	tr := col.Export()
	if len(tr.Spans) != 1 {
		t.Fatalf("got %d spans", len(tr.Spans))
	}
	if _, ok := tr.Spans[0].Attr("b"); ok {
		t.Fatal("second End mutated the span")
	}
}

// TestOpenSpansClosedAtExport verifies Export closes still-open spans
// instead of exporting negative durations.
func TestOpenSpansClosedAtExport(t *testing.T) {
	col := NewCollector(0)
	col.Root("solve") // never ended
	tr := col.Export()
	if len(tr.Spans) != 1 || tr.Spans[0].DurUs < 0 {
		t.Fatalf("open span exported badly: %+v", tr.Spans)
	}
}

// TestCardinalityCap pins the bounded-cardinality contract: spans past the
// limit (and their whole subtrees) fold into per-name aggregate rows.
func TestCardinalityCap(t *testing.T) {
	const limit = 8
	col := NewCollector(limit)
	root := col.Root("solve")
	for i := 0; i < 100; i++ {
		p := root.Child("probe")
		// Children of overflowed spans must aggregate too.
		b := p.Child("bb")
		b.End()
		p.End(A("t", int64(i)))
	}
	root.End()
	tr := col.Export()
	if len(tr.Spans) != limit {
		t.Fatalf("cap not enforced: %d spans, want %d", len(tr.Spans), limit)
	}
	if tr.SpanLimit != limit {
		t.Fatalf("SpanLimit = %d, want %d", tr.SpanLimit, limit)
	}
	var probeAgg, bbAgg int64
	for _, a := range tr.Aggregated {
		switch a.Name {
		case "probe":
			probeAgg = a.Count
		case "bb":
			bbAgg = a.Count
		}
		if a.TotalUs < 0 {
			t.Fatalf("negative aggregate time: %+v", a)
		}
	}
	// 7 probes recorded as spans (root took one slot); each recorded probe's
	// bb child also takes a slot until the cap, so counts must cover the rest.
	recorded := int64(0)
	for _, sp := range tr.Spans {
		if sp.Name == "probe" {
			recorded++
		}
	}
	if probeAgg+recorded != 100 {
		t.Fatalf("probe spans lost: %d recorded + %d aggregated != 100", recorded, probeAgg)
	}
	if bbAgg == 0 {
		t.Fatal("overflowed subtree children were not aggregated")
	}
}

// TestConcurrentSpans drives the collector from many goroutines (run under
// -race in CI) and checks nothing is lost.
func TestConcurrentSpans(t *testing.T) {
	col := NewCollector(10000)
	root := col.Root("solve")
	var wg sync.WaitGroup
	const workers, each = 8, 50
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s := root.Child("probe")
				s.End(A("t", int64(w*each+i)))
			}
		}(w)
	}
	wg.Wait()
	root.End()
	tr := col.Export()
	if got := len(tr.Spans); got != 1+workers*each {
		t.Fatalf("got %d spans, want %d", got, 1+workers*each)
	}
}

// TestJSONShape pins the wire field names the server CI job queries with jq.
func TestJSONShape(t *testing.T) {
	col := NewCollector(0)
	s := col.Root("solve")
	s.End(A("n", 3))
	data, err := json.Marshal(col.Export())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"spans"`, `"span_limit"`, `"name":"solve"`, `"parent":-1`, `"start_us"`, `"dur_us"`, `"k":"n"`, `"v":3`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("JSON missing %s: %s", want, data)
		}
	}
}

// TestRender smoke-tests the pretty-printer sections.
func TestRender(t *testing.T) {
	col := NewCollector(4)
	root := col.Root("solve")
	for i := 0; i < 10; i++ {
		p := root.Child("probe")
		p.End(A("t", int64(i)), A("feasible", int64(i%2)))
	}
	root.End()
	var buf bytes.Buffer
	col.Export().Render(&buf)
	out := buf.String()
	for _, want := range []string{"solve", "probe", "self time per stage:", "slowest probes:", "aggregated (past span cap):"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
	(&Trace{}).Render(&buf) // empty trace must not panic
	var nilTr *Trace
	nilTr.Render(&buf) // nor a nil one
}
