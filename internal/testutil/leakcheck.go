// Package testutil holds helpers shared by the test suites. Production
// code never imports it.
package testutil

import (
	"fmt"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakSlack is how many extra goroutines the checker tolerates: HTTP
// connection teardown and runtime housekeeping can lag the test body by a
// moment even when nothing leaked.
const leakSlack = 2

// LeakCheck snapshots the current goroutine count and returns a function
// that fails t if the count has not returned to within a small tolerance
// of the snapshot. The returned check retries for a grace period —
// dropping idle HTTP keepalive connections between attempts, the usual
// stragglers in service tests — so naturally-draining goroutines are not
// misreported as leaks. Use it around any code that forks workers:
//
//	check := testutil.LeakCheck(t)
//	... spawn and join goroutines ...
//	check()
//
// Call LeakCheck after standing up long-lived fixtures (test servers, warm
// client connections) so their goroutines are part of the baseline.
func LeakCheck(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		var after int
		for {
			http.DefaultClient.CloseIdleConnections()
			after = runtime.NumGoroutine()
			if after <= before+leakSlack {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("goroutine leak: %d before, %d after\n%s", before, after, goroutineDump())
	}
}

// goroutineDump renders the current goroutine stacks (truncated) so a leak
// failure names the stuck goroutines instead of just counting them.
func goroutineDump() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	dump := string(buf[:n])
	const maxDump = 16 << 10
	if len(dump) > maxDump {
		if cut := strings.LastIndex(dump[:maxDump], "\n\ngoroutine "); cut > 0 {
			dump = dump[:cut]
		} else {
			dump = dump[:maxDump]
		}
		dump += fmt.Sprintf("\n... (dump truncated; %d goroutines total)", runtime.NumGoroutine())
	}
	return dump
}
