// Package exact computes optimal makespans for small CCS instances. The
// experiment suite divides approximation-algorithm makespans by these
// optima to report true approximation ratios (for larger instances the
// certified lower bounds of internal/core are used instead).
//
// All three variants are NP-hard, so every solver here guards its input
// size and returns ErrTooLarge beyond it.
package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/big"
	"sort"

	"ccsched/internal/core"
	"ccsched/internal/lp"
)

// ErrTooLarge reports an instance beyond the exact solvers' limits.
var ErrTooLarge = errors.New("exact: instance too large for exact solving")

// NonPreemptive computes an optimal non-preemptive schedule by depth-first
// branch and bound over jobs in non-increasing size order, with class-slot
// tracking and load-based pruning. Practical up to roughly 20 jobs; the
// limit is enforced at 24 jobs with an error wrapping ErrTooLarge.
func NonPreemptive(in *core.Instance) (*core.NonPreemptiveSchedule, int64, error) {
	return NonPreemptiveCtx(context.Background(), in)
}

// ctxCheckNodes is how many branch-and-bound nodes pass between
// cancellation polls in NonPreemptiveCtx; nodes are cheap (no LP solve), so
// a coarser cadence than internal/ilp keeps the overhead negligible.
const ctxCheckNodes = 4096

// NonPreemptiveCtx is NonPreemptive under a context: cancellation is
// polled every ctxCheckNodes search nodes, so a canceled context aborts the
// exponential search with ctx.Err() instead of running to completion.
func NonPreemptiveCtx(ctx context.Context, in *core.Instance) (*core.NonPreemptiveSchedule, int64, error) {
	if err := ctx.Err(); err != nil {
		return nil, 0, err
	}
	if err := in.Validate(); err != nil {
		return nil, 0, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, 0, err
	}
	n := in.N()
	if n > 24 {
		return nil, 0, fmt.Errorf("%w: %d jobs", ErrTooLarge, n)
	}
	m := in.EffectiveMachines(core.NonPreemptive)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return in.P[order[a]] > in.P[order[b]] })
	lbRat, err := core.LowerBound(in, core.NonPreemptive)
	if err != nil {
		return nil, 0, err
	}
	lb := new(big.Int).Div(
		new(big.Int).Add(lbRat.Num(), new(big.Int).Sub(lbRat.Denom(), big.NewInt(1))),
		lbRat.Denom()).Int64()

	loads := make([]int64, m)
	classCount := make([]map[int]int, m)
	for i := range classCount {
		classCount[i] = make(map[int]int)
	}
	assign := make([]int64, n)
	best := make([]int64, n)
	bestVal := int64(math.MaxInt64)
	// Suffix sums for a simple area bound.
	suffix := make([]int64, n+1)
	for i := n - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + in.P[order[i]]
	}
	nodes := 0
	aborted := false
	var dfs func(k int, cur int64)
	dfs = func(k int, cur int64) {
		if nodes++; nodes%ctxCheckNodes == 0 && ctx.Err() != nil {
			aborted = true
		}
		if aborted || cur >= bestVal || bestVal == lb {
			return
		}
		if k == n {
			bestVal = cur
			for j := range assign {
				best[j] = assign[j]
			}
			return
		}
		j := order[k]
		// Area bound: remaining load must fit under bestVal-1.
		var room int64
		for i := int64(0); i < m; i++ {
			if r := bestVal - 1 - loads[i]; r > 0 {
				room += r
			}
		}
		if room < suffix[k] {
			return
		}
		seenEmpty := false
		for i := int64(0); i < m; i++ {
			// Symmetry breaking: try at most one empty machine.
			if loads[i] == 0 && len(classCount[i]) == 0 {
				if seenEmpty {
					continue
				}
				seenEmpty = true
			}
			cls := in.Class[j]
			newClass := classCount[i][cls] == 0
			if newClass && len(classCount[i]) >= in.Slots {
				continue
			}
			nl := loads[i] + in.P[j]
			if nl >= bestVal {
				continue
			}
			loads[i] = nl
			classCount[i][cls]++
			assign[j] = i
			nc := cur
			if nl > nc {
				nc = nl
			}
			dfs(k+1, nc)
			classCount[i][cls]--
			if classCount[i][cls] == 0 {
				delete(classCount[i], cls)
			}
			loads[i] -= in.P[j]
		}
	}
	// Seed bestVal with a trivial upper bound so pruning has a start.
	bestVal = in.TotalLoad() + 1
	dfs(0, 0)
	if aborted {
		return nil, 0, ctx.Err()
	}
	if bestVal > in.TotalLoad() {
		return nil, 0, fmt.Errorf("exact: no feasible schedule found")
	}
	return &core.NonPreemptiveSchedule{Assign: best}, bestVal, nil
}

// Splittable computes the optimal splittable makespan by enumerating
// machine slot patterns (which classes may run on which machine, respecting
// the c-slot budget, up to machine symmetry) and minimizing the makespan of
// each pattern with an LP. Practical for C ≤ 5, m ≤ 5; the limit is
// enforced at C ≤ 6, m ≤ 6 with an error wrapping ErrTooLarge.
func Splittable(in *core.Instance) (*big.Rat, error) {
	return SplittableCtx(context.Background(), in)
}

// SplittableCtx is Splittable under a context: cancellation is polled
// before every pattern LP, so a canceled context aborts the enumeration
// with ctx.Err().
func SplittableCtx(ctx context.Context, in *core.Instance) (*big.Rat, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	loads := in.ClassLoads()
	cc := len(loads)
	m := in.M
	if cc > 6 || m > 6 {
		return nil, fmt.Errorf("%w: C=%d m=%d", ErrTooLarge, cc, m)
	}
	// Enumerate per-machine class subsets of size <= c.
	var subsets []int
	for mask := 0; mask < 1<<cc; mask++ {
		if popcount(mask) <= in.Slots {
			subsets = append(subsets, mask)
		}
	}
	best := (*big.Rat)(nil)
	aborted := false
	// Multisets of subsets over m machines (machines are identical).
	pattern := make([]int, m)
	var rec func(mi int64, minIdx int)
	rec = func(mi int64, minIdx int) {
		if aborted {
			return
		}
		if mi == m {
			if ctx.Err() != nil {
				aborted = true
				return
			}
			if val := patternMakespan(loads, pattern, in); val != nil {
				if best == nil || val.Cmp(best) < 0 {
					best = val
				}
			}
			return
		}
		for si := minIdx; si < len(subsets); si++ {
			pattern[mi] = subsets[si]
			rec(mi+1, si)
		}
	}
	rec(0, 0)
	if aborted {
		return nil, ctx.Err()
	}
	if best == nil {
		return nil, fmt.Errorf("exact: no feasible pattern")
	}
	return best, nil
}

func popcount(x int) int {
	c := 0
	for x != 0 {
		x &= x - 1
		c++
	}
	return c
}

// patternMakespan minimizes the makespan of a fixed slot pattern with an
// LP: variables f_{u,i} ≥ 0 (allowed only when class u is in machine i's
// subset) and T; Σ_i f_{u,i} = P_u; Σ_u f_{u,i} ≤ T. Returns nil when the
// pattern cannot host all classes.
func patternMakespan(loads []int64, pattern []int, in *core.Instance) *big.Rat {
	cc := len(loads)
	m := len(pattern)
	// Quick reject: every class with positive load needs at least one slot.
	for u := 0; u < cc; u++ {
		if loads[u] == 0 {
			continue
		}
		ok := false
		for _, mask := range pattern {
			if mask&(1<<u) != 0 {
				ok = true
				break
			}
		}
		if !ok {
			return nil
		}
	}
	nv := cc*m + 1
	p := lp.NewProblem(nv)
	tIdx := cc * m
	p.Obj[tIdx] = 1
	for u := 0; u < cc; u++ {
		row := make([]float64, nv)
		for i := 0; i < m; i++ {
			if pattern[i]&(1<<u) != 0 {
				row[u*m+i] = 1
			} else {
				p.Upper[u*m+i] = 0
			}
		}
		p.AddRow(row, lp.EQ, float64(loads[u]))
	}
	for i := 0; i < m; i++ {
		row := make([]float64, nv)
		for u := 0; u < cc; u++ {
			row[u*m+i] = 1
		}
		row[tIdx] = -1
		p.AddRow(row, lp.LE, 0)
	}
	sol, err := lp.Solve(p)
	if err != nil || sol.Status != lp.Optimal {
		return nil
	}
	// The optimum is rational with a small denominator; snap the float to
	// the nearest rational with denominator ≤ m·c (makespans are P/k-like),
	// verified conservatively by rounding up at fine precision.
	return approxRat(sol.Obj, int64(m)*int64(in.Slots)*int64(cc)+1)
}

// approxRat snaps v to the best rational with denominator ≤ maxDen
// (Stern–Brocot style via continued fractions), falling back to a fine
// fixed-denominator rounding.
func approxRat(v float64, maxDen int64) *big.Rat {
	if v <= 0 {
		return new(big.Rat)
	}
	bestNum, bestDen := int64(math.Round(v)), int64(1)
	bestErr := math.Abs(v - float64(bestNum))
	for den := int64(2); den <= maxDen; den++ {
		num := int64(math.Round(v * float64(den)))
		if err := math.Abs(v - float64(num)/float64(den)); err < bestErr-1e-12 {
			bestNum, bestDen, bestErr = num, den, err
		}
	}
	if bestErr > 1e-6*math.Max(1, v) {
		// Not a clean small rational: keep a fine approximation.
		return new(big.Rat).SetFloat64(v)
	}
	return big.NewRat(bestNum, bestDen)
}

// PreemptiveBounds returns a certified bracket [lo, hi] for the preemptive
// optimum: the splittable optimum (or lower bound) combined with p_max from
// below, and the non-preemptive optimum from above.
func PreemptiveBounds(in *core.Instance) (lo, hi *big.Rat, err error) {
	if err := in.Validate(); err != nil {
		return nil, nil, err
	}
	if split, serr := Splittable(in); serr == nil {
		lo = split
	} else {
		lo, err = core.LowerBound(in, core.Splittable)
		if err != nil {
			return nil, nil, err
		}
	}
	lo = core.RatMax(lo, core.RatInt(in.PMax()))
	if _, np, nerr := NonPreemptive(in); nerr == nil {
		hi = core.RatInt(np)
	} else {
		return nil, nil, nerr
	}
	return lo, hi, nil
}
