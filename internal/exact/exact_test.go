package exact

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/generator"
)

func TestNonPreemptiveKnown(t *testing.T) {
	// Two machines, one slot each: classes cannot mix.
	in := &core.Instance{
		P:     []int64{4, 3, 5, 2},
		Class: []int{0, 0, 1, 1},
		M:     2,
		Slots: 1,
	}
	sched, opt, err := NonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 7 {
		t.Errorf("opt = %d, want 7 (classes {4,3} and {5,2})", opt)
	}
	if err := sched.Validate(in); err != nil {
		t.Fatal(err)
	}
	if sched.Makespan(in) != opt {
		t.Error("schedule does not achieve the reported optimum")
	}
}

func TestNonPreemptiveMixedSlots(t *testing.T) {
	in := &core.Instance{
		P:     []int64{6, 5, 4, 3, 2},
		Class: []int{0, 1, 2, 0, 1},
		M:     2,
		Slots: 3,
	}
	// Total 20, perfect split 10: {6,4} and {5,3,2} = 10/10, slots fine.
	_, opt, err := NonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt != 10 {
		t.Errorf("opt = %d, want 10", opt)
	}
}

func TestNonPreemptiveTooLarge(t *testing.T) {
	in := generator.Uniform(generator.Config{N: 30, Classes: 4, Machines: 3, Slots: 2, Seed: 1})
	if _, _, err := NonPreemptive(in); err == nil {
		t.Error("want ErrTooLarge")
	}
}

func TestExactBelowApprox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		in := &core.Instance{M: 1 + int64(rng.Intn(3)), Slots: 1 + rng.Intn(2)}
		cc := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			in.P = append(in.P, 1+int64(rng.Intn(20)))
			in.Class = append(in.Class, rng.Intn(cc))
		}
		norm, _ := in.Normalize()
		if core.CheckFeasible(norm) != nil {
			return true
		}
		_, opt, err := NonPreemptive(norm)
		if err != nil {
			return false
		}
		res, err := approx.SolveNonPreemptive(norm)
		if err != nil {
			return false
		}
		apx := res.Makespan(norm)
		// Exact optimum is a true lower bound on the approximation and the
		// 7/3 guarantee holds against it.
		return opt <= apx && 3*apx <= 7*opt
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSplittableKnown(t *testing.T) {
	// One class of 100 over 4 machines, c=1: split evenly -> 25.
	in := &core.Instance{P: []int64{100}, Class: []int{0}, M: 4, Slots: 1}
	opt, err := Splittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cmp(core.RatInt(25)) != 0 {
		t.Errorf("opt = %s, want 25", opt.RatString())
	}
}

func TestSplittableSlotContention(t *testing.T) {
	// The counterexample showing count+area feasibility is not sufficient:
	// loads {8,8,8,6} on m=2, c=2 has optimum 16 (pairs (8,8) and (8,6)
	// leave 16; splitting cannot help as all slots are used).
	in := &core.Instance{
		P:     []int64{8, 8, 8, 6},
		Class: []int{0, 1, 2, 3},
		M:     2,
		Slots: 2,
	}
	opt, err := Splittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Cmp(core.RatInt(15)) != 0 {
		// Σ/m = 15; feasible? Machines {8,7} and {1 of class 1? no —
		// splitting class 1 across machines uses a third slot on one
		// machine... with 4 classes and 4 slots each class gets exactly
		// one slot, so loads must pair up: best max(16, 14) = 16.
		if opt.Cmp(core.RatInt(16)) != 0 {
			t.Errorf("opt = %s, want 16", opt.RatString())
		}
	}
}

func TestSplittableMatchesApproxBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		in := &core.Instance{M: 1 + int64(rng.Intn(3)), Slots: 1 + rng.Intn(2)}
		cc := 1 + rng.Intn(3)
		for j := 0; j < n; j++ {
			in.P = append(in.P, 1+int64(rng.Intn(20)))
			in.Class = append(in.Class, rng.Intn(cc))
		}
		norm, _ := in.Normalize()
		if core.CheckFeasible(norm) != nil {
			return true
		}
		opt, err := Splittable(norm)
		if err != nil {
			return false
		}
		lb, err := core.LowerBound(norm, core.Splittable)
		if err != nil {
			return false
		}
		if opt.Cmp(lb) < 0 {
			return false // optimum below certified lower bound: impossible
		}
		res, err := approx.SolveSplittable(norm)
		if err != nil {
			return false
		}
		// 2-approximation versus the true optimum.
		return res.Makespan().Cmp(core.RatMul(opt, core.RatInt(2))) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSplittableTooLarge(t *testing.T) {
	in := generator.Uniform(generator.Config{N: 30, Classes: 10, Machines: 8, Slots: 2, Seed: 2})
	if _, err := Splittable(in); err == nil {
		t.Error("want ErrTooLarge")
	}
}

func TestPreemptiveBounds(t *testing.T) {
	in := &core.Instance{
		P:     []int64{9, 5, 4, 2},
		Class: []int{0, 1, 0, 1},
		M:     2,
		Slots: 2,
	}
	lo, hi, err := PreemptiveBounds(in)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Cmp(hi) > 0 {
		t.Fatalf("bracket inverted: [%s, %s]", lo.RatString(), hi.RatString())
	}
	// p_max = 9 must be inside the bracket's lower end.
	if lo.Cmp(core.RatInt(9)) < 0 {
		t.Errorf("lo = %s below p_max", lo.RatString())
	}
	// The preemptive approximation must land within 2x the bracket floor.
	res, err := approx.SolvePreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan().Cmp(core.RatMul(lo, core.RatInt(2))) > 0 {
		t.Errorf("approx %s exceeds 2x bracket floor %s", res.Makespan().RatString(), lo.RatString())
	}
}

func TestApproxRat(t *testing.T) {
	cases := []struct {
		v    float64
		den  int64
		want string
	}{
		{0.5, 10, "1/2"},
		{2.3333333333, 10, "7/3"},
		{25, 10, "25"},
		{0, 10, "0"},
	}
	for _, tc := range cases {
		got := approxRat(tc.v, tc.den)
		if got.RatString() != tc.want {
			t.Errorf("approxRat(%v) = %s, want %s", tc.v, got.RatString(), tc.want)
		}
	}
}
