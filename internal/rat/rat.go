// Package rat implements exact rational arithmetic with an allocation-free
// int64 fast path.
//
// The solvers in this module only ever manipulate rationals of the form
// P_u/k (class borders, denominators bounded by the machine count) and
// multiples of δ²T/c (PTAS grid units), so in practice nearly every value
// fits in an int64 numerator/denominator pair. R keeps exactly that pair as
// a value type — add/sub/mul/cmp run on machine words via 128-bit
// intermediates (math/bits) — and transparently falls back to a heap
// *big.Rat escape hatch on the rare overflow, preserving exactness
// unconditionally. Results of wide operations are demoted back to the fast
// path whenever they fit.
//
// R is an immutable value: every operation returns a new value and never
// mutates its operands, so values can be freely copied, stored in slices and
// shared across goroutines. The zero value is 0.
package rat

import (
	"fmt"
	"math"
	"math/big"
	"math/bits"
)

// R is an exact rational number. The zero value is 0.
//
// Invariant: either wide == nil and the value is num/den with den ≥ 1 and
// gcd(|num|, den) = 1 (den == 0 is the zero value, read as 0/1), or
// wide != nil and the value is *wide (num/den are ignored). The wide field
// is never mutated after creation.
type R struct {
	num, den int64
	wide     *big.Rat
}

// d returns the fast-path denominator, mapping the zero value's 0 to 1.
func (r R) d() int64 {
	if r.den == 0 {
		return 1
	}
	return r.den
}

// FromInt returns x as a rational.
func FromInt(x int64) R {
	if x == math.MinInt64 {
		return R{wide: new(big.Rat).SetInt64(x)}
	}
	return R{num: x, den: 1}
}

// Frac returns num/den. den must be nonzero.
func Frac(num, den int64) R {
	if den == 0 {
		panic("rat: zero denominator")
	}
	if num == math.MinInt64 || den == math.MinInt64 {
		return fromBigOwned(big.NewRat(num, den))
	}
	if den < 0 {
		num, den = -num, -den
	}
	return norm(num, den)
}

// FromBig returns a rational equal to x. x is copied, not retained.
func FromBig(x *big.Rat) R {
	return fromBigOwned(new(big.Rat).Set(x))
}

// fromBigOwned wraps a *big.Rat the caller hands over (never mutated again),
// demoting to the fast path when numerator and denominator fit in int64.
func fromBigOwned(x *big.Rat) R {
	if x.Num().IsInt64() && x.Denom().IsInt64() {
		n, d := x.Num().Int64(), x.Denom().Int64()
		if n != math.MinInt64 && d != math.MinInt64 {
			return R{num: n, den: d} // big.Rat is already normalized
		}
	}
	return R{wide: x}
}

// norm reduces num/den (den ≥ 1) to lowest terms.
func norm(num, den int64) R {
	if num == 0 {
		return R{num: 0, den: 1}
	}
	if num == math.MinInt64 {
		// |MinInt64| overflows; keep the invariant that num is never MinInt64.
		return fromBigOwned(big.NewRat(num, den))
	}
	g := gcd(abs(num), den)
	return R{num: num / g, den: den / g}
}

func abs(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// addOvf returns a+b and reports whether it stayed in range.
func addOvf(a, b int64) (int64, bool) {
	s := a + b
	if (a >= 0) == (b >= 0) && (s >= 0) != (a >= 0) {
		return 0, false
	}
	return s, true
}

// mulOvf returns a*b and reports whether it stayed in range. It never
// produces math.MinInt64, keeping negation safe everywhere.
func mulOvf(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	neg := (a < 0) != (b < 0)
	hi, lo := bits.Mul64(uint64(abs(a)), uint64(abs(b)))
	if hi != 0 || lo > math.MaxInt64 {
		return 0, false
	}
	if neg {
		return -int64(lo), true
	}
	return int64(lo), true
}

// big returns the value as a *big.Rat. The result aliases r.wide when wide;
// callers inside this package must not mutate it.
func (r R) big() *big.Rat {
	if r.wide != nil {
		return r.wide
	}
	return big.NewRat(r.num, r.d())
}

// Rat returns the value as a freshly allocated *big.Rat the caller owns.
func (r R) Rat() *big.Rat {
	if r.wide != nil {
		return new(big.Rat).Set(r.wide)
	}
	return big.NewRat(r.num, r.d())
}

// IsWide reports whether the value lives on the *big.Rat escape hatch.
func (r R) IsWide() bool { return r.wide != nil }

// Sign returns -1, 0 or +1.
func (r R) Sign() int {
	if r.wide != nil {
		return r.wide.Sign()
	}
	switch {
	case r.num > 0:
		return 1
	case r.num < 0:
		return -1
	}
	return 0
}

// IsZero reports whether the value is 0.
func (r R) IsZero() bool { return r.Sign() == 0 }

// Neg returns -r.
func (r R) Neg() R {
	if r.wide != nil {
		return fromBigOwned(new(big.Rat).Neg(r.wide))
	}
	return R{num: -r.num, den: r.den}
}

// Add returns r+o.
func (r R) Add(o R) R {
	if r.wide == nil && o.wide == nil {
		a, b, c, d := r.num, r.d(), o.num, o.d()
		if b == d {
			if s, ok := addOvf(a, c); ok {
				return norm(s, b)
			}
		} else {
			g := gcd(b, d)
			db, bg := d/g, b/g
			t1, ok1 := mulOvf(a, db)
			t2, ok2 := mulOvf(c, bg)
			if ok1 && ok2 {
				if t, ok := addOvf(t1, t2); ok {
					if den, ok := mulOvf(b, db); ok {
						return norm(t, den)
					}
				}
			}
		}
	}
	return fromBigOwned(new(big.Rat).Add(r.big(), o.big()))
}

// Sub returns r-o.
func (r R) Sub(o R) R { return r.Add(o.Neg()) }

// Mul returns r*o.
func (r R) Mul(o R) R {
	if r.wide == nil && o.wide == nil {
		a, b, c, d := r.num, r.d(), o.num, o.d()
		if a == 0 || c == 0 {
			return R{num: 0, den: 1}
		}
		g1 := gcd(abs(a), d)
		g2 := gcd(abs(c), b)
		num, ok1 := mulOvf(a/g1, c/g2)
		den, ok2 := mulOvf(b/g2, d/g1)
		if ok1 && ok2 {
			return R{num: num, den: den} // cross-reduced, already coprime
		}
	}
	return fromBigOwned(new(big.Rat).Mul(r.big(), o.big()))
}

// Quo returns r/o. o must be nonzero.
func (r R) Quo(o R) R {
	if o.Sign() == 0 {
		panic("rat: division by zero")
	}
	if o.wide == nil {
		return r.Mul(Frac(o.d(), o.num))
	}
	return fromBigOwned(new(big.Rat).Quo(r.big(), o.big()))
}

// MulInt returns r*k.
func (r R) MulInt(k int64) R { return r.Mul(FromInt(k)) }

// DivInt returns r/k. k must be nonzero.
func (r R) DivInt(k int64) R {
	if k == 0 {
		panic("rat: division by zero")
	}
	if r.wide == nil && k != math.MinInt64 {
		return r.Mul(Frac(1, k))
	}
	return fromBigOwned(new(big.Rat).Quo(r.big(), new(big.Rat).SetInt64(k)))
}

// Cmp compares r and o, returning -1, 0 or +1. The fast path is exact via a
// 128-bit cross multiplication and never allocates.
func (r R) Cmp(o R) int {
	if r.wide == nil && o.wide == nil {
		a, b, c, d := r.num, r.d(), o.num, o.d()
		if b == d {
			switch {
			case a < c:
				return -1
			case a > c:
				return 1
			}
			return 0
		}
		sa, sc := sign64(a), sign64(c)
		if sa != sc {
			if sa < sc {
				return -1
			}
			return 1
		}
		// Same sign: compare |a|·d with |c|·b exactly in 128 bits.
		lhi, llo := bits.Mul64(uint64(abs(a)), uint64(d))
		rhi, rlo := bits.Mul64(uint64(abs(c)), uint64(b))
		cmp := cmp128(lhi, llo, rhi, rlo)
		if sa < 0 {
			cmp = -cmp
		}
		return cmp
	}
	return r.big().Cmp(o.big())
}

func sign64(x int64) int {
	switch {
	case x > 0:
		return 1
	case x < 0:
		return -1
	}
	return 0
}

func cmp128(ahi, alo, bhi, blo uint64) int {
	switch {
	case ahi < bhi:
		return -1
	case ahi > bhi:
		return 1
	case alo < blo:
		return -1
	case alo > blo:
		return 1
	}
	return 0
}

// Equal reports r == o.
func (r R) Equal(o R) bool { return r.Cmp(o) == 0 }

// Max returns the larger of a and b (a on ties).
func Max(a, b R) R {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// Min returns the smaller of a and b (a on ties).
func Min(a, b R) R {
	if a.Cmp(b) <= 0 {
		return a
	}
	return b
}

// IsInt reports whether the value is an integer.
func (r R) IsInt() bool {
	if r.wide != nil {
		return r.wide.IsInt()
	}
	return r.d() == 1
}

// Int64 returns the value as an int64 when it is an integer that fits.
func (r R) Int64() (int64, bool) {
	if r.wide != nil {
		if !r.wide.IsInt() || !r.wide.Num().IsInt64() {
			return 0, false
		}
		return r.wide.Num().Int64(), true
	}
	if r.d() != 1 {
		return 0, false
	}
	return r.num, true
}

// Ceil returns ⌈r⌉ as an int64. The value must fit.
func (r R) Ceil() int64 {
	if r.wide != nil {
		q, rem := new(big.Int).QuoRem(r.wide.Num(), r.wide.Denom(), new(big.Int))
		if rem.Sign() > 0 {
			q.Add(q, big.NewInt(1))
		}
		return q.Int64()
	}
	q := r.num / r.d()
	if r.num%r.d() > 0 {
		q++
	}
	return q
}

// Floor returns ⌊r⌋ as an int64. The value must fit.
func (r R) Floor() int64 {
	if r.wide != nil {
		q, rem := new(big.Int).QuoRem(r.wide.Num(), r.wide.Denom(), new(big.Int))
		if rem.Sign() < 0 {
			q.Sub(q, big.NewInt(1))
		}
		return q.Int64()
	}
	q := r.num / r.d()
	if r.num%r.d() < 0 {
		q--
	}
	return q
}

// FloorQuo returns ⌊r/o⌋ for nonnegative r and positive o. The quotient must
// fit in an int64 (callers divide machine loads by a positive guess, so it is
// bounded by the machine count).
func (r R) FloorQuo(o R) int64 {
	if r.wide == nil && o.wide == nil {
		// ⌊(a/b)/(c/d)⌋ = ⌊a·d / (b·c)⌋.
		nhi, nlo := bits.Mul64(uint64(abs(r.num)), uint64(o.d()))
		if den, ok := mulOvf(r.d(), o.num); ok && den > 0 && nhi < uint64(den) {
			q, _ := bits.Div64(nhi, nlo, uint64(den))
			if q <= math.MaxInt64 && r.num >= 0 {
				return int64(q)
			}
		}
	}
	return fromBigOwned(new(big.Rat).Quo(r.big(), o.big())).Floor()
}

// CeilQuoInt returns ⌈a/t⌉ for a ≥ 0 and t > 0 without allocating on the
// fast path; this is the slot-counting kernel Σ⌈P_u/T⌉ of Lemma 2.
func CeilQuoInt(a int64, t R) int64 {
	if t.wide == nil && a >= 0 && t.num > 0 {
		hi, lo := bits.Mul64(uint64(a), uint64(t.d()))
		if hi < uint64(t.num) {
			q, rem := bits.Div64(hi, lo, uint64(t.num))
			if rem != 0 {
				q++
			}
			if q <= math.MaxInt64 {
				return int64(q)
			}
		}
	}
	return FromInt(a).Quo(t).Ceil()
}

// Float64 returns the nearest float64, for reporting only.
func (r R) Float64() float64 {
	f, _ := r.big().Float64()
	return f
}

// RatString returns the value as a fraction string like big.Rat.RatString
// ("3/2", or "7" for integers).
func (r R) RatString() string {
	if r.wide != nil {
		return r.wide.RatString()
	}
	return big.NewRat(r.num, r.d()).RatString()
}

// String returns the value in num/den form, always with a denominator.
func (r R) String() string {
	if r.wide != nil {
		return r.wide.String()
	}
	return big.NewRat(r.num, r.d()).String()
}

// MarshalText implements encoding.TextMarshaler: the value is rendered in
// RatString form ("3/2", or "7" for integers), so R fields serialize as
// exact JSON strings via encoding/json.
func (r R) MarshalText() ([]byte, error) {
	return []byte(r.RatString()), nil
}

// UnmarshalText implements encoding.TextUnmarshaler. It accepts everything
// big.Rat.SetString does ("3/2", "7", "1.25", "2e3"), preserving exactness
// and demoting to the int64 fast path whenever the value fits.
func (r *R) UnmarshalText(text []byte) error {
	x, ok := new(big.Rat).SetString(string(text))
	if !ok {
		return fmt.Errorf("rat: cannot parse %q as a rational", text)
	}
	*r = fromBigOwned(x)
	return nil
}
