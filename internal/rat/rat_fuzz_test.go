package rat

import (
	"math"
	"math/big"
	"math/rand"
	"testing"
)

// refRat builds the big.Rat reference value for a fuzz operand.
func refRat(num, den int64) *big.Rat { return big.NewRat(num, den) }

// checkAgainstBig asserts that every R operation agrees exactly with the
// corresponding math/big.Rat operation on the two operands.
func checkAgainstBig(t *testing.T, an, ad, bn, bd int64) {
	t.Helper()
	a, b := Frac(an, ad), Frac(bn, bd)
	ra, rb := refRat(an, ad), refRat(bn, bd)

	if got, want := a.Add(b).Rat(), new(big.Rat).Add(ra, rb); got.Cmp(want) != 0 {
		t.Fatalf("(%d/%d)+(%d/%d) = %s, want %s", an, ad, bn, bd, got.RatString(), want.RatString())
	}
	if got, want := a.Sub(b).Rat(), new(big.Rat).Sub(ra, rb); got.Cmp(want) != 0 {
		t.Fatalf("(%d/%d)-(%d/%d) = %s, want %s", an, ad, bn, bd, got.RatString(), want.RatString())
	}
	if got, want := a.Mul(b).Rat(), new(big.Rat).Mul(ra, rb); got.Cmp(want) != 0 {
		t.Fatalf("(%d/%d)*(%d/%d) = %s, want %s", an, ad, bn, bd, got.RatString(), want.RatString())
	}
	if got, want := a.Cmp(b), ra.Cmp(rb); got != want {
		t.Fatalf("cmp(%d/%d, %d/%d) = %d, want %d", an, ad, bn, bd, got, want)
	}
	if b.Sign() != 0 {
		if got, want := a.Quo(b).Rat(), new(big.Rat).Quo(ra, rb); got.Cmp(want) != 0 {
			t.Fatalf("(%d/%d)/(%d/%d) = %s, want %s", an, ad, bn, bd, got.RatString(), want.RatString())
		}
	}
	if got, want := a.Sign(), ra.Sign(); got != want {
		t.Fatalf("sign(%d/%d) = %d, want %d", an, ad, got, want)
	}
	if got, want := a.Neg().Rat(), new(big.Rat).Neg(ra); got.Cmp(want) != 0 {
		t.Fatalf("neg(%d/%d) = %s, want %s", an, ad, got.RatString(), want.RatString())
	}
	// Round trip through big form must be lossless.
	if got := FromBig(a.Rat()); got.Cmp(a) != 0 {
		t.Fatalf("FromBig(Rat(%d/%d)) = %s, want %s", an, ad, got.RatString(), a.RatString())
	}
}

// FuzzAgainstBig differentially fuzzes R against math/big.Rat, with seeds
// straddling the int64 overflow boundary so both the fast path and the wide
// escape hatch are exercised.
func FuzzAgainstBig(f *testing.F) {
	seeds := [][4]int64{
		{0, 1, 0, 1},
		{1, 2, 1, 3},
		{-7, 3, 7, 3},
		{math.MaxInt64, 1, 1, 1},
		{math.MaxInt64, 2, math.MaxInt64 - 1, 3},
		{math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 - 2, math.MaxInt64},
		{-math.MaxInt64, 1, -1, math.MaxInt64},
		{math.MinInt64 + 1, 5, 3, math.MaxInt64},
		{1 << 32, (1 << 31) - 1, (1 << 31) + 1, 1 << 32},
		{6700417, 641, -641, 6700417},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1], s[2], s[3])
	}
	f.Fuzz(func(t *testing.T, an, ad, bn, bd int64) {
		if ad == 0 || bd == 0 || an == math.MinInt64 || ad == math.MinInt64 ||
			bn == math.MinInt64 || bd == math.MinInt64 {
			t.Skip()
		}
		checkAgainstBig(t, an, ad, bn, bd)
	})
}

// TestPropertyRandomOperands is the deterministic property test run by
// `go test`: random operands drawn from ranges chosen to straddle the
// overflow boundary (tiny, mid, and near-MaxInt64 magnitudes).
func TestPropertyRandomOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	draw := func() int64 {
		switch rng.Intn(4) {
		case 0: // small, the common solver regime
			return rng.Int63n(1000) - 500
		case 1: // mid, products still fit
			return rng.Int63n(1 << 31)
		case 2: // large, products overflow into the wide path
			return math.MaxInt64 - rng.Int63n(1<<20)
		default:
			return rng.Int63() // anywhere in [0, MaxInt64)
		}
	}
	for i := 0; i < 20000; i++ {
		an, bn := draw(), draw()
		ad, bd := draw(), draw()
		if ad == 0 {
			ad = 1
		}
		if bd == 0 {
			bd = 1
		}
		if rng.Intn(2) == 0 {
			an = -an
		}
		if rng.Intn(2) == 0 {
			bn = -bn
		}
		checkAgainstBig(t, an, ad, bn, bd)
	}
}

// TestWideDemotion checks that results that overflow int64 go wide and that
// wide values demote back to the fast path when a later operation shrinks
// them into range.
func TestWideDemotion(t *testing.T) {
	huge := Frac(math.MaxInt64, 3)
	prod := huge.Mul(huge) // overflows: must be wide and still exact
	if !prod.IsWide() {
		t.Fatalf("(%s)² should be wide", huge.RatString())
	}
	want := new(big.Rat).Mul(refRat(math.MaxInt64, 3), refRat(math.MaxInt64, 3))
	if prod.Rat().Cmp(want) != 0 {
		t.Fatalf("wide product = %s, want %s", prod.RatString(), want.RatString())
	}
	// Dividing the square back down must land on the fast path again.
	back := prod.Quo(huge)
	if back.IsWide() {
		t.Errorf("(huge²)/huge should demote to the fast path")
	}
	if back.Cmp(huge) != 0 {
		t.Errorf("(huge²)/huge = %s, want %s", back.RatString(), huge.RatString())
	}
}

// TestIntegerHelpers covers Ceil/Floor/FloorQuo/CeilQuoInt on both paths.
func TestIntegerHelpers(t *testing.T) {
	cases := []struct {
		r           R
		ceil, floor int64
	}{
		{Frac(7, 2), 4, 3},
		{Frac(-7, 2), -3, -4},
		{FromInt(5), 5, 5},
		{R{}, 0, 0},
		{Frac(math.MaxInt64, 2), 4611686018427387904, 4611686018427387903},
	}
	for _, c := range cases {
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%s) = %d, want %d", c.r.RatString(), got, c.ceil)
		}
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%s) = %d, want %d", c.r.RatString(), got, c.floor)
		}
	}
	if got := Frac(22, 3).FloorQuo(Frac(3, 2)); got != 4 {
		t.Errorf("FloorQuo(22/3, 3/2) = %d, want 4", got)
	}
	if got := FromInt(math.MaxInt64).FloorQuo(Frac(1, 2)); got == 0 {
		t.Errorf("FloorQuo(MaxInt64, 1/2) hit a silent overflow")
	}
	if got := CeilQuoInt(10, Frac(3, 1)); got != 4 {
		t.Errorf("CeilQuoInt(10, 3) = %d, want 4", got)
	}
	if got := CeilQuoInt(10, Frac(10, 3)); got != 3 {
		t.Errorf("CeilQuoInt(10, 10/3) = %d, want 3", got)
	}
	if got, want := CeilQuoInt(math.MaxInt64, Frac(1, 7)), FromInt(math.MaxInt64).MulInt(7).Ceil(); got != want {
		// 7·MaxInt64 does not fit: the helper must fall back, not truncate.
		if big.NewRat(math.MaxInt64, 1).Cmp(big.NewRat(got, 7)) > 0 {
			t.Errorf("CeilQuoInt overflow fallback returned %d", got)
		}
		_ = want
	}
}

// TestZeroValue checks that the zero value of R behaves as 0 everywhere.
func TestZeroValue(t *testing.T) {
	var z R
	if z.Sign() != 0 || !z.IsZero() {
		t.Fatalf("zero value has sign %d", z.Sign())
	}
	if got := z.Add(Frac(3, 2)); got.Cmp(Frac(3, 2)) != 0 {
		t.Errorf("0 + 3/2 = %s", got.RatString())
	}
	if got := Frac(3, 2).Mul(z); got.Sign() != 0 {
		t.Errorf("3/2 * 0 = %s", got.RatString())
	}
	if z.RatString() != "0" {
		t.Errorf("zero RatString = %q", z.RatString())
	}
}
