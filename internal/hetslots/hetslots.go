// Package hetslots implements the machine-dependent class-slot variant of
// CCS that Section 5 of the paper poses as an open direction: machine i has
// its own slot budget c_i (Chen, Jansen, Luo, Zhang handle the special case
// of one job per class; the general variant has no published algorithm).
//
// We provide the model, validation, certified lower bounds, and a
// slot-aware adaptation of the paper's Theorem 6 framework: guess the
// makespan by binary search, split classes into the C_u(T) groups of the
// homogeneous analysis (computed against the *largest* budget), and place
// groups with a budget-respecting LPT rule. The placement is a documented
// heuristic — no approximation guarantee is claimed for the heterogeneous
// case (that is exactly the open problem) — but every produced schedule is
// validated, and the experiment suite records the measured ratios.
package hetslots

import (
	"errors"
	"fmt"
	"sort"

	"ccsched/internal/core"
)

// Instance is a CCS instance whose machines carry individual slot budgets.
type Instance struct {
	// P and Class are as in core.Instance.
	P     []int64
	Class []int
	// Budgets[i] is machine i's class-slot budget c_i ≥ 1; the machine
	// count is len(Budgets).
	Budgets []int
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.P) }

// M returns the number of machines.
func (in *Instance) M() int { return len(in.Budgets) }

// NumClasses returns one plus the largest class index.
func (in *Instance) NumClasses() int {
	maxc := -1
	for _, c := range in.Class {
		if c > maxc {
			maxc = c
		}
	}
	return maxc + 1
}

// TotalSlots returns Σ_i c_i.
func (in *Instance) TotalSlots() int64 {
	var s int64
	for _, c := range in.Budgets {
		s += int64(c)
	}
	return s
}

// Validate checks the structural invariants.
func (in *Instance) Validate() error {
	if len(in.P) != len(in.Class) {
		return fmt.Errorf("hetslots: %d processing times but %d classes", len(in.P), len(in.Class))
	}
	if len(in.Budgets) == 0 {
		return errors.New("hetslots: need at least one machine")
	}
	for i, c := range in.Budgets {
		if c < 1 {
			return fmt.Errorf("hetslots: machine %d has budget %d", i, c)
		}
	}
	for j, p := range in.P {
		if p <= 0 {
			return fmt.Errorf("hetslots: job %d has non-positive processing time %d", j, p)
		}
		if in.Class[j] < 0 {
			return fmt.Errorf("hetslots: job %d has negative class", j)
		}
	}
	return nil
}

// ErrInfeasible reports C > Σ c_i.
var ErrInfeasible = errors.New("hetslots: more classes than total class slots")

// CheckFeasible reports whether any schedule exists.
func (in *Instance) CheckFeasible() error {
	if int64(in.NumClasses()) > in.TotalSlots() {
		return ErrInfeasible
	}
	return nil
}

// Homogeneous converts a core.Instance into the heterogeneous model with
// identical budgets (m must be small enough to materialize).
func Homogeneous(base *core.Instance) (*Instance, error) {
	if base.M > 1<<20 {
		return nil, fmt.Errorf("hetslots: cannot materialize %d machines", base.M)
	}
	out := &Instance{
		P:       append([]int64(nil), base.P...),
		Class:   append([]int(nil), base.Class...),
		Budgets: make([]int, base.M),
	}
	for i := range out.Budgets {
		out.Budgets[i] = base.Slots
	}
	return out, nil
}

// Schedule assigns every job to a machine.
type Schedule struct {
	Assign []int
}

// Makespan returns the maximum machine load.
func (s *Schedule) Makespan(in *Instance) int64 {
	loads := make([]int64, in.M())
	var mx int64
	for j, i := range s.Assign {
		loads[i] += in.P[j]
		if loads[i] > mx {
			mx = loads[i]
		}
	}
	return mx
}

// Validate checks machine ranges and the per-machine budgets c_i.
func (s *Schedule) Validate(in *Instance) error {
	if len(s.Assign) != in.N() {
		return fmt.Errorf("hetslots: schedule covers %d jobs, instance has %d", len(s.Assign), in.N())
	}
	classes := make([]map[int]bool, in.M())
	for j, i := range s.Assign {
		if i < 0 || i >= in.M() {
			return fmt.Errorf("hetslots: job %d on machine %d outside [0,%d)", j, i, in.M())
		}
		if classes[i] == nil {
			classes[i] = make(map[int]bool)
		}
		classes[i][in.Class[j]] = true
		if len(classes[i]) > in.Budgets[i] {
			return fmt.Errorf("hetslots: machine %d hosts %d classes, budget %d", i, len(classes[i]), in.Budgets[i])
		}
	}
	return nil
}

// LowerBound combines the area, p_max and slot-counting bounds, the latter
// against the total budget Σ c_i.
func (in *Instance) LowerBound() (int64, error) {
	if err := in.CheckFeasible(); err != nil {
		return 0, err
	}
	var total, pmax int64
	for _, p := range in.P {
		total += p
		if p > pmax {
			pmax = p
		}
	}
	lb := pmax
	if area := (total + int64(in.M()) - 1) / int64(in.M()); area > lb {
		lb = area
	}
	// Slot-counting: smallest T with Σ_u C_u(T) ≤ Σ_i c_i, with C_u as in
	// Theorem 6 (valid verbatim: its per-class argument does not use
	// machine identity).
	loads := make([]int64, in.NumClasses())
	byClass := make([][]int64, in.NumClasses())
	for j, p := range in.P {
		loads[in.Class[j]] += p
		byClass[in.Class[j]] = append(byClass[in.Class[j]], p)
	}
	for u := range byClass {
		sort.Slice(byClass[u], func(a, b int) bool { return byClass[u][a] > byClass[u][b] })
	}
	budget := in.TotalSlots()
	count := func(t int64) int64 {
		var sum int64
		for u := range byClass {
			if len(byClass[u]) == 0 {
				continue
			}
			sum += core.NonPreemptiveClassSlots(byClass[u], loads[u], t)
			if sum > budget {
				return sum
			}
		}
		return sum
	}
	lo, hi := lb, total
	for lo < hi {
		mid := lo + (hi-lo)/2
		if count(mid) <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// Result is the heuristic solver output.
type Result struct {
	Schedule *Schedule
	// Guess is the accepted makespan guess.
	Guess int64
	// LB is the certified lower bound.
	LB int64
}

// Solve runs the slot-aware adaptation of the Theorem 6 framework:
// binary-search the guess T; per guess, split every class into C_u(T)
// groups by LPT; then place groups (largest first) onto the machine with
// minimum load among those that can still open a slot — machines with
// larger remaining budgets break ties. Placement failure rejects the guess.
func Solve(in *Instance) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := in.CheckFeasible(); err != nil {
		return nil, err
	}
	lb, err := in.LowerBound()
	if err != nil {
		return nil, err
	}
	var total int64
	for _, p := range in.P {
		total += p
	}
	lo, hi := lb, total
	var bestAssign []int
	bestGuess := int64(-1)
	for lo <= hi {
		mid := lo + (hi-lo)/2
		if assign, ok := tryGuess(in, mid); ok {
			bestAssign, bestGuess = assign, mid
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	if bestAssign == nil {
		return nil, fmt.Errorf("hetslots: no feasible guess up to Σp = %d", total)
	}
	return &Result{Schedule: &Schedule{Assign: bestAssign}, Guess: bestGuess, LB: lb}, nil
}

// group is a sub-class of whole jobs.
type group struct {
	class int
	load  int64
	jobs  []int
}

// tryGuess splits classes and places groups for one makespan guess.
func tryGuess(in *Instance, t int64) ([]int, bool) {
	byClass := make([][]int, in.NumClasses())
	for j, c := range in.Class {
		byClass[c] = append(byClass[c], j)
	}
	var groups []group
	for u, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		ps := make([]int64, len(jobs))
		var pu int64
		for i, j := range jobs {
			ps[i] = in.P[j]
			pu += ps[i]
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a] > ps[b] })
		k := core.NonPreemptiveClassSlots(ps, pu, t)
		if k < 1 {
			k = 1
		}
		if k > int64(len(jobs)) {
			k = int64(len(jobs))
		}
		ordered := append([]int(nil), jobs...)
		sort.SliceStable(ordered, func(a, b int) bool { return in.P[ordered[a]] > in.P[ordered[b]] })
		gs := make([]group, k)
		for i := range gs {
			gs[i].class = u
		}
		for _, j := range ordered {
			best := 0
			for g := 1; g < len(gs); g++ {
				if gs[g].load < gs[best].load {
					best = g
				}
			}
			gs[best].jobs = append(gs[best].jobs, j)
			gs[best].load += in.P[j]
		}
		groups = append(groups, gs...)
	}
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].load > groups[b].load })
	// Placement: min-load machine with a free slot (or already hosting the
	// class); ties prefer the larger remaining budget.
	loads := make([]int64, in.M())
	hosted := make([]map[int]bool, in.M())
	remaining := append([]int(nil), in.Budgets...)
	assign := make([]int, in.N())
	for _, g := range groups {
		best := -1
		for i := 0; i < in.M(); i++ {
			free := hosted[i][g.class] || remaining[i] > 0
			if !free {
				continue
			}
			if best < 0 || loads[i] < loads[best] ||
				(loads[i] == loads[best] && remaining[i] > remaining[best]) {
				best = i
			}
		}
		if best < 0 {
			return nil, false
		}
		if hosted[best] == nil {
			hosted[best] = make(map[int]bool)
		}
		if !hosted[best][g.class] {
			hosted[best][g.class] = true
			remaining[best]--
		}
		loads[best] += g.load
		for _, j := range g.jobs {
			assign[j] = best
		}
	}
	// Accept only if the construction respects the usual 7/3-style margin;
	// otherwise force a larger guess. (7/3·T mirrors the homogeneous
	// analysis and keeps the binary search meaningful.)
	for _, l := range loads {
		if 3*l > 7*t {
			return nil, false
		}
	}
	return assign, true
}
