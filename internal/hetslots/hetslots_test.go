package hetslots

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/generator"
)

func hetInstance() *Instance {
	return &Instance{
		P:     []int64{9, 7, 6, 5, 4, 3},
		Class: []int{0, 1, 2, 0, 1, 3},
		// A big server with 3 slots and two small ones with 1 slot.
		Budgets: []int{3, 1, 1},
	}
}

func TestValidateInstance(t *testing.T) {
	in := hetInstance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := hetInstance()
	bad.Budgets[1] = 0
	if err := bad.Validate(); err == nil {
		t.Error("want budget error")
	}
	bad = hetInstance()
	bad.P[0] = 0
	if err := bad.Validate(); err == nil {
		t.Error("want processing-time error")
	}
	bad = hetInstance()
	bad.Class = bad.Class[:3]
	if err := bad.Validate(); err == nil {
		t.Error("want length error")
	}
}

func TestCheckFeasible(t *testing.T) {
	in := hetInstance()
	if err := in.CheckFeasible(); err != nil {
		t.Fatal(err)
	}
	tight := &Instance{P: []int64{1, 1, 1}, Class: []int{0, 1, 2}, Budgets: []int{1, 1}}
	if err := tight.CheckFeasible(); err == nil {
		t.Error("want ErrInfeasible")
	}
}

func TestScheduleValidate(t *testing.T) {
	in := hetInstance()
	good := &Schedule{Assign: []int{0, 1, 2, 0, 1, 0}}
	if err := good.Validate(in); err != nil {
		t.Fatalf("good schedule rejected: %v", err)
	}
	// Machine 1 has budget 1 but would host classes 1 and 2.
	bad := &Schedule{Assign: []int{0, 1, 1, 0, 1, 0}}
	if err := bad.Validate(in); err == nil {
		t.Error("budget violation not caught")
	}
	oob := &Schedule{Assign: []int{0, 1, 2, 0, 1, 7}}
	if err := oob.Validate(in); err == nil {
		t.Error("machine range violation not caught")
	}
}

func TestSolveFeasibleAndBounded(t *testing.T) {
	in := hetInstance()
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	mk := res.Schedule.Makespan(in)
	if 3*mk > 7*res.LB {
		t.Errorf("makespan %d above 7/3 x LB %d on the regression workload", mk, res.LB)
	}
}

func TestHomogeneousMatchesCoreAlgorithm(t *testing.T) {
	// With identical budgets the heterogeneous solver must stay within the
	// same 7/3 margin as the paper's algorithm.
	base := generator.Uniform(generator.Config{N: 40, Classes: 8, Machines: 5, Slots: 2, PMax: 100, Seed: 3})
	het, err := Homogeneous(base)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Solve(het)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(het); err != nil {
		t.Fatal(err)
	}
	apx, err := approx.SolveNonPreemptive(base)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := core.LowerBound(base, core.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	limit := core.RatMul(lb, core.RatFrac(7, 3))
	if core.RatInt(res.Schedule.Makespan(het)).Cmp(limit) > 0 {
		t.Errorf("heterogeneous solver exceeds 7/3 x LB on a homogeneous instance")
	}
	// Sanity: both algorithms land in the same ballpark.
	a, b := res.Schedule.Makespan(het), apx.Makespan(base)
	if a > 2*b || b > 2*a {
		t.Errorf("solvers diverge: het %d vs core %d", a, b)
	}
}

func TestLowerBoundDominatesArea(t *testing.T) {
	in := hetInstance()
	lb, err := in.LowerBound()
	if err != nil {
		t.Fatal(err)
	}
	var total, pmax int64
	for _, p := range in.P {
		total += p
		if p > pmax {
			pmax = p
		}
	}
	if lb < pmax || int64(in.M())*lb < total {
		t.Errorf("LowerBound %d below area/pmax", lb)
	}
}

func TestSkewedBudgetsUseTheBigMachine(t *testing.T) {
	// Four classes, budgets {4,1}: the singleton machine can host one
	// class, the big one must absorb the rest.
	in := &Instance{
		P:       []int64{10, 10, 10, 10},
		Class:   []int{0, 1, 2, 3},
		Budgets: []int{4, 1},
	}
	res, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	if mk := res.Schedule.Makespan(in); mk != 30 {
		t.Errorf("makespan %d, want 30 (three classes on the big machine)", mk)
	}
}

func TestSolveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(25)
		m := 1 + rng.Intn(5)
		in := &Instance{Budgets: make([]int, m)}
		for i := range in.Budgets {
			in.Budgets[i] = 1 + rng.Intn(3)
		}
		cc := 1 + rng.Intn(5)
		for j := 0; j < n; j++ {
			in.P = append(in.P, 1+int64(rng.Intn(50)))
			in.Class = append(in.Class, rng.Intn(cc))
		}
		if in.CheckFeasible() != nil {
			return true
		}
		res, err := Solve(in)
		if err != nil {
			// A failed search is only acceptable for infeasible inputs,
			// which were filtered above.
			return false
		}
		if res.Schedule.Validate(in) != nil {
			return false
		}
		// The accepted guess honours the 7/3-style margin by construction.
		return 3*res.Schedule.Makespan(in) <= 7*res.Guess
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
