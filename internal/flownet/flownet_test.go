package flownet

import (
	"math/rand"
	"testing"
)

func TestTrivial(t *testing.T) {
	g := NewGraph(2)
	e := g.AddEdge(0, 1, 7)
	if got := g.MaxFlow(0, 1); got != 7 {
		t.Fatalf("flow = %d, want 7", got)
	}
	if g.Flow(e) != 7 || g.Capacity(e) != 0 {
		t.Errorf("edge flow %d capacity %d", g.Flow(e), g.Capacity(e))
	}
}

func TestDiamond(t *testing.T) {
	// s -> a, b -> t with crossing edge; classic value 2000 + min cut check.
	g := NewGraph(4)
	s, a, b, tt := 0, 1, 2, 3
	g.AddEdge(s, a, 1000)
	g.AddEdge(s, b, 1000)
	g.AddEdge(a, b, 1)
	g.AddEdge(a, tt, 1000)
	g.AddEdge(b, tt, 1000)
	if got := g.MaxFlow(s, tt); got != 2000 {
		t.Fatalf("flow = %d, want 2000", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(3)
	g.AddEdge(0, 1, 5)
	if got := g.MaxFlow(0, 2); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
}

func TestSourceIsSink(t *testing.T) {
	g := NewGraph(1)
	if got := g.MaxFlow(0, 0); got != 0 {
		t.Fatalf("flow = %d, want 0", got)
	}
}

func TestBipartiteMatching(t *testing.T) {
	// 3x3 bipartite with a perfect matching.
	g := NewGraph(8)
	s, tt := 6, 7
	for i := 0; i < 3; i++ {
		g.AddEdge(s, i, 1)
		g.AddEdge(3+i, tt, 1)
	}
	g.AddEdge(0, 3, 1)
	g.AddEdge(0, 4, 1)
	g.AddEdge(1, 4, 1)
	g.AddEdge(2, 5, 1)
	if got := g.MaxFlow(s, tt); got != 3 {
		t.Fatalf("matching = %d, want 3", got)
	}
}

func TestFlowConservationRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(8)
		g := NewGraph(n)
		type edge struct{ id, u, v int }
		var edges []edge
		for i := 0; i < 3*n; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			id := g.AddEdge(u, v, int64(rng.Intn(20)))
			edges = append(edges, edge{id, u, v})
		}
		s, tt := 0, n-1
		val := g.MaxFlow(s, tt)
		if val < 0 {
			t.Fatalf("negative flow %d", val)
		}
		// Conservation at every interior node; net out of s equals val.
		net := make([]int64, n)
		for _, e := range edges {
			f := g.Flow(e.id)
			if f < 0 {
				t.Fatalf("negative edge flow")
			}
			net[e.u] -= f
			net[e.v] += f
		}
		if net[s] != -val || net[tt] != val {
			t.Errorf("trial %d: source/sink imbalance: %d vs %d", trial, net[s], val)
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Errorf("trial %d: node %d violates conservation (%d)", trial, v, net[v])
			}
		}
	}
}

func TestAddNode(t *testing.T) {
	g := NewGraph(0)
	a := g.AddNode()
	b := g.AddNode()
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	g.AddEdge(a, b, 3)
	if got := g.MaxFlow(a, b); got != 3 {
		t.Fatalf("flow = %d", got)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic on negative capacity")
		}
	}()
	g := NewGraph(2)
	g.AddEdge(0, 1, -1)
}
