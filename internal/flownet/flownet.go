// Package flownet implements Dinic's maximum-flow algorithm on integral
// capacities. The preemptive PTAS uses it to realize Lemma 16: an integral
// maximum flow on the jobs × layers × slots network converts any schedule
// into a well-structured one (job pieces aligned to δ²T layers), because
// flow integrality is exactly the rounding step of the lemma's proof.
package flownet

import "fmt"

// Graph is a flow network under construction. Nodes are dense integers
// obtained from AddNode.
type Graph struct {
	// edges stores forward/backward arcs in pairs: edge i^1 is the reverse
	// of edge i.
	to   []int
	cap  []int64
	next [][]int // adjacency: node -> edge indices
}

// NewGraph returns an empty graph with n nodes.
func NewGraph(n int) *Graph {
	return &Graph{next: make([][]int, n)}
}

// AddNode appends a node and returns its id.
func (g *Graph) AddNode() int {
	g.next = append(g.next, nil)
	return len(g.next) - 1
}

// NumNodes returns the current node count.
func (g *Graph) NumNodes() int { return len(g.next) }

// AddEdge inserts a directed edge u->v with the given capacity and returns
// its id, usable with Flow after solving.
func (g *Graph) AddEdge(u, v int, capacity int64) int {
	if capacity < 0 {
		panic(fmt.Sprintf("flownet: negative capacity %d", capacity))
	}
	id := len(g.to)
	g.to = append(g.to, v, u)
	g.cap = append(g.cap, capacity, 0)
	g.next[u] = append(g.next[u], id)
	g.next[v] = append(g.next[v], id^1)
	return id
}

// MaxFlow pushes the maximum flow from s to t (Dinic: BFS level graph +
// blocking DFS) and returns its value. Flows stay integral on integral
// capacities — the property Lemma 16's well-structuring argument needs.
// After
// the call, Flow reports per-edge flows.
func (g *Graph) MaxFlow(s, t int) int64 {
	if s == t {
		return 0
	}
	var total int64
	n := len(g.next)
	level := make([]int, n)
	iter := make([]int, n)
	queue := make([]int, 0, n)
	for {
		// BFS level graph on residual capacities.
		for i := range level {
			level[i] = -1
		}
		level[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for qi := 0; qi < len(queue); qi++ {
			u := queue[qi]
			for _, e := range g.next[u] {
				if g.cap[e] > 0 && level[g.to[e]] < 0 {
					level[g.to[e]] = level[u] + 1
					queue = append(queue, g.to[e])
				}
			}
		}
		if level[t] < 0 {
			return total
		}
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := g.dfs(s, t, int64(1)<<62, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
}

func (g *Graph) dfs(u, t int, limit int64, level, iter []int) int64 {
	if u == t {
		return limit
	}
	for ; iter[u] < len(g.next[u]); iter[u]++ {
		e := g.next[u][iter[u]]
		v := g.to[e]
		if g.cap[e] <= 0 || level[v] != level[u]+1 {
			continue
		}
		d := limit
		if g.cap[e] < d {
			d = g.cap[e]
		}
		if pushed := g.dfs(v, t, d, level, iter); pushed > 0 {
			g.cap[e] -= pushed
			g.cap[e^1] += pushed
			return pushed
		}
	}
	return 0
}

// Flow returns the flow over the edge with the given id (as returned by
// AddEdge), which equals the reverse arc's residual capacity.
func (g *Graph) Flow(id int) int64 { return g.cap[id^1] }

// Capacity returns the remaining residual capacity of the edge.
func (g *Graph) Capacity(id int) int64 { return g.cap[id] }
