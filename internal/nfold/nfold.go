// Package nfold models N-fold Integer Linear Programs — the block-structured
// ILPs of Section 2 of the paper — and solves them with two engines:
//
//   - an iterative augmentation engine in the spirit of the
//     Hemmecke–Onn–Romanchuk / Jansen–Lassota–Rohwedder line of work: local
//     Graver-style moves per brick are combined across bricks by a dynamic
//     program over partial sums of the globally uniform rows;
//   - an exact fallback that flattens the N-fold into a plain MILP and runs
//     the internal/ilp branch-and-bound.
//
// The paper cites the near-linear theoretical algorithm of [Jansen, Lassota,
// Rohwedder 2019], for which no public implementation exists; this package
// is the repository's faithful substitute (see DESIGN.md). The augmentation
// engine is best-effort (its move set restricts Graver elements to bounded
// support); Solve verifies its answers and falls back to the exact engine,
// so feasibility answers are always exact.
//
// The constraint matrix has the shape
//
//	[ A_1  A_2  ...  A_N ]      r rows   (globally uniform)
//	[ B_1               ]      s rows   (locally uniform, brick 1)
//	[      B_2          ]      s rows
//	[           ...     ]
//	[               B_N ]      s rows
//
// over N bricks of t variables each, with per-variable finite bounds.
package nfold

import (
	"fmt"
	"math"
)

// Problem is an N-fold ILP  min Obj·x  s.t.  Ax = B0, Lower ≤ x ≤ Upper.
type Problem struct {
	// N is the number of bricks; R, S, T the block dimensions.
	N, R, S, T int
	// A holds the globally uniform blocks: A[i] is the r×t block of brick i.
	A [][][]int64
	// B holds the locally uniform blocks: B[i] is the s×t block of brick i.
	B [][][]int64
	// GlobalRHS is the right-hand side of the r global rows.
	GlobalRHS []int64
	// LocalRHS[i] is the right-hand side of brick i's s local rows.
	LocalRHS [][]int64
	// Lower, Upper bound every variable: [brick][col]. All bounds must be
	// finite (Theorem 1 requires finite bounds).
	Lower, Upper [][]int64
	// Obj is the (minimization) objective per brick variable; may be all
	// zeros for pure feasibility problems.
	Obj [][]int64
}

// NewUniform allocates a problem with N identical bricks sharing the blocks
// a (r×t) and b (s×t). Right-hand sides, bounds and objective start zeroed
// and must be filled by the caller.
func NewUniform(n int, a, b [][]int64) *Problem {
	r, s := len(a), len(b)
	t := 0
	if r > 0 {
		t = len(a[0])
	} else if s > 0 {
		t = len(b[0])
	}
	p := &Problem{N: n, R: r, S: s, T: t, GlobalRHS: make([]int64, r)}
	for i := 0; i < n; i++ {
		p.A = append(p.A, a)
		p.B = append(p.B, b)
		p.LocalRHS = append(p.LocalRHS, make([]int64, s))
		p.Lower = append(p.Lower, make([]int64, t))
		p.Upper = append(p.Upper, make([]int64, t))
		p.Obj = append(p.Obj, make([]int64, t))
	}
	return p
}

// Validate checks the dimensional invariants.
func (p *Problem) Validate() error {
	if p.N < 0 || p.R < 0 || p.S < 0 || p.T < 0 {
		return fmt.Errorf("nfold: negative dimension")
	}
	if len(p.A) != p.N || len(p.B) != p.N || len(p.LocalRHS) != p.N ||
		len(p.Lower) != p.N || len(p.Upper) != p.N || len(p.Obj) != p.N {
		return fmt.Errorf("nfold: brick slices must all have length N=%d", p.N)
	}
	if len(p.GlobalRHS) != p.R {
		return fmt.Errorf("nfold: global rhs has %d entries, want %d", len(p.GlobalRHS), p.R)
	}
	for i := 0; i < p.N; i++ {
		if len(p.A[i]) != p.R {
			return fmt.Errorf("nfold: brick %d A block has %d rows, want %d", i, len(p.A[i]), p.R)
		}
		for _, row := range p.A[i] {
			if len(row) != p.T {
				return fmt.Errorf("nfold: brick %d A row width %d, want %d", i, len(row), p.T)
			}
		}
		if len(p.B[i]) != p.S {
			return fmt.Errorf("nfold: brick %d B block has %d rows, want %d", i, len(p.B[i]), p.S)
		}
		for _, row := range p.B[i] {
			if len(row) != p.T {
				return fmt.Errorf("nfold: brick %d B row width %d, want %d", i, len(row), p.T)
			}
		}
		if len(p.LocalRHS[i]) != p.S {
			return fmt.Errorf("nfold: brick %d local rhs has %d entries, want %d", i, len(p.LocalRHS[i]), p.S)
		}
		if len(p.Lower[i]) != p.T || len(p.Upper[i]) != p.T || len(p.Obj[i]) != p.T {
			return fmt.Errorf("nfold: brick %d bound/obj width mismatch", i)
		}
		for j := 0; j < p.T; j++ {
			if p.Lower[i][j] > p.Upper[i][j] {
				return fmt.Errorf("nfold: brick %d var %d has lower %d > upper %d",
					i, j, p.Lower[i][j], p.Upper[i][j])
			}
		}
	}
	return nil
}

// Delta returns the largest absolute entry of the constraint matrix — the
// Δ parameter of the paper's Theorem 1 running-time bound.
func (p *Problem) Delta() int64 {
	var d int64
	abs := func(v int64) int64 {
		if v < 0 {
			return -v
		}
		return v
	}
	for i := 0; i < p.N; i++ {
		for _, row := range p.A[i] {
			for _, v := range row {
				if a := abs(v); a > d {
					d = a
				}
			}
		}
		for _, row := range p.B[i] {
			for _, v := range row {
				if a := abs(v); a > d {
					d = a
				}
			}
		}
	}
	return d
}

// EncodingLength returns L, the bit length of the largest absolute number in
// the whole input (matrix, rhs, bounds, objective).
func (p *Problem) EncodingLength() int {
	var mx int64 = 1
	upd := func(v int64) {
		if v < 0 {
			v = -v
		}
		if v > mx {
			mx = v
		}
	}
	for i := 0; i < p.N; i++ {
		for _, row := range p.A[i] {
			for _, v := range row {
				upd(v)
			}
		}
		for _, row := range p.B[i] {
			for _, v := range row {
				upd(v)
			}
		}
		for j := 0; j < p.T; j++ {
			upd(p.Lower[i][j])
			upd(p.Upper[i][j])
			upd(p.Obj[i][j])
		}
	}
	for _, v := range p.GlobalRHS {
		upd(v)
	}
	for i := range p.LocalRHS {
		for _, v := range p.LocalRHS[i] {
			upd(v)
		}
	}
	bits := 0
	for mx > 0 {
		bits++
		mx >>= 1
	}
	return bits
}

// Params summarizes the N-fold parameters appearing in Theorem 1.
type Params struct {
	N     int   `json:"n"`
	R     int   `json:"r"`
	S     int   `json:"s"`
	T     int   `json:"t"`
	Delta int64 `json:"delta"`
	L     int   `json:"l"`
	// Vars is N*T, the total variable count.
	Vars int `json:"vars"`
}

// Params extracts the parameter vector.
func (p *Problem) Params() Params {
	return Params{N: p.N, R: p.R, S: p.S, T: p.T, Delta: p.Delta(), L: p.EncodingLength(), Vars: p.N * p.T}
}

// TheoreticalCostLog2 returns log₂ of the Theorem 1 running-time bound
// (rsΔ)^{O(r²s+s²)}·L·Nt·log^{O(1)}(Nt), with all O(·) constants set to 1.
// The E8 experiment reports this alongside measured solve times to exhibit
// the parameter dependence the paper's analysis predicts.
func (p *Problem) TheoreticalCostLog2() float64 {
	par := p.Params()
	if par.Vars == 0 {
		return 0
	}
	base := float64(par.R) * float64(par.S) * float64(par.Delta)
	if base < 2 {
		base = 2
	}
	exp := float64(par.R*par.R*par.S + par.S*par.S)
	nt := float64(par.Vars)
	return exp*math.Log2(base) + math.Log2(float64(par.L)+1) + math.Log2(nt) + math.Log2(math.Log2(nt)+1)
}

// Check verifies that x (indexed [brick][col]) satisfies all constraints and
// bounds exactly.
func (p *Problem) Check(x [][]int64) error {
	if len(x) != p.N {
		return fmt.Errorf("nfold: solution has %d bricks, want %d", len(x), p.N)
	}
	global := make([]int64, p.R)
	for i := 0; i < p.N; i++ {
		if len(x[i]) != p.T {
			return fmt.Errorf("nfold: brick %d has %d vars, want %d", i, len(x[i]), p.T)
		}
		for j := 0; j < p.T; j++ {
			if x[i][j] < p.Lower[i][j] || x[i][j] > p.Upper[i][j] {
				return fmt.Errorf("nfold: brick %d var %d value %d outside [%d,%d]",
					i, j, x[i][j], p.Lower[i][j], p.Upper[i][j])
			}
		}
		for k, row := range p.A[i] {
			for j, v := range row {
				global[k] += v * x[i][j]
			}
		}
		for k, row := range p.B[i] {
			var dot int64
			for j, v := range row {
				dot += v * x[i][j]
			}
			if dot != p.LocalRHS[i][k] {
				return fmt.Errorf("nfold: brick %d local row %d: %d != %d", i, k, dot, p.LocalRHS[i][k])
			}
		}
	}
	for k := range global {
		if global[k] != p.GlobalRHS[k] {
			return fmt.Errorf("nfold: global row %d: %d != %d", k, global[k], p.GlobalRHS[k])
		}
	}
	return nil
}

// Objective returns Obj·x.
func (p *Problem) Objective(x [][]int64) int64 {
	var total int64
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.T; j++ {
			total += p.Obj[i][j] * x[i][j]
		}
	}
	return total
}
