package nfold

import "math"

// Infeasibility certificates. The PTAS makespan-guess search rejects a
// guess by solving the guess's configuration N-fold to Infeasible — in the
// common case by the exact engine's root LP relaxation alone (the reject is
// a capacity argument, not a branching one). A scheduling session that
// re-solves an almost-identical instance round after round meets an almost-
// identical reject N-fold each time; instead of re-running augmentation and
// a fresh root LP, it can take the previous round's Farkas ray (see
// Result.InfeasibleRay) and *re-verify* it against the new problem: a valid
// ray proves the new LP relaxation — and hence the integer problem —
// infeasible in one sparse pass, no simplex at all.
//
// Re-verification is what keeps this sound and bit-parity-safe: the ray is
// only a hint, checked from scratch against the problem at hand, so a stale
// or wrongly-derived ray can never flip a verdict — it merely fails to
// certify and the caller falls back to the ordinary engines, which return
// exactly what they always return.

// certRelTol and certAbsTol define the safety margin of the certificate
// check. All problem data (blocks, bounds, right-hand sides) are int64, so
// the only rounding error in the verification is the float accumulation
// itself; the margin is deliberately far above that. A margin that is too
// strict only costs speed (the caller solves cold), never correctness.
const (
	certRelTol = 1e-7
	certAbsTol = 1e-6
)

// CertifiesInfeasible reports whether the row-price vector ray proves this
// problem's LP relaxation (and therefore the problem) infeasible. The ray is
// indexed like the flattened row order: the R global rows first, then brick
// i's S local rows at R + i·S + s. The check is the textbook Farkas
// argument over box bounds: with t_ij = Σ_k y_k·(row k of brick i)_j, the
// relaxation is infeasible when even the box maximum (or minimum) of y·Ax
// cannot reach y·b. A false return means only that this ray proves nothing
// about this problem.
func (p *Problem) CertifiesInfeasible(ray []float64) bool {
	if len(ray) != p.R+p.N*p.S {
		return false
	}
	yb := 0.0
	for k := 0; k < p.R; k++ {
		yb += ray[k] * float64(p.GlobalRHS[k])
	}
	for i := 0; i < p.N; i++ {
		for s := 0; s < p.S; s++ {
			yb += ray[p.R+i*p.S+s] * float64(p.LocalRHS[i][s])
		}
	}
	// t_ij splits into a global part (depends only on brick i's A block,
	// which bricks share by pointer) and a local part (brick-specific ray
	// entries). Caching the global part per distinct block keeps the pass
	// linear in the number of distinct brick shapes, not bricks.
	globalPart := make(map[*[]int64][]float64)
	var maxSum, minSum, absSum float64
	tj := make([]float64, p.T)
	for i := 0; i < p.N; i++ {
		a, b := p.A[i], p.B[i]
		var gkey *[]int64
		if len(a) > 0 {
			gkey = &a[0]
		}
		gp, ok := globalPart[gkey]
		if !ok {
			gp = make([]float64, p.T)
			for k := 0; k < p.R; k++ {
				y := ray[k]
				if y == 0 {
					continue
				}
				row := a[k]
				for j := 0; j < p.T; j++ {
					if v := row[j]; v != 0 {
						gp[j] += y * float64(v)
					}
				}
			}
			globalPart[gkey] = gp
		}
		copy(tj, gp)
		for s := 0; s < p.S; s++ {
			y := ray[p.R+i*p.S+s]
			if y == 0 {
				continue
			}
			row := b[s]
			for j := 0; j < p.T; j++ {
				if v := row[j]; v != 0 {
					tj[j] += y * float64(v)
				}
			}
		}
		lo, up := p.Lower[i], p.Upper[i]
		for j := 0; j < p.T; j++ {
			t := tj[j]
			if t == 0 {
				continue
			}
			l, u := float64(lo[j]), float64(up[j])
			if t > 0 {
				maxSum += t * u
				minSum += t * l
				absSum += t * math.Max(math.Abs(l), math.Abs(u))
			} else {
				maxSum += t * l
				minSum += t * u
				absSum += -t * math.Max(math.Abs(l), math.Abs(u))
			}
		}
	}
	margin := certRelTol*(absSum+math.Abs(yb)) + certAbsTol
	return maxSum < yb-margin || minSum > yb+margin
}
