package nfold

import "testing"

// slackProblem mimics the PTAS shape: a structural column coupled to a
// dedicated slack column through a global row with a large coefficient.
// Global rows: (1) x + 0s = 2 and (2) 40x − s = 0; one brick, bounds wide.
func slackProblem() *Problem {
	a := [][]int64{
		{1, 0},
		{40, -1},
	}
	b := [][]int64{} // no local rows
	p := NewUniform(1, a, b)
	p.GlobalRHS[0] = 2
	p.GlobalRHS[1] = 0
	p.Upper[0][0] = 10
	p.Upper[0][1] = 1000
	return p
}

func TestFindSlackColumns(t *testing.T) {
	p := slackProblem()
	slackFor := findSlackColumns(p, 0)
	if slackFor[0] != -1 {
		t.Errorf("column 0 misidentified as slack (row %d)", slackFor[0])
	}
	if slackFor[1] != 1 {
		t.Errorf("column 1 should serve global row 1, got %d", slackFor[1])
	}
}

// TestAugmentSlackCompletion: singles alone stall (a unit x-step leaves a
// ±40 residual on the slack row), but the slack-completed column move
// solves the problem directly.
func TestAugmentSlackCompletion(t *testing.T) {
	p := slackProblem()
	res, err := Solve(p, &Options{Engine: EngineAugment})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("augment status = %v, want feasible", res.Status)
	}
	if err := p.Check(res.X); err != nil {
		t.Fatal(err)
	}
	if res.X[0][0] != 2 || res.X[0][1] != 80 {
		t.Errorf("x = %v, want [2 80]", res.X[0])
	}
}

func TestLPRelaxationInfeasible(t *testing.T) {
	p := slackProblem()
	bad, err := p.LPRelaxationInfeasible()
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Error("feasible problem flagged LP-infeasible")
	}
	p.GlobalRHS[0] = 100 // beyond x's upper bound
	bad, err = p.LPRelaxationInfeasible()
	if err != nil {
		t.Fatal(err)
	}
	if !bad {
		t.Error("infeasible problem not flagged by the LP relaxation")
	}
}

func TestAugmentOptionsDefaults(t *testing.T) {
	d := (*AugmentOptions)(nil).defaults()
	if d.MaxCoeff != 8 || d.MaxSwapsPerBrick != 4000 || d.MaxSteps != 200000 {
		t.Errorf("unexpected defaults: %+v", d)
	}
	custom := (&AugmentOptions{MaxCoeff: 3, MaxSwapsPerBrick: 10, MaxSteps: 5}).defaults()
	if custom.MaxCoeff != 3 || custom.MaxSwapsPerBrick != 10 || custom.MaxSteps != 5 {
		t.Errorf("options not honoured: %+v", custom)
	}
}

func TestGCD(t *testing.T) {
	cases := [][3]int64{{12, 18, 6}, {7, 5, 1}, {0, 9, 9}, {-8, 12, 4}, {0, 0, 1}}
	for _, c := range cases {
		if got := gcd64(c[0], c[1]); got != c[2] {
			t.Errorf("gcd(%d,%d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestTheoreticalCostGrowsWithDelta(t *testing.T) {
	small := tinyProblem()
	big := tinyProblem()
	big.A[0][0][0] = 50 // larger Δ
	if big.TheoreticalCostLog2() <= small.TheoreticalCostLog2() {
		t.Error("Theorem 1 bound should grow with Δ")
	}
}
