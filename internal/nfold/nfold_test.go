package nfold

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// tinyProblem builds a 2-brick N-fold:
// global:  x11 + x21 = 3            (one global row, first var of each brick)
// local:   x_i1 + x_i2 = 2          (per brick)
// bounds:  0 <= x <= 3.
func tinyProblem() *Problem {
	a := [][]int64{{1, 0}}
	b := [][]int64{{1, 1}}
	p := NewUniform(2, a, b)
	p.GlobalRHS[0] = 3
	for i := 0; i < 2; i++ {
		p.LocalRHS[i][0] = 2
		for j := 0; j < 2; j++ {
			p.Upper[i][j] = 3
		}
	}
	return p
}

func TestValidateAndParams(t *testing.T) {
	p := tinyProblem()
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	par := p.Params()
	if par.N != 2 || par.R != 1 || par.S != 1 || par.T != 2 || par.Delta != 1 || par.Vars != 4 {
		t.Errorf("params = %+v", par)
	}
	if p.TheoreticalCostLog2() <= 0 {
		t.Error("theoretical cost should be positive")
	}
}

func TestValidateRejections(t *testing.T) {
	p := tinyProblem()
	p.GlobalRHS = nil
	if err := p.Validate(); err == nil {
		t.Error("want rhs error")
	}
	p = tinyProblem()
	p.Lower[0][0] = 5
	if err := p.Validate(); err == nil {
		t.Error("want bound error")
	}
	p = tinyProblem()
	p.B[1] = [][]int64{{1}}
	if err := p.Validate(); err == nil {
		t.Error("want width error")
	}
}

func TestCheck(t *testing.T) {
	p := tinyProblem()
	good := [][]int64{{1, 1}, {2, 0}}
	if err := p.Check(good); err != nil {
		t.Errorf("Check(good) = %v", err)
	}
	bad := [][]int64{{1, 1}, {1, 0}} // local row of brick 2 violated
	if err := p.Check(bad); err == nil {
		t.Error("Check(bad) = nil")
	}
	oob := [][]int64{{4, -2}, {2, 0}}
	if err := p.Check(oob); err == nil {
		t.Error("Check(oob) = nil")
	}
}

func TestSolveBothEngines(t *testing.T) {
	for _, eng := range []Engine{EngineAugment, EngineBranchBound, EngineAuto} {
		p := tinyProblem()
		res, err := Solve(p, &Options{Engine: eng})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.Status != Feasible {
			t.Fatalf("%s: status = %v", eng, res.Status)
		}
		if err := p.Check(res.X); err != nil {
			t.Errorf("%s: invalid solution: %v", eng, err)
		}
	}
}

func TestSolveInfeasible(t *testing.T) {
	p := tinyProblem()
	p.GlobalRHS[0] = 100 // beyond the upper bounds
	res, err := Solve(p, &Options{Engine: EngineBranchBound})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
	// Auto must also conclude infeasible (augment stalls, exact decides).
	res, err = Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("auto status = %v, want infeasible", res.Status)
	}
}

func TestSolveWithObjective(t *testing.T) {
	// Minimize x11: optimum uses brick 2 to cover the global row... but the
	// global row only sees brick-first variables, so x11 + x21 = 3 with
	// local sums 2 forces x11 >= 1. Optimal obj = 1.
	p := tinyProblem()
	p.Obj[0][0] = 1
	res, err := Solve(p, &Options{Engine: EngineBranchBound})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible || res.Obj != 1 {
		t.Fatalf("status=%v obj=%d x=%v", res.Status, res.Obj, res.X)
	}
}

func TestConfigurationStyleProblem(t *testing.T) {
	// A miniature of the paper's splittable N-fold: 3 classes (bricks),
	// 2 modules (sizes 2, 3), configurations {2}, {3}, {2,2}, {2,3} on
	// m = 3 machines. Brick variables: x_K (4), y_q (2).
	// Global: Σ x = m; per module q: Σ_K K_q x_K − Σ y_q = 0.
	// Local: Σ_q q·y_q = load_u  (loads 3, 4, 2 — note 4 = 2+2).
	a := [][]int64{
		// x{2} x{3} x{22} x{23} y2 y3
		{1, 1, 1, 1, 0, 0},  // Σ x_K = m
		{1, 0, 2, 1, -1, 0}, // module 2 coverage
		{0, 1, 0, 1, 0, -1}, // module 3 coverage
	}
	b := [][]int64{
		{0, 0, 0, 0, 2, 3}, // Σ q y_q = load_u
	}
	p := NewUniform(3, a, b)
	p.GlobalRHS[0] = 3
	loads := []int64{3, 4, 2}
	for i := 0; i < 3; i++ {
		p.LocalRHS[i][0] = loads[i]
		for j := 0; j < 6; j++ {
			p.Upper[i][j] = 6
		}
	}
	for _, eng := range []Engine{EngineAugment, EngineBranchBound} {
		res, err := Solve(p, &Options{Engine: eng, FirstFeasible: true})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.Status == Unknown && eng == EngineAugment {
			t.Logf("%s: stalled (allowed for the heuristic)", eng)
			continue
		}
		if res.Status != Feasible {
			t.Fatalf("%s: status = %v", eng, res.Status)
		}
		if err := p.Check(res.X); err != nil {
			t.Errorf("%s: invalid solution: %v", eng, err)
		}
	}
}

func TestDeltaAndEncoding(t *testing.T) {
	p := tinyProblem()
	if got := p.Delta(); got != 1 {
		t.Errorf("Delta = %d, want 1", got)
	}
	p.A[0][0][1] = -7
	if got := p.Delta(); got != 7 {
		t.Errorf("Delta = %d, want 7", got)
	}
	if p.EncodingLength() < 3 {
		t.Errorf("EncodingLength = %d, want >= 3 (number 7)", p.EncodingLength())
	}
}

func TestParallelCoeffs(t *testing.T) {
	cases := []struct {
		u, v []int64
		a, b int64
		ok   bool
	}{
		{[]int64{2, 4}, []int64{1, 2}, 1, 2, true},
		{[]int64{3}, []int64{2}, 2, 3, true},
		{[]int64{0, 0}, []int64{0, 0}, 1, 1, true},
		{[]int64{1, 0}, []int64{0, 1}, 0, 0, false},
		{[]int64{1, 2}, []int64{2, 3}, 0, 0, false},
		{[]int64{0, 1}, []int64{0, 0}, 0, 0, false},
		{[]int64{-2}, []int64{4}, 2, -1, true}, // a*(-2) = b*4 -> a=2,b=-1... check sign normalization
	}
	for i, tc := range cases {
		a, b, ok := parallelCoeffs(tc.u, tc.v, 8)
		if ok != tc.ok {
			t.Errorf("case %d: ok = %v, want %v", i, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		// Verify the defining identity rather than exact coefficients.
		for k := range tc.u {
			if a*tc.u[k] != b*tc.v[k] {
				t.Errorf("case %d: %d*%d != %d*%d", i, a, tc.u[k], b, tc.v[k])
			}
		}
		if a <= 0 {
			t.Errorf("case %d: a = %d not positive", i, a)
		}
	}
}

// TestRandomAgreement cross-checks the engines on random small N-folds:
// whenever branch and bound says feasible, auto must produce a verified
// solution; when it says infeasible, augmentation must not claim otherwise.
func TestRandomAgreement(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		r := 1 + rng.Intn(2)
		s := 1 + rng.Intn(2)
		tt := 2 + rng.Intn(3)
		a := make([][]int64, r)
		for k := range a {
			a[k] = make([]int64, tt)
			for j := range a[k] {
				a[k][j] = int64(rng.Intn(5) - 2)
			}
		}
		b := make([][]int64, s)
		for k := range b {
			b[k] = make([]int64, tt)
			for j := range b[k] {
				b[k][j] = int64(rng.Intn(5) - 2)
			}
		}
		p := NewUniform(n, a, b)
		for k := range p.GlobalRHS {
			p.GlobalRHS[k] = int64(rng.Intn(7) - 3)
		}
		for i := 0; i < n; i++ {
			for k := range p.LocalRHS[i] {
				p.LocalRHS[i][k] = int64(rng.Intn(7) - 3)
			}
			for j := 0; j < tt; j++ {
				p.Upper[i][j] = int64(rng.Intn(4))
			}
		}
		exact, err := Solve(p, &Options{Engine: EngineBranchBound, FirstFeasible: true})
		if err != nil {
			return false
		}
		aug, err := Solve(p, &Options{Engine: EngineAugment})
		if err != nil {
			return false
		}
		switch exact.Status {
		case Feasible:
			if p.Check(exact.X) != nil {
				return false
			}
			// Augment may stall (Unknown) but must not claim infeasible,
			// and any Feasible answer must verify.
			if aug.Status == Feasible && p.Check(aug.X) != nil {
				return false
			}
			if aug.Status == Infeasible {
				return false
			}
		case Infeasible:
			if aug.Status == Feasible {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestStatusStrings(t *testing.T) {
	if Feasible.String() != "feasible" || Infeasible.String() != "infeasible" || Unknown.String() != "unknown" {
		t.Error("unexpected status strings")
	}
}
