package nfold

import "testing"

// infeasibleProblem builds a tiny N-fold whose LP relaxation is infeasible:
// two bricks, one global row Σx = 10, every variable bounded by 2.
func infeasibleProblem() *Problem {
	a := [][]int64{{1, 1}}
	b := [][]int64{{1, -1}}
	p := NewUniform(2, a, b)
	p.GlobalRHS[0] = 10
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.T; j++ {
			p.Upper[i][j] = 2
		}
	}
	return p
}

// feasibleProblem is the same shape with an attainable global row.
func feasibleProblem() *Problem {
	p := infeasibleProblem()
	p.GlobalRHS[0] = 4
	return p
}

func TestInfeasibleRayCertifies(t *testing.T) {
	p := infeasibleProblem()
	res, err := Solve(p, &Options{Engine: EngineBranchBound, FirstFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want Infeasible", res.Status)
	}
	if res.InfeasibleRay == nil {
		t.Fatal("no Farkas ray on a root-infeasible solve")
	}
	if !p.CertifiesInfeasible(res.InfeasibleRay) {
		t.Fatal("captured ray does not certify the problem that produced it")
	}
	// The ray must keep certifying a perturbed problem that is still
	// infeasible for the same capacity reason...
	perturbed := infeasibleProblem()
	perturbed.GlobalRHS[0] = 9
	if !perturbed.CertifiesInfeasible(res.InfeasibleRay) {
		t.Fatal("ray does not transfer to a nearby still-infeasible problem")
	}
	// ...and must never certify a feasible one.
	if feasibleProblem().CertifiesInfeasible(res.InfeasibleRay) {
		t.Fatal("ray certified a feasible problem")
	}
	// Wrong dimensions are rejected outright.
	if feasibleProblem().CertifiesInfeasible(res.InfeasibleRay[:1]) {
		t.Fatal("short ray accepted")
	}
}

func TestFeasibleSolveHasNoRayAndARootBasis(t *testing.T) {
	p := feasibleProblem()
	res, err := Solve(p, &Options{Engine: EngineBranchBound, FirstFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Feasible {
		t.Fatalf("status = %v, want Feasible", res.Status)
	}
	if res.InfeasibleRay != nil {
		t.Fatal("feasible solve produced a Farkas ray")
	}
	if res.RootBasis == nil {
		t.Fatal("feasible exact solve lost its root basis")
	}
	// The captured basis round-trips as a warm hint without changing the
	// verdict (verdict-only restore).
	res2, err := Solve(feasibleProblem(), &Options{Engine: EngineBranchBound, FirstFeasible: true, RootBasis: res.RootBasis})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Status != Feasible {
		t.Fatalf("warm-hinted status = %v, want Feasible", res2.Status)
	}
}
