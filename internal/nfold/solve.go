package nfold

import (
	"context"
	"fmt"

	"ccsched/internal/lp"
	"ccsched/internal/trace"
)

// Engine identifies which solver produced a result.
type Engine string

const (
	// EngineAugment is the Graver-style augmentation heuristic.
	EngineAugment Engine = "augment"
	// EngineBranchBound is the exact LP-based branch and bound.
	EngineBranchBound Engine = "branch-bound"
	// EngineAuto tries augmentation first and falls back to branch and
	// bound, so answers are always exact.
	EngineAuto Engine = "auto"
)

// Status classifies a solve outcome.
type Status int

const (
	// Feasible means X holds a verified solution.
	Feasible Status = iota
	// Infeasible means no solution exists (exact engines only).
	Infeasible
	// Unknown means the engine gave up within its budget.
	Unknown
)

// String names the status for logs and error messages.
func (s Status) String() string {
	switch s {
	case Feasible:
		return "feasible"
	case Infeasible:
		return "infeasible"
	case Unknown:
		return "unknown"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options selects and tunes the engines.
type Options struct {
	// Engine picks the solver; default EngineAuto.
	Engine Engine
	// Augment tunes the augmentation engine.
	Augment *AugmentOptions
	// MaxNodes caps branch-and-bound nodes (default 200000).
	MaxNodes int
	// FirstFeasible stops branch and bound at the first integral solution;
	// the right choice for the PTAS's zero-objective feasibility ILPs.
	FirstFeasible bool
	// NoWarmStart disables LP basis reuse inside (and across) the exact
	// engine's branch-and-bound solves. Results are bit-identical either
	// way; see ilp.Options.NoWarmStart.
	NoWarmStart bool
	// Template shares the augmentation move-set cache across a family of
	// related solves (the probes of one PTAS guess search). Nil disables
	// cross-solve sharing.
	Template *Template
	// RootBasis optionally warm-starts the exact engine's root relaxation
	// from a basis captured on a structurally compatible flattened problem
	// (e.g. the same probe shape in the previous solve of a scheduling
	// session). The restore is verdict-only, so results are bit-identical
	// with or without the hint; dimension mismatches are ignored.
	RootBasis *lp.Basis
	// Parallelism ≥ 2 parallelizes inside the engines: the augmentation
	// descent scans bricks concurrently with a deterministic merge (see
	// augment.go), and the exact engine explores branch-and-bound subtrees
	// with a speculative worker pool behind a sequential committer (see
	// ilp.Options.Parallelism). Results are bit-identical at any value;
	// ≤ 1 runs both engines serially, unchanged.
	Parallelism int
	// Trace is the enclosing trace span (normally the guess probe's);
	// engine runs record nfold_augment / bb child spans under it. The zero
	// Span disables recording. Observational only: results are identical
	// traced or not.
	Trace trace.Span
}

// Result is a solve outcome. X is indexed [brick][col].
type Result struct {
	Status Status
	X      [][]int64
	Obj    int64
	Engine Engine
	// Nodes counts branch-and-bound nodes or augmentation steps.
	Nodes int
	// Pivots counts simplex pivots across the exact engine's LP solves
	// (zero for pure augmentation results).
	Pivots int
	// WarmHits counts branch-and-bound nodes pruned by the warm dual
	// restore (see internal/lp); zero with NoWarmStart.
	WarmHits int
	// RootBasis is the exact engine's terminal root-relaxation basis when
	// it solved to optimality (nil otherwise); pass it back through
	// Options.RootBasis to warm-start a related later solve.
	RootBasis *lp.Basis
	// InfeasibleRay is a Farkas certificate of this problem's LP-relaxation
	// infeasibility when the exact engine refuted it at the root with a
	// cold LP solve (nil otherwise). Re-verify it against a related problem
	// with CertifiesInfeasible to prove that problem Infeasible without an
	// engine run.
	InfeasibleRay []float64
	// BrickScanWorkers is the largest number of concurrent brick-scan
	// workers the augmentation descent engaged (zero when it ran serially
	// or never ran). Results never depend on it; see Options.Parallelism.
	BrickScanWorkers int
	// SubtreeSteals counts exact-engine nodes whose LP relaxation was
	// solved by a speculative worker (zero unless Options.Parallelism ≥ 2).
	// Diagnostics only — the schedule of steals varies run to run even
	// though results never do.
	SubtreeSteals int
	// BatchedLPSolves counts exact-engine node LPs solved through the
	// batched sibling kernel (lp.SolveBatch); diagnostics like
	// SubtreeSteals.
	BatchedLPSolves int
}

// Solve dispatches to the selected engine. With EngineAuto (default), the
// augmentation heuristic runs first; if it stalls, the exact branch and
// bound decides feasibility, so the combined answer is never Unknown unless
// the node budget is exhausted.
func Solve(p *Problem, opts *Options) (*Result, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve under a context. Cancellation is polled at every
// augmentation descent step and every branch-and-bound node (and inside
// each node's LP relaxation), so a canceled context aborts the solve with
// ctx.Err() within one iteration of whichever engine is running. The
// parallel PTAS guess search cancels losing speculative probes through this
// path.
func SolveCtx(ctx context.Context, p *Problem, opts *Options) (*Result, error) {
	var o Options
	if opts != nil {
		o = *opts
	}
	if o.Engine == "" {
		o.Engine = EngineAuto
	}
	maxNodes := o.MaxNodes
	if maxNodes <= 0 {
		maxNodes = 200000
	}
	switch o.Engine {
	case EngineAugment:
		sp := o.Trace.Child("nfold_augment")
		res, err := p.solveAugment(ctx, o.Augment, o.Template, o.Parallelism)
		endEngineSpan(sp, res, err)
		return res, err
	case EngineBranchBound:
		return p.solveBranchBound(ctx, maxNodes, o.FirstFeasible, &o)
	case EngineAuto:
		asp := o.Trace.Child("nfold_augment")
		res, err := p.solveAugment(ctx, o.Augment, o.Template, o.Parallelism)
		endEngineSpan(asp, res, err)
		if err != nil {
			return nil, err
		}
		if res.Status == Feasible && !hasObjective(p) {
			return res, nil
		}
		// No separate LP-relaxation infeasibility pre-check: branch and
		// bound's root node solves exactly that LP and returns Infeasible
		// after one node, so the former pre-check only duplicated work.
		exact, err := p.solveBranchBound(ctx, maxNodes, o.FirstFeasible || !hasObjective(p), &o)
		if err != nil {
			return nil, err
		}
		// The augmentation attempt ran first either way; keep its scan
		// diagnostics on whichever result wins.
		exact.BrickScanWorkers = res.BrickScanWorkers
		// Prefer the better verified answer when both engines succeeded.
		if res.Status == Feasible && (exact.Status != Feasible || res.Obj <= exact.Obj) {
			return res, nil
		}
		return exact, nil
	default:
		return nil, fmt.Errorf("nfold: unknown engine %q", o.Engine)
	}
}

// endEngineSpan closes an engine-run span with the run's counters. It only
// reads already-computed Result fields, so it cannot influence the solve.
func endEngineSpan(sp trace.Span, res *Result, err error) {
	if !sp.Enabled() {
		return
	}
	if err != nil {
		sp.End(trace.A("err", 1))
		return
	}
	sp.End(
		trace.A("status", int64(res.Status)),
		trace.A("steps", int64(res.Nodes)),
		trace.A("scan_workers", int64(res.BrickScanWorkers)),
	)
}
