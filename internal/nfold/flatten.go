package nfold

import (
	"context"
	"fmt"

	"ccsched/internal/ilp"
	"ccsched/internal/lp"
	"ccsched/internal/trace"
)

// Flatten expands the N-fold into a plain MILP over N*T variables (brick i,
// column j maps to flat index i*T+j) for the exact branch-and-bound engine.
func (p *Problem) Flatten() (*ilp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nv := p.N * p.T
	mp := ilp.NewProblem(nv)
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.T; j++ {
			f := i*p.T + j
			mp.Obj[f] = float64(p.Obj[i][j])
			mp.Lower[f] = float64(p.Lower[i][j])
			mp.Upper[f] = float64(p.Upper[i][j])
		}
	}
	// Global rows span all bricks.
	for k := 0; k < p.R; k++ {
		row := make([]float64, nv)
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.T; j++ {
				row[i*p.T+j] = float64(p.A[i][k][j])
			}
		}
		mp.AddRow(row, lp.EQ, float64(p.GlobalRHS[k]))
	}
	// Local rows touch one brick each.
	for i := 0; i < p.N; i++ {
		for k := 0; k < p.S; k++ {
			row := make([]float64, nv)
			for j := 0; j < p.T; j++ {
				row[i*p.T+j] = float64(p.B[i][k][j])
			}
			mp.AddRow(row, lp.EQ, float64(p.LocalRHS[i][k]))
		}
	}
	return mp, nil
}

// LPRelaxationInfeasible reports whether even the LP relaxation of the
// N-fold has no solution — a cheap certificate of integral infeasibility.
// The auto engine no longer calls it (its branch-and-bound root node solves
// exactly this LP, so the separate pre-check only duplicated work); it
// remains as a diagnostic for callers that want the certificate without
// paying for a full exact solve.
func (p *Problem) LPRelaxationInfeasible() (bool, error) {
	return p.lpRelaxationInfeasible(context.Background())
}

// lpRelaxationInfeasible is LPRelaxationInfeasible under a context.
func (p *Problem) lpRelaxationInfeasible(ctx context.Context) (bool, error) {
	mp, err := p.Flatten()
	if err != nil {
		return false, err
	}
	sol, err := lp.SolveCtx(ctx, &mp.Problem)
	if err != nil {
		return false, err
	}
	return sol.Status == lp.Infeasible, nil
}

// solveBranchBound runs the exact fallback engine and converts the answer
// back to brick form. Basis reuse across the probes of a family was tried
// here (warm-starting each root from the previous probe's terminal root
// basis via Options.Template) and measured a wash-to-loss: a cross-solve
// restore must refactorize from scratch (O(m³)), which on the mostly
// feasible probes of a guess search costs more than the few dozen pivots
// the cold root solve needs. Warm starts therefore stay within one solve
// (parent → child), where the factorization is live; callers with
// workload knowledge can still pass ilp.Options.RootBasis themselves.
func (p *Problem) solveBranchBound(ctx context.Context, maxNodes int, firstFeasible bool, o *Options) (*Result, error) {
	mp, err := p.Flatten()
	if err != nil {
		return nil, err
	}
	sp := o.Trace.Child("bb")
	iopts := &ilp.Options{
		MaxNodes: maxNodes, FirstFeasible: firstFeasible, NoWarmStart: o.NoWarmStart,
		RootBasis: o.RootBasis, Parallelism: o.Parallelism, Trace: sp,
	}
	res, err := ilp.SolveCtx(ctx, mp, iopts)
	if err != nil {
		sp.End(trace.A("err", 1))
		return nil, err
	}
	sp.End(
		trace.A("status", int64(res.Status)), trace.A("nodes", int64(res.Nodes)),
		trace.A("pivots", int64(res.Pivots)), trace.A("warm_hits", int64(res.WarmHits)),
		trace.A("steals", int64(res.SubtreeSteals)), trace.A("batched_lps", int64(res.BatchedLPSolves)),
	)
	out := &Result{
		Engine: EngineBranchBound, Nodes: res.Nodes, Pivots: res.Pivots, WarmHits: res.WarmHits,
		RootBasis: res.RootBasis, InfeasibleRay: res.InfeasibleRay,
		SubtreeSteals: res.SubtreeSteals, BatchedLPSolves: res.BatchedLPSolves,
	}
	switch res.Status {
	case ilp.Infeasible:
		out.Status = Infeasible
		return out, nil
	case ilp.NodeLimit:
		out.Status = Unknown
		return out, nil
	}
	x := make([][]int64, p.N)
	for i := 0; i < p.N; i++ {
		x[i] = make([]int64, p.T)
		for j := 0; j < p.T; j++ {
			x[i][j] = int64(res.X[i*p.T+j] + 0.5*sign(res.X[i*p.T+j]))
		}
	}
	if err := p.Check(x); err != nil {
		return nil, fmt.Errorf("nfold: branch-and-bound produced an invalid solution: %w", err)
	}
	out.Status = Feasible
	out.X = x
	out.Obj = p.Objective(x)
	return out, nil
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
