package nfold

import (
	"context"
	"fmt"

	"ccsched/internal/ilp"
	"ccsched/internal/lp"
)

// Flatten expands the N-fold into a plain MILP over N*T variables (brick i,
// column j maps to flat index i*T+j) for the exact branch-and-bound engine.
func (p *Problem) Flatten() (*ilp.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	nv := p.N * p.T
	mp := ilp.NewProblem(nv)
	for i := 0; i < p.N; i++ {
		for j := 0; j < p.T; j++ {
			f := i*p.T + j
			mp.Obj[f] = float64(p.Obj[i][j])
			mp.Lower[f] = float64(p.Lower[i][j])
			mp.Upper[f] = float64(p.Upper[i][j])
		}
	}
	// Global rows span all bricks.
	for k := 0; k < p.R; k++ {
		row := make([]float64, nv)
		for i := 0; i < p.N; i++ {
			for j := 0; j < p.T; j++ {
				row[i*p.T+j] = float64(p.A[i][k][j])
			}
		}
		mp.AddRow(row, lp.EQ, float64(p.GlobalRHS[k]))
	}
	// Local rows touch one brick each.
	for i := 0; i < p.N; i++ {
		for k := 0; k < p.S; k++ {
			row := make([]float64, nv)
			for j := 0; j < p.T; j++ {
				row[i*p.T+j] = float64(p.B[i][k][j])
			}
			mp.AddRow(row, lp.EQ, float64(p.LocalRHS[i][k]))
		}
	}
	return mp, nil
}

// LPRelaxationInfeasible reports whether even the LP relaxation of the
// N-fold has no solution — a cheap certificate of integral infeasibility
// used by the auto engine before paying for branch and bound.
func (p *Problem) LPRelaxationInfeasible() (bool, error) {
	return p.lpRelaxationInfeasible(context.Background())
}

// lpRelaxationInfeasible is LPRelaxationInfeasible under a context.
func (p *Problem) lpRelaxationInfeasible(ctx context.Context) (bool, error) {
	mp, err := p.Flatten()
	if err != nil {
		return false, err
	}
	sol, err := lp.SolveCtx(ctx, &mp.Problem)
	if err != nil {
		return false, err
	}
	return sol.Status == lp.Infeasible, nil
}

// solveBranchBound runs the exact fallback engine and converts the answer
// back to brick form.
func (p *Problem) solveBranchBound(ctx context.Context, maxNodes int, firstFeasible bool) (*Result, error) {
	mp, err := p.Flatten()
	if err != nil {
		return nil, err
	}
	res, err := ilp.SolveCtx(ctx, mp, &ilp.Options{MaxNodes: maxNodes, FirstFeasible: firstFeasible})
	if err != nil {
		return nil, err
	}
	out := &Result{Engine: EngineBranchBound, Nodes: res.Nodes}
	switch res.Status {
	case ilp.Infeasible:
		out.Status = Infeasible
		return out, nil
	case ilp.NodeLimit:
		out.Status = Unknown
		return out, nil
	}
	x := make([][]int64, p.N)
	for i := 0; i < p.N; i++ {
		x[i] = make([]int64, p.T)
		for j := 0; j < p.T; j++ {
			x[i][j] = int64(res.X[i*p.T+j] + 0.5*sign(res.X[i*p.T+j]))
		}
	}
	if err := p.Check(x); err != nil {
		return nil, fmt.Errorf("nfold: branch-and-bound produced an invalid solution: %w", err)
	}
	out.Status = Feasible
	out.X = x
	out.Obj = p.Objective(x)
	return out, nil
}

func sign(v float64) float64 {
	if v < 0 {
		return -1
	}
	return 1
}
