package nfold

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
)

// randomNFold builds a random N-fold in the generator idiom of
// TestRandomAgreement, sized so parallel brick scans actually split (n
// bricks across several workers). When plant is set a solution is planted —
// the RHS vectors are derived from a random in-box point — so the exact
// engine explores a real tree instead of refuting the root.
func randomNFold(rng *rand.Rand, n int, plant bool) *Problem {
	r := 1 + rng.Intn(2)
	s := 1 + rng.Intn(2)
	tt := 2 + rng.Intn(3)
	a := make([][]int64, r)
	for k := range a {
		a[k] = make([]int64, tt)
		for j := range a[k] {
			a[k][j] = int64(rng.Intn(5) - 2)
		}
	}
	b := make([][]int64, s)
	for k := range b {
		b[k] = make([]int64, tt)
		for j := range b[k] {
			b[k][j] = int64(rng.Intn(5) - 2)
		}
	}
	p := NewUniform(n, a, b)
	x := make([][]int64, n)
	for i := 0; i < n; i++ {
		x[i] = make([]int64, tt)
		for j := 0; j < tt; j++ {
			p.Upper[i][j] = int64(rng.Intn(4))
			x[i][j] = rng.Int63n(p.Upper[i][j] + 1)
		}
	}
	if plant {
		for k := 0; k < r; k++ {
			var sum int64
			for i := 0; i < n; i++ {
				for j := 0; j < tt; j++ {
					sum += a[k][j] * x[i][j]
				}
			}
			p.GlobalRHS[k] = sum
		}
		for i := 0; i < n; i++ {
			for k := 0; k < s; k++ {
				var sum int64
				for j := 0; j < tt; j++ {
					sum += b[k][j] * x[i][j]
				}
				p.LocalRHS[i][k] = sum
			}
		}
		return p
	}
	for k := range p.GlobalRHS {
		p.GlobalRHS[k] = int64(rng.Intn(9) - 4)
	}
	for i := 0; i < n; i++ {
		for k := range p.LocalRHS[i] {
			p.LocalRHS[i][k] = int64(rng.Intn(7) - 3)
		}
	}
	return p
}

// sameNFoldResult fails unless the deterministic fields agree: Status, X,
// Obj and Nodes (augmentation steps / branch-and-bound nodes). Pivots and
// WarmHits are not compared (see ilp.Options.Parallelism), and the
// diagnostics counters are explicitly allowed to differ.
func sameNFoldResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Status != want.Status || got.Engine != want.Engine || got.Nodes != want.Nodes {
		t.Fatalf("%s: (%v, %v, %d nodes), want (%v, %v, %d nodes)",
			label, got.Status, got.Engine, got.Nodes, want.Status, want.Engine, want.Nodes)
	}
	if got.Obj != want.Obj {
		t.Fatalf("%s: obj %d, want %d", label, got.Obj, want.Obj)
	}
	if (got.X == nil) != (want.X == nil) {
		t.Fatalf("%s: solution presence diverged", label)
	}
	for i := range want.X {
		for j := range want.X[i] {
			if got.X[i][j] != want.X[i][j] {
				t.Fatalf("%s: X[%d][%d] = %d, want %d", label, i, j, got.X[i][j], want.X[i][j])
			}
		}
	}
}

// TestScanMergeDeterminism pins the brick-scan merge rule under an
// adversarial GOMAXPROCS × worker-count sweep: the augmentation engine must
// pick the same moves — same steps, same final point — at any parallelism,
// because per-range winners merge under the same lexicographic incumbent
// rule the serial scan applies. GOMAXPROCS is restored on exit.
func TestScanMergeDeterminism(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(0))
	rng := rand.New(rand.NewSource(73))
	engaged := 0
	for trial := 0; trial < 12; trial++ {
		p := randomNFold(rng, 4+rng.Intn(9), trial%2 == 0)
		serial, err := Solve(p, &Options{Engine: EngineAugment})
		if err != nil {
			t.Fatal(err)
		}
		if serial.BrickScanWorkers != 0 {
			t.Fatalf("trial %d: serial solve reported %d scan workers", trial, serial.BrickScanWorkers)
		}
		for _, procs := range []int{1, 2, 4} {
			runtime.GOMAXPROCS(procs)
			for _, par := range []int{2, 3, 8, 16} {
				got, err := Solve(p, &Options{Engine: EngineAugment, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				sameNFoldResult(t, labelPMP(trial, procs, par), serial, got)
				if got.Nodes > 0 && got.BrickScanWorkers > 1 {
					engaged++
				}
			}
		}
	}
	if engaged == 0 {
		t.Fatal("no parallel scan ever engaged more than one worker; determinism test is vacuous")
	}
}

func labelPMP(trial, procs, par int) string {
	return fmt.Sprintf("trial %d procs=%d par=%d", trial, procs, par)
}

// TestAutoEngineParallelismParity runs the full auto pipeline — augmentation
// descent plus exact branch-and-bound fallback — at several parallelism
// levels and checks the combined verdicts stay bit-identical, with the
// subtree-steal and batched-LP counters surfacing only from parallel runs.
func TestAutoEngineParallelismParity(t *testing.T) {
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(79))
	var steals int
	for trial := 0; trial < 15; trial++ {
		p := randomNFold(rng, 3+rng.Intn(6), true)
		// A nonzero objective forces the exact engine to run a full
		// optimization search after the augmentation attempt, giving the
		// speculative workers a real tree.
		for i := range p.Obj {
			for j := range p.Obj[i] {
				p.Obj[i][j] = int64(rng.Intn(5) - 2)
			}
		}
		serial, err := Solve(p, &Options{MaxNodes: 2000})
		if err != nil {
			t.Fatal(err)
		}
		if serial.SubtreeSteals != 0 || serial.BatchedLPSolves != 0 {
			t.Fatalf("trial %d: serial solve reported speculation counters: %+v", trial, serial)
		}
		for _, par := range []int{2, 4} {
			got, err := Solve(p, &Options{MaxNodes: 2000, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			sameNFoldResult(t, labelPMP(trial, 0, par), serial, got)
			steals += got.SubtreeSteals
		}
	}
	// Steals depend on scheduling; across 15 trials × 2 levels on 4 Ps some
	// speculative solve should land. If this ever flakes the engine is
	// starving its workers, which is worth failing loudly.
	if steals == 0 {
		t.Fatal("no exact-engine node was ever solved speculatively; parity is vacuous")
	}
}
