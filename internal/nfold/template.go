package nfold

import (
	"sync"
)

// Template carries solver state that is reusable across a family of related
// N-fold solves — in the PTAS, the probes of one makespan-guess search,
// which differ only in guess-dependent right-hand sides, bounds and a few
// block coefficients. One Template is shared by every (possibly concurrent)
// probe of a search; the cache below is safe for concurrent use and all
// cached values are immutable, so no per-worker cloning is needed.
//
// It caches the augmentation engine's per-brick move sets, keyed by the
// identity of the brick's block arrays. Builders that share block backing
// arrays across bricks (and across guesses — see internal/ptas templates)
// make move enumeration, formerly ~half of a probe's runtime, an
// O(distinct blocks) cost instead of O(bricks × guesses). (Cross-probe
// root-basis reuse was also tried here and removed: see solveBranchBound.)
type Template struct {
	moves sync.Map // brickCacheKey -> *brickMoves
}

// NewTemplate returns an empty template. Pass it via Options.Template to
// every solve in the family that should share it.
func NewTemplate() *Template { return &Template{} }
