package nfold

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ccsched/internal/faultinject"
	"ccsched/internal/panicsafe"
)

// The augmentation engine follows the shape of the theoretical N-fold
// algorithms: start from a trivially box-feasible point, then repeatedly
// apply integral moves with bounded brick support, scaled by powers of two
// (the "Graver-best step" schedule). Instead of explicit artificial
// variables, it tracks the residuals of all constraint rows and descends
// their L1 norm — reaching zero residual is exactly phase-1 feasibility.
//
// The move set restricts Graver elements to:
//
//   - singles: ±e_j within one brick,
//   - kernel swaps: support-2 moves a·e_j − b·e_k within one brick with
//     B(a·e_j − b·e_k) = 0 (parallel B-columns), the moves that reshuffle
//     configurations without disturbing local rows,
//   - pairs: two moves in different bricks applied together when neither
//     helps alone.
//
// Every accepted move strictly decreases the nonnegative integral residual
// norm, so the descent terminates. It may stall above zero — the engine is
// a documented heuristic; Solve verifies its output and falls back to the
// exact branch-and-bound engine on a stall (measured in experiment E8).

// AugmentOptions tunes the augmentation engine.
type AugmentOptions struct {
	// MaxCoeff bounds kernel-swap coefficients (default 8).
	MaxCoeff int64
	// MaxSwapsPerBrick caps the enumerated kernel swaps (default 4000).
	MaxSwapsPerBrick int
	// MaxSteps caps accepted augmentation steps (default 200000).
	MaxSteps int
}

func (o *AugmentOptions) defaults() AugmentOptions {
	out := AugmentOptions{MaxCoeff: 8, MaxSwapsPerBrick: 4000, MaxSteps: 200000}
	if o == nil {
		return out
	}
	if o.MaxCoeff > 0 {
		out.MaxCoeff = o.MaxCoeff
	}
	if o.MaxSwapsPerBrick > 0 {
		out.MaxSwapsPerBrick = o.MaxSwapsPerBrick
	}
	if o.MaxSteps > 0 {
		out.MaxSteps = o.MaxSteps
	}
	return out
}

// move is a bounded-support change within a single brick.
type move struct {
	cols  []int
	coefs []int64
}

// sparseVec is a sparse integer vector (row index -> value).
type sparseVec struct {
	idx []int32
	val []int64
}

// brickMoves holds a brick's move set with precomputed constraint effects.
type brickMoves struct {
	moves []move
	geff  []sparseVec // A_i·g per move
	leff  []sparseVec // B_i·g per move
}

// augState is the engine's working state.
type augState struct {
	p     *Problem
	x     [][]int64
	gres  []int64   // global residuals: GlobalRHS − Σ A_i x_i
	lres  [][]int64 // local residuals per brick
	bm    []*brickMoves
	steps int
	// ctx is polled at descent-iteration boundaries and inside the long
	// per-brick scans, so cancellation latency is bounded by one brick's
	// move evaluation rather than a whole descent iteration.
	ctx context.Context
	// par is the requested scan parallelism (≤ 1 scans serially);
	// scanWorkers records the largest worker count actually engaged.
	par         int
	scanWorkers int
	// scanErr is a fault injected at the nfold.scan point; the descent
	// stops at the next iteration boundary and solveAugment surfaces it.
	scanErr error
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func gcd64(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	if a == 0 {
		return 1
	}
	return a
}

// enumerateMoves builds the per-brick move set with cached sparse effects.
// Bricks sharing block backing arrays share the enumeration and effects;
// with a Template, the sharing extends across every solve of the family
// (the PTAS guess probes reuse block arrays across guesses, so a whole
// search enumerates each distinct brick shape exactly once).
func enumerateMoves(p *Problem, opt AugmentOptions, tmpl *Template) []*brickMoves {
	cache := make(map[brickCacheKey]*brickMoves)
	out := make([]*brickMoves, p.N)
	for i := 0; i < p.N; i++ {
		ck := cacheKey(p, i, opt)
		if bm, ok := cache[ck]; ok {
			out[i] = bm
			continue
		}
		if tmpl != nil {
			if v, ok := tmpl.moves.Load(ck); ok {
				bm := v.(*brickMoves)
				cache[ck] = bm
				out[i] = bm
				continue
			}
		}
		var ms []move
		for j := 0; j < p.T; j++ {
			ms = append(ms,
				move{cols: []int{j}, coefs: []int64{1}},
				move{cols: []int{j}, coefs: []int64{-1}},
			)
		}
		// Slack-completed column moves: configuration ILPs pair structural
		// columns with slack columns via rows like "z + (b−c)x + s = 0";
		// a unit structural step is only ever useful together with the
		// matching multi-unit slack adjustment, which is a genuine Graver
		// element the support-2 swap enumeration cannot reach (the slack
		// coefficient can be large). For every global row served by a
		// dedicated slack column (±1 in exactly that row, absent from B),
		// complete each structural column's effect on that row.
		slackFor := findSlackColumns(p, i)
		rowCol := make([]int, p.R)
		for k := range rowCol {
			rowCol[k] = -1
		}
		for j, r := range slackFor {
			if r >= 0 && rowCol[r] == -1 {
				rowCol[r] = j
			}
		}
		for j := 0; j < p.T; j++ {
			if slackFor[j] != -1 {
				continue // j is itself a slack column
			}
			var cols []int
			var coefs []int64
			ok := false
			for k := 0; k < p.R; k++ {
				a := p.A[i][k][j]
				if a == 0 {
					continue
				}
				if sc := rowCol[k]; sc >= 0 && sc != j {
					cols = append(cols, sc)
					coefs = append(coefs, -a*p.A[i][k][sc])
					ok = true
				}
			}
			if !ok {
				continue
			}
			cols = append([]int{j}, cols...)
			coefs = append([]int64{1}, coefs...)
			neg := make([]int64, len(coefs))
			for x := range coefs {
				neg[x] = -coefs[x]
			}
			ms = append(ms,
				move{cols: cols, coefs: coefs},
				move{cols: cols, coefs: neg},
			)
		}
		// Kernel swaps among parallel B-columns.
		bcol := make([][]int64, p.T)
		for j := 0; j < p.T; j++ {
			col := make([]int64, p.S)
			for r := 0; r < p.S; r++ {
				col[r] = p.B[i][r][j]
			}
			bcol[j] = col
		}
		swaps := 0
	pairLoop:
		for j1 := 0; j1 < p.T && swaps < opt.MaxSwapsPerBrick; j1++ {
			for j2 := j1 + 1; j2 < p.T; j2++ {
				a, b, ok := parallelCoeffs(bcol[j1], bcol[j2], opt.MaxCoeff)
				if !ok {
					continue
				}
				ms = append(ms,
					move{cols: []int{j1, j2}, coefs: []int64{a, -b}},
					move{cols: []int{j1, j2}, coefs: []int64{-a, b}},
				)
				swaps++
				if swaps >= opt.MaxSwapsPerBrick {
					break pairLoop
				}
			}
		}
		bm := &brickMoves{moves: ms}
		bm.geff = make([]sparseVec, len(ms))
		bm.leff = make([]sparseVec, len(ms))
		for mi, g := range ms {
			bm.geff[mi] = sparseEffect(p.A[i], g)
			bm.leff[mi] = sparseEffect(p.B[i], g)
		}
		cache[ck] = bm
		if tmpl != nil {
			// Concurrent probes may race to compute the same block's moves;
			// enumeration is deterministic, so either value is identical and
			// last-write-wins is safe.
			tmpl.moves.Store(ck, bm)
		}
		out[i] = bm
	}
	return out
}

// findSlackColumns identifies slack columns of brick i: columns appearing
// in exactly one global row with coefficient ±1 and nowhere else (neither
// other global rows nor local rows). Returns, per column, the served global
// row or -1.
func findSlackColumns(p *Problem, i int) []int {
	out := make([]int, p.T)
	for j := 0; j < p.T; j++ {
		out[j] = -1
		row := -1
		ok := true
		for k := 0; k < p.R && ok; k++ {
			switch v := p.A[i][k][j]; {
			case v == 0:
			case (v == 1 || v == -1) && row == -1:
				row = k
			default:
				ok = false
			}
		}
		for k := 0; k < p.S && ok; k++ {
			if p.B[i][k][j] != 0 {
				ok = false
			}
		}
		if ok && row >= 0 {
			out[j] = row
		}
	}
	return out
}

func sparseEffect(block [][]int64, g move) sparseVec {
	var sv sparseVec
	for k := range block {
		var dot int64
		row := block[k]
		for idx, j := range g.cols {
			dot += row[j] * g.coefs[idx]
		}
		if dot != 0 {
			sv.idx = append(sv.idx, int32(k))
			sv.val = append(sv.val, dot)
		}
	}
	return sv
}

// brickCacheKey identifies a brick's move set by the identity of its block
// slices (not their first elements: builders may alias individual rows
// between otherwise-different blocks) plus the enumeration knobs, so a key
// stays valid inside a cross-solve Template cache.
type brickCacheKey struct {
	a, b     *[]int64
	t        int
	maxCoeff int64
	maxSwaps int
}

func cacheKey(p *Problem, i int, opt AugmentOptions) brickCacheKey {
	k := brickCacheKey{t: p.T, maxCoeff: opt.MaxCoeff, maxSwaps: opt.MaxSwapsPerBrick}
	if p.R > 0 {
		k.a = &p.A[i][0]
	}
	if p.S > 0 {
		k.b = &p.B[i][0]
	}
	return k
}

// parallelCoeffs finds minimal positive (a,b) with a·u = b·v, if u and v are
// parallel and the coefficients stay within maxCoeff. Zero columns pair with
// coefficients (1,1).
func parallelCoeffs(u, v []int64, maxCoeff int64) (int64, int64, bool) {
	uz, vz := true, true
	for i := range u {
		if u[i] != 0 {
			uz = false
		}
		if v[i] != 0 {
			vz = false
		}
	}
	if uz && vz {
		return 1, 1, true
	}
	if uz || vz {
		return 0, 0, false
	}
	var a, b int64
	for i := range u {
		if u[i] != 0 || v[i] != 0 {
			if u[i] == 0 || v[i] == 0 {
				return 0, 0, false
			}
			g := gcd64(u[i], v[i])
			a, b = v[i]/g, u[i]/g
			break
		}
	}
	if a < 0 {
		a, b = -a, -b
	}
	if a == 0 || b == 0 || a > maxCoeff || abs64(b) > maxCoeff {
		return 0, 0, false
	}
	for i := range u {
		if a*u[i] != b*v[i] {
			return 0, 0, false
		}
	}
	return a, b, true
}

// newAugState clamps zero into the box and computes residuals.
func newAugState(p *Problem, opt AugmentOptions, tmpl *Template) *augState {
	st := &augState{p: p}
	st.x = make([][]int64, p.N)
	for i := 0; i < p.N; i++ {
		st.x[i] = make([]int64, p.T)
		for j := 0; j < p.T; j++ {
			v := int64(0)
			if v < p.Lower[i][j] {
				v = p.Lower[i][j]
			}
			if v > p.Upper[i][j] {
				v = p.Upper[i][j]
			}
			st.x[i][j] = v
		}
	}
	st.gres = make([]int64, p.R)
	copy(st.gres, p.GlobalRHS)
	st.lres = make([][]int64, p.N)
	for i := 0; i < p.N; i++ {
		st.lres[i] = make([]int64, p.S)
		copy(st.lres[i], p.LocalRHS[i])
		for k := 0; k < p.R; k++ {
			row := p.A[i][k]
			for j := 0; j < p.T; j++ {
				if row[j] != 0 && st.x[i][j] != 0 {
					st.gres[k] -= row[j] * st.x[i][j]
				}
			}
		}
		for k := 0; k < p.S; k++ {
			row := p.B[i][k]
			for j := 0; j < p.T; j++ {
				if row[j] != 0 && st.x[i][j] != 0 {
					st.lres[i][k] -= row[j] * st.x[i][j]
				}
			}
		}
	}
	st.bm = enumerateMoves(p, opt, tmpl)
	return st
}

// residualNorm is the phase-1 objective Σ|residual|.
func (st *augState) residualNorm() int64 {
	var total int64
	for _, v := range st.gres {
		total += abs64(v)
	}
	for i := range st.lres {
		for _, v := range st.lres[i] {
			total += abs64(v)
		}
	}
	return total
}

// maxStep returns the largest λ ≥ 0 such that x_i + λ·g stays in the box.
func (st *augState) maxStep(i, mi int) int64 {
	g := &st.bm[i].moves[mi]
	lim := int64(1) << 40
	for idx, j := range g.cols {
		c := g.coefs[idx]
		if c > 0 {
			if l := (st.p.Upper[i][j] - st.x[i][j]) / c; l < lim {
				lim = l
			}
		} else if c < 0 {
			if l := (st.x[i][j] - st.p.Lower[i][j]) / (-c); l < lim {
				lim = l
			}
		}
	}
	return lim
}

// improvement computes the residual-norm reduction of applying λ·g in brick
// i (positive is better).
func (st *augState) improvement(i, mi int, lambda int64) int64 {
	bm := st.bm[i]
	var delta int64
	ge := bm.geff[mi]
	for k, ri := range ge.idx {
		old := st.gres[ri]
		delta += abs64(old) - abs64(old-lambda*ge.val[k])
	}
	le := bm.leff[mi]
	for k, ri := range le.idx {
		old := st.lres[i][ri]
		delta += abs64(old) - abs64(old-lambda*le.val[k])
	}
	return delta
}

// apply commits λ·g in brick i.
func (st *augState) apply(i, mi int, lambda int64) {
	bm := st.bm[i]
	g := &bm.moves[mi]
	for idx, j := range g.cols {
		st.x[i][j] += lambda * g.coefs[idx]
	}
	ge := bm.geff[mi]
	for k, ri := range ge.idx {
		st.gres[ri] -= lambda * ge.val[k]
	}
	le := bm.leff[mi]
	for k, ri := range le.idx {
		st.lres[i][ri] -= lambda * le.val[k]
	}
	st.steps++
}

// scanRes is one brick range's best move under the canonical incumbent
// rule: lexicographically largest (gain, lambda), earliest (brick, move) on
// full ties. brick < 0 means no improving move in the range.
type scanRes struct {
	brick, move  int
	lambda, gain int64
}

// better reports whether cand displaces inc under the incumbent rule the
// sequential scan applies at every (brick, move, λ) it visits. Because the
// rule is a strict comparison, folding per-range winners in ascending range
// order reproduces the full scan's winner exactly.
func (inc *scanRes) better(gain, lambda int64) bool {
	return gain > inc.gain || (gain == inc.gain && gain > 0 && lambda > inc.lambda)
}

// scanRange computes the incumbent over bricks [from, to). The scan reads
// only pre-move state (x, residuals, bounds, move tables), all immutable
// while a scan is in flight, so disjoint ranges may run concurrently.
func (st *augState) scanRange(ctx context.Context, from, to int) scanRes {
	best := scanRes{brick: -1, move: -1}
	for i := from; i < to; i++ {
		if ctx.Err() != nil {
			return best
		}
		bm := st.bm[i]
		for mi := range bm.moves {
			lim := st.maxStep(i, mi)
			if lim == 0 {
				continue
			}
			// Graver-best-step schedule: powers of two up to the box
			// limit, plus the limit itself.
			for lambda := int64(1); ; lambda *= 2 {
				if lambda > lim {
					lambda = lim
				}
				if gain := st.improvement(i, mi, lambda); best.better(gain, lambda) {
					best = scanRes{brick: i, move: mi, lambda: lambda, gain: gain}
				}
				if lambda == lim {
					break
				}
			}
		}
	}
	return best
}

// scanBest finds the descent's next move. With par ≥ 2 the bricks are split
// into contiguous ranges scanned concurrently and the per-range winners are
// merged in ascending range order under the same incumbent rule, so the
// chosen (brick, move, λ) is bit-identical to the serial scan's at any
// worker count — worker scheduling can only change timing, never the
// winner. Moves are still applied serially by the caller.
func (st *augState) scanBest(ctx context.Context) scanRes {
	if err := faultinject.Check("nfold.scan"); err != nil {
		st.scanErr = err
		return scanRes{brick: -1, move: -1}
	}
	n := st.p.N
	workers := st.par
	if workers > n {
		workers = n
	}
	if workers < 2 {
		return st.scanRange(ctx, 0, n)
	}
	if workers > st.scanWorkers {
		st.scanWorkers = workers
	}
	results := make([]scanRes, workers)
	var wg sync.WaitGroup
	// A panic on a scan worker goroutine would kill the process; capture the
	// first one and re-raise it on the joining goroutine after wg.Wait(), so
	// it unwinds to the solve boundary like a caller-goroutine panic
	// (Capture's passthrough keeps the worker's original stack and span).
	var panicErr atomic.Pointer[panicsafe.Error]
	for w := 1; w < workers; w++ {
		lo, hi := n*w/workers, n*(w+1)/workers
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			defer func() {
				if v := recover(); v != nil {
					panicErr.CompareAndSwap(nil, panicsafe.Capture(v, "brick_scan"))
				}
			}()
			results[w] = st.scanRange(ctx, lo, hi)
		}(w, lo, hi)
	}
	results[0] = st.scanRange(ctx, 0, n/workers)
	wg.Wait()
	if pe := panicErr.Load(); pe != nil {
		panic(pe)
	}
	best := scanRes{brick: -1, move: -1}
	for _, r := range results {
		if r.brick >= 0 && best.better(r.gain, r.lambda) {
			best = r
		}
	}
	return best
}

// descend runs the greedy residual descent until the residual reaches zero,
// no move improves it, or ctx is canceled (the caller translates a canceled
// context into an error, so a partial descent is never mistaken for a
// stall). Returns the final residual norm.
func (st *augState) descend(ctx context.Context, opt AugmentOptions) int64 {
	for st.steps < opt.MaxSteps {
		if ctx.Err() != nil {
			return st.residualNorm()
		}
		if st.residualNorm() == 0 {
			return 0
		}
		best := st.scanBest(ctx)
		if st.scanErr != nil || ctx.Err() != nil {
			return st.residualNorm()
		}
		if best.gain <= 0 {
			if !st.pairStep() {
				return st.residualNorm()
			}
			continue
		}
		st.apply(best.brick, best.move, best.lambda)
	}
	return st.residualNorm()
}

// pairStep looks for two moves (of any supported shape, step 1) whose
// combined effect reduces the residual even though neither helps alone —
// the typical stall is a unit move in one brick repaired by a kernel swap
// in another. Returns true if it applied a pair.
func (st *augState) pairStep() bool {
	type cand struct {
		brick, mi int
		gain      int64
	}
	var cands []cand
	for i := 0; i < st.p.N; i++ {
		for mi := range st.bm[i].moves {
			if st.maxStep(i, mi) == 0 {
				continue
			}
			cands = append(cands, cand{i, mi, st.improvement(i, mi, 1)})
		}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].gain > cands[b].gain })
	const window = 512
	lim := len(cands)
	if lim > window {
		lim = window
	}
	for ai := 0; ai < lim; ai++ {
		if st.ctx != nil && st.ctx.Err() != nil {
			return false
		}
		a := cands[ai]
		gainA := st.improvement(a.brick, a.mi, 1)
		// Tentatively apply a, then search for a repairing partner.
		st.apply(a.brick, a.mi, 1)
		for bi := 0; bi < lim; bi++ {
			if bi == ai {
				continue
			}
			b := cands[bi]
			if st.maxStep(b.brick, b.mi) == 0 {
				continue
			}
			if gainA+st.improvement(b.brick, b.mi, 1) > 0 {
				st.apply(b.brick, b.mi, 1)
				return true
			}
		}
		// Roll back a: the inverse move is its partner in the enumeration
		// (moves come in ± pairs: indices 2k and 2k+1 for singles/swaps).
		st.apply(a.brick, a.mi^1, 1)
		st.steps -= 2 // the tentative apply/rollback should not consume budget
	}
	return false
}

// solveAugment runs the augmentation engine for feasibility (and greedy
// objective descent when Obj is nonzero). Cancellation is polled once per
// descent step; a canceled context surfaces as ctx.Err(). par ≥ 2 scans the
// bricks of each descent iteration concurrently (see scanBest); the chosen
// moves, and therefore the result, are bit-identical at any par.
func (p *Problem) solveAugment(ctx context.Context, opts *AugmentOptions, tmpl *Template, par int) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	opt := opts.defaults()
	st := newAugState(p, opt, tmpl)
	st.ctx = ctx
	st.par = par
	if rest := st.descend(ctx, opt); rest != 0 || st.scanErr != nil {
		if err := st.scanErr; err != nil {
			return nil, err
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return &Result{Status: Unknown, Engine: EngineAugment, Nodes: st.steps, BrickScanWorkers: st.scanWorkers}, nil
	}
	if err := p.Check(st.x); err != nil {
		return nil, err
	}
	if hasObjective(p) {
		st.objectiveDescend(ctx, opt)
		// A deadline that fires mid objective descent must surface as an
		// error (the SolveCtx contract), not as a silently under-optimized
		// Feasible result whose objective depends on timing.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := p.Check(st.x); err != nil {
			return nil, err
		}
	}
	return &Result{
		Status:           Feasible,
		X:                st.x,
		Obj:              p.Objective(st.x),
		Engine:           EngineAugment,
		Nodes:            st.steps,
		BrickScanWorkers: st.scanWorkers,
	}, nil
}

func hasObjective(p *Problem) bool {
	for i := range p.Obj {
		for _, v := range p.Obj[i] {
			if v != 0 {
				return true
			}
		}
	}
	return false
}

// objectiveDescend greedily improves the objective with moves that keep all
// residuals at zero. A canceled context stops the descent early; the
// incumbent stays feasible, so the caller can still return it.
func (st *augState) objectiveDescend(ctx context.Context, opt AugmentOptions) {
	p := st.p
	for st.steps < opt.MaxSteps {
		if ctx.Err() != nil {
			return
		}
		improved := false
		for i := 0; i < p.N && !improved; i++ {
			bm := st.bm[i]
			for mi := range bm.moves {
				if len(bm.geff[mi].idx) != 0 || len(bm.leff[mi].idx) != 0 {
					continue
				}
				var objDelta int64
				g := &bm.moves[mi]
				for idx, j := range g.cols {
					objDelta += p.Obj[i][j] * g.coefs[idx]
				}
				if objDelta >= 0 {
					continue
				}
				lim := st.maxStep(i, mi)
				if lim == 0 {
					continue
				}
				st.apply(i, mi, lim)
				improved = true
				break
			}
		}
		if !improved {
			return
		}
	}
}
