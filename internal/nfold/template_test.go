package nfold

import (
	"testing"
)

// buildSharedBlockProblem models what the PTAS builders now emit: bricks
// aliasing the same block backing arrays.
func buildSharedBlockProblem(n int) *Problem {
	a := [][]int64{{1, 1, 0}, {0, 1, 1}}
	b := [][]int64{{1, -1, 2}}
	p := NewUniform(n, a, b)
	for i := 0; i < n; i++ {
		for j := 0; j < p.T; j++ {
			p.Upper[i][j] = 4
		}
		p.LocalRHS[i][0] = 2
	}
	p.GlobalRHS[0] = int64(2 * n)
	p.GlobalRHS[1] = int64(2 * n)
	return p
}

// TestTemplateSharedSolvesIdentical pins that sharing a Template across a
// family of solves (the augment move cache) never changes any result:
// status, solution and engine must match the template-free solve bit for
// bit.
func TestTemplateSharedSolvesIdentical(t *testing.T) {
	tmpl := NewTemplate()
	for _, n := range []int{2, 5, 9} {
		p := buildSharedBlockProblem(n)
		plain, err := Solve(p, &Options{FirstFeasible: true})
		if err != nil {
			t.Fatal(err)
		}
		shared, err := Solve(p, &Options{FirstFeasible: true, Template: tmpl})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Status != shared.Status || plain.Engine != shared.Engine || plain.Nodes != shared.Nodes {
			t.Fatalf("n=%d: template solve (%v/%v/%d) != plain (%v/%v/%d)",
				n, shared.Status, shared.Engine, shared.Nodes, plain.Status, plain.Engine, plain.Nodes)
		}
		if (plain.X == nil) != (shared.X == nil) {
			t.Fatalf("n=%d: solution presence diverged", n)
		}
		for i := range plain.X {
			for j := range plain.X[i] {
				if plain.X[i][j] != shared.X[i][j] {
					t.Fatalf("n=%d: x[%d][%d] = %d != %d", n, i, j, shared.X[i][j], plain.X[i][j])
				}
			}
		}
	}
}

// TestMoveCacheSharesAcrossBricks verifies the pointer-keyed move cache:
// bricks aliasing one block pair must resolve to the same enumerated move
// set both within a solve and across solves sharing a Template.
func TestMoveCacheSharesAcrossBricks(t *testing.T) {
	p := buildSharedBlockProblem(6)
	opt := (&AugmentOptions{}).defaults()
	tmpl := NewTemplate()
	bm1 := enumerateMoves(p, opt, tmpl)
	for i := 1; i < p.N; i++ {
		if bm1[i] != bm1[0] {
			t.Fatalf("brick %d did not share brick 0's move set despite shared blocks", i)
		}
	}
	bm2 := enumerateMoves(p, opt, tmpl)
	if bm2[0] != bm1[0] {
		t.Fatal("second enumeration with the same template re-computed the move set")
	}
	// Without a template, a fresh call still shares within the solve.
	bm3 := enumerateMoves(p, opt, nil)
	for i := 1; i < p.N; i++ {
		if bm3[i] != bm3[0] {
			t.Fatalf("template-free enumeration lost within-solve sharing at brick %d", i)
		}
	}
}
