package faultinject

import (
	"errors"
	"testing"
	"time"
)

// TestDisabledFastPath checks the zero-cost contract: with nothing armed,
// Check and ShortWrite are inert.
func TestDisabledFastPath(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() with empty registry")
	}
	if err := Check("lp.solve"); err != nil {
		t.Fatalf("Check on empty registry: %v", err)
	}
	if n, err := ShortWrite("server.snapshot.write", 100); n != 100 || err != nil {
		t.Fatalf("ShortWrite on empty registry: n=%d err=%v", n, err)
	}
}

// TestModes exercises each fault mode through Check/ShortWrite.
func TestModes(t *testing.T) {
	defer Reset()

	Reset()
	if err := Arm("p.err", Spec{Mode: ModeError, Msg: "boom"}); err != nil {
		t.Fatal(err)
	}
	err := Check("p.err")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("error mode: got %v", err)
	}
	if Fired("p.err") != 1 {
		t.Fatalf("fired = %d, want 1", Fired("p.err"))
	}
	if err := Check("p.other"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}

	if err := Arm("p.delay", Spec{Mode: ModeDelay, Delay: 20 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if err := Check("p.delay"); err != nil {
		t.Fatalf("delay mode returned error: %v", err)
	}
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("delay mode slept only %v", d)
	}

	if err := Arm("p.panic", Spec{Mode: ModePanic}); err != nil {
		t.Fatal(err)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic mode did not panic")
			}
		}()
		Check("p.panic")
	}()

	if err := Arm("p.short", Spec{Mode: ModeShortWrite}); err != nil {
		t.Fatal(err)
	}
	n, err := ShortWrite("p.short", 100)
	if n != 50 || !errors.Is(err, ErrInjected) {
		t.Fatalf("shortwrite: n=%d err=%v, want 50 bytes and an injected error", n, err)
	}
}

// TestHitBudget checks the *N suffix: the fault fires N times then goes
// inert without being cleared.
func TestHitBudget(t *testing.T) {
	defer Reset()
	Reset()
	if err := ArmSpecs("p.lim=error:once*2"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := Check("p.lim"); !errors.Is(err, ErrInjected) {
			t.Fatalf("hit %d: %v", i, err)
		}
	}
	if err := Check("p.lim"); err != nil {
		t.Fatalf("beyond budget: %v", err)
	}
	if Fired("p.lim") != 2 {
		t.Fatalf("fired = %d, want 2", Fired("p.lim"))
	}
}

// TestArmSpecs checks the spec-string parser end to end, including
// rejection of malformed clauses.
func TestArmSpecs(t *testing.T) {
	defer Reset()
	Reset()
	if err := ArmSpecs("a=error, b=delay:5ms, c=panic:why, d=shortwrite"); err != nil {
		t.Fatal(err)
	}
	pts := List()
	if len(pts) != 4 {
		t.Fatalf("armed %d points, want 4", len(pts))
	}
	if pts[1].Spec.Mode != ModeDelay || pts[1].Spec.Delay != 5*time.Millisecond {
		t.Fatalf("clause b parsed as %+v", pts[1])
	}
	if pts[2].Spec.Msg != "why" {
		t.Fatalf("clause c parsed as %+v", pts[2])
	}
	for _, bad := range []string{"x", "x=", "=error", "x=delay:nope", "x=warp", "x=error*0", "x=shortwrite:arg"} {
		if err := ArmSpecs(bad); err == nil {
			t.Errorf("ArmSpecs(%q) accepted", bad)
		}
	}
	if !Clear("a") || Clear("a") {
		t.Fatal("Clear bookkeeping wrong")
	}
	Reset()
	if Enabled() {
		t.Fatal("Enabled() after Reset")
	}
}
