// Package faultinject is a process-wide fault-injection registry for chaos
// testing the solver and serving layers.
//
// Code under test declares named injection points by calling Check (or
// ShortWrite, for byte-stream writes) at failure-relevant places; tests and
// operators arm faults at those points — an injected error, a delay, a
// panic, or a short write — and the chaos suite asserts the process-wide
// invariant: any armed fault yields either a correct result or a clean
// typed error, never a wrong makespan, a leaked goroutine, or a dead
// process.
//
// Disabled (the default, and the production state), the registry costs one
// atomic load per Check: no locks, no map lookups, no allocation. Faults
// arm programmatically (Arm/Clear/Reset), from the CCSCHED_FAULTS
// environment variable, or — in ccserved with -fault-admin — over HTTP at
// /v1/debug/faults.
//
// The injection points threaded through this repository:
//
//	lp.solve               one LP relaxation (SolveBounds)
//	lp.batch               one batched sibling-pair LP (SolveBatch)
//	ilp.node               the branch-and-bound walker, per committed node
//	ilp.worker             a speculative B&B subtree worker, per claimed node
//	nfold.scan             one brick-scan range (parallel scans: per worker)
//	ptas.probe             one makespan-guess feasibility probe
//	server.worker          the service flight runner, per picked-up flight
//	server.snapshot.write  one session checkpoint write (incl. disk probes)
//
// Spec strings (CCSCHED_FAULTS, -faults, one or more comma-separated):
//
//	point=error[:msg]      Check returns an *Error at the point
//	point=delay:duration   Check sleeps (e.g. ptas.probe=delay:50ms)
//	point=panic[:msg]      Check panics (recovered by the resilience layer)
//	point=shortwrite       ShortWrite truncates the write and fails it
//
// Any mode takes an optional *N suffix (e.g. ilp.worker=panic*2) limiting
// the fault to the first N hits; without it the fault fires on every hit
// until cleared.
package faultinject

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Fault modes.
const (
	// ModeError makes Check return an *Error.
	ModeError = "error"
	// ModeDelay makes Check sleep for Spec.Delay.
	ModeDelay = "delay"
	// ModePanic makes Check panic with the point name and message.
	ModePanic = "panic"
	// ModeShortWrite makes ShortWrite truncate the write and return an
	// *Error; Check ignores it (a short write only makes sense on a write).
	ModeShortWrite = "shortwrite"
)

// ErrInjected is the sentinel wrapped by every injected error, so tests and
// callers can tell a deliberate fault from an organic failure with
// errors.Is.
var ErrInjected = errors.New("faultinject: injected fault")

// Error is one injected failure.
type Error struct {
	// Point names the injection point that fired.
	Point string
	// Msg is the optional operator-supplied message.
	Msg string
}

// Error renders the fault with its point name.
func (e *Error) Error() string {
	if e.Msg != "" {
		return fmt.Sprintf("%v at %s: %s", ErrInjected, e.Point, e.Msg)
	}
	return fmt.Sprintf("%v at %s", ErrInjected, e.Point)
}

// Unwrap ties every injected error to ErrInjected for errors.Is.
func (e *Error) Unwrap() error { return ErrInjected }

// Spec describes one armed fault.
type Spec struct {
	// Mode is one of the Mode* constants.
	Mode string `json:"mode"`
	// Delay is the injected latency for ModeDelay.
	Delay time.Duration `json:"delay,omitempty"`
	// Msg is an optional message carried by injected errors and panics.
	Msg string `json:"msg,omitempty"`
	// Hits limits the fault to the first Hits matching Check/ShortWrite
	// calls; 0 fires on every hit until the point is cleared.
	Hits int64 `json:"hits,omitempty"`
}

// PointStatus is one armed point's introspection view (see List).
type PointStatus struct {
	// Point names the injection point.
	Point string `json:"point"`
	// Spec is the armed fault.
	Spec Spec `json:"spec"`
	// Fired counts how many times the fault has fired so far.
	Fired int64 `json:"fired"`
}

// entry is one armed point's registry slot.
type entry struct {
	spec  Spec
	fired atomic.Int64
}

// registry state: armedCount gates the fast path; mu guards the table.
var (
	armedCount atomic.Int32
	mu         sync.Mutex
	table      = map[string]*entry{}
)

// Enabled reports whether any fault is armed; it is the one-atomic-load
// fast path Check takes before touching the table.
func Enabled() bool { return armedCount.Load() > 0 }

// Arm installs (or replaces) the fault at point. Spec.Mode must be one of
// the Mode* constants.
func Arm(point string, spec Spec) error {
	switch spec.Mode {
	case ModeError, ModeDelay, ModePanic, ModeShortWrite:
	default:
		return fmt.Errorf("faultinject: unknown mode %q (want error, delay, panic or shortwrite)", spec.Mode)
	}
	if point == "" {
		return errors.New("faultinject: empty point name")
	}
	mu.Lock()
	defer mu.Unlock()
	if _, exists := table[point]; !exists {
		armedCount.Add(1)
	}
	table[point] = &entry{spec: spec}
	return nil
}

// Clear disarms the fault at point; reports whether one was armed.
func Clear(point string) bool {
	mu.Lock()
	defer mu.Unlock()
	if _, exists := table[point]; !exists {
		return false
	}
	delete(table, point)
	armedCount.Add(-1)
	return true
}

// Reset disarms every fault. Tests defer it so an armed fault never leaks
// into the next test.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedCount.Add(-int32(len(table)))
	table = map[string]*entry{}
}

// List returns every armed point with its spec and fire count, sorted by
// point name.
func List() []PointStatus {
	mu.Lock()
	defer mu.Unlock()
	out := make([]PointStatus, 0, len(table))
	for p, e := range table {
		out = append(out, PointStatus{Point: p, Spec: e.spec, Fired: e.fired.Load()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// Fired reports how many times the fault at point has fired (0 when
// nothing is armed there).
func Fired(point string) int64 {
	mu.Lock()
	defer mu.Unlock()
	if e, ok := table[point]; ok {
		return e.fired.Load()
	}
	return 0
}

// take claims one firing of the fault at point, honoring the Hits budget.
// It returns the spec and whether the fault fires.
func take(point string) (Spec, bool) {
	mu.Lock()
	defer mu.Unlock()
	e, ok := table[point]
	if !ok {
		return Spec{}, false
	}
	if e.spec.Hits > 0 && e.fired.Load() >= e.spec.Hits {
		return Spec{}, false
	}
	e.fired.Add(1)
	return e.spec, true
}

// Check consults the registry at a named injection point. With nothing
// armed anywhere it is a single atomic load. An armed ModeError returns an
// *Error; ModeDelay sleeps and returns nil; ModePanic panics (the
// resilience layer recovers it into an ErrInternal); ModeShortWrite is
// ignored here (see ShortWrite).
func Check(point string) error {
	if armedCount.Load() == 0 {
		return nil
	}
	spec, fire := take(point)
	if !fire {
		return nil
	}
	switch spec.Mode {
	case ModeError:
		return &Error{Point: point, Msg: spec.Msg}
	case ModeDelay:
		time.Sleep(spec.Delay)
		return nil
	case ModePanic:
		msg := spec.Msg
		if msg == "" {
			msg = "armed panic"
		}
		panic(&Error{Point: point, Msg: msg})
	}
	return nil // shortwrite: not a Check-able mode
}

// ShortWrite consults the registry before a write of size bytes at a named
// point. When a ModeShortWrite fault fires it returns n < size (half,
// rounded down — enough bytes to leave a convincing partial file) and the
// injected error; ModeError faults fire here too (n = 0). Other modes
// behave as in Check. With nothing armed it is a single atomic load.
func ShortWrite(point string, size int) (n int, err error) {
	if armedCount.Load() == 0 {
		return size, nil
	}
	spec, fire := take(point)
	if !fire {
		return size, nil
	}
	switch spec.Mode {
	case ModeShortWrite:
		return size / 2, &Error{Point: point, Msg: spec.Msg}
	case ModeError:
		return 0, &Error{Point: point, Msg: spec.Msg}
	case ModeDelay:
		time.Sleep(spec.Delay)
		return size, nil
	case ModePanic:
		msg := spec.Msg
		if msg == "" {
			msg = "armed panic"
		}
		panic(&Error{Point: point, Msg: msg})
	}
	return size, nil
}

// ArmSpecs parses and arms a comma-separated fault list in the
// CCSCHED_FAULTS syntax (see the package comment). It arms points
// left-to-right and stops at the first malformed clause, leaving the
// earlier ones armed.
func ArmSpecs(specs string) error {
	for _, clause := range strings.Split(specs, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		point, spec, err := parseClause(clause)
		if err != nil {
			return err
		}
		if err := Arm(point, spec); err != nil {
			return err
		}
	}
	return nil
}

// parseClause parses one point=mode[:arg][*hits] clause.
func parseClause(clause string) (string, Spec, error) {
	point, rhs, ok := strings.Cut(clause, "=")
	if !ok || point == "" || rhs == "" {
		return "", Spec{}, fmt.Errorf("faultinject: malformed clause %q (want point=mode[:arg][*hits])", clause)
	}
	var spec Spec
	if body, hits, ok := strings.Cut(rhs, "*"); ok {
		n, err := strconv.ParseInt(hits, 10, 64)
		if err != nil || n <= 0 {
			return "", Spec{}, fmt.Errorf("faultinject: bad hit limit in %q", clause)
		}
		spec.Hits = n
		rhs = body
	}
	mode, arg, _ := strings.Cut(rhs, ":")
	spec.Mode = mode
	switch mode {
	case ModeDelay:
		d, err := time.ParseDuration(arg)
		if err != nil || d < 0 {
			return "", Spec{}, fmt.Errorf("faultinject: bad delay in %q", clause)
		}
		spec.Delay = d
	case ModeError, ModePanic:
		spec.Msg = arg
	case ModeShortWrite:
		if arg != "" {
			return "", Spec{}, fmt.Errorf("faultinject: shortwrite takes no argument in %q", clause)
		}
	default:
		return "", Spec{}, fmt.Errorf("faultinject: unknown mode %q in %q", mode, clause)
	}
	return point, spec, nil
}
