package experiments

import (
	"strings"
	"testing"
)

func checkTable(t *testing.T, tb *Table, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID == "" || tb.Title == "" || tb.Claim == "" {
		t.Error("table missing metadata")
	}
	if len(tb.Rows) == 0 {
		t.Error("table has no rows")
	}
	for i, r := range tb.Rows {
		if len(r) != len(tb.Columns) {
			t.Errorf("row %d has %d cells, want %d", i, len(r), len(tb.Columns))
		}
	}
	text := tb.Format()
	if !strings.Contains(text, tb.ID) || !strings.Contains(text, "|") {
		t.Error("Format() output malformed")
	}
}

func TestF1RoundRobin(t *testing.T) {
	tb, err := F1RoundRobin()
	checkTable(t, tb, err)
	if len(tb.Rows) != 4 {
		t.Errorf("Figure 1 has 4 machines, table has %d rows", len(tb.Rows))
	}
}

func TestF2Repack(t *testing.T) {
	tb, err := F2Repack()
	checkTable(t, tb, err)
}

func TestF3PairSwap(t *testing.T) {
	tb, err := F3PairSwap()
	checkTable(t, tb, err)
}

func TestF4Dissolve(t *testing.T) {
	tb, err := F4Dissolve()
	checkTable(t, tb, err)
	for _, r := range tb.Rows {
		if r[len(r)-1] != "yes" {
			t.Errorf("dissolved schedule not feasible: %v", r)
		}
	}
}

func TestF5FlowNetwork(t *testing.T) {
	tb, err := F5FlowNetwork()
	checkTable(t, tb, err)
	for _, r := range tb.Rows {
		if r[len(r)-1] != "yes" {
			t.Errorf("max flow does not cover all pieces: %v", r)
		}
	}
}

func TestE8NFold(t *testing.T) {
	if testing.Short() {
		t.Skip("solves several N-folds")
	}
	tb, err := E8NFold()
	checkTable(t, tb, err)
	// Both engines must never contradict each other.
	for _, r := range tb.Rows {
		aug, bb := r[6], r[8]
		if (aug == "feasible" && bb == "infeasible") || (aug == "infeasible" && bb == "feasible") {
			t.Errorf("engines disagree: %v", r)
		}
	}
}

func TestE6NonPreemptivePTAS(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the PTAS")
	}
	tb, err := E6NonPreemptivePTAS()
	checkTable(t, tb, err)
}
