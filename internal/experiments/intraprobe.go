package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"ccsched/internal/core"
	"ccsched/internal/generator"
	"ccsched/internal/ptas"
)

// E11IntraProbe measures the PR 7 intra-probe parallelism: parallel brick
// scans, speculative branch-and-bound subtree workers and batched sibling
// LPs inside each N-fold solve, at EngineParallelism 1/2/4 with the guess
// search held sequential so every row answers the identical probe set.
//
// Two workloads:
//
//   - node-heavy: the E10 δ = 1/2 splittable row (uniform n=60, node cap
//     1500) where the exact engine branches for real — the regime the
//     subtree workers and batched sibling LPs target;
//   - redraw churn: three drifted instances in the PR 5 adversarial redraw
//     idiom (5% of jobs redrawn, departures, arrivals), each solved cold,
//     so the engines run on the shapes churn actually produces.
//
// The recorded claim is twofold: makespans, probe counts and
// branch-and-bound node totals are bit-identical at every worker count
// (the parity test tier proves it; this table shows it on real workloads),
// and the diagnostics columns show the parallel machinery engaging. Time
// ratios only mean speedup on a multi-core host — the notes record the
// host's CPU count for that reason.
func E11IntraProbe(ctx context.Context) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Intra-probe parallelism: brick scans + B&B subtree workers (PR 7)",
		Claim:   "bit-identical verdicts at any EngineParallelism; scan fan-out, subtree steals and batched LPs engage",
		Columns: []string{"workload", "engine par", "time", "makespan", "identical", "bbnodes", "scan workers", "steals", "batched"},
	}
	nodeHeavy := generator.Uniform(generator.Config{
		N: 60, Classes: 6, Machines: 3, Slots: 3, PMax: 10000, Seed: 101,
	})
	if err := e11Rows(ctx, t, "node-heavy eps=0.5 n=60", []*core.Instance{nodeHeavy},
		ptas.Options{Epsilon: 0.5, Parallelism: 1, MaxNodes: 1500}); err != nil {
		return nil, err
	}
	if err := e11Rows(ctx, t, "redraw churn ×3", e11Drifted(3),
		ptas.Options{Epsilon: 1, Parallelism: 1, MaxNodes: 400}); err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Host exposes %d CPU(s) (GOMAXPROCS %d): time ratios measure speedup only when real CPUs back the workers; verdict parity holds regardless.",
			runtime.NumCPU(), runtime.GOMAXPROCS(0)),
		"Guess search sequential (Parallelism 1) and uncached in every row, so probe sets and node totals are comparable across worker counts.",
	)
	return t, nil
}

// e11Rows solves every instance in ins at EngineParallelism 1, 2 and 4 and
// appends one table row per level, checking the ep>1 rows against ep=1.
func e11Rows(ctx context.Context, t *Table, workload string, ins []*core.Instance, opts ptas.Options) error {
	var serialMakespan string
	var serialNodes int64
	for _, ep := range []int{1, 2, 4} {
		if err := ctx.Err(); err != nil {
			return err
		}
		o := opts
		o.EngineParallelism = ep
		var nodes, steals, batched int64
		var scanWorkers int
		var makespan string
		start := time.Now()
		for _, in := range ins {
			res, err := ptas.SolveSplittable(ctx, in, o)
			if err != nil {
				return err
			}
			if err := res.Compact.Validate(in); err != nil {
				return err
			}
			makespan = res.Makespan().RatString()
			nodes += res.Report.BBNodes
			steals += res.Report.BBSubtreeSteals
			batched += res.Report.BatchedLPSolves
			if res.Report.BrickScanWorkers > scanWorkers {
				scanWorkers = res.Report.BrickScanWorkers
			}
		}
		el := time.Since(start)
		identical := "-"
		if ep == 1 {
			serialMakespan, serialNodes = makespan, nodes
		} else if makespan == serialMakespan && nodes == serialNodes {
			identical = "yes"
		} else {
			identical = "NO"
		}
		t.Rows = append(t.Rows, []string{
			workload, fmt.Sprint(ep), el.Round(time.Millisecond).String(),
			makespan, identical, fmt.Sprint(nodes),
			fmt.Sprint(scanWorkers), fmt.Sprint(steals), fmt.Sprint(batched),
		})
	}
	return nil
}

// e11Drifted replays k rounds of the PR 5 redraw-churn idiom — 5% of jobs
// mutated per round, split resize/remove/add — against the churn base
// workload, snapshotting the instance after each round.
func e11Drifted(k int) []*core.Instance {
	const (
		n, classes, pmax = 1000, 100, 10000
		frac             = 20 // 1/20 = 5% per round
	)
	in := generator.Uniform(generator.Config{
		N: n, Classes: classes, Machines: 50, Slots: 3, PMax: pmax, Seed: 101,
	})
	out := make([]*core.Instance, 0, k)
	for round := 0; round < k; round++ {
		rng := rand.New(rand.NewSource(int64(round)*9973 + 101))
		total := len(in.P) / frac
		removes := total / 8
		for i := 0; i < total-2*removes; i++ {
			in.P[rng.Intn(len(in.P))] = 1 + rng.Int63n(pmax)
		}
		for i := 0; i < removes; i++ {
			pos := rng.Intn(len(in.P))
			in.P = append(in.P[:pos], in.P[pos+1:]...)
			in.Class = append(in.Class[:pos], in.Class[pos+1:]...)
		}
		for i := 0; i < removes; i++ {
			in.P = append(in.P, 1+rng.Int63n(pmax))
			in.Class = append(in.Class, rng.Intn(classes))
		}
		cp := *in
		cp.P = append([]int64(nil), in.P...)
		cp.Class = append([]int(nil), in.Class...)
		out = append(out, &cp)
	}
	return out
}
