package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"ccsched/internal/generator"
	"ccsched/internal/ptas"
)

// E9ParallelGuess measures the PR 2 speculative parallel makespan-guess
// search and the guess-feasibility cache (docs/ARCHITECTURE.md): the
// splittable PTAS on the E1 n=1000 uniform workload, sequential vs
// parallel probes under the same engine budget, plus latency-bound probe
// rows that isolate the engine's probe overlap from CPU contention.
//
// Three claims are recorded:
//
//  1. bit-identical results — the speculative search consumes the exact
//     sequential probe sequence, so makespans and probe counts match at
//     any parallelism (measured on the real N-fold workload);
//  2. probe overlap — with per-probe latency L and enough workers the
//     whole binary-search path runs concurrently (wall ≈ L, not
//     path × L), measured with synthetic latency-bound probes so the
//     result holds even on a single-core host, where CPU-bound probes
//     necessarily time-share;
//  3. cache effectiveness — re-solving an identical workload against a
//     warm cache skips every guess ILP.
func E9ParallelGuess(ctx context.Context, parallelism int) (*Table, error) {
	if parallelism <= 1 {
		parallelism = 8
	}
	t := &Table{
		ID:      "E9",
		Title:   "Parallel speculative guess search + feasibility cache (PR 2)",
		Claim:   "bit-identical to the sequential search at any parallelism; probes overlap; warm cache skips guess ILPs",
		Columns: []string{"workload", "mode", "time", "makespan", "identical", "probes", "cache hits"},
	}
	// Real N-fold rows: the E1 n=1000 uniform workload. MaxNodes bounds
	// each probe's exact engine so the search terminates in benchmark time;
	// sequential and parallel use the same budget, so verdicts match.
	in := generator.Uniform(generator.Config{
		N: 1000, Classes: 100, Machines: 50, Slots: 3, PMax: 10000, Seed: 1,
	})
	opts := ptas.Options{Epsilon: 0.5, MaxNodes: 100}
	cache := ptas.NewCache()
	type run struct {
		mode  string
		par   int
		cache *ptas.Cache
	}
	runs := []run{
		{"sequential", 1, nil},
		{fmt.Sprintf("parallel ×%d", parallelism), parallelism, cache},
		{fmt.Sprintf("parallel ×%d, warm cache", parallelism), parallelism, cache},
	}
	var seqMakespan string
	for _, r := range runs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		o := opts
		o.Parallelism = r.par
		o.Cache = r.cache
		start := time.Now()
		res, err := ptas.SolveSplittable(ctx, in, o)
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		if err := res.Compact.Validate(in); err != nil {
			return nil, err
		}
		mk := res.Makespan().RatString()
		identical := "-"
		if seqMakespan == "" {
			seqMakespan = mk
		} else if mk == seqMakespan {
			identical = "yes"
		} else {
			identical = "NO"
		}
		t.Rows = append(t.Rows, []string{
			"E1 uniform n=1000", r.mode, el.Round(time.Millisecond).String(),
			mk, identical, fmt.Sprint(res.Report.Guesses), fmt.Sprint(res.Report.CacheHits),
		})
	}
	// Latency-bound rows: synthetic probes isolate the engine's overlap.
	const latency = 100 * time.Millisecond
	pars := []int{4, 16}
	seq, specs, identical, err := ptas.MeasureSpeculativeOverlap(ctx, 15, latency, 11, pars...)
	if err != nil {
		return nil, err
	}
	id := "NO"
	if identical {
		id = "yes"
	}
	t.Rows = append(t.Rows,
		[]string{"latency probes (15-grid)", "sequential", seq.Round(time.Millisecond).String(), "-", "-", "4", "-"})
	for i, par := range pars {
		t.Rows = append(t.Rows,
			[]string{"latency probes (15-grid)", fmt.Sprintf("parallel ×%d", par), specs[i].Round(time.Millisecond).String(), "-", id, "4", "-"})
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Host exposes %d CPU(s) (GOMAXPROCS %d): CPU-bound N-fold probes time-share on a single core, so the real-workload rows demonstrate bit-identical parity and bounded overhead there; the latency rows demonstrate the probe overlap that multi-core hosts also get for CPU-bound probes.",
			runtime.NumCPU(), runtime.GOMAXPROCS(0)),
		"The warm-cache row re-solves the identical workload: every guess ILP is answered from the feasibility cache.",
	)
	return t, nil
}
