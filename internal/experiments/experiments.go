// Package experiments implements the reproduction harness: one function per
// experiment in DESIGN.md's per-experiment index (E1–E8 measuring the
// paper's theorems, F1–F5 executing its figures). Each returns a Table that
// cmd/ccbench renders and EXPERIMENTS.md records; the root bench_test.go
// wraps the same functions in testing.B benchmarks.
package experiments

import (
	"context"
	"fmt"
	"math/big"
	"time"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/exact"
	"ccsched/internal/generator"
	"ccsched/internal/nfold"
	"ccsched/internal/ptas"
)

// Table is a rendered experiment result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper statement being reproduced
	Columns []string
	Rows    [][]string
	Notes   []string
}

// Format renders the table as aligned markdown.
func (t *Table) Format() string {
	out := fmt.Sprintf("## %s — %s\n\nClaim: %s\n\n", t.ID, t.Title, t.Claim)
	out += "| " + join(t.Columns, " | ") + " |\n"
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = "---"
	}
	out += "| " + join(sep, " | ") + " |\n"
	for _, r := range t.Rows {
		out += "| " + join(r, " | ") + " |\n"
	}
	for _, n := range t.Notes {
		out += "\n" + n + "\n"
	}
	return out
}

func join(xs []string, sep string) string {
	out := ""
	for i, x := range xs {
		if i > 0 {
			out += sep
		}
		out += x
	}
	return out
}

func ratStr(r *big.Rat) string { return fmt.Sprintf("%.4f", core.RatFloat(r)) }

func ratio(mk, lb *big.Rat) string {
	if lb.Sign() == 0 {
		return "inf"
	}
	return ratStr(new(big.Rat).Quo(mk, lb))
}

// E1Splittable measures Theorem 4: the splittable 2-approximation across
// workload families, reporting makespan/LB ratios (always ≤ 2).
func E1Splittable() (*Table, error) {
	t := &Table{
		ID:      "E1",
		Title:   "Splittable 2-approximation (Theorem 4)",
		Claim:   "µ(σ) ≤ 2·OPT in O(n² log n), any machine count",
		Columns: []string{"family", "n", "C", "m", "c", "ratio vs LB", "pieces", "time"},
	}
	for _, fam := range generator.Families() {
		for _, cfg := range []generator.Config{
			{N: 50, Classes: 8, Machines: 5, Slots: 2, PMax: 1000, Seed: 11},
			{N: 500, Classes: 40, Machines: 16, Slots: 3, PMax: 10000, Seed: 12},
			{N: 2000, Classes: 100, Machines: 32, Slots: 4, PMax: 100000, Seed: 13},
		} {
			in := fam.Gen(cfg)
			start := time.Now()
			res, err := approx.SolveSplittable(in)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fam.Name, err)
			}
			el := time.Since(start)
			if err := res.Compact.Validate(in); err != nil {
				return nil, fmt.Errorf("%s: invalid schedule: %w", fam.Name, err)
			}
			lb, err := core.LowerBound(in, core.Splittable)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fam.Name, fmt.Sprint(in.N()), fmt.Sprint(in.NumClasses()),
				fmt.Sprint(in.M), fmt.Sprint(in.Slots),
				ratio(res.Makespan(), lb),
				fmt.Sprint(len(res.Compact.Groups)),
				el.Round(time.Microsecond).String(),
			})
		}
	}
	// Huge machine count row (Theorem 4's exponential-m handling).
	in := &core.Instance{
		P:     []int64{1 << 30, 1 << 29, 12345, 678},
		Class: []int{0, 1, 2, 3},
		M:     1 << 50,
		Slots: 2,
	}
	res, err := approx.SolveSplittable(in)
	if err != nil {
		return nil, err
	}
	if err := res.Compact.Validate(in); err != nil {
		return nil, err
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"huge-m", "4", "4", "2^50", "2",
		ratio(res.Makespan(), lb), fmt.Sprint(len(res.Compact.Groups)), "-"})
	t.Notes = append(t.Notes,
		"Ratios are measured against the certified lower bound, so they upper-bound the true ratio; all stay ≤ 2.")
	return t, nil
}

// E2Preemptive measures Theorem 5 (preemptive 2-approximation): ratio and
// the validator's no-parallel check.
func E2Preemptive() (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Preemptive 2-approximation (Theorem 5)",
		Claim:   "µ(σ) ≤ 2·OPT in O(n² log n); no job runs in parallel with itself",
		Columns: []string{"family", "n", "C", "m", "c", "ratio vs LB", "repacked", "time"},
	}
	for _, fam := range generator.Families() {
		for _, cfg := range []generator.Config{
			{N: 50, Classes: 8, Machines: 5, Slots: 2, PMax: 1000, Seed: 21},
			{N: 500, Classes: 40, Machines: 16, Slots: 3, PMax: 10000, Seed: 22},
			{N: 2000, Classes: 100, Machines: 32, Slots: 4, PMax: 100000, Seed: 23},
		} {
			in := fam.Gen(cfg)
			start := time.Now()
			res, err := approx.SolvePreemptive(in)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fam.Name, err)
			}
			el := time.Since(start)
			if err := res.Schedule.Validate(in); err != nil {
				return nil, fmt.Errorf("%s: invalid schedule: %w", fam.Name, err)
			}
			lb, err := core.LowerBound(in, core.Preemptive)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				fam.Name, fmt.Sprint(in.N()), fmt.Sprint(in.NumClasses()),
				fmt.Sprint(in.M), fmt.Sprint(in.Slots),
				ratio(res.Makespan(), lb),
				fmt.Sprint(res.Repacked),
				el.Round(time.Microsecond).String(),
			})
		}
	}
	return t, nil
}

// E3NonPreemptive measures Theorem 6 (7/3-approximation), including true
// ratios against exact optima on small instances.
func E3NonPreemptive() (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Non-preemptive 7/3-approximation (Theorem 6)",
		Claim:   "µ(σ) ≤ 7/3·OPT in O(n² log² n)",
		Columns: []string{"family", "n", "C", "m", "c", "ratio vs LB", "ratio vs OPT", "time"},
	}
	for _, fam := range generator.Families() {
		for _, cfg := range []generator.Config{
			{N: 12, Classes: 3, Machines: 3, Slots: 2, PMax: 50, Seed: 31},
			{N: 500, Classes: 40, Machines: 16, Slots: 3, PMax: 10000, Seed: 32},
			{N: 2000, Classes: 100, Machines: 32, Slots: 4, PMax: 100000, Seed: 33},
		} {
			in := fam.Gen(cfg)
			start := time.Now()
			res, err := approx.SolveNonPreemptive(in)
			if err != nil {
				return nil, fmt.Errorf("%s: %w", fam.Name, err)
			}
			el := time.Since(start)
			if err := res.Schedule.Validate(in); err != nil {
				return nil, fmt.Errorf("%s: invalid schedule: %w", fam.Name, err)
			}
			lb, err := core.LowerBound(in, core.NonPreemptive)
			if err != nil {
				return nil, err
			}
			vsOpt := "-"
			if in.N() <= 14 {
				if _, opt, err := exact.NonPreemptive(in); err == nil && opt > 0 {
					vsOpt = ratio(core.RatInt(res.Makespan(in)), core.RatInt(opt))
				}
			}
			t.Rows = append(t.Rows, []string{
				fam.Name, fmt.Sprint(in.N()), fmt.Sprint(in.NumClasses()),
				fmt.Sprint(in.M), fmt.Sprint(in.Slots),
				ratio(core.RatInt(res.Makespan(in)), lb), vsOpt,
				el.Round(time.Microsecond).String(),
			})
		}
	}
	return t, nil
}

// E4Scaling measures the O(n² log n) / O(n² log² n) running-time claims:
// doubling n and reporting the time growth factor (≈4 for quadratic), plus
// the border-search vs plain-binary-search ablation.
func E4Scaling() (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "Running-time scaling of the constant-factor algorithms",
		Claim:   "O(n² log n) splittable/preemptive, O(n² log² n) non-preemptive",
		Columns: []string{"algorithm", "n", "time", "x prev"},
	}
	sizes := []int{250, 500, 1000, 2000, 4000}
	type algo struct {
		name string
		run  func(*core.Instance) error
	}
	algos := []algo{
		{"splittable", func(in *core.Instance) error { _, err := approx.SolveSplittable(in); return err }},
		{"preemptive", func(in *core.Instance) error { _, err := approx.SolvePreemptive(in); return err }},
		{"non-preemptive", func(in *core.Instance) error { _, err := approx.SolveNonPreemptive(in); return err }},
	}
	for _, al := range algos {
		var prev time.Duration
		for _, n := range sizes {
			in := generator.Uniform(generator.Config{
				N: n, Classes: n / 10, Machines: int64(n / 20), Slots: 3, PMax: 10000, Seed: 41,
			})
			start := time.Now()
			if err := al.run(in); err != nil {
				return nil, err
			}
			el := time.Since(start)
			factor := "-"
			if prev > 0 {
				factor = fmt.Sprintf("%.2f", float64(el)/float64(prev))
			}
			t.Rows = append(t.Rows, []string{al.name, fmt.Sprint(n), el.Round(time.Microsecond).String(), factor})
			prev = el
		}
	}
	// Ablation: Lemma 2 border search vs plain integer binary search.
	in := generator.Uniform(generator.Config{N: 2000, Classes: 100, Machines: 32, Slots: 3, PMax: 100000, Seed: 42})
	start := time.Now()
	border, err := approx.BorderSearchBound(in)
	if err != nil {
		return nil, err
	}
	borderTime := time.Since(start)
	start = time.Now()
	plain, err := approx.PlainIntegerBound(in)
	if err != nil {
		return nil, err
	}
	plainTime := time.Since(start)
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Ablation (Lemma 2): border search gives %s in %v; plain integer search gives %d in %v (border ≤ plain ≤ ⌈border⌉).",
		border.RatString(), borderTime.Round(time.Microsecond), plain, plainTime.Round(time.Microsecond)))
	return t, nil
}

// PTASConfig is one row of the E5/E6/E7 sweeps.
type ptasRow struct {
	eps float64
	cfg generator.Config
}

// E5SplittablePTAS measures Theorems 10/11: ratio vs ε, N-fold parameters,
// and the huge-m extension.
func E5SplittablePTAS() (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Splittable PTAS (Theorems 10/11)",
		Claim:   "makespan ≤ (1+ε)·OPT; N-fold size grows with 1/ε, not with C or c",
		Columns: []string{"ε", "n", "m", "ratio vs LB", "guess", "engine", "N-fold vars", "log2 cost bound", "time"},
	}
	rows := []ptasRow{
		{1.0, generator.Config{N: 12, Classes: 4, Machines: 3, Slots: 2, PMax: 50, Seed: 51}},
		{0.5, generator.Config{N: 12, Classes: 4, Machines: 3, Slots: 2, PMax: 50, Seed: 51}},
		{0.34, generator.Config{N: 12, Classes: 4, Machines: 3, Slots: 2, PMax: 50, Seed: 51}},
		{0.5, generator.Config{N: 30, Classes: 8, Machines: 5, Slots: 2, PMax: 100, Seed: 52}},
	}
	for _, r := range rows {
		in := generator.Uniform(r.cfg)
		start := time.Now()
		res, err := ptas.SolveSplittable(context.Background(), in, ptas.Options{Epsilon: r.eps})
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		if err := res.Compact.Validate(in); err != nil {
			return nil, err
		}
		lb, err := core.LowerBound(in, core.Splittable)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.eps), fmt.Sprint(in.N()), fmt.Sprint(in.M),
			ratio(res.Makespan(), lb), fmt.Sprint(res.Report.Guess),
			string(res.Report.Engine), fmt.Sprint(res.Report.NFold.Vars),
			fmt.Sprintf("%.1f", res.Report.TheoreticalCostLog2),
			el.Round(time.Millisecond).String(),
		})
	}
	// Theorem 11: exponential machine count.
	in := &core.Instance{
		P:     []int64{900, 850, 400, 120, 60, 30},
		Class: []int{0, 1, 1, 2, 3, 3},
		M:     1 << 40,
		Slots: 1,
	}
	start := time.Now()
	res, err := ptas.SolveSplittable(context.Background(), in, ptas.Options{Epsilon: 0.5})
	if err != nil {
		return nil, err
	}
	el := time.Since(start)
	if err := res.Compact.Validate(in); err != nil {
		return nil, err
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"0.5", "6", "2^40",
		ratio(res.Makespan(), lb), fmt.Sprint(res.Report.Guess),
		string(res.Report.Engine), fmt.Sprint(res.Report.NFold.Vars),
		fmt.Sprintf("%.1f", res.Report.TheoreticalCostLog2),
		el.Round(time.Millisecond).String()})
	t.Notes = append(t.Notes,
		"The best-of floor guarantees ratio ≤ 2 even when the scheme's (1+O(δ)) constants exceed the 2-approximation at coarse ε.")
	return t, nil
}

// E6NonPreemptivePTAS measures Theorem 14 against exact optima.
func E6NonPreemptivePTAS() (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "Non-preemptive PTAS (Theorem 14)",
		Claim:   "makespan ≤ (1+ε)·OPT",
		Columns: []string{"ε", "n", "ratio vs OPT", "ratio vs LB", "guess", "engine", "N-fold vars", "time"},
	}
	for _, r := range []ptasRow{
		{1.0, generator.Config{N: 10, Classes: 3, Machines: 3, Slots: 2, PMax: 40, Seed: 61}},
		{0.5, generator.Config{N: 10, Classes: 3, Machines: 3, Slots: 2, PMax: 40, Seed: 61}},
		{0.5, generator.Config{N: 12, Classes: 4, Machines: 3, Slots: 2, PMax: 60, Seed: 62}},
	} {
		in := generator.Uniform(r.cfg)
		start := time.Now()
		res, err := ptas.SolveNonPreemptive(context.Background(), in, ptas.Options{Epsilon: r.eps})
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		if err := res.Schedule.Validate(in); err != nil {
			return nil, err
		}
		lb, err := core.LowerBound(in, core.NonPreemptive)
		if err != nil {
			return nil, err
		}
		vsOpt := "-"
		if _, opt, err := exact.NonPreemptive(in); err == nil {
			vsOpt = ratio(core.RatInt(res.Makespan(in)), core.RatInt(opt))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.eps), fmt.Sprint(in.N()), vsOpt,
			ratio(core.RatInt(res.Makespan(in)), lb),
			fmt.Sprint(res.Report.Guess), string(res.Report.Engine),
			fmt.Sprint(res.Report.NFold.Vars),
			el.Round(time.Millisecond).String(),
		})
	}
	return t, nil
}

// E7PreemptivePTAS measures Theorem 19 (with the documented interval-module
// restriction) against the certified preemptive bracket.
func E7PreemptivePTAS() (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Preemptive PTAS (Theorem 19; interval-module restriction)",
		Claim:   "makespan ≤ (1+ε)·OPT; schedule never runs a job in parallel with itself",
		Columns: []string{"ε", "n", "ratio vs LB", "bracket [lo,hi]", "guess", "engine", "N-fold vars", "time"},
	}
	for _, r := range []ptasRow{
		{1.0, generator.Config{N: 8, Classes: 2, Machines: 2, Slots: 1, PMax: 30, Seed: 71}},
		{0.5, generator.Config{N: 8, Classes: 2, Machines: 2, Slots: 1, PMax: 30, Seed: 71}},
	} {
		in := generator.Uniform(r.cfg)
		start := time.Now()
		res, err := ptas.SolvePreemptive(context.Background(), in, ptas.Options{Epsilon: r.eps, MaxNodes: 150})
		if err != nil {
			return nil, err
		}
		el := time.Since(start)
		if err := res.Schedule.Validate(in); err != nil {
			return nil, err
		}
		lb, err := core.LowerBound(in, core.Preemptive)
		if err != nil {
			return nil, err
		}
		bracket := "-"
		if lo, hi, err := exact.PreemptiveBounds(in); err == nil {
			bracket = fmt.Sprintf("[%s, %s]", ratStr(lo), ratStr(hi))
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(r.eps), fmt.Sprint(in.N()),
			ratio(res.Makespan(), lb), bracket,
			fmt.Sprint(res.Report.Guess), string(res.Report.Engine),
			fmt.Sprint(res.Report.NFold.Vars),
			el.Round(time.Millisecond).String(),
		})
	}
	return t, nil
}

// E8NFold measures the N-fold machinery itself: parameter growth with 1/δ
// and the augmentation vs branch-and-bound engine ablation.
func E8NFold() (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "N-fold machinery: parameters and engine ablation",
		Claim:   "Theorem 1 cost (rsΔ)^{O(r²s+s²)}·L·Nt·polylog(Nt); engines agree on feasibility",
		Columns: []string{"source", "N", "r", "s", "t", "Δ", "augment", "aug steps", "b&b", "b&b nodes"},
	}
	// Configuration N-folds from the splittable PTAS at two accuracies.
	for _, eps := range []float64{1.0, 0.5, 0.34} {
		in := generator.Uniform(generator.Config{N: 14, Classes: 4, Machines: 3, Slots: 2, PMax: 60, Seed: 81})
		prob, err := ptas.BuildSplittableNFold(in, eps)
		if err != nil {
			return nil, err
		}
		par := prob.Params()
		ra, err := nfold.Solve(prob, &nfold.Options{Engine: nfold.EngineAugment})
		if err != nil {
			return nil, err
		}
		rb, err := nfold.Solve(prob, &nfold.Options{Engine: nfold.EngineBranchBound, FirstFeasible: true, MaxNodes: 4000})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("split ε=%v", eps), fmt.Sprint(par.N), fmt.Sprint(par.R),
			fmt.Sprint(par.S), fmt.Sprint(par.T), fmt.Sprint(par.Delta),
			ra.Status.String(), fmt.Sprint(ra.Nodes),
			rb.Status.String(), fmt.Sprint(rb.Nodes),
		})
	}
	t.Notes = append(t.Notes,
		"The augmentation engine is a restricted-Graver heuristic: 'unknown' rows fall back to the exact engine in production (EngineAuto).")
	return t, nil
}

// All runs every experiment in order.
func All() ([]*Table, error) {
	type fn struct {
		f func() (*Table, error)
	}
	fns := []func() (*Table, error){
		E1Splittable, E2Preemptive, E3NonPreemptive, E4Scaling,
		E5SplittablePTAS, E6NonPreemptivePTAS, E7PreemptivePTAS, E8NFold,
		F1RoundRobin, F2Repack, F3PairSwap, F4Dissolve, F5FlowNetwork,
	}
	var out []*Table
	for _, f := range fns {
		tb, err := f()
		if err != nil {
			return out, err
		}
		out = append(out, tb)
	}
	return out, nil
}
