package experiments

import (
	"context"
	"fmt"
	"sort"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/flownet"
	"ccsched/internal/generator"
	"ccsched/internal/ptas"
	"ccsched/internal/rat"
)

// The paper's figures are illustrative constructions, not measurement
// plots; each F-experiment executes the corresponding construction in code
// and verifies the property the figure illustrates.

// F1RoundRobin reproduces Figure 1: ten classes with non-ascending loads
// dealt cyclically onto four machines, and Lemma 3's bound
// µ ≤ Σp/m + max P_u.
func F1RoundRobin() (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "Figure 1: round-robin class placement",
		Claim:   "class ranked i lands on machine i mod m; µ ≤ Σp/m + max P_u (Lemma 3)",
		Columns: []string{"machine", "classes (rank order)", "load"},
	}
	in := generator.Figure1Instance()
	res, err := approx.SolveSplittable(in)
	if err != nil {
		return nil, err
	}
	if err := res.Explicit.Validate(in); err != nil {
		return nil, err
	}
	perMachine := make(map[int64][]int)
	loads := make(map[int64]rat.R)
	for _, pc := range res.Explicit.Pieces {
		perMachine[pc.Machine] = append(perMachine[pc.Machine], pc.Job)
		loads[pc.Machine] = loads[pc.Machine].Add(pc.Size)
	}
	for i := int64(0); i < in.M; i++ {
		sort.Ints(perMachine[i])
		t.Rows = append(t.Rows, []string{
			fmt.Sprint(i), fmt.Sprint(perMachine[i]), loads[i].RatString(),
		})
	}
	lemma3 := core.RatAdd(core.RatFrac(in.TotalLoad(), in.M), core.RatInt(20))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Makespan %s ≤ Σp/m + max P_u = %s (Lemma 3). Classes are numbered by load rank as in the figure.",
		res.Makespan().RatString(), lemma3.RatString()))
	return t, nil
}

// F2Repack reproduces Figure 2: the preemptive shift that moves everything
// above a machine's first sub-class to start at time T, separating the two
// pieces of a job cut at the window border.
func F2Repack() (*Table, error) {
	t := &Table{
		ID:      "F2",
		Title:   "Figure 2: preemptive repacking",
		Claim:   "shifting rows above the first sub-class to start at T prevents self-parallelism",
		Columns: []string{"machine", "piece (job@start+size)"},
	}
	// The regression instance from the test suite: job 2 of class 2 is cut
	// at the window border and would overlap itself without the shift.
	in := &core.Instance{
		P:     []int64{2, 8, 9, 5},
		Class: []int{0, 1, 2, 2},
		M:     2,
		Slots: 2,
	}
	res, err := approx.SolvePreemptive(in)
	if err != nil {
		return nil, err
	}
	if err := res.Schedule.Validate(in); err != nil {
		return nil, err
	}
	if !res.Repacked {
		return nil, fmt.Errorf("F2: expected the repacking branch to trigger")
	}
	rows := make(map[int64][]string)
	for i := range res.Schedule.Pieces {
		pc := &res.Schedule.Pieces[i]
		rows[pc.Machine] = append(rows[pc.Machine],
			fmt.Sprintf("j%d@%s+%s", pc.Job, pc.Start.RatString(), pc.Size.RatString()))
	}
	for i := int64(0); i < in.M; i++ {
		t.Rows = append(t.Rows, []string{fmt.Sprint(i), join(rows[i], ", ")})
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"Guess T = %s; repacked = %v; validator confirms no job runs in parallel with itself.",
		res.Guess.RatString(), res.Repacked))
	return t, nil
}

// F3PairSwap reproduces Figure 3's normalization: with an exponential
// machine count, all but polynomially many machines become trivial
// (single-class, completely filled) groups — the compact schedule's
// encoding stays polynomial.
func F3PairSwap() (*Table, error) {
	t := &Table{
		ID:      "F3",
		Title:   "Figure 3: trivial configurations under exponential m",
		Claim:   "≤ C(C−1)/2 + C non-trivial machines suffice; compact encoding is poly(n)",
		Columns: []string{"m", "machine groups", "largest group", "explicit machines", "ratio vs LB"},
	}
	in := &core.Instance{
		P:     []int64{1 << 40, 1 << 39, 99999, 7777},
		Class: []int{0, 1, 1, 2},
		M:     1 << 45,
		Slots: 2,
	}
	res, err := approx.SolveSplittable(in)
	if err != nil {
		return nil, err
	}
	if err := res.Compact.Validate(in); err != nil {
		return nil, err
	}
	var largest, explicit int64
	for _, g := range res.Compact.Groups {
		if g.Count > largest {
			largest = g.Count
		}
		if g.Count == 1 {
			explicit++
		}
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{
		"2^45", fmt.Sprint(len(res.Compact.Groups)), fmt.Sprint(largest),
		fmt.Sprint(explicit), ratio(res.Makespan(), lb),
	})
	t.Notes = append(t.Notes,
		"Group counts are polynomial in n while the machine count is astronomical; single-machine groups play the role of the figure's non-trivial machines.")
	return t, nil
}

// F4Dissolve reproduces Figure 4: the non-preemptive PTAS dissolves
// configurations into module-size slots, modules into job sizes, and job
// sizes into concrete jobs.
func F4Dissolve() (*Table, error) {
	t := &Table{
		ID:      "F4",
		Title:   "Figure 4: configuration dissolving (non-preemptive PTAS)",
		Claim:   "configurations → module slots → job sizes → jobs yields a feasible schedule",
		Columns: []string{"n", "ε", "N-fold vars", "accepted guess", "makespan", "feasible"},
	}
	in := generator.Uniform(generator.Config{N: 12, Classes: 3, Machines: 3, Slots: 2, PMax: 50, Seed: 91})
	res, err := ptas.SolveNonPreemptive(context.Background(), in, ptas.Options{Epsilon: 0.5})
	if err != nil {
		return nil, err
	}
	feas := "yes"
	if err := res.Schedule.Validate(in); err != nil {
		feas = "NO: " + err.Error()
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(in.N()), "0.5", fmt.Sprint(res.Report.NFold.Vars),
		fmt.Sprint(res.Report.Guess), fmt.Sprint(res.Makespan(in)), feas,
	})
	return t, nil
}

// F5FlowNetwork reproduces Figure 5 / Lemma 16: the jobs × layers × slots
// flow network admits an integral maximum flow covering all job pieces,
// which is exactly the existence of a well-structured schedule.
func F5FlowNetwork() (*Table, error) {
	t := &Table{
		ID:      "F5",
		Title:   "Figure 5: Lemma 16 flow network",
		Claim:   "integral max flow = Σ⌊p_j/δ²T⌋, certifying a well-structured schedule",
		Columns: []string{"n", "m", "layers", "target flow", "max flow", "match"},
	}
	in := generator.Uniform(generator.Config{N: 10, Classes: 3, Machines: 3, Slots: 2, PMax: 40, Seed: 95})
	pres, err := approx.SolvePreemptive(in)
	if err != nil {
		return nil, err
	}
	if err := pres.Schedule.Validate(in); err != nil {
		return nil, err
	}
	// δ = 1/2; layer height δ²T' with T' the schedule's makespan. Quantize
	// on a denominator-cleared integer grid to keep capacities integral.
	tPrime := pres.Schedule.MakespanR()
	layerLen := tPrime.DivInt(4)
	layers := 4 // T'/δ²T' by construction
	m := in.EffectiveMachines(core.Preemptive)
	// χ_{i,j}: job j has a piece on machine i.
	chi := make(map[[2]int64]bool)
	loadOn := make(map[int64]rat.R)
	for i := range pres.Schedule.Pieces {
		pc := &pres.Schedule.Pieces[i]
		chi[[2]int64{pc.Machine, int64(pc.Job)}] = true
		loadOn[pc.Machine] = loadOn[pc.Machine].Add(pc.Size)
	}
	n := in.N()
	g := flownet.NewGraph(2 + n + n*layers + int(m)*layers + int(m))
	src := 0
	sink := 1
	jobNode := func(j int) int { return 2 + j }
	julNode := func(j, l int) int { return 2 + n + j*layers + l }
	slotNode := func(i int64, l int) int { return 2 + n + n*layers + int(i)*layers + l }
	machNode := func(i int64) int { return 2 + n + n*layers + int(m)*layers + int(i) }
	var target int64
	for j := 0; j < n; j++ {
		// w_j = ⌊p_j / δ²T'⌋ pieces.
		wj := rat.FromInt(in.P[j]).FloorQuo(layerLen)
		target += wj
		g.AddEdge(src, jobNode(j), wj)
		for l := 0; l < layers; l++ {
			g.AddEdge(jobNode(j), julNode(j, l), 1)
		}
	}
	for i := int64(0); i < m; i++ {
		for l := 0; l < layers; l++ {
			for j := 0; j < n; j++ {
				if chi[[2]int64{i, int64(j)}] {
					g.AddEdge(julNode(j, l), slotNode(i, l), 1)
				}
			}
			g.AddEdge(slotNode(i, l), machNode(i), 1)
		}
		cap := int64(0)
		if loadOn[i].Sign() > 0 {
			cap = loadOn[i].Quo(layerLen).Ceil() // ⌈D_i/δ²T⌉
		}
		g.AddEdge(machNode(i), sink, cap)
	}
	flow := g.MaxFlow(src, sink)
	match := "yes"
	if flow != target {
		match = "NO"
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprint(n), fmt.Sprint(m), fmt.Sprint(layers),
		fmt.Sprint(target), fmt.Sprint(flow), match,
	})
	t.Notes = append(t.Notes,
		"Flow integrality (Dinic) plays the role of the rounding step in Lemma 16's proof.")
	return t, nil
}
