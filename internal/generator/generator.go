// Package generator produces seeded synthetic CCS workloads.
//
// The paper is a theory paper and ships no benchmark inputs, so the
// experiment suite stresses each proof's tight spots with parameterized
// families: uniformly random loads, Zipf-skewed class sizes, a few huge
// classes (exercising the class-splitting step of Algorithm 1), unit
// classes (the Chen et al. special case), cardinality-style instances
// (C = n), and adversarial non-preemptive instances whose jobs cluster just
// above T/3 and T/2 (the tight spots of the 7/3 analysis).
//
// All families are deterministic given (Config, seed) so experiments are
// reproducible.
package generator

import (
	"fmt"
	"math/rand"
	"sort"

	"ccsched/internal/core"
)

// Config parameterizes a workload family.
type Config struct {
	// N is the number of jobs.
	N int
	// Classes is the number of distinct classes C (capped at N).
	Classes int
	// Machines is m.
	Machines int64
	// Slots is the per-machine class budget c.
	Slots int
	// PMax bounds processing times (p_j uniform in [1, PMax] unless the
	// family dictates otherwise). Defaults to 100 when zero.
	PMax int64
	// Seed drives the deterministic RNG.
	Seed int64
}

func (cfg Config) withDefaults() Config {
	if cfg.N <= 0 {
		cfg.N = 10
	}
	if cfg.Classes <= 0 {
		cfg.Classes = 1
	}
	if cfg.Classes > cfg.N {
		cfg.Classes = cfg.N
	}
	if cfg.Machines <= 0 {
		cfg.Machines = 1
	}
	if cfg.Slots <= 0 {
		cfg.Slots = 1
	}
	if cfg.PMax <= 0 {
		cfg.PMax = 100
	}
	return cfg
}

// ensureFeasible grows the slot budget (never the instance) until
// C <= c*m holds, so every generated instance admits a schedule.
func ensureFeasible(in *core.Instance) {
	cc := int64(in.NumClasses())
	for int64(in.Slots)*min64(in.M, cc) < cc {
		in.Slots++
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// Uniform draws processing times uniformly from [1, PMax] and classes
// uniformly from [0, Classes).
func Uniform(cfg Config) *core.Instance {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &core.Instance{M: cfg.Machines, Slots: cfg.Slots}
	for j := 0; j < cfg.N; j++ {
		in.P = append(in.P, 1+rng.Int63n(cfg.PMax))
		in.Class = append(in.Class, rng.Intn(cfg.Classes))
	}
	norm, _ := in.Normalize()
	ensureFeasible(norm)
	return norm
}

// Zipf skews the class popularity: class u receives a number of jobs
// roughly proportional to 1/(u+1)^1.5, modeling data-placement workloads
// where a few databases are hot.
func Zipf(cfg Config) *core.Instance {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	zipf := rand.NewZipf(rng, 1.5, 1, uint64(cfg.Classes-1))
	in := &core.Instance{M: cfg.Machines, Slots: cfg.Slots}
	for j := 0; j < cfg.N; j++ {
		in.P = append(in.P, 1+rng.Int63n(cfg.PMax))
		in.Class = append(in.Class, int(zipf.Uint64()))
	}
	norm, _ := in.Normalize()
	ensureFeasible(norm)
	return norm
}

// FewLargeClasses concentrates ~80% of the total load in two classes,
// forcing Algorithm 1 to split classes with P_u > T into many sub-classes.
func FewLargeClasses(cfg Config) *core.Instance {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &core.Instance{M: cfg.Machines, Slots: cfg.Slots}
	heavy := 2
	if cfg.Classes < 2 {
		heavy = 1
	}
	for j := 0; j < cfg.N; j++ {
		if rng.Float64() < 0.8 {
			in.P = append(in.P, cfg.PMax/2+1+rng.Int63n(cfg.PMax/2+1))
			in.Class = append(in.Class, rng.Intn(heavy))
		} else {
			in.P = append(in.P, 1+rng.Int63n(cfg.PMax/4+1))
			in.Class = append(in.Class, rng.Intn(cfg.Classes))
		}
	}
	norm, _ := in.Normalize()
	ensureFeasible(norm)
	return norm
}

// UnitClasses gives every job its own class (C = n), the cardinality-
// constrained special case studied by Chen et al. and the CCBP literature.
func UnitClasses(cfg Config) *core.Instance {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &core.Instance{M: cfg.Machines, Slots: cfg.Slots}
	for j := 0; j < cfg.N; j++ {
		in.P = append(in.P, 1+rng.Int63n(cfg.PMax))
		in.Class = append(in.Class, j)
	}
	ensureFeasible(in)
	return in
}

// AdversarialThirds builds non-preemptive stress instances: per class, one
// job slightly above PMax/2 and several slightly above PMax/3, the regime
// where the 7/3 analysis of Theorem 6 is tight.
func AdversarialThirds(cfg Config) *core.Instance {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	in := &core.Instance{M: cfg.Machines, Slots: cfg.Slots}
	t := cfg.PMax
	for j := 0; j < cfg.N; j++ {
		u := j % cfg.Classes
		var p int64
		switch j % 4 {
		case 0:
			p = t/2 + 1 + rng.Int63n(maxI64(t/8, 1)) // just above T/2
		default:
			p = t/3 + 1 + rng.Int63n(maxI64(t/12, 1)) // just above T/3
		}
		in.P = append(in.P, p)
		in.Class = append(in.Class, u)
	}
	norm, _ := in.Normalize()
	ensureFeasible(norm)
	return norm
}

// TightSlots keeps the slot budget at its minimum feasible value
// c = ⌈C/m⌉, maximizing class-constraint pressure.
func TightSlots(cfg Config) *core.Instance {
	cfg = cfg.withDefaults()
	in := Uniform(cfg)
	cc := int64(in.NumClasses())
	slots := int(core.RatCeilDiv(cc, min64(in.M, cc)))
	if slots < 1 {
		slots = 1
	}
	in.Slots = slots
	ensureFeasible(in)
	return in
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Family is a named instance generator.
type Family struct {
	Name string
	Desc string
	Gen  func(Config) *core.Instance
}

// Families lists every built-in workload family in a stable order.
func Families() []Family {
	return []Family{
		{"uniform", "uniform processing times and class assignment", Uniform},
		{"zipf", "Zipf-skewed class popularity (hot databases)", Zipf},
		{"fewlarge", "two classes hold ~80% of the load", FewLargeClasses},
		{"unitclasses", "every job is its own class (C = n)", UnitClasses},
		{"thirds", "jobs just above T/2 and T/3 (7/3-tightness regime)", AdversarialThirds},
		{"tightslots", "minimum feasible slot budget c = ceil(C/m)", TightSlots},
	}
}

// ByName returns the family with the given name.
func ByName(name string) (Family, error) {
	for _, f := range Families() {
		if f.Name == name {
			return f, nil
		}
	}
	return Family{}, fmt.Errorf("generator: unknown family %q", name)
}

// Figure1Instance reproduces the 10-class example of the paper's Figure 1:
// ten classes with non-ascending accumulated loads distributed by round
// robin onto four machines. Loads are chosen to match the figure's shape
// (classes 1..10 with decreasing P_u, classes 5/9 stacking on machine 1,
// and so on); each class is a single job, the splittable canonical form.
func Figure1Instance() *core.Instance {
	loads := []int64{20, 19, 18, 17, 12, 11, 10, 9, 4, 3}
	in := &core.Instance{M: 4, Slots: 3}
	for u, p := range loads {
		in.P = append(in.P, p)
		in.Class = append(in.Class, u)
	}
	return in
}

// SortedClassLoads is a reporting helper: class loads in non-ascending
// order, the order round robin consumes them.
func SortedClassLoads(in *core.Instance) []int64 {
	loads := in.ClassLoads()
	sort.Slice(loads, func(a, b int) bool { return loads[a] > loads[b] })
	return loads
}
