package generator

import (
	"testing"
	"testing/quick"

	"ccsched/internal/core"
)

func configs() []Config {
	return []Config{
		{},
		{N: 1, Classes: 1, Machines: 1, Slots: 1},
		{N: 50, Classes: 7, Machines: 4, Slots: 2, PMax: 1000, Seed: 42},
		{N: 200, Classes: 40, Machines: 8, Slots: 3, PMax: 17, Seed: 7},
		{N: 30, Classes: 60, Machines: 2, Slots: 1, PMax: 5, Seed: 1}, // Classes > N
	}
}

func TestFamiliesProduceValidFeasibleInstances(t *testing.T) {
	for _, fam := range Families() {
		for i, cfg := range configs() {
			in := fam.Gen(cfg)
			if err := in.Validate(); err != nil {
				t.Errorf("%s cfg %d: invalid instance: %v", fam.Name, i, err)
			}
			if err := core.CheckFeasible(in); err != nil {
				t.Errorf("%s cfg %d: infeasible instance: %v", fam.Name, i, err)
			}
			if in.N() == 0 {
				t.Errorf("%s cfg %d: empty instance", fam.Name, i)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	cfg := Config{N: 100, Classes: 10, Machines: 5, Slots: 2, PMax: 99, Seed: 1234}
	for _, fam := range Families() {
		a := fam.Gen(cfg)
		b := fam.Gen(cfg)
		if a.N() != b.N() || a.M != b.M || a.Slots != b.Slots {
			t.Errorf("%s: shape differs between identical seeds", fam.Name)
			continue
		}
		for j := range a.P {
			if a.P[j] != b.P[j] || a.Class[j] != b.Class[j] {
				t.Errorf("%s: job %d differs between identical seeds", fam.Name, j)
				break
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	base := Config{N: 100, Classes: 10, Machines: 5, Slots: 2, PMax: 1000, Seed: 1}
	other := base
	other.Seed = 2
	a, b := Uniform(base), Uniform(other)
	same := true
	for j := range a.P {
		if a.P[j] != b.P[j] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical processing times")
	}
}

func TestUnitClassesShape(t *testing.T) {
	in := UnitClasses(Config{N: 25, Machines: 30, Slots: 1, Seed: 3})
	if got := in.NumClasses(); got != 25 {
		t.Errorf("NumClasses() = %d, want 25", got)
	}
	for j, c := range in.Class {
		if c != j {
			t.Errorf("job %d has class %d, want %d", j, c, j)
		}
	}
}

func TestFewLargeClassesSkew(t *testing.T) {
	in := FewLargeClasses(Config{N: 400, Classes: 20, Machines: 10, Slots: 4, PMax: 100, Seed: 9})
	loads := in.ClassLoads()
	var top2, total int64
	first, second := int64(0), int64(0)
	for _, l := range loads {
		total += l
		if l > first {
			first, second = l, first
		} else if l > second {
			second = l
		}
	}
	top2 = first + second
	if float64(top2) < 0.5*float64(total) {
		t.Errorf("top-2 classes hold %d of %d, want the majority", top2, total)
	}
}

func TestAdversarialThirdsRegime(t *testing.T) {
	pmax := int64(300)
	in := AdversarialThirds(Config{N: 64, Classes: 4, Machines: 8, Slots: 2, PMax: pmax, Seed: 5})
	for j, p := range in.P {
		if 3*p <= pmax {
			t.Errorf("job %d: p=%d not above PMax/3", j, p)
		}
	}
}

func TestTightSlotsMinimal(t *testing.T) {
	in := TightSlots(Config{N: 60, Classes: 12, Machines: 3, Slots: 9, PMax: 50, Seed: 11})
	cc := int64(in.NumClasses())
	m := in.M
	if m > cc {
		m = cc
	}
	want := int(core.RatCeilDiv(cc, m))
	if in.Slots != want {
		t.Errorf("Slots = %d, want minimal %d", in.Slots, want)
	}
}

func TestByName(t *testing.T) {
	for _, fam := range Families() {
		got, err := ByName(fam.Name)
		if err != nil || got.Name != fam.Name {
			t.Errorf("ByName(%q) = %v, %v", fam.Name, got.Name, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("ByName(nope) should fail")
	}
}

func TestFigure1Instance(t *testing.T) {
	in := Figure1Instance()
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	if in.N() != 10 || in.M != 4 || in.NumClasses() != 10 {
		t.Errorf("unexpected shape: n=%d m=%d C=%d", in.N(), in.M, in.NumClasses())
	}
	loads := SortedClassLoads(in)
	for i := 1; i < len(loads); i++ {
		if loads[i] > loads[i-1] {
			t.Errorf("loads not non-ascending at %d: %v", i, loads)
		}
	}
}

func TestWithDefaultsProperty(t *testing.T) {
	f := func(n, classes int, machines int64, slots int, pmax, seed int64) bool {
		cfg := Config{N: n % 500, Classes: classes % 50, Machines: machines % 20,
			Slots: slots % 10, PMax: pmax % 1000, Seed: seed}
		in := Uniform(cfg)
		return in.Validate() == nil && core.CheckFeasible(in) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
