package server

import (
	"crypto/sha256"
	"encoding/binary"
	"math"
	"sort"

	"ccsched"
)

// Canonicalization. Requests are deduplicated — both singleflight coalescing
// of in-flight solves and the full-result LRU — by a digest of the instance
// in a canonical form that is invariant under the two symmetries of the CCS
// problem a client is likely to exercise: permuting the job list and
// relabeling classes. Two requests whose instances differ only by job order
// or class names therefore cost one solve, and each response is mapped back
// to the submitter's own job indices through a per-request permutation.
//
// Canonical form: jobs are grouped by class and sorted by processing time
// within each class; classes are ordered by their sorted processing-time
// lists (lexicographically, shorter first on equal prefixes) and renumbered
// 0..C-1 in that order. Classes with identical lists are interchangeable, so
// any deterministic tie-break yields the same canonical instance. The slot
// budget is capped at min(c, C, n) exactly like Instance.Normalize.

// canonical is an instance in canonical form plus the permutation linking it
// to the submitter's original job order.
type canonical struct {
	in *ccsched.Instance
	// perm[i] is the original index of canonical job i.
	perm []int
}

// canonicalize rewrites in into canonical form. The input is not modified.
func canonicalize(in *ccsched.Instance) canonical {
	// Group original job indices by class, sorted by (p, index) within the
	// class so equal processing times order deterministically.
	byClass := make(map[int][]int)
	for j, c := range in.Class {
		byClass[c] = append(byClass[c], j)
	}
	classes := make([]int, 0, len(byClass))
	for c, jobs := range byClass {
		sort.Slice(jobs, func(a, b int) bool {
			if in.P[jobs[a]] != in.P[jobs[b]] {
				return in.P[jobs[a]] < in.P[jobs[b]]
			}
			return jobs[a] < jobs[b]
		})
		classes = append(classes, c)
	}
	// Order classes by their sorted processing-time lists; tie-break on the
	// original label for determinism (ties are interchangeable classes, so
	// the canonical instance does not depend on the tie order).
	sort.Slice(classes, func(a, b int) bool {
		ja, jb := byClass[classes[a]], byClass[classes[b]]
		for k := 0; k < len(ja) && k < len(jb); k++ {
			if pa, pb := in.P[ja[k]], in.P[jb[k]]; pa != pb {
				return pa < pb
			}
		}
		if len(ja) != len(jb) {
			return len(ja) < len(jb)
		}
		return classes[a] < classes[b]
	})
	n := in.N()
	out := &ccsched.Instance{
		P:     make([]int64, 0, n),
		Class: make([]int, 0, n),
		M:     in.M,
		Slots: in.Slots,
	}
	perm := make([]int, 0, n)
	for rank, c := range classes {
		for _, j := range byClass[c] {
			out.P = append(out.P, in.P[j])
			out.Class = append(out.Class, rank)
			perm = append(perm, j)
		}
	}
	if cc := len(classes); out.Slots > cc && cc > 0 {
		out.Slots = cc
	}
	if out.Slots > n && n > 0 {
		out.Slots = n
	}
	return canonical{in: out, perm: perm}
}

// key identifies one unit of solver work: a canonical instance plus every
// option that can influence the result.
type key [sha256.Size]byte

// requestKey digests the canonical instance together with the
// result-affecting options. Parallelism and caching knobs are excluded —
// Solve guarantees bit-identical results for any setting of either — and
// TierAuto resolves to TierPTAS (and ε to its 0.5 default) so equivalent
// requests share one entry. NoWarmStart is included even though results are
// warm/cold-identical too: it is a measurement baseline, and serving a
// cold-baseline request from a warm flight's cache entry would silently
// hand back the warm run's diagnostics (bb_pivots, warm_hits) instead of
// actually running cold.
func requestKey(canon *ccsched.Instance, opts ccsched.Options) key {
	h := sha256.New()
	var buf [8]byte
	put := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	put(canon.M)
	put(int64(canon.Slots))
	put(int64(canon.N()))
	for _, p := range canon.P {
		put(p)
	}
	for _, c := range canon.Class {
		put(int64(c))
	}
	tier := opts.Tier
	if tier == ccsched.TierAuto {
		tier = ccsched.TierPTAS
	}
	eps := opts.Epsilon
	if tier != ccsched.TierPTAS && tier != ccsched.TierAnytime {
		eps = 0 // ignored by the approx and exact tiers
	} else if eps == 0 {
		eps = 0.5 // Solve's default (also the anytime terminal rung's)
	}
	put(int64(opts.Variant))
	put(int64(tier))
	put(int64(math.Float64bits(eps)))
	put(int64(opts.MaxNodes))
	put(int64(opts.MaxConfigs))
	put(opts.HugeMThreshold)
	put(opts.ExplicitMachineLimit)
	if opts.NoWarmStart {
		put(1)
	}
	// Trace changes the Result shape (Result.Trace), not the verdict, but a
	// traced and an untraced request must not share a cached result: the
	// untraced flight's entry would answer a ?trace=1 request with no trace.
	if opts.Trace {
		put(2)
	}
	// FallbackTier changes what a deadline expiry returns (a degraded
	// 2-approx instead of an error), so fallback and non-fallback requests
	// must not share a flight or a cache entry.
	if opts.FallbackTier == ccsched.TierApprox {
		put(3)
	}
	var k key
	h.Sum(k[:0])
	return k
}

// degradedKey derives the result-LRU key under which a request key's
// degraded 2-approx answer is stored. Keeping degraded results under a
// distinct key means they can never satisfy a normal submission (no LRU
// poisoning); the full-tier publish of k removes its degraded twin, so later
// requests get the full answer.
func degradedKey(k key) key {
	h := sha256.New()
	h.Write(k[:])
	h.Write([]byte("degraded"))
	var dk key
	h.Sum(dk[:0])
	return dk
}

// invertPerm returns the inverse permutation: out[perm[i]] = i. Used to map
// a session-order result into canonical order for publication (the reverse
// direction of remapResult).
func invertPerm(perm []int) []int {
	out := make([]int, len(perm))
	for i, p := range perm {
		out[p] = i
	}
	return out
}

// remapResult translates a canonical-form result back into the submitter's
// original job indices using its permutation. Schedules are copied (the
// canonical result is shared across requests and must stay immutable);
// rationals and the report are shared, as they are never mutated.
func remapResult(res *ccsched.Result, perm []int) *ccsched.Result {
	out := *res
	if res.NonPreemptive != nil {
		assign := make([]int64, len(res.NonPreemptive.Assign))
		for i, m := range res.NonPreemptive.Assign {
			assign[perm[i]] = m
		}
		out.NonPreemptive = &ccsched.NonPreemptiveSchedule{Assign: assign}
	}
	if res.Split != nil {
		pieces := make([]ccsched.SplitPiece, len(res.Split.Pieces))
		for i, pc := range res.Split.Pieces {
			pc.Job = perm[pc.Job]
			pieces[i] = pc
		}
		out.Split = &ccsched.SplitSchedule{Pieces: pieces}
	}
	if res.CompactSplit != nil {
		groups := make([]ccsched.MachineGroup, len(res.CompactSplit.Groups))
		for i, g := range res.CompactSplit.Groups {
			gp := make([]ccsched.GroupPiece, len(g.Pieces))
			for k, pc := range g.Pieces {
				pc.Job = perm[pc.Job]
				gp[k] = pc
			}
			groups[i] = ccsched.MachineGroup{Count: g.Count, Pieces: gp}
		}
		out.CompactSplit = &ccsched.CompactSplitSchedule{Groups: groups}
	}
	if res.Preemptive != nil {
		pieces := make([]ccsched.PreemptivePiece, len(res.Preemptive.Pieces))
		for i, pc := range res.Preemptive.Pieces {
			pc.Job = perm[pc.Job]
			pieces[i] = pc
		}
		out.Preemptive = &ccsched.PreemptiveSchedule{Pieces: pieces}
	}
	return &out
}
