package server_test

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"ccsched"
	"ccsched/internal/server"
)

// anytimeInstance is a small instance whose PTAS rungs solve in well under a
// second, so the watch tests drive a full ladder quickly.
func anytimeInstance(t *testing.T) *ccsched.Instance {
	t.Helper()
	in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
		N: 16, Classes: 3, Machines: 3, Slots: 2, PMax: 50, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// watchStream opens GET /v1/sessions/{id}/watch (with an optional
// Last-Event-ID) and reads SSE events until a "final" event, the stream end,
// or the deadline. It returns the decoded events in arrival order.
func watchStream(t *testing.T, base, id, lastEventID string, deadline time.Duration) []server.WatchEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", base+"/v1/sessions/"+id+"/watch", nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("watch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("watch: Content-Type %q, want text/event-stream", ct)
	}
	var evs []server.WatchEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev server.WatchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("watch: decoding event: %v", err)
		}
		evs = append(evs, ev)
		if ev.Final {
			return evs
		}
	}
	t.Fatalf("watch: stream ended without a final event (%d events, read err %v)", len(evs), sc.Err())
	return nil
}

// checkWatchEvents asserts the structural watch-stream contract: at least
// two events (first answer + terminal rung), strictly increasing
// generations, monotone non-increasing gaps, exactly one final event (last).
func checkWatchEvents(t *testing.T, evs []server.WatchEvent) {
	t.Helper()
	if len(evs) < 2 {
		t.Fatalf("got %d watch events, want >= 2 (first answer + terminal rung)", len(evs))
	}
	for i, ev := range evs {
		if i > 0 {
			if ev.Generation <= evs[i-1].Generation {
				t.Fatalf("event %d: generation %d not above predecessor %d", i, ev.Generation, evs[i-1].Generation)
			}
			if ev.Gap > evs[i-1].Gap+1e-9 {
				t.Fatalf("event %d: gap %g grew from %g", i, ev.Gap, evs[i-1].Gap)
			}
		}
		if ev.Final != (i == len(evs)-1) {
			t.Fatalf("event %d of %d: final=%v", i, len(evs), ev.Final)
		}
		if ev.Result == nil || ev.Makespan == "" || ev.LowerBound == "" {
			t.Fatalf("event %d: incomplete payload %+v", i, ev)
		}
	}
}

// TestAnytimeWatchStream drives an anytime session end to end: the create
// responds instantly with the tagged first answer, the watch stream refines
// to a final result bit-identical to a cold TierPTAS solve at the terminal
// ε, and a GET afterwards serves the refined best.
func TestAnytimeWatchStream(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 1, Logf: t.Logf})
	in := anytimeInstance(t)
	opts := ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierAnytime, Epsilon: 0.5}

	code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in, Options: opts, TimeoutMs: 60000,
	})
	if code != http.StatusOK || sr.Status != server.StatusDone {
		t.Fatalf("create: %d %+v", code, sr)
	}
	if sr.Result == nil || sr.Result.Anytime == nil || sr.Result.Anytime.Rung != 0 {
		t.Fatalf("create: first answer not tagged as ladder rung 0: %+v", sr.Result)
	}
	if sr.Result.LowerBound == nil || sr.Result.LowerBound.Sign() <= 0 {
		t.Fatalf("create: first answer carries no certified lower bound")
	}

	evs := watchStream(t, ts.URL, sr.SessionID, "", 60*time.Second)
	checkWatchEvents(t, evs)
	if evs[0].Rung != 0 {
		t.Fatalf("first event is rung %d, want 0", evs[0].Rung)
	}

	coldOpts := opts
	coldOpts.Tier = ccsched.TierPTAS
	coldOpts.Cache = ccsched.NewFeasibilityCache()
	want, err := ccsched.Solve(context.Background(), in, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	final := evs[len(evs)-1]
	if final.Makespan != want.Makespan.RatString() {
		t.Fatalf("final anytime makespan %s != cold TierPTAS %s", final.Makespan, want.Makespan.RatString())
	}

	// The session's inline answer now reflects the refined best.
	code, gr := sessionCall(t, "GET", ts.URL+"/v1/sessions/"+sr.SessionID, nil)
	if code != http.StatusOK || gr.Result == nil || gr.Result.Anytime == nil || !gr.Result.Anytime.Final {
		t.Fatalf("get after final: %d %+v", code, gr)
	}
	if gr.Result.Makespan.RatString() != want.Makespan.RatString() {
		t.Fatalf("get after final: makespan %s != cold %s", gr.Result.Makespan.RatString(), want.Makespan.RatString())
	}
}

// TestAnytimeWatchReplay checks the Last-Event-ID reconnect contract — the
// replayed tail starts after the acknowledged generation, with no
// duplicates — plus the watch endpoint's error mapping.
func TestAnytimeWatchReplay(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 1, Logf: t.Logf})
	in := anytimeInstance(t)
	code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in,
		Options:  ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierAnytime, Epsilon: 1},
	})
	if code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, sr)
	}
	evs := watchStream(t, ts.URL, sr.SessionID, "", 60*time.Second)
	checkWatchEvents(t, evs)

	// Reconnect acknowledging the first event: the replay is exactly the tail.
	first := evs[0].Generation
	tail := watchStream(t, ts.URL, sr.SessionID, strconvUint(first), 30*time.Second)
	if len(tail) != len(evs)-1 {
		t.Fatalf("replay after gen %d: %d events, want %d", first, len(tail), len(evs)-1)
	}
	for i, ev := range tail {
		if ev.Generation != evs[i+1].Generation {
			t.Fatalf("replay event %d: generation %d, want %d (duplicate or gap)", i, ev.Generation, evs[i+1].Generation)
		}
	}

	// Error mapping: non-anytime session 409, unknown session 404, bad
	// Last-Event-ID 400.
	code, plain := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in, Options: ccsched.Options{Tier: ccsched.TierApprox},
	})
	if code != http.StatusOK {
		t.Fatalf("plain create: %d %+v", code, plain)
	}
	for name, tc := range map[string]struct {
		id, lei string
		want    int
	}{
		"not anytime": {plain.SessionID, "", http.StatusConflict},
		"unknown":     {"nope", "", http.StatusNotFound},
		"bad id":      {sr.SessionID, "x7", http.StatusBadRequest},
	} {
		req, err := http.NewRequest("GET", ts.URL+"/v1/sessions/"+tc.id+"/watch", nil)
		if err != nil {
			t.Fatal(err)
		}
		if tc.lei != "" {
			req.Header.Set("Last-Event-ID", tc.lei)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Fatalf("%s: status %d, want %d", name, resp.StatusCode, tc.want)
		}
	}
}

// TestAnytimePatchRestartsLadder checks that a delta restarts refinement: the
// PATCH answers inline with a fresh first answer and the stream publishes a
// new ladder — higher generations, rung 0 again, a new final matching a cold
// solve of the patched instance.
func TestAnytimePatchRestartsLadder(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 1, Logf: t.Logf})
	in := anytimeInstance(t)
	opts := ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierAnytime, Epsilon: 1}
	code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in, Options: opts,
	})
	if code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, sr)
	}
	evs := watchStream(t, ts.URL, sr.SessionID, "", 60*time.Second)
	checkWatchEvents(t, evs)
	lastGen := evs[len(evs)-1].Generation

	mirror := in.Clone()
	code, pr := sessionCall(t, "PATCH", ts.URL+"/v1/sessions/"+sr.SessionID, server.SessionDelta{
		Add: []server.SessionJob{{P: 90, Class: 1}},
	})
	if code != http.StatusOK || pr.Status != server.StatusDone {
		t.Fatalf("patch: %d %+v", code, pr)
	}
	if pr.Result == nil || pr.Result.Anytime == nil || pr.Result.Anytime.Rung != 0 {
		t.Fatalf("patch: inline answer not a fresh first answer: %+v", pr.Result)
	}
	mirror.P = append(mirror.P, 90)
	mirror.Class = append(mirror.Class, 1)

	evs2 := watchStream(t, ts.URL, sr.SessionID, strconvUint(lastGen), 60*time.Second)
	checkWatchEvents(t, evs2)
	if evs2[0].Generation <= lastGen {
		t.Fatalf("post-delta event generation %d not above pre-delta %d", evs2[0].Generation, lastGen)
	}
	coldOpts := opts
	coldOpts.Tier = ccsched.TierPTAS
	coldOpts.Cache = ccsched.NewFeasibilityCache()
	want, err := ccsched.Solve(context.Background(), mirror, coldOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := evs2[len(evs2)-1].Makespan; got != want.Makespan.RatString() {
		t.Fatalf("post-delta final makespan %s != cold %s", got, want.Makespan.RatString())
	}
}

// TestAnytimeBudgetExhaustionParks starves the refinement budget: with a
// near-zero per-tenant rate the bucket holds one token, so the ladder runs
// one rung and parks, metered.
func TestAnytimeBudgetExhaustionParks(t *testing.T) {
	s, ts := startServer(t, server.Config{Workers: 1, RefineBudgetPerSec: 1e-9, Logf: t.Logf})
	in := anytimeInstance(t)
	code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in,
		Options:  ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierAnytime, Epsilon: 0.5},
	})
	if code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, sr)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		m := s.Metrics()
		if m.RefineBudgetExhaustedTotal >= 1 && m.RefineParked == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("budget exhaustion not observed: exhausted=%d parked=%d",
				m.RefineBudgetExhaustedTotal, m.RefineParked)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// The parked ladder never reached the terminal rung.
	code, gr := sessionCall(t, "GET", ts.URL+"/v1/sessions/"+sr.SessionID, nil)
	if code != http.StatusOK || gr.Result == nil || gr.Result.Anytime == nil {
		t.Fatalf("get: %d %+v", code, gr)
	}
	if gr.Result.Anytime.Final {
		t.Fatalf("ladder finished despite an exhausted budget")
	}
}

// TestAnytimeGenerationsSurviveRestart checks the on-disk generation floor:
// after a restart with the same state dir, the restored session's ladder
// publishes only generations above everything ever published before — the
// SSE resume contract with no duplicate generations across restarts.
func TestAnytimeGenerationsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	cfg := server.Config{Workers: 1, StateDir: dir, Logf: t.Logf}

	s1 := server.New(cfg)
	ts1 := httptest.NewServer(s1.Handler())
	in := anytimeInstance(t)
	code, sr := sessionCall(t, "POST", ts1.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in,
		Options:  ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierAnytime, Epsilon: 1},
	})
	if code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, sr)
	}
	evs := watchStream(t, ts1.URL, sr.SessionID, "", 60*time.Second)
	checkWatchEvents(t, evs)
	maxGen := evs[len(evs)-1].Generation
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	cancel()
	ts1.Close()

	s2 := server.New(cfg)
	ts2 := httptest.NewServer(s2.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = s2.Shutdown(ctx)
		ts2.Close()
	})
	// The restored ladder re-runs from rung 0 (warm state is re-verified, the
	// answer unchanged) but its generations start above the persisted floor.
	evs2 := watchStream(t, ts2.URL, sr.SessionID, strconvUint(maxGen), 60*time.Second)
	checkWatchEvents(t, evs2)
	if evs2[0].Generation <= maxGen {
		t.Fatalf("restored generation %d not above persisted floor %d", evs2[0].Generation, maxGen)
	}
	if got := evs2[len(evs2)-1].Makespan; got != evs[len(evs)-1].Makespan {
		t.Fatalf("restored final makespan %s != pre-restart %s", got, evs[len(evs)-1].Makespan)
	}

	// DELETE removes the generation sidecar along with the snapshot.
	if code, _ := sessionCall(t, "DELETE", ts2.URL+"/v1/sessions/"+sr.SessionID, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, sr.SessionID+".gen")); !os.IsNotExist(err) {
		t.Fatalf("generation sidecar survived DELETE: %v", err)
	}
}

// strconvUint formats a generation for a Last-Event-ID header.
func strconvUint(g uint64) string {
	return strconv.FormatUint(g, 10)
}
