package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"ccsched"
	"ccsched/internal/faultinject"
)

// The HTTP surface:
//
//	POST /v1/solve            submit an instance+options; awaits the result
//	                          up to ?wait= (default 30s; 0 = async submit),
//	                          else returns 202 with a job id
//	GET  /v1/jobs/{id}        poll a submission; ?wait= blocks until done
//	GET  /v1/sessions/{id}/watch
//	                          SSE stream of an anytime session's refinement
//	                          improvements (see watch.go); Last-Event-ID
//	                          replays missed generations on reconnect
//	GET  /healthz             liveness: 200 with queue gauges for as long as
//	                          the process serves (draining included)
//	GET  /readyz              readiness: 503 while draining, while the
//	                          admission queue is over 90% full, or while
//	                          checkpointing is degraded; 200 otherwise
//	GET  /metrics             MetricsSnapshot JSON; ?format=prom (or
//	                          Accept: text/plain) selects the Prometheus
//	                          text exposition
//	GET  /v1/debug/traces     the TraceRing slowest solves' span timelines
//	     /v1/debug/faults     fault-injection admin (Config.FaultAdmin only):
//	                          GET lists, PUT arms spec strings, DELETE clears
//
// Status mapping: 200 done, 202 still queued/running, 400 malformed, 404
// unknown/expired job, 408 solve deadline exceeded, 422 infeasible, beyond
// exact-tier size limits or quarantined after repeated solver panics, 429
// queue full, 499 canceled (all clients gone), 503 shutting down. 429 and
// 503 rejections carry a Retry-After header with a sensible resubmit delay.
//
// Degradation: soft_timeout_ms in the body (or Config.SoftTimeout) arms a
// soft deadline on synchronous non-approx solves — when it fires first, the
// response is the millisecond 2-approx with its certified lower bound and
// result.degraded=true, while the full solve keeps running and publishes
// for later requests (which then get the full answer).
//
// Tracing: ?trace=1 (or options.trace in the body) returns the solve's span
// timeline in result.trace. While the trace ring is enabled solves run
// traced regardless, but responses only carry the trace when asked —
// clients never pay response bytes they did not request.

// defaultWait is how long POST /v1/solve blocks for the result when the
// request does not say otherwise.
const defaultWait = 30 * time.Second

// Handler returns the HTTP handler exposing the service API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("POST /v1/sessions", s.handleSessionCreate)
	mux.HandleFunc("PATCH /v1/sessions/{id}", s.handleSessionPatch)
	mux.HandleFunc("GET /v1/sessions/{id}", s.handleSessionGet)
	mux.HandleFunc("DELETE /v1/sessions/{id}", s.handleSessionDelete)
	mux.HandleFunc("GET /v1/sessions/{id}/export", s.handleSessionExport)
	mux.HandleFunc("PUT /v1/sessions/{id}/export", s.handleSessionImport)
	mux.HandleFunc("GET /v1/sessions/{id}/watch", s.handleSessionWatch)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/debug/traces", s.handleTraces)
	if s.cfg.FaultAdmin {
		mux.HandleFunc("GET /v1/debug/faults", s.handleFaultsList)
		mux.HandleFunc("PUT /v1/debug/faults", s.handleFaultsArm)
		mux.HandleFunc("DELETE /v1/debug/faults", s.handleFaultsClear)
	}
	return s.withRequestLog(mux)
}

// wantTrace reports whether the request asked for the span timeline in its
// response: ?trace=1 (or true), or optsTrace (the decoded options.trace).
func wantTrace(r *http.Request, optsTrace bool) bool {
	switch r.URL.Query().Get("trace") {
	case "1", "true":
		return true
	}
	return optsTrace
}

// writeJSON writes v with the given HTTP status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError writes an ErrorResponse.
func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// Retry-After delays suggested on backpressure rejections: a full queue
// drains within a solve or two, a draining or degraded server needs longer.
const (
	retryAfterQueueFull = time.Second
	retryAfterDraining  = 5 * time.Second
)

// setRetryAfter attaches a Retry-After header (whole seconds, minimum 1) —
// clients like ccload honor it instead of their own backoff.
func setRetryAfter(w http.ResponseWriter, d time.Duration) {
	secs := int64(d / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

// statusClientClosedRequest is nginx's conventional code for "the client
// went away before a response existed"; no stdlib constant exists.
const statusClientClosedRequest = 499

// parseWait reads the ?wait= query parameter: a Go duration ("500ms",
// "30s") or bare milliseconds. def applies when absent.
func parseWait(r *http.Request, def time.Duration) (time.Duration, error) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return def, nil
	}
	if d, err := time.ParseDuration(raw); err == nil {
		if d < 0 {
			return 0, fmt.Errorf("negative wait %q", raw)
		}
		return d, nil
	}
	// Bare milliseconds. strconv rejects trailing garbage, so a typo like
	// "30m5" is a 400, not a silent 30ms wait.
	ms, err := strconv.ParseInt(raw, 10, 64)
	if err != nil || ms < 0 {
		return 0, fmt.Errorf("cannot parse wait %q", raw)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

// handleSolve admits one solve request and (unless wait is 0) awaits its
// completion.
func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	wait, err := parseWait(r, defaultWait)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req SolveRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Instance == nil {
		writeError(w, http.StatusBadRequest, "missing \"instance\"")
		return
	}
	trace := wantTrace(r, req.Options.Trace)
	soft := s.softDeadline(req.SoftTimeoutMs)
	sub, err := s.submit(req.Instance, req.Options, time.Duration(req.TimeoutMs)*time.Millisecond, wait == 0, trace)
	switch {
	case errors.Is(err, ErrQueueFull):
		// Admission saturation with a soft deadline armed: answer with the
		// millisecond 2-approx instead of bouncing the client.
		if soft > 0 && s.degradeEligible(req.Options) {
			setOutcome(r, "degraded")
			s.respondDegradedDirect(w, req.Instance, req.Options, trace)
			return
		}
		setRetryAfter(w, retryAfterQueueFull)
		writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case errors.Is(err, ErrShuttingDown):
		setRetryAfter(w, retryAfterDraining)
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case errors.Is(err, ErrQuarantined):
		setRetryAfter(w, s.cfg.PanicQuarantineTTL)
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	case errors.Is(err, ErrInstanceTooLarge):
		writeError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if sub.done != nil {
		setOutcome(r, "cache-hit")
		s.respondOutcome(w, sub, *sub.done, true, trace)
		return
	}
	if sub.coalesced {
		setOutcome(r, "coalesced")
	} else {
		setOutcome(r, "admitted")
	}
	if wait == 0 {
		writeJSON(w, http.StatusAccepted, SolveResponse{
			ID: sub.id, Status: s.flightStatus(sub.flight), Coalesced: sub.coalesced,
			RequestID: requestID(r),
		})
		return
	}
	s.awaitFlight(w, r, sub, wait, soft, trace)
}

// softDeadline resolves one request's degraded-fallback deadline: a positive
// soft_timeout_ms wins, a negative one disables, zero inherits
// Config.SoftTimeout.
func (s *Server) softDeadline(softMs int64) time.Duration {
	switch {
	case softMs > 0:
		return time.Duration(softMs) * time.Millisecond
	case softMs < 0:
		return 0
	}
	return s.cfg.SoftTimeout
}

// degradeEligible reports whether a request may be answered by the degraded
// 2-approx: only solves that asked for a stronger tier degrade (an approx
// request already IS the fallback).
func (s *Server) degradeEligible(opts ccsched.Options) bool {
	return opts.Tier != ccsched.TierApprox
}

// respondDegradedDirect canonicalizes the instance outside the admission
// pipeline (which just refused it) and answers with the degraded 2-approx.
func (s *Server) respondDegradedDirect(w http.ResponseWriter, in *ccsched.Instance, opts ccsched.Options, trace bool) {
	canon := canonicalize(in)
	opts = sanitizeOptions(opts, s.cfg.EngineParallelism, s.traces != nil)
	if !opts.NoCache {
		opts.Cache = s.cfg.Cache
	} else {
		opts.Cache = nil
	}
	k := requestKey(canon.in, opts)
	out := s.degradedOutcome(k, canon.in, opts)
	s.mu.Lock()
	id := s.addJobLocked(k, canon.perm, trace)
	s.mu.Unlock()
	s.respondOutcome(w, &submission{id: id, perm: canon.perm}, out, false, trace)
}

// awaitFlight blocks one attached request on its flight until completion,
// the soft deadline (degraded answer; the full solve keeps running), the
// wait budget, or client disconnect, and responds accordingly.
func (s *Server) awaitFlight(w http.ResponseWriter, r *http.Request, sub *submission, wait, soft time.Duration, trace bool) {
	f := sub.flight
	timer := time.NewTimer(wait)
	defer timer.Stop()
	// The soft deadline arms only where degradation makes sense: a synchronous
	// non-approx one-shot whose budget outlives it.
	var softC <-chan time.Time
	if soft > 0 && soft < wait && !f.session && s.degradeEligible(f.opts) {
		st := time.NewTimer(soft)
		defer st.Stop()
		softC = st.C
	}
	select {
	case <-f.done:
		s.detach(f)
		s.respondOutcome(w, sub, outcome{res: f.res, err: f.err, elapsed: f.elapsed}, false, trace)
	case <-softC:
		// Serve the fallback now; pin the full solve so it still publishes
		// (and retires this degraded answer) for later requests.
		s.pin(f)
		s.detach(f)
		setOutcome(r, "degraded")
		s.respondOutcome(w, sub, s.degradedOutcome(f.key, f.in, f.opts), false, trace)
	case <-timer.C:
		// The client outwaited its budget but may poll later: keep the
		// solve alive even though this waiter leaves.
		s.pin(f)
		s.detach(f)
		writeJSON(w, http.StatusAccepted, SolveResponse{
			ID: sub.id, Status: s.flightStatus(f), Coalesced: sub.coalesced,
			RequestID: requestID(r),
		})
	case <-r.Context().Done():
		// Client gone: detach, which cancels the solve if nobody else is
		// interested. The status line is moot (nobody reads it).
		s.detach(f)
		writeError(w, statusClientClosedRequest, "client closed request")
	}
}

// flightStatus reports queued/running for a live flight.
func (s *Server) flightStatus(f *flight) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.running {
		return StatusRunning
	}
	return StatusQueued
}

// respondOutcome renders a finished solve for one submission, remapping the
// canonical result into the submitter's job order. trace keeps the span
// timeline in the response; without it the trace is stripped from the remap
// copy (the cached canonical result keeps its trace for the debug ring).
func (s *Server) respondOutcome(w http.ResponseWriter, sub *submission, out outcome, cached, trace bool) {
	ms := float64(out.elapsed) / float64(time.Millisecond)
	if out.err != nil {
		writeJSON(w, solveErrorStatus(out.err), SolveResponse{
			ID: sub.id, Status: StatusError, Error: out.err.Error(),
			SolveMs: ms, Coalesced: sub.coalesced, Cached: cached,
		})
		return
	}
	res := remapResult(out.res, sub.perm)
	if !trace {
		res.Trace = nil
	}
	writeJSON(w, http.StatusOK, SolveResponse{
		ID: sub.id, Status: StatusDone, Result: res,
		SolveMs: ms, Coalesced: sub.coalesced, Cached: cached,
	})
}

// handleJob reports or awaits the state of a prior submission.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	wait, err := parseWait(r, 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	id := r.PathValue("id")
	s.mu.Lock()
	je, ok := s.jobs.get(id)
	if !ok {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "unknown job %q", id)
		return
	}
	// The submission's trace choice sticks to the job; ?trace=1 on the poll
	// also works.
	trace := wantTrace(r, je.trace)
	if out, ok := s.results.get(je.key); ok {
		s.mu.Unlock()
		setOutcome(r, "cache-hit")
		s.respondOutcome(w, &submission{id: id, perm: je.perm}, out, true, trace)
		return
	}
	f, live := s.flights[je.key]
	if live && wait > 0 {
		f.waiters++ // attach under the same lock that found the flight
	}
	s.mu.Unlock()
	if !live {
		// Finished but not cached — only cancellations end up here.
		writeError(w, http.StatusNotFound, "job %q expired (canceled or evicted); resubmit", id)
		return
	}
	if wait == 0 {
		writeJSON(w, http.StatusAccepted, SolveResponse{ID: id, Status: s.flightStatus(f), RequestID: requestID(r)})
		return
	}
	// Job polls never degrade (soft = 0): the client explicitly chose to wait
	// for the full answer.
	s.awaitFlight(w, r, &submission{id: id, perm: je.perm, flight: f}, wait, 0, trace)
}

// handleHealth serves liveness plus queue gauges. It answers 200 for as long
// as the process can serve HTTP at all — draining included (the status field
// says so) — so orchestrators do not kill a server that is busy flushing
// snapshots. Readiness gating lives at /readyz.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	resp := HealthResponse{
		Status:        "ok",
		Workers:       s.cfg.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
	}
	if closed {
		resp.Status = "draining"
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleReady serves readiness: 503 (with Retry-After and the reasons) while
// the server is draining, while the admission queue is over 90% full, or
// while checkpointing is degraded to in-memory-only; 200 otherwise. Load
// balancers use it to steer traffic away without killing the process.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	resp := ReadyResponse{
		Ready:         true,
		QueueDepth:    len(s.queue),
		QueueCapacity: cap(s.queue),
	}
	if closed {
		resp.Reasons = append(resp.Reasons, "draining")
	}
	if resp.QueueDepth*10 > resp.QueueCapacity*9 {
		resp.Reasons = append(resp.Reasons, "admission queue over 90% full")
	}
	if s.persistDegraded.Load() {
		resp.Reasons = append(resp.Reasons, "checkpointing degraded to in-memory-only")
	}
	if len(resp.Reasons) > 0 {
		resp.Ready = false
		setRetryAfter(w, retryAfterDraining)
		writeJSON(w, http.StatusServiceUnavailable, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleFaultsList serves the fault registry: every armed point with its
// spec and per-point fire count.
func (s *Server) handleFaultsList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, FaultsResponse{Armed: faultinject.List()})
}

// handleFaultsArm arms the spec strings in the request body on top of
// whatever is already armed (PUT with {"specs": "point=mode[:arg][*hits],..."}).
func (s *Server) handleFaultsArm(w http.ResponseWriter, r *http.Request) {
	var req FaultsRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if err := faultinject.ArmSpecs(req.Specs); err != nil {
		writeError(w, http.StatusBadRequest, "arming faults: %v", err)
		return
	}
	s.logger.Warn("fault injection armed", "specs", req.Specs)
	s.handleFaultsList(w, r)
}

// handleFaultsClear disarms every fault (DELETE).
func (s *Server) handleFaultsClear(w http.ResponseWriter, r *http.Request) {
	faultinject.Reset()
	s.logger.Warn("fault injection cleared")
	s.handleFaultsList(w, r)
}

// handleMetrics serves the MetricsSnapshot: JSON by default, Prometheus
// text exposition when the request negotiates it (?format=prom, or an
// Accept header preferring text/plain — what a Prometheus scraper sends).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	prom := r.URL.Query().Get("format") == "prom"
	if !prom {
		accept := r.Header.Get("Accept")
		prom = strings.Contains(accept, "text/plain") && !strings.Contains(accept, "application/json")
	}
	if !prom {
		writeJSON(w, http.StatusOK, m)
		return
	}
	w.Header().Set("Content-Type", promContentType)
	w.WriteHeader(http.StatusOK)
	renderProm(w, m)
}
