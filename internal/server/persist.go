// Durable sessions on disk. When Config.StateDir is set, the server
// checkpoints every dirty session's snapshot (ccsched.Session.SnapshotState)
// to <state-dir>/<id>.ccsnap and restores all readable snapshots on boot, so
// a crash — including kill -9 — costs at most the work since the last
// checkpoint, never correctness: restores go through ccsched.RestoreSession,
// whose warm sections are dropped-never-trusted, so a corrupt file degrades
// to a cold solve with an identical makespan.
//
// The disk format is magic ("CCSNAP01") + SHA-256 of the payload + the
// payload; writes go to a temp file that is fsynced, closed and renamed into
// place (then the directory is fsynced), so a file either holds a complete
// checksummed snapshot or does not exist. Unreadable, mismatched or
// stale-schema files are skipped on boot with a logged reason and a
// snapshot_corrupt_skipped_total tick — boot never fails because of a bad
// snapshot.
//
// Checkpointing is admission-budgeted: a tick is skipped entirely while the
// solve queue is more than half full, so persistence never competes with
// admitted work for the machine. The final drain snapshot in Shutdown runs
// after the workers exit and is not subject to the drain grace — it always
// fsyncs and closes its files — and its failures are logged and counted but
// never turn a graceful drain into an error exit.
package server

import (
	"bytes"
	"crypto/sha256"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ccsched"
	"ccsched/internal/faultinject"
)

// snapMagic and snapExt identify session snapshot files on disk.
const (
	snapMagic = "CCSNAP01"
	snapExt   = ".ccsnap"
)

// encodeSnapshotFile frames a snapshot payload for disk: magic, payload
// checksum, payload.
func encodeSnapshotFile(payload []byte) []byte {
	out := make([]byte, 0, len(snapMagic)+sha256.Size+len(payload))
	out = append(out, snapMagic...)
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// decodeSnapshotFile unframes a snapshot file, verifying magic and checksum.
func decodeSnapshotFile(data []byte) ([]byte, error) {
	if len(data) < len(snapMagic)+sha256.Size {
		return nil, errors.New("truncated snapshot header")
	}
	if string(data[:len(snapMagic)]) != snapMagic {
		return nil, errors.New("not a session snapshot (bad magic)")
	}
	payload := data[len(snapMagic)+sha256.Size:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], data[len(snapMagic):len(snapMagic)+sha256.Size]) {
		return nil, errors.New("snapshot checksum mismatch")
	}
	return payload, nil
}

// writeSessionSnapshot atomically persists one framed snapshot: temp file,
// write, fsync, close, rename, directory fsync. A crash at any point leaves
// either the previous complete file or the new complete file, never a
// partial one.
func writeSessionSnapshot(dir, id string, payload []byte) error {
	tmp := filepath.Join(dir, id+snapExt+".tmp")
	final := filepath.Join(dir, id+snapExt)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	data := encodeSnapshotFile(payload)
	// The injection point truncates the write under a shortwrite fault,
	// leaving a convincing partial temp file — which the atomic rename
	// protocol must (and does) keep out of the final path.
	n, faultErr := faultinject.ShortWrite("server.snapshot.write", len(data))
	if _, err := f.Write(data[:n]); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if faultErr != nil {
		f.Close()
		os.Remove(tmp)
		return faultErr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(dir); err == nil {
		// Directory fsync is best-effort: the file itself is already durable,
		// this only hardens the rename's visibility after a crash.
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// validSessionID reports whether id is safe to use as a snapshot file stem
// and an imported session name: 1–64 characters of [A-Za-z0-9._-], and not a
// relative-path token.
func validSessionID(id string) bool {
	if len(id) == 0 || len(id) > 64 || id == "." || id == ".." {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// restoreSnapshots loads every readable session snapshot in StateDir into
// the session table. Called from New before the server admits work; failures
// are per-file (logged, counted, skipped), never fatal.
func (s *Server) restoreSnapshots() {
	entries, err := os.ReadDir(s.cfg.StateDir)
	if err != nil {
		s.logger.Warn("state dir unreadable", "dir", s.cfg.StateDir, "err", err)
		return
	}
	for _, ent := range entries {
		name := ent.Name()
		if ent.IsDir() || !strings.HasSuffix(name, snapExt) {
			continue
		}
		id := strings.TrimSuffix(name, snapExt)
		if !validSessionID(id) {
			s.logger.Warn("snapshot skipped", "file", name, "reason", "invalid session id")
			s.met.snapshotCorruptSkipped.Add(1)
			continue
		}
		start := time.Now()
		sess, err := s.restoreSnapshotFile(filepath.Join(s.cfg.StateDir, name))
		if err != nil {
			s.logger.Warn("snapshot skipped", "file", name, "err", err)
			s.met.snapshotCorruptSkipped.Add(1)
			continue
		}
		if len(s.sessions) >= s.cfg.MaxSessions {
			s.logger.Warn("snapshot skipped", "file", name, "reason", "session cap reached", "cap", s.cfg.MaxSessions)
			continue
		}
		sv := &svcSession{
			id:      id,
			sess:    sess,
			opts:    sanitizeOptions(sess.Options(), s.cfg.EngineParallelism, s.traces != nil),
			timeout: s.cfg.DefaultTimeout,
		}
		sv.ckptGen.Store(sess.Generation())
		s.armAnytime(sv, "")
		s.sessions[id] = sv
		if sv.any != nil {
			// Boot is single-threaded and the refine queue is buffered with
			// workers not yet running, so this cannot block; the ladder resumes
			// (or re-publishes the terminal rung) as soon as workers start.
			s.enqueueRefine(sv.any)
		}
		s.met.snapshotRestores.Add(1)
		s.met.restoreLatency.observe(time.Since(start))
		s.logger.Info("session restored from snapshot", "session", id, "jobs", len(sess.JobIDs()))
	}
}

// restoreSnapshotFile reads, unframes and restores one snapshot file.
func (s *Server) restoreSnapshotFile(path string) (*ccsched.Session, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	payload, err := decodeSnapshotFile(data)
	if err != nil {
		return nil, err
	}
	return ccsched.RestoreSession(payload)
}

// checkpointer periodically persists dirty sessions until ckptStop closes.
// A tick is skipped while the solve queue is more than half full, so
// checkpointing yields to admitted work.
func (s *Server) checkpointer() {
	defer close(s.ckptDone)
	t := time.NewTicker(s.cfg.CheckpointInterval)
	defer t.Stop()
	for {
		select {
		case <-s.ckptStop:
			return
		case <-t.C:
		}
		if 2*len(s.queue) > cap(s.queue) {
			continue
		}
		s.checkpointSessions()
	}
}

// Checkpoint write retry policy: a failed snapshot write is retried in place
// with capped exponential backoff plus jitter (transient disk hiccups heal
// within the same checkpoint), and ckptDegradeStreak consecutive sessions
// failing all their retries flips the server to in-memory-only checkpointing
// until a disk probe succeeds.
const (
	ckptWriteRetries  = 3
	ckptBackoffBase   = 25 * time.Millisecond
	ckptBackoffCap    = 250 * time.Millisecond
	ckptDegradeStreak = 2
)

// checkpointSessions writes every dirty session's snapshot, one at a time.
// While checkpointing is degraded it instead probes the disk; sessions stay
// dirty (in memory, still serving) until the probe succeeds, at which point
// durability resumes in the same pass — no restart needed.
func (s *Server) checkpointSessions() {
	if s.persistDegraded.Load() {
		if err := s.probeDisk(); err != nil {
			s.logger.Warn("disk probe failed; checkpointing stays in-memory-only", "err", err)
			return
		}
		s.persistDegraded.Store(false)
		s.ckptFailStreak.Store(0)
		s.logger.Info("disk probe succeeded; checkpoint durability resumed")
	}
	s.mu.Lock()
	svs := make([]*svcSession, 0, len(s.sessions))
	for _, sv := range s.sessions {
		svs = append(svs, sv)
	}
	s.mu.Unlock()
	for _, sv := range svs {
		s.checkpointSession(sv)
	}
}

// checkpointSession persists one session iff it mutated — by delta
// (generation) or by solve (resolve count; solves grow the warm state
// without touching the generation) — since its last checkpoint. Both
// counters are read before the snapshot is taken, so anything landing in
// between leaves the session dirty and the next tick rewrites it — a
// checkpoint can be fresher than its recorded counters but never staler.
// A failed write retries with backoff; exhausting the retries leaves the
// session dirty for the next tick and feeds the degradation streak.
func (s *Server) checkpointSession(sv *svcSession) {
	gen, res := sv.sess.Generation(), sv.sess.Resolves()
	if gen == sv.ckptGen.Load() && res == sv.ckptRes.Load() {
		return
	}
	payload, err := sv.sess.SnapshotState()
	if err != nil {
		// An encode failure is a session problem, not a disk problem: count
		// and log it, but keep it out of the disk-degradation streak.
		s.met.snapshotWriteErrors.Add(1)
		s.logger.Warn("session snapshot failed", "session", sv.id, "err", err)
		return
	}
	backoff := ckptBackoffBase
	for attempt := 0; ; attempt++ {
		err = writeSessionSnapshot(s.cfg.StateDir, sv.id, payload)
		if err == nil {
			break
		}
		s.met.snapshotWriteErrors.Add(1)
		if attempt >= ckptWriteRetries {
			s.logger.Warn("session snapshot write failed; retries exhausted",
				"session", sv.id, "attempts", attempt+1, "err", err)
			s.noteCkptFailure()
			return
		}
		s.met.snapshotRetries.Add(1)
		// Full jitter over [backoff/2, backoff]: concurrent retries (several
		// ccserved on one disk) decorrelate instead of hammering in lockstep.
		time.Sleep(backoff/2 + time.Duration(rand.Int63n(int64(backoff)/2+1)))
		if backoff *= 2; backoff > ckptBackoffCap {
			backoff = ckptBackoffCap
		}
	}
	sv.ckptGen.Store(gen)
	sv.ckptRes.Store(res)
	s.met.snapshotWrites.Add(1)
	s.noteCkptSuccess()
}

// noteCkptFailure records one session checkpoint that exhausted its write
// retries; at ckptDegradeStreak consecutive failures checkpointing degrades
// to in-memory-only (metered, logged, surfaced on /readyz) and the
// checkpointer switches to probing for disk recovery.
func (s *Server) noteCkptFailure() {
	if s.ckptFailStreak.Add(1) < ckptDegradeStreak {
		return
	}
	if s.persistDegraded.CompareAndSwap(false, true) {
		s.met.persistDegradedEvents.Add(1)
		s.logger.Warn("checkpointing degraded to in-memory-only after persistent snapshot write failures",
			"streak", s.ckptFailStreak.Load())
	}
}

// noteCkptSuccess resets the disk-failure streak after a successful
// checkpoint write.
func (s *Server) noteCkptSuccess() {
	s.ckptFailStreak.Store(0)
}

// probeDisk verifies the state directory accepts durable writes again: a
// small file is written through the same injection point as real snapshots,
// fsynced and removed. Its name does not carry the snapshot extension, so a
// probe leftover is ignored by boot restores.
func (s *Server) probeDisk() error {
	path := filepath.Join(s.cfg.StateDir, ".ccserved-probe")
	const probe = "ccserved disk probe"
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	n, faultErr := faultinject.ShortWrite("server.snapshot.write", len(probe))
	if _, err := f.Write([]byte(probe)[:n]); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if faultErr != nil {
		f.Close()
		os.Remove(path)
		return faultErr
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(path)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(path)
		return err
	}
	os.Remove(path)
	return nil
}

// drainSnapshots is the final checkpoint pass of a graceful (or grace-
// expired) shutdown: it runs after the workers exited, fsyncs and closes
// every file it writes regardless of the drain grace, and never contributes
// to Shutdown's error — a failed snapshot write costs warm state on the next
// boot, not the drain.
func (s *Server) drainSnapshots() {
	s.checkpointSessions()
	s.logger.Info("drain snapshots written", "dir", s.cfg.StateDir)
}

// removeSnapshot deletes a dropped session's snapshot file so it does not
// resurrect on the next boot.
func (s *Server) removeSnapshot(id string) {
	if s.cfg.StateDir == "" {
		return
	}
	os.Remove(filepath.Join(s.cfg.StateDir, id+snapExt))
	os.Remove(filepath.Join(s.cfg.StateDir, id+genExt))
}

// handleSessionExport serves GET /v1/sessions/{id}/export: the session's
// versioned snapshot document, taken under the session lock so it never
// interleaves with a delta batch. The bytes round-trip through PUT
// .../export on any ccserved speaking the same snapshot schema version —
// the live-migration primitive.
func (s *Server) handleSessionExport(w http.ResponseWriter, r *http.Request) {
	sv, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	s.met.requests.Add(1)
	sv.mu.Lock()
	data, err := sv.sess.SnapshotState()
	sv.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(data); err != nil {
		s.logger.Warn("session export write failed", "session", sv.id, "err", err)
	}
}

// handleSessionImport serves PUT /v1/sessions/{id}/export: restores an
// exported snapshot under the given id. The restore validates the envelope
// strictly (400 on damage) and degrades warm sections per the
// dropped-never-trusted rule; the imported session answers with status
// "imported" and is checkpointed like any other from then on.
func (s *Server) handleSessionImport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !validSessionID(id) {
		writeError(w, http.StatusBadRequest, "invalid session id %q (want 1-64 of [A-Za-z0-9._-])", id)
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	data, err := io.ReadAll(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading snapshot: %v", err)
		return
	}
	s.met.requests.Add(1)
	start := time.Now()
	sess, err := ccsched.RestoreSession(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "restoring snapshot: %v", err)
		return
	}
	if n := len(sess.JobIDs()); n > s.cfg.MaxJobs {
		writeError(w, http.StatusUnprocessableEntity, "%v: %d jobs > %d", ErrInstanceTooLarge, n, s.cfg.MaxJobs)
		return
	}
	sv := &svcSession{
		id:      id,
		sess:    sess,
		opts:    sanitizeOptions(sess.Options(), s.cfg.EngineParallelism, s.traces != nil),
		timeout: s.cfg.DefaultTimeout,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "%v", ErrShuttingDown)
		return
	}
	if _, exists := s.sessions[id]; exists {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "session %q already exists", id)
		return
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests, "%v: %d live", ErrTooManySessions, len(s.sessions))
		return
	}
	s.armAnytime(sv, r.Header.Get("X-Tenant-Id"))
	s.sessions[id] = sv
	s.met.sessionsCreated.Add(1)
	s.mu.Unlock()
	if sv.any != nil {
		s.enqueueRefine(sv.any)
	}
	s.met.snapshotRestores.Add(1)
	s.met.restoreLatency.observe(time.Since(start))
	in := sess.Instance()
	writeJSON(w, http.StatusCreated, SessionResponse{
		SessionID: id,
		Status:    StatusImported,
		JobIDs:    sess.JobIDs(),
		Machines:  in.M,
	})
}
