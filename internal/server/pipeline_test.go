package server

import (
	"context"
	"errors"
	"fmt"
	"math/big"
	"runtime"
	"testing"
	"time"

	"ccsched"
)

// TestResubmitAfterAbandonedFlight pins the dead-flight rule: a queued
// flight whose last waiter detached (context canceled) must not capture
// later identical submissions — they get a fresh flight and a real result,
// not the abandoned flight's cancellation error.
func TestResubmitAfterAbandonedFlight(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	solver := func(ctx context.Context, in *ccsched.Instance, opts ccsched.Options) (*ccsched.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &ccsched.Result{
				Variant:    opts.Variant,
				Tier:       ccsched.TierApprox,
				Makespan:   new(big.Rat).SetInt64(in.TotalLoad()),
				LowerBound: new(big.Rat).SetInt64(1),
			}, nil
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", ccsched.ErrCanceled, ctx.Err())
		}
	}
	s := New(Config{Workers: 1, Solver: solver})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}
	blocker := genInstance(t, "uniform", 10, 3, 2, 2, 1)
	target := genInstance(t, "uniform", 10, 3, 2, 2, 2)

	subA, err := s.submit(blocker, opts, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now busy on the blocker

	subY, err := s.submit(target, opts, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	s.detach(subY.flight) // last waiter leaves the queued flight
	if subY.flight.ctx.Err() == nil {
		t.Fatal("abandoned queued flight's context not canceled")
	}

	subY2, err := s.submit(target, opts, 0, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if subY2.flight == subY.flight {
		t.Fatal("resubmission coalesced onto the dead flight")
	}
	if subY2.coalesced {
		t.Fatal("resubmission counted as coalesced despite the dead flight")
	}

	close(release)
	select {
	case <-subY2.flight.done:
	case <-time.After(10 * time.Second):
		t.Fatal("replacement flight never finished")
	}
	if subY2.flight.err != nil {
		t.Fatalf("replacement flight inherited an error: %v", subY2.flight.err)
	}
	s.detach(subY2.flight)
	s.detach(subA.flight)
}

// TestAdmissionBounds pins the admission-side resource fences: instances
// beyond MaxJobs are refused with ErrInstanceTooLarge (the approx tier is
// not cancellable mid-solve, so size must be policed here), and a
// wire-supplied timeout beyond MaxTimeout is clamped onto the flight's
// context deadline.
func TestAdmissionBounds(t *testing.T) {
	release := make(chan struct{})
	close(release)
	solver := func(ctx context.Context, in *ccsched.Instance, opts ccsched.Options) (*ccsched.Result, error) {
		return &ccsched.Result{Variant: opts.Variant, Makespan: new(big.Rat).SetInt64(1), LowerBound: new(big.Rat).SetInt64(1)}, nil
	}
	s := New(Config{Workers: 1, MaxJobs: 8, MaxTimeout: time.Minute, Solver: solver})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	}()
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}

	big9 := genInstance(t, "uniform", 9, 3, 2, 2, 4)
	if _, err := s.submit(big9, opts, 0, false, false); !errors.Is(err, ErrInstanceTooLarge) {
		t.Fatalf("9 jobs past MaxJobs=8: got %v, want ErrInstanceTooLarge", err)
	}
	sub, err := s.submit(genInstance(t, "uniform", 8, 3, 2, 2, 4), opts, 24*time.Hour, false, false)
	if err != nil {
		t.Fatal(err)
	}
	deadline, ok := sub.flight.ctx.Deadline()
	if !ok || time.Until(deadline) > time.Minute {
		t.Fatalf("24h request deadline not clamped to MaxTimeout: %v (ok=%v)", time.Until(deadline), ok)
	}
	<-sub.flight.done
	s.detach(sub.flight)
}

// TestSanitizeOptionsClampsResourceKnobs pins the admission-side clamp on
// wire-settable resource knobs: a hostile parallelism or machine-
// materialization request must not reach the solver unbounded, and the
// clamp must happen before the request key so sanitized duplicates share a
// solve.
func TestSanitizeOptionsClampsResourceKnobs(t *testing.T) {
	hostile := ccsched.Options{
		Variant:              ccsched.Splittable,
		Tier:                 ccsched.TierPTAS,
		Parallelism:          1 << 30,
		EngineParallelism:    1 << 30,
		ExplicitMachineLimit: 1 << 40,
		HugeMThreshold:       1 << 40,
	}
	got := sanitizeOptions(hostile, 0, false)
	if got.Parallelism == hostile.Parallelism || got.ExplicitMachineLimit != 1<<20 || got.HugeMThreshold != 1<<20 {
		t.Fatalf("sanitize left resource knobs unbounded: %+v", got)
	}
	if got.EngineParallelism == hostile.EngineParallelism {
		t.Fatalf("sanitize left EngineParallelism unbounded: %+v", got)
	}
	in := canonicalize(genInstance(t, "uniform", 12, 3, 2, 2, 3)).in
	tame := hostile
	tame.Parallelism, tame.EngineParallelism = got.Parallelism, got.EngineParallelism
	tame.ExplicitMachineLimit, tame.HugeMThreshold = 1<<20, 1<<20
	if requestKey(in, sanitizeOptions(hostile, 0, false)) != requestKey(in, tame) {
		t.Fatal("sanitized hostile options do not share the tame request key")
	}
	// The server-config default fills only unset EngineParallelism (then the
	// GOMAXPROCS clamp applies to it too), and an explicit 1 (force-serial)
	// survives the default.
	wantDefault := 2
	if mp := runtime.GOMAXPROCS(0); mp < wantDefault {
		wantDefault = mp
	}
	if got := sanitizeOptions(ccsched.Options{}, 2, false); got.EngineParallelism != wantDefault {
		t.Fatalf("config default not applied to unset EngineParallelism: %+v", got)
	}
	if got := sanitizeOptions(ccsched.Options{EngineParallelism: 1}, 2, false); got.EngineParallelism != 1 {
		t.Fatalf("explicit EngineParallelism=1 overridden by config default: %+v", got)
	}
}
