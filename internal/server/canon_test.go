package server

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"ccsched"
)

// scrambled returns a copy of in with jobs shuffled and class labels
// permuted — the symmetries canonicalization must factor out.
func scrambled(in *ccsched.Instance, seed int64) *ccsched.Instance {
	rng := rand.New(rand.NewSource(seed))
	n := in.N()
	order := rng.Perm(n)
	C := in.NumClasses()
	relabel := rng.Perm(C)
	out := &ccsched.Instance{P: make([]int64, n), Class: make([]int, n), M: in.M, Slots: in.Slots}
	for i, j := range order {
		out.P[i] = in.P[j]
		out.Class[i] = relabel[in.Class[j]]
	}
	return out
}

// genInstance builds a deterministic test instance from a workload family.
func genInstance(t *testing.T, family string, n, classes int, m int64, slots int, seed int64) *ccsched.Instance {
	t.Helper()
	in, err := ccsched.Generate(family, ccsched.GeneratorConfig{
		N: n, Classes: classes, Machines: m, Slots: slots, PMax: 50, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestCanonicalizeInvariance checks that job shuffles and class relabelings
// produce the identical canonical instance and request key, across workload
// families.
func TestCanonicalizeInvariance(t *testing.T) {
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}
	for _, family := range ccsched.GeneratorFamilies() {
		in := genInstance(t, family, 40, 8, 5, 2, 7)
		base := canonicalize(in)
		baseKey := requestKey(base.in, opts)
		if err := base.in.Validate(); err != nil {
			t.Fatalf("%s: canonical instance invalid: %v", family, err)
		}
		for seed := int64(1); seed <= 5; seed++ {
			alt := canonicalize(scrambled(in, seed))
			if !reflect.DeepEqual(base.in, alt.in) {
				t.Fatalf("%s seed %d: canonical forms differ:\n%+v\n%+v", family, seed, base.in, alt.in)
			}
			if requestKey(alt.in, opts) != baseKey {
				t.Fatalf("%s seed %d: request keys differ", family, seed)
			}
		}
	}
}

// TestCanonicalizePermIsValid checks the permutation really links canonical
// to original jobs.
func TestCanonicalizePermIsValid(t *testing.T) {
	in := genInstance(t, "zipf", 30, 6, 4, 2, 3)
	c := canonicalize(in)
	seen := make([]bool, in.N())
	for i, j := range c.perm {
		if seen[j] {
			t.Fatalf("perm maps two canonical jobs to original %d", j)
		}
		seen[j] = true
		if c.in.P[i] != in.P[j] {
			t.Fatalf("canonical job %d has p=%d, original %d has p=%d", i, c.in.P[i], j, in.P[j])
		}
	}
}

// TestRequestKeyOptionSensitivity checks result-affecting options split the
// key space while result-neutral knobs (parallelism, caching, TierAuto
// aliasing, the ε default) do not.
func TestRequestKeyOptionSensitivity(t *testing.T) {
	in := canonicalize(genInstance(t, "uniform", 20, 4, 3, 2, 1)).in
	base := requestKey(in, ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS})
	same := []ccsched.Options{
		{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Parallelism: 8},
		{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, NoCache: true},
		{Variant: ccsched.Splittable, Tier: ccsched.TierAuto},
		{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 0.5},
	}
	for i, o := range same {
		if requestKey(in, o) != base {
			t.Fatalf("option set %d changed the key but cannot change the result", i)
		}
	}
	diff := []ccsched.Options{
		{Variant: ccsched.Preemptive, Tier: ccsched.TierPTAS},
		{Variant: ccsched.Splittable, Tier: ccsched.TierApprox},
		{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 0.25},
		{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, MaxNodes: 10},
	}
	for i, o := range diff {
		if requestKey(in, o) == base {
			t.Fatalf("option set %d shares the key but can change the result", i)
		}
	}
}

// TestRemapResultValidates solves canonical instances for all three
// variants and checks the remapped schedules validate against the original
// (scrambled) instances they answer for.
func TestRemapResultValidates(t *testing.T) {
	for _, variant := range []ccsched.Variant{ccsched.Splittable, ccsched.Preemptive, ccsched.NonPreemptive} {
		orig := scrambled(genInstance(t, "thirds", 24, 6, 4, 2, 9), 11)
		c := canonicalize(orig)
		res, err := ccsched.Solve(context.Background(), c.in, ccsched.Options{Variant: variant, Tier: ccsched.TierApprox})
		if err != nil {
			t.Fatalf("%v: %v", variant, err)
		}
		mapped := remapResult(res, c.perm)
		switch variant {
		case ccsched.Splittable:
			if err := mapped.Split.Validate(orig); err != nil {
				t.Fatalf("%v: remapped explicit schedule invalid: %v", variant, err)
			}
			if err := mapped.CompactSplit.Validate(orig); err != nil {
				t.Fatalf("%v: remapped compact schedule invalid: %v", variant, err)
			}
		case ccsched.Preemptive:
			if err := mapped.Preemptive.Validate(orig); err != nil {
				t.Fatalf("%v: remapped schedule invalid: %v", variant, err)
			}
		case ccsched.NonPreemptive:
			if err := mapped.NonPreemptive.Validate(orig); err != nil {
				t.Fatalf("%v: remapped schedule invalid: %v", variant, err)
			}
		}
		if mapped.Makespan.Cmp(res.Makespan) != 0 {
			t.Fatalf("%v: remap changed the makespan", variant)
		}
	}
}
