// Prometheus text exposition (version 0.0.4) of the MetricsSnapshot. The
// renderer is hand-rolled over the same snapshot the JSON endpoint serves,
// so the two views can never disagree on a value; internal/promtext lints
// the output format in tests and CI.
package server

import (
	"fmt"
	"io"
	"strconv"
)

// promContentType is the exposition-format content type Prometheus expects.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promMetric writes one # HELP / # TYPE header pair plus a single
// unlabeled sample.
func promMetric(w io.Writer, name, typ, help string, value float64) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		name, help, name, typ, name, formatPromValue(value))
}

// formatPromValue renders a sample value: integers without an exponent,
// everything else in Go's shortest float form.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promHistogram writes one cumulative histogram: _bucket{le=...} rows from
// the millisecond snapshot converted to seconds (the Prometheus base unit),
// the +Inf bucket, _sum and _count.
func promHistogram(w io.Writer, name, help string, h LatencySnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, b := range h.Buckets {
		le := "+Inf"
		if b.LeMs != 0 {
			le = strconv.FormatFloat(b.LeMs/1000, 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count)
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatPromValue(h.SumMs/1000))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// promGapHistogram writes one cumulative histogram over dimensionless
// optimality-gap values. Unlike promHistogram there is no
// millisecond-to-second unit conversion: gaps are ratios, already in their
// base unit.
func promGapHistogram(w io.Writer, name, help string, h GapSnapshot) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	for _, b := range h.Buckets {
		le := "+Inf"
		if b.Le != 0 {
			le = strconv.FormatFloat(b.Le, 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count)
	}
	fmt.Fprintf(w, "%s_sum %s\n", name, formatPromValue(h.Sum))
	fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
}

// renderProm writes the full snapshot in exposition format. Counter names
// end in _total, histograms are in seconds (except the dimensionless
// anytime gap), gauges are bare.
func renderProm(w io.Writer, m MetricsSnapshot) {
	c := func(name, help string, v int64) { promMetric(w, name, "counter", help, float64(v)) }
	g := func(name, help string, v float64) { promMetric(w, name, "gauge", help, v) }

	c("ccsched_requests_total", "Solve submissions received, whatever the outcome.", m.RequestsTotal)
	c("ccsched_admitted_total", "Submissions that became a new queued solve.", m.AdmittedTotal)
	c("ccsched_rejected_queue_full_total", "Submissions refused with 429 (queue full).", m.RejectedQueueFullTotal)
	c("ccsched_coalesced_hits_total", "Submissions attached to an identical in-flight solve.", m.CoalescedHitsTotal)
	c("ccsched_result_cache_hits_total", "Submissions answered from the full-result LRU.", m.ResultCacheHitsTotal)
	c("ccsched_solves_total", "Completed solver invocations, one-shot and session.", m.SolvesTotal)
	c("ccsched_solve_errors_total", "Solver invocations that returned an error.", m.SolveErrorsTotal)
	c("ccsched_solve_canceled_total", "Solver errors that were cancellations or deadline expiries.", m.SolveCanceledTotal)
	c("ccsched_panics_recovered_total", "Solves that ended in a recovered panic (internal error).", m.PanicsRecoveredTotal)
	c("ccsched_keys_quarantined_total", "Request keys quarantined after repeated solver panics.", m.KeysQuarantinedTotal)
	c("ccsched_rejected_quarantined_total", "Submissions refused with 422 while their key was quarantined.", m.RejectedQuarantinedTotal)
	c("ccsched_degraded_served_total", "Degraded 2-approx answers served in place of the requested tier.", m.DegradedServedTotal)
	c("ccsched_sessions_created_total", "Sessions ever created.", m.SessionsCreatedTotal)
	c("ccsched_session_resolves_total", "Session re-solves executed by the worker pool.", m.SessionResolvesTotal)
	c("ccsched_snapshot_writes_total", "Session snapshots persisted to the state directory.", m.SnapshotWritesTotal)
	c("ccsched_snapshot_write_errors_total", "Snapshot encode or write failures (non-fatal).", m.SnapshotWriteErrors)
	c("ccsched_snapshot_retries_total", "In-checkpoint snapshot write retries after a failed attempt.", m.SnapshotRetriesTotal)
	c("ccsched_persist_degraded_total", "Transitions into in-memory-only checkpointing after persistent disk failure.", m.PersistDegradedTotal)
	c("ccsched_snapshot_restores_total", "Sessions restored from snapshots (boot or import).", m.SnapshotRestoresTotal)
	c("ccsched_snapshot_corrupt_skipped_total", "Snapshot files skipped on boot as unreadable or stale.", m.SnapshotCorruptSkipped)
	c("ccsched_refinement_rungs_total", "Anytime refinement ladder rungs executed.", m.RefinementRungsTotal)
	c("ccsched_refine_budget_exhausted_total", "Refinement steps parked on an exhausted tenant budget.", m.RefineBudgetExhaustedTotal)
	c("ccsched_feasibility_cache_hits_total", "Feasibility cache lookup hits.", m.FeasibilityCache.Hits)
	c("ccsched_feasibility_cache_misses_total", "Feasibility cache lookup misses.", m.FeasibilityCache.Misses)

	g("ccsched_sessions_active", "Live sessions right now.", float64(m.SessionsActive))
	g("ccsched_queue_depth", "Admission queue occupancy.", float64(m.QueueDepth))
	g("ccsched_queue_capacity", "Admission queue capacity.", float64(m.QueueCapacity))
	g("ccsched_workers", "Solver pool size.", float64(m.Workers))
	g("ccsched_workers_busy", "Workers currently inside the solver.", float64(m.WorkersBusy))
	g("ccsched_in_flight", "Distinct solves admitted but not finished.", float64(m.InFlight))
	g("ccsched_result_cache_entries", "Current full-result LRU size.", float64(m.ResultCacheEntries))
	degraded := 0.0
	if m.CheckpointDegraded {
		degraded = 1
	}
	g("ccsched_checkpoint_degraded", "1 while checkpointing is degraded to in-memory-only, else 0.", degraded)
	g("ccsched_refine_parked", "Anytime ladders currently parked awaiting refinement budget or queue room.", float64(m.RefineParked))
	g("ccsched_watch_streams", "Open /watch SSE streams.", float64(m.WatchStreams))
	g("ccsched_feasibility_cache_entries", "Memoized guess verdicts.", float64(m.FeasibilityCache.Entries))
	g("ccsched_uptime_seconds", "Seconds since the server was created.", m.UptimeSeconds)

	promHistogram(w, "ccsched_solve_latency_seconds", "One-shot solve wall clock.", m.SolveLatency)
	promHistogram(w, "ccsched_session_solve_latency_seconds", "Session re-solve wall clock.", m.SessionSolveLatency)
	promHistogram(w, "ccsched_queue_wait_latency_seconds", "Admission-to-worker-pickup wait.", m.QueueWaitLatency)
	promHistogram(w, "ccsched_restore_latency_seconds", "Session snapshot restore wall clock.", m.RestoreLatency)
	promGapHistogram(w, "ccsched_anytime_gap", "Optimality gap of published anytime improvements (makespan/lower_bound - 1).", m.AnytimeGap)
}
