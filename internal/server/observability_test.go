package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math/big"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ccsched"
	"ccsched/internal/promtext"
	"ccsched/internal/server"
	"ccsched/internal/trace"
)

// syncBuffer is a goroutine-safe bytes.Buffer for capturing log output.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newJSONLogger builds the slog logger a production -log-format json
// deployment would use, writing to w.
func newJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, nil))
}

// tracingSolver is a fake solver whose wall clock is proportional to the
// instance size and that honors opts.Trace, so trace-ring tests control
// exactly which solves rank as "slowest" without real solver variance.
func tracingSolver(msPerJob time.Duration) server.SolveFunc {
	return func(ctx context.Context, in *ccsched.Instance, opts ccsched.Options) (*ccsched.Result, error) {
		select {
		case <-time.After(time.Duration(in.N()) * msPerJob):
		case <-ctx.Done():
			return nil, fmt.Errorf("%w: %w", ccsched.ErrCanceled, ctx.Err())
		}
		res := &ccsched.Result{
			Variant:    opts.Variant,
			Tier:       ccsched.TierApprox,
			Makespan:   new(big.Rat).SetInt64(in.TotalLoad()),
			LowerBound: new(big.Rat).SetInt64(1),
		}
		if opts.Trace {
			col := trace.NewCollector(0)
			root := col.Root("solve")
			root.End()
			res.Trace = col.Export()
		}
		return res, nil
	}
}

// TestPromExposition pins the Prometheus surface of /metrics: content
// negotiation (?format=prom and Accept: text/plain), a lint-clean exposition
// document, and the presence of the counter/gauge/histogram families a
// scrape config would alert on — including the complete _bucket/_sum/_count
// triplet of the queue-wait histogram.
func TestPromExposition(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 2, Solver: tracingSolver(0)})
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}
	if code, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(6, 1), Options: opts}, ""); code != http.StatusOK {
		t.Fatalf("solve: HTTP %d", code)
	}

	fetch := func(query string, accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, ts.URL+"/metrics"+query, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /metrics%s: HTTP %d", query, resp.StatusCode)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	for _, tc := range []struct{ query, accept string }{
		{"?format=prom", ""},
		{"", "text/plain"},
	} {
		body, ctype := fetch(tc.query, tc.accept)
		if !strings.HasPrefix(ctype, "text/plain") {
			t.Fatalf("prom scrape (query=%q accept=%q): Content-Type = %q", tc.query, tc.accept, ctype)
		}
		if err := promtext.Lint([]byte(body)); err != nil {
			t.Fatalf("exposition fails lint: %v\n%s", err, body)
		}
		for _, want := range []string{
			"# TYPE ccsched_requests_total counter",
			"# TYPE ccsched_queue_depth gauge",
			"# TYPE ccsched_solve_latency_seconds histogram",
			"ccsched_solve_latency_seconds_bucket{le=\"+Inf\"}",
			"ccsched_solve_latency_seconds_sum",
			"ccsched_solve_latency_seconds_count",
			"ccsched_queue_wait_latency_seconds_bucket",
			"ccsched_queue_wait_latency_seconds_sum",
			"ccsched_queue_wait_latency_seconds_count",
		} {
			if !strings.Contains(body, want) {
				t.Fatalf("exposition missing %q\n%s", want, body)
			}
		}
	}

	// Default (no format, JSON Accept) stays the JSON snapshot.
	body, ctype := fetch("", "application/json")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Fatalf("JSON default: Content-Type = %q", ctype)
	}
	var m server.MetricsSnapshot
	if err := json.Unmarshal([]byte(body), &m); err != nil {
		t.Fatalf("JSON default does not decode: %v", err)
	}
	if m.QueueWaitLatency.Count < 1 {
		t.Fatalf("queue_wait_latency.count = %d after a solve, want >= 1", m.QueueWaitLatency.Count)
	}
}

// TestTraceRingEviction pins the slowest-traces ring: with capacity 2 and
// three solves of distinct wall clocks, /v1/debug/traces returns exactly the
// two slowest, slowest first, the fastest evicted — and each retained entry
// carries a non-empty span timeline even though no client asked for a trace
// (the ring forces tracing server-side).
func TestTraceRingEviction(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 1, TraceRing: 2, Solver: tracingSolver(10 * time.Millisecond)})
	// n controls the fake solver's wall clock: 2 → ~20ms (evicted),
	// 6 → ~60ms (slowest), 4 → ~40ms.
	for _, n := range []int{2, 6, 4} {
		if code, sr := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(n, int64(n))}, ""); code != http.StatusOK {
			t.Fatalf("solve n=%d: HTTP %d", n, code)
		} else if sr.Result != nil && sr.Result.Trace != nil {
			t.Fatalf("solve n=%d: response carries a trace the client never asked for", n)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr server.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Capacity != 2 || len(tr.Traces) != 2 {
		t.Fatalf("ring: capacity=%d entries=%d, want 2/2", tr.Capacity, len(tr.Traces))
	}
	if tr.Traces[0].N != 6 || tr.Traces[1].N != 4 {
		t.Fatalf("ring order: n=[%d %d], want [6 4] (slowest first, n=2 evicted)", tr.Traces[0].N, tr.Traces[1].N)
	}
	if tr.Traces[0].SolveMs < tr.Traces[1].SolveMs {
		t.Fatalf("ring not sorted by solve_ms descending: %v < %v", tr.Traces[0].SolveMs, tr.Traces[1].SolveMs)
	}
	for i, e := range tr.Traces {
		if e.Trace == nil || len(e.Trace.Spans) == 0 {
			t.Fatalf("ring entry %d has no span timeline", i)
		}
	}

	// ?trace=1 returns the timeline on the wire too, without re-solving
	// untraced state: the request key separates traced and untraced entries.
	if code, sr := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(6, 6)}, "?trace=1"); code != http.StatusOK {
		t.Fatalf("traced solve: HTTP %d", code)
	} else if sr.Result == nil || sr.Result.Trace == nil || len(sr.Result.Trace.Spans) == 0 {
		t.Fatal("traced solve: result.trace missing or empty")
	}
}

// TestTraceRingDisabled pins the off switch: a negative TraceRing keeps
// /v1/debug/traces answering (empty, capacity 0) and solves untraced.
func TestTraceRingDisabled(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 1, TraceRing: -1, Solver: tracingSolver(0)})
	if code, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(3, 1)}, ""); code != http.StatusOK {
		t.Fatalf("solve: HTTP %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/debug/traces")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr server.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	if tr.Capacity != 0 || len(tr.Traces) != 0 {
		t.Fatalf("disabled ring: capacity=%d entries=%d, want 0/0", tr.Capacity, len(tr.Traces))
	}
}

// TestRequestIDAndStructuredLog pins the request-log middleware: a
// client-supplied X-Request-Id is honored and echoed, a missing one is
// minted, and every request emits one structured log line carrying the id,
// path, status and outcome.
func TestRequestIDAndStructuredLog(t *testing.T) {
	var buf syncBuffer
	logger := newJSONLogger(&buf)
	_, ts := startServer(t, server.Config{Workers: 1, Solver: tracingSolver(0), Logger: logger})

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "test-req-42")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "test-req-42" {
		t.Fatalf("client id not echoed: X-Request-Id = %q", got)
	}

	resp2, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-Id"); got == "" {
		t.Fatal("no X-Request-Id minted for a request without one")
	}

	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}
	if code, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(4, 1), Options: opts}, ""); code != http.StatusOK {
		t.Fatalf("solve: HTTP %d", code)
	}

	// The log is written asynchronously to the response only in the sense
	// that the middleware logs after the handler returns; by the time the
	// client has the response the line is flushed.
	logged := buf.String()
	var reqLine map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logged), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if rec["msg"] == "request" && rec["id"] == "test-req-42" {
			reqLine = rec
		}
	}
	if reqLine == nil {
		t.Fatalf("no structured request line with id=test-req-42 in:\n%s", logged)
	}
	if reqLine["path"] != "/healthz" || reqLine["outcome"] != "done" {
		t.Fatalf("request line fields off: %v", reqLine)
	}
	if !strings.Contains(logged, `"msg":"request"`) || !strings.Contains(logged, `"outcome":"admitted"`) {
		t.Fatalf("solve request not logged with an admitted outcome:\n%s", logged)
	}
}
