package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/big"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"ccsched"
	"ccsched/internal/server"
	"ccsched/internal/testutil"
)

// gatedSolver is an instrumented SolveFunc: it counts invocations, signals
// each start, and blocks until released (or its context ends), so tests can
// hold solves in flight deterministically.
type gatedSolver struct {
	calls    atomic.Int64
	started  chan struct{} // one token per solve start
	release  chan struct{} // close to finish all in-flight and future solves
	canceled chan error    // receives the ctx error of each canceled solve
}

func newGatedSolver() *gatedSolver {
	return &gatedSolver{
		started:  make(chan struct{}, 64),
		release:  make(chan struct{}),
		canceled: make(chan error, 64),
	}
}

func (g *gatedSolver) solve(ctx context.Context, in *ccsched.Instance, opts ccsched.Options) (*ccsched.Result, error) {
	g.calls.Add(1)
	g.started <- struct{}{}
	select {
	case <-g.release:
		assign := make([]int64, in.N())
		return &ccsched.Result{
			Variant:       opts.Variant,
			Tier:          ccsched.TierApprox,
			Makespan:      new(big.Rat).SetInt64(in.TotalLoad()),
			LowerBound:    new(big.Rat).SetInt64(1),
			NonPreemptive: &ccsched.NonPreemptiveSchedule{Assign: assign},
		}, nil
	case <-ctx.Done():
		g.canceled <- ctx.Err()
		return nil, fmt.Errorf("%w: %w", ccsched.ErrCanceled, ctx.Err())
	}
}

// awaitStart fails the test if no solve starts within the deadline.
func (g *gatedSolver) awaitStart(t *testing.T) {
	t.Helper()
	select {
	case <-g.started:
	case <-time.After(10 * time.Second):
		t.Fatal("no solve started in 10s")
	}
}

// testInstance builds a small deterministic instance; distinct salts give
// instances with distinct canonical forms.
func testInstance(n int, salt int64) *ccsched.Instance {
	in := &ccsched.Instance{M: 4, Slots: 2}
	for j := 0; j < n; j++ {
		in.P = append(in.P, 1+(int64(j)*7+salt*13)%29+salt)
		in.Class = append(in.Class, j%5)
	}
	return in
}

// shuffle returns a job-order permutation of in (same canonical form).
func shuffle(in *ccsched.Instance, seed int64) *ccsched.Instance {
	rng := rand.New(rand.NewSource(seed))
	out := &ccsched.Instance{M: in.M, Slots: in.Slots}
	for _, j := range rng.Perm(in.N()) {
		out.P = append(out.P, in.P[j])
		out.Class = append(out.Class, in.Class[j])
	}
	return out
}

// startServer wires a Server to an httptest listener and tears both down in
// order (drain, then close the listener).
func startServer(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	s := server.New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
		ts.Close()
	})
	return s, ts
}

// postSolve submits one instance and decodes the response. Failures are
// reported with t.Error (not Fatal) so it is safe to call from the client
// goroutines the tests spawn.
func postSolve(t *testing.T, url string, req server.SolveRequest, query string) (int, server.SolveResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Error(err)
		return 0, server.SolveResponse{}
	}
	resp, err := http.Post(url+"/v1/solve"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Error(err)
		return 0, server.SolveResponse{}
	}
	defer resp.Body.Close()
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Errorf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp.StatusCode, out
}

// waitMetrics polls the server until cond holds or the deadline passes.
func waitMetrics(t *testing.T, s *server.Server, what string, cond func(server.MetricsSnapshot) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond(s.Metrics()) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("metrics never satisfied: %s (now %+v)", what, s.Metrics())
}

// TestCoalescingSingleSolve is the satellite coverage requirement: two
// clients submit the same instance (one job-shuffled) concurrently and the
// instrumented solver proves exactly one underlying solve ran.
func TestCoalescingSingleSolve(t *testing.T) {
	g := newGatedSolver()
	s, ts := startServer(t, server.Config{Workers: 2, Solver: g.solve})
	in := testInstance(20, 1)
	req1 := server.SolveRequest{Instance: in, Options: ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}}
	req2 := server.SolveRequest{Instance: shuffle(in, 42), Options: req1.Options}

	type reply struct {
		status int
		resp   server.SolveResponse
	}
	replies := make(chan reply, 2)
	go func() {
		st, r := postSolve(t, ts.URL, req1, "")
		replies <- reply{st, r}
	}()
	g.awaitStart(t) // first request is solving
	go func() {
		st, r := postSolve(t, ts.URL, req2, "")
		replies <- reply{st, r}
	}()
	// The second submission must coalesce, not start a second solve.
	waitMetrics(t, s, "coalesced==1", func(m server.MetricsSnapshot) bool { return m.CoalescedHitsTotal == 1 })
	close(g.release)

	for i := 0; i < 2; i++ {
		r := <-replies
		if r.status != http.StatusOK || r.resp.Status != server.StatusDone {
			t.Fatalf("reply %d: HTTP %d %+v", i, r.status, r.resp)
		}
		if r.resp.Result.Makespan.Cmp(new(big.Rat).SetInt64(in.TotalLoad())) != 0 {
			t.Fatalf("reply %d: wrong makespan %s", i, r.resp.Result.Makespan)
		}
	}
	if n := g.calls.Load(); n != 1 {
		t.Fatalf("%d solver invocations, want exactly 1", n)
	}
	m := s.Metrics()
	if m.AdmittedTotal != 1 || m.SolvesTotal != 1 || m.CoalescedHitsTotal != 1 {
		t.Fatalf("metrics %+v: want admitted=1 solves=1 coalesced=1", m)
	}
}

// TestResultCacheHit checks a later identical submission is served from the
// full-result LRU without a second solve.
func TestResultCacheHit(t *testing.T) {
	g := newGatedSolver()
	close(g.release) // solves return immediately
	s, ts := startServer(t, server.Config{Workers: 2, Solver: g.solve})
	in := testInstance(16, 2)
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}

	if st, r := postSolve(t, ts.URL, server.SolveRequest{Instance: in, Options: opts}, ""); st != http.StatusOK || r.Cached {
		t.Fatalf("first: HTTP %d cached=%v", st, r.Cached)
	}
	st, r := postSolve(t, ts.URL, server.SolveRequest{Instance: shuffle(in, 7), Options: opts}, "")
	if st != http.StatusOK || !r.Cached {
		t.Fatalf("second: HTTP %d cached=%v, want cache hit", st, r.Cached)
	}
	if g.calls.Load() != 1 {
		t.Fatalf("%d solver invocations, want 1", g.calls.Load())
	}
	if m := s.Metrics(); m.ResultCacheHitsTotal != 1 {
		t.Fatalf("result cache hits %d, want 1", m.ResultCacheHitsTotal)
	}
}

// TestQueueOverflow checks admission control: with one busy worker and a
// one-slot queue, a third distinct submission is refused with 429.
func TestQueueOverflow(t *testing.T) {
	g := newGatedSolver()
	s, ts := startServer(t, server.Config{Workers: 1, QueueDepth: 1, Solver: g.solve})
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}

	replies := make(chan int, 2)
	go func() {
		st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 1), Options: opts}, "")
		replies <- st
	}()
	g.awaitStart(t) // worker busy on A
	go func() {
		st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 2), Options: opts}, "")
		replies <- st
	}()
	waitMetrics(t, s, "queue full", func(m server.MetricsSnapshot) bool { return m.QueueDepth == 1 })

	st, r := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 3), Options: opts}, "")
	if st != http.StatusTooManyRequests {
		t.Fatalf("third submission: HTTP %d %+v, want 429", st, r)
	}
	close(g.release)
	for i := 0; i < 2; i++ {
		if st := <-replies; st != http.StatusOK {
			t.Fatalf("queued submission %d: HTTP %d", i, st)
		}
	}
	if m := s.Metrics(); m.RejectedQueueFullTotal != 1 {
		t.Fatalf("rejected %d, want 1", m.RejectedQueueFullTotal)
	}
}

// TestDeadlinePropagation checks the request's timeout_ms becomes the Solve
// context deadline and maps to HTTP 408, and that the timed-out verdict is
// not cached.
func TestDeadlinePropagation(t *testing.T) {
	g := newGatedSolver() // never released before the deadline
	s, ts := startServer(t, server.Config{Workers: 1, Solver: g.solve})
	in := testInstance(12, 4)
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}

	st, r := postSolve(t, ts.URL, server.SolveRequest{Instance: in, Options: opts, TimeoutMs: 50}, "")
	if st != http.StatusRequestTimeout || r.Status != server.StatusError {
		t.Fatalf("HTTP %d %+v, want 408/error", st, r)
	}
	if !strings.Contains(r.Error, "canceled") && !strings.Contains(r.Error, "deadline") {
		t.Fatalf("error %q does not mention cancellation", r.Error)
	}
	select {
	case err := <-g.canceled:
		if err != context.DeadlineExceeded {
			t.Fatalf("solver saw %v, want DeadlineExceeded", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solver context never expired")
	}
	if m := s.Metrics(); m.SolveCanceledTotal != 1 {
		t.Fatalf("canceled count %d, want 1", m.SolveCanceledTotal)
	}
	// Cancellations must not poison the result cache: resubmitting with a
	// workable deadline runs a fresh solve.
	close(g.release)
	st, r = postSolve(t, ts.URL, server.SolveRequest{Instance: in, Options: opts}, "")
	if st != http.StatusOK || r.Cached {
		t.Fatalf("resubmission: HTTP %d cached=%v, want fresh 200", st, r.Cached)
	}
	if g.calls.Load() != 2 {
		t.Fatalf("%d solver invocations, want 2", g.calls.Load())
	}
}

// TestClientDisconnectCancels checks that when every waiter disconnects,
// the flight's Solve context is canceled so the worker slot frees up.
func TestClientDisconnectCancels(t *testing.T) {
	g := newGatedSolver()
	_, ts := startServer(t, server.Config{Workers: 1, Solver: g.solve})
	body, _ := json.Marshal(server.SolveRequest{
		Instance: testInstance(14, 5),
		Options:  ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox},
	})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/solve", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	errs := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errs <- err
	}()
	g.awaitStart(t)
	cancel() // the only client goes away
	select {
	case err := <-g.canceled:
		if err != context.Canceled {
			t.Fatalf("solver saw %v, want Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("solve context not canceled after client disconnect")
	}
	if err := <-errs; err == nil {
		t.Fatal("client request unexpectedly succeeded")
	}
}

// TestAsyncSubmitAndPoll checks wait=0 submission returns 202 immediately,
// the flight survives having no waiter (pinned), and a later poll with wait
// returns the finished result.
func TestAsyncSubmitAndPoll(t *testing.T) {
	g := newGatedSolver()
	_, ts := startServer(t, server.Config{Workers: 1, Solver: g.solve})
	st, r := postSolve(t, ts.URL, server.SolveRequest{
		Instance: testInstance(10, 6),
		Options:  ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox},
	}, "?wait=0")
	if st != http.StatusAccepted || r.ID == "" {
		t.Fatalf("async submit: HTTP %d %+v, want 202 with id", st, r)
	}
	g.awaitStart(t)
	// No waiter is attached; the flight must keep running (not cancel).
	select {
	case err := <-g.canceled:
		t.Fatalf("pinned async flight canceled: %v", err)
	case <-time.After(100 * time.Millisecond):
	}
	close(g.release)
	resp, err := http.Get(ts.URL + "/v1/jobs/" + r.ID + "?wait=10s")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || out.Status != server.StatusDone || out.Result == nil {
		t.Fatalf("poll: HTTP %d %+v, want done with result", resp.StatusCode, out)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/nonexistent"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown job: HTTP %d, want 404", resp.StatusCode)
		}
	}
}

// TestShutdownDrains checks graceful shutdown: admission closes with 503,
// queued work still completes, clients receive their results, and the
// worker goroutines exit.
func TestShutdownDrains(t *testing.T) {
	g := newGatedSolver()
	s := server.New(server.Config{Workers: 1, Solver: g.solve})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}
	// Baseline the goroutine count with the listener and a warm keepalive
	// connection already up, so the later comparison isolates the pipeline's
	// own goroutines (workers + waiters).
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}
	leak := testutil.LeakCheck(t)

	replies := make(chan int, 2)
	go func() {
		st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 1), Options: opts}, "")
		replies <- st
	}()
	g.awaitStart(t)
	go func() {
		st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 2), Options: opts}, "")
		replies <- st
	}()
	waitMetrics(t, s, "second request queued", func(m server.MetricsSnapshot) bool { return m.QueueDepth == 1 })

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		shutdownErr <- s.Shutdown(ctx)
	}()
	// Liveness stays 200 while draining; readiness is what flips to 503.
	waitMetrics(t, s, "draining", func(m server.MetricsSnapshot) bool {
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			return false
		}
		resp.Body.Close()
		return resp.StatusCode == http.StatusServiceUnavailable
	})
	if st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 3), Options: opts}, ""); st != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown submission: HTTP %d, want 503", st)
	}
	close(g.release) // let the drain finish
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown returned %v", err)
	}
	for i := 0; i < 2; i++ {
		if st := <-replies; st != http.StatusOK {
			t.Fatalf("drained request %d: HTTP %d, want 200", i, st)
		}
	}
	// The worker pool and every waiter must be gone; the shared checker
	// drops idle keepalive connections while it retries.
	leak()
}

// TestShutdownForceCancelsInFlight checks the drain deadline: when the
// grace context expires, in-flight solves are canceled via context and
// Shutdown still returns (with the context's error).
func TestShutdownForceCancelsInFlight(t *testing.T) {
	g := newGatedSolver() // never released: the solve only ends by cancellation
	s := server.New(server.Config{Workers: 1, Solver: g.solve})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	go postSolve(t, ts.URL, server.SolveRequest{
		Instance: testInstance(10, 9),
		Options:  ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox},
	}, "")
	g.awaitStart(t)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("forced shutdown returned %v, want DeadlineExceeded", err)
	}
	select {
	case <-g.canceled:
	default:
		t.Fatal("in-flight solve was not canceled by the forced shutdown")
	}
}

// TestEndToEndRealSolver drives the full pipeline with the real
// ccsched.Solve: duplicate scrambled submissions dedup, and each response's
// schedule validates against that submitter's own instance.
func TestEndToEndRealSolver(t *testing.T) {
	s, ts := startServer(t, server.Config{Workers: 2})
	in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
		N: 24, Classes: 6, Machines: 4, Slots: 2, PMax: 40, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}
	st1, r1 := postSolve(t, ts.URL, server.SolveRequest{Instance: in, Options: opts}, "")
	dup := shuffle(in, 99)
	st2, r2 := postSolve(t, ts.URL, server.SolveRequest{Instance: dup, Options: opts}, "")
	if st1 != http.StatusOK || st2 != http.StatusOK {
		t.Fatalf("HTTP %d / %d", st1, st2)
	}
	if !r2.Cached && !r2.Coalesced {
		t.Fatalf("duplicate was neither cached nor coalesced: %+v", r2)
	}
	if r1.Result.Makespan.Cmp(r2.Result.Makespan) != 0 {
		t.Fatalf("duplicate makespans differ: %s vs %s", r1.Result.Makespan, r2.Result.Makespan)
	}
	if err := r1.Result.NonPreemptive.Validate(in); err != nil {
		t.Fatalf("first schedule invalid for its instance: %v", err)
	}
	if err := r2.Result.NonPreemptive.Validate(dup); err != nil {
		t.Fatalf("remapped duplicate schedule invalid for its instance: %v", err)
	}
	m := s.Metrics()
	if m.SolvesTotal != 1 {
		t.Fatalf("%d solves for 2 identical requests, want 1", m.SolvesTotal)
	}
	if m.SolveLatency.Count != 1 || m.SolveLatency.Buckets[len(m.SolveLatency.Buckets)-1].Count != 1 {
		t.Fatalf("latency histogram %+v, want one observation", m.SolveLatency)
	}
}

// TestMalformedWaitRejected checks ?wait= values that are neither a
// duration nor bare milliseconds get a 400 instead of being misread.
func TestMalformedWaitRejected(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 1})
	st, _ := postSolve(t, ts.URL, server.SolveRequest{
		Instance: testInstance(8, 1),
		Options:  ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox},
	}, "?wait=30m5")
	if st != http.StatusBadRequest {
		t.Fatalf("wait=30m5: HTTP %d, want 400", st)
	}
}

// TestMetricsAndHealthEndpoints checks both read-only endpoints decode and
// carry the configured gauges.
func TestMetricsAndHealthEndpoints(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 3, QueueDepth: 17})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var m server.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if m.Workers != 3 || m.QueueCapacity != 17 {
		t.Fatalf("metrics gauges %+v, want workers=3 cap=17", m)
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h server.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Workers != 3 {
		t.Fatalf("healthz: HTTP %d %+v", resp.StatusCode, h)
	}
}
