package server_test

// Chaos suite: every test arms a fault at a registered injection point and
// asserts the process-wide resilience invariant — an armed fault yields
// either a correct result or a clean typed error, never a wrong makespan, a
// leaked goroutine, or a dead process. Each test ends with a goroutine-leak
// check and a deferred faultinject.Reset so faults never bleed across tests.

import (
	"bytes"
	"context"
	"encoding/json"
	"math/big"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ccsched"
	"ccsched/internal/faultinject"
	"ccsched/internal/server"
	"ccsched/internal/testutil"
)

// postSolveRaw submits one solve request and returns the raw response, so
// chaos tests can read headers (Retry-After) alongside the decoded body.
func postSolveRaw(t *testing.T, url string, req server.SolveRequest, query string) (*http.Response, server.SolveResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/solve"+query, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out server.SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response (HTTP %d): %v", resp.StatusCode, err)
	}
	return resp, out
}

// assertTwoApprox fails unless a degraded result carries a certified lower
// bound with makespan within a factor of two of it.
func assertTwoApprox(t *testing.T, res *ccsched.Result) {
	t.Helper()
	if !res.Degraded {
		t.Fatalf("result not marked degraded: %+v", res)
	}
	if res.LowerBound == nil || res.Makespan == nil {
		t.Fatalf("degraded result missing certificate: makespan=%v lb=%v", res.Makespan, res.LowerBound)
	}
	two := new(big.Rat).Mul(big.NewRat(2, 1), res.LowerBound)
	if res.Makespan.Cmp(two) > 0 {
		t.Fatalf("degraded makespan %s > 2x lower bound %s", res.Makespan.RatString(), res.LowerBound.RatString())
	}
	if res.Makespan.Cmp(res.LowerBound) < 0 {
		t.Fatalf("makespan %s below its own lower bound %s", res.Makespan.RatString(), res.LowerBound.RatString())
	}
}

// TestChaosPanicQuarantine walks one request key through the whole panic
// lifecycle: an armed panic at the flight runner becomes a clean HTTP 500
// (process alive, result never cached), the second panic trips the
// quarantine (422 + Retry-After for new submissions of that key), and after
// the TTL one submission is let through and — with the fault exhausted —
// solves normally, clearing the streak.
func TestChaosPanicQuarantine(t *testing.T) {
	defer faultinject.Reset()
	s, ts := startServer(t, server.Config{
		Workers:                  2,
		PanicQuarantineThreshold: 2,
		PanicQuarantineTTL:       300 * time.Millisecond,
	})
	leak := testutil.LeakCheck(t)
	if err := faultinject.Arm("server.worker", faultinject.Spec{Mode: faultinject.ModePanic, Hits: 2}); err != nil {
		t.Fatal(err)
	}
	in := testInstance(12, 1)
	req := server.SolveRequest{Instance: in, Options: ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierApprox}}

	for i := 0; i < 2; i++ {
		st, out := postSolve(t, ts.URL, req, "")
		if st != http.StatusInternalServerError || out.Status != server.StatusError {
			t.Fatalf("panic solve %d: HTTP %d %+v, want 500 error", i, st, out)
		}
	}
	m := s.Metrics()
	if m.PanicsRecoveredTotal != 2 || m.KeysQuarantinedTotal != 1 {
		t.Fatalf("metrics %+v: want panics_recovered=2 keys_quarantined=1", m)
	}
	// The key is quarantined: refused up front, no worker touched.
	resp, out := postSolveRaw(t, ts.URL, req, "")
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("quarantined submission: HTTP %d %+v, want 422", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("quarantine rejection missing Retry-After header")
	}
	if m := s.Metrics(); m.RejectedQuarantinedTotal != 1 {
		t.Fatalf("rejected_quarantined %d, want 1", m.RejectedQuarantinedTotal)
	}
	// Unrelated keys are unaffected by the quarantine.
	if st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(12, 5), Options: req.Options}, ""); st != http.StatusOK {
		t.Fatalf("unrelated key during quarantine: HTTP %d, want 200", st)
	}
	// After the TTL one re-test goes through; the fault's hit budget is
	// spent, so it solves cleanly and resets the streak.
	time.Sleep(350 * time.Millisecond)
	st, out := postSolve(t, ts.URL, req, "")
	if st != http.StatusOK || out.Status != server.StatusDone {
		t.Fatalf("post-TTL re-test: HTTP %d %+v, want done", st, out)
	}
	leak()
}

// TestChaosSoftTimeoutDegrades holds the full-tier solve hostage with a
// gated solver and checks the soft deadline answers with the certified
// 2-approx, a coalesced second waiter reuses the cached degraded answer,
// and the full solve still publishes (retiring the degraded twin).
func TestChaosSoftTimeoutDegrades(t *testing.T) {
	g := newGatedSolver()
	s, ts := startServer(t, server.Config{Workers: 1, Solver: g.solve})
	leak := testutil.LeakCheck(t)
	in := testInstance(20, 2)
	req := server.SolveRequest{
		Instance:      in,
		Options:       ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierAuto},
		SoftTimeoutMs: 50,
	}
	st, out := postSolve(t, ts.URL, req, "")
	if st != http.StatusOK || out.Status != server.StatusDone || out.Result == nil {
		t.Fatalf("degraded solve: HTTP %d %+v", st, out)
	}
	assertTwoApprox(t, out.Result)
	if m := s.Metrics(); m.DegradedServedTotal != 1 {
		t.Fatalf("degraded_served %d, want 1", m.DegradedServedTotal)
	}
	// A second waiter coalesces onto the still-gated flight and is served
	// the cached degraded answer — no second fallback solve, no second
	// full solve.
	st, out2 := postSolve(t, ts.URL, req, "")
	if st != http.StatusOK || !out2.Result.Degraded {
		t.Fatalf("second degraded solve: HTTP %d %+v", st, out2)
	}
	if out2.Result.Makespan.Cmp(out.Result.Makespan) != 0 {
		t.Fatalf("degraded answers disagree: %s vs %s", out2.Result.Makespan.RatString(), out.Result.Makespan.RatString())
	}
	if n := g.calls.Load(); n != 1 {
		t.Fatalf("%d full-tier solver invocations, want 1 (degraded answers must not spawn more)", n)
	}
	// Release the full solve; its publish replaces the degraded twin, so the
	// next identical request gets the full answer from the result cache.
	close(g.release)
	waitMetrics(t, s, "full solve published", func(m server.MetricsSnapshot) bool { return m.SolvesTotal == 1 })
	st, out3 := postSolve(t, ts.URL, req, "")
	if st != http.StatusOK || out3.Result == nil || out3.Result.Degraded {
		t.Fatalf("post-publish solve: HTTP %d %+v, want full (non-degraded) result", st, out3)
	}
	if !out3.Cached {
		t.Fatalf("post-publish solve not served from the result cache: %+v", out3)
	}
	leak()
}

// TestChaosDegradedThenFullBitIdentical runs the real solver with delayed
// PTAS probes: the soft deadline serves the degraded 2-approx, the full
// solve finishes after the fault clears, and the published full result is
// bit-identical to a cold in-process solve of the same instance.
func TestChaosDegradedThenFullBitIdentical(t *testing.T) {
	defer faultinject.Reset()
	s, ts := startServer(t, server.Config{Workers: 1})
	leak := testutil.LeakCheck(t)
	if err := faultinject.Arm("ptas.probe", faultinject.Spec{Mode: faultinject.ModeDelay, Delay: 100 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	in := testInstance(24, 3)
	opts := ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 0.5}
	req := server.SolveRequest{Instance: in, Options: opts, SoftTimeoutMs: 30}

	st, out := postSolve(t, ts.URL, req, "?wait=30s")
	if st != http.StatusOK || out.Result == nil {
		t.Fatalf("degraded solve: HTTP %d %+v", st, out)
	}
	assertTwoApprox(t, out.Result)
	// Clear the delay so the pinned full solve finishes promptly.
	faultinject.Clear("ptas.probe")
	waitMetrics(t, s, "full solve published", func(m server.MetricsSnapshot) bool {
		return m.SolvesTotal == 1 && m.SolveErrorsTotal == 0
	})
	st, full := postSolve(t, ts.URL, req, "")
	if st != http.StatusOK || full.Result == nil || full.Result.Degraded {
		t.Fatalf("post-publish solve: HTTP %d %+v, want full result", st, full)
	}
	cold, err := ccsched.Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if full.Result.Makespan.Cmp(cold.Makespan) != 0 {
		t.Fatalf("published full makespan %s != cold solve %s (bit-identical required)",
			full.Result.Makespan.RatString(), cold.Makespan.RatString())
	}
	leak()
}

// TestChaosSaturationDegrades fills the pool and queue, then checks a
// saturated submission with a soft deadline is answered degraded while one
// without gets 429 + Retry-After.
func TestChaosSaturationDegrades(t *testing.T) {
	g := newGatedSolver()
	s, ts := startServer(t, server.Config{Workers: 1, QueueDepth: 1, Solver: g.solve})
	leak := testutil.LeakCheck(t)
	opts := ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierAuto}
	replies := make(chan int, 2)
	go func() {
		st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 1), Options: opts}, "")
		replies <- st
	}()
	g.awaitStart(t) // worker busy on A
	go func() {
		st, _ := postSolve(t, ts.URL, server.SolveRequest{Instance: testInstance(10, 2), Options: opts}, "")
		replies <- st
	}()
	waitMetrics(t, s, "queue full", func(m server.MetricsSnapshot) bool { return m.QueueDepth == 1 })

	// Saturated + soft deadline: the admission rejection converts into a
	// direct degraded answer instead of a bounce.
	st, out := postSolve(t, ts.URL, server.SolveRequest{
		Instance: testInstance(10, 3), Options: opts, SoftTimeoutMs: 100,
	}, "")
	if st != http.StatusOK || out.Result == nil {
		t.Fatalf("saturated degraded solve: HTTP %d %+v", st, out)
	}
	assertTwoApprox(t, out.Result)
	// Saturated + degradation disabled: classic 429, now with Retry-After.
	resp, _ := postSolveRaw(t, ts.URL, server.SolveRequest{
		Instance: testInstance(10, 4), Options: opts, SoftTimeoutMs: -1,
	}, "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated solve: HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}
	close(g.release)
	for i := 0; i < 2; i++ {
		if st := <-replies; st != http.StatusOK {
			t.Fatalf("held request %d: HTTP %d", i, st)
		}
	}
	leak()
}

// TestChaosCheckpointSelfHealing is the self-healing checkpoint story end to
// end: an armed short-write makes snapshot writes fail through their
// retries, checkpointing degrades to in-memory-only (metered, 503 on
// /readyz), sessions keep serving, and once the fault clears the disk probe
// restores durability without a restart — the dirty session's snapshot
// lands on disk.
func TestChaosCheckpointSelfHealing(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	s, ts := startServer(t, server.Config{
		Workers:            1,
		StateDir:           dir,
		CheckpointInterval: 25 * time.Millisecond,
	})
	leak := testutil.LeakCheck(t)
	// One session, solved, checkpointed cleanly first.
	body, _ := json.Marshal(server.SessionCreateRequest{
		Instance: testInstance(10, 1),
		Options:  ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierApprox},
	})
	resp, err := http.Post(ts.URL+"/v1/sessions", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var sess server.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sess); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || sess.Status != server.StatusDone {
		t.Fatalf("session create: HTTP %d %+v", resp.StatusCode, sess)
	}
	waitMetrics(t, s, "first checkpoint", func(m server.MetricsSnapshot) bool { return m.SnapshotWritesTotal >= 1 })

	if err := faultinject.Arm("server.snapshot.write", faultinject.Spec{Mode: faultinject.ModeShortWrite}); err != nil {
		t.Fatal(err)
	}
	// Dirty the session so the checkpointer has something to write.
	patch, _ := json.Marshal(server.SessionDelta{Add: []server.SessionJob{{P: 17, Class: 0}}})
	preq, _ := http.NewRequest(http.MethodPatch, ts.URL+"/v1/sessions/"+sess.SessionID, bytes.NewReader(patch))
	presp, err := http.DefaultClient.Do(preq)
	if err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("patch: HTTP %d", presp.StatusCode)
	}
	// Writes fail through their retries; the streak degrades checkpointing.
	waitMetrics(t, s, "checkpointing degraded", func(m server.MetricsSnapshot) bool {
		return m.CheckpointDegraded && m.SnapshotRetriesTotal >= 1 && m.SnapshotWriteErrors >= 1
	})
	if m := s.Metrics(); m.PersistDegradedTotal != 1 {
		t.Fatalf("persist_degraded_total %d, want 1", m.PersistDegradedTotal)
	}
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var ready server.ReadyResponse
	if err := json.NewDecoder(rresp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || ready.Ready {
		t.Fatalf("readyz while degraded: HTTP %d %+v, want 503 not-ready", rresp.StatusCode, ready)
	}
	// Liveness must NOT flip — the process is serving fine.
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Fatalf("healthz while degraded: HTTP %d, want 200", hresp.StatusCode)
	}
	// The session keeps serving while durability is down.
	gresp, err := http.Get(ts.URL + "/v1/sessions/" + sess.SessionID)
	if err != nil {
		t.Fatal(err)
	}
	gresp.Body.Close()
	if gresp.StatusCode != http.StatusOK {
		t.Fatalf("session get while degraded: HTTP %d, want 200", gresp.StatusCode)
	}

	// Disk "recovers": the probe succeeds, durability resumes, and the dirty
	// session's snapshot lands without a restart.
	writesBefore := s.Metrics().SnapshotWritesTotal
	faultinject.Clear("server.snapshot.write")
	waitMetrics(t, s, "durability resumed", func(m server.MetricsSnapshot) bool {
		return !m.CheckpointDegraded && m.SnapshotWritesTotal > writesBefore
	})
	rresp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp2.Body.Close()
	if rresp2.StatusCode != http.StatusOK {
		t.Fatalf("readyz after recovery: HTTP %d, want 200", rresp2.StatusCode)
	}
	if _, err := os.Stat(filepath.Join(dir, sess.SessionID+".ccsnap")); err != nil {
		t.Fatalf("snapshot file after recovery: %v", err)
	}
	leak()
}

// TestChaosInjectedErrorIsTyped checks an armed error fault at the flight
// runner surfaces as a clean typed error (HTTP 500, "injected" named in the
// message), is never cached, and the next un-faulted solve of the same key
// answers bit-identically to a cold solve.
func TestChaosInjectedErrorIsTyped(t *testing.T) {
	defer faultinject.Reset()
	_, ts := startServer(t, server.Config{Workers: 1})
	leak := testutil.LeakCheck(t)
	if err := faultinject.Arm("server.worker", faultinject.Spec{Mode: faultinject.ModeError, Msg: "chaos", Hits: 1}); err != nil {
		t.Fatal(err)
	}
	in := testInstance(16, 6)
	req := server.SolveRequest{Instance: in, Options: ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 1}}
	st, out := postSolve(t, ts.URL, req, "")
	if st != http.StatusInternalServerError || out.Status != server.StatusError {
		t.Fatalf("faulted solve: HTTP %d %+v, want 500 error", st, out)
	}
	if !strings.Contains(out.Error, "injected") {
		t.Fatalf("error %q does not name the injected fault", out.Error)
	}
	// The injected failure was not cached: the retry solves for real and its
	// answer matches a cold in-process solve bit for bit.
	st, out = postSolve(t, ts.URL, req, "")
	if st != http.StatusOK || out.Result == nil {
		t.Fatalf("retry after fault: HTTP %d %+v", st, out)
	}
	cold, err := ccsched.Solve(context.Background(), in, req.Options)
	if err != nil {
		t.Fatal(err)
	}
	if out.Result.Makespan.Cmp(cold.Makespan) != 0 {
		t.Fatalf("post-fault makespan %s != cold %s", out.Result.Makespan.RatString(), cold.Makespan.RatString())
	}
	leak()
}

// TestChaosEngineErrorDegradesGracefully pins the engine layer's half of the
// chaos invariant: an injected probe error inside the PTAS is absorbed by
// its certified approx fallback — the solve still answers HTTP 200 with a
// feasible schedule within 2x the lower bound, never a wrong makespan.
func TestChaosEngineErrorDegradesGracefully(t *testing.T) {
	defer faultinject.Reset()
	_, ts := startServer(t, server.Config{Workers: 1})
	leak := testutil.LeakCheck(t)
	if err := faultinject.Arm("ptas.probe", faultinject.Spec{Mode: faultinject.ModeError, Msg: "chaos", Hits: 1}); err != nil {
		t.Fatal(err)
	}
	in := testInstance(16, 7)
	req := server.SolveRequest{Instance: in, Options: ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 1}}
	st, out := postSolve(t, ts.URL, req, "")
	if st != http.StatusOK || out.Result == nil {
		t.Fatalf("faulted solve: HTTP %d %+v, want graceful 200", st, out)
	}
	if out.Result.LowerBound != nil {
		two := new(big.Rat).Mul(big.NewRat(2, 1), out.Result.LowerBound)
		if out.Result.Makespan.Cmp(two) > 0 {
			t.Fatalf("fallback makespan %s > 2x lower bound %s", out.Result.Makespan.RatString(), out.Result.LowerBound.RatString())
		}
	}
	leak()
}
