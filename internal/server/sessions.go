// Scheduling sessions over HTTP: a session holds a live instance plus the
// solver's warm state (ccsched.Session) on the server, and clients send
// deltas instead of full instances:
//
//	POST   /v1/sessions        {instance, options, timeout_ms} → create + solve
//	PATCH  /v1/sessions/{id}   {add, remove, resize, set_machines, set_slots}
//	                           → apply deltas + incremental re-solve
//	GET    /v1/sessions/{id}   → current schedule (re-solving if needed)
//	DELETE /v1/sessions/{id}   → drop the session and its warm state
//
// Session re-solves run through the same pipeline as /v1/solve: the current
// instance is canonicalized, the result LRU and in-flight coalescing are
// consulted first (a re-solve identical to anything already solved — by a
// one-shot request or another session — costs nothing), and misses are
// admitted into the bounded worker queue under the same deadline plumbing;
// the flight's runner executes the session's warm re-solve instead of a
// stateless ccsched.Solve and publishes the result in canonical order, so
// one-shot requests coalesce onto session flights and vice versa. The
// session parity invariant (re-solve makespan ≡ cold solve of the mutated
// instance, proven by the ccsched differential tests) is what makes this
// sharing sound.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"ccsched"
)

// svcSession is one live server-side session. mu serializes delta
// application and re-solves (the warm state belongs to one solve at a
// time); concurrent PATCHes to the same session queue up behind it.
type svcSession struct {
	id string

	mu      sync.Mutex
	sess    *ccsched.Session
	opts    ccsched.Options // sanitized; part of every re-solve's request key
	timeout time.Duration   // default per-re-solve deadline from create
	// trace, set at create (?trace=1 or options.trace), keeps every
	// re-solve's span timeline in this session's responses; individual
	// requests can still opt in per-call with ?trace=1.
	trace bool

	// any is the anytime refinement state of a TierAnytime session (nil for
	// every other tier). Set before the session becomes visible and never
	// reassigned, so handlers read it without a lock.
	any *anytimeRun

	// ckptGen/ckptRes are the session generation and resolve count captured
	// by the last successful checkpoint; the checkpointer skips sessions
	// where both still match. Generation alone is not enough — warm state
	// (cache verdicts, seeds) grows on solves, which do not bump the
	// generation, so a checkpoint taken between a delta and its re-solve
	// must leave the session dirty for the next tick. Atomics so the
	// checkpointer never waits behind a re-solve holding mu.
	ckptGen atomic.Uint64
	ckptRes atomic.Int64
}

// ErrTooManySessions reports that Config.MaxSessions live sessions already
// exist; the HTTP layer maps it to 429.
var ErrTooManySessions = errors.New("server: too many live sessions")

// createSession registers a new session under the cap. tenant labels a
// TierAnytime session's refinement budget bucket (ignored otherwise).
func (s *Server) createSession(in *ccsched.Instance, opts ccsched.Options, timeout time.Duration, tenant string) (*svcSession, error) {
	if in.N() > s.cfg.MaxJobs {
		return nil, fmt.Errorf("%w: %d jobs > %d", ErrInstanceTooLarge, in.N(), s.cfg.MaxJobs)
	}
	opts = sanitizeOptions(opts, s.cfg.EngineParallelism, s.traces != nil)
	// Sessions carry their own feasibility cache (created by NewSession) so
	// guess verdicts stay hot under the session key and die with it; the
	// wire cannot name a cache, so clear whatever decoding left.
	opts.Cache = nil
	sess, err := ccsched.NewSession(in, opts)
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	if len(s.sessions) >= s.cfg.MaxSessions {
		return nil, fmt.Errorf("%w: %d live", ErrTooManySessions, len(s.sessions))
	}
	// Mint past ids already taken by restored or imported sessions.
	var id string
	for {
		s.sessionSeq++
		id = fmt.Sprintf("s-%016x", s.sessionSeq)
		if _, taken := s.sessions[id]; !taken {
			break
		}
	}
	sv := &svcSession{
		id:      id,
		sess:    sess,
		opts:    opts,
		timeout: timeout,
	}
	s.armAnytime(sv, tenant)
	s.sessions[sv.id] = sv
	s.met.sessionsCreated.Add(1)
	return sv, nil
}

// dropSession removes a session; reports whether it existed.
func (s *Server) dropSession(id string) bool {
	s.mu.Lock()
	sv, ok := s.sessions[id]
	if !ok {
		s.mu.Unlock()
		return false
	}
	delete(s.sessions, id)
	s.removeSnapshot(id)
	s.mu.Unlock()
	dropRefine(s, sv.any)
	return true
}

// lookupSession finds a live session.
func (s *Server) lookupSession(id string) (*svcSession, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.sessions[id]
	return sv, ok
}

// handleSessionCreate creates a session and answers its initial solve.
func (s *Server) handleSessionCreate(w http.ResponseWriter, r *http.Request) {
	wait, err := parseWait(r, defaultWait)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var req SessionCreateRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	if req.Instance == nil {
		writeError(w, http.StatusBadRequest, "missing \"instance\"")
		return
	}
	s.met.requests.Add(1)
	tenant := r.Header.Get("X-Tenant-Id")
	sv, err := s.createSession(req.Instance, req.Options, time.Duration(req.TimeoutMs)*time.Millisecond, tenant)
	if err != nil {
		s.writeSessionError(w, "", err)
		return
	}
	sv.trace = wantTrace(r, req.Options.Trace)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.any != nil {
		// Anytime sessions bypass the flight pipeline: the first answer is
		// the millisecond 2-approx, solved inline, and the refinement pool
		// takes over in the background the moment the response is written.
		s.solveSessionAnytime(w, r, sv, 0)
		s.enqueueRefine(sv.any)
		return
	}
	// The session outlives an initial-solve admission failure (queue full):
	// the client holds the id and retries the solve with GET. Sessions are
	// bounded by MaxSessions and freed by DELETE either way.
	s.solveSession(w, r, sv, 0, wait)
}

// handleSessionPatch applies a delta batch and answers the re-solve.
func (s *Server) handleSessionPatch(w http.ResponseWriter, r *http.Request) {
	wait, err := parseWait(r, defaultWait)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sv, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	var delta SessionDelta
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&delta); err != nil {
		writeError(w, http.StatusBadRequest, "decoding delta: %v", err)
		return
	}
	s.met.requests.Add(1)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if err := s.applyDelta(sv, &delta); err != nil {
		if errors.Is(err, ErrInstanceTooLarge) {
			s.writeSessionError(w, sv.id, err)
			return
		}
		// Anything else is a malformed delta (unknown id, bad size): the
		// client's mistake, reported as such.
		writeJSON(w, http.StatusBadRequest, SessionResponse{SessionID: sv.id, Status: StatusError, Error: err.Error()})
		return
	}
	if sv.any != nil {
		// The delta bumped the session generation: cancel the in-flight rung
		// (its result belongs to a dead generation and would be discarded
		// anyway), answer with the fresh 2-approx inline, and restart the
		// ladder — the next Step rebinds to the new generation automatically.
		sv.any.cancelStep()
		s.solveSessionAnytime(w, r, sv, time.Duration(delta.TimeoutMs)*time.Millisecond)
		s.enqueueRefine(sv.any)
		return
	}
	// An admission failure leaves the deltas applied — the session is the
	// durable state, the solve is retryable via GET (or the next PATCH).
	s.solveSession(w, r, sv, time.Duration(delta.TimeoutMs)*time.Millisecond, wait)
}

// handleSessionGet reports the current schedule, re-solving when pending
// deltas exist (e.g. after an earlier re-solve was canceled or rejected).
func (s *Server) handleSessionGet(w http.ResponseWriter, r *http.Request) {
	wait, err := parseWait(r, defaultWait)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	sv, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	s.met.requests.Add(1)
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.any != nil {
		s.solveSessionAnytime(w, r, sv, 0)
		return
	}
	s.solveSession(w, r, sv, 0, wait)
}

// handleSessionDelete drops a session.
func (s *Server) handleSessionDelete(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.dropSession(id) {
		writeError(w, http.StatusNotFound, "unknown session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, SessionResponse{SessionID: id, Status: "deleted"})
}

// applyDelta validates and applies one delta batch; caller holds sv.mu.
// Validation failures reject the whole batch only when they hit the first
// failing operation — operations are applied in add, resize, remove,
// machines, slots order, and each sub-batch is all-or-nothing.
func (s *Server) applyDelta(sv *svcSession, d *SessionDelta) error {
	if len(d.Add) > 0 {
		n := len(sv.sess.JobIDs()) + len(d.Add)
		if n > s.cfg.MaxJobs {
			return fmt.Errorf("%w: %d jobs > %d", ErrInstanceTooLarge, n, s.cfg.MaxJobs)
		}
		p := make([]int64, len(d.Add))
		class := make([]int, len(d.Add))
		for i, a := range d.Add {
			p[i], class[i] = a.P, a.Class
		}
		if _, err := sv.sess.AddJobs(p, class); err != nil {
			return err
		}
	}
	for _, rs := range d.Resize {
		if err := sv.sess.Resize(rs.ID, rs.P); err != nil {
			return err
		}
	}
	if len(d.Remove) > 0 {
		if err := sv.sess.RemoveJobs(d.Remove...); err != nil {
			return err
		}
	}
	if d.SetMachines != 0 {
		if err := sv.sess.SetMachines(d.SetMachines); err != nil {
			return err
		}
	}
	if d.SetSlots != 0 {
		if err := sv.sess.SetSlots(d.SetSlots); err != nil {
			return err
		}
	}
	return nil
}

// solveSession runs one session re-solve through the shared pipeline
// (result LRU → coalesce → bounded queue → worker) and writes the response.
// The caller holds sv.mu for the whole call, serializing the session.
// timeout zero selects the session's default. An admission failure (queue
// full, draining) is reported to the client and leaves the session's
// pending deltas durable — GET retries the solve.
func (s *Server) solveSession(w http.ResponseWriter, r *http.Request, sv *svcSession, timeout time.Duration, wait time.Duration) {
	// Snapshot the state this request is about: the request key, the remap
	// permutation, the job ids of the response, and — crucially — the
	// instance a queued flight will solve. Once sv.mu is released (a waiter
	// outliving its budget leaves the flight pinned in the queue), later
	// deltas may mutate the session; the generation-checked SolveSnapshot
	// keeps the flight's published result consistent with its key anyway.
	cur, ids, gen := sv.sess.Snapshot()
	canon := canonicalize(cur)
	k := requestKey(canon.in, sv.opts)
	if timeout <= 0 {
		timeout = sv.timeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.writeSessionError(w, sv.id, ErrShuttingDown)
		return
	}
	if err := s.quarantinedLocked(k); err != nil {
		s.mu.Unlock()
		s.writeSessionError(w, sv.id, err)
		return
	}
	trace := wantTrace(r, sv.trace)
	if out, ok := s.results.get(k); ok {
		s.met.resultCacheHits.Add(1)
		s.mu.Unlock()
		setOutcome(r, "cache-hit")
		s.respondSession(w, sv, snapshotView{perm: canon.perm, ids: ids, machines: cur.M, trace: trace}, out, false, true)
		return
	}
	if f, ok := s.flights[k]; ok && f.ctx.Err() == nil {
		f.waiters++
		s.met.coalesced.Add(1)
		s.mu.Unlock()
		setOutcome(r, "coalesced")
		s.awaitSessionFlight(w, r, sv, snapshotView{perm: canon.perm, ids: ids, machines: cur.M, trace: trace}, f, wait, true)
		return
	}
	inv := invertPerm(canon.perm)
	fctx, fcancel := context.WithTimeout(s.baseCtx, timeout)
	f := &flight{
		key: k, in: canon.in, opts: sv.opts,
		ctx: fctx, cancel: fcancel, done: make(chan struct{}),
		waiters: 1, session: true,
		enqueuedAt: time.Now(),
		run: func(ctx context.Context) (*ccsched.Result, error) {
			// Solve the snapshot, not whatever the session holds by the time
			// a worker gets here: the flight's key, permutation and any
			// coalesced one-shot waiters are all about the snapshot.
			res, err := sv.sess.SolveSnapshot(ctx, cur, gen)
			if err != nil {
				return nil, err
			}
			// Publish in canonical order so one-shot requests for the same
			// canonical instance can share this flight and the LRU entry.
			return remapResult(res, inv), nil
		},
	}
	select {
	case s.queue <- f:
	default:
		fcancel()
		s.met.rejectedFull.Add(1)
		s.mu.Unlock()
		s.writeSessionError(w, sv.id, ErrQueueFull)
		return
	}
	s.flights[k] = f
	s.met.admitted.Add(1)
	s.mu.Unlock()
	setOutcome(r, "admitted")
	s.awaitSessionFlight(w, r, sv, snapshotView{perm: canon.perm, ids: ids, machines: cur.M, trace: trace}, f, wait, false)
}

// snapshotView is the request-scoped view of the session state one
// re-solve was keyed on: the canonical→session permutation, the job ids
// parallel to the result's job order, the machine count, and whether the
// response keeps the span timeline.
type snapshotView struct {
	perm     []int
	ids      []int64
	machines int64
	trace    bool
}

// awaitSessionFlight blocks one session request on its flight and responds,
// mirroring awaitFlight's semantics (completion / wait budget / client
// disconnect) with the session response shape.
func (s *Server) awaitSessionFlight(w http.ResponseWriter, r *http.Request, sv *svcSession, view snapshotView, f *flight, wait time.Duration, coalesced bool) {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case <-f.done:
		s.detach(f)
		s.respondSession(w, sv, view, outcome{res: f.res, err: f.err, elapsed: f.elapsed}, coalesced, false)
	case <-timer.C:
		// The client outwaited its budget; the re-solve keeps running and a
		// later GET picks the result up from the LRU.
		s.pin(f)
		s.detach(f)
		writeJSON(w, http.StatusAccepted, SessionResponse{SessionID: sv.id, Status: s.flightStatus(f), RequestID: requestID(r)})
	case <-r.Context().Done():
		s.detach(f)
		writeError(w, statusClientClosedRequest, "client closed request")
	}
}

// respondSession renders one finished session re-solve, remapping the
// canonical result into the snapshot's job order.
func (s *Server) respondSession(w http.ResponseWriter, sv *svcSession, view snapshotView, out outcome, coalesced, cached bool) {
	ms := float64(out.elapsed) / float64(time.Millisecond)
	resp := SessionResponse{
		SessionID: sv.id,
		JobIDs:    view.ids,
		Machines:  view.machines,
		Resolves:  sv.sess.Resolves(),
		SolveMs:   ms,
		Coalesced: coalesced,
		Cached:    cached,
	}
	if out.err != nil {
		resp.Status = StatusError
		resp.Error = out.err.Error()
		writeJSON(w, solveErrorStatus(out.err), resp)
		return
	}
	resp.Status = StatusDone
	resp.Result = remapResult(out.res, view.perm)
	if !view.trace {
		resp.Result.Trace = nil
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeSessionError maps session pipeline errors onto HTTP statuses,
// carrying the session id when one exists. Backpressure rejections (queue
// full, draining) and quarantine refusals carry a Retry-After.
func (s *Server) writeSessionError(w http.ResponseWriter, id string, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrTooManySessions):
		status = http.StatusTooManyRequests
		setRetryAfter(w, retryAfterQueueFull)
	case errors.Is(err, ErrShuttingDown):
		status = http.StatusServiceUnavailable
		setRetryAfter(w, retryAfterDraining)
	case errors.Is(err, ErrQuarantined):
		status = http.StatusUnprocessableEntity
		setRetryAfter(w, s.cfg.PanicQuarantineTTL)
	case errors.Is(err, ErrInstanceTooLarge):
		status = http.StatusUnprocessableEntity
	case errors.Is(err, ccsched.ErrInfeasible):
		status = http.StatusUnprocessableEntity
	}
	if id == "" {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, status, SessionResponse{SessionID: id, Status: StatusError, Error: err.Error()})
}

// solveErrorStatus maps a finished solve's error onto an HTTP status (the
// same mapping respondOutcome uses).
func solveErrorStatus(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusRequestTimeout
	case errors.Is(err, ccsched.ErrCanceled), errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	case errors.Is(err, ccsched.ErrInfeasible), errors.Is(err, ccsched.ErrTooLarge):
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}
