// GET /v1/sessions/{id}/watch: a Server-Sent Events stream of an anytime
// session's published refinement improvements.
//
// Each event is one WatchEvent JSON document; the SSE id line carries the
// event generation, so a reconnect with the standard Last-Event-ID header
// replays exactly the events published after the client's last one — across
// server restarts too, because generations are reserved on disk before they
// become visible (see anytime.go). The event type is "update" for
// intermediate rungs and "final" for the terminal rung, after which the
// stream closes; a later delta restarts refinement and a reconnect picks the
// new generations up.
//
// The replay contract: events are full-state snapshots (result + gap +
// rung), so a subscriber that reconnects past the replay ring's horizon
// still holds the current best after its first event — it only missed
// intermediate gap readings.
package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// handleSessionWatch streams an anytime session's improvements as SSE.
func (s *Server) handleSessionWatch(w http.ResponseWriter, r *http.Request) {
	sv, ok := s.lookupSession(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session %q", r.PathValue("id"))
		return
	}
	ar := sv.any
	if ar == nil {
		writeError(w, http.StatusConflict,
			"session %q is not an anytime session (create it with options.tier \"anytime\")", sv.id)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	var after uint64
	if lei := r.Header.Get("Last-Event-ID"); lei != "" {
		g, err := strconv.ParseUint(lei, 10, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "cannot parse Last-Event-ID %q", lei)
			return
		}
		after = g
	}
	s.met.requests.Add(1)
	s.met.watchStreams.Add(1)
	defer s.met.watchStreams.Add(-1)
	setOutcome(r, "watch")
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no") // tell buffering proxies to pass events through
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	for {
		evs, wait := ar.eventsSince(after)
		for _, ev := range evs {
			if err := writeSSE(w, ev); err != nil {
				return
			}
			after = ev.Generation
			if ev.Final {
				flusher.Flush()
				return
			}
		}
		flusher.Flush()
		if ar.isDead() {
			return
		}
		select {
		case <-wait:
		case <-r.Context().Done():
			return
		case <-s.baseCtx.Done():
			return
		}
	}
}

// writeSSE renders one watch event in SSE framing: the id line (what a
// reconnect echoes as Last-Event-ID), the event type and the JSON data.
func writeSSE(w io.Writer, ev WatchEvent) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	typ := "update"
	if ev.Final {
		typ = "final"
	}
	_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Generation, typ, data)
	return err
}
