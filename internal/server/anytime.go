// The anytime serving tier. A session created with options.tier "anytime"
// answers every HTTP request inline with the session's current best — the
// millisecond 2-approx right after create or a delta, a refined PTAS rung
// later — and refines in the background: a ccsched.Ladder steps through the
// descending ε-ladder inside a dedicated low-priority refinement pool
// (Config.RefineWorkers, separate from the interactive solve pool, so
// refinement never starves interactive solves), publishing each improvement
// as a WatchEvent on GET /v1/sessions/{id}/watch.
//
// Anytime sessions bypass the flight pipeline entirely: the result LRU and
// singleflight coalescing assume one immutable result per request key, while
// an anytime session's answer evolves rung by rung.
//
// Budgets: each refinement rung spends one token of the session tenant's
// bucket (Config.RefineBudgetPerSec tokens/second, tenant from the create
// request's X-Tenant-Id header). An empty bucket parks the ladder — metered
// via refine_budget_exhausted_total and the refine_parked gauge — and the
// nudger re-enqueues it once tokens refill, so a noisy tenant's refinement
// is rate-limited without ever blocking a refine worker.
//
// Event generations: every published event carries a per-session generation,
// strictly increasing and never reused across restarts. With a state
// directory, the generation is reserved in a sidecar file (<id>.gen, atomic
// temp+rename+fsync) before the event becomes visible; a crash between
// reservation and publish skips a generation, never duplicates one, so a
// reconnect with Last-Event-ID after a kill -9 restart resumes without
// duplicate generations.
package server

import (
	"context"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"time"

	"ccsched"
)

// watchRingCap bounds the per-session replay ring. Events are full-state
// snapshots, so a reconnect that outran the ring loses only intermediate
// gap readings, never the current best.
const watchRingCap = 64

// defaultTenant labels sessions whose create request carried no X-Tenant-Id.
const defaultTenant = "default"

// refineNudgeInterval is how often parked ladders retry admission: budget
// tokens refill continuously, so a parked ladder only needs a periodic poke.
const refineNudgeInterval = 250 * time.Millisecond

// genExt is the extension of the per-session event-generation sidecar file.
const genExt = ".gen"

// anytimeRun is one anytime session's server-side refinement state. The
// ladder itself serializes its solves; mu guards the publication state
// (replay ring, generation, queue flags) and is never held across a solve.
type anytimeRun struct {
	sv     *svcSession
	ladder *ccsched.Ladder
	tenant string

	mu      sync.Mutex
	events  []WatchEvent  // replay ring: the last watchRingCap published events
	lastGen uint64        // highest event generation assigned (reserved on disk first)
	notify  chan struct{} // closed and replaced on every publish (and on death)
	queued  bool          // on refineQ or inside a refine worker right now
	parked  bool          // waiting for budget tokens or queue room; the nudger retries
	dead    bool          // session dropped: queued entries drain as no-ops
	// stepCancel aborts the in-flight rung (a delta superseded it, or the
	// session was dropped); the ladder position survives cancellation.
	stepCancel context.CancelFunc
}

// newAnytimeRun builds the refinement state for one anytime session.
// lastGen is the persisted generation floor (0 for a fresh session).
func (s *Server) newAnytimeRun(sv *svcSession, tenant string, lastGen uint64) *anytimeRun {
	if tenant == "" {
		tenant = defaultTenant
	}
	return &anytimeRun{
		sv:      sv,
		ladder:  ccsched.NewLadder(sv.sess),
		tenant:  tenant,
		lastGen: lastGen,
		notify:  make(chan struct{}),
	}
}

// armAnytime attaches refinement state to a TierAnytime session (a no-op for
// every other tier). Call before the session becomes visible to handlers (or
// under s.mu): sv.any is read without locks afterwards. The generation floor
// and — absent an explicit tenant — the tenant come from the sidecar, so a
// restored session never reuses an event generation.
func (s *Server) armAnytime(sv *svcSession, tenant string) {
	if sv.opts.Tier != ccsched.TierAnytime {
		return
	}
	floor, sidecarTenant := s.readGenSidecar(sv.id)
	if tenant == "" {
		tenant = sidecarTenant
	}
	sv.any = s.newAnytimeRun(sv, tenant, floor)
}

// enqueueRefine hands ar to the refinement pool unless it is already queued
// or dead. The send is non-blocking: a saturated queue parks the run and the
// nudger retries, so session handlers never block on refinement backpressure.
func (s *Server) enqueueRefine(ar *anytimeRun) {
	if ar == nil {
		return
	}
	ar.mu.Lock()
	if ar.queued || ar.dead {
		ar.mu.Unlock()
		return
	}
	ar.queued = true
	if ar.parked {
		ar.parked = false
		s.met.refineParked.Add(-1)
	}
	ar.mu.Unlock()
	select {
	case s.refineQ <- ar:
	default:
		s.parkRefine(ar)
	}
}

// parkRefine marks ar parked (idempotently) so the nudger re-enqueues it.
func (s *Server) parkRefine(ar *anytimeRun) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	ar.queued = false
	if !ar.parked && !ar.dead {
		ar.parked = true
		s.met.refineParked.Add(1)
	}
}

// refineWorker executes ladder rungs off the refinement queue until
// Shutdown closes refineStop. In-flight rungs survive the stop signal and
// are canceled by the drain grace via baseCtx, like interactive solves.
func (s *Server) refineWorker() {
	defer s.wg.Done()
	for {
		select {
		case <-s.refineStop:
			return
		case ar := <-s.refineQ:
			s.refineStep(ar)
		}
	}
}

// refineStep runs one ladder rung for ar: budget admission, the solve, the
// publish, and the re-enqueue when rungs remain.
func (s *Server) refineStep(ar *anytimeRun) {
	ar.mu.Lock()
	if ar.dead {
		ar.queued = false
		ar.mu.Unlock()
		return
	}
	ar.mu.Unlock()
	if !s.refineBudgetTake(ar.tenant) {
		s.met.refineBudgetExhausted.Add(1)
		s.parkRefine(ar)
		return
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	ar.mu.Lock()
	ar.stepCancel = cancel
	ar.mu.Unlock()

	res, done, err := ar.ladder.Step(ctx)
	cancel()

	ar.mu.Lock()
	ar.stepCancel = nil
	ar.queued = false
	dead := ar.dead
	ar.mu.Unlock()
	if dead {
		return
	}
	switch {
	case err == nil:
		s.met.refineRungs.Add(1)
		if res != nil {
			s.publishWatchEvent(ar, res)
		}
		if !done {
			s.enqueueRefine(ar)
		}
	case ctx.Err() != nil:
		// The rung was canceled: a delta superseded it (the ladder rebinds to
		// the new generation on the next step) or the server is draining (the
		// re-enqueued entry is never picked up). Either way, re-enqueue.
		s.enqueueRefine(ar)
	default:
		// A real solve failure. The session still serves its current best;
		// the next delta restarts the ladder from a fresh first answer.
		s.logger.Warn("anytime refinement failed", "session", ar.sv.id, "err", err)
	}
}

// publishWatchEvent assigns the next event generation, reserves it on disk,
// appends the event to the replay ring and wakes every subscriber.
func (s *Server) publishWatchEvent(ar *anytimeRun, res *ccsched.Result) {
	if res == nil || res.Anytime == nil {
		return
	}
	ev := WatchEvent{
		SessionID:  ar.sv.id,
		Rung:       res.Anytime.Rung,
		Rungs:      res.Anytime.Rungs,
		Epsilon:    res.Anytime.Epsilon,
		Gap:        res.Anytime.Gap,
		Final:      res.Anytime.Final,
		Makespan:   res.Makespan.RatString(),
		LowerBound: res.LowerBound.RatString(),
		Result:     res,
	}
	ar.mu.Lock()
	defer ar.mu.Unlock()
	if ar.dead {
		return
	}
	ev.Generation = ar.lastGen + 1
	// Reserve the generation before anything observes it: a crash after the
	// sidecar write skips a generation on restart, never duplicates one.
	if err := s.writeGenSidecar(ar.sv.id, ev.Generation, ar.tenant); err != nil {
		s.logger.Warn("anytime generation sidecar write failed", "session", ar.sv.id, "err", err)
	}
	ar.lastGen = ev.Generation
	ar.events = append(ar.events, ev)
	if len(ar.events) > watchRingCap {
		ar.events = ar.events[len(ar.events)-watchRingCap:]
	}
	close(ar.notify)
	ar.notify = make(chan struct{})
	s.met.anytimeGap.observe(ev.Gap)
}

// eventsSince returns the ring events published after generation `after`,
// plus the channel closed on the next publish — the subscriber's wait
// primitive (re-read the ring after it fires).
func (ar *anytimeRun) eventsSince(after uint64) (evs []WatchEvent, wait <-chan struct{}) {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	for _, ev := range ar.events {
		if ev.Generation > after {
			evs = append(evs, ev)
		}
	}
	return evs, ar.notify
}

// isDead reports whether the session behind this run was dropped.
func (ar *anytimeRun) isDead() bool {
	ar.mu.Lock()
	defer ar.mu.Unlock()
	return ar.dead
}

// cancelStep aborts the in-flight rung, if any. The ladder position is
// unchanged; the next Step rebinds to the session's current generation, so a
// delta handler cancels, answers inline and re-enqueues.
func (ar *anytimeRun) cancelStep() {
	ar.mu.Lock()
	cancel := ar.stepCancel
	ar.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// dropRefine marks a dropped session's refinement dead: queued entries drain
// as no-ops, the in-flight rung is canceled, and subscribers wake so their
// streams can end.
func dropRefine(s *Server, ar *anytimeRun) {
	if ar == nil {
		return
	}
	ar.mu.Lock()
	ar.dead = true
	if ar.parked {
		ar.parked = false
		s.met.refineParked.Add(-1)
	}
	cancel := ar.stepCancel
	close(ar.notify)
	ar.notify = make(chan struct{})
	ar.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// refineNudger periodically re-enqueues parked ladders — the retry path for
// both budget exhaustion (tokens refill with time) and momentary refinement
// queue saturation.
func (s *Server) refineNudger() {
	defer s.wg.Done()
	t := time.NewTicker(refineNudgeInterval)
	defer t.Stop()
	for {
		select {
		case <-s.refineStop:
			return
		case <-t.C:
		}
		s.mu.Lock()
		runs := make([]*anytimeRun, 0, len(s.sessions))
		for _, sv := range s.sessions {
			if sv.any != nil {
				runs = append(runs, sv.any)
			}
		}
		s.mu.Unlock()
		for _, ar := range runs {
			ar.mu.Lock()
			parked := ar.parked
			ar.mu.Unlock()
			if parked {
				s.enqueueRefine(ar)
			}
		}
	}
}

// refineBudget is one tenant's refinement token bucket: rate tokens per
// second refill up to a burst of max(1, rate); a rung costs one token.
type refineBudget struct {
	mu     sync.Mutex
	tokens float64
	last   time.Time
}

// refineBudgetTake spends one refinement token of the given tenant; false
// parks the ladder. A non-positive Config.RefineBudgetPerSec is unlimited.
func (s *Server) refineBudgetTake(tenant string) bool {
	rate := s.cfg.RefineBudgetPerSec
	if rate <= 0 {
		return true
	}
	burst := rate
	if burst < 1 {
		burst = 1
	}
	s.budgetMu.Lock()
	b := s.budgets[tenant]
	if b == nil {
		b = &refineBudget{tokens: burst, last: time.Now()}
		s.budgets[tenant] = b
	}
	s.budgetMu.Unlock()
	b.mu.Lock()
	defer b.mu.Unlock()
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * rate
	if b.tokens > burst {
		b.tokens = burst
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// solveSessionAnytime answers one anytime-session request inline with the
// session's current best. Session.Solve on a TierAnytime session computes
// only the constant-factor first answer (milliseconds) when the instance is
// dirty and returns the installed best — possibly a refined rung — when it
// is not, so create and PATCH respond instantly and GET reflects every
// published improvement. The caller holds sv.mu.
func (s *Server) solveSessionAnytime(w http.ResponseWriter, r *http.Request, sv *svcSession, timeout time.Duration) {
	if timeout <= 0 {
		timeout = sv.timeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	ctx, cancel := context.WithTimeout(s.baseCtx, timeout)
	start := time.Now()
	res, err := sv.sess.Solve(ctx)
	cancel()
	resp := SessionResponse{
		SessionID: sv.id,
		JobIDs:    sv.sess.JobIDs(),
		Machines:  sv.sess.Instance().M,
		Resolves:  sv.sess.Resolves(),
		SolveMs:   float64(time.Since(start)) / float64(time.Millisecond),
	}
	if err != nil {
		resp.Status = StatusError
		resp.Error = err.Error()
		writeJSON(w, solveErrorStatus(err), resp)
		return
	}
	setOutcome(r, "anytime")
	resp.Status = StatusDone
	resp.Result = res
	if !wantTrace(r, sv.trace) && res.Trace != nil {
		// The installed result is shared with the ladder and subscribers:
		// strip the trace on a copy, never in place.
		cp := *res
		cp.Trace = nil
		resp.Result = &cp
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeGenSidecar persists a session's watch-event generation floor and
// tenant ("<gen> <tenant>\n") atomically: temp file, fsync, rename. Without
// a state directory generations reset per process, which is exactly as
// durable as the sessions themselves.
func (s *Server) writeGenSidecar(id string, gen uint64, tenant string) error {
	if s.cfg.StateDir == "" {
		return nil
	}
	data := []byte(strconv.FormatUint(gen, 10) + " " + tenant + "\n")
	tmp := filepath.Join(s.cfg.StateDir, id+genExt+".tmp")
	final := filepath.Join(s.cfg.StateDir, id+genExt)
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readGenSidecar reads a session's persisted generation floor and tenant;
// missing or damaged sidecars restore conservatively as (0, default) — safe
// only because snapshots and sidecars live and die together (removeSnapshot
// deletes both).
func (s *Server) readGenSidecar(id string) (gen uint64, tenant string) {
	tenant = defaultTenant
	if s.cfg.StateDir == "" {
		return 0, tenant
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.StateDir, id+genExt))
	if err != nil {
		return 0, tenant
	}
	fields := strings.Fields(string(data))
	if len(fields) >= 1 {
		if g, err := strconv.ParseUint(fields[0], 10, 64); err == nil {
			gen = g
		}
	}
	if len(fields) >= 2 {
		tenant = fields[1]
	}
	return gen, tenant
}
