package server_test

// Crash-recovery tests for the server persistence layer: snapshot files
// survive kill -9 semantics (drain snapshots, checkpoints), damaged files
// are skipped with a metered reason, restored sessions solve to cold
// parity, and the export/import endpoints migrate sessions between
// servers. The checkpoint-during-PATCH race test runs under -race in CI.

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"ccsched"
	"ccsched/internal/server"
)

// persistTestInstance is a small instance with warm-state-worthy structure.
func persistTestInstance(t *testing.T, seed int64) *ccsched.Instance {
	t.Helper()
	in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
		N: 40, Classes: 6, Machines: 5, Slots: 2, PMax: 200, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return in
}

var persistTestOpts = ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 1}

// coldMakespan solves in cold (fresh cache) and returns the result.
func coldMakespan(t *testing.T, in *ccsched.Instance) *ccsched.Result {
	t.Helper()
	opts := persistTestOpts
	opts.Cache = ccsched.NewFeasibilityCache()
	res, err := ccsched.Solve(context.Background(), in, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// createPersistedSession creates one session over HTTP and returns its id
// and the mirrored instance.
func createPersistedSession(t *testing.T, url string, seed int64) (string, *ccsched.Instance) {
	t.Helper()
	in := persistTestInstance(t, seed)
	code, sr := sessionCall(t, "POST", url+"/v1/sessions", server.SessionCreateRequest{
		Instance: in, Options: persistTestOpts, TimeoutMs: 60000,
	})
	if code != http.StatusOK || sr.Status != server.StatusDone {
		t.Fatalf("create: %d %+v", code, sr)
	}
	return sr.SessionID, in
}

// TestSnapshotRestoreAcrossRestart checks the core durability loop: a
// drained server leaves snapshots behind, a fresh server over the same
// state dir restores them, and the restored session re-solves to the cold
// makespan of the mirrored instance with snapshot_restores_total counted.
func TestSnapshotRestoreAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1 := server.New(server.Config{Workers: 2, StateDir: dir, Logf: t.Logf})
	ts1 := httptest1(t, s1)
	id, mirror := createPersistedSession(t, ts1.URL, 11)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()
	if _, err := os.Stat(filepath.Join(dir, id+".ccsnap")); err != nil {
		t.Fatalf("drain left no snapshot: %v", err)
	}

	s2, ts2 := startServer(t, server.Config{Workers: 2, StateDir: dir, Logf: t.Logf})
	code, gr := sessionCall(t, "GET", ts2.URL+"/v1/sessions/"+id, nil)
	if code != http.StatusOK || gr.Status != server.StatusDone {
		t.Fatalf("restored GET: %d %+v", code, gr)
	}
	want := coldMakespan(t, mirror)
	if gr.Result == nil || gr.Result.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("restored makespan %v != cold %s", gr.Result, want.Makespan.RatString())
	}
	// The restored session answers its probes warm from the restored cache.
	if gr.Result.Report.CacheHits == 0 {
		t.Fatalf("restored re-solve ran fully cold: %+v", gr.Result.Report)
	}
	m := s2.Metrics()
	if m.SnapshotRestoresTotal < 1 {
		t.Fatalf("snapshot_restores_total = %d, want >= 1", m.SnapshotRestoresTotal)
	}
	if m.RestoreLatency.Count < 1 {
		t.Fatalf("restore_latency.count = %d, want >= 1", m.RestoreLatency.Count)
	}
	// The restored session keeps working: a PATCH re-solves with parity.
	code, pr := sessionCall(t, "PATCH", ts2.URL+"/v1/sessions/"+id, server.SessionDelta{
		Resize: []server.SessionResize{{ID: gr.JobIDs[0], P: 123}},
	})
	if code != http.StatusOK || pr.Status != server.StatusDone {
		t.Fatalf("restored PATCH: %d %+v", code, pr)
	}
	mirror.P[0] = 123
	want = coldMakespan(t, mirror)
	if pr.Result.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("patched restored makespan != cold")
	}
}

// httptest1 wraps a pre-built server in an httptest server without the
// startServer cleanup (these tests drain and restart servers mid-test).
func httptest1(t *testing.T, s *server.Server) *httptest.Server {
	t.Helper()
	return httptest.NewServer(s.Handler())
}

// reframe wraps a snapshot payload in the on-disk frame (magic + SHA-256 +
// payload), mirroring the unexported writer so damage tests can produce
// checksum-valid files with modified payloads.
func reframe(payload []byte) []byte {
	out := []byte("CCSNAP01")
	sum := sha256.Sum256(payload)
	out = append(out, sum[:]...)
	return append(out, payload...)
}

// TestSnapshotDamageSkippedOnBoot truncates, bit-flips and version-bumps
// snapshot files and checks each boot skips the damaged file (metered, not
// fatal) while cleanly restoring the undamaged ones; the session behind a
// damaged snapshot is simply gone (404), never wrong.
func TestSnapshotDamageSkippedOnBoot(t *testing.T) {
	dir := t.TempDir()
	s1 := server.New(server.Config{Workers: 2, StateDir: dir, Logf: t.Logf})
	ts1 := httptest1(t, s1)
	idA, mirrorA := createPersistedSession(t, ts1.URL, 21)
	idB, _ := createPersistedSession(t, ts1.URL, 22)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	ts1.Close()

	pathB := filepath.Join(dir, idB+".ccsnap")
	raw, err := os.ReadFile(pathB)
	if err != nil {
		t.Fatal(err)
	}
	for _, damage := range []struct {
		name string
		data []byte
	}{
		{"truncated", raw[:len(raw)/2]},
		{"bit-flipped", flipBit(raw, len(raw)/2)},
		{"version-bumped", versionBump(t, raw)},
		{"empty", nil},
	} {
		t.Run(damage.name, func(t *testing.T) {
			if err := os.WriteFile(pathB, damage.data, 0o644); err != nil {
				t.Fatal(err)
			}
			s2, ts2 := startServer(t, server.Config{Workers: 2, StateDir: dir, Logf: t.Logf})
			if m := s2.Metrics(); m.SnapshotCorruptSkipped < 1 {
				t.Fatalf("snapshot_corrupt_skipped_total = %d, want >= 1", m.SnapshotCorruptSkipped)
			}
			if code, _ := sessionCall(t, "GET", ts2.URL+"/v1/sessions/"+idB, nil); code != http.StatusNotFound {
				t.Fatalf("damaged session: GET = %d, want 404", code)
			}
			code, gr := sessionCall(t, "GET", ts2.URL+"/v1/sessions/"+idA, nil)
			if code != http.StatusOK || gr.Status != server.StatusDone {
				t.Fatalf("undamaged session: %d %+v", code, gr)
			}
			want := coldMakespan(t, mirrorA)
			if gr.Result.Makespan.Cmp(want.Makespan) != 0 {
				t.Fatalf("undamaged restored makespan != cold")
			}
		})
	}
}

// flipBit returns data with one bit flipped at pos.
func flipBit(data []byte, pos int) []byte {
	out := append([]byte(nil), data...)
	out[pos] ^= 0x40
	return out
}

// versionBump rewrites a framed snapshot with version 999 and a valid
// checksum, so the skip exercises the schema check rather than the frame.
func versionBump(t *testing.T, framed []byte) []byte {
	t.Helper()
	payload := framed[8+32:]
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(payload, &doc); err != nil {
		t.Fatal(err)
	}
	doc["version"] = json.RawMessage("999")
	bumped, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return reframe(bumped)
}

// TestSessionExportImport migrates a session between two servers via the
// export endpoints and checks the import solves warm to cold parity.
func TestSessionExportImport(t *testing.T) {
	_, tsA := startServer(t, server.Config{Workers: 2, Logf: t.Logf})
	id, mirror := createPersistedSession(t, tsA.URL, 31)

	resp, err := http.Get(tsA.URL + "/v1/sessions/" + id + "/export")
	if err != nil {
		t.Fatal(err)
	}
	snap, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("export: %d %v", resp.StatusCode, err)
	}

	sB, tsB := startServer(t, server.Config{Workers: 2, Logf: t.Logf})
	req, err := http.NewRequest("PUT", tsB.URL+"/v1/sessions/migrated-1/export", bytes.NewReader(snap))
	if err != nil {
		t.Fatal(err)
	}
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var ir server.SessionResponse
	if err := json.NewDecoder(presp.Body).Decode(&ir); err != nil {
		t.Fatal(err)
	}
	presp.Body.Close()
	if presp.StatusCode != http.StatusCreated || ir.Status != server.StatusImported {
		t.Fatalf("import: %d %+v", presp.StatusCode, ir)
	}
	if len(ir.JobIDs) != mirror.N() {
		t.Fatalf("import: %d job ids, want %d", len(ir.JobIDs), mirror.N())
	}

	code, gr := sessionCall(t, "GET", tsB.URL+"/v1/sessions/migrated-1", nil)
	if code != http.StatusOK || gr.Status != server.StatusDone {
		t.Fatalf("imported GET: %d %+v", code, gr)
	}
	want := coldMakespan(t, mirror)
	if gr.Result.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("imported makespan != cold")
	}
	if gr.Result.Report.CacheHits == 0 {
		t.Fatalf("imported session re-solved fully cold: %+v", gr.Result.Report)
	}
	if m := sB.Metrics(); m.SnapshotRestoresTotal < 1 {
		t.Fatalf("snapshot_restores_total = %d after import, want >= 1", m.SnapshotRestoresTotal)
	}

	// Re-import under the same id conflicts; garbage is a 400; a
	// path-traversal id is refused before anything touches a path.
	if code, _ := putRaw(t, tsB.URL+"/v1/sessions/migrated-1/export", snap); code != http.StatusConflict {
		t.Fatalf("duplicate import = %d, want 409", code)
	}
	if code, _ := putRaw(t, tsB.URL+"/v1/sessions/migrated-2/export", []byte("junk")); code != http.StatusBadRequest {
		t.Fatalf("junk import = %d, want 400", code)
	}
	if code, _ := putRaw(t, tsB.URL+"/v1/sessions/"+`%2e%2e%2fetc`+"/export", snap); code != http.StatusBadRequest {
		t.Fatalf("traversal import = %d, want 400", code)
	}
}

// putRaw PUTs raw bytes and returns the status code and body.
func putRaw(t *testing.T, url string, body []byte) (int, []byte) {
	t.Helper()
	req, err := http.NewRequest("PUT", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, out
}

// TestCheckpointDuringPatch races a fast background checkpointer against a
// stream of PATCHes (run it under -race to check the synchronization), then
// restarts from whatever checkpoint won and checks the restored session
// solves its snapshotted instance to cold parity — a checkpoint taken at
// any instant must be a valid, restorable state.
func TestCheckpointDuringPatch(t *testing.T) {
	dir := t.TempDir()
	s1 := server.New(server.Config{
		Workers: 2, StateDir: dir, CheckpointInterval: time.Millisecond, Logf: t.Logf,
	})
	ts1 := httptest1(t, s1)
	id, _ := createPersistedSession(t, ts1.URL, 41)

	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				code, pr := sessionCall(t, "PATCH", ts1.URL+"/v1/sessions/"+id, server.SessionDelta{
					Resize: []server.SessionResize{{ID: int64(1 + (7*i+g)%40), P: int64(1 + 13*i + g)}},
				})
				if code != http.StatusOK || pr.Status != server.StatusDone {
					t.Errorf("racing PATCH: %d %+v", code, pr)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// Let at least one checkpoint observe the final state, then kill the
	// server the hard way for this layer: no drain pass (grace already
	// expired contexts are beside the point — we simply stop using s1 and
	// boot a second server off the directory, exactly what follows kill -9).
	time.Sleep(50 * time.Millisecond)

	s2 := server.New(server.Config{Workers: 2, StateDir: dir, Logf: t.Logf})
	ts2 := httptest1(t, s2)
	code, gr := sessionCall(t, "GET", ts2.URL+"/v1/sessions/"+id, nil)
	if code != http.StatusOK || gr.Status != server.StatusDone {
		t.Fatalf("restored GET: %d %+v", code, gr)
	}
	// The checkpoint may predate the last PATCHes; correctness is that the
	// restored state solves ITS OWN instance to cold parity. Rebuild the
	// instance the restored session holds from its export and cold-solve it.
	resp, err := http.Get(ts2.URL + "/v1/sessions/" + id + "/export")
	if err != nil {
		t.Fatal(err)
	}
	snap, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	restored, err := ccsched.RestoreSession(snap)
	if err != nil {
		t.Fatalf("exported restored session: %v", err)
	}
	want := coldMakespan(t, restored.Instance())
	if gr.Result.Makespan.Cmp(want.Makespan) != 0 {
		t.Fatalf("restored makespan != cold solve of restored instance")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	_ = s1.Shutdown(ctx)
	ts1.Close()
	_ = s2.Shutdown(ctx)
	ts2.Close()
}

// TestDeleteRemovesSnapshot checks a DELETEd session does not resurrect on
// the next boot.
func TestDeleteRemovesSnapshot(t *testing.T) {
	dir := t.TempDir()
	s1 := server.New(server.Config{Workers: 2, StateDir: dir, CheckpointInterval: time.Millisecond, Logf: t.Logf})
	ts1 := httptest1(t, s1)
	id, _ := createPersistedSession(t, ts1.URL, 51)
	// Wait for a checkpoint to land, then delete.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := os.Stat(filepath.Join(dir, id+".ccsnap")); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("checkpoint never landed")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if code, _ := sessionCall(t, "DELETE", ts1.URL+"/v1/sessions/"+id, nil); code != http.StatusOK {
		t.Fatalf("delete failed: %d", code)
	}
	if _, err := os.Stat(filepath.Join(dir, id+".ccsnap")); !os.IsNotExist(err) {
		t.Fatalf("snapshot survived DELETE: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts1.Close()
	_, ts2 := startServer(t, server.Config{Workers: 2, StateDir: dir, Logf: t.Logf})
	if code, _ := sessionCall(t, "GET", ts2.URL+"/v1/sessions/"+id, nil); code != http.StatusNotFound {
		t.Fatalf("deleted session resurrected: GET = %d", code)
	}
}

// TestStateDirMetricsExposed checks the new counters appear in /metrics
// with their wire names.
func TestStateDirMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	_, ts := startServer(t, server.Config{Workers: 1, StateDir: dir, Logf: t.Logf})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, name := range []string{
		"snapshot_writes_total", "snapshot_write_errors_total",
		"snapshot_restores_total", "snapshot_corrupt_skipped_total",
		"restore_latency",
	} {
		if !strings.Contains(string(body), name) {
			t.Fatalf("/metrics missing %q:\n%s", name, body)
		}
	}
}
