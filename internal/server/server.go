// Package server implements ccserved's scheduling service: a batching,
// deduplicating request pipeline on top of the context-aware ccsched.Solve.
//
// The pipeline is:
//
//	HTTP request
//	  → decode + validate (public JSON codecs)
//	  → canonicalize (job order / class labels factored out; per-request perm)
//	  → full-result LRU lookup ──────────────── hit → remap → respond
//	  → singleflight coalesce onto in-flight solve ─ hit → await → respond
//	  → admission: bounded queue (429 when full)
//	  → worker pool: ccsched.Solve under a per-request deadline context,
//	    all workers sharing one feasibility cache
//	  → publish: result LRU + wake all waiters → remap → respond
//
// Identical concurrent requests cost one solve; identical later requests
// cost zero. Graceful shutdown stops admitting (503), drains the queue, and
// — when the drain deadline expires — cancels in-flight solves via context,
// which ccsched.Solve honors down to individual ILP iterations.
package server

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ccsched"
	"ccsched/internal/faultinject"
	"ccsched/internal/panicsafe"
)

// SolveFunc is the solver the worker pool invokes; it defaults to
// ccsched.Solve and is injectable for tests.
type SolveFunc func(ctx context.Context, in *ccsched.Instance, opts ccsched.Options) (*ccsched.Result, error)

// Config parameterizes a Server. The zero value selects sensible defaults
// for every field.
type Config struct {
	// Workers is the solver pool size. Zero selects 4.
	Workers int
	// QueueDepth bounds the admission queue of distinct pending solves;
	// submissions beyond it are refused with 429. Zero selects 256.
	QueueDepth int
	// ResultCacheEntries bounds the full-result LRU. Zero selects 1024.
	ResultCacheEntries int
	// DefaultTimeout is the per-solve deadline applied when a request does
	// not carry its own. Zero selects 120s.
	DefaultTimeout time.Duration
	// MaxTimeout caps the wire-settable timeout_ms — without it a client
	// could reserve a worker for an arbitrary duration. Zero selects 15m.
	MaxTimeout time.Duration
	// MaxJobs bounds the job count of admitted instances. The approx tier
	// deliberately runs to completion (it is strongly polynomial but not
	// cancellable mid-solve), so admission is where instance size must be
	// policed. Zero selects 100000.
	MaxJobs int
	// MaxSessions bounds the number of live scheduling sessions (each holds
	// an instance, warm solver state and a private feasibility cache).
	// Creations beyond it are refused with 429 until sessions are deleted.
	// Zero selects 1024.
	MaxSessions int
	// MaxBodyBytes bounds request bodies. Zero selects 32 MiB.
	MaxBodyBytes int64
	// EngineParallelism is the intra-engine worker count applied to requests
	// that do not set engine_parallelism themselves (see
	// ccsched.Options.EngineParallelism). Explicit request values win, and
	// both are clamped to GOMAXPROCS at admission. Zero (the default) keeps
	// the engines serial; results are bit-identical at any setting.
	EngineParallelism int
	// StateDir, when non-empty, makes sessions durable: every readable
	// session snapshot in the directory is restored on boot (unreadable or
	// stale ones are skipped with a logged reason), dirty sessions are
	// checkpointed there in the background, and a final snapshot pass runs
	// on drain. The directory is created if missing. Empty disables
	// persistence.
	StateDir string
	// CheckpointInterval is the background checkpoint cadence when StateDir
	// is set. Zero selects 30s. Ticks are skipped while the solve queue is
	// more than half full, so checkpointing never competes with admission.
	CheckpointInterval time.Duration
	// SoftTimeout is the default degraded-fallback deadline for synchronous
	// solve requests: when a non-approx solve is still running this long
	// after its waiter attached, the waiter is answered with the millisecond
	// 2-approx (certified LowerBound, degraded=true) while the full solve
	// keeps running and publishes for later requests. Requests override it
	// with soft_timeout_ms (negative disables per request). Zero disables the
	// soft deadline by default.
	SoftTimeout time.Duration
	// RefineWorkers is the anytime refinement pool size — the workers that
	// step TierAnytime sessions' ε-ladders in the background. The pool is
	// separate from Workers, so refinement never starves interactive solves.
	// Zero selects 2; negative disables background refinement (ladders stay
	// at their first answer until stepped by nothing — useful in tests).
	RefineWorkers int
	// RefineBudgetPerSec is each tenant's refinement admission budget in
	// ladder rungs per second (tenant = X-Tenant-Id at session create,
	// "default" when absent). An exhausted bucket parks the tenant's ladders
	// — metered via refine_budget_exhausted_total and the refine_parked
	// gauge — until tokens refill. Zero or negative is unlimited.
	RefineBudgetPerSec float64
	// PanicQuarantineThreshold is how many consecutive recovered-panic
	// (ccsched.ErrInternal) outcomes one request key may produce before new
	// submissions of that key are refused with 422 for
	// PanicQuarantineTTL. Zero selects 3; negative disables quarantining.
	PanicQuarantineThreshold int
	// PanicQuarantineTTL is how long a quarantined request key stays refused;
	// after the TTL one submission is let through to re-test the key. Zero
	// selects 1m.
	PanicQuarantineTTL time.Duration
	// FaultAdmin exposes the fault-injection registry at /v1/debug/faults
	// (GET lists, PUT arms spec strings, DELETE clears). Off by default;
	// never enable it on an exposed port.
	FaultAdmin bool
	// TraceRing is the capacity of the slowest-traces debug ring served at
	// GET /v1/debug/traces. While the ring is enabled every solve runs with
	// tracing on (the per-solve cost is bounded by the span cap) and the ring
	// keeps the TraceRing slowest completed solves' traces. Zero selects 16;
	// negative disables the ring, and then only requests that ask for a trace
	// (?trace=1 or options.trace) pay for one.
	TraceRing int
	// Cache is the feasibility cache shared by all workers. Nil creates a
	// fresh one (isolated from the process-wide default).
	Cache *ccsched.FeasibilityCache
	// Solver overrides the solver invoked by the workers; nil selects
	// ccsched.Solve. Tests use it to instrument and gate solves.
	Solver SolveFunc
	// Logger receives structured request and lifecycle logs. Nil wraps Logf
	// when that is set, and discards otherwise.
	Logger *slog.Logger
	// Logf, when non-nil, receives one line per completed solve and per
	// lifecycle event (Printf-style). Superseded by Logger; kept because
	// tests wire t.Logf here.
	Logf func(format string, args ...any)
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.ResultCacheEntries <= 0 {
		c.ResultCacheEntries = 1024
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 120 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 15 * time.Minute
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 100000
	}
	if c.MaxSessions <= 0 {
		c.MaxSessions = 1024
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.StateDir != "" && c.CheckpointInterval <= 0 {
		c.CheckpointInterval = 30 * time.Second
	}
	if c.RefineWorkers == 0 {
		c.RefineWorkers = 2
	}
	if c.RefineWorkers < 0 {
		c.RefineWorkers = 0
	}
	if c.PanicQuarantineThreshold == 0 {
		c.PanicQuarantineThreshold = 3
	}
	if c.PanicQuarantineTTL <= 0 {
		c.PanicQuarantineTTL = time.Minute
	}
	if c.TraceRing == 0 {
		c.TraceRing = 16
	}
	if c.Cache == nil {
		c.Cache = ccsched.NewFeasibilityCache()
	}
	if c.Solver == nil {
		c.Solver = ccsched.Solve
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// outcome is one finished solve in canonical form, as stored in the result
// LRU and handed to waiters.
type outcome struct {
	res     *ccsched.Result // canonical job order; nil on error
	err     error
	elapsed time.Duration
}

// flight is one admitted solve, shared by every request that coalesced onto
// it. Waiter bookkeeping happens under Server.mu; res/err are written once
// by the executing worker before done is closed.
type flight struct {
	key  key
	in   *ccsched.Instance // canonical
	opts ccsched.Options
	// run, when non-nil, replaces the configured Solver for this flight (a
	// session re-solve executes through its Session's warm state). It must
	// return the result in canonical job order, like the Solver path, so
	// coalesced one-shot waiters and the result LRU stay correct.
	run func(ctx context.Context) (*ccsched.Result, error)
	// session labels the flight for the metrics split (session_solve_latency
	// vs solve_latency).
	session bool
	// enqueuedAt stamps the queue send; the worker's pickup delta feeds the
	// queue_wait_latency histogram.
	enqueuedAt time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	res     *ccsched.Result
	err     error
	elapsed time.Duration

	// Guarded by Server.mu: waiters is the number of attached requests;
	// pinned marks flights that must run to completion even with no waiter
	// (async submissions awaiting a later poll); running flips when a
	// worker picks the flight up.
	waiters int
	pinned  bool
	running bool
}

// Server is the scheduling service. Create with New, expose via Handler,
// stop with Shutdown.
type Server struct {
	cfg    Config
	logger *slog.Logger
	traces *traceRing
	reqSeq atomic.Uint64

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	closed  bool
	flights map[key]*flight
	results *lruCache[key, outcome]
	jobs    *lruCache[string, jobEntry]
	jobSeq  uint64

	sessions   map[string]*svcSession
	sessionSeq uint64

	// quarantine tracks request keys whose solves ended in recovered panics;
	// entries reset on any non-panic outcome and expire by TTL. Guarded by mu.
	quarantine map[key]*quarEntry

	queue chan *flight
	wg    sync.WaitGroup

	// refineQ feeds the anytime refinement pool; refineStop ends the refine
	// workers and the nudger on Shutdown (the queue itself stays open —
	// late enqueues land in the buffer and are simply never drained).
	// budgets holds the per-tenant refinement token buckets.
	refineQ    chan *anytimeRun
	refineStop chan struct{}
	budgetMu   sync.Mutex
	budgets    map[string]*refineBudget

	// ckptStop/ckptDone manage the background checkpointer (StateDir only):
	// Shutdown closes ckptStop once, the checkpointer closes ckptDone on
	// exit, and the final drain snapshot pass waits on ckptDone so disk
	// writes never overlap.
	ckptStop chan struct{}
	ckptDone chan struct{}

	// persistDegraded flips when snapshot writes keep failing after retries:
	// checkpointing becomes in-memory only (sessions stay dirty), /readyz
	// reports 503, and the checkpointer probes the disk each tick so
	// durability resumes without a restart. ckptFailStreak counts consecutive
	// failed session checkpoints feeding that decision.
	persistDegraded atomic.Bool
	ckptFailStreak  atomic.Int64

	met   metrics
	start time.Time
}

// quarEntry is one request key's recovered-panic streak. until is zero while
// the streak is below the quarantine threshold; once set, submissions of the
// key are refused until it passes.
type quarEntry struct {
	panics int
	until  time.Time
}

// jobEntry links a submission's job id to its unit of work, the
// permutation needed to render results in the submitter's job order, and
// whether the submission asked for its span timeline.
type jobEntry struct {
	key   key
	perm  []int
	trace bool
}

// Sentinel errors of the admission pipeline.
var (
	// ErrQueueFull reports that the bounded admission queue is at capacity;
	// the HTTP layer maps it to 429.
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrShuttingDown reports that the server no longer admits work; the
	// HTTP layer maps it to 503.
	ErrShuttingDown = errors.New("server: shutting down")
	// ErrInstanceTooLarge reports an instance beyond Config.MaxJobs; the
	// HTTP layer maps it to 422.
	ErrInstanceTooLarge = errors.New("server: instance exceeds the job limit")
	// ErrQuarantined reports that the request key produced repeated solver
	// panics and is temporarily refused; the HTTP layer maps it to 422 with
	// a Retry-After covering the quarantine TTL.
	ErrQuarantined = errors.New("server: request quarantined after repeated solver panics")
)

// New returns a started Server: its worker pool is running and its handler
// (see Handler) admits work immediately.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(&logfHandler{logf: cfg.Logf})
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		logger:     logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		flights:    make(map[key]*flight),
		quarantine: make(map[key]*quarEntry),
		results:    newLRU[key, outcome](cfg.ResultCacheEntries),
		jobs:       newLRU[string, jobEntry](4 * cfg.ResultCacheEntries),
		sessions:   make(map[string]*svcSession),
		queue:      make(chan *flight, cfg.QueueDepth),
		refineStop: make(chan struct{}),
		budgets:    make(map[string]*refineBudget),
		start:      time.Now(),
	}
	// Sized so every live session can queue once (the queued flag caps each
	// at one entry) with headroom for dead entries of dropped sessions; the
	// non-blocking enqueue parks on overflow either way.
	s.refineQ = make(chan *anytimeRun, 4*cfg.MaxSessions)
	if cfg.TraceRing > 0 {
		s.traces = newTraceRing(cfg.TraceRing)
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			s.logger.Warn("state dir unusable; persistence disabled", "dir", cfg.StateDir, "err", err)
			s.cfg.StateDir = ""
		} else {
			// Restore before the workers start: the session table fills while
			// nothing races it, and the handler sees every surviving session
			// from its first request.
			s.restoreSnapshots()
			s.ckptStop = make(chan struct{})
			s.ckptDone = make(chan struct{})
			go s.checkpointer()
		}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if cfg.RefineWorkers > 0 {
		s.wg.Add(cfg.RefineWorkers + 1)
		for i := 0; i < cfg.RefineWorkers; i++ {
			go s.refineWorker()
		}
		go s.refineNudger()
	}
	return s
}

// submission is the result of admitting one request: either a finished
// outcome (result-cache hit) or a flight to wait on, plus the request's
// job id and remap permutation.
type submission struct {
	id     string
	perm   []int
	done   *outcome // non-nil on a result-cache hit
	flight *flight  // non-nil otherwise
	// coalesced reports the request attached to an already-admitted solve.
	coalesced bool
}

// sanitizeOptions clamps the wire-settable Options fields that control
// resource consumption rather than results. Parallelism and
// EngineParallelism bound goroutines per solve (an unchecked huge value
// would fork that many speculative-probe or subtree workers);
// ExplicitMachineLimit and HugeMThreshold bound how many machines a
// schedule materializes explicitly. Requests that leave EngineParallelism
// unset inherit defaultEnginePar (the server's -engine-parallelism
// configuration); explicit values — including 1 to force serial engines —
// are kept, clamped. Clamping happens before the request key is computed,
// so equally-sanitized requests share one solve. forceTrace (the trace
// ring's doing) turns tracing on regardless of the request — responses
// still strip the trace unless the client asked for it.
func sanitizeOptions(opts ccsched.Options, defaultEnginePar int, forceTrace bool) ccsched.Options {
	if forceTrace {
		opts.Trace = true
	}
	maxPar := runtime.GOMAXPROCS(0)
	if opts.Parallelism > maxPar {
		opts.Parallelism = maxPar
	}
	if opts.EngineParallelism == 0 {
		opts.EngineParallelism = defaultEnginePar
	}
	if opts.EngineParallelism > maxPar {
		opts.EngineParallelism = maxPar
	}
	const maxExplicitMachines = 1 << 20
	if opts.ExplicitMachineLimit > maxExplicitMachines {
		opts.ExplicitMachineLimit = maxExplicitMachines
	}
	if opts.HugeMThreshold > maxExplicitMachines {
		opts.HugeMThreshold = maxExplicitMachines
	}
	return opts
}

// submit runs the admission pipeline for one decoded request: canonicalize,
// result-cache lookup, singleflight attach, bounded enqueue. timeout is the
// solve deadline for a newly created flight; pinned marks async submissions
// whose flight must survive having no attached waiter. The caller must pair
// every returned flight with exactly one detach call.
//
// Coalescing semantics: a joiner inherits the flight's existing deadline
// (set by whoever created it) — deadlines on a live context cannot be
// extended. A joiner whose own budget is larger may see the flight die at
// the creator's deadline (HTTP 408); since cancellation verdicts are never
// cached, resubmitting simply starts a fresh solve.
func (s *Server) submit(in *ccsched.Instance, opts ccsched.Options, timeout time.Duration, pinned, wantTrace bool) (*submission, error) {
	s.met.requests.Add(1)
	if in.N() > s.cfg.MaxJobs {
		return nil, fmt.Errorf("%w: %d jobs > %d", ErrInstanceTooLarge, in.N(), s.cfg.MaxJobs)
	}
	canon := canonicalize(in)
	opts = sanitizeOptions(opts, s.cfg.EngineParallelism, s.traces != nil)
	// Workers share the server's feasibility cache unless the request
	// explicitly opted out of caching.
	if !opts.NoCache {
		opts.Cache = s.cfg.Cache
	} else {
		opts.Cache = nil
	}
	k := requestKey(canon.in, opts)
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrShuttingDown
	}
	if err := s.quarantinedLocked(k); err != nil {
		return nil, err
	}
	if out, ok := s.results.get(k); ok {
		s.met.resultCacheHits.Add(1)
		return &submission{id: s.addJobLocked(k, canon.perm, wantTrace), perm: canon.perm, done: &out}, nil
	}
	// Coalesce onto an identical in-flight solve — unless its context is
	// already dead (every earlier waiter disconnected, or its deadline
	// expired while queued): attaching there would hand this innocent
	// request a cancellation error. A dead flight stays in the map only
	// until a worker drains it; start a replacement flight instead.
	if f, ok := s.flights[k]; ok && f.ctx.Err() == nil {
		f.waiters++
		if pinned {
			f.pinned = true
		}
		s.met.coalesced.Add(1)
		return &submission{id: s.addJobLocked(k, canon.perm, wantTrace), perm: canon.perm, flight: f, coalesced: true}, nil
	}
	fctx, fcancel := context.WithTimeout(s.baseCtx, timeout)
	f := &flight{
		key: k, in: canon.in, opts: opts,
		ctx: fctx, cancel: fcancel, done: make(chan struct{}),
		waiters: 1, pinned: pinned,
		enqueuedAt: time.Now(),
	}
	select {
	case s.queue <- f:
	default:
		fcancel()
		s.met.rejectedFull.Add(1)
		return nil, ErrQueueFull
	}
	s.flights[k] = f
	s.met.admitted.Add(1)
	return &submission{id: s.addJobLocked(k, canon.perm, wantTrace), perm: canon.perm, flight: f}, nil
}

// detach releases one waiter from f. When the last waiter leaves an
// unpinned, unfinished flight — every interested client gave up — the
// flight's context is canceled so ccsched.Solve stops within an ILP
// iteration and the worker slot frees up.
func (s *Server) detach(f *flight) {
	s.mu.Lock()
	f.waiters--
	abandon := f.waiters <= 0 && !f.pinned
	s.mu.Unlock()
	if abandon {
		select {
		case <-f.done: // already finished; nothing to stop
		default:
			f.cancel()
		}
	}
}

// pin marks f to run to completion even with no attached waiter (a sync
// waiter timed out and will poll the job id later).
func (s *Server) pin(f *flight) {
	s.mu.Lock()
	f.pinned = true
	s.mu.Unlock()
}

// quarantinedLocked refuses k while its recovered-panic quarantine TTL is
// live. An expired TTL deletes the entry, letting one submission through to
// re-test the key (a clean outcome then clears the streak for good). Caller
// holds s.mu.
func (s *Server) quarantinedLocked(k key) error {
	q, ok := s.quarantine[k]
	if !ok || q.until.IsZero() {
		return nil
	}
	if rem := time.Until(q.until); rem > 0 {
		s.met.rejectedQuarantined.Add(1)
		return fmt.Errorf("%w: %d consecutive panics; retry in %s", ErrQuarantined, q.panics, rem.Round(time.Second))
	}
	delete(s.quarantine, k)
	return nil
}

// addJobLocked mints a job id and records its work key, remap permutation
// and trace choice in the job table; caller holds s.mu.
func (s *Server) addJobLocked(k key, perm []int, trace bool) string {
	id := s.newJobIDLocked()
	s.jobs.add(id, jobEntry{key: k, perm: perm, trace: trace})
	return id
}

// newJobIDLocked mints a job id; caller holds s.mu.
func (s *Server) newJobIDLocked() string {
	s.jobSeq++
	return fmt.Sprintf("j-%016x", s.jobSeq)
}

// worker executes flights off the admission queue until the queue is closed
// and drained.
func (s *Server) worker() {
	defer s.wg.Done()
	for f := range s.queue {
		s.mu.Lock()
		f.running = true
		s.mu.Unlock()
		s.met.queueWait.observe(time.Since(f.enqueuedAt))
		s.met.workersBusy.Add(1)
		start := time.Now()
		res, err := s.runFlight(f)
		elapsed := time.Since(start)
		f.cancel() // release the deadline timer
		s.met.workersBusy.Add(-1)
		s.met.solves.Add(1)
		if f.session {
			s.met.sessionResolves.Add(1)
			s.met.sessionLatency.observe(elapsed)
		} else {
			s.met.solveLatency.observe(elapsed)
		}
		canceled := errors.Is(err, ccsched.ErrCanceled) ||
			errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
		internal := errors.Is(err, ccsched.ErrInternal)
		injected := errors.Is(err, faultinject.ErrInjected)
		if err != nil {
			s.met.solveErrors.Add(1)
			if canceled {
				s.met.solveCanceled.Add(1)
			}
			if internal {
				s.met.panicsRecovered.Add(1)
			}
		}
		f.res, f.err, f.elapsed = res, err, elapsed
		s.mu.Lock()
		// A dead (canceled) flight may already have been replaced in the
		// map by a fresh one; only remove the entry if it is still ours.
		if s.flights[f.key] == f {
			delete(s.flights, f.key)
		}
		// Cancellation depends on timing, never on the instance: such
		// verdicts are not cached. Recovered panics are not either — they
		// feed the quarantine streak instead, so a key that stops panicking
		// (a fixed build, a transient corruption) solves normally again.
		// Injected faults are excluded too: caching one would keep the key
		// erroring after the fault clears, defeating chaos recovery checks.
		// Everything else (results, infeasibility, size-limit errors) is
		// deterministic and is cached.
		if !canceled && !internal && !injected {
			s.results.add(f.key, outcome{res: res, err: err, elapsed: elapsed})
		}
		if err == nil {
			// The full-tier result supersedes any degraded answer served
			// for this key while the solve ran.
			s.results.remove(degradedKey(f.key))
		}
		s.notePanicOutcomeLocked(f.key, internal)
		s.mu.Unlock()
		close(f.done)
		if s.traces != nil && res != nil && res.Trace != nil {
			s.traces.offer(traceEntry{
				SolveMs: float64(elapsed) / float64(time.Millisecond),
				Variant: f.opts.Variant.String(),
				N:       f.in.N(),
				Session: f.session,
				Trace:   res.Trace,
			})
		}
		if err != nil {
			s.logger.Info("solve", "n", f.in.N(), "variant", f.opts.Variant.String(),
				"err", err.Error(), "elapsed_ms", elapsed.Milliseconds())
		} else {
			s.logger.Info("solve", "n", f.in.N(), "variant", f.opts.Variant.String(),
				"tier", res.Tier.String(), "makespan", res.Makespan.RatString(),
				"elapsed_ms", elapsed.Milliseconds())
		}
	}
}

// runFlight executes one flight's solve behind the service's last-resort
// panic boundary: a panic escaping the solver (or an injected server.worker
// fault) becomes an error wrapping ccsched.ErrInternal instead of killing
// the process. ccsched.Solve recovers its own panics already; this boundary
// covers injected Solver implementations and the session re-solve runners.
func (s *Server) runFlight(f *flight) (res *ccsched.Result, err error) {
	defer panicsafe.Recover(&err, "flight")
	if err := faultinject.Check("server.worker"); err != nil {
		return nil, err
	}
	if f.run != nil {
		return f.run(f.ctx)
	}
	return s.cfg.Solver(f.ctx, f.in, f.opts)
}

// notePanicOutcomeLocked updates k's quarantine streak with one solve
// outcome: a recovered panic extends the streak (tripping the TTL at the
// threshold), anything else clears it. Caller holds s.mu.
func (s *Server) notePanicOutcomeLocked(k key, internal bool) {
	if !internal {
		delete(s.quarantine, k)
		return
	}
	if s.cfg.PanicQuarantineThreshold < 0 {
		return
	}
	q := s.quarantine[k]
	if q == nil {
		q = &quarEntry{}
		s.quarantine[k] = q
	}
	q.panics++
	if q.panics >= s.cfg.PanicQuarantineThreshold && q.until.IsZero() {
		q.until = time.Now().Add(s.cfg.PanicQuarantineTTL)
		s.met.keysQuarantined.Add(1)
		s.logger.Warn("request key quarantined after repeated solver panics",
			"panics", q.panics, "ttl", s.cfg.PanicQuarantineTTL.String())
	}
}

// degradedOutcome answers one request key with its degraded-tier result: the
// full-tier answer if it landed meanwhile, the cached degraded answer, or a
// freshly solved millisecond 2-approx (certified LowerBound, degraded=true)
// cached under the key's degraded twin. The degraded entry never serves
// normal submissions — only this path reads it — and the full-tier publish
// of the same key removes it.
func (s *Server) degradedOutcome(k key, in *ccsched.Instance, opts ccsched.Options) outcome {
	dk := degradedKey(k)
	s.mu.Lock()
	if out, ok := s.results.get(k); ok {
		s.mu.Unlock()
		return out
	}
	if out, ok := s.results.get(dk); ok {
		s.mu.Unlock()
		s.met.degradedServed.Add(1)
		return out
	}
	s.mu.Unlock()
	opts.Tier = ccsched.TierApprox
	opts.FallbackTier = ccsched.TierAuto
	opts.Trace = false
	opts.Cache = nil
	start := time.Now()
	res, err := ccsched.Solve(s.baseCtx, in, opts)
	out := outcome{res: res, err: err, elapsed: time.Since(start)}
	if err == nil {
		res.Degraded = true
		s.mu.Lock()
		if _, full := s.results.get(k); !full {
			s.results.add(dk, out)
		}
		s.mu.Unlock()
	}
	s.met.degradedServed.Add(1)
	return out
}

// Shutdown gracefully stops the server: admission closes immediately (new
// submissions get ErrShuttingDown / 503), then the queue drains and
// in-flight solves finish. If ctx expires first, every remaining solve is
// canceled via context — ccsched.Solve aborts within one ILP iteration —
// and Shutdown still waits for the workers to exit before returning
// ctx.Err(). A nil error means the drain completed gracefully. Shutdown is
// idempotent; later calls wait for the same drain.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	first := !s.closed
	if first {
		s.closed = true
		close(s.queue)
		close(s.refineStop)
		if s.ckptStop != nil {
			close(s.ckptStop)
		}
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-ctx.Done():
		err = ctx.Err()
		s.logger.Warn("shutdown grace expired; canceling in-flight solves")
		s.baseCancel()
		<-done
	}
	s.baseCancel()
	// Final snapshot pass, after the workers exited and the background
	// checkpointer stopped (no overlapping writes). It runs even when the
	// grace expired — each file is fsynced and closed before Shutdown
	// returns — and its failures are logged and counted, never escalated:
	// a lost snapshot costs warm state on the next boot, not the drain.
	if first && s.cfg.StateDir != "" {
		<-s.ckptDone
		s.drainSnapshots()
	}
	s.logger.Info("shutdown complete")
	return err
}

// Metrics returns a point-in-time snapshot of the service counters.
func (s *Server) Metrics() MetricsSnapshot {
	s.mu.Lock()
	inFlight := len(s.flights)
	resultEntries := s.results.len()
	sessionsActive := len(s.sessions)
	s.mu.Unlock()
	hits, misses := s.cfg.Cache.Stats()
	return MetricsSnapshot{
		RequestsTotal:              s.met.requests.Load(),
		AdmittedTotal:              s.met.admitted.Load(),
		RejectedQueueFullTotal:     s.met.rejectedFull.Load(),
		CoalescedHitsTotal:         s.met.coalesced.Load(),
		ResultCacheHitsTotal:       s.met.resultCacheHits.Load(),
		SolvesTotal:                s.met.solves.Load(),
		SolveErrorsTotal:           s.met.solveErrors.Load(),
		SolveCanceledTotal:         s.met.solveCanceled.Load(),
		PanicsRecoveredTotal:       s.met.panicsRecovered.Load(),
		KeysQuarantinedTotal:       s.met.keysQuarantined.Load(),
		RejectedQuarantinedTotal:   s.met.rejectedQuarantined.Load(),
		DegradedServedTotal:        s.met.degradedServed.Load(),
		RefinementRungsTotal:       s.met.refineRungs.Load(),
		RefineBudgetExhaustedTotal: s.met.refineBudgetExhausted.Load(),
		RefineParked:               s.met.refineParked.Load(),
		WatchStreams:               s.met.watchStreams.Load(),
		AnytimeGap:                 s.met.anytimeGap.snapshot(),
		SessionsActive:             sessionsActive,
		SessionsCreatedTotal:       s.met.sessionsCreated.Load(),
		SessionResolvesTotal:       s.met.sessionResolves.Load(),
		QueueDepth:                 len(s.queue),
		QueueCapacity:              cap(s.queue),
		Workers:                    s.cfg.Workers,
		WorkersBusy:                s.met.workersBusy.Load(),
		InFlight:                   inFlight,
		ResultCacheEntries:         resultEntries,
		FeasibilityCache:           CacheStats{Hits: hits, Misses: misses, Entries: s.cfg.Cache.Len()},
		SolveLatency:               s.met.solveLatency.snapshot(),
		SessionSolveLatency:        s.met.sessionLatency.snapshot(),
		QueueWaitLatency:           s.met.queueWait.snapshot(),
		SnapshotWritesTotal:        s.met.snapshotWrites.Load(),
		SnapshotWriteErrors:        s.met.snapshotWriteErrors.Load(),
		SnapshotRetriesTotal:       s.met.snapshotRetries.Load(),
		SnapshotRestoresTotal:      s.met.snapshotRestores.Load(),
		SnapshotCorruptSkipped:     s.met.snapshotCorruptSkipped.Load(),
		PersistDegradedTotal:       s.met.persistDegradedEvents.Load(),
		CheckpointDegraded:         s.persistDegraded.Load(),
		RestoreLatency:             s.met.restoreLatency.snapshot(),
		UptimeSeconds:              time.Since(s.start).Seconds(),
	}
}
