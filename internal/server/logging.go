// Structured request logging. Every HTTP request gets a request id
// (honoring a client-supplied X-Request-Id, minting one otherwise), echoed
// in the X-Request-Id response header, and one slog line on completion:
// method, path, status, latency and an outcome label (admitted, coalesced,
// cache-hit, queue-full, timeout, client-closed, ...). Handlers refine the
// outcome through the request-scoped reqInfo; the middleware falls back to
// a status-derived label so every request logs something meaningful.
package server

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"strings"
	"time"
)

// logfHandler adapts a Printf-style sink (Config.Logf, typically t.Logf in
// tests) to slog: each record renders as "msg key=val ...".
type logfHandler struct {
	logf  func(format string, args ...any)
	attrs []slog.Attr
}

// Enabled reports every level as loggable; the sink decides nothing.
func (h *logfHandler) Enabled(context.Context, slog.Level) bool { return true }

// Handle renders the record as one Printf line.
func (h *logfHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(rec.Message)
	emit := func(a slog.Attr) {
		fmt.Fprintf(&b, " %s=%v", a.Key, a.Value.Any())
	}
	for _, a := range h.attrs {
		emit(a)
	}
	rec.Attrs(func(a slog.Attr) bool {
		emit(a)
		return true
	})
	h.logf("%s", b.String())
	return nil
}

// WithAttrs accumulates attrs onto a copy of the handler.
func (h *logfHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return &logfHandler{logf: h.logf, attrs: append(append([]slog.Attr{}, h.attrs...), attrs...)}
}

// WithGroup flattens groups: the adapter's consumers are test logs, where a
// flat key list reads better than nesting.
func (h *logfHandler) WithGroup(string) slog.Handler { return h }

// reqInfo is the request-scoped logging state shared between the middleware
// and the handlers: the request id (also returned to clients) and the
// outcome label the handler settled on.
type reqInfo struct {
	id      string
	outcome string
}

type reqInfoKey struct{}

// requestInfo returns the request's reqInfo, or nil outside the middleware
// (direct handler tests).
func requestInfo(r *http.Request) *reqInfo {
	ri, _ := r.Context().Value(reqInfoKey{}).(*reqInfo)
	return ri
}

// requestID returns the request's id, empty outside the middleware.
func requestID(r *http.Request) string {
	if ri := requestInfo(r); ri != nil {
		return ri.id
	}
	return ""
}

// setOutcome records the handler's outcome label for the request log line.
func setOutcome(r *http.Request, outcome string) {
	if ri := requestInfo(r); ri != nil {
		ri.outcome = outcome
	}
}

// statusRecorder captures the response status for the request log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status before delegating.
func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Write defaults the status to 200 on an implicit header write.
func (w *statusRecorder) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(p)
}

// Flush forwards http.Flusher, so SSE streams (/watch) flush through the
// logging middleware instead of buffering until the stream ends.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// outcomeForStatus is the fallback label when no handler called setOutcome.
func outcomeForStatus(status int) string {
	switch status {
	case http.StatusOK:
		return "done"
	case http.StatusAccepted:
		return "accepted"
	case http.StatusTooManyRequests:
		return "queue-full"
	case http.StatusRequestTimeout:
		return "timeout"
	case statusClientClosedRequest:
		return "client-closed"
	case http.StatusServiceUnavailable:
		return "shutting-down"
	}
	if status >= 400 && status < 500 {
		return "client-error"
	}
	if status >= 500 {
		return "server-error"
	}
	return "done"
}

// withRequestLog wraps next with request-id assignment and one structured
// log line per completed request.
func (s *Server) withRequestLog(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get("X-Request-Id")
		if id == "" {
			id = fmt.Sprintf("r-%016x", s.reqSeq.Add(1))
		}
		ri := &reqInfo{id: id}
		w.Header().Set("X-Request-Id", id)
		rec := &statusRecorder{ResponseWriter: w}
		start := time.Now()
		next.ServeHTTP(rec, r.WithContext(context.WithValue(r.Context(), reqInfoKey{}, ri)))
		status := rec.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := ri.outcome
		if outcome == "" {
			outcome = outcomeForStatus(status)
		}
		s.logger.Info("request",
			"id", id,
			"method", r.Method,
			"path", r.URL.Path,
			"status", status,
			"outcome", outcome,
			"ms", float64(time.Since(start))/float64(time.Millisecond),
		)
	})
}
