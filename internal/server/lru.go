package server

import "container/list"

// lruCache is a bounded map with least-recently-used eviction, used for the
// full-result cache (layered above the per-guess feasibility cache) and the
// job table. It is NOT self-locking: every method must run under the owning
// Server's mutex.
type lruCache[K comparable, V any] struct {
	max int
	ll  *list.List
	m   map[K]*list.Element
}

// lruItem is one cache slot.
type lruItem[K comparable, V any] struct {
	k K
	v V
}

// newLRU returns an empty cache holding at most max entries (max ≥ 1).
func newLRU[K comparable, V any](max int) *lruCache[K, V] {
	if max < 1 {
		max = 1
	}
	return &lruCache[K, V]{max: max, ll: list.New(), m: make(map[K]*list.Element)}
}

// get returns the value for k and marks it most recently used.
func (c *lruCache[K, V]) get(k K) (V, bool) {
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*lruItem[K, V]).v, true
	}
	var zero V
	return zero, false
}

// add inserts or replaces the value for k, evicting the least recently used
// entry when the cache is full.
func (c *lruCache[K, V]) add(k K, v V) {
	if el, ok := c.m[k]; ok {
		el.Value.(*lruItem[K, V]).v = v
		c.ll.MoveToFront(el)
		return
	}
	for c.ll.Len() >= c.max {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*lruItem[K, V]).k)
	}
	c.m[k] = c.ll.PushFront(&lruItem[K, V]{k: k, v: v})
}

// remove deletes the entry for k; reports whether one existed. Used to
// retire a degraded result when the full-tier solve of the same request
// publishes.
func (c *lruCache[K, V]) remove(k K) bool {
	el, ok := c.m[k]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.m, k)
	return true
}

// len reports the number of cached entries.
func (c *lruCache[K, V]) len() int { return c.ll.Len() }
