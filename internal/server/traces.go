// The slowest-traces debug ring. While Config.TraceRing is enabled, every
// solve runs traced and the worker offers its finished trace here; the ring
// keeps only the N slowest solves seen so far, so GET /v1/debug/traces
// always answers "where did the service's worst wall clock go" without
// storing a trace per request. Memory is bounded by N × the span cap.
package server

import (
	"net/http"
	"sort"
	"sync"

	"ccsched"
)

// traceEntry is one retained solve trace plus the labels needed to read it
// without the original request.
type traceEntry struct {
	// SolveMs is the solver wall clock that ranked this entry.
	SolveMs float64 `json:"solve_ms"`
	// Variant and N identify the workload shape.
	Variant string `json:"variant"`
	N       int    `json:"n"`
	// Session marks session re-solves (their traces show the delta path:
	// seeded window vs binary search, certificate re-verifications).
	Session bool `json:"session,omitempty"`
	// Trace is the span timeline.
	Trace *ccsched.SolveTrace `json:"trace"`
}

// traceRing retains the cap slowest entries ever offered.
type traceRing struct {
	mu      sync.Mutex
	cap     int
	entries []traceEntry // sorted by SolveMs descending
}

func newTraceRing(cap int) *traceRing {
	return &traceRing{cap: cap}
}

// offer inserts e if it is among the cap slowest, evicting the fastest
// retained entry when full.
func (r *traceRing) offer(e traceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.entries) == r.cap {
		if e.SolveMs <= r.entries[len(r.entries)-1].SolveMs {
			return
		}
		r.entries = r.entries[:len(r.entries)-1]
	}
	i := sort.Search(len(r.entries), func(i int) bool { return r.entries[i].SolveMs < e.SolveMs })
	r.entries = append(r.entries, traceEntry{})
	copy(r.entries[i+1:], r.entries[i:])
	r.entries[i] = e
}

// snapshot copies the retained entries, slowest first.
func (r *traceRing) snapshot() []traceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]traceEntry, len(r.entries))
	copy(out, r.entries)
	return out
}

// TracesResponse is the body of GET /v1/debug/traces.
type TracesResponse struct {
	// Capacity is the ring size; zero means the ring is disabled.
	Capacity int `json:"capacity"`
	// Traces are the retained entries, slowest first.
	Traces []traceEntry `json:"traces"`
}

// handleTraces serves the slowest-traces ring.
func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	if s.traces == nil {
		writeJSON(w, http.StatusOK, TracesResponse{Traces: []traceEntry{}})
		return
	}
	writeJSON(w, http.StatusOK, TracesResponse{Capacity: s.traces.cap, Traces: s.traces.snapshot()})
}
