package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"ccsched"
	"ccsched/internal/server"
)

// sessionCall performs one /v1/sessions request and decodes the response.
func sessionCall(t *testing.T, method, url string, body any) (int, server.SessionResponse) {
	t.Helper()
	var buf bytes.Buffer
	if body != nil {
		if err := json.NewEncoder(&buf).Encode(body); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(method, url, &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr server.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatalf("%s %s: decoding response: %v", method, url, err)
	}
	return resp.StatusCode, sr
}

// TestSessionLifecycle drives create → patch → get → delete end to end with
// the real solver and checks every re-solve's makespan against a stateless
// cold Solve of a mirrored instance.
func TestSessionLifecycle(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 2, Logf: t.Logf})
	in, err := ccsched.Generate("uniform", ccsched.GeneratorConfig{
		N: 40, Classes: 6, Machines: 5, Slots: 2, PMax: 200, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	opts := ccsched.Options{Variant: ccsched.Splittable, Tier: ccsched.TierPTAS, Epsilon: 1}

	code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in, Options: opts, TimeoutMs: 60000,
	})
	if code != http.StatusOK || sr.Status != server.StatusDone {
		t.Fatalf("create: %d %+v", code, sr)
	}
	if sr.SessionID == "" || len(sr.JobIDs) != in.N() || sr.Result == nil {
		t.Fatalf("create: incomplete response %+v", sr)
	}
	mirror := in.Clone()

	coldCheck := func(step string, got *server.SessionResponse) {
		t.Helper()
		coldOpts := opts
		coldOpts.Cache = ccsched.NewFeasibilityCache()
		want, err := ccsched.Solve(context.Background(), mirror, coldOpts)
		if err != nil {
			t.Fatalf("%s: cold solve: %v", step, err)
		}
		if got.Result == nil || got.Result.Makespan.Cmp(want.Makespan) != 0 {
			t.Fatalf("%s: session makespan %v != cold %s", step, got.Result, want.Makespan.RatString())
		}
	}
	coldCheck("create", &sr)

	// Patch: resize two jobs, remove one, add one, by stable id.
	delta := server.SessionDelta{
		Resize: []server.SessionResize{
			{ID: sr.JobIDs[0], P: 177},
			{ID: sr.JobIDs[5], P: 3},
		},
		Remove: []int64{sr.JobIDs[7]},
		Add:    []server.SessionJob{{P: 55, Class: 1}},
	}
	mirror.P[0], mirror.P[5] = 177, 3
	mirror.P = append(mirror.P[:7], mirror.P[8:]...)
	mirror.Class = append(mirror.Class[:7], mirror.Class[8:]...)
	mirror.P = append(mirror.P, 55)
	mirror.Class = append(mirror.Class, 1)

	code, pr := sessionCall(t, "PATCH", ts.URL+"/v1/sessions/"+sr.SessionID, delta)
	if code != http.StatusOK || pr.Status != server.StatusDone {
		t.Fatalf("patch: %d %+v", code, pr)
	}
	if len(pr.JobIDs) != mirror.N() {
		t.Fatalf("patch: %d job ids, want %d", len(pr.JobIDs), mirror.N())
	}
	coldCheck("patch", &pr)

	// An unchanged GET is answered from the result cache.
	code, gr := sessionCall(t, "GET", ts.URL+"/v1/sessions/"+sr.SessionID, nil)
	if code != http.StatusOK || gr.Status != server.StatusDone {
		t.Fatalf("get: %d %+v", code, gr)
	}
	if !gr.Cached {
		t.Fatalf("unchanged GET was not served from the result cache: %+v", gr)
	}
	coldCheck("get", &gr)

	// Machine-count delta.
	code, mr := sessionCall(t, "PATCH", ts.URL+"/v1/sessions/"+sr.SessionID, server.SessionDelta{SetMachines: 7})
	if code != http.StatusOK {
		t.Fatalf("patch machines: %d %+v", code, mr)
	}
	mirror.M = 7
	coldCheck("patch machines", &mr)

	// Delete, then every verb 404s.
	if code, _ := sessionCall(t, "DELETE", ts.URL+"/v1/sessions/"+sr.SessionID, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	if code, _ := sessionCall(t, "GET", ts.URL+"/v1/sessions/"+sr.SessionID, nil); code != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", code)
	}
	if code, _ := sessionCall(t, "PATCH", ts.URL+"/v1/sessions/"+sr.SessionID, server.SessionDelta{}); code != http.StatusNotFound {
		t.Fatalf("patch after delete: %d, want 404", code)
	}
}

// TestSessionDeltaValidation checks the delta surface's error mapping.
func TestSessionDeltaValidation(t *testing.T) {
	_, ts := startServer(t, server.Config{Workers: 1, MaxJobs: 50, Logf: t.Logf})
	in := testInstance(10, 1)
	code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: in, Options: ccsched.Options{Tier: ccsched.TierApprox},
	})
	if code != http.StatusOK {
		t.Fatalf("create: %d %+v", code, sr)
	}
	for name, delta := range map[string]server.SessionDelta{
		"unknown resize id": {Resize: []server.SessionResize{{ID: 999999, P: 5}}},
		"bad resize size":   {Resize: []server.SessionResize{{ID: sr.JobIDs[0], P: 0}}},
		"unknown remove id": {Remove: []int64{424242}},
	} {
		code, er := sessionCall(t, "PATCH", ts.URL+"/v1/sessions/"+sr.SessionID, delta)
		if code != http.StatusInternalServerError && code != http.StatusBadRequest && code != http.StatusUnprocessableEntity {
			t.Fatalf("%s: status %d %+v, want an error status", name, code, er)
		}
		if er.Error == "" {
			t.Fatalf("%s: no error message", name)
		}
	}
	// Oversized add batch trips the MaxJobs admission bound with 422.
	big := server.SessionDelta{}
	for i := 0; i < 60; i++ {
		big.Add = append(big.Add, server.SessionJob{P: 1, Class: 0})
	}
	code, _ = sessionCall(t, "PATCH", ts.URL+"/v1/sessions/"+sr.SessionID, big)
	if code != http.StatusUnprocessableEntity {
		t.Fatalf("oversized add: %d, want 422", code)
	}
	// The failed batches left the session solvable.
	code, gr := sessionCall(t, "GET", ts.URL+"/v1/sessions/"+sr.SessionID, nil)
	if code != http.StatusOK || gr.Status != server.StatusDone {
		t.Fatalf("get after failed deltas: %d %+v", code, gr)
	}
}

// TestSessionCapAndMetrics checks the MaxSessions bound and the
// session-labeled metrics split.
func TestSessionCapAndMetrics(t *testing.T) {
	s, ts := startServer(t, server.Config{Workers: 1, MaxSessions: 2, Logf: t.Logf})
	opts := ccsched.Options{Tier: ccsched.TierApprox}
	var ids []string
	for i := 0; i < 2; i++ {
		code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
			Instance: testInstance(8, int64(i)), Options: opts,
		})
		if code != http.StatusOK {
			t.Fatalf("create %d: %d", i, code)
		}
		ids = append(ids, sr.SessionID)
	}
	if code, _ := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: testInstance(8, 9), Options: opts,
	}); code != http.StatusTooManyRequests {
		t.Fatalf("create beyond cap: %d, want 429", code)
	}
	// Freeing one makes room again.
	if code, _ := sessionCall(t, "DELETE", ts.URL+"/v1/sessions/"+ids[0], nil); code != http.StatusOK {
		t.Fatal("delete failed")
	}
	if code, _ := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{
		Instance: testInstance(8, 9), Options: opts,
	}); code != http.StatusOK {
		t.Fatal("create after delete still refused")
	}

	m := s.Metrics()
	if m.SessionsActive != 2 {
		t.Fatalf("sessions_active = %d, want 2", m.SessionsActive)
	}
	if m.SessionsCreatedTotal != 3 {
		t.Fatalf("sessions_created_total = %d, want 3", m.SessionsCreatedTotal)
	}
	if m.SessionResolvesTotal < 2 {
		t.Fatalf("session_resolves_total = %d, want ≥ 2", m.SessionResolvesTotal)
	}
	// Session re-solves land in the session histogram, not the one-shot one.
	if m.SessionSolveLatency.Count != m.SessionResolvesTotal {
		t.Fatalf("session histogram count %d != session resolves %d", m.SessionSolveLatency.Count, m.SessionResolvesTotal)
	}
	if m.SolveLatency.Count != m.SolvesTotal-m.SessionResolvesTotal {
		t.Fatalf("one-shot histogram count %d != %d-%d", m.SolveLatency.Count, m.SolvesTotal, m.SessionResolvesTotal)
	}
}

// TestSessionSharesPipelineWithSolve proves session re-solves publish into
// the same canonical result cache one-shot requests read: a /v1/solve of a
// job-shuffled copy of a session's instance costs zero additional solves.
func TestSessionSharesPipelineWithSolve(t *testing.T) {
	s, ts := startServer(t, server.Config{Workers: 1, Logf: t.Logf})
	in := testInstance(12, 4)
	opts := ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox}
	code, sr := sessionCall(t, "POST", ts.URL+"/v1/sessions", server.SessionCreateRequest{Instance: in, Options: opts})
	if code != http.StatusOK || sr.Status != server.StatusDone {
		t.Fatalf("create: %d %+v", code, sr)
	}
	before := s.Metrics()
	status, resp := postSolve(t, ts.URL, server.SolveRequest{Instance: shuffle(in, 7), Options: opts}, "")
	if status != http.StatusOK || resp.Status != server.StatusDone {
		t.Fatalf("one-shot solve: %d %+v", status, resp)
	}
	if !resp.Cached {
		t.Fatalf("one-shot solve of a session-solved instance missed the result cache: %+v", resp)
	}
	after := s.Metrics()
	if after.SolvesTotal != before.SolvesTotal {
		t.Fatalf("one-shot solve ran a solver invocation (%d → %d)", before.SolvesTotal, after.SolvesTotal)
	}
}
