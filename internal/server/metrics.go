package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the upper bounds (in milliseconds) of the solve
// latency histograms, roughly logarithmic from 1ms to 30s; observations
// beyond the last bound land in the implicit +Inf bucket.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// latencyHist is one lock-free cumulative latency histogram.
type latencyHist struct {
	counts [15]atomic.Int64 // len(latencyBucketsMs)+1, last is +Inf
	total  atomic.Int64
	sumUs  atomic.Int64
}

// observe records one wall-clock duration.
func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumUs.Add(int64(d / time.Microsecond))
}

// snapshot renders the histogram.
func (h *latencyHist) snapshot() LatencySnapshot {
	out := LatencySnapshot{
		Count: h.total.Load(),
		SumMs: float64(h.sumUs.Load()) / 1000,
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := LatencyBucket{Count: cum}
		if i < len(latencyBucketsMs) {
			b.LeMs = latencyBucketsMs[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// metrics holds the service counters. All fields are atomics, so the hot
// path never takes a lock to count.
type metrics struct {
	requests        atomic.Int64 // solve submissions received (any outcome)
	admitted        atomic.Int64 // new flights accepted into the queue
	rejectedFull    atomic.Int64 // submissions refused with 429 (queue full)
	coalesced       atomic.Int64 // submissions attached to an in-flight solve
	resultCacheHits atomic.Int64 // submissions answered from the result LRU
	solves          atomic.Int64 // solver invocations completed (one-shot + session)
	solveErrors     atomic.Int64 // solver invocations that returned an error
	solveCanceled   atomic.Int64 // ...of which cancellations/deadline expiries
	workersBusy     atomic.Int64 // workers currently inside the solver

	sessionsCreated atomic.Int64 // sessions ever created
	sessionResolves atomic.Int64 // session re-solves executed by workers

	panicsRecovered     atomic.Int64 // solves that ended in a recovered panic (ErrInternal)
	keysQuarantined     atomic.Int64 // request keys quarantined after repeated panics
	rejectedQuarantined atomic.Int64 // submissions refused while their key was quarantined
	degradedServed      atomic.Int64 // degraded 2-approx answers served (soft timeout or saturation)

	// queueWait tracks admission-to-worker-pickup waits, the queueing delay
	// a client pays before its solve even starts; under load it grows before
	// solve latency does, making it the earlier saturation signal.
	queueWait latencyHist

	snapshotWrites         atomic.Int64 // session snapshots persisted to StateDir
	snapshotWriteErrors    atomic.Int64 // snapshot encode/write failures (non-fatal)
	snapshotRetries        atomic.Int64 // snapshot write retries after a failed attempt
	snapshotRestores       atomic.Int64 // sessions restored (boot or PUT export)
	snapshotCorruptSkipped atomic.Int64 // snapshots skipped on boot (unreadable/stale)
	persistDegradedEvents  atomic.Int64 // checkpointing degradations to in-memory-only

	// restoreLatency tracks RestoreSession wall clocks (boot + import), so
	// snapshot restore cost is visible next to solve cost.
	restoreLatency latencyHist

	// Solve latency is labeled: session re-solves land in sessionLatency,
	// everything else in solveLatency, so a churn workload's incremental
	// wins are attributable instead of being averaged into the one-shot
	// histogram.
	solveLatency   latencyHist
	sessionLatency latencyHist
}

// LatencyBucket is one cumulative histogram bucket: Count observations took
// at most LeMs milliseconds. LeMs is 0 for the final +Inf bucket.
type LatencyBucket struct {
	LeMs  float64 `json:"le_ms,omitempty"`
	Count int64   `json:"count"`
}

// LatencySnapshot is a solve latency histogram at one point in time.
type LatencySnapshot struct {
	// Count is the number of completed solves observed.
	Count int64 `json:"count"`
	// SumMs is the summed wall clock of all observed solves.
	SumMs float64 `json:"sum_ms"`
	// Buckets is the cumulative histogram; the last bucket (le_ms omitted)
	// counts everything.
	Buckets []LatencyBucket `json:"buckets"`
}

// CacheStats reports the shared feasibility cache's counters.
type CacheStats struct {
	// Hits and Misses are cumulative lookup counters.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries is the current number of memoized guess verdicts.
	Entries int `json:"entries"`
}

// MetricsSnapshot is the JSON document served at /metrics: admission,
// coalescing and cache counters, queue and worker gauges, session gauges,
// and the labeled solve latency histograms.
type MetricsSnapshot struct {
	// RequestsTotal counts solve submissions received, whatever the outcome.
	RequestsTotal int64 `json:"requests_total"`
	// AdmittedTotal counts submissions that became a new queued solve.
	AdmittedTotal int64 `json:"admitted_total"`
	// RejectedQueueFullTotal counts submissions refused with 429.
	RejectedQueueFullTotal int64 `json:"rejected_queue_full_total"`
	// CoalescedHitsTotal counts submissions served by attaching to an
	// identical in-flight solve (singleflight).
	CoalescedHitsTotal int64 `json:"coalesced_hits_total"`
	// ResultCacheHitsTotal counts submissions answered from the full-result
	// LRU without touching the queue.
	ResultCacheHitsTotal int64 `json:"result_cache_hits_total"`
	// SolvesTotal counts completed solver invocations, one-shot and session
	// re-solves alike (SessionResolvesTotal is the session subset).
	SolvesTotal int64 `json:"solves_total"`
	// SolveErrorsTotal counts solver invocations that returned any error.
	SolveErrorsTotal int64 `json:"solve_errors_total"`
	// SolveCanceledTotal counts solver errors that were cancellations or
	// deadline expiries (a subset of SolveErrorsTotal).
	SolveCanceledTotal int64 `json:"solve_canceled_total"`
	// PanicsRecoveredTotal counts solves that ended in a recovered panic
	// (ccsched.ErrInternal); each was answered with HTTP 500, never cached,
	// and counted toward its request key's quarantine streak.
	PanicsRecoveredTotal int64 `json:"panics_recovered_total"`
	// KeysQuarantinedTotal counts request keys quarantined after repeated
	// recovered panics (see Config.PanicQuarantineThreshold).
	KeysQuarantinedTotal int64 `json:"keys_quarantined_total"`
	// RejectedQuarantinedTotal counts submissions refused with 422 because
	// their request key was quarantined.
	RejectedQuarantinedTotal int64 `json:"rejected_quarantined_total"`
	// DegradedServedTotal counts degraded 2-approx answers served in place of
	// the requested tier (soft-timeout expiry or admission saturation).
	DegradedServedTotal int64 `json:"degraded_served_total"`
	// SessionsActive is the number of live sessions right now.
	SessionsActive int `json:"sessions_active"`
	// SessionsCreatedTotal counts sessions ever created.
	SessionsCreatedTotal int64 `json:"sessions_created_total"`
	// SessionResolvesTotal counts session re-solves executed by the worker
	// pool (result-cache hits and coalesced waits add nothing here).
	SessionResolvesTotal int64 `json:"session_resolves_total"`
	// QueueDepth and QueueCapacity describe the admission queue right now.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Workers is the pool size; WorkersBusy the number currently solving.
	Workers     int   `json:"workers"`
	WorkersBusy int64 `json:"workers_busy"`
	// InFlight is the number of distinct solves admitted but not finished.
	InFlight int `json:"in_flight"`
	// ResultCacheEntries is the current size of the full-result LRU.
	ResultCacheEntries int `json:"result_cache_entries"`
	// FeasibilityCache reports the shared per-guess cache under the LRU.
	FeasibilityCache CacheStats `json:"feasibility_cache"`
	// SolveLatency is the histogram of completed one-shot solve wall
	// clocks (session re-solves excluded — see SessionSolveLatency).
	SolveLatency LatencySnapshot `json:"solve_latency"`
	// SessionSolveLatency is the histogram of completed session re-solve
	// wall clocks, kept separate so incremental re-solves are attributable.
	SessionSolveLatency LatencySnapshot `json:"session_solve_latency"`
	// QueueWaitLatency is the histogram of admission-to-worker-pickup waits;
	// it saturates before the solve histograms do when the pool is too small.
	QueueWaitLatency LatencySnapshot `json:"queue_wait_latency"`
	// SnapshotWritesTotal counts session snapshots persisted to the state
	// directory (checkpoints and drain passes).
	SnapshotWritesTotal int64 `json:"snapshot_writes_total"`
	// SnapshotWriteErrors counts snapshot encode or write failures; they are
	// non-fatal (the session stays dirty and the next tick retries).
	SnapshotWriteErrors int64 `json:"snapshot_write_errors_total"`
	// SnapshotRetriesTotal counts in-checkpoint write retries (capped
	// exponential backoff with jitter) after a failed snapshot write.
	SnapshotRetriesTotal int64 `json:"snapshot_retries_total"`
	// PersistDegradedTotal counts transitions into in-memory-only
	// checkpointing after persistent disk failure; CheckpointDegraded reports
	// whether the server is in that state right now.
	PersistDegradedTotal int64 `json:"persist_degraded_total"`
	// CheckpointDegraded reports that checkpointing is currently degraded to
	// in-memory only: snapshot writes keep failing, sessions stay dirty, and
	// a background disk probe will resume durability without a restart. Also
	// surfaced as a /readyz failure.
	CheckpointDegraded bool `json:"checkpoint_degraded"`
	// SnapshotRestoresTotal counts sessions restored from snapshots, at boot
	// and via PUT /v1/sessions/{id}/export.
	SnapshotRestoresTotal int64 `json:"snapshot_restores_total"`
	// SnapshotCorruptSkipped counts snapshot files skipped on boot because
	// they were unreadable, checksum-mismatched or from a different schema
	// version — each is logged with its reason and never fails the boot.
	SnapshotCorruptSkipped int64 `json:"snapshot_corrupt_skipped_total"`
	// RestoreLatency is the histogram of snapshot restore wall clocks.
	RestoreLatency LatencySnapshot `json:"restore_latency"`
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
}
