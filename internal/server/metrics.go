package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the upper bounds (in milliseconds) of the solve
// latency histogram, roughly logarithmic from 1ms to 30s; observations
// beyond the last bound land in the implicit +Inf bucket.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// metrics holds the service counters. All fields are atomics, so the hot
// path never takes a lock to count.
type metrics struct {
	requests        atomic.Int64 // solve submissions received (any outcome)
	admitted        atomic.Int64 // new flights accepted into the queue
	rejectedFull    atomic.Int64 // submissions refused with 429 (queue full)
	coalesced       atomic.Int64 // submissions attached to an in-flight solve
	resultCacheHits atomic.Int64 // submissions answered from the result LRU
	solves          atomic.Int64 // solver invocations completed
	solveErrors     atomic.Int64 // solver invocations that returned an error
	solveCanceled   atomic.Int64 // ...of which cancellations/deadline expiries
	workersBusy     atomic.Int64 // workers currently inside the solver

	latencyCounts [15]atomic.Int64 // len(latencyBucketsMs)+1, last is +Inf
	latencyTotal  atomic.Int64
	latencySumUs  atomic.Int64
}

// observe records one solve wall-clock duration in the histogram.
func (m *metrics) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	m.latencyCounts[i].Add(1)
	m.latencyTotal.Add(1)
	m.latencySumUs.Add(int64(d / time.Microsecond))
}

// LatencyBucket is one cumulative histogram bucket: Count observations took
// at most LeMs milliseconds. LeMs is 0 for the final +Inf bucket.
type LatencyBucket struct {
	LeMs  float64 `json:"le_ms,omitempty"`
	Count int64   `json:"count"`
}

// LatencySnapshot is the solve latency histogram at one point in time.
type LatencySnapshot struct {
	// Count is the number of completed solves observed.
	Count int64 `json:"count"`
	// SumMs is the summed wall clock of all observed solves.
	SumMs float64 `json:"sum_ms"`
	// Buckets is the cumulative histogram; the last bucket (le_ms omitted)
	// counts everything.
	Buckets []LatencyBucket `json:"buckets"`
}

// CacheStats reports the shared feasibility cache's counters.
type CacheStats struct {
	// Hits and Misses are cumulative lookup counters.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries is the current number of memoized guess verdicts.
	Entries int `json:"entries"`
}

// MetricsSnapshot is the JSON document served at /metrics: admission,
// coalescing and cache counters, queue and worker gauges, and the solve
// latency histogram.
type MetricsSnapshot struct {
	// RequestsTotal counts solve submissions received, whatever the outcome.
	RequestsTotal int64 `json:"requests_total"`
	// AdmittedTotal counts submissions that became a new queued solve.
	AdmittedTotal int64 `json:"admitted_total"`
	// RejectedQueueFullTotal counts submissions refused with 429.
	RejectedQueueFullTotal int64 `json:"rejected_queue_full_total"`
	// CoalescedHitsTotal counts submissions served by attaching to an
	// identical in-flight solve (singleflight).
	CoalescedHitsTotal int64 `json:"coalesced_hits_total"`
	// ResultCacheHitsTotal counts submissions answered from the full-result
	// LRU without touching the queue.
	ResultCacheHitsTotal int64 `json:"result_cache_hits_total"`
	// SolvesTotal counts completed solver invocations.
	SolvesTotal int64 `json:"solves_total"`
	// SolveErrorsTotal counts solver invocations that returned any error.
	SolveErrorsTotal int64 `json:"solve_errors_total"`
	// SolveCanceledTotal counts solver errors that were cancellations or
	// deadline expiries (a subset of SolveErrorsTotal).
	SolveCanceledTotal int64 `json:"solve_canceled_total"`
	// QueueDepth and QueueCapacity describe the admission queue right now.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Workers is the pool size; WorkersBusy the number currently solving.
	Workers     int   `json:"workers"`
	WorkersBusy int64 `json:"workers_busy"`
	// InFlight is the number of distinct solves admitted but not finished.
	InFlight int `json:"in_flight"`
	// ResultCacheEntries is the current size of the full-result LRU.
	ResultCacheEntries int `json:"result_cache_entries"`
	// FeasibilityCache reports the shared per-guess cache under the LRU.
	FeasibilityCache CacheStats `json:"feasibility_cache"`
	// SolveLatency is the histogram of completed solve wall clocks.
	SolveLatency LatencySnapshot `json:"solve_latency"`
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
}

// latencySnapshot renders the histogram.
func (m *metrics) latencySnapshot() LatencySnapshot {
	out := LatencySnapshot{
		Count: m.latencyTotal.Load(),
		SumMs: float64(m.latencySumUs.Load()) / 1000,
	}
	var cum int64
	for i := range m.latencyCounts {
		cum += m.latencyCounts[i].Load()
		b := LatencyBucket{Count: cum}
		if i < len(latencyBucketsMs) {
			b.LeMs = latencyBucketsMs[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}
