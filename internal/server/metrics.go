package server

import (
	"sync/atomic"
	"time"
)

// latencyBucketsMs are the upper bounds (in milliseconds) of the solve
// latency histograms, roughly logarithmic from 1ms to 30s; observations
// beyond the last bound land in the implicit +Inf bucket.
var latencyBucketsMs = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 30000}

// latencyHist is one lock-free cumulative latency histogram.
type latencyHist struct {
	counts [15]atomic.Int64 // len(latencyBucketsMs)+1, last is +Inf
	total  atomic.Int64
	sumUs  atomic.Int64
}

// observe records one wall-clock duration.
func (h *latencyHist) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	i := 0
	for i < len(latencyBucketsMs) && ms > latencyBucketsMs[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumUs.Add(int64(d / time.Microsecond))
}

// snapshot renders the histogram.
func (h *latencyHist) snapshot() LatencySnapshot {
	out := LatencySnapshot{
		Count: h.total.Load(),
		SumMs: float64(h.sumUs.Load()) / 1000,
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := LatencyBucket{Count: cum}
		if i < len(latencyBucketsMs) {
			b.LeMs = latencyBucketsMs[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// gapBuckets are the upper bounds of the anytime optimality-gap histogram.
// Gaps are dimensionless ratios (Makespan/LowerBound − 1), not durations, so
// this histogram has its own bucket scale and its own Prometheus renderer
// (promGapHistogram — no millisecond-to-second conversion).
var gapBuckets = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1, 2}

// gapHist is one lock-free cumulative histogram over dimensionless gap
// values, mirroring latencyHist's layout.
type gapHist struct {
	counts [9]atomic.Int64 // len(gapBuckets)+1, last is +Inf
	total  atomic.Int64
	sumE6  atomic.Int64 // sum in millionths, so the accumulator stays integral
}

// observe records one published improvement's optimality gap.
func (h *gapHist) observe(gap float64) {
	i := 0
	for i < len(gapBuckets) && gap > gapBuckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.total.Add(1)
	h.sumE6.Add(int64(gap * 1e6))
}

// snapshot renders the histogram.
func (h *gapHist) snapshot() GapSnapshot {
	out := GapSnapshot{
		Count: h.total.Load(),
		Sum:   float64(h.sumE6.Load()) / 1e6,
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		b := GapBucket{Count: cum}
		if i < len(gapBuckets) {
			b.Le = gapBuckets[i]
		}
		out.Buckets = append(out.Buckets, b)
	}
	return out
}

// metrics holds the service counters. All fields are atomics, so the hot
// path never takes a lock to count.
type metrics struct {
	requests        atomic.Int64 // solve submissions received (any outcome)
	admitted        atomic.Int64 // new flights accepted into the queue
	rejectedFull    atomic.Int64 // submissions refused with 429 (queue full)
	coalesced       atomic.Int64 // submissions attached to an in-flight solve
	resultCacheHits atomic.Int64 // submissions answered from the result LRU
	solves          atomic.Int64 // solver invocations completed (one-shot + session)
	solveErrors     atomic.Int64 // solver invocations that returned an error
	solveCanceled   atomic.Int64 // ...of which cancellations/deadline expiries
	workersBusy     atomic.Int64 // workers currently inside the solver

	sessionsCreated atomic.Int64 // sessions ever created
	sessionResolves atomic.Int64 // session re-solves executed by workers

	refineRungs           atomic.Int64 // anytime ε-ladder rungs executed by the refinement pool
	refineBudgetExhausted atomic.Int64 // refinement steps parked on an exhausted tenant budget
	refineParked          atomic.Int64 // gauge: ladders currently parked (budget or queue pressure)
	watchStreams          atomic.Int64 // gauge: open /watch SSE streams
	anytimeGap            gapHist      // optimality gaps of published anytime improvements

	panicsRecovered     atomic.Int64 // solves that ended in a recovered panic (ErrInternal)
	keysQuarantined     atomic.Int64 // request keys quarantined after repeated panics
	rejectedQuarantined atomic.Int64 // submissions refused while their key was quarantined
	degradedServed      atomic.Int64 // degraded 2-approx answers served (soft timeout or saturation)

	// queueWait tracks admission-to-worker-pickup waits, the queueing delay
	// a client pays before its solve even starts; under load it grows before
	// solve latency does, making it the earlier saturation signal.
	queueWait latencyHist

	snapshotWrites         atomic.Int64 // session snapshots persisted to StateDir
	snapshotWriteErrors    atomic.Int64 // snapshot encode/write failures (non-fatal)
	snapshotRetries        atomic.Int64 // snapshot write retries after a failed attempt
	snapshotRestores       atomic.Int64 // sessions restored (boot or PUT export)
	snapshotCorruptSkipped atomic.Int64 // snapshots skipped on boot (unreadable/stale)
	persistDegradedEvents  atomic.Int64 // checkpointing degradations to in-memory-only

	// restoreLatency tracks RestoreSession wall clocks (boot + import), so
	// snapshot restore cost is visible next to solve cost.
	restoreLatency latencyHist

	// Solve latency is labeled: session re-solves land in sessionLatency,
	// everything else in solveLatency, so a churn workload's incremental
	// wins are attributable instead of being averaged into the one-shot
	// histogram.
	solveLatency   latencyHist
	sessionLatency latencyHist
}

// LatencyBucket is one cumulative histogram bucket: Count observations took
// at most LeMs milliseconds. LeMs is 0 for the final +Inf bucket.
type LatencyBucket struct {
	LeMs  float64 `json:"le_ms,omitempty"`
	Count int64   `json:"count"`
}

// LatencySnapshot is a solve latency histogram at one point in time.
type LatencySnapshot struct {
	// Count is the number of completed solves observed.
	Count int64 `json:"count"`
	// SumMs is the summed wall clock of all observed solves.
	SumMs float64 `json:"sum_ms"`
	// Buckets is the cumulative histogram; the last bucket (le_ms omitted)
	// counts everything.
	Buckets []LatencyBucket `json:"buckets"`
}

// GapBucket is one cumulative optimality-gap histogram bucket: Count
// observations had a gap of at most Le. Le is 0 for the final +Inf bucket.
type GapBucket struct {
	Le    float64 `json:"le,omitempty"`
	Count int64   `json:"count"`
}

// GapSnapshot is the anytime optimality-gap histogram at one point in time:
// every published refinement improvement contributes its dimensionless
// Makespan/LowerBound − 1 gap.
type GapSnapshot struct {
	// Count is the number of published improvements observed.
	Count int64 `json:"count"`
	// Sum is the summed gap over all observations.
	Sum float64 `json:"sum"`
	// Buckets is the cumulative histogram; the last bucket (le omitted)
	// counts everything.
	Buckets []GapBucket `json:"buckets"`
}

// CacheStats reports the shared feasibility cache's counters.
type CacheStats struct {
	// Hits and Misses are cumulative lookup counters.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Entries is the current number of memoized guess verdicts.
	Entries int `json:"entries"`
}

// MetricsSnapshot is the JSON document served at /metrics: admission,
// coalescing and cache counters, queue and worker gauges, session gauges,
// and the labeled solve latency histograms.
type MetricsSnapshot struct {
	// RequestsTotal counts solve submissions received, whatever the outcome.
	RequestsTotal int64 `json:"requests_total"`
	// AdmittedTotal counts submissions that became a new queued solve.
	AdmittedTotal int64 `json:"admitted_total"`
	// RejectedQueueFullTotal counts submissions refused with 429.
	RejectedQueueFullTotal int64 `json:"rejected_queue_full_total"`
	// CoalescedHitsTotal counts submissions served by attaching to an
	// identical in-flight solve (singleflight).
	CoalescedHitsTotal int64 `json:"coalesced_hits_total"`
	// ResultCacheHitsTotal counts submissions answered from the full-result
	// LRU without touching the queue.
	ResultCacheHitsTotal int64 `json:"result_cache_hits_total"`
	// SolvesTotal counts completed solver invocations, one-shot and session
	// re-solves alike (SessionResolvesTotal is the session subset).
	SolvesTotal int64 `json:"solves_total"`
	// SolveErrorsTotal counts solver invocations that returned any error.
	SolveErrorsTotal int64 `json:"solve_errors_total"`
	// SolveCanceledTotal counts solver errors that were cancellations or
	// deadline expiries (a subset of SolveErrorsTotal).
	SolveCanceledTotal int64 `json:"solve_canceled_total"`
	// PanicsRecoveredTotal counts solves that ended in a recovered panic
	// (ccsched.ErrInternal); each was answered with HTTP 500, never cached,
	// and counted toward its request key's quarantine streak.
	PanicsRecoveredTotal int64 `json:"panics_recovered_total"`
	// KeysQuarantinedTotal counts request keys quarantined after repeated
	// recovered panics (see Config.PanicQuarantineThreshold).
	KeysQuarantinedTotal int64 `json:"keys_quarantined_total"`
	// RejectedQuarantinedTotal counts submissions refused with 422 because
	// their request key was quarantined.
	RejectedQuarantinedTotal int64 `json:"rejected_quarantined_total"`
	// DegradedServedTotal counts degraded 2-approx answers served in place of
	// the requested tier (soft-timeout expiry or admission saturation).
	DegradedServedTotal int64 `json:"degraded_served_total"`
	// RefinementRungsTotal counts anytime ε-ladder rungs executed by the
	// refinement pool, published improvements and silent rungs alike.
	RefinementRungsTotal int64 `json:"refinement_rungs_total"`
	// RefineBudgetExhaustedTotal counts refinement steps parked because the
	// session's tenant had no refinement budget token left.
	RefineBudgetExhaustedTotal int64 `json:"refine_budget_exhausted_total"`
	// RefineParked is the number of anytime ladders currently parked —
	// waiting for tenant budget tokens or refinement queue room.
	RefineParked int64 `json:"refine_parked"`
	// WatchStreams is the number of open /watch SSE streams right now.
	WatchStreams int64 `json:"watch_streams"`
	// AnytimeGap is the histogram of optimality gaps over published anytime
	// improvements (dimensionless Makespan/LowerBound − 1).
	AnytimeGap GapSnapshot `json:"anytime_gap"`
	// SessionsActive is the number of live sessions right now.
	SessionsActive int `json:"sessions_active"`
	// SessionsCreatedTotal counts sessions ever created.
	SessionsCreatedTotal int64 `json:"sessions_created_total"`
	// SessionResolvesTotal counts session re-solves executed by the worker
	// pool (result-cache hits and coalesced waits add nothing here).
	SessionResolvesTotal int64 `json:"session_resolves_total"`
	// QueueDepth and QueueCapacity describe the admission queue right now.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
	// Workers is the pool size; WorkersBusy the number currently solving.
	Workers     int   `json:"workers"`
	WorkersBusy int64 `json:"workers_busy"`
	// InFlight is the number of distinct solves admitted but not finished.
	InFlight int `json:"in_flight"`
	// ResultCacheEntries is the current size of the full-result LRU.
	ResultCacheEntries int `json:"result_cache_entries"`
	// FeasibilityCache reports the shared per-guess cache under the LRU.
	FeasibilityCache CacheStats `json:"feasibility_cache"`
	// SolveLatency is the histogram of completed one-shot solve wall
	// clocks (session re-solves excluded — see SessionSolveLatency).
	SolveLatency LatencySnapshot `json:"solve_latency"`
	// SessionSolveLatency is the histogram of completed session re-solve
	// wall clocks, kept separate so incremental re-solves are attributable.
	SessionSolveLatency LatencySnapshot `json:"session_solve_latency"`
	// QueueWaitLatency is the histogram of admission-to-worker-pickup waits;
	// it saturates before the solve histograms do when the pool is too small.
	QueueWaitLatency LatencySnapshot `json:"queue_wait_latency"`
	// SnapshotWritesTotal counts session snapshots persisted to the state
	// directory (checkpoints and drain passes).
	SnapshotWritesTotal int64 `json:"snapshot_writes_total"`
	// SnapshotWriteErrors counts snapshot encode or write failures; they are
	// non-fatal (the session stays dirty and the next tick retries).
	SnapshotWriteErrors int64 `json:"snapshot_write_errors_total"`
	// SnapshotRetriesTotal counts in-checkpoint write retries (capped
	// exponential backoff with jitter) after a failed snapshot write.
	SnapshotRetriesTotal int64 `json:"snapshot_retries_total"`
	// PersistDegradedTotal counts transitions into in-memory-only
	// checkpointing after persistent disk failure; CheckpointDegraded reports
	// whether the server is in that state right now.
	PersistDegradedTotal int64 `json:"persist_degraded_total"`
	// CheckpointDegraded reports that checkpointing is currently degraded to
	// in-memory only: snapshot writes keep failing, sessions stay dirty, and
	// a background disk probe will resume durability without a restart. Also
	// surfaced as a /readyz failure.
	CheckpointDegraded bool `json:"checkpoint_degraded"`
	// SnapshotRestoresTotal counts sessions restored from snapshots, at boot
	// and via PUT /v1/sessions/{id}/export.
	SnapshotRestoresTotal int64 `json:"snapshot_restores_total"`
	// SnapshotCorruptSkipped counts snapshot files skipped on boot because
	// they were unreadable, checksum-mismatched or from a different schema
	// version — each is logged with its reason and never fails the boot.
	SnapshotCorruptSkipped int64 `json:"snapshot_corrupt_skipped_total"`
	// RestoreLatency is the histogram of snapshot restore wall clocks.
	RestoreLatency LatencySnapshot `json:"restore_latency"`
	// UptimeSeconds is the time since the server was created.
	UptimeSeconds float64 `json:"uptime_seconds"`
}
