package server

import (
	"ccsched"
	"ccsched/internal/faultinject"
)

// Wire types of the HTTP/JSON API. cmd/ccload and the tests share them; the
// formats themselves are plain JSON over the public ccsched codecs, so any
// HTTP client can speak them (see examples/service for a from-scratch
// client).

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Instance is the CCS instance in the public JSON wire format.
	Instance *ccsched.Instance `json:"instance"`
	// Options selects variant, tier and knobs exactly like ccsched.Options;
	// the zero value solves the splittable variant with TierAuto.
	Options ccsched.Options `json:"options"`
	// TimeoutMs, when positive, is the solve deadline in milliseconds;
	// exceeding it yields HTTP 408. Zero selects the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// SoftTimeoutMs, when positive, is the degraded-fallback deadline in
	// milliseconds: if the requested tier is still solving when it fires, the
	// response is the millisecond 2-approx (certified lower bound,
	// result.degraded=true) while the full solve keeps running and publishes
	// for later requests. Zero inherits the server's -soft-timeout default;
	// negative disables degradation for this request.
	SoftTimeoutMs int64 `json:"soft_timeout_ms,omitempty"`
}

// Job states reported in SolveResponse.Status.
const (
	// StatusQueued means the solve is admitted but not yet picked up.
	StatusQueued = "queued"
	// StatusRunning means a worker is currently solving.
	StatusRunning = "running"
	// StatusDone means Result is populated.
	StatusDone = "done"
	// StatusError means the solve finished with Error set.
	StatusError = "error"
	// StatusImported means the session was restored from an exported
	// snapshot (PUT /v1/sessions/{id}/export); solve it with GET.
	StatusImported = "imported"
)

// SolveResponse is the body of POST /v1/solve and GET /v1/jobs/{id}.
type SolveResponse struct {
	// ID identifies the submission for later polling at /v1/jobs/{id}.
	ID string `json:"id"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Result is the solve result, in the submitter's job order, when Status
	// is "done".
	Result *ccsched.Result `json:"result,omitempty"`
	// Error is the solve error message when Status is "error".
	Error string `json:"error,omitempty"`
	// SolveMs is the solver wall clock in milliseconds (done/error only).
	SolveMs float64 `json:"solve_ms,omitempty"`
	// Coalesced reports the submission attached to an identical in-flight
	// solve instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cached reports the submission was answered from the result cache.
	Cached bool `json:"cached,omitempty"`
	// RequestID echoes the request's X-Request-Id on async (202) responses,
	// linking the job object to the server's structured request logs.
	RequestID string `json:"request_id,omitempty"`
}

// SessionCreateRequest is the body of POST /v1/sessions.
type SessionCreateRequest struct {
	// Instance is the session's initial CCS instance.
	Instance *ccsched.Instance `json:"instance"`
	// Options selects variant, tier and knobs for every re-solve of this
	// session; fixed at creation.
	Options ccsched.Options `json:"options"`
	// TimeoutMs, when positive, is the default per-re-solve deadline in
	// milliseconds. Zero selects the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SessionJob is one arriving job in a SessionDelta.
type SessionJob struct {
	// P is the processing time.
	P int64 `json:"p"`
	// Class is the 0-based class.
	Class int `json:"class"`
}

// SessionResize changes one job's processing time.
type SessionResize struct {
	// ID is the stable job id (from SessionResponse.JobIDs).
	ID int64 `json:"id"`
	// P is the new processing time.
	P int64 `json:"p"`
}

// SessionDelta is the body of PATCH /v1/sessions/{id}: a batch of instance
// mutations applied atomically per sub-batch (add, then resize, then
// remove, then machine/slot changes) before one incremental re-solve.
type SessionDelta struct {
	// Add appends jobs; their minted ids come back in
	// SessionResponse.JobIDs.
	Add []SessionJob `json:"add,omitempty"`
	// Resize changes processing times of existing jobs.
	Resize []SessionResize `json:"resize,omitempty"`
	// Remove deletes jobs by stable id (all-or-nothing).
	Remove []int64 `json:"remove,omitempty"`
	// SetMachines changes the machine count (0 = unchanged).
	SetMachines int64 `json:"set_machines,omitempty"`
	// SetSlots changes the per-machine class-slot budget (0 = unchanged).
	SetSlots int `json:"set_slots,omitempty"`
	// TimeoutMs, when positive, overrides this re-solve's deadline.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// SessionResponse is the body of every /v1/sessions endpoint.
type SessionResponse struct {
	// SessionID identifies the session for PATCH/GET/DELETE.
	SessionID string `json:"session_id"`
	// Status is one of the Status* constants, or "deleted".
	Status string `json:"status"`
	// JobIDs are the stable ids of the current jobs, parallel to the job
	// indices used by Result's schedules.
	JobIDs []int64 `json:"job_ids,omitempty"`
	// Machines echoes the current machine count.
	Machines int64 `json:"machines,omitempty"`
	// Resolves counts the session's executed re-solves so far.
	Resolves int64 `json:"resolves,omitempty"`
	// Result is the current schedule when Status is "done".
	Result *ccsched.Result `json:"result,omitempty"`
	// Error is the solve or delta error when Status is "error".
	Error string `json:"error,omitempty"`
	// SolveMs is the re-solve wall clock in milliseconds (zero when the
	// response came from the result cache).
	SolveMs float64 `json:"solve_ms,omitempty"`
	// Coalesced reports the re-solve attached to an identical in-flight
	// solve instead of running its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cached reports the re-solve was answered from the result cache.
	Cached bool `json:"cached,omitempty"`
	// RequestID echoes the request's X-Request-Id on async (202) responses.
	RequestID string `json:"request_id,omitempty"`
}

// WatchEvent is one Server-Sent Event on GET /v1/sessions/{id}/watch: an
// anytime session's published improvement, carried in full (events are
// self-contained state snapshots, so a subscriber that missed intermediate
// events holds the current best after any single event). The SSE id line
// carries Generation; reconnecting with Last-Event-ID replays everything
// published after it.
type WatchEvent struct {
	// SessionID identifies the watched session.
	SessionID string `json:"session_id"`
	// Generation is the event's publication number, strictly increasing per
	// session and never reused across server restarts (the floor is
	// persisted before an event becomes visible).
	Generation uint64 `json:"generation"`
	// Rung and Rungs locate the improvement on the ε-ladder: rung 0 is the
	// constant-factor first answer, Rungs-1 the terminal PTAS rung.
	Rung  int `json:"rung"`
	Rungs int `json:"rungs"`
	// Epsilon is the rung's PTAS accuracy (0 on rung 0).
	Epsilon float64 `json:"epsilon,omitempty"`
	// Gap is the certified optimality gap Makespan/LowerBound − 1.
	Gap float64 `json:"gap"`
	// Makespan and LowerBound are the exact rationals as "p/q" strings.
	Makespan   string `json:"makespan"`
	LowerBound string `json:"lower_bound"`
	// Final marks the terminal rung: the stream ends after this event, and
	// no further refinement follows until the next delta.
	Final bool `json:"final"`
	// Result is the full improvement in the session's job order.
	Result *ccsched.Result `json:"result,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Error describes what was rejected and why.
	Error string `json:"error"`
}

// ReadyResponse is the body of GET /readyz.
type ReadyResponse struct {
	// Ready reports whether the server should receive traffic right now.
	Ready bool `json:"ready"`
	// Reasons lists why the server is not ready (draining, queue over 90%
	// full, checkpointing degraded); empty when Ready.
	Reasons []string `json:"reasons,omitempty"`
	// QueueDepth and QueueCapacity describe the admission queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}

// FaultsRequest is the body of PUT /v1/debug/faults (Config.FaultAdmin).
type FaultsRequest struct {
	// Specs is a comma-separated fault list in the CCSCHED_FAULTS syntax:
	// point=mode[:arg][*hits] (see package faultinject).
	Specs string `json:"specs"`
}

// FaultsResponse is the body of every /v1/debug/faults response.
type FaultsResponse struct {
	// Armed lists every armed injection point with its spec and fire count.
	Armed []faultinject.PointStatus `json:"armed"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" while the server admits work, "draining" after
	// Shutdown began.
	Status string `json:"status"`
	// Workers is the solver pool size.
	Workers int `json:"workers"`
	// QueueDepth and QueueCapacity describe the admission queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}
