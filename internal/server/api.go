package server

import "ccsched"

// Wire types of the HTTP/JSON API. cmd/ccload and the tests share them; the
// formats themselves are plain JSON over the public ccsched codecs, so any
// HTTP client can speak them (see examples/service for a from-scratch
// client).

// SolveRequest is the body of POST /v1/solve.
type SolveRequest struct {
	// Instance is the CCS instance in the public JSON wire format.
	Instance *ccsched.Instance `json:"instance"`
	// Options selects variant, tier and knobs exactly like ccsched.Options;
	// the zero value solves the splittable variant with TierAuto.
	Options ccsched.Options `json:"options"`
	// TimeoutMs, when positive, is the solve deadline in milliseconds;
	// exceeding it yields HTTP 408. Zero selects the server default.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// Job states reported in SolveResponse.Status.
const (
	// StatusQueued means the solve is admitted but not yet picked up.
	StatusQueued = "queued"
	// StatusRunning means a worker is currently solving.
	StatusRunning = "running"
	// StatusDone means Result is populated.
	StatusDone = "done"
	// StatusError means the solve finished with Error set.
	StatusError = "error"
)

// SolveResponse is the body of POST /v1/solve and GET /v1/jobs/{id}.
type SolveResponse struct {
	// ID identifies the submission for later polling at /v1/jobs/{id}.
	ID string `json:"id"`
	// Status is one of the Status* constants.
	Status string `json:"status"`
	// Result is the solve result, in the submitter's job order, when Status
	// is "done".
	Result *ccsched.Result `json:"result,omitempty"`
	// Error is the solve error message when Status is "error".
	Error string `json:"error,omitempty"`
	// SolveMs is the solver wall clock in milliseconds (done/error only).
	SolveMs float64 `json:"solve_ms,omitempty"`
	// Coalesced reports the submission attached to an identical in-flight
	// solve instead of starting its own.
	Coalesced bool `json:"coalesced,omitempty"`
	// Cached reports the submission was answered from the result cache.
	Cached bool `json:"cached,omitempty"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	// Error describes what was rejected and why.
	Error string `json:"error"`
}

// HealthResponse is the body of GET /healthz.
type HealthResponse struct {
	// Status is "ok" while the server admits work, "draining" after
	// Shutdown began.
	Status string `json:"status"`
	// Workers is the solver pool size.
	Workers int `json:"workers"`
	// QueueDepth and QueueCapacity describe the admission queue.
	QueueDepth    int `json:"queue_depth"`
	QueueCapacity int `json:"queue_capacity"`
}
