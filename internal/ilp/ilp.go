// Package ilp implements a branch-and-bound mixed-integer linear program
// solver on top of the internal/lp simplex. It is the repository's exact
// fallback engine for the paper's configuration N-fold ILPs (see
// internal/nfold) and is deliberately simple: LP-relaxation bounding,
// most-fractional branching, depth-first search with a node budget.
package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ccsched/internal/lp"
)

// Problem is a mixed-integer LP: the embedded lp.Problem plus integrality
// markers.
type Problem struct {
	lp.Problem
	// Integer marks which variables must take integral values.
	Integer []bool
}

// NewProblem allocates a MILP with n all-integer variables, bounds [0, +Inf).
func NewProblem(n int) *Problem {
	p := &Problem{Problem: *lp.NewProblem(n)}
	p.Integer = make([]bool, n)
	for j := range p.Integer {
		p.Integer[j] = true
	}
	return p
}

// Status classifies the solver outcome.
type Status int

const (
	// Optimal means a provably optimal integral solution was found.
	Optimal Status = iota
	// Infeasible means no integral solution exists.
	Infeasible
	// NodeLimit means the search budget was exhausted; Best may still hold
	// an incumbent.
	NodeLimit
)

// String names the status for logs and error messages.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of explored branch-and-bound nodes
	// (default 200000).
	MaxNodes int
	// FirstFeasible stops at the first integral solution; natural for the
	// zero-objective feasibility ILPs of the PTAS.
	FirstFeasible bool
}

// Result is the solver output.
type Result struct {
	Status Status
	// X holds the best integral assignment found (nil if none).
	X []float64
	// Obj is the objective of X.
	Obj float64
	// Nodes counts explored branch-and-bound nodes.
	Nodes int
}

const intTol = 1e-6

// Solve runs branch and bound. A nil opts uses defaults.
func Solve(p *Problem, opts *Options) (*Result, error) {
	return SolveCtx(context.Background(), p, opts)
}

// SolveCtx is Solve under a context. Cancellation is checked before every
// branch-and-bound node and inside each node's LP relaxation (see
// lp.SolveCtx), so a canceled context aborts the search with ctx.Err()
// within one node — the promptness guarantee the PTAS's speculative
// makespan-guess search depends on.
func SolveCtx(ctx context.Context, p *Problem, opts *Options) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(p.Integer) != p.NumVars {
		return nil, errors.New("ilp: Integer length mismatch")
	}
	maxNodes := 200000
	first := false
	if opts != nil {
		if opts.MaxNodes > 0 {
			maxNodes = opts.MaxNodes
		}
		first = opts.FirstFeasible
	}
	type node struct {
		lower, upper []float64
	}
	root := node{
		lower: append([]float64(nil), p.Lower...),
		upper: append([]float64(nil), p.Upper...),
	}
	// Integer variables get integral bounds up front.
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		if !math.IsInf(root.lower[j], -1) {
			root.lower[j] = math.Ceil(root.lower[j] - intTol)
		}
		if !math.IsInf(root.upper[j], 1) {
			root.upper[j] = math.Floor(root.upper[j] + intTol)
		}
	}
	stack := []node{root}
	res := &Result{Status: Infeasible}
	var bestObj = math.Inf(1)
	hitLimit := false
	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if res.Nodes >= maxNodes {
			hitLimit = true
			break
		}
		res.Nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		sub := p.Problem // copy of the shell; rows shared
		sub.Lower = nd.lower
		sub.Upper = nd.upper
		sol, err := lp.SolveCtx(ctx, &sub)
		if err != nil {
			return nil, err
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, errors.New("ilp: LP relaxation unbounded; bound the integer variables")
		case lp.IterLimit:
			// Treat as unexplored: conservative, keeps soundness of pruning.
			hitLimit = true
			continue
		}
		if sol.Obj >= bestObj-1e-9 && res.X != nil {
			continue // bound
		}
		// Find the most fractional integer variable.
		branch, frac := -1, 0.0
		for j, isInt := range p.Integer {
			if !isInt {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > intTol && f > frac {
				branch, frac = j, f
			}
		}
		if branch < 0 {
			// Integral solution.
			x := append([]float64(nil), sol.X...)
			for j, isInt := range p.Integer {
				if isInt {
					x[j] = math.Round(x[j])
				}
			}
			obj := 0.0
			for j := range x {
				obj += p.Obj[j] * x[j]
			}
			if obj < bestObj {
				bestObj = obj
				res.X = x
				res.Obj = obj
			}
			if first {
				res.Status = Optimal
				return res, nil
			}
			continue
		}
		// Branch: explore the side nearest the fractional value first
		// (pushed last so it pops first).
		v := sol.X[branch]
		lowChild := node{lower: append([]float64(nil), nd.lower...), upper: append([]float64(nil), nd.upper...)}
		highChild := node{lower: append([]float64(nil), nd.lower...), upper: append([]float64(nil), nd.upper...)}
		lowChild.upper[branch] = math.Floor(v)
		highChild.lower[branch] = math.Ceil(v)
		if v-math.Floor(v) < 0.5 {
			stack = append(stack, highChild, lowChild)
		} else {
			stack = append(stack, lowChild, highChild)
		}
	}
	if res.X != nil {
		if hitLimit {
			res.Status = NodeLimit
		} else {
			res.Status = Optimal
		}
		return res, nil
	}
	if hitLimit {
		res.Status = NodeLimit
	}
	return res, nil
}
