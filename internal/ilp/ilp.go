// Package ilp implements a branch-and-bound mixed-integer linear program
// solver on top of the internal/lp simplex. It is the repository's exact
// fallback engine for the paper's configuration N-fold ILPs (see
// internal/nfold) and is deliberately simple: LP-relaxation bounding,
// most-fractional branching, depth-first search with a node budget.
//
// The search is incremental end to end: the LP is prepared once (sparse
// columns plus pooled dense scratch), nodes patch a single mutable pair of
// bound arrays with push/pop edits instead of copying bounds per node, and
// each child carries its parent's simplex basis so the warm dual restore can
// prune infeasible children in a few pivots. Warm starts are verdict-only
// (see lp.Prepared.SolveBounds), so the explored tree — and therefore the
// returned solution — is bit-identical with NoWarmStart set.
package ilp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ccsched/internal/faultinject"
	"ccsched/internal/lp"
	"ccsched/internal/trace"
)

// Problem is a mixed-integer LP: the embedded lp.Problem plus integrality
// markers.
type Problem struct {
	lp.Problem
	// Integer marks which variables must take integral values.
	Integer []bool
}

// NewProblem allocates a MILP with n all-integer variables, bounds [0, +Inf).
func NewProblem(n int) *Problem {
	p := &Problem{Problem: *lp.NewProblem(n)}
	p.Integer = make([]bool, n)
	for j := range p.Integer {
		p.Integer[j] = true
	}
	return p
}

// Status classifies the solver outcome.
type Status int

const (
	// Optimal means a provably optimal integral solution was found.
	Optimal Status = iota
	// Infeasible means no integral solution exists.
	Infeasible
	// NodeLimit means the search budget was exhausted; Best may still hold
	// an incumbent.
	NodeLimit
)

// String names the status for logs and error messages.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case NodeLimit:
		return "node-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of explored branch-and-bound nodes
	// (default 200000).
	MaxNodes int
	// FirstFeasible stops at the first integral solution; natural for the
	// zero-objective feasibility ILPs of the PTAS.
	FirstFeasible bool
	// NoWarmStart disables basis reuse between nodes (and the RootBasis
	// hint). Results are bit-identical either way — warm starts only prune
	// provably infeasible nodes faster — so this exists as a measurement
	// baseline and determinism escape hatch.
	NoWarmStart bool
	// RootBasis optionally warm-starts the root relaxation from a basis
	// captured on a structurally compatible problem (same row and variable
	// counts), e.g. the previous makespan guess's root. Dimension mismatches
	// are ignored.
	RootBasis *lp.Basis
	// Parallelism ≥ 2 explores the branch-and-bound tree with that many
	// goroutines: speculative workers solve the LP relaxations of open
	// nodes ahead of the depth-first walk while a single committer replays
	// the exact sequential search order, consuming their results. Results —
	// Status, X, Obj and Nodes — are bit-identical to the sequential engine
	// at any worker count (see parallel.go for the argument); Pivots and
	// WarmHits may differ, because which warm-restore path decides a node
	// depends on solver-state residency. Values ≤ 1 run the sequential
	// engine unchanged.
	Parallelism int
	// Trace is the enclosing trace span (normally the nfold bb span); the
	// search records bb_nodes batch spans (one per bbTraceBatch explored
	// nodes, carrying that batch's node/pivot/warm-hit deltas) under it, and
	// the parallel engine's batched sibling LP solves record lp_batch spans
	// (see lp.Prepared.SetTraceSpan). The zero Span disables recording at
	// one flag check per node; results are identical either way.
	Trace trace.Span
}

// Result is the solver output.
type Result struct {
	Status Status
	// X holds the best integral assignment found (nil if none).
	X []float64
	// Obj is the objective of X.
	Obj float64
	// Nodes counts explored branch-and-bound nodes.
	Nodes int
	// Pivots counts simplex pivots across every node's LP solve, including
	// warm dual-restore pivots.
	Pivots int
	// WarmHits counts nodes pruned by the warm dual restore without a cold
	// LP solve.
	WarmHits int
	// RootBasis is the root relaxation's terminal basis when it solved to
	// optimality, for cross-solve warm-start hints (nil otherwise).
	RootBasis *lp.Basis
	// InfeasibleRay is the root relaxation's Farkas ray when the whole
	// problem was refuted at the root by a cold LP solve: a row-price
	// vector (in row order) certifying the root LP infeasible. Callers can
	// re-verify it against a structurally related problem to prove that
	// problem infeasible without solving (see
	// nfold.Problem.CertifiesInfeasible). Nil otherwise.
	InfeasibleRay []float64
	// SubtreeSteals counts nodes whose LP relaxation was solved by a
	// speculative worker rather than the committing walker (zero unless
	// Options.Parallelism ≥ 2). Diagnostics only: the schedule of steals
	// varies run to run even though the results never do.
	SubtreeSteals int
	// BatchedLPSolves counts node LPs solved through the lp.SolveBatch
	// sibling kernel (zero unless Options.Parallelism ≥ 2). Diagnostics
	// only, like SubtreeSteals.
	BatchedLPSolves int
}

const intTol = 1e-6

// bbTraceBatch is how many explored nodes one bb_nodes span covers. Per-node
// spans would blow the cardinality cap on any non-trivial search; batches
// keep the timeline proportional to wall time instead of tree size.
const bbTraceBatch = 256

// bbTracer emits bb_nodes batch spans from a branch-and-bound loop. All
// methods are no-ops when the enclosing span is disabled (one bool check per
// node), and it only reads already-updated Result counters, so it can never
// influence the search.
type bbTracer struct {
	on         bool
	parent     trace.Span
	cur        trace.Span
	inBatch    int
	n0, p0, w0 int
}

func newBBTracer(parent trace.Span) bbTracer {
	return bbTracer{on: parent.Enabled(), parent: parent}
}

// tick is called once per explored node, after the node counters updated.
func (t *bbTracer) tick(res *Result) {
	if !t.on {
		return
	}
	if t.inBatch == 0 {
		t.cur = t.parent.Child("bb_nodes")
		t.n0, t.p0, t.w0 = res.Nodes-1, res.Pivots, res.WarmHits
	}
	t.inBatch++
	if t.inBatch >= bbTraceBatch {
		t.flush(res)
	}
}

// flush closes the open batch span, if any, with the batch's deltas.
func (t *bbTracer) flush(res *Result) {
	if !t.on || t.inBatch == 0 {
		return
	}
	t.cur.End(
		trace.A("nodes", int64(res.Nodes-t.n0)),
		trace.A("pivots", int64(res.Pivots-t.p0)),
		trace.A("warm_hits", int64(res.WarmHits-t.w0)),
	)
	t.inBatch = 0
}

// Solve runs branch and bound. A nil opts uses defaults.
func Solve(p *Problem, opts *Options) (*Result, error) {
	return SolveCtx(context.Background(), p, opts)
}

// node is one open branch-and-bound node: the bound patch distinguishing it
// from its parent and the parent's terminal basis for the warm restore.
// Bounds are materialized lazily by replaying patches on the shared arrays.
type node struct {
	depth    int // patches on the path from the root (0 for the root itself)
	patchVar int // -1 for the root
	lo, up   float64
	parent   *lp.Basis
}

// applied records one in-effect bound patch so backtracking can undo it.
type applied struct {
	v      int
	lo, up float64
}

// SolveCtx is Solve under a context. Cancellation is checked before every
// branch-and-bound node and inside each node's LP relaxation (see
// lp.Prepared.SolveBounds), so a canceled context aborts the search with
// ctx.Err() within one node — the promptness guarantee the PTAS's
// speculative makespan-guess search depends on.
func SolveCtx(ctx context.Context, p *Problem, opts *Options) (*Result, error) {
	if len(p.Integer) != p.NumVars {
		return nil, errors.New("ilp: Integer length mismatch")
	}
	maxNodes := 200000
	first := false
	warmStart := true
	var rootHint *lp.Basis
	if opts != nil {
		if opts.MaxNodes > 0 {
			maxNodes = opts.MaxNodes
		}
		first = opts.FirstFeasible
		warmStart = !opts.NoWarmStart
		if warmStart {
			rootHint = opts.RootBasis
		}
		if opts.Parallelism >= 2 {
			return solveParallel(ctx, p, maxNodes, first, warmStart, rootHint, opts.Parallelism, opts.Trace)
		}
	}
	var tsp trace.Span
	if opts != nil {
		tsp = opts.Trace
	}
	tr := newBBTracer(tsp)
	prep, err := lp.Prepare(&p.Problem)
	if err != nil {
		return nil, err
	}
	defer prep.Release()
	// The single mutable bound pair every node patches in place.
	lower := append([]float64(nil), p.Lower...)
	upper := append([]float64(nil), p.Upper...)
	// Integer variables get integral bounds up front.
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		if !math.IsInf(lower[j], -1) {
			lower[j] = math.Ceil(lower[j] - intTol)
		}
		if !math.IsInf(upper[j], 1) {
			upper[j] = math.Floor(upper[j] + intTol)
		}
	}
	stack := []node{{patchVar: -1, parent: rootHint}}
	var path []applied
	res := &Result{Status: Infeasible}
	var sol lp.Solution
	var bestObj = math.Inf(1)
	hitLimit := false
	for len(stack) > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Check("ilp.node"); err != nil {
			return nil, err
		}
		if res.Nodes >= maxNodes {
			hitLimit = true
			break
		}
		res.Nodes++
		nd := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		// Rewind the applied patches to this node's parent, then apply its
		// own patch. The stack is LIFO, so the shared bound arrays always
		// hold exactly the popped node's path.
		target := nd.depth
		if nd.patchVar >= 0 {
			target = nd.depth - 1
		}
		for len(path) > target {
			e := path[len(path)-1]
			path = path[:len(path)-1]
			lower[e.v], upper[e.v] = e.lo, e.up
		}
		if nd.patchVar >= 0 {
			path = append(path, applied{nd.patchVar, lower[nd.patchVar], upper[nd.patchVar]})
			lower[nd.patchVar], upper[nd.patchVar] = nd.lo, nd.up
		}
		warm := nd.parent
		if !warmStart {
			warm = nil
		}
		if err := prep.SolveBounds(ctx, lower, upper, warm, &sol); err != nil {
			return nil, err
		}
		res.Pivots += sol.Iterations
		if sol.Warm {
			res.WarmHits++
		}
		tr.tick(res)
		if nd.patchVar < 0 && sol.Status == lp.Optimal && warmStart {
			res.RootBasis = prep.CaptureBasis()
		}
		if nd.patchVar < 0 && sol.Status == lp.Infeasible {
			res.InfeasibleRay = prep.InfeasibilityRay()
		}
		switch sol.Status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, errors.New("ilp: LP relaxation unbounded; bound the integer variables")
		case lp.IterLimit:
			// Treat as unexplored: conservative, keeps soundness of pruning.
			hitLimit = true
			continue
		}
		if sol.Obj >= bestObj-1e-9 && res.X != nil {
			continue // bound
		}
		// Find the most fractional integer variable.
		branch, frac := -1, 0.0
		for j, isInt := range p.Integer {
			if !isInt {
				continue
			}
			f := math.Abs(sol.X[j] - math.Round(sol.X[j]))
			if f > intTol && f > frac {
				branch, frac = j, f
			}
		}
		if branch < 0 {
			// Integral solution.
			x := append([]float64(nil), sol.X...)
			for j, isInt := range p.Integer {
				if isInt {
					x[j] = math.Round(x[j])
				}
			}
			obj := 0.0
			for j := range x {
				obj += p.Obj[j] * x[j]
			}
			if obj < bestObj {
				bestObj = obj
				res.X = x
				res.Obj = obj
			}
			if first {
				res.Status = Optimal
				tr.flush(res)
				return res, nil
			}
			continue
		}
		// Branch: explore the side nearest the fractional value first
		// (pushed last so it pops first). Both children share the parent's
		// terminal basis for the warm restore.
		var pb *lp.Basis
		if warmStart {
			pb = prep.CaptureBasis()
		}
		v := sol.X[branch]
		lowChild := node{depth: nd.depth + 1, patchVar: branch, lo: lower[branch], up: math.Floor(v), parent: pb}
		highChild := node{depth: nd.depth + 1, patchVar: branch, lo: math.Ceil(v), up: upper[branch], parent: pb}
		if v-math.Floor(v) < 0.5 {
			stack = append(stack, highChild, lowChild)
		} else {
			stack = append(stack, lowChild, highChild)
		}
	}
	tr.flush(res)
	if res.X != nil {
		if hitLimit {
			res.Status = NodeLimit
		} else {
			res.Status = Optimal
		}
		return res, nil
	}
	if hitLimit {
		res.Status = NodeLimit
	}
	return res, nil
}
