package ilp

import (
	"math/rand"
	"testing"

	"ccsched/internal/lp"
)

// randomFeasibilityILP builds a zero-objective integer feasibility problem
// with a planted solution, the shape of the PTAS configuration ILPs.
func randomFeasibilityILP(rng *rand.Rand, m, n int) *Problem {
	p := NewProblem(n)
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		p.Upper[j] = float64(2 + rng.Intn(6))
		x[j] = float64(rng.Intn(int(p.Upper[j]) + 1))
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		rhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(2) == 0 {
				row[j] = float64(rng.Intn(5) - 2)
				rhs += row[j] * x[j]
			}
		}
		p.AddRow(row, lp.EQ, rhs)
	}
	return p
}

// TestWarmStartParity pins the warm-start contract at the branch-and-bound
// level: identical status, node count, and solution with NoWarmStart on and
// off, across random feasibility problems — while the warm runs actually
// prune (WarmHits > 0 somewhere).
func TestWarmStartParity(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	var totalHits int
	for trial := 0; trial < 40; trial++ {
		p := randomFeasibilityILP(rng, 6, 12)
		warm, err := Solve(p, &Options{FirstFeasible: true, MaxNodes: 3000})
		if err != nil {
			t.Fatal(err)
		}
		cold, err := Solve(p, &Options{FirstFeasible: true, MaxNodes: 3000, NoWarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status || warm.Nodes != cold.Nodes {
			t.Fatalf("trial %d: warm (%v, %d nodes) != cold (%v, %d nodes)",
				trial, warm.Status, warm.Nodes, cold.Status, cold.Nodes)
		}
		if (warm.X == nil) != (cold.X == nil) {
			t.Fatalf("trial %d: solution presence diverged", trial)
		}
		for j := range warm.X {
			if warm.X[j] != cold.X[j] {
				t.Fatalf("trial %d: X[%d] = %v != %v", trial, j, warm.X[j], cold.X[j])
			}
		}
		if cold.WarmHits != 0 {
			t.Fatalf("trial %d: cold run counted %d warm hits", trial, cold.WarmHits)
		}
		totalHits += warm.WarmHits
		if warm.WarmHits > 0 && warm.Pivots >= cold.Pivots {
			// Not an invariant (restores add pivots too), but flag the case
			// for visibility if pruning never saves anything.
			t.Logf("trial %d: warm pivots %d >= cold pivots %d despite %d prunes",
				trial, warm.Pivots, cold.Pivots, warm.WarmHits)
		}
	}
	if totalHits == 0 {
		t.Fatal("no branch-and-bound node was ever warm-pruned; parity test is vacuous")
	}
}

// TestRootBasisHintRoundTrip verifies that a solve publishes its root basis
// and that feeding it back (even from a structurally different problem of
// matching dimensions) never changes the result.
func TestRootBasisHintRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	p := randomFeasibilityILP(rng, 5, 10)
	first, err := Solve(p, &Options{FirstFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if first.RootBasis == nil {
		t.Fatal("no root basis published by a solve whose root was optimal")
	}
	q := randomFeasibilityILP(rng, 5, 10) // same dims, different data
	hinted, err := Solve(q, &Options{FirstFeasible: true, RootBasis: first.RootBasis})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Solve(q, &Options{FirstFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if hinted.Status != plain.Status || hinted.Nodes != plain.Nodes {
		t.Fatalf("hinted (%v, %d nodes) != plain (%v, %d nodes)",
			hinted.Status, hinted.Nodes, plain.Status, plain.Nodes)
	}
	for j := range plain.X {
		if hinted.X[j] != plain.X[j] {
			t.Fatalf("X[%d] = %v != %v", j, hinted.X[j], plain.X[j])
		}
	}
	// A dimension-mismatched hint must be ignored, not crash.
	small := randomFeasibilityILP(rng, 3, 6)
	if _, err := Solve(small, &Options{FirstFeasible: true, RootBasis: first.RootBasis}); err != nil {
		t.Fatal(err)
	}
}
