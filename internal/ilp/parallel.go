package ilp

// Parallel branch and bound: speculative workers, sequential commits.
//
// The naive way to parallelize branch and bound — hand each worker a
// subtree and merge whatever they find — changes results: FirstFeasible
// returns whichever worker won the race, MaxNodes verdicts depend on how
// the budget was split, and even the optimum's witness X depends on
// exploration order. This engine keeps the sequential search's decisions
// byte for byte and parallelizes only the expensive part, the per-node LP
// relaxations:
//
//   - A single walker replays exactly the sequential depth-first loop —
//     same stack discipline, same bound patches, same pruning, incumbent,
//     budget and termination logic. Every decision that influences the
//     result is made by the walker, in sequential commit order.
//   - Speculative workers claim not-yet-popped open nodes (preferring the
//     top of the stack, i.e. the nodes the walker needs soonest) and solve
//     their LP relaxations ahead of time on private lp.Prepared instances.
//     A node's LP inputs — its bound patch chain and its parent's terminal
//     basis — are fixed at creation, so the solve is the same computation
//     no matter who runs it or when.
//   - Cold LP solves are deterministic, and warm restores are verdict-only
//     (lp.SolveBounds): a node's Status, X and Obj are therefore identical
//     whether the walker or a worker solved it, and the walker's replay
//     visits the same nodes in the same order as the sequential engine —
//     Nodes, Status, X and Obj are bit-identical at any worker count.
//     Pivots and WarmHits are NOT: which restore path (live state, cached
//     refactorization, fresh refactorization) decides an infeasible child
//     depends on solver-state residency, which differs between one shared
//     Prepared and per-worker ones.
//
// Basis snapshots cross goroutines only as immutable lp.Basis values
// (refactor-from-snapshot on the receiving Prepared; no live solver state
// is ever shared). The incumbent objective flows through a single atomic
// bound that only the walker stores, in commit order, so it is monotone
// non-increasing; a worker observing obj ≥ bound−1e-9 therefore knows the
// walker will prune that node at commit no matter what happens in between,
// which lets it skip the node's basis capture. Pruning decisions themselves
// stay with the walker, which is what makes the returned optimum (and its
// witness) independent of worker scheduling.

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"ccsched/internal/faultinject"
	"ccsched/internal/lp"
	"ccsched/internal/panicsafe"
	"ccsched/internal/trace"
)

// pnode is one open node of the parallel search. All plain fields are
// written by the walker before the node is published (pushed while holding
// the state mutex) and immutable afterwards; claimed arbitrates between the
// walker and speculative workers; res is written by the claiming worker
// before it closes done.
type pnode struct {
	depth    int
	patchVar int // -1 for the root
	lo, up   float64
	parent   *pnode    // tree parent, for materializing bounds off-walker
	warm     *lp.Basis // parent's terminal basis (nil without warm starts)
	sibling  *pnode    // the branch's other child, for batched co-claims

	claimed  atomic.Bool
	finished atomic.Bool
	done     chan struct{}
	res      pres
}

// pres is the outcome of one node's LP relaxation.
type pres struct {
	status  lp.Status
	x       []float64 // solution copy; set only for Optimal
	obj     float64
	iters   int
	warmHit bool
	basis   *lp.Basis // terminal basis for the node's children, if captured
	ray     []float64 // root Farkas ray (root Infeasible only)
	err     error
}

// pstate is the state shared between the walker and its workers.
type pstate struct {
	p         *Problem
	lower0    []float64 // root bounds after integral tightening; immutable
	upper0    []float64
	warmStart bool

	mu    sync.Mutex
	cond  *sync.Cond
	stack []*pnode // open nodes; walker pops, workers scan for speculation

	// bound holds math.Float64bits of the incumbent objective (+Inf before
	// the first incumbent). Only the walker stores it, in commit order, so
	// it is monotone non-increasing — the property worker-side prune
	// shortcuts rely on.
	bound atomic.Uint64

	steals  atomic.Int64
	batched atomic.Int64

	// tsp is the enclosing trace span; workers parent their batched-LP
	// spans under it (the collector serializes concurrent writes).
	tsp trace.Span
}

// certainlyPruned reports whether a node with the given LP objective is
// guaranteed to be pruned when the walker commits it: the bound only ever
// decreases, so a true answer stays true. Before any incumbent the bound is
// +Inf and nothing is certain.
func (ps *pstate) certainlyPruned(obj float64) bool {
	return obj >= math.Float64frombits(ps.bound.Load())-1e-9
}

// push publishes children to the shared stack (in pop order: last pushed
// pops first) and wakes idle workers.
func (ps *pstate) push(nodes ...*pnode) {
	ps.mu.Lock()
	ps.stack = append(ps.stack, nodes...)
	ps.cond.Broadcast()
	ps.mu.Unlock()
}

// claim blocks until a speculative worker can claim an open node (returning
// it and, when its sibling is also free, the co-claimed sibling for a
// batched solve) or ctx is canceled (returning nil).
func (ps *pstate) claim(ctx context.Context) (*pnode, *pnode) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	for {
		if ctx.Err() != nil {
			return nil, nil
		}
		for i := len(ps.stack) - 1; i >= 0; i-- {
			nd := ps.stack[i]
			if !nd.claimed.CompareAndSwap(false, true) {
				continue
			}
			var sib *pnode
			if s := nd.sibling; s != nil && s.claimed.CompareAndSwap(false, true) {
				sib = s
			}
			return nd, sib
		}
		ps.cond.Wait()
	}
}

// chainScratch holds a worker's reusable bound-materialization state (plus
// the sibling-batch bound scratch, lazily allocated on the first co-claim).
type chainScratch struct {
	lower, upper       []float64
	sibLower, sibUpper []float64
	prev               []*pnode // patches currently applied, for undoing
	chain              []*pnode
}

// setBounds materializes nd's bounds into the scratch arrays by undoing the
// previously applied patch chain and replaying nd's chain root→leaf (deeper
// patches override shallower ones on the same variable, exactly like the
// sequential engine's in-place patching).
func (cs *chainScratch) setBounds(ps *pstate, nd *pnode) {
	for _, n := range cs.prev {
		cs.lower[n.patchVar] = ps.lower0[n.patchVar]
		cs.upper[n.patchVar] = ps.upper0[n.patchVar]
	}
	cs.chain = cs.chain[:0]
	for n := nd; n != nil && n.patchVar >= 0; n = n.parent {
		cs.chain = append(cs.chain, n)
	}
	for i := len(cs.chain) - 1; i >= 0; i-- {
		n := cs.chain[i]
		cs.lower[n.patchVar] = n.lo
		cs.upper[n.patchVar] = n.up
	}
	cs.prev, cs.chain = cs.chain, cs.prev
}

// finish records a node's LP outcome and releases anyone waiting on it.
// It is idempotent: the first call wins, later calls are no-ops — which is
// what lets a worker's panic-recovery path blanket-finish its claims without
// tracking which ones already completed.
func (nd *pnode) finish(r pres) {
	if !nd.finished.CompareAndSwap(false, true) {
		return
	}
	nd.res = r
	close(nd.done)
}

// resFromSolution builds a node's result record from a finished solve,
// copying X out of the solver scratch and deriving the root-only artifacts
// (Farkas ray, eager basis capture) that must be read off the Prepared
// before its state is disturbed by the next solve.
func (ps *pstate) resFromSolution(prep *lp.Prepared, nd *pnode, sol *lp.Solution) pres {
	r := pres{status: sol.Status, obj: sol.Obj, iters: sol.Iterations, warmHit: sol.Warm}
	switch sol.Status {
	case lp.Optimal:
		r.x = append([]float64(nil), sol.X...)
		// The basis is only ever consumed if the walker branches here; a
		// node already below the incumbent bound will be pruned instead
		// (monotonicity makes that irreversible), except that the root's
		// basis is also the RootBasis result field, wanted regardless.
		if ps.warmStart && (nd.patchVar < 0 || !ps.certainlyPruned(sol.Obj)) {
			r.basis = prep.CaptureBasis()
		}
	case lp.Infeasible:
		if nd.patchVar < 0 {
			r.ray = prep.InfeasibilityRay()
		}
	}
	return r
}

// worker speculatively solves claimed nodes until ctx is canceled. Each
// worker owns a private Prepared (and bound scratch); the only state it
// shares are immutable pnode inputs, the per-node result handoff, and the
// atomic incumbent bound.
func (ps *pstate) worker(ctx context.Context, wg *sync.WaitGroup) {
	defer wg.Done()
	prep, err := lp.Prepare(&ps.p.Problem)
	if err != nil {
		return // the walker validated the same problem; unreachable in practice
	}
	defer prep.Release()
	prep.SetTraceSpan(ps.tsp)
	cs := chainScratch{
		lower: append([]float64(nil), ps.lower0...),
		upper: append([]float64(nil), ps.upper0...),
	}
	for {
		nd, sib := ps.claim(ctx)
		if nd == nil {
			return
		}
		ps.solveClaim(ctx, prep, &cs, nd, sib)
	}
}

// solveClaim solves one claimed node (and its co-claimed sibling, when
// present). A panic anywhere in the solve is recovered and delivered as the
// claim's result — finish is idempotent, so the recovery path can
// blanket-finish both nodes and the done channels still close exactly once.
// A worker panic therefore surfaces as an error at the walker's consume
// instead of killing the process.
func (ps *pstate) solveClaim(ctx context.Context, prep *lp.Prepared, cs *chainScratch, nd, sib *pnode) {
	defer func() {
		if v := recover(); v != nil {
			perr := panicsafe.Capture(v, "bb_worker")
			nd.finish(pres{err: perr})
			if sib != nil {
				sib.finish(pres{err: perr})
			}
		}
	}()
	if err := faultinject.Check("ilp.worker"); err != nil {
		nd.finish(pres{err: err})
		if sib != nil {
			sib.finish(pres{err: err})
		}
		return
	}
	cs.setBounds(ps, nd)
	if sib == nil {
		var sol lp.Solution
		if err := prep.SolveBounds(ctx, cs.lower, cs.upper, nd.warm, &sol); err != nil {
			nd.finish(pres{err: err})
			return
		}
		ps.steals.Add(1)
		nd.finish(ps.resFromSolution(prep, nd, &sol))
		return
	}
	// Batched sibling pair: both children share nd's bounds except for
	// the branched variable, and share the parent basis, so one
	// SolveBatch amortizes the warm restore's refactorization.
	if cs.sibLower == nil {
		cs.sibLower = make([]float64, len(cs.lower))
		cs.sibUpper = make([]float64, len(cs.upper))
	}
	copy(cs.sibLower, cs.lower)
	copy(cs.sibUpper, cs.upper)
	cs.sibLower[sib.patchVar], cs.sibUpper[sib.patchVar] = sib.lo, sib.up
	items := [2]lp.BatchBounds{
		{Lower: cs.lower, Upper: cs.upper},
		{Lower: cs.sibLower, Upper: cs.sibUpper},
	}
	var outs [2]lp.Solution
	var bases [2]*lp.Basis
	basesOut := bases[:]
	if !ps.warmStart {
		basesOut = nil
	}
	if err := prep.SolveBatch(ctx, items[:], nd.warm, outs[:], basesOut); err != nil {
		nd.finish(pres{err: err})
		sib.finish(pres{err: err})
		return
	}
	ps.steals.Add(2)
	ps.batched.Add(2)
	for i, n := range [2]*pnode{nd, sib} {
		r := pres{status: outs[i].Status, obj: outs[i].Obj, iters: outs[i].Iterations, warmHit: outs[i].Warm}
		if outs[i].Status == lp.Optimal {
			r.x = outs[i].X // SolveBatch already copied it out
			r.basis = bases[i]
		}
		// Children are never the root, so no ray derivation here.
		n.finish(r)
	}
}

// solveParallel runs branch and bound with parallelism−1 speculative
// workers plus the committing walker. See the file comment for why its
// results are bit-identical to the sequential engine's.
func solveParallel(ctx context.Context, p *Problem, maxNodes int, first, warmStart bool, rootHint *lp.Basis, parallelism int, tsp trace.Span) (*Result, error) {
	tr := newBBTracer(tsp)
	prep, err := lp.Prepare(&p.Problem)
	if err != nil {
		return nil, err
	}
	defer prep.Release()
	// The walker's single mutable bound pair, patched exactly like the
	// sequential engine's.
	lower := append([]float64(nil), p.Lower...)
	upper := append([]float64(nil), p.Upper...)
	for j, isInt := range p.Integer {
		if !isInt {
			continue
		}
		if !math.IsInf(lower[j], -1) {
			lower[j] = math.Ceil(lower[j] - intTol)
		}
		if !math.IsInf(upper[j], 1) {
			upper[j] = math.Floor(upper[j] + intTol)
		}
	}
	ps := &pstate{
		p:         p,
		lower0:    append([]float64(nil), lower...),
		upper0:    append([]float64(nil), upper...),
		warmStart: warmStart,
		tsp:       tsp,
	}
	ps.cond = sync.NewCond(&ps.mu)
	ps.bound.Store(math.Float64bits(math.Inf(1)))
	root := &pnode{patchVar: -1, warm: rootHint, done: make(chan struct{})}
	ps.stack = []*pnode{root}

	specCtx, cancel := context.WithCancel(ctx)
	var wg sync.WaitGroup
	for w := 0; w < parallelism-1; w++ {
		wg.Add(1)
		go ps.worker(specCtx, &wg)
	}
	defer func() {
		cancel()
		ps.mu.Lock()
		ps.cond.Broadcast()
		ps.mu.Unlock()
		wg.Wait()
	}()

	var path []applied
	res := &Result{Status: Infeasible}
	bestObj := math.Inf(1)
	hitLimit := false
	for {
		ps.mu.Lock()
		n := len(ps.stack)
		var nd *pnode
		if n > 0 {
			nd = ps.stack[n-1]
			ps.stack = ps.stack[:n-1]
		}
		ps.mu.Unlock()
		if nd == nil {
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := faultinject.Check("ilp.node"); err != nil {
			return nil, err
		}
		if res.Nodes >= maxNodes {
			hitLimit = true
			break
		}
		res.Nodes++
		// Rewind the applied patches to this node's parent, then apply its
		// own patch — the pop order is the sequential engine's, so the
		// shared arrays always hold exactly the popped node's path.
		target := nd.depth
		if nd.patchVar >= 0 {
			target = nd.depth - 1
		}
		for len(path) > target {
			e := path[len(path)-1]
			path = path[:len(path)-1]
			lower[e.v], upper[e.v] = e.lo, e.up
		}
		if nd.patchVar >= 0 {
			path = append(path, applied{nd.patchVar, lower[nd.patchVar], upper[nd.patchVar]})
			lower[nd.patchVar], upper[nd.patchVar] = nd.lo, nd.up
		}
		// Obtain the node's LP result: claim and solve inline on the
		// walker's Prepared (bounds are already materialized), or consume a
		// worker's speculative solve.
		var r pres
		inline := nd.claimed.CompareAndSwap(false, true)
		if inline {
			var sol lp.Solution
			if err := prep.SolveBounds(ctx, lower, upper, nd.warm, &sol); err != nil {
				return nil, err
			}
			r = pres{status: sol.Status, obj: sol.Obj, iters: sol.Iterations, warmHit: sol.Warm}
			if sol.Status == lp.Optimal {
				r.x = sol.X // consumed before the next solve on prep
				if nd.patchVar < 0 && warmStart {
					r.basis = prep.CaptureBasis()
				}
			} else if nd.patchVar < 0 && sol.Status == lp.Infeasible {
				r.ray = prep.InfeasibilityRay()
			}
		} else {
			<-nd.done
			r = nd.res
			if r.err != nil {
				return nil, r.err
			}
		}
		res.Pivots += r.iters
		if r.warmHit {
			res.WarmHits++
		}
		tr.tick(res)
		if nd.patchVar < 0 && r.status == lp.Optimal && warmStart {
			res.RootBasis = r.basis
		}
		if nd.patchVar < 0 && r.status == lp.Infeasible {
			res.InfeasibleRay = r.ray
		}
		switch r.status {
		case lp.Infeasible:
			continue
		case lp.Unbounded:
			return nil, errors.New("ilp: LP relaxation unbounded; bound the integer variables")
		case lp.IterLimit:
			hitLimit = true
			continue
		}
		if r.obj >= bestObj-1e-9 && res.X != nil {
			continue // bound
		}
		branch, frac := -1, 0.0
		for j, isInt := range p.Integer {
			if !isInt {
				continue
			}
			f := math.Abs(r.x[j] - math.Round(r.x[j]))
			if f > intTol && f > frac {
				branch, frac = j, f
			}
		}
		if branch < 0 {
			x := append([]float64(nil), r.x...)
			for j, isInt := range p.Integer {
				if isInt {
					x[j] = math.Round(x[j])
				}
			}
			obj := 0.0
			for j := range x {
				obj += p.Obj[j] * x[j]
			}
			if obj < bestObj {
				bestObj = obj
				res.X = x
				res.Obj = obj
				ps.bound.Store(math.Float64bits(obj))
			}
			if first {
				res.Status = Optimal
				tr.flush(res)
				ps.fillCounters(res)
				return res, nil
			}
			continue
		}
		var pb *lp.Basis
		if warmStart {
			pb = r.basis
			if pb == nil && inline {
				// An inline non-root solve captures lazily, only when the
				// walker actually branches; prep still holds this node's
				// terminal state.
				pb = prep.CaptureBasis()
			}
		}
		v := r.x[branch]
		lowChild := &pnode{
			depth: nd.depth + 1, patchVar: branch,
			lo: lower[branch], up: math.Floor(v),
			parent: nd, warm: pb, done: make(chan struct{}),
		}
		highChild := &pnode{
			depth: nd.depth + 1, patchVar: branch,
			lo: math.Ceil(v), up: upper[branch],
			parent: nd, warm: pb, done: make(chan struct{}),
		}
		lowChild.sibling, highChild.sibling = highChild, lowChild
		if v-math.Floor(v) < 0.5 {
			ps.push(highChild, lowChild)
		} else {
			ps.push(lowChild, highChild)
		}
	}
	tr.flush(res)
	ps.fillCounters(res)
	if res.X != nil {
		if hitLimit {
			res.Status = NodeLimit
		} else {
			res.Status = Optimal
		}
		return res, nil
	}
	if hitLimit {
		res.Status = NodeLimit
	}
	return res, nil
}

// fillCounters copies the speculation diagnostics into the result.
func (ps *pstate) fillCounters(res *Result) {
	res.SubtreeSteals = int(ps.steals.Load())
	res.BatchedLPSolves = int(ps.batched.Load())
}
