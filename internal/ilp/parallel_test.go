package ilp

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"ccsched/internal/testutil"
)

// randomOptimizationILP is randomFeasibilityILP with a nonzero objective, so
// full branch-and-bound runs exercise the incumbent/bound machinery rather
// than stopping at the first integral point.
func randomOptimizationILP(rng *rand.Rand, m, n int) *Problem {
	p := randomFeasibilityILP(rng, m, n)
	for j := 0; j < n; j++ {
		p.Obj[j] = float64(rng.Intn(7) - 3)
	}
	return p
}

// assertSameResult fails unless got matches want in every deterministic
// field: Status, Nodes, Obj and the witness X. Pivots and WarmHits are
// deliberately not compared — which warm-restore path decides a node depends
// on solver-state residency, which parallel execution changes.
func assertSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Status != want.Status || got.Nodes != want.Nodes {
		t.Fatalf("%s: (%v, %d nodes), want (%v, %d nodes)",
			label, got.Status, got.Nodes, want.Status, want.Nodes)
	}
	if (got.X == nil) != (want.X == nil) {
		t.Fatalf("%s: solution presence diverged (got %v, want %v)", label, got.X != nil, want.X != nil)
	}
	if got.X != nil && got.Obj != want.Obj {
		t.Fatalf("%s: obj %v, want %v", label, got.Obj, want.Obj)
	}
	for j := range want.X {
		if got.X[j] != want.X[j] {
			t.Fatalf("%s: X[%d] = %v, want %v", label, j, got.X[j], want.X[j])
		}
	}
	if (got.RootBasis == nil) != (want.RootBasis == nil) {
		t.Fatalf("%s: root-basis presence diverged", label)
	}
	if (got.InfeasibleRay == nil) != (want.InfeasibleRay == nil) {
		t.Fatalf("%s: infeasible-ray presence diverged", label)
	}
}

// TestParallelSolveParity pins the tentpole contract at the ilp layer:
// Status, X, Obj and Nodes are bit-identical to the sequential engine at any
// Parallelism, across random feasibility and optimization problems, with
// warm starts on and off — while speculative workers actually steal nodes
// somewhere (otherwise the parity is vacuous).
func TestParallelSolveParity(t *testing.T) {
	// On a single-CPU host the walker can out-race the workers to every
	// claim, making the parity vacuous; more schedulable Ps give the
	// speculative workers real interleavings (results must not care).
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(4))
	rng := rand.New(rand.NewSource(41))
	var steals, batched int
	for trial := 0; trial < 30; trial++ {
		p := randomOptimizationILP(rng, 6, 12)
		for _, first := range []bool{false, true} {
			for _, noWarm := range []bool{false, true} {
				seq, err := Solve(p, &Options{FirstFeasible: first, NoWarmStart: noWarm, MaxNodes: 3000})
				if err != nil {
					t.Fatal(err)
				}
				for _, par := range []int{2, 4, 16} {
					got, err := Solve(p, &Options{
						FirstFeasible: first, NoWarmStart: noWarm, MaxNodes: 3000, Parallelism: par,
					})
					if err != nil {
						t.Fatal(err)
					}
					assertSameResult(t, label(trial, first, noWarm, par), seq, got)
					steals += got.SubtreeSteals
					batched += got.BatchedLPSolves
					if seq.SubtreeSteals != 0 || seq.BatchedLPSolves != 0 {
						t.Fatalf("sequential run reported speculation counters: %+v", seq)
					}
				}
			}
		}
	}
	if steals == 0 {
		t.Fatal("no node was ever solved by a speculative worker; parity test is vacuous")
	}
	if batched == 0 {
		t.Fatal("no sibling pair was ever batch-solved; SolveBatch path untested")
	}
	t.Logf("speculative steals=%d batched=%d", steals, batched)
}

func label(trial int, first, noWarm bool, par int) string {
	return fmt.Sprintf("trial %d first=%v nowarm=%v par=%d", trial, first, noWarm, par)
}

// TestParallelNodeLimitParity pins that budget-exhausted searches agree too:
// a NodeLimit verdict (and its best incumbent) must not depend on the worker
// count, because the committing walker replays the sequential order exactly.
func TestParallelNodeLimitParity(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	sawLimit := false
	for trial := 0; trial < 20; trial++ {
		p := randomOptimizationILP(rng, 6, 14)
		for _, budget := range []int{1, 3, 10, 40} {
			seq, err := Solve(p, &Options{MaxNodes: budget})
			if err != nil {
				t.Fatal(err)
			}
			if seq.Status == NodeLimit {
				sawLimit = true
			}
			for _, par := range []int{2, 8} {
				got, err := Solve(p, &Options{MaxNodes: budget, Parallelism: par})
				if err != nil {
					t.Fatal(err)
				}
				assertSameResult(t, label(trial, false, false, par), seq, got)
			}
		}
	}
	if !sawLimit {
		t.Fatal("no budget was ever exhausted; node-limit parity is vacuous")
	}
}

// TestParallelIncumbentRace stresses the atomic incumbent bound: repeated
// high-parallelism solves of optimization problems with many successive
// incumbents must always return the sequential optimum — speculative workers
// racing the bound may only ever skip basis captures, never drop the
// optimum. Run under -race this also exercises the publication paths.
func TestParallelIncumbentRace(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 8; trial++ {
		p := randomOptimizationILP(rng, 5, 16)
		seq, err := Solve(p, &Options{MaxNodes: 5000})
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 6; rep++ {
			got, err := Solve(p, &Options{MaxNodes: 5000, Parallelism: 8})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, label(trial, false, false, 8), seq, got)
		}
	}
}

// TestParallelCancellation proves cancellation lands promptly with subtree
// workers in flight: a canceled context aborts the parallel search with
// ctx.Err() and every worker goroutine exits (no leaks past the deferred
// wait).
func TestParallelCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	leak := testutil.LeakCheck(t)
	for trial := 0; trial < 10; trial++ {
		p := randomOptimizationILP(rng, 7, 18)
		ctx, cancel := context.WithTimeout(context.Background(), time.Duration(trial)*time.Millisecond)
		start := time.Now()
		res, err := SolveCtx(ctx, p, &Options{MaxNodes: 1 << 30, Parallelism: 8})
		elapsed := time.Since(start)
		cancel()
		if err == nil {
			// The solve legitimately finished inside the budget; fine.
			if res == nil {
				t.Fatal("nil result without error")
			}
			continue
		}
		if ctx.Err() == nil || err != context.DeadlineExceeded {
			t.Fatalf("trial %d: err = %v, want %v", trial, err, context.DeadlineExceeded)
		}
		if elapsed > 5*time.Second {
			t.Fatalf("trial %d: cancellation took %v", trial, elapsed)
		}
	}
	// Workers are joined before solveParallel returns; the shared checker
	// retries for a grace period and verifies nothing leaked.
	leak()
}
