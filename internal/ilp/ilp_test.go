package ilp

import (
	"math"
	"math/rand"
	"testing"

	"ccsched/internal/lp"
)

func TestKnapsack(t *testing.T) {
	// max 10x1 + 13x2 + 7x3  s.t. 3x1 + 4x2 + 2x3 <= 6, x binary.
	// Best: x1=0, x2=1, x3=1 -> 20.
	p := NewProblem(3)
	p.Obj = []float64{-10, -13, -7}
	p.Upper = []float64{1, 1, 1}
	p.AddRow([]float64{3, 4, 2}, lp.LE, 6)
	res, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj+20) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Obj, res.X)
	}
}

func TestIntegralityMatters(t *testing.T) {
	// LP relaxation feasible (x = 0.5) but no integral point:
	// 2x = 1 with x integer.
	p := NewProblem(1)
	p.Upper = []float64{10}
	p.AddRow([]float64{2}, lp.EQ, 1)
	res, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", res.Status)
	}
}

func TestMixedInteger(t *testing.T) {
	// min -x - y with x integer in [0,3], y continuous in [0, 2.5],
	// x + y <= 4.2. Optimum: x=3, y=1.2 -> -4.2.
	p := NewProblem(2)
	p.Obj = []float64{-1, -1}
	p.Upper = []float64{3, 2.5}
	p.Integer[1] = false
	p.AddRow([]float64{1, 1}, lp.LE, 4.2)
	res, err := Solve(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || math.Abs(res.Obj+4.2) > 1e-6 {
		t.Fatalf("status=%v obj=%v x=%v", res.Status, res.Obj, res.X)
	}
	if res.X[0] != 3 {
		t.Errorf("x0 = %v, want 3", res.X[0])
	}
}

func TestFirstFeasibleStopsEarly(t *testing.T) {
	// Zero objective: any integral point works.
	p := NewProblem(2)
	p.Upper = []float64{5, 5}
	p.AddRow([]float64{1, 1}, lp.EQ, 4)
	res, err := Solve(p, &Options{FirstFeasible: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != Optimal || res.X == nil {
		t.Fatalf("status=%v", res.Status)
	}
	if res.X[0]+res.X[1] != 4 {
		t.Errorf("x = %v does not satisfy the constraint", res.X)
	}
}

func TestNodeLimit(t *testing.T) {
	// A problem needing more than one node, starved of budget.
	p := NewProblem(6)
	for j := 0; j < 6; j++ {
		p.Obj[j] = -1
		p.Upper[j] = 1
	}
	p.AddRow([]float64{2, 2, 2, 2, 2, 2}, lp.LE, 5)
	res, err := Solve(p, &Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != NodeLimit {
		t.Fatalf("status = %v, want node-limit", res.Status)
	}
}

func TestUnboundedRejected(t *testing.T) {
	p := NewProblem(1)
	p.Obj = []float64{-1}
	p.AddRow([]float64{0}, lp.LE, 1)
	if _, err := Solve(p, nil); err == nil {
		t.Error("want unbounded error")
	}
}

func TestValidation(t *testing.T) {
	p := NewProblem(2)
	p.Integer = p.Integer[:1]
	if _, err := Solve(p, nil); err == nil {
		t.Error("want Integer length error")
	}
}

// bruteForceIP enumerates all integral points in the box and returns the
// best objective, or NaN if none is feasible.
func bruteForceIP(p *Problem) float64 {
	n := p.NumVars
	best := math.NaN()
	x := make([]float64, n)
	var rec func(j int)
	rec = func(j int) {
		if j == n {
			for i, row := range p.A {
				dot := 0.0
				for k := 0; k < n; k++ {
					dot += row[k] * x[k]
				}
				switch p.Rel[i] {
				case lp.LE:
					if dot > p.B[i]+1e-9 {
						return
					}
				case lp.GE:
					if dot < p.B[i]-1e-9 {
						return
					}
				case lp.EQ:
					if math.Abs(dot-p.B[i]) > 1e-9 {
						return
					}
				}
			}
			obj := 0.0
			for k := 0; k < n; k++ {
				obj += p.Obj[k] * x[k]
			}
			if math.IsNaN(best) || obj < best {
				best = obj
			}
			return
		}
		for v := p.Lower[j]; v <= p.Upper[j]; v++ {
			x[j] = v
			rec(j + 1)
		}
	}
	rec(0)
	return best
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 120; trial++ {
		n := 2 + rng.Intn(3)
		rows := 1 + rng.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Obj[j] = float64(rng.Intn(9) - 4)
			p.Upper[j] = float64(1 + rng.Intn(3))
		}
		for i := 0; i < rows; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(7) - 3)
			}
			p.AddRow(row, lp.Relation(rng.Intn(3)), float64(rng.Intn(7)-1))
		}
		res, err := Solve(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceIP(p)
		switch res.Status {
		case Optimal:
			if math.IsNaN(want) {
				t.Errorf("trial %d: ilp found %v, brute force infeasible", trial, res.Obj)
			} else if math.Abs(res.Obj-want) > 1e-6 {
				t.Errorf("trial %d: ilp %v, brute force %v", trial, res.Obj, want)
			}
		case Infeasible:
			if !math.IsNaN(want) {
				t.Errorf("trial %d: ilp infeasible, brute force %v", trial, want)
			}
		case NodeLimit:
			t.Errorf("trial %d: unexpected node limit", trial)
		}
	}
}
