package ptas

import (
	"bytes"
	"crypto/sha256"
	"math"
	"sort"

	"ccsched/internal/core"
	"ccsched/internal/lp"
	"ccsched/internal/nfold"
)

// Snapshot codec for the session warm state. Durable sessions serialize
// everything a SessionState and its feasibility cache learned, in a form a
// later process can restore without ever trusting it:
//
//   - templates persist only their parameters (g, limit, slot budget) — the
//     enumerations, shared blocks and move-set caches are deterministic
//     functions of those and are rebuilt from the live instance on restore;
//   - search seeds persist the accepted guess, its scale, the Farkas ray and
//     the root basis — the ray is re-verified from scratch on every use
//     (nfold.Problem.CertifiesInfeasible) and the basis restore is
//     verdict-only (lp.RestoreBasis + the dual restore's contract), so a
//     stale seed can cost time but never change a verdict;
//   - cache entries persist their key, verdict and evidence (the solution
//     for feasible entries, the ray for infeasible ones) and come back
//     marked restored: the first hit re-verifies the evidence against a
//     freshly built N-fold and drops the entry on any mismatch (see
//     solveGuessCached). Infeasible verdicts without a ray are not
//     exportable — there is nothing to re-verify — and are skipped.
//
// Floats (rays) are serialized as IEEE-754 bit patterns in uint64 fields,
// so the JSON round trip is exact and NaN/Inf can be rejected on decode.
// Export is deterministic (entries sorted by key), so encode(decode(x)) is
// a fixed point once invalid sections have been dropped — the property the
// snapshot fuzzer checks.

// floatBits encodes floats as IEEE-754 bit patterns.
func floatBits(fs []float64) []uint64 {
	if fs == nil {
		return nil
	}
	out := make([]uint64, len(fs))
	for i, f := range fs {
		out[i] = math.Float64bits(f)
	}
	return out
}

// bitsToFloats decodes IEEE-754 bit patterns, rejecting NaN and ±Inf (no
// certificate or basis the solver produces contains them, so their presence
// means corruption).
func bitsToFloats(bits []uint64) ([]float64, bool) {
	if bits == nil {
		return nil, true
	}
	out := make([]float64, len(bits))
	for i, b := range bits {
		f := math.Float64frombits(b)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, false
		}
		out[i] = f
	}
	return out, true
}

// TemplateSnapshot is the serializable form of a carried guess template:
// only the parameters, since the template body is a deterministic function
// of (instance, g, limit) and is rebuilt on restore.
type TemplateSnapshot struct {
	// G is the accuracy parameter 1/δ the template was built for.
	G int64 `json:"g"`
	// Limit is the configuration-count limit.
	Limit int `json:"limit"`
	// Slots is the per-machine class-slot budget of the instance the
	// template was built from; a restore against an instance with a
	// different budget drops the template (brick shapes changed).
	Slots int `json:"slots"`
}

// SeedSnapshot is the serializable per-probe-shape search seed.
type SeedSnapshot struct {
	// Tag is the probe-shape tag (the cacheKey variant byte).
	Tag byte `json:"tag"`
	// Guess and Scale are the previously accepted makespan guess and the
	// power-of-two scale it was found under.
	Guess int64 `json:"guess"`
	Scale int64 `json:"scale"`
	// Ray is the boundary reject's Farkas certificate, as IEEE-754 bits.
	Ray []uint64 `json:"ray,omitempty"`
	// Root is the last captured root-relaxation basis.
	Root *lp.BasisSnapshot `json:"root,omitempty"`
}

// StateSnapshot is the serializable warm state of one scheduling session.
type StateSnapshot struct {
	// Split and Pre are the carried splittable and preemptive guess
	// templates, when present.
	Split *TemplateSnapshot `json:"split,omitempty"`
	Pre   *TemplateSnapshot `json:"pre,omitempty"`
	// Seeds are the per-probe-shape search seeds, sorted by tag.
	Seeds []SeedSnapshot `json:"seeds,omitempty"`
}

// Export returns the serializable form of the session state (nil for nil
// or empty state).
func (st *SessionState) Export() *StateSnapshot {
	if st == nil {
		return nil
	}
	out := &StateSnapshot{}
	if st.split != nil {
		out.Split = &TemplateSnapshot{G: st.split.g, Limit: st.split.limit, Slots: st.split.in.Slots}
	}
	if st.pre != nil {
		out.Pre = &TemplateSnapshot{G: st.pre.g, Limit: st.pre.limit, Slots: st.pre.in.Slots}
	}
	for tag, s := range st.seeds {
		if s == nil {
			continue
		}
		out.Seeds = append(out.Seeds, SeedSnapshot{
			Tag: tag, Guess: s.guess, Scale: s.scale,
			Ray:  floatBits(s.ray),
			Root: s.root.Snapshot(),
		})
	}
	sort.Slice(out.Seeds, func(a, b int) bool { return out.Seeds[a].Tag < out.Seeds[b].Tag })
	if out.Split == nil && out.Pre == nil && len(out.Seeds) == 0 {
		return nil
	}
	return out
}

// RestoreState rebuilds session warm state for in from a snapshot,
// degrading component-by-component: a template whose parameters are invalid
// or whose slot budget no longer matches the instance is dropped (the next
// solve rebuilds cold); a seed with an out-of-range tag or non-positive
// guess/scale is dropped; a seed's ray or basis that fails validation is
// dropped individually while the guess itself is kept. Restored rays and
// bases are re-verified on every use anyway, so nothing restored here is
// ever trusted with a verdict. A nil snapshot restores empty state.
func RestoreState(snap *StateSnapshot, in *core.Instance) *SessionState {
	st := NewSessionState()
	if snap == nil {
		return st
	}
	if t := snap.Split; t != nil && t.G >= 1 && t.Limit >= 1 && t.Slots == in.Slots {
		if tm, err := newSplitTemplate(in, t.G, t.Limit); err == nil {
			st.split = tm
		}
	}
	if t := snap.Pre; t != nil && t.G >= 1 && t.Limit >= 1 && t.Slots == in.Slots {
		if tm, err := newPreTemplate(in, t.G, t.Limit); err == nil {
			st.pre = tm
		}
	}
	for _, s := range snap.Seeds {
		if s.Tag > cachePreemptive || s.Guess < 1 || s.Scale < 1 {
			continue
		}
		if _, dup := st.seeds[s.Tag]; dup {
			continue
		}
		seed := &sessionSeed{guess: s.Guess, scale: s.Scale}
		if ray, ok := bitsToFloats(s.Ray); ok && len(ray) > 0 {
			seed.ray = ray
		}
		if s.Root != nil {
			if root, err := lp.RestoreBasis(s.Root); err == nil {
				seed.root = root
			}
		}
		st.seeds[s.Tag] = seed
	}
	return st
}

// CacheEntrySnapshot is one serialized feasibility-cache verdict: the full
// cache key plus the verdict and its re-verifiable evidence.
type CacheEntrySnapshot struct {
	// Variant, Digest, G, MaxConfigs, MaxNodes and Engine reproduce the
	// cache key (Digest is the 32-byte derived-data digest).
	Variant    byte   `json:"variant"`
	Digest     []byte `json:"digest"`
	G          int64  `json:"g"`
	MaxConfigs int    `json:"max_configs"`
	MaxNodes   int    `json:"max_nodes"`
	Engine     string `json:"engine,omitempty"`
	// Feasible is the verdict; X is the integral N-fold solution backing a
	// feasible verdict, Ray (IEEE-754 bits) the Farkas certificate backing
	// an infeasible one.
	Feasible bool      `json:"feasible"`
	X        [][]int64 `json:"x,omitempty"`
	Ray      []uint64  `json:"ray,omitempty"`
	// Producer records the engine that originally produced the verdict
	// (diagnostic only; restored verdicts re-verify their evidence).
	Producer string `json:"producer,omitempty"`
}

// CacheSnapshot is the serializable form of a feasibility cache.
type CacheSnapshot struct {
	// Entries are the exportable verdicts, sorted by key for deterministic
	// output.
	Entries []CacheEntrySnapshot `json:"entries,omitempty"`
}

// Export returns the serializable form of the cache. Infeasible verdicts
// that carry no Farkas ray are skipped: without evidence there is nothing
// for a restore to re-verify, so they are not exportable. Returns nil for a
// nil or empty cache.
func (c *Cache) Export() *CacheSnapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.m) == 0 {
		return nil
	}
	out := &CacheSnapshot{Entries: make([]CacheEntrySnapshot, 0, len(c.m))}
	for k, e := range c.m {
		if !e.feasible && e.ray == nil {
			continue
		}
		out.Entries = append(out.Entries, CacheEntrySnapshot{
			Variant: k.variant, Digest: append([]byte(nil), k.digest[:]...), G: k.g,
			MaxConfigs: k.maxConfigs, MaxNodes: k.maxNodes, Engine: string(k.engine),
			Feasible: e.feasible, X: e.x, Ray: floatBits(e.ray),
			Producer: string(e.engine),
		})
	}
	if len(out.Entries) == 0 {
		return nil
	}
	sort.Slice(out.Entries, func(a, b int) bool {
		x, y := &out.Entries[a], &out.Entries[b]
		switch {
		case x.Variant != y.Variant:
			return x.Variant < y.Variant
		case x.G != y.G:
			return x.G < y.G
		case x.MaxConfigs != y.MaxConfigs:
			return x.MaxConfigs < y.MaxConfigs
		case x.MaxNodes != y.MaxNodes:
			return x.MaxNodes < y.MaxNodes
		case x.Engine != y.Engine:
			return x.Engine < y.Engine
		}
		return bytes.Compare(x.Digest, y.Digest) < 0
	})
	return out
}

// RestoreCache rebuilds a feasibility cache from a snapshot. Every restored
// entry is marked as such, which makes it a hint: its first lookup hit
// re-verifies the stored evidence against the freshly built N-fold and
// drops the entry on any mismatch, so a corrupt or stale snapshot degrades
// to a cold solve instead of a wrong verdict. Entries that are malformed at
// the shape level (bad variant tag, wrong digest length, non-positive g,
// missing or non-finite evidence) are dropped here. A nil snapshot returns
// an empty cache.
func RestoreCache(snap *CacheSnapshot) *Cache {
	c := NewCache()
	if snap == nil {
		return c
	}
	for _, r := range snap.Entries {
		if r.Variant > cachePreemptive || len(r.Digest) != sha256.Size || r.G < 1 ||
			r.MaxConfigs < 0 || r.MaxNodes < 0 {
			continue
		}
		e := cacheEntry{feasible: r.Feasible, engine: nfold.Engine(r.Producer), restored: true}
		if r.Feasible {
			if len(r.X) == 0 {
				continue
			}
			e.x = r.X
		} else {
			ray, ok := bitsToFloats(r.Ray)
			if !ok || len(ray) == 0 {
				continue
			}
			e.ray = ray
		}
		k := cacheKey{
			variant: r.Variant, g: r.G,
			maxConfigs: r.MaxConfigs, maxNodes: r.MaxNodes,
			engine: nfold.Engine(r.Engine),
		}
		copy(k.digest[:], r.Digest)
		c.store(k, e)
	}
	return c
}
