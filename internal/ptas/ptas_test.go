package ptas

import (
	"context"
	"math/big"
	"testing"
	"time"

	"ccsched/internal/core"
	"ccsched/internal/generator"
)

func ratioAtMost(t *testing.T, name string, makespan, lb *big.Rat, num, den int64) {
	t.Helper()
	if lb.Sign() == 0 {
		t.Fatalf("%s: zero lower bound", name)
	}
	limit := core.RatMul(lb, core.RatFrac(num, den))
	if makespan.Cmp(limit) > 0 {
		r := new(big.Rat).Quo(makespan, lb)
		t.Errorf("%s: makespan %s exceeds %d/%d x LB %s (ratio %.4f)",
			name, makespan.RatString(), num, den, lb.RatString(), core.RatFloat(r))
	}
}

func TestSplittablePTAS(t *testing.T) {
	for _, cfg := range []generator.Config{
		{N: 8, Classes: 3, Machines: 3, Slots: 2, PMax: 40, Seed: 1},
		{N: 12, Classes: 4, Machines: 3, Slots: 2, PMax: 50, Seed: 2},
		{N: 15, Classes: 5, Machines: 4, Slots: 2, PMax: 30, Seed: 3},
	} {
		in := generator.Uniform(cfg)
		res, err := SolveSplittable(context.Background(), in, Options{Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Compact.Validate(in); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", cfg.Seed, err)
		}
		lb, err := core.LowerBound(in, core.Splittable)
		if err != nil {
			t.Fatal(err)
		}
		// The best-of post-processing guarantees the 2-approximation as a
		// floor; the PTAS guess machinery typically does better.
		ratioAtMost(t, "splittable-ptas", res.Makespan(), lb, 2, 1)
		if res.Report.Guess <= 0 || res.Report.Guesses <= 0 {
			t.Errorf("seed %d: missing report: %+v", cfg.Seed, res.Report)
		}
	}
}

func TestSplittablePTASHugeM(t *testing.T) {
	in := &core.Instance{
		P:     []int64{900, 850, 400, 120, 60, 30},
		Class: []int{0, 1, 1, 2, 3, 3},
		M:     1 << 40,
		Slots: 1,
	}
	res, err := SolveSplittable(context.Background(), in, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatalf("invalid compact schedule: %v", err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "splittable-ptas-huge", res.Makespan(), lb, 2, 1)
}

func TestNonPreemptivePTAS(t *testing.T) {
	for _, cfg := range []generator.Config{
		{N: 10, Classes: 3, Machines: 3, Slots: 2, PMax: 40, Seed: 4},
		{N: 14, Classes: 4, Machines: 3, Slots: 2, PMax: 60, Seed: 5},
	} {
		in := generator.Uniform(cfg)
		res, err := SolveNonPreemptive(context.Background(), in, Options{Epsilon: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Schedule.Validate(in); err != nil {
			t.Fatalf("seed %d: invalid schedule: %v", cfg.Seed, err)
		}
		lb, err := core.LowerBound(in, core.NonPreemptive)
		if err != nil {
			t.Fatal(err)
		}
		ratioAtMost(t, "np-ptas", core.RatInt(res.Makespan(in)), lb, 7, 3)
	}
}

func TestNonPreemptivePTASManyMachines(t *testing.T) {
	in := &core.Instance{P: []int64{5, 9, 3}, Class: []int{0, 1, 2}, M: 5, Slots: 1}
	res, err := SolveNonPreemptive(context.Background(), in, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan(in); got != 9 {
		t.Errorf("makespan = %d, want p_max = 9", got)
	}
}

// TestPreemptivePTAS exercises the full layer/interval machinery on a tiny
// instance (the preemptive N-fold is the paper's heaviest construction).
func TestPreemptivePTAS(t *testing.T) {
	if testing.Short() {
		t.Skip("preemptive PTAS is expensive")
	}
	in := generator.Uniform(generator.Config{N: 8, Classes: 2, Machines: 2, Slots: 1, PMax: 30, Seed: 6})
	res, err := SolvePreemptive(context.Background(), in, Options{Epsilon: 0.5, MaxNodes: 120})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	lb, err := core.LowerBound(in, core.Preemptive)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "pre-ptas", res.Makespan(), lb, 2, 1)
}

func TestPreemptivePTASManyMachines(t *testing.T) {
	in := &core.Instance{P: []int64{5, 9, 3}, Class: []int{0, 1, 2}, M: 3, Slots: 1}
	res, err := SolvePreemptive(context.Background(), in, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan(); got.Cmp(core.RatInt(9)) != 0 {
		t.Errorf("makespan = %s, want p_max = 9", got.RatString())
	}
}

func TestOptionsDelta(t *testing.T) {
	cases := []struct {
		eps  float64
		want int64
		ok   bool
	}{
		{1, 1, true}, {0.5, 2, true}, {0.34, 3, true}, {0.25, 4, true},
		{0, 0, false}, {-1, 0, false}, {1.5, 0, false},
	}
	for _, tc := range cases {
		g, err := Options{Epsilon: tc.eps}.delta()
		if tc.ok && (err != nil || g != tc.want) {
			t.Errorf("delta(%v) = %d, %v; want %d", tc.eps, g, err, tc.want)
		}
		if !tc.ok && err == nil {
			t.Errorf("delta(%v) should fail", tc.eps)
		}
	}
}

func TestGuessGrid(t *testing.T) {
	grid := guessGrid(10, 24, 2)
	if grid[0] != 10 || grid[len(grid)-1] != 24 {
		t.Fatalf("grid endpoints: %v", grid)
	}
	for i := 1; i < len(grid); i++ {
		if grid[i] <= grid[i-1] {
			t.Errorf("grid not increasing: %v", grid)
		}
		// Steps stay within the (1+δ) factor plus integral rounding.
		if i < len(grid)-1 && grid[i] > (grid[i-1]*3+1)/2+1 {
			t.Errorf("grid step too large at %d: %v", i, grid)
		}
	}
	// Degenerate ranges.
	if g := guessGrid(5, 5, 2); len(g) != 1 || g[0] != 5 {
		t.Errorf("singleton grid: %v", g)
	}
	if g := guessGrid(9, 3, 2); len(g) != 1 || g[0] != 9 {
		t.Errorf("inverted grid: %v", g)
	}
}

func TestSearchGuessesFindsBoundary(t *testing.T) {
	grid := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	calls := 0
	best, guess, _, err := searchGuesses(context.Background(), grid, 1, func(_ context.Context, t int64) (int64, bool, error) {
		calls++
		return t, t >= 5, nil
	})
	if err != nil || guess != 5 || best != 5 {
		t.Fatalf("got %d/%d err=%v", best, guess, err)
	}
	if calls > 4 {
		t.Errorf("binary search used %d probes for 8 candidates", calls)
	}
}

func TestSearchGuessesAllReject(t *testing.T) {
	if _, _, _, err := searchGuesses(context.Background(), []int64{1, 2}, 1, func(context.Context, int64) (int, bool, error) {
		return 0, false, nil
	}); err == nil {
		t.Error("want error when nothing accepts")
	}
}

// TestSearchGuessesParallelIdentical proves the speculative parallel search
// consumes the exact sequential probe sequence: accepted guess, payload and
// probe count match the sequential walk for every parallelism, every
// boundary position — and even for a non-monotone predicate, where the
// outcome depends on the probe order.
func TestSearchGuessesParallelIdentical(t *testing.T) {
	grid := make([]int64, 23)
	for i := range grid {
		grid[i] = int64(i + 1)
	}
	predicates := map[string]func(int64) bool{
		"monotone-low":  func(v int64) bool { return v >= 3 },
		"monotone-mid":  func(v int64) bool { return v >= 12 },
		"monotone-top":  func(v int64) bool { return v >= 23 },
		"all-accept":    func(int64) bool { return true },
		"non-monotone":  func(v int64) bool { return v >= 9 && v != 14 && v != 15 },
		"non-monotone2": func(v int64) bool { return v%3 == 0 || v >= 20 },
	}
	for name, pred := range predicates {
		probe := func(_ context.Context, v int64) (int64, bool, error) {
			return v * 10, pred(v), nil
		}
		wantBest, wantGuess, wantTried, wantErr := searchGuesses(context.Background(), grid, 1, probe)
		for _, par := range []int{2, 3, 8, 64} {
			best, guess, tried, err := searchGuesses(context.Background(), grid, par, probe)
			if (err == nil) != (wantErr == nil) || best != wantBest || guess != wantGuess || tried != wantTried {
				t.Errorf("%s par=%d: got (%d,%d,%d,%v) want (%d,%d,%d,%v)",
					name, par, best, guess, tried, err, wantBest, wantGuess, wantTried, wantErr)
			}
		}
	}
}

// TestSearchGuessesSpeculativeOverlap proves the parallel search actually
// overlaps in-flight probes: with per-probe latency L and enough workers,
// the walker's whole binary-search path runs concurrently, so wall-clock
// stays near L instead of path-length × L. Latency-bound probes make the
// test independent of the host's core count.
func TestSearchGuessesSpeculativeOverlap(t *testing.T) {
	grid := make([]int64, 15) // binary-search path length 4
	for i := range grid {
		grid[i] = int64(i + 1)
	}
	const latency = 100 * time.Millisecond
	probe := func(pctx context.Context, v int64) (int64, bool, error) {
		select {
		case <-time.After(latency):
		case <-pctx.Done():
			return 0, false, pctx.Err()
		}
		return v, v >= 11, nil
	}
	start := time.Now()
	_, guess, tried, err := searchGuesses(context.Background(), grid, 16, probe)
	elapsed := time.Since(start)
	if err != nil || guess != 11 {
		t.Fatalf("guess %d err %v", guess, err)
	}
	if tried != 4 {
		t.Fatalf("walker consumed %d probes, want 4", tried)
	}
	// Sequential cost is 4 × latency; full speculation needs ~1 × latency.
	// Allow 2.5× for scheduling slop — still far below sequential.
	if elapsed >= 4*latency {
		t.Errorf("speculative search took %s, sequential-like for a 4-probe path", elapsed)
	}
	if elapsed > latency*5/2 {
		t.Errorf("speculative search took %s, want ≈%s (overlapped path)", elapsed, latency)
	}
}

// TestSearchGuessesParallelCancel proves a canceled context aborts the
// parallel search with ctx.Err() instead of hanging on in-flight probes.
func TestSearchGuessesParallelCancel(t *testing.T) {
	grid := make([]int64, 31)
	for i := range grid {
		grid[i] = int64(i + 1)
	}
	ctx, cancel := context.WithCancel(context.Background())
	started := make(chan struct{}, len(grid))
	_, _, _, err := searchGuesses(ctx, grid, 4, func(pctx context.Context, v int64) (int64, bool, error) {
		started <- struct{}{}
		cancel()
		<-pctx.Done()
		return 0, false, pctx.Err()
	})
	if err == nil {
		t.Fatal("want a context error after cancel")
	}
	if ctx.Err() == nil {
		t.Fatal("outer context should be canceled")
	}
}

func TestGroupJobsInvariants(t *testing.T) {
	in := generator.Zipf(generator.Config{N: 60, Classes: 6, Machines: 4, Slots: 2, PMax: 100, Seed: 7})
	byClass := in.ClassJobs()
	g, tt := int64(2), int64(200) // δT = 100
	for u, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		grouped, isSmall := groupJobs(in, jobs, g, tt)
		seen := make(map[int]bool)
		var total int64
		for _, gj := range grouped {
			var load int64
			for _, j := range gj.orig {
				if seen[j] {
					t.Fatalf("class %d: job %d grouped twice", u, j)
				}
				seen[j] = true
				load += in.P[j]
			}
			if load != gj.load {
				t.Errorf("class %d: grouped load %d != %d", u, gj.load, load)
			}
			total += load
		}
		for _, j := range jobs {
			if !seen[j] {
				t.Errorf("class %d: job %d missing after grouping", u, j)
			}
		}
		if isSmall {
			if len(grouped) != 1 || grouped[0].load*g > tt {
				t.Errorf("class %d: small class with %d jobs load %d", u, len(grouped), grouped[0].load)
			}
		} else {
			// Every grouped job is at least... the merged leftover rule can
			// only grow jobs, and packets reach > δT; original big jobs are
			// > δT by definition.
			for _, gj := range grouped {
				if gj.load*g <= tt && len(gj.orig) == 1 {
					t.Errorf("class %d: large class keeps job of load %d <= δT", u, gj.load)
				}
			}
		}
	}
}

func TestEnumerateConfigsCounts(t *testing.T) {
	// Modules {2,3}, maxSize 5, maxSlots 2:
	// {}, {2}, {3}, {2,2}, {2,3} -> 5 configurations.
	configs, err := enumerateConfigs([]int64{2, 3}, 5, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 5 {
		t.Errorf("got %d configurations, want 5", len(configs))
	}
	if _, err := enumerateConfigs([]int64{1, 2, 3}, 30, 30, 3); err == nil {
		t.Error("want limit error")
	}
}

func TestEnumerateIntervalConfigs(t *testing.T) {
	// 3 layers: intervals [0,1),[0,2),[0,3),[1,2),[1,3),[2,3) = 6 modules.
	mods := []interval{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	configs, err := enumerateIntervalConfigs(mods, 1, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if len(configs) != 7 { // empty + 6 singletons
		t.Errorf("maxSlots=1: got %d configs, want 7", len(configs))
	}
	configs, err = enumerateIntervalConfigs(mods, 2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Disjoint pairs: [0,1)+[1,2), [0,1)+[1,3), [0,1)+[2,3), [0,2)+[2,3),
	// [1,2)+[2,3) = 5. Total = 7 + 5 = 12.
	if len(configs) != 12 {
		t.Errorf("maxSlots=2: got %d configs, want 12", len(configs))
	}
	for _, cc := range configs {
		var covered int64
		end := -1
		for _, mi := range cc.intervals {
			if mods[mi].lo < end {
				t.Errorf("config %v has overlapping intervals", cc.intervals)
			}
			end = mods[mi].hi
			covered += int64(mods[mi].length())
		}
		if covered != cc.size {
			t.Errorf("config size %d != covered %d", cc.size, covered)
		}
	}
}
