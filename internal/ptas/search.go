package ptas

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"ccsched/internal/panicsafe"
	"ccsched/internal/trace"
)

// recoveredPanic reports whether err carries a recovered engine panic. A
// panic indicates a bug, not an infeasible or over-budget search: masking it
// behind the graceful approx fallback would hide the defect and break the
// contract that panics surface as typed internal errors, so every fallback
// site propagates these instead of degrading.
func recoveredPanic(err error) bool {
	var pe *panicsafe.Error
	return errors.As(err, &pe)
}

// The makespan-guess search. Feasibility of a guess T is monotone for the
// paper's schemes (Lemma 7's dual approximation: any schedule for T is a
// schedule for T' > T), so the sequential search is a binary search over the
// (1+δ) guess grid. In practice the predicate the code evaluates is only
// *almost* monotone — the budgeted augmentation/branch-and-bound engines may
// reject a feasible guess (nudging the accepted makespan up one grid step) —
// so a parallel search must not change which probes decide the outcome, or
// results would depend on the worker count.
//
// The parallel search therefore speculates on the binary-search probe tree
// rather than multisecting the interval: a walker follows exactly the
// sequential probe sequence, while a pool of Parallelism workers prefetches
// the probes the walker could need next (the tree descendants of the current
// interval, in breadth-first order — the most-likely-needed first). Verdicts
// that narrow the interval cancel every in-flight probe outside it via
// context.Context; cancellation reaches the N-fold engines at iteration
// boundaries (see nfold.SolveCtx), so losing speculative ILP solves stop
// promptly instead of holding their worker slot. The accepted guess, the
// payload, and the probe count are bit-identical to the sequential search by
// construction, for any Parallelism.

// searchResult is one probe's outcome, memoized for the walker. done is
// closed exactly once — after the probe ran, or after a worker drained it
// as cancelled — so the walker can always wait on it.
type searchResult[T any] struct {
	ctx     context.Context
	cancel  context.CancelFunc
	done    chan struct{}
	payload T
	ok      bool
	err     error
}

// searchGuesses returns the payload of the smallest accepted guess, walking
// the grid exactly like a sequential binary search. feasibleAt must return
// (payload, true) when the guess is accepted and honor its context.
// parallelism ≤ 1 runs strictly sequentially on the calling goroutine;
// larger values add speculative probes without changing the result.
func searchGuesses[T any](ctx context.Context, grid []int64, parallelism int, feasibleAt func(context.Context, int64) (T, bool, error)) (T, int64, int, error) {
	if parallelism <= 1 || len(grid) < 2 {
		return searchGuessesSeq(ctx, grid, feasibleAt)
	}
	return searchGuessesSpec(ctx, grid, parallelism, feasibleAt)
}

// searchGuessesSeq is the plain sequential binary search (feasibility is
// monotone in T): it returns the smallest accepted guess's payload.
func searchGuessesSeq[T any](ctx context.Context, grid []int64, feasibleAt func(context.Context, int64) (T, bool, error)) (T, int64, int, error) {
	var best T
	bestGuess := int64(-1)
	tried := 0
	lo, hi := 0, len(grid)-1
	// The top of the grid comes from a feasible schedule, so hi accepts.
	for lo <= hi {
		mid := (lo + hi) / 2
		payload, ok, err := feasibleAt(ctx, grid[mid])
		tried++
		if err != nil {
			var zero T
			return zero, 0, tried, err
		}
		if ok {
			best = payload
			bestGuess = grid[mid]
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	return finishSearch(grid, best, bestGuess, tried)
}

// searchGuessesSpec runs the speculative parallel search described in the
// file comment. It consumes probe results in the exact sequential order, so
// the outcome (and the probe count `tried`) matches searchGuessesSeq.
//
// Scheduling: `parallelism` workers repeatedly claim the lowest-ranked
// unclaimed probe (rank = breadth-first probe-tree order) off an atomic
// cursor, so claims happen in strict rank order by construction.
// A subtree's level order is a subsequence of the full tree's and the
// subtree root (the walker's next need) has strictly smaller depth than
// every other pending probe, so the walker's own probe is always the next
// one a freed worker picks up — speculation never starves the walk.
// Cancelled probes are drained (done closed with the context error) rather
// than skipped, so every probe's done channel closes exactly once.
func searchGuessesSpec[T any](ctx context.Context, grid []int64, parallelism int, feasibleAt func(context.Context, int64) (T, bool, error)) (T, int64, int, error) {
	sctx, scancel := context.WithCancel(ctx)
	defer scancel() // reap every in-flight probe on exit
	probes := make([]*searchResult[T], len(grid))
	for i := range probes {
		pctx, cancel := context.WithCancel(sctx)
		probes[i] = &searchResult[T]{ctx: pctx, cancel: cancel, done: make(chan struct{})}
	}
	order := probeTreeOrder(0, len(grid)-1)
	// More workers than probes is pure overhead (and an unbounded
	// caller-supplied parallelism would fork that many goroutines).
	if parallelism > len(order) {
		parallelism = len(order)
	}
	var next atomic.Int64 // index into order: probes claimed so far
	for w := 0; w < parallelism; w++ {
		go func() {
			for {
				k := int(next.Add(1)) - 1
				if k >= len(order) {
					return
				}
				p := probes[order[k]]
				if p.err = p.ctx.Err(); p.err == nil {
					p.payload, p.ok, p.err = runProbe(p.ctx, grid[order[k]], feasibleAt)
				}
				close(p.done)
			}
		}()
	}
	var best T
	bestGuess := int64(-1)
	tried := 0
	lo, hi := 0, len(grid)-1
	// The cancellation frontier: everything in [prevLo, prevHi] is still
	// live, everything outside was already cancelled by an earlier verdict.
	// Each verdict therefore cancels only the newly excluded indices —
	// O(grid) total over the whole search instead of O(grid²) (the old
	// sweep re-cancelled every out-of-interval probe on every verdict).
	prevLo, prevHi := lo, hi
	for lo <= hi {
		mid := (lo + hi) / 2
		p := probes[mid]
		<-p.done
		tried++
		if p.err != nil {
			var zero T
			return zero, 0, tried, p.err
		}
		if p.ok {
			best = p.payload
			bestGuess = grid[mid]
			hi = mid - 1
		} else {
			lo = mid + 1
		}
		// Probes that just left the interval can never be consumed: stop
		// their speculative ILP solves so the workers move to live branches.
		for i := prevLo; i < lo && i <= prevHi; i++ {
			probes[i].cancel()
		}
		for i := prevHi; i > hi && i >= prevLo; i-- {
			probes[i].cancel()
		}
		prevLo, prevHi = lo, hi
	}
	return finishSearch(grid, best, bestGuess, tried)
}

// seedWindow bounds how far the seeded search walks from the seed position
// before falling back to the full binary search. Churn re-solves move the
// boundary by at most a grid step or two; a wider window would only delay
// the fallback on the rare large jumps.
const seedWindow = 3

// searchGuessesSeeded is the session re-solve search: it starts at the grid
// position of the previous accepted guess and walks outward to bracket the
// boundary — the smallest accepted guess whose predecessor is rejected —
// within seedWindow probes, falling back to the plain sequential binary
// search (re-consuming every verdict already obtained, via the memo) when
// the window misses. Feasibility is monotone in T for the paper's schemes
// (Lemma 7), and for a monotone predicate the bracketed boundary IS the
// binary search's answer, so the session search accepts the same guess a
// cold Solve accepts; the budgeted engines' rare monotonicity violations
// are guarded end to end by the session differential tests. A zero seed
// (first solve of a session) runs the plain binary search directly.
//
// The search is strictly sequential: a session's probes are few, and its
// shared template is retargeted between searches, which speculative
// stragglers could otherwise race.
//
// sp is the enclosing guess_search trace span; the delta path shows up as a
// seed_window span (attrs: probes walked, whether it bracketed the boundary)
// and, when the window misses or there is no seed, a binary_search span —
// so a traced session re-solve makes its re-use visible per request.
func searchGuessesSeeded[T any](ctx context.Context, grid []int64, seed int64, sp trace.Span, feasibleAt func(context.Context, int64) (T, bool, error)) (T, int64, int, error) {
	type verdict struct {
		payload T
		ok      bool
	}
	memo := make(map[int]verdict)
	tried := 0
	var evalErr error
	eval := func(i int) verdict {
		if v, ok := memo[i]; ok {
			return v
		}
		payload, ok, err := feasibleAt(ctx, grid[i])
		if err != nil {
			evalErr = err
			return verdict{}
		}
		tried++
		v := verdict{payload, ok}
		memo[i] = v
		return v
	}
	if seed > 0 && len(grid) > 1 {
		wsp := sp.Child("seed_window")
		i0 := sort.Search(len(grid), func(i int) bool { return grid[i] >= seed })
		if i0 == len(grid) {
			i0 = len(grid) - 1
		}
		if v0 := eval(i0); evalErr == nil && v0.ok {
			// Walk down until the reject below the boundary.
			bottom := i0 - seedWindow
			if bottom < 0 {
				bottom = 0
			}
			for i := i0 - 1; i >= bottom; i-- {
				v := eval(i)
				if evalErr != nil {
					break
				}
				if !v.ok {
					wsp.End(trace.A("probes", int64(tried)), trace.A("hit", 1))
					return memo[i+1].payload, grid[i+1], tried, nil
				}
			}
			if evalErr == nil && bottom == 0 {
				// Accepted all the way down to the grid bottom: minimal.
				wsp.End(trace.A("probes", int64(tried)), trace.A("hit", 1))
				return memo[0].payload, grid[0], tried, nil
			}
		} else if evalErr == nil {
			// Walk up to the first accept.
			top := i0 + seedWindow
			if top > len(grid)-1 {
				top = len(grid) - 1
			}
			for i := i0 + 1; i <= top; i++ {
				v := eval(i)
				if evalErr != nil {
					break
				}
				if v.ok {
					wsp.End(trace.A("probes", int64(tried)), trace.A("hit", 1))
					return v.payload, grid[i], tried, nil
				}
			}
		}
		if evalErr != nil {
			wsp.End(trace.A("probes", int64(tried)), trace.A("err", 1))
			var zero T
			return zero, 0, tried, evalErr
		}
		wsp.End(trace.A("probes", int64(tried)), trace.A("hit", 0))
	}
	// No seed, or the window missed the boundary: plain sequential binary
	// search, with window verdicts answered from the memo for free.
	fsp := sp.Child("binary_search")
	pre := tried
	var best T
	bestGuess := int64(-1)
	lo, hi := 0, len(grid)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		v := eval(mid)
		if evalErr != nil {
			fsp.End(trace.A("probes", int64(tried-pre)), trace.A("err", 1))
			var zero T
			return zero, 0, tried, evalErr
		}
		if v.ok {
			best = v.payload
			bestGuess = grid[mid]
			hi = mid - 1
		} else {
			lo = mid + 1
		}
	}
	fsp.End(trace.A("probes", int64(tried-pre)))
	return finishSearch(grid, best, bestGuess, tried)
}

// runProbe evaluates one speculative probe, converting a panic inside the
// feasibility predicate into a *panicsafe.Error delivered through the probe's
// err slot — a panic on a search worker goroutine must never kill the
// process; the walker surfaces it like any other probe error.
func runProbe[T any](ctx context.Context, guess int64, feasibleAt func(context.Context, int64) (T, bool, error)) (payload T, ok bool, err error) {
	defer panicsafe.Recover(&err, "guess_probe")
	return feasibleAt(ctx, guess)
}

// probeTreeOrder lists the grid indices of [lo, hi] in breadth-first
// binary-search-tree order: the midpoint first, then the midpoints both its
// verdicts could lead to, and so on.
func probeTreeOrder(lo, hi int) []int {
	type iv struct{ a, b int }
	var out []int
	queue := []iv{{lo, hi}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if v.a > v.b {
			continue
		}
		m := (v.a + v.b) / 2
		out = append(out, m)
		queue = append(queue, iv{v.a, m - 1}, iv{m + 1, v.b})
	}
	return out
}

// MeasureSpeculativeOverlap runs the guess search over a synthetic grid of
// gridLen latency-bound probes (each sleeps for latency, then accepts iff
// its guess ≥ boundary): once sequentially, then once per entry of
// parallelisms. It returns the sequential wall clock, the parallel wall
// clocks in order, and whether every parallel search returned a (guess,
// probe-count) trace identical to the sequential one. Latency-bound probes
// make the measurement independent of the host's core count, so it
// isolates the speculative engine's probe overlap from CPU contention;
// experiment E9 records it alongside the CPU-bound N-fold rows.
func MeasureSpeculativeOverlap(ctx context.Context, gridLen int, latency time.Duration, boundary int64, parallelisms ...int) (seq time.Duration, specs []time.Duration, identical bool, err error) {
	grid := make([]int64, gridLen)
	for i := range grid {
		grid[i] = int64(i + 1)
	}
	probe := func(pctx context.Context, v int64) (int64, bool, error) {
		select {
		case <-time.After(latency):
		case <-pctx.Done():
			return 0, false, pctx.Err()
		}
		return v, v >= boundary, nil
	}
	start := time.Now()
	_, guessSeq, triedSeq, err := searchGuesses(ctx, grid, 1, probe)
	seq = time.Since(start)
	if err != nil {
		return seq, nil, false, err
	}
	identical = true
	for _, par := range parallelisms {
		start = time.Now()
		_, guessSpec, triedSpec, err := searchGuesses(ctx, grid, par, probe)
		specs = append(specs, time.Since(start))
		if err != nil {
			return seq, specs, false, err
		}
		identical = identical && guessSeq == guessSpec && triedSeq == triedSpec
	}
	return seq, specs, identical, nil
}

// finishSearch applies the shared no-accepted-guess check.
func finishSearch[T any](grid []int64, best T, bestGuess int64, tried int) (T, int64, int, error) {
	if bestGuess < 0 {
		var zero T
		return zero, 0, tried, fmt.Errorf("ptas: no feasible guess in grid (top %d should be feasible)", grid[len(grid)-1])
	}
	return best, bestGuess, tried, nil
}
