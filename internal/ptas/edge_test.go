package ptas

import (
	"context"
	"testing"

	"ccsched/internal/core"
)

// TestNonPreemptivePTASAllSmallClasses forces the degenerate N-fold where
// no class is large: no sizes, no modules, and only the empty configuration
// plus the z machinery remain.
func TestNonPreemptivePTASAllSmallClasses(t *testing.T) {
	in := &core.Instance{
		P:     []int64{1, 1, 1, 1, 1, 1},
		Class: []int{0, 1, 2, 0, 1, 2},
		M:     2,
		Slots: 2,
	}
	res, err := SolveNonPreemptive(context.Background(), in, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	lb, err := core.LowerBound(in, core.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "all-small", core.RatInt(res.Makespan(in)), lb, 7, 3)
}

// TestSplittablePTASSingleClass covers the single-brick N-fold.
func TestSplittablePTASSingleClass(t *testing.T) {
	in := &core.Instance{P: []int64{40, 25, 35}, Class: []int{0, 0, 0}, M: 4, Slots: 1}
	res, err := SolveSplittable(context.Background(), in, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatal(err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "single-class", res.Makespan(), lb, 2, 1)
}

// TestSplittablePTASOneSlot forces c = 1: no machine ever mixes classes.
func TestSplittablePTASOneSlot(t *testing.T) {
	in := &core.Instance{
		P:     []int64{30, 20, 10, 5},
		Class: []int{0, 1, 2, 3},
		M:     4,
		Slots: 1,
	}
	res, err := SolveSplittable(context.Background(), in, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatal(err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "one-slot", res.Makespan(), lb, 2, 1)
}

// TestSplittablePTASTinyLoadsScale exercises the grid-scaling path on an
// instance whose optimum is far below one.
func TestSplittablePTASTinyLoadsScale(t *testing.T) {
	in := &core.Instance{P: []int64{3, 2}, Class: []int{0, 1}, M: 64, Slots: 1}
	res, err := SolveSplittable(context.Background(), in, Options{Epsilon: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatal(err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "tiny-loads", res.Makespan(), lb, 2, 1)
}

// TestPTASInfeasibleInstance rejects C > c·m for all three schemes.
func TestPTASInfeasibleInstance(t *testing.T) {
	in := &core.Instance{P: []int64{1, 1, 1}, Class: []int{0, 1, 2}, M: 1, Slots: 2}
	if _, err := SolveSplittable(context.Background(), in, Options{Epsilon: 0.5}); err == nil {
		t.Error("splittable: want infeasibility error")
	}
	if _, err := SolveNonPreemptive(context.Background(), in, Options{Epsilon: 0.5}); err == nil {
		t.Error("non-preemptive: want infeasibility error")
	}
	if _, err := SolvePreemptive(context.Background(), in, Options{Epsilon: 0.5}); err == nil {
		t.Error("preemptive: want infeasibility error")
	}
}

// TestPTASBadEpsilon rejects out-of-range accuracies.
func TestPTASBadEpsilon(t *testing.T) {
	in := &core.Instance{P: []int64{5}, Class: []int{0}, M: 1, Slots: 1}
	for _, eps := range []float64{0, -0.5, 2} {
		if _, err := SolveSplittable(context.Background(), in, Options{Epsilon: eps}); err == nil {
			t.Errorf("epsilon %v accepted", eps)
		}
	}
}

// TestScaleFactor pins the scaling arithmetic.
func TestScaleFactor(t *testing.T) {
	if s := scaleFactor(core.RatFrac(1, 100), 10, 16); s < 1600 || s > 3200 {
		t.Errorf("scaleFactor(1/100 -> 16) = %d, want ~2048", s)
	}
	if s := scaleFactor(core.RatInt(100), 10, 16); s != 1 {
		t.Errorf("already large enough: got %d", s)
	}
}
