package ptas

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"
	"sync/atomic"

	"ccsched/internal/faultinject"
	"ccsched/internal/nfold"
	"ccsched/internal/trace"
)

// The feasibility cache. Every makespan-guess probe solves one
// configuration N-fold ILP — by far the dominant cost of a PTAS run — yet
// identical probes recur constantly: an ε-refinement sweep re-visits the
// coarser grids' guesses, repeated Solve calls on the same workload re-walk
// the same grid, and the huge-m and ordinary splittable paths share guesses
// after scaling. The cache memoizes the ILP verdict (and, when feasible,
// the integral N-fold solution) keyed by everything the verdict depends on:
// a digest of the scaled instance, the guess, δ, and the engine budget
// knobs. Schedule construction is re-run on hits — it is linear-ish and
// cheap next to an ILP solve, and keeps cached entries small and immutable.

// Cache memoizes makespan-guess feasibility verdicts across Solve calls. It
// is safe for concurrent use; a single Cache may back any number of
// concurrent solves (each probe takes the lock only to look up and to store,
// never while solving). Entries are bounded two ways — by count and by the
// approximate bytes of the stored N-fold solutions (a feasible n=1000-scale
// entry is ~1MB, so an entry cap alone would not bound memory): when either
// cap is exceeded, arbitrary entries are evicted until both hold, which is
// enough to keep long-running services from growing without bound while
// still serving the recurring-workload case. The zero value is NOT ready to
// use; call NewCache.
type Cache struct {
	mu    sync.Mutex
	m     map[cacheKey]cacheEntry
	max   int
	bytes int64 // approximate bytes of stored solutions
	maxB  int64
	// hits and misses are cumulative counters for diagnostics.
	hits, misses int64
}

// DefaultCacheEntries is the entry cap used by NewCache.
const DefaultCacheEntries = 4096

// DefaultCacheBytes is the approximate byte cap on stored N-fold solutions
// used by NewCache.
const DefaultCacheBytes = 64 << 20

// NewCache returns an empty feasibility cache holding at most
// DefaultCacheEntries verdicts totalling at most ~DefaultCacheBytes of
// stored solutions.
func NewCache() *Cache {
	return &Cache{m: make(map[cacheKey]cacheEntry), max: DefaultCacheEntries, maxB: DefaultCacheBytes}
}

// size estimates an entry's memory footprint: the dominant costs are the
// integral N-fold solution x and the Farkas ray.
func (e cacheEntry) size() int64 {
	var b int64 = 64 // struct + slice headers
	for _, brick := range e.x {
		b += 24 + 8*int64(len(brick))
	}
	b += 8 * int64(len(e.ray))
	return b
}

// cacheKey identifies one guess probe. variant distinguishes the four probe
// shapes (splittable, splittable-huge, preemptive, non-preemptive) because
// they build different N-folds from the same instance and guess. The engine
// budget knobs are part of the key: a verdict reached under a smaller node
// budget is not valid under a larger one.
//
// The digest covers the *derived* probe data — the rounded class loads,
// classifications and grouped sizes the guess N-fold is actually built from
// — rather than the raw instance. Everything the N-fold depends on beyond
// the digest is (g, slots, machine count), all inside the digest, so two
// probes with equal keys build bit-identical N-folds and the deterministic
// engines return bit-identical verdicts and solutions.
// Options.EngineParallelism is deliberately NOT part of the key: the
// intra-engine parallelism is verdict- and solution-preserving by
// construction (deterministic brick-scan merge, in-order-commit
// branch-and-bound — see internal/nfold and internal/ilp), so entries solved
// at any worker count answer probes at any other. The guess T itself is
// deliberately absent: the schemes work in δ²T/c units, making the N-fold a
// function of the rounded data only, so neighboring guesses (and re-solves
// of a mutated session instance whose roundings coincide) share entries.
type cacheKey struct {
	variant    byte
	digest     [sha256.Size]byte
	g          int64
	maxConfigs int
	maxNodes   int
	engine     nfold.Engine
}

// probe-shape tags for cacheKey.variant.
const (
	cacheSplit byte = iota
	cacheSplitHuge
	cacheNonPreemptive
	cachePreemptive
)

// cacheEntry is one memoized verdict. x is the N-fold solution when
// feasible; it is stored as handed out by the engine and must be treated as
// immutable by readers (schedule construction only reads it).
type cacheEntry struct {
	feasible bool
	x        [][]int64
	params   nfold.Params
	engine   nfold.Engine
	costLog2 float64
	// ray is the Farkas certificate of an infeasible verdict when the
	// engine surfaced one (root-LP rejects do; deep branch-and-bound
	// rejects may not). It is what makes the verdict re-verifiable after a
	// restore from disk.
	ray []float64
	// restored marks an entry deserialized from a snapshot. Restored
	// entries are hints, never verdicts: the first lookup that hits one
	// re-verifies it against a freshly built N-fold (Check for feasible,
	// CertifiesInfeasible for infeasible) and either promotes it to a
	// trusted entry or drops it and solves cold. A restored entry can
	// therefore never flip a verdict, whatever the snapshot contained.
	restored bool
}

// lookup returns the memoized verdict for k, if any.
func (c *Cache) lookup(k cacheKey) (cacheEntry, bool) {
	if c == nil {
		return cacheEntry{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.m[k]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return e, ok
}

// store memoizes a verdict, evicting arbitrary entries while either the
// entry cap or the byte cap is exceeded. An entry larger than the whole
// byte cap is not stored at all.
func (c *Cache) store(k cacheKey, e cacheEntry) {
	if c == nil {
		return
	}
	sz := e.size()
	if sz > c.maxB {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[k]; ok {
		c.bytes -= old.size()
		delete(c.m, k)
	}
	for len(c.m) >= c.max || c.bytes+sz > c.maxB {
		evicted := false
		for victim := range c.m {
			c.bytes -= c.m[victim].size()
			delete(c.m, victim)
			evicted = true
			break
		}
		if !evicted {
			break
		}
	}
	c.m[k] = e
	c.bytes += sz
}

// remove drops one entry (a restored entry that failed re-verification).
func (c *Cache) remove(k cacheKey) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if old, ok := c.m[k]; ok {
		c.bytes -= old.size()
		delete(c.m, k)
	}
}

// Stats reports cumulative cache hits and misses.
func (c *Cache) Stats() (hits, misses int64) {
	if c == nil {
		return 0, 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// Len reports the number of memoized verdicts.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// probeDigest incrementally hashes a probe's derived data.
type probeDigest struct {
	h   hash.Hash
	buf [8]byte
}

func newProbeDigest() *probeDigest { return &probeDigest{h: sha256.New()} }

func (d *probeDigest) put(v int64) {
	binary.LittleEndian.PutUint64(d.buf[:], uint64(v))
	d.h.Write(d.buf[:])
}

func (d *probeDigest) putBool(b bool) {
	if b {
		d.put(1)
	} else {
		d.put(0)
	}
}

func (d *probeDigest) sum() [sha256.Size]byte {
	var out [sha256.Size]byte
	d.h.Sum(out[:0])
	return out
}

// splitDigest hashes the derived data of one splittable (or splittable-huge)
// probe: machine count, slot budget, accuracy, and the rounded load and
// classification of every class in brick order. This is exactly what
// splitGuessCtx.buildNFold reads, so equal digests mean bit-identical
// N-folds.
func splitDigest(m int64, slots int, g int64, classes []int, pUnits []int64, small []bool) [sha256.Size]byte {
	d := newProbeDigest()
	d.put(m)
	d.put(int64(slots))
	d.put(g)
	d.put(int64(len(classes)))
	for _, u := range classes {
		d.put(pUnits[u])
		d.putBool(small[u])
	}
	return d.sum()
}

// groupedDigest hashes the derived data of a non-preemptive or preemptive
// probe: machine count, slot budget, accuracy, the distinct rounded job
// sizes, and per class (in brick order) either the rounded small load or the
// per-size job counts. Both schemes' buildNFold reads exactly this (their
// module/configuration enumerations are deterministic functions of it), so
// equal digests mean bit-identical N-folds.
func groupedDigest(m int64, slots int, g int64, sizes []int64, classes []int, small []bool, smallUnits []int64, nUP map[[2]int64]int64) [sha256.Size]byte {
	d := newProbeDigest()
	d.put(m)
	d.put(int64(slots))
	d.put(g)
	d.put(int64(len(sizes)))
	for _, s := range sizes {
		d.put(s)
	}
	d.put(int64(len(classes)))
	for _, u := range classes {
		if small[u] {
			d.put(1)
			d.put(smallUnits[u])
			continue
		}
		d.put(0)
		for _, s := range sizes {
			d.put(nUP[[2]int64{int64(u), s}])
		}
	}
	return d.sum()
}

// probeCacheKey assembles the cache key for one guess probe of a search.
func probeCacheKey(variant byte, digest [sha256.Size]byte, g int64, opts Options) cacheKey {
	no := opts.nfoldOptions(nil)
	return cacheKey{
		variant:    variant,
		digest:     digest,
		g:          g,
		maxConfigs: opts.maxConfigs(),
		maxNodes:   no.MaxNodes,
		engine:     no.Engine,
	}
}

// probeStats aggregates per-probe diagnostics across one guess search.
// Counters are atomic because speculative probes run concurrently; with
// Parallelism > 1 the set of probes that complete (and hence the totals)
// can vary run to run, so these are diagnostics, never solver inputs.
type probeStats struct {
	cacheHits atomic.Int64
	certHits  atomic.Int64
	nodes     atomic.Int64
	pivots    atomic.Int64
	warmHits  atomic.Int64
	// scanWorkers is a running maximum (not a sum): the widest concurrent
	// brick-scan fan-out any probe's augmentation descent reached.
	scanWorkers atomic.Int64
	steals      atomic.Int64
	batched     atomic.Int64
}

// maxScanWorkers raises the scan-worker high-water mark to v if larger.
func (st *probeStats) maxScanWorkers(v int64) {
	for {
		cur := st.scanWorkers.Load()
		if v <= cur || st.scanWorkers.CompareAndSwap(cur, v) {
			return
		}
	}
}

// report fills the aggregate counter fields of a Report.
func (st *probeStats) report(rep *Report) {
	rep.CacheHits = int(st.cacheHits.Load())
	rep.CertHits = int(st.certHits.Load())
	rep.BBNodes = st.nodes.Load()
	rep.BBPivots = st.pivots.Load()
	rep.WarmHits = st.warmHits.Load()
	rep.BrickScanWorkers = int(st.scanWorkers.Load())
	rep.BBSubtreeSteals = st.steals.Load()
	rep.BatchedLPSolves = st.batched.Load()
}

// fallbackReport is the Report shape shared by every approx-fallback exit.
func fallbackReport(g, hi int64, tried int, stats *probeStats) Report {
	rep := Report{InvDelta: g, Guess: hi, Guesses: tried, Engine: "approx-fallback"}
	stats.report(&rep)
	return rep
}

// solveGuessCached runs one guess probe's N-fold through the feasibility
// cache — the shared step of all four probe shapes. A hit returns the
// memoized verdict (counted in stats.cacheHits); a miss builds the N-fold
// and, in a session re-solve (rec non-nil), first tries to refute it with
// the previous round's Farkas certificate — a sparse re-verification that
// can never flip a verdict, only skip the engines (see
// nfold.Problem.CertifiesInfeasible). Otherwise it solves under pctx with
// the search's shared nfold.Template and memoizes the verdict. Errors —
// including cancellation of a losing speculative probe — are never cached.
// The warm-start caches in tmpl, the session root-basis hint and the
// certificate never change a verdict (restores and certificates are
// verdict-only and the augment move cache is content-deterministic), so
// cached entries stay valid across NoWarmStart settings and between session
// and cold solves.
func solveGuessCached(pctx context.Context, opts Options, key cacheKey, t int64, stats *probeStats, tmpl *nfold.Template, rec *sessionRecorder, build func() *nfold.Problem) (cacheEntry, error) {
	// Chaos hook: one injection point per feasibility probe. A delay here
	// pushes a solve past its soft deadline; a panic exercises the search
	// workers' recovery; an error must surface as a clean typed failure.
	if err := faultinject.Check("ptas.probe"); err != nil {
		return cacheEntry{}, err
	}
	sp := opts.Trace.Child("probe")
	var prob *nfold.Problem
	if entry, ok := opts.Cache.lookup(key); ok {
		if !entry.restored {
			stats.cacheHits.Add(1)
			sp.End(trace.A("t", t), trace.A("cache_hit", 1), trace.A("feasible", b2i(entry.feasible)))
			return entry, nil
		}
		// A snapshot-restored entry is a hint, never a verdict: re-verify
		// it against the N-fold built from the live data before trusting
		// it. Feasible entries re-check their stored solution exactly
		// (nfold.Problem.Check); infeasible entries re-verify their Farkas
		// ray, the same sparse pass session certificates use. Either way a
		// restored entry cannot flip a verdict — a failed re-verification
		// drops the entry and the cold solve below runs as if it had never
		// existed.
		prob = build()
		if verified, ok := entry.reverify(prob); ok {
			opts.Cache.store(key, verified)
			stats.cacheHits.Add(1)
			sp.End(trace.A("t", t), trace.A("cache_hit", 1), trace.A("reverified", 1), trace.A("feasible", b2i(verified.feasible)))
			return verified, nil
		}
		opts.Cache.remove(key)
	}
	if prob == nil {
		prob = build()
	}
	if rec.tryCertificate(prob, stats) {
		entry := cacheEntry{
			feasible: false, ray: rec.ray,
			params: prob.Params(), engine: engineCertificate,
			costLog2: prob.TheoreticalCostLog2(),
		}
		opts.Cache.store(key, entry)
		sp.End(trace.A("t", t), trace.A("cert_hit", 1), trace.A("feasible", 0))
		return entry, nil
	}
	no := opts.nfoldOptions(tmpl)
	no.RootBasis = rec.rootHint(t)
	no.Trace = sp
	res, err := nfold.SolveCtx(pctx, prob, no)
	if err != nil {
		sp.End(trace.A("t", t), trace.A("err", 1))
		return cacheEntry{}, err
	}
	rec.note(res)
	stats.nodes.Add(int64(res.Nodes))
	stats.pivots.Add(int64(res.Pivots))
	stats.warmHits.Add(int64(res.WarmHits))
	stats.maxScanWorkers(int64(res.BrickScanWorkers))
	stats.steals.Add(int64(res.SubtreeSteals))
	stats.batched.Add(int64(res.BatchedLPSolves))
	entry := cacheEntry{
		feasible: res.Status == nfold.Feasible, x: res.X,
		params: prob.Params(), engine: res.Engine,
		costLog2: prob.TheoreticalCostLog2(),
		ray:      res.InfeasibleRay,
	}
	opts.Cache.store(key, entry)
	sp.End(
		trace.A("t", t), trace.A("feasible", b2i(entry.feasible)),
		trace.A("nodes", int64(res.Nodes)), trace.A("pivots", int64(res.Pivots)),
		trace.A("warm_hits", int64(res.WarmHits)), trace.A("steals", int64(res.SubtreeSteals)),
		trace.A("batched_lps", int64(res.BatchedLPSolves)),
	)
	return entry, nil
}

// b2i renders a verdict as a span attribute value.
func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// reverify checks a snapshot-restored entry against the freshly built
// N-fold and, on success, returns the trusted entry to memoize in its place
// (params and cost re-derived from the live problem, restored flag cleared).
// A false second return means the entry proves nothing about this problem
// and must be dropped.
func (e cacheEntry) reverify(prob *nfold.Problem) (cacheEntry, bool) {
	out := cacheEntry{
		feasible: e.feasible, x: e.x, ray: e.ray, engine: e.engine,
		params: prob.Params(), costLog2: prob.TheoreticalCostLog2(),
	}
	if e.feasible {
		if prob.Check(e.x) != nil {
			return cacheEntry{}, false
		}
		return out, true
	}
	if e.ray == nil || !prob.CertifiesInfeasible(e.ray) {
		return cacheEntry{}, false
	}
	return out, true
}
