package ptas

import (
	"sync"

	"ccsched/internal/core"
	"ccsched/internal/nfold"
)

// Guess templates. A makespan-guess search probes a handful of grid points
// over the same instance, and between grid points only the guess-dependent
// pieces of the configuration N-fold change: the large/small classification,
// the rounded class loads p'_u (which appear in local right-hand sides,
// bounds, and — for small classes — one coefficient row), and nothing else.
// Historically every probe re-enumerated modules, configurations and (h,b)
// groups and re-allocated every brick's A and B blocks from scratch, which
// both burned time directly and defeated the augmentation engine's
// pointer-keyed move-set cache: N identical large-class bricks got N
// distinct block allocations and N move enumerations (~half of a probe's
// runtime at n=1000).
//
// A template is built once per search and carries everything guess-
// independent: the enumerations, plus shared immutable block arrays that
// instantiate() hands to every brick. Bricks with identical blocks now
// share one allocation — across bricks, and (for the splittable and
// preemptive schemes, whose block values do not depend on the guess) across
// guesses — so the move cache in the embedded nfold.Template enumerates
// each distinct brick shape exactly once per search. All template state is
// immutable after construction except the sync.Map block caches, so the
// speculative parallel search shares one template across workers without
// cloning or locking.

// splitTemplate is the guess-independent part of the splittable scheme's
// construction (Section 4.1): the module/configuration enumeration and the
// shared N-fold blocks.
type splitTemplate struct {
	in      *core.Instance
	g       int64
	limit   int
	loads   []int64
	classes []int
	cStar   int64
	modules []int64
	configs []configK
	hbPairs []hbPair
	hbIndex map[hbKey]int
	// Shared immutable N-fold pieces. largeA is the A block of every
	// large-class brick; small-class bricks differ from it only in the
	// (3)-row z coefficients, which hold the rounded class load, so they are
	// cached per distinct value in smallA. sharedB, zeroRow and smallLRHS
	// are identical for every brick.
	largeA    [][]int64
	sharedB   [][]int64
	zeroRow   []int64
	smallLRHS []int64
	smallA    sync.Map // pUnits int64 -> [][]int64
	nf        *nfold.Template
}

// newSplitTemplate enumerates the guess-independent structures once.
func newSplitTemplate(in *core.Instance, g int64, limit int) (*splitTemplate, error) {
	tm := &splitTemplate{in: in, g: g, limit: limit, nf: nfold.NewTemplate()}
	tm.loads = in.ClassLoads()
	for u, pu := range tm.loads {
		if pu > 0 {
			tm.classes = append(tm.classes, u)
		}
	}
	c := int64(in.Slots)
	tm.cStar = g + 4
	if c < tm.cStar {
		tm.cStar = c
	}
	for ell := g; ell <= g*g+4*g; ell++ {
		tm.modules = append(tm.modules, ell)
	}
	var err error
	tm.configs, err = enumerateConfigs(tm.modules, g*g+4*g, tm.cStar, limit)
	if err != nil {
		return nil, err
	}
	tm.hbIndex = make(map[hbKey]int)
	for ci, cc := range tm.configs {
		k := hbKey{cc.size, cc.slots}
		idx, ok := tm.hbIndex[k]
		if !ok {
			idx = len(tm.hbPairs)
			tm.hbIndex[k] = idx
			tm.hbPairs = append(tm.hbPairs, hbPair{h: cc.size, b: cc.slots})
		}
		tm.hbPairs[idx].configs = append(tm.hbPairs[idx].configs, ci)
	}
	tm.buildSharedBlocks()
	return tm, nil
}

// buildSharedBlocks assembles the guess-independent block arrays: rows (0),
// (1), (2) and the large-class form of (3) for A, and rows (4), (5) for B.
// Every value is independent of the guess T because the scheme works in
// δ²T/c units.
func (tm *splitTemplate) buildSharedBlocks() {
	nM, nK, nHB := len(tm.modules), len(tm.configs), len(tm.hbPairs)
	tWidth := nK + nM + 3*nHB
	xOff, yOff, zOff, s2Off, s3Off := 0, nK, nK+nM, nK+nM+nHB, nK+nM+2*nHB
	r := 1 + nM + 2*nHB
	cUnits := int64(tm.in.Slots)
	tBar := (tm.g*tm.g + 4*tm.g) * cUnits

	a := make([][]int64, r)
	for k := range a {
		a[k] = make([]int64, tWidth)
	}
	// (0) Σ x_K = m
	for ci := range tm.configs {
		a[0][xOff+ci] = 1
	}
	// (1) per module size: Σ K_q x_K − y_q = 0
	for qi := range tm.modules {
		row := a[1+qi]
		for ci, cc := range tm.configs {
			if cc.counts[qi] != 0 {
				row[xOff+ci] = cc.counts[qi]
			}
		}
		row[yOff+qi] = -1
	}
	// (2),(3) per (h,b) pair; the (3)-row z coefficient is 1 for large
	// classes (z is forced to 0 there) and is patched per small class.
	for hi, hb := range tm.hbPairs {
		row2 := a[1+nM+hi]
		row3 := a[1+nM+nHB+hi]
		row2[zOff+hi] = 1
		row2[s2Off+hi] = 1
		row3[s3Off+hi] = 1
		row3[zOff+hi] = 1
		for _, ci := range hb.configs {
			row2[xOff+ci] = hb.b - cUnits
			row3[xOff+ci] = hb.h*cUnits - tBar
		}
	}
	tm.largeA = a

	b := make([][]int64, 2)
	b[0] = make([]int64, tWidth)
	b[1] = make([]int64, tWidth)
	// (4) Σ q·y_q = (1-ξ_u)·p'_u   (q in δ²T/c units = ℓ·c)
	for qi, ell := range tm.modules {
		b[0][yOff+qi] = ell * cUnits
	}
	// (5) Σ z = ξ_u
	for hi := range tm.hbPairs {
		b[1][zOff+hi] = 1
	}
	tm.sharedB = b

	tm.zeroRow = make([]int64, tWidth)
	tm.smallLRHS = []int64{0, 1}
}

// smallABlock returns the A block of a small class with rounded load pu:
// largeA with the (3)-row z coefficients replaced by pu. Unpatched rows are
// aliased, patched rows copied; blocks are cached per distinct pu (values
// recur across classes and guesses), so the move-set cache sees one block
// per distinct load.
func (tm *splitTemplate) smallABlock(pu int64) [][]int64 {
	if v, ok := tm.smallA.Load(pu); ok {
		return v.([][]int64)
	}
	nM, nK, nHB := len(tm.modules), len(tm.configs), len(tm.hbPairs)
	zOff := nK + nM
	a := make([][]int64, len(tm.largeA))
	copy(a, tm.largeA)
	for hi := 0; hi < nHB; hi++ {
		ri := 1 + nM + nHB + hi
		row := append([]int64(nil), tm.largeA[ri]...)
		row[zOff+hi] = pu
		a[ri] = row
	}
	actual, _ := tm.smallA.LoadOrStore(pu, a)
	return actual.([][]int64)
}

// npTemplate is the guess-independent part of the non-preemptive scheme.
// Job grouping, size rounding and therefore the module/configuration
// enumerations — and the block *values* — all depend on the guess, so the
// template only caches the class partition and the cross-probe
// nfold.Template; the per-guess buildNFold still shares its blocks across
// bricks (see nonpreemptive.go), which keeps move enumeration at one pass
// per distinct brick shape per probe. (The nfold move cache accumulates at
// most one dead entry set per probe of one search — bounded by the tiny
// guess grid — before the template is dropped.)
type npTemplate struct {
	in      *core.Instance
	g       int64
	limit   int
	byClass [][]int
	nf      *nfold.Template
}

func newNPTemplate(in *core.Instance, g int64, limit int) *npTemplate {
	return &npTemplate{in: in, g: g, limit: limit, byClass: in.ClassJobs(), nf: nfold.NewTemplate()}
}

// preTemplate is the guess-independent part of the preemptive scheme: the
// layer geometry and the interval-module/configuration enumeration (the
// most expensive part of a preemptive probe's construction) depend only on
// δ and the slot budget, never on the guess. The N-fold block *values* are
// also guess-independent; only the brick width varies with the number of
// distinct rounded job sizes nP, so the shared blocks are cached per nP —
// probes whose size count coincides (the common case between neighboring
// guesses) alias the same arrays across guesses and hit the move cache.
type preTemplate struct {
	in        *core.Instance
	g         int64
	limit     int
	layers    int
	cStar     int64
	tBarUnits int64
	byClass   [][]int
	modules   []interval
	configs   []preConfig
	hbPairs   []hbPair
	hbIndex   map[hbKey]int
	blocks    sync.Map // nP int -> *preBlocks
	smallA    sync.Map // [2]int64{nP, smallUnits} -> [][]int64
	nf        *nfold.Template
}

// preBlocks bundles the shared per-width block arrays of the preemptive
// N-fold. All fields are immutable after construction.
type preBlocks struct {
	largeA    [][]int64
	sharedB   [][]int64
	zeroRow   []int64
	smallLRHS []int64
}

// blocksFor returns (building and caching on first use) the shared blocks
// for a brick width with nP distinct large-job sizes. Rows (0)–(3) of A and
// (4)–(6) of B reference sizes only by index, never by value, so the block
// contents are a pure function of (template, nP).
func (tm *preTemplate) blocksFor(nP int) *preBlocks {
	if v, ok := tm.blocks.Load(nP); ok {
		return v.(*preBlocks)
	}
	nM, nK, nHB, nL := len(tm.modules), len(tm.configs), len(tm.hbPairs), tm.layers
	tWidth := nK + nM + 3*nHB + nP*nL
	xOff, yOff, zOff, s2Off, s3Off, aOff := 0, nK, nK+nM, nK+nM+nHB, nK+nM+2*nHB, nK+nM+3*nHB
	r := 1 + nM + 2*nHB
	s := nP + nL + 1
	cUnits := int64(tm.in.Slots)

	b := &preBlocks{}
	b.largeA = make([][]int64, r)
	for k := range b.largeA {
		b.largeA[k] = make([]int64, tWidth)
	}
	for ci := range tm.configs {
		b.largeA[0][xOff+ci] = 1
	}
	// (1) per module M: Σ_K K_M x_K − y_M = 0.
	for mi := range tm.modules {
		b.largeA[1+mi][yOff+mi] = -1
	}
	for ci, cc := range tm.configs {
		for _, mi := range cc.intervals {
			b.largeA[1+mi][xOff+ci] = 1
		}
	}
	// (2),(3) per (h,b) pair; the (3)-row z coefficient is 1 for large
	// classes and is patched per small class (smallABlock).
	for hi, hb := range tm.hbPairs {
		row2 := b.largeA[1+nM+hi]
		row3 := b.largeA[1+nM+nHB+hi]
		row2[zOff+hi] = 1
		row2[s2Off+hi] = 1
		row3[s3Off+hi] = 1
		row3[zOff+hi] = 1
		for _, ci := range hb.configs {
			row2[xOff+ci] = hb.b - cUnits
			row3[xOff+ci] = hb.h - tm.tBarUnits
		}
	}

	b.sharedB = make([][]int64, s)
	for k := range b.sharedB {
		b.sharedB[k] = make([]int64, tWidth)
	}
	// (4) per size p: Σ_ℓ a_{p,ℓ} = (1-ξ)·w_p·n^u_p.
	for pi := 0; pi < nP; pi++ {
		for l := 0; l < nL; l++ {
			b.sharedB[pi][aOff+pi*nL+l] = 1
		}
	}
	// (5) per layer ℓ: Σ_M M_ℓ y_M − Σ_p a_{p,ℓ} = 0.
	for l := 0; l < nL; l++ {
		row := b.sharedB[nP+l]
		for mi, iv := range tm.modules {
			if iv.lo <= l && l < iv.hi {
				row[yOff+mi] = 1
			}
		}
		for pi := 0; pi < nP; pi++ {
			row[aOff+pi*nL+l] = -1
		}
	}
	// (6) Σ z = ξ.
	for hi := range tm.hbPairs {
		b.sharedB[nP+nL][zOff+hi] = 1
	}
	b.zeroRow = make([]int64, tWidth)
	b.smallLRHS = make([]int64, s)
	b.smallLRHS[nP+nL] = 1
	actual, _ := tm.blocks.LoadOrStore(nP, b)
	return actual.(*preBlocks)
}

// smallABlock returns the A block of a small class with rounded load units:
// the width-nP large block with the (3)-row z coefficients replaced.
// Unpatched rows are aliased, patched rows copied; cached per (nP, units)
// so recurring loads share blocks across classes and guesses.
func (tm *preTemplate) smallABlock(nP int, units int64) [][]int64 {
	ck := [2]int64{int64(nP), units}
	if v, ok := tm.smallA.Load(ck); ok {
		return v.([][]int64)
	}
	bl := tm.blocksFor(nP)
	nM, nK, nHB := len(tm.modules), len(tm.configs), len(tm.hbPairs)
	zOff := nK + nM
	a := make([][]int64, len(bl.largeA))
	copy(a, bl.largeA)
	for hi := 0; hi < nHB; hi++ {
		ri := 1 + nM + nHB + hi
		row := append([]int64(nil), bl.largeA[ri]...)
		row[zOff+hi] = units
		a[ri] = row
	}
	actual, _ := tm.smallA.LoadOrStore(ck, a)
	return actual.([][]int64)
}

func newPreTemplate(in *core.Instance, g int64, limit int) (*preTemplate, error) {
	tm := &preTemplate{in: in, g: g, limit: limit, byClass: in.ClassJobs(), nf: nfold.NewTemplate()}
	c := int64(in.Slots)
	tm.tBarUnits = (g*g + 3*g + 2) * c
	tm.layers = int(g*g + 3*g + 2) // tBarUnits / c
	tm.cStar = int64(tm.layers)
	if c < tm.cStar {
		tm.cStar = c
	}
	for lo := 0; lo < tm.layers; lo++ {
		for hi := lo + 1; hi <= tm.layers; hi++ {
			tm.modules = append(tm.modules, interval{lo, hi})
		}
	}
	var err error
	tm.configs, err = enumerateIntervalConfigs(tm.modules, tm.cStar, limit)
	if err != nil {
		return nil, err
	}
	tm.hbIndex = make(map[hbKey]int)
	for ci, cc := range tm.configs {
		k := hbKey{cc.size, cc.slots}
		idx, ok := tm.hbIndex[k]
		if !ok {
			idx = len(tm.hbPairs)
			tm.hbIndex[k] = idx
			tm.hbPairs = append(tm.hbPairs, hbPair{h: cc.size, b: cc.slots})
		}
		tm.hbPairs[idx].configs = append(tm.hbPairs[idx].configs, ci)
	}
	return tm, nil
}

// instantiate performs the per-guess grouping and rounding, reusing every
// guess-independent structure. The returned context is private to its probe.
func (tm *splitTemplate) instantiate(t int64) (*splitGuessCtx, error) {
	ctx := &splitGuessCtx{
		in: tm.in, g: tm.g, t: t, cStar: tm.cStar,
		loads:   tm.loads,
		modules: tm.modules, configs: tm.configs,
		hbPairs: tm.hbPairs, hbIndex: tm.hbIndex,
		tm: tm,
	}
	c := int64(tm.in.Slots)
	g := tm.g
	ctx.small = make([]bool, len(ctx.loads))
	ctx.pUnits = make([]int64, len(ctx.loads))
	for u, pu := range ctx.loads {
		if pu == 0 {
			continue
		}
		if pu*g > t {
			// Large: round to multiples of δ²T = c units.
			ctx.pUnits[u] = ceilDivBig(pu, g*g, t) * c
		} else {
			ctx.small[u] = true
			// Small: round to multiples of δ²T/c = 1 unit.
			ctx.pUnits[u] = ceilDivBig(pu, g*g*c, t)
		}
	}
	return ctx, nil
}
