package ptas

import (
	"context"
	"fmt"
	"math/big"
	"sync/atomic"
	"testing"

	"ccsched/internal/core"
	"ccsched/internal/generator"
)

// The intra-engine parallelism differential. EngineParallelism parallelizes
// inside one N-fold solve — concurrent brick scans with a deterministic
// merge, speculative branch-and-bound subtree workers behind a sequential
// committer, batched sibling LPs — and every layer is verdict- and
// solution-preserving by construction (see internal/nfold/augment.go and
// internal/ilp/parallel.go). This test pins the end-to-end consequence on
// every generator family: the accepted guess, the probe count, the
// branch-and-bound node total and the schedule's makespan are bit-identical
// at any worker count. Runs use the sequential guess search
// (Parallelism: 1) so the probe set — and hence Report.BBNodes — is
// deterministic, and no cache, so no run can answer another's probes. CI
// runs this under -race, which also makes it the race test for the
// scan/subtree worker machinery on real PTAS workloads.

// engParity is the quadruple that must match bit-identically, plus the
// diagnostics counters used for the vacuousness check.
type engParity struct {
	guess    int64
	guesses  int
	makespan *big.Rat
	nodes    int64

	scanWorkers int
	steals      int64
}

// runEngParity solves one variant and reduces the result to the parity data.
func runEngParity(t *testing.T, variant string, in *core.Instance, opts Options) engParity {
	t.Helper()
	ctx := context.Background()
	var rep Report
	var mk *big.Rat
	switch variant {
	case "splittable":
		r, err := SolveSplittable(ctx, in, opts)
		if err != nil {
			t.Fatalf("splittable: %v", err)
		}
		rep, mk = r.Report, r.Makespan()
	case "nonpreemptive":
		r, err := SolveNonPreemptive(ctx, in, opts)
		if err != nil {
			t.Fatalf("nonpreemptive: %v", err)
		}
		rep, mk = r.Report, new(big.Rat).SetInt64(r.Makespan(in))
	case "preemptive":
		r, err := SolvePreemptive(ctx, in, opts)
		if err != nil {
			t.Fatalf("preemptive: %v", err)
		}
		rep, mk = r.Report, r.Makespan()
	default:
		t.Fatalf("unknown variant %q", variant)
	}
	return engParity{
		guess: rep.Guess, guesses: rep.Guesses, makespan: mk, nodes: rep.BBNodes,
		scanWorkers: rep.BrickScanWorkers, steals: rep.BBSubtreeSteals,
	}
}

// scanWorkersSeen and subtreeStealsSeen prove the differential engaged the
// parallel machinery at all: if no run ever fanned out a brick scan, the
// parity would be vacuous. Subtree steals are scheduling-dependent (a
// single-CPU host may never run a speculative worker before the committing
// walker), so they are reported but not required.
var (
	scanWorkersSeen   atomic.Int64
	subtreeStealsSeen atomic.Int64
)

func TestEngineParallelismParityAllFamilies(t *testing.T) {
	variants := []string{"splittable", "nonpreemptive", "preemptive"}
	for _, fam := range generator.Families() {
		for seed := int64(1); seed <= 5; seed++ {
			in := fam.Gen(generator.Config{
				N: 15, Classes: 3, Machines: 3, Slots: 2, PMax: 80, Seed: seed,
			})
			for _, variant := range variants {
				variant, in := variant, in
				name := fmt.Sprintf("%s/%s/seed=%d", fam.Name, variant, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					// δ = 1/2 makes the exact engine branch (δ = 1 for the
					// preemptive scheme, whose configuration set at 1/2 would
					// dominate the suite); Parallelism 1 keeps the probe set
					// sequential and deterministic; nil Cache keeps every run
					// honest.
					opts := Options{Epsilon: 0.5, MaxNodes: 150, Parallelism: 1}
					if variant == "preemptive" {
						opts.Epsilon = 1.0
					}
					var serial engParity
					for _, ep := range []int{1, 2, 8} {
						o := opts
						o.EngineParallelism = ep
						got := runEngParity(t, variant, in, o)
						if ep == 1 {
							serial = got
							if got.scanWorkers != 0 || got.steals != 0 {
								t.Fatalf("EngineParallelism=1 reported parallel counters: workers=%d steals=%d",
									got.scanWorkers, got.steals)
							}
							continue
						}
						if got.guess != serial.guess {
							t.Fatalf("ep=%d: accepted guess %d, serial %d", ep, got.guess, serial.guess)
						}
						if got.guesses != serial.guesses {
							t.Fatalf("ep=%d: probe count %d, serial %d", ep, got.guesses, serial.guesses)
						}
						if got.makespan.Cmp(serial.makespan) != 0 {
							t.Fatalf("ep=%d: makespan %s, serial %s",
								ep, got.makespan.RatString(), serial.makespan.RatString())
						}
						if got.nodes != serial.nodes {
							t.Fatalf("ep=%d: %d branch-and-bound nodes, serial %d", ep, got.nodes, serial.nodes)
						}
						scanWorkersSeen.Add(int64(got.scanWorkers))
						subtreeStealsSeen.Add(got.steals)
					}
				})
			}
		}
	}
	t.Cleanup(func() {
		if scanWorkersSeen.Load() == 0 {
			t.Errorf("no parallel run ever fanned out a brick scan; the parity test is vacuous")
		}
		t.Logf("scan-worker engagements=%d subtree steals=%d (steals may be 0 on a single-CPU host)",
			scanWorkersSeen.Load(), subtreeStealsSeen.Load())
	})
}
