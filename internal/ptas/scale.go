package ptas

import (
	"math/big"

	"ccsched/internal/core"
)

// The PTAS guess search walks integral makespans, but the splittable and
// preemptive optima are rational and can be far below 1 (e.g. splittable
// instances with exponentially many machines, where OPT ≈ Σp/m). Scaling
// all processing times by a power of two S until the certified lower bound
// reaches 4g² makes the integral grid (1+δ)-fine relative to OPT; schedules
// are scaled back by exact rational division, so feasibility is unaffected.

// scaleFactor returns the power-of-two S ≥ 1 with lb·S ≥ target, capped so
// that pmax·S stays far from int64 overflow.
func scaleFactor(lb *big.Rat, pmax int64, target int64) int64 {
	s := int64(1)
	limit := (int64(1) << 55) / pmax
	goal := new(big.Rat).SetInt64(target)
	for s < limit {
		scaled := new(big.Rat).Mul(lb, new(big.Rat).SetInt64(s))
		if scaled.Cmp(goal) >= 0 {
			break
		}
		s <<= 1
	}
	return s
}

// scaleInstance multiplies all processing times by s.
func scaleInstance(in *core.Instance, s int64) *core.Instance {
	out := in.Clone()
	for j := range out.P {
		out.P[j] *= s
	}
	return out
}

// descaleSplit rescales a split result back to the original instance.
// Compact may share piece values with Schedule (core.FromSplit copies the
// rat.R values, which are immutable), so it is rebuilt from the descaled
// explicit schedule when present.
func descaleSplit(res *SplitResult, s int64) {
	if s == 1 {
		return
	}
	if res.Schedule != nil {
		for i := range res.Schedule.Pieces {
			res.Schedule.Pieces[i].Size = res.Schedule.Pieces[i].Size.DivInt(s)
		}
		res.Compact = core.FromSplit(res.Schedule)
		return
	}
	for gi := range res.Compact.Groups {
		for pi := range res.Compact.Groups[gi].Pieces {
			res.Compact.Groups[gi].Pieces[pi].Size = res.Compact.Groups[gi].Pieces[pi].Size.DivInt(s)
		}
	}
}

// descalePreemptive rescales a preemptive result.
func descalePreemptive(res *PreemptiveResult, s int64) {
	if s == 1 {
		return
	}
	for i := range res.Schedule.Pieces {
		res.Schedule.Pieces[i].Start = res.Schedule.Pieces[i].Start.DivInt(s)
		res.Schedule.Pieces[i].Size = res.Schedule.Pieces[i].Size.DivInt(s)
	}
}
