package ptas

import (
	"context"
	"fmt"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/nfold"
	"ccsched/internal/rat"
	"ccsched/internal/trace"
)

// Theorem 11: splittable PTAS for machine counts exponential in n. The
// paper normalizes optimal solutions (the Figure 3 pair swap plus the
// "at most one non-full exclusive machine per class" swap) so that all but
// O(C²) machines are either idle or completely filled by a single class —
// the trivial configurations. We realize that insight constructively:
//
//  1. peel off, per large class u, full_u machines entirely filled with
//     class u at load exactly T̄ (stored as run-length machine groups whose
//     encoding is polynomial even for astronomical counts),
//  2. cap the residual machine count at a polynomial bound — no
//     well-structured schedule can spread the residual load over more
//     machines, because every module occupies at least δT —
//  3. run the ordinary Theorem 10 N-fold on the residual instance and
//     merge both parts into a compact schedule.
//
// The reserve of (C + 1/δ + 4) machines per class keeps the residual loads
// large so classification (large/small) is unchanged.

func solveSplittableHuge(ctx context.Context, in *core.Instance, g, scale int64, opts Options) (*SplitResult, error) {
	lo, err := lowerBoundInt(in, core.Splittable)
	if err != nil {
		return nil, err
	}
	apx, err := approx.SolveSplittable(in)
	if err != nil {
		return nil, err
	}
	hi := ceilRat(apx.Makespan())
	if hi < lo {
		hi = lo
	}
	grid := guessGrid(lo, hi, g)
	type payload struct {
		sched  *core.CompactSplitSchedule
		report Report
	}
	var stats probeStats
	tried := 0
	tsp := opts.Trace.Child("template_build")
	tm, err := splitTemplateFor(opts.Session, in, g, opts.maxConfigs())
	tsp.End()
	var best payload
	var guess int64
	if err == nil {
		seed, rec := opts.Session.probeSeed(cacheSplitHuge, g, scale)
		ssp := opts.Trace.Child("guess_search")
		opts.Trace = ssp // probes hang their spans off the search span
		probe := func(pctx context.Context, t int64) (payload, bool, error) {
			sched, rep, ok, err := solveHugeGuess(pctx, in, g, t, opts, tm, rec, &stats)
			if err != nil || !ok {
				return payload{}, false, err
			}
			return payload{sched, rep}, true, nil
		}
		if opts.Session != nil {
			best, guess, tried, err = searchGuessesSeeded(ctx, grid, seed, ssp, probe)
		} else {
			best, guess, tried, err = searchGuesses(ctx, grid, opts.Parallelism, probe)
		}
		ssp.End(
			trace.A("guesses", int64(tried)), trace.A("guess", guess),
			trace.A("grid", int64(len(grid))), trace.A("parallelism", int64(opts.Parallelism)),
			trace.A("seeded", b2i(opts.Session != nil)),
		)
		if err == nil {
			opts.Session.noteSearch(cacheSplitHuge, g, guess, scale, rec)
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if recoveredPanic(err) {
			return nil, err
		}
		// Degrade gracefully to the 2-approximation's compact schedule.
		rep := Report{InvDelta: g, Guess: hi, Guesses: tried, Engine: "approx-fallback"}
		stats.report(&rep)
		return &SplitResult{Compact: apx.Compact, Report: rep}, nil
	}
	best.report.Guess = guess
	best.report.Guesses = tried
	stats.report(&best.report)
	// Best-of floor: never worse than the 2-approximation.
	if apx.Makespan().Cmp(best.sched.Makespan()) < 0 {
		best.report.Engine = "approx-min"
		return &SplitResult{Compact: apx.Compact, Report: best.report}, nil
	}
	return &SplitResult{Compact: best.sched, Report: best.report}, nil
}

func solveHugeGuess(pctx context.Context, in *core.Instance, g, t int64, opts Options, tm *splitTemplate, rec *sessionRecorder, stats *probeStats) (*core.CompactSplitSchedule, Report, bool, error) {
	ctx, err := tm.instantiate(t)
	if err != nil {
		return nil, Report{}, false, err
	}
	cUnits := int64(in.Slots)
	// Trivial machines are filled to exactly T (not T̄): they live outside
	// the N-fold, so nothing forces the largest module, and a level of T
	// keeps their contribution to the makespan at the guess itself.
	fullCap := g * g * cUnits        // T in δ²T/c units
	unit := rat.Frac(t, g*g*cUnits)  // δ²T/c as an exact rational
	fullLoad := unit.MulInt(fullCap) // = T

	cc := int64(0)
	for _, pu := range ctx.loads {
		if pu > 0 {
			cc++
		}
	}
	reserve := cc + g + 6
	full := make([]int64, len(ctx.loads))
	var fullTotal int64
	var residUnits int64
	for u := range ctx.loads {
		if ctx.loads[u] == 0 || ctx.small[u] {
			residUnits += ctx.pUnits[u]
			continue
		}
		f := ctx.pUnits[u]/fullCap - reserve
		if f < 0 {
			f = 0
		}
		full[u] = f
		fullTotal += f
		ctx.pUnits[u] -= f * fullCap
		residUnits += ctx.pUnits[u]
	}
	if fullTotal >= in.M {
		return nil, Report{}, false, fmt.Errorf("ptas: trivial machines %d exceed m", fullTotal)
	}
	// Residual machine bound: modules occupy at least δT = g·c units each,
	// so at most residUnits/(g·c) module slots are usable, plus one machine
	// per small class and slack for idle configurations.
	mResid := in.M - fullTotal
	if cap := residUnits/(g*cUnits) + cc + 2; mResid > cap {
		mResid = cap
	}
	// The N-fold (and mResid) is a deterministic function of (in, g, t), so
	// the verdict caches under the huge-path tag like an ordinary probe; the
	// digest covers the peeled rounded loads and the residual machine count
	// the residual N-fold is actually built from.
	key := probeCacheKey(cacheSplitHuge, splitDigest(mResid, in.Slots, g, tm.classes, ctx.pUnits, ctx.small), g, opts)
	entry, err := solveGuessCached(pctx, opts, key, t, stats, tm.nf, rec,
		func() *nfold.Problem { return ctx.buildNFold(mResid) })
	if err != nil {
		return nil, Report{}, false, err
	}
	if !entry.feasible {
		return nil, Report{}, false, nil
	}
	// Construct the residual explicit schedule, with job mass reduced by
	// what the full machines absorb. We fill each class's jobs into the
	// full machines first and pass the remainder through the ordinary
	// construction by using a reduced copy of the instance.
	reduced := in.Clone()
	reduced.M = mResid
	sched := &core.CompactSplitSchedule{}
	byClass := in.ClassJobs()
	// jobOffsets[j] tracks how much of job j the full machines consumed.
	for u, f := range full {
		if f == 0 {
			continue
		}
		// Fill f*T̄ of class u's mass into run-length full machines.
		budget := fullLoad.MulInt(f)
		groups, consumed, err := fillRunLength(in, byClass[u], budget, fullLoad)
		if err != nil {
			return nil, Report{}, false, err
		}
		sched.Groups = append(sched.Groups, groups...)
		for j, amt := range consumed {
			// Reduce the job in the residual instance; fully consumed jobs
			// keep a zero remainder and are dropped below.
			rem, ok := rat.FromInt(in.P[j]).Sub(amt).Int64()
			if !ok {
				return nil, Report{}, false, fmt.Errorf("ptas: non-integral residual for job %d", j)
			}
			reduced.P[j] = rem
		}
	}
	// Drop zero jobs from the residual instance, remembering the mapping.
	var remap []int
	resid := &core.Instance{M: mResid, Slots: in.Slots}
	for j := range reduced.P {
		if reduced.P[j] > 0 {
			remap = append(remap, j)
			resid.P = append(resid.P, reduced.P[j])
			resid.Class = append(resid.Class, reduced.Class[j])
		}
	}
	// The residual construction reuses ctx (its pUnits were reduced), but
	// job indices must be the residual instance's.
	rctx := *ctx
	rctx.in = resid
	rctx.loads = resid.ClassLoads()
	for len(rctx.loads) < len(ctx.loads) {
		rctx.loads = append(rctx.loads, 0)
	}
	explicit, err := rctx.constructSchedule(entry.x)
	if err != nil {
		return nil, Report{}, false, err
	}
	for _, pc := range explicit.Pieces {
		sched.Groups = append(sched.Groups, core.MachineGroup{
			Count:  1,
			Pieces: []core.GroupPiece{{Job: remap[pc.Job], Size: pc.Size}},
		})
	}
	rep := Report{
		InvDelta: g, Guess: t, NFold: entry.params, Engine: entry.engine,
		TheoreticalCostLog2: entry.costLog2,
	}
	return mergeSingletonGroups(sched, explicit, remap, mResid), rep, true, nil
}

// fillRunLength cuts the given jobs' mass (up to budget) into machines of
// exactly machineLoad each, producing run-length groups: interior windows
// covered by a single job become one group of many machines; windows
// spanning a job boundary become explicit single-machine groups. It returns
// the per-job consumed mass.
func fillRunLength(in *core.Instance, jobs []int, budget, machineLoad rat.R) ([]core.MachineGroup, map[int]rat.R, error) {
	var out []core.MachineGroup
	consumed := make(map[int]rat.R)
	open := []core.GroupPiece{}
	var openLoad rat.R
	left := budget
	for _, j := range jobs {
		if left.Sign() == 0 {
			break
		}
		take := rat.FromInt(in.P[j])
		if take.Cmp(left) > 0 {
			take = left
		}
		consumed[j] = take
		left = left.Sub(take)
		remaining := take
		// Fill the open window first.
		if openLoad.Sign() > 0 {
			room := machineLoad.Sub(openLoad)
			d := remaining
			if d.Cmp(room) > 0 {
				d = room
			}
			open = append(open, core.GroupPiece{Job: j, Size: d})
			openLoad = openLoad.Add(d)
			remaining = remaining.Sub(d)
			if openLoad.Cmp(machineLoad) == 0 {
				out = append(out, core.MachineGroup{Count: 1, Pieces: open})
				open, openLoad = nil, rat.R{}
			}
		}
		// Whole windows of this job alone.
		if cnt := remaining.FloorQuo(machineLoad); cnt > 0 {
			out = append(out, core.MachineGroup{
				Count:  cnt,
				Pieces: []core.GroupPiece{{Job: j, Size: machineLoad}},
			})
			remaining = remaining.Sub(machineLoad.MulInt(cnt))
		}
		if remaining.Sign() > 0 {
			open = append(open, core.GroupPiece{Job: j, Size: remaining})
			openLoad = openLoad.Add(remaining)
		}
	}
	if left.Sign() != 0 {
		return nil, nil, fmt.Errorf("ptas: class mass %s short of the full-machine budget", left.RatString())
	}
	if openLoad.Sign() > 0 {
		return nil, nil, fmt.Errorf("ptas: full-machine budget not an exact multiple of the machine load")
	}
	return out, consumed, nil
}

// mergeSingletonGroups collapses the explicit residual pieces back into
// per-machine groups (the naive one-group-per-piece form would duplicate
// machines).
func mergeSingletonGroups(sched *core.CompactSplitSchedule, explicit *core.SplitSchedule, remap []int, mResid int64) *core.CompactSplitSchedule {
	// Remove the piece-wise groups appended by the caller (they are the
	// tail: len(explicit.Pieces) entries) and rebuild them machine-wise.
	n := len(sched.Groups) - len(explicit.Pieces)
	sched.Groups = sched.Groups[:n]
	perMachine := make(map[int64][]core.GroupPiece)
	var order []int64
	for _, pc := range explicit.Pieces {
		if _, ok := perMachine[pc.Machine]; !ok {
			order = append(order, pc.Machine)
		}
		perMachine[pc.Machine] = append(perMachine[pc.Machine], core.GroupPiece{
			Job: remap[pc.Job], Size: pc.Size,
		})
	}
	for _, mi := range order {
		sched.Groups = append(sched.Groups, core.MachineGroup{Count: 1, Pieces: perMachine[mi]})
	}
	return sched
}
