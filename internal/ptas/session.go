package ptas

import (
	"math/big"

	"ccsched/internal/core"
	"ccsched/internal/lp"
	"ccsched/internal/nfold"
)

// Session state. A scheduling session re-solves a slowly mutating instance
// over and over; SessionState carries everything a completed guess search
// learned that the next search can legally reuse:
//
//   - the guess templates (splittable and preemptive) with their embedded
//     nfold move-set caches and shared block arrays — valid as long as the
//     brick shapes are unchanged, i.e. the accuracy g, the slot budget and
//     the configuration limit match; the per-instance pieces (class loads,
//     job partitions) are re-derived by retarget on every reuse;
//   - the previous accepted guess per probe shape, seeding the next search's
//     boundary window (searchGuessesSeeded) before it falls back to the
//     full binary search over the [LB, hi] grid;
//   - the previous boundary reject's Farkas certificate, re-verified against
//     each new reject-candidate N-fold (nfold.Problem.CertifiesInfeasible)
//     so unchanged rejects skip the engines entirely;
//   - the previous search's terminal root basis, passed as a verdict-only
//     warm hint to expected-infeasible probes (nfold.Options.RootBasis).
//
// Every mechanism is verdict-preserving by construction — certificates are
// re-verified from scratch, restores are verdict-only, cache keys are
// derived-data-exact, and the seeded window returns the same bracketed
// boundary the binary search finds — so a session re-solve returns a
// makespan bit-identical to a cold Solve on the mutated instance. The
// end-to-end guarantee is proven by the session differential tests.
//
// A SessionState is NOT safe for concurrent use: it belongs to exactly one
// session, whose re-solves are serialized by the owner. Solves carrying a
// SessionState therefore run the sequential guess search regardless of
// Options.Parallelism (a re-solve probes a handful of guesses; speculation
// has nothing to overlap, and a speculative straggler could otherwise race
// a later retarget).
type SessionState struct {
	split *splitTemplate
	pre   *preTemplate
	seeds map[byte]*sessionSeed
}

// sessionSeed is the per-probe-shape warm state (keyed by the cacheKey
// variant tags).
type sessionSeed struct {
	// guess is the previously accepted makespan guess, in the units of the
	// scale it was found under, valid only for the accuracy g it was found
	// at: a different g means a different rounding grid, where seeding from
	// a foreign boundary could steer a node-capped search to a different
	// (if still certified) outcome — the anytime ladder solves the same
	// session at descending ε, so cross-ε seeds must not leak.
	guess int64
	g     int64
	scale int64
	// ray is the Farkas certificate of the previous boundary reject.
	ray []float64
	// root is the previous search's last captured root-relaxation basis.
	root *lp.Basis
}

// NewSessionState returns empty warm state for one scheduling session.
func NewSessionState() *SessionState {
	return &SessionState{seeds: make(map[byte]*sessionSeed)}
}

// seedFor returns the seed guess (rescaled into the current scale when the
// previous solve ran under a different power-of-two scaling), certificate
// and root hint for one probe shape. A zero guess means "no seed". A seed
// recorded under a different accuracy g contributes only its certificate
// and root basis (both verdict-preserving under any g — the ray is
// re-verified against each candidate, the basis is a verdict-only hint);
// its guess stays out of the search, which falls back to the cold binary
// search over the new grid.
func (st *SessionState) seedFor(tag byte, g, scale int64) (guess int64, ray []float64, root *lp.Basis) {
	if st == nil {
		return 0, nil, nil
	}
	s := st.seeds[tag]
	if s == nil {
		return 0, nil, nil
	}
	if s.g != g {
		return 0, s.ray, s.root
	}
	guess = s.guess
	if s.scale != scale && s.scale > 0 {
		q := new(big.Int).Mul(big.NewInt(s.guess), big.NewInt(scale))
		q.Quo(q, big.NewInt(s.scale))
		guess = q.Int64()
		if guess < 1 {
			guess = 1
		}
	}
	return guess, s.ray, s.root
}

// probeSeed builds one re-solve's seed guess and recorder for a probe
// shape; a nil state returns a zero seed and nil recorder, which select the
// cold search behavior everywhere downstream.
func (st *SessionState) probeSeed(tag byte, g, scale int64) (int64, *sessionRecorder) {
	if st == nil {
		return 0, nil
	}
	guess, ray, root := st.seedFor(tag, g, scale)
	return guess, &sessionRecorder{seedGuess: guess, ray: ray, root: root}
}

// noteSearch records a completed search's accepted guess and the recorder's
// certificate and root basis for the next re-solve. When this search
// produced no fresh certificate or basis (every probe answered from the
// cache), the previous ones are kept as long as the scale still matches.
func (st *SessionState) noteSearch(tag byte, g, guess, scale int64, rec *sessionRecorder) {
	if st == nil {
		return
	}
	s := &sessionSeed{guess: guess, g: g, scale: scale}
	if rec != nil {
		s.ray, s.root = rec.newRay, rec.newRoot
	}
	if prev := st.seeds[tag]; prev != nil && prev.scale == scale {
		if s.ray == nil {
			s.ray = prev.ray
		}
		if s.root == nil {
			s.root = prev.root
		}
	}
	st.seeds[tag] = s
}

// splitTemplateFor returns the carried splittable template retargeted at in
// when the brick shapes are unchanged (same g, slot budget and configuration
// limit), else builds a fresh one and carries it. A nil state builds
// one-shot templates exactly like the cold path.
func splitTemplateFor(st *SessionState, in *core.Instance, g int64, limit int) (*splitTemplate, error) {
	if st != nil && st.split != nil && st.split.g == g && st.split.limit == limit && st.split.in.Slots == in.Slots {
		st.split.retarget(in)
		return st.split, nil
	}
	tm, err := newSplitTemplate(in, g, limit)
	if err == nil && st != nil {
		st.split = tm
	}
	return tm, err
}

// preTemplateFor is splitTemplateFor for the preemptive scheme.
func preTemplateFor(st *SessionState, in *core.Instance, g int64, limit int) (*preTemplate, error) {
	if st != nil && st.pre != nil && st.pre.g == g && st.pre.limit == limit && st.pre.in.Slots == in.Slots {
		st.pre.retarget(in)
		return st.pre, nil
	}
	tm, err := newPreTemplate(in, g, limit)
	if err == nil && st != nil {
		st.pre = tm
	}
	return tm, err
}

// retarget points a carried splittable template at a mutated instance: the
// enumerations and shared blocks depend only on (g, slots, limit) and stay;
// the class loads and the brick order are re-derived. Only safe between
// searches (sessions run sequential searches, so no probe is in flight).
func (tm *splitTemplate) retarget(in *core.Instance) {
	tm.in = in
	tm.loads = in.ClassLoads()
	tm.classes = tm.classes[:0]
	for u, pu := range tm.loads {
		if pu > 0 {
			tm.classes = append(tm.classes, u)
		}
	}
}

// retarget points a carried preemptive template at a mutated instance; the
// layer geometry, enumerations and per-width block caches all stay.
func (tm *preTemplate) retarget(in *core.Instance) {
	tm.in = in
	tm.byClass = in.ClassJobs()
}

// engineCertificate marks a cache entry whose Infeasible verdict came from
// re-verifying a session-carried Farkas certificate instead of an engine
// run. Reject verdicts never surface an engine name in results, so the
// marker is diagnostic only.
const engineCertificate nfold.Engine = "session-certificate"

// sessionRecorder threads one re-solve's warm hints into its probes and
// collects the next round's. It is used only by the sequential seeded
// search, so no locking.
type sessionRecorder struct {
	// seedGuess gates the root hint: only probes strictly below the seed —
	// the expected-infeasible side of the boundary — try the warm restore,
	// where a certified prune skips a whole branch-and-bound run. (On the
	// feasible side a cross-solve restore can only waste its refactor; see
	// the measurement note in nfold.solveBranchBound.)
	seedGuess int64
	ray       []float64
	root      *lp.Basis

	// Collected for the next round.
	newRay  []float64
	newRoot *lp.Basis
}

// tryCertificate re-verifies the carried Farkas certificate against prob.
// On success the certificate stays valid and is carried forward.
func (r *sessionRecorder) tryCertificate(prob *nfold.Problem, stats *probeStats) bool {
	if r == nil || r.ray == nil {
		return false
	}
	if !prob.CertifiesInfeasible(r.ray) {
		return false
	}
	stats.certHits.Add(1)
	if r.newRay == nil {
		r.newRay = r.ray
	}
	return true
}

// rootHint returns the carried root basis for probes below the seed guess.
func (r *sessionRecorder) rootHint(t int64) *lp.Basis {
	if r == nil || r.seedGuess <= 0 || t >= r.seedGuess {
		return nil
	}
	return r.root
}

// note collects a solved probe's certificate and root basis. Later probes
// overwrite earlier ones, so the search ends holding the boundary reject's
// ray (the last reject solved) and the most recent captured basis.
func (r *sessionRecorder) note(res *nfold.Result) {
	if r == nil {
		return
	}
	if res.InfeasibleRay != nil {
		r.newRay = res.InfeasibleRay
	}
	if res.RootBasis != nil {
		r.newRoot = res.RootBasis
	}
}
