package ptas

import (
	"context"
	"fmt"
	"sort"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/nfold"
	"ccsched/internal/trace"
)

// The non-preemptive PTAS (Section 4.2). Jobs cannot be glued per class, so
// the preprocessing groups small jobs into bundles of size in [δT, 2δT)
// (possibly merging a leftover below δT into another job), after which
// every class is large (all jobs ≥ δT) or small (one job < δT). Modules
// become multisets of rounded job sizes; configurations are multisets of
// module sizes; constraint (4) turns into |P| local rows matching the job
// counts n^u_p.
//
// Everything is measured in units of δ²T/c, exactly as in the splittable
// case: T̄ = (1+3δ)(1+2δ)T = (g²+5g+6)·c units for δ = 1/g.

// npJob is a job of the grouped instance I': a bundle of original jobs
// scheduled together on one machine.
type npJob struct {
	class int
	orig  []int // original job indices; all placed on the grouped job's machine
	load  int64 // exact total processing time
	units int64 // rounded size in δ²T/c units (multiples of c for large classes)
}

// npGuessCtx carries the per-guess state for the non-preemptive PTAS.
type npGuessCtx struct {
	in    *core.Instance
	g, t  int64
	cStar int64
	// grouped jobs per class and classification.
	jobs  [][]npJob
	small []bool
	// sizes: distinct rounded sizes (units) of large-class jobs.
	sizes []int64
	nUP   map[[2]int64]int64 // (class, size) -> count
	// modules: multisets over sizes with total ≤ T̄.
	modules    []moduleVec
	modSizes   []int64 // distinct module totals (units)
	configs    []configK
	hbPairs    []hbPair
	hbIndex    map[hbKey]int
	tBarUnits  int64
	smallUnits []int64 // rounded small-class load per class
}

type moduleVec struct {
	counts []int64 // parallel to sizes
	total  int64   // Σ counts·sizes (units)
}

// groupJobs performs the paper's grouping for one class: bundle jobs < δT
// into [δT, 2δT) packets; a leftover below δT merges into another job if
// one exists, else the class becomes small.
func groupJobs(in *core.Instance, jobs []int, g, t int64) ([]npJob, bool) {
	var big_, small []int
	for _, j := range jobs {
		if in.P[j]*g > t {
			big_ = append(big_, j)
		} else {
			small = append(small, j)
		}
	}
	var packets []npJob
	cur := npJob{}
	for _, j := range small {
		cur.orig = append(cur.orig, j)
		cur.load += in.P[j]
		if cur.load*g > t { // reached δT
			packets = append(packets, cur)
			cur = npJob{}
		}
	}
	out := make([]npJob, 0, len(big_)+len(packets)+1)
	for _, j := range big_ {
		out = append(out, npJob{orig: []int{j}, load: in.P[j]})
	}
	out = append(out, packets...)
	if len(cur.orig) > 0 {
		if len(out) > 0 {
			// Merge the leftover into an existing job.
			out[0].orig = append(out[0].orig, cur.orig...)
			out[0].load += cur.load
		} else {
			// The whole class is below δT: a small class.
			return []npJob{cur}, true
		}
	}
	return out, false
}

func newNPGuessCtx(in *core.Instance, g, t int64, limit int) (*npGuessCtx, error) {
	return newNPTemplate(in, g, limit).instantiate(t)
}

// instantiate performs the per-guess grouping, rounding and enumeration
// (all guess-dependent for this scheme; see npTemplate).
func (tm *npTemplate) instantiate(t int64) (*npGuessCtx, error) {
	in, g, limit := tm.in, tm.g, tm.limit
	ctx := &npGuessCtx{in: in, g: g, t: t}
	c := int64(in.Slots)
	ctx.tBarUnits = (g*g + 5*g + 6) * c
	ctx.cStar = (ctx.tBarUnits + g*c - 1) / (g * c) // ⌈T̄/δT⌉
	if c < ctx.cStar {
		ctx.cStar = c
	}
	byClass := tm.byClass
	ctx.jobs = make([][]npJob, len(byClass))
	ctx.small = make([]bool, len(byClass))
	ctx.smallUnits = make([]int64, len(byClass))
	ctx.nUP = make(map[[2]int64]int64)
	sizeSet := make(map[int64]bool)
	for u, js := range byClass {
		if len(js) == 0 {
			continue
		}
		grouped, isSmall := groupJobs(in, js, g, t)
		ctx.small[u] = isSmall
		if isSmall {
			// Round to δ²T/c units.
			ctx.smallUnits[u] = ceilDivBig(grouped[0].load, g*g*c, t)
			grouped[0].units = ctx.smallUnits[u]
			grouped[0].class = u
			ctx.jobs[u] = grouped
			continue
		}
		for k := range grouped {
			grouped[k].class = u
			grouped[k].units = ceilDivBig(grouped[k].load, g*g, t) * c
			sizeSet[grouped[k].units] = true
			ctx.nUP[[2]int64{int64(u), grouped[k].units}]++
		}
		ctx.jobs[u] = grouped
	}
	for s := range sizeSet {
		ctx.sizes = append(ctx.sizes, s)
	}
	sort.Slice(ctx.sizes, func(a, b int) bool { return ctx.sizes[a] < ctx.sizes[b] })
	// Enumerate modules: multisets of sizes with total ≤ T̄.
	var err error
	modConfigs, err := enumerateConfigs(ctx.sizes, ctx.tBarUnits, int64(1)<<40, limit)
	if err != nil {
		return nil, err
	}
	modSizeSet := make(map[int64]bool)
	for _, mc := range modConfigs {
		if mc.slots == 0 {
			continue // the empty module is not a module
		}
		ctx.modules = append(ctx.modules, moduleVec{counts: mc.counts, total: mc.size})
		modSizeSet[mc.size] = true
	}
	for s := range modSizeSet {
		ctx.modSizes = append(ctx.modSizes, s)
	}
	sort.Slice(ctx.modSizes, func(a, b int) bool { return ctx.modSizes[a] < ctx.modSizes[b] })
	ctx.configs, err = enumerateConfigs(ctx.modSizes, ctx.tBarUnits, ctx.cStar, limit)
	if err != nil {
		return nil, err
	}
	ctx.hbIndex = make(map[hbKey]int)
	for ci, cc := range ctx.configs {
		k := hbKey{cc.size, cc.slots}
		idx, ok := ctx.hbIndex[k]
		if !ok {
			idx = len(ctx.hbPairs)
			ctx.hbIndex[k] = idx
			ctx.hbPairs = append(ctx.hbPairs, hbPair{h: cc.size, b: cc.slots})
		}
		ctx.hbPairs[idx].configs = append(ctx.hbPairs[idx].configs, ci)
	}
	return ctx, nil
}

// classList returns the nonempty classes in brick order.
func (ctx *npGuessCtx) classList() []int {
	var out []int
	for u := range ctx.jobs {
		if len(ctx.jobs[u]) > 0 {
			out = append(out, u)
		}
	}
	return out
}

// buildNFold encodes the non-preemptive constraints (0)–(5). The A and B
// blocks depend on the brick's class only through the (3)-row z coefficient
// of small classes, so one large-class A block, per-rounded-load small
// blocks, and a single B block are shared across all bricks — keeping the
// augmentation engine's pointer-keyed move cache to one enumeration per
// distinct shape.
func (ctx *npGuessCtx) buildNFold(m int64) *nfold.Problem {
	nM, nK, nHB, nP := len(ctx.modules), len(ctx.configs), len(ctx.hbPairs), len(ctx.sizes)
	tWidth := nK + nM + 3*nHB
	xOff, yOff, zOff, s2Off, s3Off := 0, nK, nK+nM, nK+nM+nHB, nK+nM+2*nHB
	r := 1 + len(ctx.modSizes) + 2*nHB
	s := nP + 1
	cUnits := int64(ctx.in.Slots)
	classes := ctx.classList()
	p := &nfold.Problem{N: len(classes), R: r, S: s, T: tWidth}

	largeA := make([][]int64, r)
	for k := range largeA {
		largeA[k] = make([]int64, tWidth)
	}
	for ci := range ctx.configs {
		largeA[0][xOff+ci] = 1
	}
	// (1) per module size q: Σ K_q x − Σ_{Λ(M)=q} y_M = 0.
	for qi, q := range ctx.modSizes {
		row := largeA[1+qi]
		for ci, cc := range ctx.configs {
			if cc.counts[qi] != 0 {
				row[xOff+ci] = cc.counts[qi]
			}
		}
		for mi, mv := range ctx.modules {
			if mv.total == q {
				row[yOff+mi] = -1
			}
		}
	}
	// (2),(3) per (h,b) pair; the (3)-row z coefficient is 1 for large
	// classes and is patched per small class below.
	for hi, hb := range ctx.hbPairs {
		row2 := largeA[1+len(ctx.modSizes)+hi]
		row3 := largeA[1+len(ctx.modSizes)+nHB+hi]
		row2[zOff+hi] = 1
		row2[s2Off+hi] = 1
		row3[s3Off+hi] = 1
		row3[zOff+hi] = 1
		for _, ci := range hb.configs {
			row2[xOff+ci] = hb.b - cUnits
			row3[xOff+ci] = hb.h - ctx.tBarUnits
		}
	}
	smallAs := make(map[int64][][]int64)
	smallABlock := func(units int64) [][]int64 {
		if a, ok := smallAs[units]; ok {
			return a
		}
		a := make([][]int64, r)
		copy(a, largeA)
		for hi := 0; hi < nHB; hi++ {
			ri := 1 + len(ctx.modSizes) + nHB + hi
			row := append([]int64(nil), largeA[ri]...)
			row[zOff+hi] = units
			a[ri] = row
		}
		smallAs[units] = a
		return a
	}

	sharedB := make([][]int64, s)
	for k := range sharedB {
		sharedB[k] = make([]int64, tWidth)
	}
	// (4) per size p: Σ_M M_p y_M = (1-ξ_u) n^u_p.
	for pi := range ctx.sizes {
		for mi, mv := range ctx.modules {
			if mv.counts[pi] != 0 {
				sharedB[pi][yOff+mi] = mv.counts[pi]
			}
		}
	}
	// (5) Σ z = ξ_u.
	for hi := range ctx.hbPairs {
		sharedB[nP][zOff+hi] = 1
	}
	zeroRow := make([]int64, tWidth)
	smallLRHS := make([]int64, s)
	smallLRHS[nP] = 1

	for _, u := range classes {
		if ctx.small[u] {
			p.A = append(p.A, smallABlock(ctx.smallUnits[u]))
			p.LocalRHS = append(p.LocalRHS, smallLRHS)
		} else {
			p.A = append(p.A, largeA)
			lrhs := make([]int64, s)
			for pi, sz := range ctx.sizes {
				lrhs[pi] = ctx.nUP[[2]int64{int64(u), sz}]
			}
			p.LocalRHS = append(p.LocalRHS, lrhs)
		}
		p.B = append(p.B, sharedB)

		lower := zeroRow
		upper := make([]int64, tWidth)
		for ci := range ctx.configs {
			upper[xOff+ci] = m
		}
		if !ctx.small[u] {
			var totJobs int64
			for pi := range ctx.sizes {
				totJobs += ctx.nUP[[2]int64{int64(u), ctx.sizes[pi]}]
			}
			for mi := range ctx.modules {
				upper[yOff+mi] = totJobs
			}
		}
		for hi := range ctx.hbPairs {
			if ctx.small[u] {
				upper[zOff+hi] = 1
			}
			upper[s2Off+hi] = cUnits * m
			upper[s3Off+hi] = ctx.tBarUnits * m
		}
		p.Lower = append(p.Lower, lower)
		p.Upper = append(p.Upper, upper)
		p.Obj = append(p.Obj, zeroRow)
	}
	p.GlobalRHS = make([]int64, r)
	p.GlobalRHS[0] = m
	return p
}

// NonPreemptiveResult is the non-preemptive PTAS output.
type NonPreemptiveResult struct {
	Schedule *core.NonPreemptiveSchedule
	Report   Report
}

// Makespan returns the schedule makespan.
func (r *NonPreemptiveResult) Makespan(in *core.Instance) int64 { return r.Schedule.Makespan(in) }

// SolveNonPreemptive runs the non-preemptive PTAS (Theorem 14). The context
// cancels the makespan-guess search — including in-flight N-fold solves —
// so ctx.Err() surfaces within one augmentation iteration or
// branch-and-bound node.
func SolveNonPreemptive(ctx context.Context, in *core.Instance, opts Options) (*NonPreemptiveResult, error) {
	g, err := opts.delta()
	if err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	// m ≥ n: one job per machine is optimal (p_max).
	if in.M >= int64(in.N()) {
		s := &core.NonPreemptiveSchedule{Assign: make([]int64, in.N())}
		for j := range s.Assign {
			s.Assign[j] = int64(j)
		}
		return &NonPreemptiveResult{Schedule: s, Report: Report{InvDelta: g, Guess: in.PMax()}}, nil
	}
	lo, err := lowerBoundInt(in, core.NonPreemptive)
	if err != nil {
		return nil, err
	}
	apx, err := approx.SolveNonPreemptive(in)
	if err != nil {
		return nil, err
	}
	hi := apx.Makespan(in)
	if hi < lo {
		hi = lo
	}
	grid := guessGrid(lo, hi, g)
	type payload struct {
		sched  *core.NonPreemptiveSchedule
		report Report
	}
	var stats probeStats
	// The non-preemptive template is guess-dependent almost entirely (see
	// npTemplate), so sessions rebuild it per re-solve — carrying it would
	// only grow the move cache without reuse — and warm up through the seed,
	// the certificate and the derived-digest cache instead.
	tsp := opts.Trace.Child("template_build")
	tm := newNPTemplate(in, g, opts.maxConfigs())
	tsp.End()
	seed, rec := opts.Session.probeSeed(cacheNonPreemptive, g, 1)
	ssp := opts.Trace.Child("guess_search")
	opts.Trace = ssp // probes hang their spans off the search span
	probe := func(pctx context.Context, t int64) (payload, bool, error) {
		gctx, err := tm.instantiate(t)
		if err != nil {
			return payload{}, false, err
		}
		key := probeCacheKey(cacheNonPreemptive,
			groupedDigest(in.M, in.Slots, g, gctx.sizes, gctx.classList(), gctx.small, gctx.smallUnits, gctx.nUP), g, opts)
		entry, err := solveGuessCached(pctx, opts, key, t, &stats, tm.nf, rec,
			func() *nfold.Problem { return gctx.buildNFold(in.M) })
		if err != nil {
			return payload{}, false, err
		}
		if !entry.feasible {
			return payload{}, false, nil
		}
		sched, err := gctx.constructSchedule(entry.x)
		if err != nil {
			return payload{}, false, err
		}
		return payload{sched, Report{
			InvDelta: g, Guess: t, NFold: entry.params, Engine: entry.engine,
			TheoreticalCostLog2: entry.costLog2,
		}}, true, nil
	}
	var best payload
	var guess int64
	var tried int
	if opts.Session != nil {
		best, guess, tried, err = searchGuessesSeeded(ctx, grid, seed, ssp, probe)
	} else {
		best, guess, tried, err = searchGuesses(ctx, grid, opts.Parallelism, probe)
	}
	ssp.End(
		trace.A("guesses", int64(tried)), trace.A("guess", guess),
		trace.A("grid", int64(len(grid))), trace.A("parallelism", int64(opts.Parallelism)),
		trace.A("seeded", b2i(opts.Session != nil)),
	)
	if err == nil {
		opts.Session.noteSearch(cacheNonPreemptive, g, guess, 1, rec)
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if recoveredPanic(err) {
			return nil, err
		}
		return &NonPreemptiveResult{
			Schedule: apx.Schedule,
			Report:   fallbackReport(g, hi, tried, &stats),
		}, nil
	}
	best.report.Guess = guess
	best.report.Guesses = tried
	stats.report(&best.report)
	// Return the better of the PTAS construction and the 7/3 schedule;
	// both are feasible and the scheme's constants are large for coarse δ.
	if apx.Makespan(in) < best.sched.Makespan(in) {
		best.report.Engine = "approx-min"
		return &NonPreemptiveResult{Schedule: apx.Schedule, Report: best.report}, nil
	}
	return &NonPreemptiveResult{Schedule: best.sched, Report: best.report}, nil
}

// constructSchedule dissolves configurations into modules into jobs
// (Figure 4) and places small classes by round robin.
func (ctx *npGuessCtx) constructSchedule(x [][]int64) (*core.NonPreemptiveSchedule, error) {
	in := ctx.in
	nM, nK, nHB := len(ctx.modules), len(ctx.configs), len(ctx.hbPairs)
	xOff, yOff, zOff := 0, nK, nK+nM
	classes := ctx.classList()
	xc := make([]int64, nK)
	for bi := range classes {
		for ci := 0; ci < nK; ci++ {
			xc[ci] += x[bi][xOff+ci]
		}
	}
	type machine struct {
		config    int
		slotSizes []int64 // module-size units per slot
	}
	var machines []machine
	for ci, cnt := range xc {
		for k := int64(0); k < cnt; k++ {
			m := machine{config: ci}
			for qi, q := range ctx.configs[ci].counts {
				for a := int64(0); a < q; a++ {
					m.slotSizes = append(m.slotSizes, ctx.modSizes[qi])
				}
			}
			machines = append(machines, m)
		}
	}
	if int64(len(machines)) != in.M {
		return nil, fmt.Errorf("ptas: configuration counts cover %d machines, want %d", len(machines), in.M)
	}
	// Slot instances per module size.
	slotsBySize := make(map[int64][]int) // size -> machine indices (one per slot)
	for mi := range machines {
		for _, s := range machines[mi].slotSizes {
			slotsBySize[s] = append(slotsBySize[s], mi)
		}
	}
	cursor := make(map[int64]int)
	// Per (class, size) queues of grouped jobs.
	queues := make(map[[2]int64][]npJob)
	for _, u := range classes {
		if ctx.small[u] {
			continue
		}
		for _, gj := range ctx.jobs[u] {
			key := [2]int64{int64(u), gj.units}
			queues[key] = append(queues[key], gj)
		}
	}
	sched := &core.NonPreemptiveSchedule{Assign: make([]int64, in.N())}
	for j := range sched.Assign {
		sched.Assign[j] = -1
	}
	for bi, u := range classes {
		if ctx.small[u] {
			continue
		}
		for mi2, mv := range ctx.modules {
			count := x[bi][yOff+mi2]
			for k := int64(0); k < count; k++ {
				lst := slotsBySize[mv.total]
				if cursor[mv.total] >= len(lst) {
					return nil, fmt.Errorf("ptas: module demand exceeds slots of size %d", mv.total)
				}
				machineIdx := lst[cursor[mv.total]]
				cursor[mv.total]++
				// Dissolve the module: M_p jobs of each size p.
				for pi, cnt := range mv.counts {
					key := [2]int64{int64(u), ctx.sizes[pi]}
					for a := int64(0); a < cnt; a++ {
						q := queues[key]
						if len(q) == 0 {
							return nil, fmt.Errorf("ptas: class %d ran out of size-%d jobs", u, ctx.sizes[pi])
						}
						gj := q[0]
						queues[key] = q[1:]
						for _, oj := range gj.orig {
							sched.Assign[oj] = int64(machineIdx)
						}
					}
				}
			}
		}
	}
	// Small classes: round robin within (h,b) machine groups.
	groupMachines := make([][]int, nHB)
	for mi := range machines {
		cc := ctx.configs[machines[mi].config]
		hi := ctx.hbIndex[hbKey{cc.size, cc.slots}]
		groupMachines[hi] = append(groupMachines[hi], mi)
	}
	type smallAssign struct{ u, hb int }
	var smalls []smallAssign
	loads := in.ClassLoads()
	for bi, u := range classes {
		if !ctx.small[u] {
			continue
		}
		chosen := -1
		for hi := 0; hi < nHB; hi++ {
			if x[bi][zOff+hi] == 1 {
				chosen = hi
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("ptas: small class %d has no (h,b) assignment", u)
		}
		smalls = append(smalls, smallAssign{u, chosen})
	}
	sort.SliceStable(smalls, func(a, b int) bool { return loads[smalls[a].u] > loads[smalls[b].u] })
	next := make([]int, nHB)
	byClass := in.ClassJobs()
	for _, sa := range smalls {
		ms := groupMachines[sa.hb]
		if len(ms) == 0 {
			return nil, fmt.Errorf("ptas: small class %d assigned to empty machine group", sa.u)
		}
		mi := ms[next[sa.hb]%len(ms)]
		next[sa.hb]++
		for _, j := range byClass[sa.u] {
			sched.Assign[j] = int64(mi)
		}
	}
	for j, a := range sched.Assign {
		if a < 0 {
			return nil, fmt.Errorf("ptas: job %d left unassigned", j)
		}
	}
	return sched, nil
}
