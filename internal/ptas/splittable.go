package ptas

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/nfold"
	"ccsched/internal/rat"
	"ccsched/internal/trace"
)

// The splittable PTAS (Section 4.1). Working in units of δ²T/c makes every
// quantity integral regardless of T's divisibility: with δ = 1/g,
//
//	T        = g²·c units,
//	T̄ = (1+4δ)T = (g²+4g)·c units,
//	module sizes = ℓ·c units for ℓ ∈ {g, …, g²+4g},
//	large class loads round up to multiples of c (δ²T),
//	small class loads round up to multiples of 1 (δ²T/c).
//
// Brick u of the N-fold holds x^u_K (configuration counts), y^u_q (module
// multiplicities) and z^u_{h,b} (small-class placement) plus two slack
// columns per (h,b) pair, exactly constraints (0)–(5) of the paper.

// splitGuessCtx carries everything derived from one makespan guess. The
// enumeration fields alias the search's shared splitTemplate; only the
// classification and rounded loads are per-guess.
type splitGuessCtx struct {
	in    *core.Instance
	g     int64 // 1/δ
	t     int64 // the guess T
	cStar int64
	// loads per class and large/small classification (ξ_u = 1 iff small).
	loads   []int64
	small   []bool
	pUnits  []int64 // rounded class load in units of δ²T/c
	modules []int64 // module sizes in ℓ-units (multiples of δT/c... ℓ itself)
	configs []configK
	hbPairs []hbPair
	hbIndex map[hbKey]int
	tm      *splitTemplate
}

// configK is a configuration: a multiset of module sizes (ℓ-units).
type configK struct {
	counts []int64 // parallel to modules: multiplicity per module size
	size   int64   // Σ ℓ·count (ℓ-units)
	slots  int64   // Σ count
}

type hbKey struct{ h, b int64 }

type hbPair struct {
	h, b    int64
	configs []int // indices into configs with Λ(K)=h, ‖K‖₁=b
}

// enumerateConfigs lists all multisets of the module sizes with total size
// at most maxSize and at most maxSlots elements (including the empty
// configuration, which idle machines use).
func enumerateConfigs(modules []int64, maxSize, maxSlots int64, limit int) ([]configK, error) {
	var out []configK
	counts := make([]int64, len(modules))
	var rec func(idx int, size, slots int64) error
	rec = func(idx int, size, slots int64) error {
		if len(out) > limit {
			return fmt.Errorf("ptas: configuration count exceeds limit %d; increase epsilon or MaxConfigs", limit)
		}
		if idx == len(modules) {
			cc := configK{counts: append([]int64(nil), counts...), size: size, slots: slots}
			out = append(out, cc)
			return nil
		}
		for k := int64(0); ; k++ {
			ns, nl := size+k*modules[idx], slots+k
			if ns > maxSize || nl > maxSlots {
				break
			}
			counts[idx] = k
			if err := rec(idx+1, ns, nl); err != nil {
				return err
			}
		}
		counts[idx] = 0
		return nil
	}
	if err := rec(0, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// newSplitGuessCtx performs grouping and rounding for one guess on a fresh
// one-shot template; search loops build one template and instantiate it per
// guess instead.
func newSplitGuessCtx(in *core.Instance, g, t int64, limit int) (*splitGuessCtx, error) {
	tm, err := newSplitTemplate(in, g, limit)
	if err != nil {
		return nil, err
	}
	return tm.instantiate(t)
}

// ceilDivBig returns ⌈a·b/d⌉ using big arithmetic to dodge overflow.
func ceilDivBig(a, b, d int64) int64 {
	num := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
	den := big.NewInt(d)
	q, r := new(big.Int).QuoRem(num, den, new(big.Int))
	if r.Sign() != 0 {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}

// buildNFold encodes constraints (0)–(5) for the guess. Blocks come from
// the shared template: every large-class brick aliases one A block, small
// classes alias per-rounded-load patched blocks, and all bricks share one B
// block — so identical bricks are pointer-identical and the augmentation
// engine's move cache enumerates each distinct shape once per search.
func (ctx *splitGuessCtx) buildNFold(m int64) *nfold.Problem {
	tm := ctx.tm
	nM, nK, nHB := len(ctx.modules), len(ctx.configs), len(ctx.hbPairs)
	// Brick layout: [x_K | y_q | z_hb | s2_hb | s3_hb].
	tWidth := nK + nM + 3*nHB
	xOff, yOff, zOff, s2Off, s3Off := 0, nK, nK+nM, nK+nM+nHB, nK+nM+2*nHB
	r := 1 + nM + 2*nHB
	cUnits := int64(ctx.in.Slots)
	tBar := (ctx.g*ctx.g + 4*ctx.g) * cUnits // T̄ in δ²T/c units

	classes := tm.classes
	n := len(classes)
	p := &nfold.Problem{N: n, R: r, S: 2, T: tWidth}
	for _, u := range classes {
		if ctx.small[u] {
			p.A = append(p.A, tm.smallABlock(ctx.pUnits[u]))
			p.LocalRHS = append(p.LocalRHS, tm.smallLRHS)
		} else {
			p.A = append(p.A, tm.largeA)
			p.LocalRHS = append(p.LocalRHS, []int64{ctx.pUnits[u], 0})
		}
		p.B = append(p.B, tm.sharedB)

		upper := make([]int64, tWidth)
		for ci := range ctx.configs {
			upper[xOff+ci] = m
		}
		for qi := range ctx.modules {
			if !ctx.small[u] {
				// Enough modules to cover the class alone.
				upper[yOff+qi] = ctx.pUnits[u]/(ctx.g*cUnits) + 1
			}
		}
		// Slack bounds must cover (c−b)·Σx and (T̄−h·c)·Σx with x up to m.
		// The huge-m path always passes a polynomially capped m.
		for hi := range ctx.hbPairs {
			if ctx.small[u] {
				upper[zOff+hi] = 1
			}
			upper[s2Off+hi] = cUnits * m
			upper[s3Off+hi] = tBar * m
		}
		p.Lower = append(p.Lower, tm.zeroRow)
		p.Upper = append(p.Upper, upper)
		p.Obj = append(p.Obj, tm.zeroRow)
	}
	p.GlobalRHS = make([]int64, r)
	p.GlobalRHS[0] = m
	return p
}

// SplitResult is the splittable PTAS output.
type SplitResult struct {
	Schedule *core.SplitSchedule
	Compact  *core.CompactSplitSchedule
	Report   Report
}

// Makespan returns the schedule makespan.
func (r *SplitResult) Makespan() *big.Rat { return r.Compact.Makespan() }

// DefaultHugeMThreshold is the default machine count above which the
// splittable PTAS switches to the Theorem 11 treatment
// (trivial-configuration preprocessing + compact output). Override per call
// via Options.HugeMThreshold; like the approx options, this is a per-call
// value rather than a mutable package global so concurrent solves do not
// race.
const DefaultHugeMThreshold int64 = 1 << 16

// SolveSplittable runs the splittable PTAS (Theorem 10, and Theorem 11's
// extension for machine counts beyond the huge-m threshold). The context
// cancels the makespan-guess search — including in-flight N-fold solves,
// which poll it at iteration boundaries — making ctx.Err() surface within
// one augmentation iteration or branch-and-bound node.
func SolveSplittable(ctx context.Context, in *core.Instance, opts Options) (*SplitResult, error) {
	g, err := opts.delta()
	if err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	// The splittable optimum is rational and may be far below 1 (huge m);
	// scale so the integral guess grid is (1+δ)-fine relative to OPT.
	lbRat, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		return nil, err
	}
	if scale := scaleFactor(lbRat, in.PMax(), 4*g*g); scale > 1 {
		res, err := solveSplittableAnyM(ctx, scaleInstance(in, scale), g, scale, opts)
		if err != nil {
			return nil, err
		}
		descaleSplit(res, scale)
		return res, nil
	}
	return solveSplittableAnyM(ctx, in, g, 1, opts)
}

func solveSplittableAnyM(ctx context.Context, in *core.Instance, g, scale int64, opts Options) (*SplitResult, error) {
	if in.M > opts.hugeMThreshold() {
		return solveSplittableHuge(ctx, in, g, scale, opts)
	}
	lo, err := lowerBoundInt(in, core.Splittable)
	if err != nil {
		return nil, err
	}
	apx, err := approx.SolveSplittable(in)
	if err != nil {
		return nil, err
	}
	hi := ceilRat(apx.Makespan())
	if hi < lo {
		hi = lo
	}
	grid := guessGrid(lo, hi, g)
	type payload struct {
		sched  *core.SplitSchedule
		report Report
	}
	var stats probeStats
	tried := 0
	tsp := opts.Trace.Child("template_build")
	tm, err := splitTemplateFor(opts.Session, in, g, opts.maxConfigs())
	tsp.End()
	if err == nil {
		seed, rec := opts.Session.probeSeed(cacheSplit, g, scale)
		ssp := opts.Trace.Child("guess_search")
		opts.Trace = ssp // probes hang their spans off the search span
		probe := func(pctx context.Context, t int64) (payload, bool, error) {
			gctx, err := tm.instantiate(t)
			if err != nil {
				return payload{}, false, err
			}
			key := probeCacheKey(cacheSplit, splitDigest(in.M, in.Slots, g, tm.classes, gctx.pUnits, gctx.small), g, opts)
			entry, err := solveGuessCached(pctx, opts, key, t, &stats, tm.nf, rec,
				func() *nfold.Problem { return gctx.buildNFold(in.M) })
			if err != nil {
				return payload{}, false, err
			}
			if !entry.feasible {
				return payload{}, false, nil
			}
			sched, err := gctx.constructSchedule(entry.x)
			if err != nil {
				return payload{}, false, err
			}
			return payload{sched, Report{
				InvDelta: g, Guess: t, NFold: entry.params, Engine: entry.engine,
				TheoreticalCostLog2: entry.costLog2,
			}}, true, nil
		}
		var best payload
		var guess int64
		if opts.Session != nil {
			best, guess, tried, err = searchGuessesSeeded(ctx, grid, seed, ssp, probe)
		} else {
			best, guess, tried, err = searchGuesses(ctx, grid, opts.Parallelism, probe)
		}
		ssp.End(
			trace.A("guesses", int64(tried)), trace.A("guess", guess),
			trace.A("grid", int64(len(grid))), trace.A("parallelism", int64(opts.Parallelism)),
			trace.A("seeded", b2i(opts.Session != nil)),
		)
		if err == nil {
			opts.Session.noteSearch(cacheSplit, g, guess, scale, rec)
			best.report.Guess = guess
			best.report.Guesses = tried
			stats.report(&best.report)
			// The grid search may accept a guess whose constructed schedule
			// is worse than the 2-approximation (the scheme's constants are
			// large for coarse δ); both schedules are feasible, so return
			// the better one.
			if apx.Explicit != nil && apx.Makespan().Cmp(best.sched.Makespan()) < 0 {
				best.report.Engine = "approx-min"
				return &SplitResult{Schedule: apx.Explicit, Compact: apx.Compact, Report: best.report}, nil
			}
			return &SplitResult{
				Schedule: best.sched,
				Compact:  core.FromSplit(best.sched),
				Report:   best.report,
			}, nil
		}
	}
	if ctx.Err() != nil {
		return nil, ctx.Err()
	}
	if recoveredPanic(err) {
		return nil, err
	}
	// Degrade gracefully: the 2-approximation schedule is always available
	// when every guess is rejected within budget (or the configuration
	// enumeration exceeds its limit).
	if apx.Explicit != nil {
		rep := Report{InvDelta: g, Guess: hi, Guesses: tried, Engine: "approx-fallback"}
		stats.report(&rep)
		return &SplitResult{Schedule: apx.Explicit, Compact: apx.Compact, Report: rep}, nil
	}
	return nil, err
}

// constructSchedule realizes an N-fold solution as an explicit splittable
// schedule: configurations onto machines, modules into configuration slots,
// original job mass into module slots, small classes by round robin.
func (ctx *splitGuessCtx) constructSchedule(x [][]int64) (*core.SplitSchedule, error) {
	in := ctx.in
	nM, nK, nHB := len(ctx.modules), len(ctx.configs), len(ctx.hbPairs)
	xOff, yOff, zOff := 0, nK, nK+nM
	classes := []int{}
	for u := range ctx.loads {
		if ctx.loads[u] > 0 {
			classes = append(classes, u)
		}
	}
	// Aggregate configuration counts and per-class module demands.
	xc := make([]int64, nK)
	for bi := range classes {
		for ci := 0; ci < nK; ci++ {
			xc[ci] += x[bi][xOff+ci]
		}
	}
	// Machine list: one entry per machine with its configuration.
	type machine struct {
		config int
		// slotClass[k] is the class filling the k-th module slot.
		slotSizes []int64 // ℓ-units per slot
		slotClass []int
		slotFill  []int64 // filled amount per slot (δ²T/c units)
	}
	var machines []machine
	for ci, cnt := range xc {
		for k := int64(0); k < cnt; k++ {
			m := machine{config: ci}
			for qi, q := range ctx.configs[ci].counts {
				for a := int64(0); a < q; a++ {
					m.slotSizes = append(m.slotSizes, ctx.modules[qi])
					m.slotClass = append(m.slotClass, -1)
					m.slotFill = append(m.slotFill, 0)
				}
			}
			machines = append(machines, m)
		}
	}
	if int64(len(machines)) != in.M {
		return nil, fmt.Errorf("ptas: configuration counts cover %d machines, want %d", len(machines), in.M)
	}
	// Assign module demands to slots, size by size.
	slotsBySize := make(map[int64][][2]int) // ℓ -> list of (machine, slot)
	for mi := range machines {
		for si, s := range machines[mi].slotSizes {
			slotsBySize[s] = append(slotsBySize[s], [2]int{mi, si})
		}
	}
	cursor := make(map[int64]int)
	for bi, u := range classes {
		if ctx.small[u] {
			continue
		}
		for qi, ell := range ctx.modules {
			need := x[bi][yOff+qi]
			for k := int64(0); k < need; k++ {
				lst := slotsBySize[ell]
				if cursor[ell] >= len(lst) {
					return nil, fmt.Errorf("ptas: module demand exceeds slots of size %d", ell)
				}
				ref := lst[cursor[ell]]
				cursor[ell]++
				machines[ref[0]].slotClass[ref[1]] = u
			}
		}
	}
	// Fill original jobs of each large class into its reserved slots.
	sched := &core.SplitSchedule{}
	unit := rat.Frac(ctx.t, ctx.g*ctx.g*int64(in.Slots)) // δ²T/c
	byClass := in.ClassJobs()
	cUnits := int64(in.Slots)
	for _, u := range classes {
		if ctx.small[u] {
			continue
		}
		// Slot instances for class u in machine order.
		type slotRef struct{ mi, si int }
		var refs []slotRef
		for mi := range machines {
			for si := range machines[mi].slotSizes {
				if machines[mi].slotClass[si] == u {
					refs = append(refs, slotRef{mi, si})
				}
			}
		}
		ri := 0
		var room rat.R // remaining capacity of the current slot
		for _, j := range byClass[u] {
			remaining := rat.FromInt(in.P[j])
			for remaining.Sign() > 0 {
				for room.Sign() == 0 {
					if ri >= len(refs) {
						return nil, fmt.Errorf("ptas: class %d ran out of module capacity", u)
					}
					units := machines[refs[ri].mi].slotSizes[refs[ri].si] * cUnits
					room = unit.MulInt(units)
					ri++
				}
				take := remaining
				if take.Cmp(room) > 0 {
					take = room
				}
				ref := refs[ri-1]
				sched.Pieces = append(sched.Pieces, core.SplitPiece{
					Job: j, Machine: int64(ref.mi), Size: take,
				})
				remaining = remaining.Sub(take)
				room = room.Sub(take)
			}
		}
	}
	// Small classes: round robin within each (h,b) machine group.
	groupMachines := make([][]int, nHB)
	for mi := range machines {
		cc := ctx.configs[machines[mi].config]
		hi := ctx.hbIndex[hbKey{cc.size, cc.slots}]
		groupMachines[hi] = append(groupMachines[hi], mi)
	}
	type smallAssign struct {
		u  int
		hb int
	}
	var smalls []smallAssign
	for bi, u := range classes {
		if !ctx.small[u] {
			continue
		}
		chosen := -1
		for hi := 0; hi < nHB; hi++ {
			if x[bi][zOff+hi] == 1 {
				chosen = hi
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("ptas: small class %d has no (h,b) assignment", u)
		}
		smalls = append(smalls, smallAssign{u, chosen})
	}
	// Round robin per group in non-ascending load order (Lemma 3).
	sort.SliceStable(smalls, func(a, b int) bool { return ctx.loads[smalls[a].u] > ctx.loads[smalls[b].u] })
	next := make([]int, nHB)
	for _, sa := range smalls {
		ms := groupMachines[sa.hb]
		if len(ms) == 0 {
			return nil, fmt.Errorf("ptas: small class %d assigned to empty machine group", sa.u)
		}
		mi := ms[next[sa.hb]%len(ms)]
		next[sa.hb]++
		for _, j := range byClass[sa.u] {
			sched.Pieces = append(sched.Pieces, core.SplitPiece{
				Job: j, Machine: int64(mi), Size: rat.FromInt(in.P[j]),
			})
		}
	}
	return sched, nil
}

// BuildSplittableNFold exposes the configuration N-fold of the splittable
// scheme at the instance's certified lower bound, for the E8 experiment
// that studies the machinery in isolation.
func BuildSplittableNFold(in *core.Instance, epsilon float64) (*nfold.Problem, error) {
	g, err := Options{Epsilon: epsilon}.delta()
	if err != nil {
		return nil, err
	}
	lo, err := lowerBoundInt(in, core.Splittable)
	if err != nil {
		return nil, err
	}
	ctx, err := newSplitGuessCtx(in, g, lo, Options{}.maxConfigs())
	if err != nil {
		return nil, err
	}
	return ctx.buildNFold(in.M), nil
}
