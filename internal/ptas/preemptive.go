package ptas

import (
	"context"
	"fmt"
	"math/big"
	"sort"

	"ccsched/internal/approx"
	"ccsched/internal/core"
	"ccsched/internal/nfold"
	"ccsched/internal/rat"
	"ccsched/internal/trace"
)

// The preemptive PTAS (Section 4.3). Time is divided into |L| layers of
// height δ²T; in a well-structured schedule every piece of a large-class
// job fills whole (machine, layer) slots. Modules are 0-1 vectors over
// layers; configurations choose disjoint modules.
//
// Implementation deviation (see the package comment): modules are
// restricted to contiguous layer intervals. The paper's full module set has
// 2^|L| elements and its configuration set is a set-partition family, which
// is not enumerable for any useful δ; intervals keep the scheme sound
// (every output is validated) and complete on all tested workloads.
//
// Units: δ²T/c as everywhere; a layer is c units tall; T̄ is rounded up to
// (g²+3g+2)·c units ≥ (1+3δ)(1+δ²)T, keeping the error O(δ).

// interval is a module: layers [lo, hi) (0-based, half-open).
type interval struct{ lo, hi int }

func (iv interval) length() int { return iv.hi - iv.lo }

// preGuessCtx carries the per-guess state for the preemptive PTAS.
type preGuessCtx struct {
	in     *core.Instance
	g, t   int64
	layers int
	cStar  int64
	jobs   [][]npJob
	small  []bool
	// sizes: distinct rounded large-job sizes (units, multiples of c);
	// wp[size] = pieces (layers) per job of that size.
	sizes      []int64
	nUP        map[[2]int64]int64
	smallUnits []int64
	modules    []interval
	configs    []preConfig
	hbPairs    []hbPair
	hbIndex    map[hbKey]int
	tBarUnits  int64
	tm         *preTemplate
}

// preConfig is a configuration: disjoint intervals, at most c* of them.
type preConfig struct {
	intervals []int // indices into modules
	size      int64 // total layers covered × c (units)
	slots     int64
}

// enumerateIntervalConfigs lists sets of pairwise disjoint intervals (by
// index) with at most maxSlots members, including the empty configuration.
func enumerateIntervalConfigs(modules []interval, maxSlots int64, limit int) ([]preConfig, error) {
	// Order intervals by start for the sweep.
	idx := make([]int, len(modules))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := modules[idx[a]], modules[idx[b]]
		if ia.lo != ib.lo {
			return ia.lo < ib.lo
		}
		return ia.hi < ib.hi
	})
	var out []preConfig
	var cur []int
	var rec func(pos int, lastEnd int, slots int64, covered int64) error
	rec = func(pos int, lastEnd int, slots int64, covered int64) error {
		if len(out) > limit {
			return fmt.Errorf("ptas: preemptive configuration count exceeds limit %d; increase epsilon or MaxConfigs", limit)
		}
		out = append(out, preConfig{
			intervals: append([]int(nil), cur...),
			size:      covered,
			slots:     slots,
		})
		if slots == maxSlots {
			return nil
		}
		for k := pos; k < len(idx); k++ {
			iv := modules[idx[k]]
			if iv.lo < lastEnd {
				continue
			}
			cur = append(cur, idx[k])
			if err := rec(k+1, iv.hi, slots+1, covered+int64(iv.length())); err != nil {
				return err
			}
			cur = cur[:len(cur)-1]
		}
		return nil
	}
	if err := rec(0, 0, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

func newPreGuessCtx(in *core.Instance, g, t int64, limit int) (*preGuessCtx, error) {
	tm, err := newPreTemplate(in, g, limit)
	if err != nil {
		return nil, err
	}
	return tm.instantiate(t)
}

// instantiate performs the per-guess grouping and rounding; the layer
// geometry and interval-configuration enumeration come from the template.
func (tm *preTemplate) instantiate(t int64) (*preGuessCtx, error) {
	in, g := tm.in, tm.g
	ctx := &preGuessCtx{in: in, g: g, t: t, tm: tm}
	c := int64(in.Slots)
	ctx.tBarUnits = tm.tBarUnits
	ctx.layers = tm.layers
	ctx.cStar = tm.cStar
	ctx.modules = tm.modules
	ctx.configs = tm.configs
	ctx.hbPairs = tm.hbPairs
	ctx.hbIndex = tm.hbIndex
	byClass := tm.byClass
	ctx.jobs = make([][]npJob, len(byClass))
	ctx.small = make([]bool, len(byClass))
	ctx.smallUnits = make([]int64, len(byClass))
	ctx.nUP = make(map[[2]int64]int64)
	sizeSet := make(map[int64]bool)
	for u, js := range byClass {
		if len(js) == 0 {
			continue
		}
		grouped, isSmall := groupJobs(in, js, g, t)
		ctx.small[u] = isSmall
		if isSmall {
			ctx.smallUnits[u] = ceilDivBig(grouped[0].load, g*g*c, t)
			grouped[0].units = ctx.smallUnits[u]
			grouped[0].class = u
			ctx.jobs[u] = grouped
			continue
		}
		for k := range grouped {
			grouped[k].class = u
			grouped[k].units = ceilDivBig(grouped[k].load, g*g, t) * c
			sizeSet[grouped[k].units] = true
			ctx.nUP[[2]int64{int64(u), grouped[k].units}]++
		}
		ctx.jobs[u] = grouped
	}
	for s := range sizeSet {
		ctx.sizes = append(ctx.sizes, s)
	}
	sort.Slice(ctx.sizes, func(a, b int) bool { return ctx.sizes[a] < ctx.sizes[b] })
	// Reject guesses for which a single job would not fit (w_p > |L|).
	for _, s := range ctx.sizes {
		if s/c > int64(ctx.layers) {
			return nil, errGuessTooSmall
		}
	}
	return ctx, nil
}

var errGuessTooSmall = fmt.Errorf("ptas: guess below the largest job")

func (ctx *preGuessCtx) classList() []int {
	var out []int
	for u := range ctx.jobs {
		if len(ctx.jobs[u]) > 0 {
			out = append(out, u)
		}
	}
	return out
}

// buildNFold encodes constraints (0)–(6) of the preemptive scheme. As in
// the other schemes, the blocks depend on the brick's class only through
// the (3)-row z coefficient of small classes, so one large-class A block,
// per-rounded-load small blocks, and one B block are shared by all bricks —
// and, because the block values reference sizes only by index, by every
// probe whose distinct-size count matches (see preTemplate.blocksFor).
func (ctx *preGuessCtx) buildNFold(m int64) *nfold.Problem {
	nM, nK, nHB, nP, nL := len(ctx.modules), len(ctx.configs), len(ctx.hbPairs), len(ctx.sizes), ctx.layers
	// Brick layout: [x_K | y_M | z_hb | s2_hb | s3_hb | a_{p,ℓ}].
	tWidth := nK + nM + 3*nHB + nP*nL
	xOff, yOff, zOff, s2Off, s3Off, aOff := 0, nK, nK+nM, nK+nM+nHB, nK+nM+2*nHB, nK+nM+3*nHB
	r := 1 + nM + 2*nHB
	s := nP + nL + 1
	cUnits := int64(ctx.in.Slots)
	classes := ctx.classList()
	p := &nfold.Problem{N: len(classes), R: r, S: s, T: tWidth}
	bl := ctx.tm.blocksFor(nP)

	for _, u := range classes {
		if ctx.small[u] {
			p.A = append(p.A, ctx.tm.smallABlock(nP, ctx.smallUnits[u]))
			p.LocalRHS = append(p.LocalRHS, bl.smallLRHS)
		} else {
			p.A = append(p.A, bl.largeA)
			lrhs := make([]int64, s)
			for pi, sz := range ctx.sizes {
				wp := sz / cUnits
				lrhs[pi] = wp * ctx.nUP[[2]int64{int64(u), sz}]
			}
			p.LocalRHS = append(p.LocalRHS, lrhs)
		}
		p.B = append(p.B, bl.sharedB)

		lower := bl.zeroRow
		upper := make([]int64, tWidth)
		for ci := range ctx.configs {
			upper[xOff+ci] = m
		}
		if !ctx.small[u] {
			var totPieces int64
			for pi, sz := range ctx.sizes {
				totPieces += (sz / cUnits) * ctx.nUP[[2]int64{int64(u), ctx.sizes[pi]}]
			}
			for mi := range ctx.modules {
				upper[yOff+mi] = totPieces
			}
			// a_{p,ℓ} ≤ n^u_p: Theorem 18's greedy needs at most one slot
			// per job per layer.
			for pi, sz := range ctx.sizes {
				np := ctx.nUP[[2]int64{int64(u), sz}]
				for l := 0; l < nL; l++ {
					upper[aOff+pi*nL+l] = np
				}
			}
		}
		for hi := range ctx.hbPairs {
			if ctx.small[u] {
				upper[zOff+hi] = 1
			}
			upper[s2Off+hi] = cUnits * m
			upper[s3Off+hi] = ctx.tBarUnits * m
		}
		p.Lower = append(p.Lower, lower)
		p.Upper = append(p.Upper, upper)
		p.Obj = append(p.Obj, bl.zeroRow)
	}
	p.GlobalRHS = make([]int64, r)
	p.GlobalRHS[0] = m
	return p
}

// PreemptiveResult is the preemptive PTAS output.
type PreemptiveResult struct {
	Schedule *core.PreemptiveSchedule
	Report   Report
}

// Makespan returns the schedule makespan.
func (r *PreemptiveResult) Makespan() *big.Rat { return r.Schedule.Makespan() }

// SolvePreemptive runs the preemptive PTAS (Theorem 19, with the interval-
// module restriction documented above). The context cancels the
// makespan-guess search — including in-flight N-fold solves — so ctx.Err()
// surfaces within one augmentation iteration or branch-and-bound node.
func SolvePreemptive(ctx context.Context, in *core.Instance, opts Options) (*PreemptiveResult, error) {
	g, err := opts.delta()
	if err != nil {
		return nil, err
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	// m ≥ n: one job per machine is optimal (p_max).
	if in.M >= int64(in.N()) {
		sched := &core.PreemptiveSchedule{}
		for j := range in.P {
			sched.Pieces = append(sched.Pieces, core.PreemptivePiece{
				Job: j, Machine: int64(j), Size: rat.FromInt(in.P[j]),
			})
		}
		return &PreemptiveResult{Schedule: sched, Report: Report{InvDelta: g, Guess: in.PMax()}}, nil
	}
	// The preemptive optimum is rational; keep the integral guess grid
	// (1+δ)-fine relative to OPT by scaling small instances up.
	lbRat, err := core.LowerBound(in, core.Preemptive)
	if err != nil {
		return nil, err
	}
	if scale := scaleFactor(lbRat, in.PMax(), 4*g*g); scale > 1 {
		res, err := solvePreemptiveScaled(ctx, scaleInstance(in, scale), g, scale, opts)
		if err != nil {
			return nil, err
		}
		descalePreemptive(res, scale)
		return res, nil
	}
	return solvePreemptiveScaled(ctx, in, g, 1, opts)
}

// solvePreemptiveScaled runs the guess search on the (possibly scaled)
// instance; scale is recorded with session seeds so later re-solves under a
// different scaling rescale the seed guess.
func solvePreemptiveScaled(ctx context.Context, in *core.Instance, g, scale int64, opts Options) (*PreemptiveResult, error) {
	lo, err := lowerBoundInt(in, core.Preemptive)
	if err != nil {
		return nil, err
	}
	apx, err := approx.SolvePreemptive(in)
	if err != nil {
		return nil, err
	}
	hi := ceilRat(apx.Makespan())
	if hi < lo {
		hi = lo
	}
	grid := guessGrid(lo, hi, g)
	type payload struct {
		sched  *core.PreemptiveSchedule
		report Report
	}
	var stats probeStats
	tried := 0
	tsp := opts.Trace.Child("template_build")
	tm, err := preTemplateFor(opts.Session, in, g, opts.maxConfigs())
	tsp.End()
	var best payload
	var guess int64
	if err == nil {
		seed, rec := opts.Session.probeSeed(cachePreemptive, g, scale)
		ssp := opts.Trace.Child("guess_search")
		opts.Trace = ssp // probes hang their spans off the search span
		probe := func(pctx context.Context, t int64) (payload, bool, error) {
			gctx, err := tm.instantiate(t)
			if err == errGuessTooSmall {
				return payload{}, false, nil
			}
			if err != nil {
				return payload{}, false, err
			}
			key := probeCacheKey(cachePreemptive,
				groupedDigest(in.M, in.Slots, g, gctx.sizes, gctx.classList(), gctx.small, gctx.smallUnits, gctx.nUP), g, opts)
			entry, err := solveGuessCached(pctx, opts, key, t, &stats, tm.nf, rec,
				func() *nfold.Problem { return gctx.buildNFold(in.M) })
			if err != nil {
				return payload{}, false, err
			}
			if !entry.feasible {
				return payload{}, false, nil
			}
			sched, err := gctx.constructSchedule(entry.x)
			if err != nil {
				return payload{}, false, err
			}
			return payload{sched, Report{
				InvDelta: g, Guess: t, NFold: entry.params, Engine: entry.engine,
				TheoreticalCostLog2: entry.costLog2,
			}}, true, nil
		}
		if opts.Session != nil {
			best, guess, tried, err = searchGuessesSeeded(ctx, grid, seed, ssp, probe)
		} else {
			best, guess, tried, err = searchGuesses(ctx, grid, opts.Parallelism, probe)
		}
		ssp.End(
			trace.A("guesses", int64(tried)), trace.A("guess", guess),
			trace.A("grid", int64(len(grid))), trace.A("parallelism", int64(opts.Parallelism)),
			trace.A("seeded", b2i(opts.Session != nil)),
		)
		if err == nil {
			opts.Session.noteSearch(cachePreemptive, g, guess, scale, rec)
		}
	}
	if err != nil {
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if recoveredPanic(err) {
			return nil, err
		}
		return &PreemptiveResult{
			Schedule: apx.Schedule,
			Report:   fallbackReport(g, hi, tried, &stats),
		}, nil
	}
	best.report.Guess = guess
	best.report.Guesses = tried
	stats.report(&best.report)
	// Return the better of the PTAS construction and the 2-approximation.
	if apx.Makespan().Cmp(best.sched.Makespan()) < 0 {
		best.report.Engine = "approx-min"
		return &PreemptiveResult{Schedule: apx.Schedule, Report: best.report}, nil
	}
	return &PreemptiveResult{Schedule: best.sched, Report: best.report}, nil
}

// constructSchedule realizes the N-fold solution: configurations onto
// machines, interval modules into configuration slots, layer slots onto
// sizes via the a-variables, jobs into layer slots greedily (Theorem 18),
// small classes into the machines' idle gaps.
func (ctx *preGuessCtx) constructSchedule(x [][]int64) (*core.PreemptiveSchedule, error) {
	in := ctx.in
	nM, nK, nHB, nL := len(ctx.modules), len(ctx.configs), len(ctx.hbPairs), ctx.layers
	xOff, yOff, zOff, aOff := 0, nK, nK+nM, nK+nM+3*nHB
	cUnits := int64(in.Slots)
	layerRat := rat.Frac(ctx.t, ctx.g*ctx.g) // δ²T
	classes := ctx.classList()
	xc := make([]int64, nK)
	for bi := range classes {
		for ci := 0; ci < nK; ci++ {
			xc[ci] += x[bi][xOff+ci]
		}
	}
	type machine struct {
		config int
		// owner[ℓ] is the class owning layer ℓ (-1 free).
		owner []int
	}
	var machines []machine
	for ci, cnt := range xc {
		for k := int64(0); k < cnt; k++ {
			m := machine{config: ci, owner: make([]int, nL)}
			for l := range m.owner {
				m.owner[l] = -1
			}
			machines = append(machines, m)
		}
	}
	if int64(len(machines)) != in.M {
		return nil, fmt.Errorf("ptas: configuration counts cover %d machines, want %d", len(machines), in.M)
	}
	// Module slot instances per module (interval) id.
	slotsByModule := make([][]int, nM) // module -> machines owning that interval slot
	for mi := range machines {
		for _, mod := range ctx.configs[machines[mi].config].intervals {
			slotsByModule[mod] = append(slotsByModule[mod], mi)
		}
	}
	cursor := make([]int, nM)
	for bi, u := range classes {
		if ctx.small[u] {
			continue
		}
		for mod := 0; mod < nM; mod++ {
			need := x[bi][yOff+mod]
			for k := int64(0); k < need; k++ {
				if cursor[mod] >= len(slotsByModule[mod]) {
					return nil, fmt.Errorf("ptas: module demand exceeds slots for interval %v", ctx.modules[mod])
				}
				mi := slotsByModule[mod][cursor[mod]]
				cursor[mod]++
				for l := ctx.modules[mod].lo; l < ctx.modules[mod].hi; l++ {
					machines[mi].owner[l] = u
				}
			}
		}
	}
	// Per class: distribute layer slots to sizes via a_{p,ℓ}, then fill
	// jobs greedily (most remaining pieces first).
	sched := &core.PreemptiveSchedule{}
	type jobState struct {
		gj        npJob
		remaining int64 // pieces still to place
		placed    []core.PreemptivePiece
	}
	for bi, u := range classes {
		if ctx.small[u] {
			continue
		}
		// Slots per layer owned by class u.
		slotAt := make([][]int, nL) // layer -> machine indices
		for mi := range machines {
			for l := 0; l < nL; l++ {
				if machines[mi].owner[l] == u {
					slotAt[l] = append(slotAt[l], mi)
				}
			}
		}
		// Job states per size.
		bySize := make(map[int64][]*jobState)
		for _, gj := range ctx.jobs[u] {
			st := &jobState{gj: gj, remaining: gj.units / cUnits}
			bySize[gj.units] = append(bySize[gj.units], st)
		}
		for l := 0; l < nL; l++ {
			used := 0
			for pi, sz := range ctx.sizes {
				cnt := x[bi][aOff+pi*nL+l]
				if cnt == 0 {
					continue
				}
				states := bySize[sz]
				// Most remaining first; each job at most once per layer.
				sort.SliceStable(states, func(a, b int) bool { return states[a].remaining > states[b].remaining })
				if cnt > int64(len(states)) {
					return nil, fmt.Errorf("ptas: layer %d wants %d size-%d jobs of class %d, have %d", l, cnt, sz, u, len(states))
				}
				for k := int64(0); k < cnt; k++ {
					st := states[k]
					if st.remaining == 0 {
						return nil, fmt.Errorf("ptas: job of class %d exhausted before its slots", u)
					}
					if used >= len(slotAt[l]) {
						return nil, fmt.Errorf("ptas: class %d out of slots at layer %d", u, l)
					}
					mi := slotAt[l][used]
					used++
					st.placed = append(st.placed, core.PreemptivePiece{
						Job:     -1, // filled after un-grouping
						Machine: int64(mi),
						Start:   layerRat.MulInt(int64(l)),
						Size:    layerRat,
					})
					st.remaining--
				}
			}
		}
		// Un-round and un-group: each grouped job's pieces (ordered by
		// start) carry its original jobs' exact mass; excess is trimmed
		// from the tail.
		for _, states := range bySize {
			for _, st := range states {
				if st.remaining != 0 {
					return nil, fmt.Errorf("ptas: job of class %d has %d unplaced pieces", u, st.remaining)
				}
				sort.SliceStable(st.placed, func(a, b int) bool {
					return st.placed[a].Start.Cmp(st.placed[b].Start) < 0
				})
				pieces, err := fillGroupedJob(in, st.gj, st.placed)
				if err != nil {
					return nil, err
				}
				sched.Pieces = append(sched.Pieces, pieces...)
			}
		}
	}
	// Small classes: round robin into (h,b) groups, then into idle gaps.
	groupMachines := make([][]int, nHB)
	for mi := range machines {
		cc := ctx.configs[machines[mi].config]
		hi := ctx.hbIndex[hbKey{cc.size, cc.slots}]
		groupMachines[hi] = append(groupMachines[hi], mi)
	}
	type smallAssign struct{ u, hb int }
	var smalls []smallAssign
	loads := in.ClassLoads()
	for bi, u := range classes {
		if !ctx.small[u] {
			continue
		}
		chosen := -1
		for hi := 0; hi < nHB; hi++ {
			if x[bi][zOff+hi] == 1 {
				chosen = hi
				break
			}
		}
		if chosen < 0 {
			return nil, fmt.Errorf("ptas: small class %d has no (h,b) assignment", u)
		}
		smalls = append(smalls, smallAssign{u, chosen})
	}
	sort.SliceStable(smalls, func(a, b int) bool { return loads[smalls[a].u] > loads[smalls[b].u] })
	next := make([]int, nHB)
	// Track a per-machine cursor over free time (gaps between owned layers,
	// then the open end).
	freeCursor := make(map[int]*gapCursor)
	byClass := in.ClassJobs()
	for _, sa := range smalls {
		ms := groupMachines[sa.hb]
		if len(ms) == 0 {
			return nil, fmt.Errorf("ptas: small class %d assigned to empty machine group", sa.u)
		}
		mi := ms[next[sa.hb]%len(ms)]
		next[sa.hb]++
		gc := freeCursor[mi]
		if gc == nil {
			gc = newGapCursor(machines[mi].owner, layerRat)
			freeCursor[mi] = gc
		}
		for _, j := range byClass[sa.u] {
			remaining := rat.FromInt(in.P[j])
			for remaining.Sign() > 0 {
				start, size := gc.take(remaining)
				sched.Pieces = append(sched.Pieces, core.PreemptivePiece{
					Job: j, Machine: int64(mi), Start: start, Size: size,
				})
				remaining = remaining.Sub(size)
			}
		}
	}
	return sched, nil
}

// fillGroupedJob cuts the grouped job's original constituents into the
// placed pieces (ordered by start), trimming the rounded excess from the
// tail piece.
func fillGroupedJob(in *core.Instance, gj npJob, placed []core.PreemptivePiece) ([]core.PreemptivePiece, error) {
	var out []core.PreemptivePiece
	pi := 0
	var room, start rat.R
	for _, oj := range gj.orig {
		remaining := rat.FromInt(in.P[oj])
		for remaining.Sign() > 0 {
			for room.Sign() == 0 {
				if pi >= len(placed) {
					return nil, fmt.Errorf("ptas: grouped job of class %d ran out of placed pieces", gj.class)
				}
				room = placed[pi].Size
				start = placed[pi].Start
				pi++
			}
			take := remaining
			if take.Cmp(room) > 0 {
				take = room
			}
			out = append(out, core.PreemptivePiece{
				Job:     oj,
				Machine: placed[pi-1].Machine,
				Start:   start,
				Size:    take,
			})
			start = start.Add(take)
			room = room.Sub(take)
			remaining = remaining.Sub(take)
		}
	}
	return out, nil
}

// gapCursor walks a machine's free time: gaps between owned layers first,
// then the open-ended region after the last layer.
type gapCursor struct {
	gaps []struct{ start, end rat.R }
	gi   int
	pos  rat.R
	open rat.R // start of the open-ended region
}

func newGapCursor(owner []int, layerRat rat.R) *gapCursor {
	gc := &gapCursor{}
	nL := len(owner)
	last := nL
	for last > 0 && owner[last-1] < 0 {
		last--
	}
	for l := 0; l < last; l++ {
		if owner[l] < 0 {
			s := layerRat.MulInt(int64(l))
			e := layerRat.MulInt(int64(l + 1))
			if len(gc.gaps) > 0 && gc.gaps[len(gc.gaps)-1].end.Cmp(s) == 0 {
				gc.gaps[len(gc.gaps)-1].end = e
			} else {
				gc.gaps = append(gc.gaps, struct{ start, end rat.R }{s, e})
			}
		}
	}
	gc.open = layerRat.MulInt(int64(last))
	if len(gc.gaps) > 0 {
		gc.pos = gc.gaps[0].start
	}
	return gc
}

// take returns the next free (start, size) with size ≤ want.
func (gc *gapCursor) take(want rat.R) (rat.R, rat.R) {
	for gc.gi < len(gc.gaps) {
		g := gc.gaps[gc.gi]
		if gc.pos.Cmp(g.start) < 0 {
			gc.pos = g.start
		}
		room := g.end.Sub(gc.pos)
		if room.Sign() <= 0 {
			gc.gi++
			if gc.gi < len(gc.gaps) {
				gc.pos = gc.gaps[gc.gi].start
			}
			continue
		}
		size := want
		if size.Cmp(room) > 0 {
			size = room
		}
		start := gc.pos
		gc.pos = gc.pos.Add(size)
		return start, size
	}
	start := gc.open
	gc.open = gc.open.Add(want)
	return start, want
}
