package ptas

import (
	"context"
	"fmt"
	"math/big"
	"sync/atomic"
	"testing"

	"ccsched/internal/core"
	"ccsched/internal/generator"
)

// The warm-start parity differential. Warm starts are verdict-only by
// construction (see internal/lp/warm.go), so a warm-started search must
// accept the same guess after the same number of probes and emit a schedule
// with the same makespan as a cold search — bit-identically, on every
// generator family, at a δ fine enough that the exact engine's branch and
// bound actually branches (and the warm restore actually prunes). The test
// runs with Parallelism > 1 so `go test -race` also exercises the shared
// template paths (block sharing across bricks and guesses, and the move
// cache) under concurrency.

// paritySummary is the triple that must match bit-identically.
type paritySummary struct {
	guess    int64
	guesses  int
	makespan *big.Rat
	warmHits int64
}

// runParity solves one variant and reduces the result to the parity triple.
func runParity(t *testing.T, variant string, in *core.Instance, opts Options) paritySummary {
	t.Helper()
	ctx := context.Background()
	switch variant {
	case "splittable":
		r, err := SolveSplittable(ctx, in, opts)
		if err != nil {
			t.Fatalf("splittable: %v", err)
		}
		return paritySummary{r.Report.Guess, r.Report.Guesses, r.Makespan(), r.Report.WarmHits}
	case "nonpreemptive":
		r, err := SolveNonPreemptive(ctx, in, opts)
		if err != nil {
			t.Fatalf("nonpreemptive: %v", err)
		}
		return paritySummary{r.Report.Guess, r.Report.Guesses, new(big.Rat).SetInt64(r.Makespan(in)), r.Report.WarmHits}
	case "preemptive":
		r, err := SolvePreemptive(ctx, in, opts)
		if err != nil {
			t.Fatalf("preemptive: %v", err)
		}
		return paritySummary{r.Report.Guess, r.Report.Guesses, r.Makespan(), r.Report.WarmHits}
	}
	t.Fatalf("unknown variant %q", variant)
	return paritySummary{}
}

// totalWarmHits proves the differential exercised the warm path at all: a
// parity test whose warm runs never pruned anything would pass vacuously.
var totalWarmHits atomic.Int64

func TestWarmStartParityAllFamilies(t *testing.T) {
	variants := []string{"splittable", "nonpreemptive", "preemptive"}
	for _, fam := range generator.Families() {
		for seed := int64(1); seed <= 5; seed++ {
			in := fam.Gen(generator.Config{
				N: 15, Classes: 3, Machines: 3, Slots: 2, PMax: 80, Seed: seed,
			})
			for _, variant := range variants {
				variant, in := variant, in
				name := fmt.Sprintf("%s/%s/seed=%d", fam.Name, variant, seed)
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					// δ = 1/2 makes the exact engine branch; the node cap
					// keeps rejected probes bounded; no cache, so both runs
					// do all of their own solving. The preemptive scheme runs
					// at δ = 1: its interval-configuration set at δ = 1/2 is
					// orders of magnitude larger and would dominate the whole
					// suite without adding warm-path coverage.
					opts := Options{Epsilon: 0.5, MaxNodes: 150, Parallelism: 3}
					if variant == "preemptive" {
						opts.Epsilon = 1.0
					}
					cold := opts
					cold.NoWarmStart = true
					warm := runParity(t, variant, in, opts)
					coldRes := runParity(t, variant, in, cold)
					if warm.guess != coldRes.guess {
						t.Fatalf("accepted guess diverged: warm %d, cold %d", warm.guess, coldRes.guess)
					}
					if warm.guesses != coldRes.guesses {
						t.Fatalf("probe count diverged: warm %d, cold %d", warm.guesses, coldRes.guesses)
					}
					if warm.makespan.Cmp(coldRes.makespan) != 0 {
						t.Fatalf("makespan diverged: warm %s, cold %s",
							warm.makespan.RatString(), coldRes.makespan.RatString())
					}
					if coldRes.warmHits != 0 {
						t.Fatalf("cold run reported %d warm hits; NoWarmStart must disable the restore", coldRes.warmHits)
					}
					totalWarmHits.Add(warm.warmHits)
				})
			}
		}
	}
	t.Cleanup(func() {
		if totalWarmHits.Load() == 0 {
			t.Errorf("no warm-restore prune fired across any family; the parity test is vacuous")
		}
	})
}
