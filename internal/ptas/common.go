// Package ptas implements the three polynomial-time approximation schemes
// of Section 4 of Jansen, Lassota, Maack (SPAA 2020): splittable
// (Theorems 10/11), non-preemptive (Theorem 14) and preemptive (Theorem 19)
// Class-Constrained Scheduling.
//
// All three follow the paper's dual-approximation shape: pick δ with
// 1/δ ∈ Z from the requested ε, search for the smallest accepted makespan
// guess T, and per guess (a) simplify the instance by grouping and rounding,
// (b) encode the existence of a well-structured schedule as a configuration
// ILP with N-fold structure (one brick per class), (c) solve it with
// internal/nfold, and (d) transform a solution back into a feasible
// schedule with makespan (1+O(δ))T.
//
// Deviations from the paper, both documented in DESIGN.md and measured in
// EXPERIMENTS.md:
//
//   - The makespan search walks a multiplicative (1+δ) grid between the
//     certified lower bound and the constant-factor algorithm's makespan
//     instead of an exact binary search; this costs one extra (1+δ) factor,
//     absorbed by the O(δ) analysis, and caps the number of N-fold solves
//     at O(log_{1+δ} 7/3).
//   - The preemptive scheme restricts modules (0-1 layer vectors) to
//     contiguous layer intervals. The paper's module set has 2^Θ(1/δ²)
//     elements and its configuration set is doubly exponential, which no
//     implementation can enumerate; the interval restriction keeps the
//     construction sound (every emitted schedule is validated) at the cost
//     of completeness in degenerate cases.
package ptas

import (
	"fmt"
	"math"
	"math/big"

	"ccsched/internal/core"
	"ccsched/internal/nfold"
	"ccsched/internal/trace"
)

// Options configures a PTAS run.
type Options struct {
	// Epsilon is the target accuracy; the schedule's makespan is at most
	// (1+O(Epsilon))·OPT. It is internally converted to δ = 1/⌈1/ε⌉.
	Epsilon float64
	// Engine selects the N-fold engine (default auto with exact fallback).
	Engine nfold.Engine
	// MaxNodes caps the exact engine's branch-and-bound nodes per guess.
	MaxNodes int
	// MaxConfigs guards the configuration enumeration; guesses whose
	// configuration set would exceed it are rejected with an error
	// (default 200000).
	MaxConfigs int
	// HugeMThreshold is the machine count above which the splittable
	// scheme switches to the Theorem 11 compact treatment. Zero selects
	// DefaultHugeMThreshold.
	HugeMThreshold int64
	// Parallelism is the number of concurrent speculative makespan-guess
	// probes (see internal/ptas/search.go). Values ≤ 1 run the classic
	// sequential binary search on the calling goroutine; larger values add
	// speculation without changing the result — accepted guesses and
	// schedules are bit-identical for any Parallelism.
	Parallelism int
	// EngineParallelism is the number of goroutines each N-fold solve may use
	// internally: concurrent augmentation brick scans with a deterministic
	// merge plus speculative branch-and-bound subtree workers behind a
	// sequential committer (see nfold.Options.Parallelism). Orthogonal to
	// Parallelism, which races whole guess probes. Values ≤ 1 run every
	// engine serially; any value yields bit-identical verdicts, schedules and
	// probe counts.
	EngineParallelism int
	// Cache memoizes guess feasibility verdicts (keyed by scaled instance,
	// guess, δ and engine budgets) across calls, so ε-refinement sweeps and
	// repeated solves of identical workloads skip already-decided N-fold
	// ILPs. Nil disables caching. A single Cache is safe to share between
	// concurrent solves.
	Cache *Cache
	// NoWarmStart disables LP basis reuse inside and across the exact
	// engine's branch-and-bound solves. Warm starts are verdict-only (see
	// internal/lp), so accepted guesses, probe counts and schedules are
	// bit-identical either way; this is the measurement baseline and
	// determinism escape hatch checked by the warm-parity tests.
	NoWarmStart bool
	// Session carries warm state across the re-solves of a scheduling
	// session: guess templates, the previous accepted guess (seeding the
	// search window), the boundary reject's Farkas certificate and the root
	// basis hint. All reuse is verdict-preserving, so results are
	// bit-identical to a cold solve of the same instance; solves with a
	// Session run the sequential guess search regardless of Parallelism.
	// A SessionState must not be shared by concurrent solves.
	Session *SessionState
	// Trace is the enclosing span of this solve's timeline (the zero Span
	// disables tracing at one nil check per would-be span). The schemes
	// re-point it at the current stage span as they descend — variant
	// solvers hang guess_search/template_build spans off it, probes hang
	// their engine spans off the search span — so the recorded hierarchy
	// mirrors the call tree. Tracing is observational only: spans carry
	// wall times and already-computed counters, and traced solves return
	// bit-identical results (pinned by the trace-parity tests).
	Trace trace.Span
}

func (o Options) hugeMThreshold() int64 {
	if o.HugeMThreshold > 0 {
		return o.HugeMThreshold
	}
	return DefaultHugeMThreshold
}

func (o Options) delta() (int64, error) {
	if o.Epsilon <= 0 || o.Epsilon > 1 {
		return 0, fmt.Errorf("ptas: epsilon %v outside (0,1]", o.Epsilon)
	}
	return int64(math.Ceil(1/o.Epsilon - 1e-12)), nil
}

func (o Options) maxConfigs() int {
	if o.MaxConfigs > 0 {
		return o.MaxConfigs
	}
	return 200000
}

func (o Options) nfoldOptions(tmpl *nfold.Template) *nfold.Options {
	maxNodes := o.MaxNodes
	if maxNodes <= 0 {
		// Probes at infeasible guesses must not explode: reject after a
		// bounded search (a rejected-but-feasible guess only nudges the
		// accepted makespan up one grid step).
		maxNodes = 4000
	}
	return &nfold.Options{
		Engine: o.Engine, MaxNodes: maxNodes, FirstFeasible: true,
		NoWarmStart: o.NoWarmStart, Template: tmpl, Parallelism: o.EngineParallelism,
	}
}

// Report captures per-run diagnostics for the experiment harness.
type Report struct {
	// Delta is the internal accuracy 1/g.
	InvDelta int64 `json:"inv_delta,omitempty"`
	// Guess is the accepted makespan guess T.
	Guess int64 `json:"guess,omitempty"`
	// Guesses is the number of makespan guesses tried.
	Guesses int `json:"guesses,omitempty"`
	// NFold holds the parameters of the last solved N-fold.
	NFold nfold.Params `json:"nfold"`
	// Engine is the engine that produced the accepted solution.
	Engine nfold.Engine `json:"engine,omitempty"`
	// TheoreticalCostLog2 is log2 of the Theorem 1 bound for the accepted
	// N-fold.
	TheoreticalCostLog2 float64 `json:"theoretical_cost_log2,omitempty"`
	// CacheHits counts guess probes answered from the feasibility cache
	// during this search.
	CacheHits int `json:"cache_hits,omitempty"`
	// CertHits counts guess probes refuted by re-verifying a session-carried
	// Farkas certificate instead of running the engines (session re-solves
	// only).
	CertHits int `json:"cert_hits,omitempty"`
	// BBNodes, BBPivots and WarmHits aggregate the exact engine's
	// branch-and-bound nodes, simplex pivots, and warm-restore prunes across
	// every probe this search solved (cache hits add nothing). Under
	// Parallelism > 1 the set of completed speculative probes varies run to
	// run, so these are diagnostics rather than deterministic quantities.
	BBNodes  int64 `json:"bb_nodes,omitempty"`
	BBPivots int64 `json:"bb_pivots,omitempty"`
	WarmHits int64 `json:"warm_hits,omitempty"`
	// BrickScanWorkers is the largest number of concurrent augmentation
	// brick-scan workers any probe engaged; BBSubtreeSteals and
	// BatchedLPSolves aggregate the exact engine's speculative-worker node
	// solves and batched sibling LP solves across all probes. All three are
	// zero unless Options.EngineParallelism ≥ 2, and none influence results.
	BrickScanWorkers int   `json:"brick_scan_workers,omitempty"`
	BBSubtreeSteals  int64 `json:"bb_subtree_steals,omitempty"`
	BatchedLPSolves  int64 `json:"batched_lp_solves,omitempty"`
}

// guessGrid returns the multiplicative (1+δ)-grid of integral makespan
// guesses covering [lo, hi], smallest first, always including hi.
func guessGrid(lo, hi int64, g int64) []int64 {
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	var out []int64
	cur := lo
	for cur < hi {
		out = append(out, cur)
		// next = ceil(cur * (1+1/g)) = ceil(cur*(g+1)/g), strictly larger.
		next := (cur*(g+1) + g - 1) / g
		if next <= cur {
			next = cur + 1
		}
		cur = next
	}
	out = append(out, hi)
	return out
}

// ceilRat returns ⌈r⌉ for a nonnegative rational.
func ceilRat(r *big.Rat) int64 {
	q := new(big.Int).Quo(r.Num(), r.Denom())
	if new(big.Int).Mul(q, r.Denom()).Cmp(r.Num()) != 0 {
		q.Add(q, big.NewInt(1))
	}
	return q.Int64()
}

// ceilDiv is ⌈a/b⌉ for positive a, b.
func ceilDiv(a, b int64) int64 { return (a + b - 1) / b }

// lowerBoundInt returns ⌈LB⌉ for the variant's certified lower bound.
func lowerBoundInt(in *core.Instance, v core.Variant) (int64, error) {
	lb, err := core.LowerBound(in, v)
	if err != nil {
		return 0, err
	}
	out := ceilRat(lb)
	if out < 1 {
		out = 1
	}
	return out, nil
}
