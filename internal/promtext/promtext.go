// Package promtext validates the Prometheus text exposition format
// (version 0.0.4) that ccserved's /metrics endpoint emits. It is a format
// lint, not a full client: every line must be a well-formed comment, HELP,
// TYPE or sample line, TYPE must precede a metric's first sample, names and
// label syntax must be legal, values must parse, and histograms must carry
// a +Inf bucket plus _sum and _count. The server test suite and the CI
// scrape job both run it, so a malformed exposition can not ship.
package promtext

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// metricTypes are the sample types the exposition format defines.
var metricTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true,
}

// state tracks one declared metric family during the scan.
type state struct {
	typ     string
	samples int
	// Histogram completeness flags.
	hasInf, hasSum, hasCount bool
}

// Lint validates data as exposition-format text, returning the first
// violation found (with its 1-based line number) or nil.
func Lint(data []byte) error {
	if len(data) == 0 {
		return fmt.Errorf("empty exposition")
	}
	if data[len(data)-1] != '\n' {
		return fmt.Errorf("exposition must end with a newline")
	}
	families := map[string]*state{}
	var order []string
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	for i, line := range lines {
		no := i + 1
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "#"):
			if err := lintComment(line, families, &order); err != nil {
				return fmt.Errorf("line %d: %w", no, err)
			}
		default:
			if err := lintSample(line, families); err != nil {
				return fmt.Errorf("line %d: %w", no, err)
			}
		}
	}
	for _, name := range order {
		st := families[name]
		if st.samples == 0 {
			return fmt.Errorf("metric %s: TYPE declared but no samples", name)
		}
		if st.typ == "histogram" {
			switch {
			case !st.hasInf:
				return fmt.Errorf("histogram %s: missing +Inf bucket", name)
			case !st.hasSum:
				return fmt.Errorf("histogram %s: missing _sum", name)
			case !st.hasCount:
				return fmt.Errorf("histogram %s: missing _count", name)
			}
		}
	}
	return nil
}

// lintComment validates a # line: HELP and TYPE have mandatory shapes,
// anything else is a free-form comment.
func lintComment(line string, families map[string]*state, order *[]string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare "#" comment
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP: %q", line)
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE: %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("invalid metric name %q", name)
		}
		if !metricTypes[typ] {
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if st, dup := families[name]; dup && st.typ != "" {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		families[name] = &state{typ: typ}
		*order = append(*order, name)
	}
	return nil
}

// lintSample validates one sample line and attributes it to its family.
func lintSample(line string, families map[string]*state) error {
	name, labels, value, err := splitSample(line)
	if err != nil {
		return err
	}
	if !validMetricName(name) {
		return fmt.Errorf("invalid metric name %q", name)
	}
	if _, err := parsePromValue(value); err != nil {
		return fmt.Errorf("bad value %q: %w", value, err)
	}
	base, suffix := name, ""
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		if strings.HasSuffix(name, sfx) {
			if st, ok := families[strings.TrimSuffix(name, sfx)]; ok && st.typ == "histogram" {
				base, suffix = strings.TrimSuffix(name, sfx), sfx
			}
			break
		}
	}
	st, ok := families[base]
	if !ok {
		return fmt.Errorf("sample %s has no preceding TYPE", name)
	}
	st.samples++
	switch suffix {
	case "_bucket":
		le, ok := labels["le"]
		if !ok {
			return fmt.Errorf("histogram bucket %s missing le label", name)
		}
		if le == "+Inf" {
			st.hasInf = true
		} else if _, err := strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("bucket %s: non-numeric le %q", name, le)
		}
	case "_sum":
		st.hasSum = true
	case "_count":
		st.hasCount = true
	}
	return nil
}

// splitSample breaks a sample line into name, parsed labels and the value
// token (timestamps, legal per the format, are tolerated and ignored).
func splitSample(line string) (name string, labels map[string]string, value string, err error) {
	labels = map[string]string{}
	rest := line
	if i := strings.IndexByte(line, '{'); i >= 0 {
		name = line[:i]
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", nil, "", fmt.Errorf("unterminated label set: %q", line)
		}
		if labels, err = parseLabels(line[i+1 : j]); err != nil {
			return "", nil, "", err
		}
		rest = strings.TrimSpace(line[j+1:])
	} else {
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return "", nil, "", fmt.Errorf("sample without value: %q", line)
		}
		name = fields[0]
		rest = strings.Join(fields[1:], " ")
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, "", fmt.Errorf("want value (and optional timestamp), got %q", rest)
	}
	return name, labels, fields[0], nil
}

// parseLabels parses a label body: name="value" pairs, comma-separated,
// values quoted with \" \\ \n escapes.
func parseLabels(body string) (map[string]string, error) {
	out := map[string]string{}
	for body != "" {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return nil, fmt.Errorf("label without '=': %q", body)
		}
		lname := body[:eq]
		if !validLabelName(lname) {
			return nil, fmt.Errorf("invalid label name %q", lname)
		}
		rest := body[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("label %s: unquoted value", lname)
		}
		val, consumed, err := scanQuoted(rest)
		if err != nil {
			return nil, fmt.Errorf("label %s: %w", lname, err)
		}
		out[lname] = val
		body = rest[consumed:]
		if body != "" {
			if body[0] != ',' {
				return nil, fmt.Errorf("label %s: expected ',' after value", lname)
			}
			body = body[1:]
		}
	}
	return out, nil
}

// scanQuoted reads a quoted label value starting at s[0] == '"', returning
// the unescaped value and how many input bytes it spanned.
func scanQuoted(s string) (string, int, error) {
	var b strings.Builder
	for i := 1; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) {
				return "", 0, fmt.Errorf("dangling escape")
			}
			i++
			switch s[i] {
			case '"', '\\':
				b.WriteByte(s[i])
			case 'n':
				b.WriteByte('\n')
			default:
				return "", 0, fmt.Errorf("bad escape \\%c", s[i])
			}
		case '"':
			return b.String(), i + 1, nil
		default:
			b.WriteByte(s[i])
		}
	}
	return "", 0, fmt.Errorf("unterminated quoted value")
}

// parsePromValue parses a sample value: a float, +Inf, -Inf or NaN.
func parsePromValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// validMetricName reports whether s matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', c == '_', c == ':':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// validLabelName reports whether s matches [a-zA-Z_][a-zA-Z0-9_]*.
func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', c == '_':
		case '0' <= c && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
