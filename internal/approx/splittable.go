// Package approx implements the strongly polynomial constant-factor
// approximation algorithms of Section 3 of Jansen, Lassota, Maack
// (SPAA 2020): the 2-approximation for the splittable and preemptive
// variants (Algorithm 1 and its Algorithm 2 extension) and the
// 7/3-approximation for the non-preemptive variant (Theorem 6).
//
// All three share the paper's framework: guess the makespan T via the
// "advanced" binary search along class borders P_u/k (Lemma 2), split
// classes whose accumulated load exceeds T into the minimum number of
// sub-classes any schedule with makespan T must use, and distribute the
// sub-classes by round robin in non-ascending load order (Lemma 3).
//
// All cutting and load accounting runs on rat.R, the int64 fraction fast
// path of internal/rat; *big.Rat appears only in the result structs at the
// API boundary.
package approx

import (
	"fmt"
	"math/big"
	"sort"

	"ccsched/internal/core"
	"ccsched/internal/rat"
)

// DefaultExplicitMachineLimit is the machine count up to which the
// splittable solver emits an explicit piece-per-machine schedule by default.
const DefaultExplicitMachineLimit int64 = 1 << 16

// Options configures SolveSplittableOpts. The zero value selects defaults,
// so passing Options{} is always safe. Options values are read-only during a
// solve: unlike the former package-level ExplicitMachineLimit global,
// concurrent solvers with different options do not race.
type Options struct {
	// ExplicitMachineLimit bounds the number of machines for which the
	// solver emits an explicit piece-per-machine schedule in addition to the
	// compact machine-group form. Above the limit it switches to the compact
	// construction of Theorem 4's "Handling an Exponential Number of
	// Machines" paragraph. Zero selects DefaultExplicitMachineLimit.
	ExplicitMachineLimit int64
}

func (o Options) explicitLimit() int64 {
	if o.ExplicitMachineLimit > 0 {
		return o.ExplicitMachineLimit
	}
	return DefaultExplicitMachineLimit
}

// SplitResult is the output of SolveSplittable.
type SplitResult struct {
	// Compact is the schedule in machine-group form; always populated.
	Compact *core.CompactSplitSchedule
	// Explicit is the piece-per-machine form. It is populated when the
	// machine count is at most the explicit-machine limit, and also when
	// the compact construction fell back to the explicit one (m < C; see
	// errCompactNeedsExplicit).
	Explicit *core.SplitSchedule
	// Guess is the accepted makespan guess T̂ = max(LB, smallest feasible
	// border); the schedule's makespan is at most LB + T̂ ≤ 2·OPT.
	Guess *big.Rat
	// LB is the area lower bound Σp_j/m.
	LB *big.Rat
	// SubClasses is the number of sub-classes after splitting.
	SubClasses int64
}

// Makespan returns the schedule's makespan.
func (r *SplitResult) Makespan() *big.Rat { return r.Compact.Makespan() }

// pieceRef is a fragment of a job inside a sub-class.
type pieceRef struct {
	job  int
	size rat.R
}

// bundle is a sub-class: a set of job fragments of one class with
// accumulated load at most the guess T̂.
type bundle struct {
	class  int
	load   rat.R
	pieces []pieceRef
}

// SolveSplittable runs Algorithm 1 with default options.
func SolveSplittable(in *core.Instance) (*SplitResult, error) {
	return SolveSplittableOpts(in, Options{})
}

// SolveSplittableOpts runs Algorithm 1 and returns a feasible schedule with
// makespan at most 2·OPT in time O(n² log n), for any machine count
// (Theorem 4). It returns core.ErrInfeasible when C > c·m.
func SolveSplittableOpts(in *core.Instance, opts Options) (*SplitResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	lb := rat.Frac(in.TotalLoad(), in.M)
	border, err := core.SlotLowerBoundSplitR(in)
	if err != nil {
		return nil, err
	}
	// T̂ = max(LB, smallest feasible border). Both terms lower-bound OPT and
	// the slot count is monotone, so T̂ stays feasible; cutting at T̂ ≥ LB
	// additionally caps the number of full-size windows by ΣP/T̂ ≤ m, which
	// the compact path relies on.
	guess := rat.Max(lb, border)
	if in.N() == 0 {
		return &SplitResult{Compact: &core.CompactSplitSchedule{}, Guess: guess.Rat(), LB: lb.Rat()}, nil
	}
	if in.M <= opts.explicitLimit() {
		return solveSplittableExplicit(in, lb, guess)
	}
	res, err := solveSplittableCompact(in, lb, guess)
	if err == errCompactNeedsExplicit {
		// The compact pairing requires m ≥ C (see solveSplittableCompact);
		// m < C ≤ n here, so the explicit construction is polynomial.
		return solveSplittableExplicit(in, lb, guess)
	}
	return res, err
}

// errCompactNeedsExplicit reports that the compact construction's
// remainder/full-window pairing cannot finish because m < C; callers fall
// back to the explicit round-robin construction, which handles several
// sub-classes per machine.
var errCompactNeedsExplicit = fmt.Errorf("approx: compact construction needs m >= C")

// cutClasses slices every class into sub-classes of load at most t: full
// windows of size exactly t plus at most one remainder per class. Jobs are
// consumed in index order, so a job is cut only at window boundaries. All
// arithmetic stays on rat.R values; no per-window heap rationals are
// allocated.
func cutClasses(in *core.Instance, t rat.R) []bundle {
	byClass := in.ClassJobs()
	var out []bundle
	for u, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		cur := bundle{class: u}
		for _, j := range jobs {
			remaining := rat.FromInt(in.P[j])
			for remaining.Sign() > 0 {
				room := t.Sub(cur.load)
				take := remaining
				if take.Cmp(room) > 0 {
					take = room
				}
				cur.pieces = append(cur.pieces, pieceRef{job: j, size: take})
				cur.load = cur.load.Add(take)
				remaining = remaining.Sub(take)
				if cur.load.Cmp(t) == 0 {
					out = append(out, cur)
					cur = bundle{class: u}
				}
			}
		}
		if cur.load.Sign() > 0 {
			out = append(out, cur)
		}
	}
	return out
}

// sortBundles orders sub-classes by non-ascending load; ties keep the
// construction order so that consecutive windows of one class stay adjacent
// (the preemptive repacking argument relies on this).
func sortBundles(bs []bundle) {
	sort.SliceStable(bs, func(a, b int) bool { return bs[a].load.Cmp(bs[b].load) > 0 })
}

// roundRobin assigns sub-classes cyclically to machines 0..m-1 in the given
// order and returns, per machine, the indices of its sub-classes.
func roundRobin(count int, m int64) [][]int {
	if int64(count) < m {
		m = int64(count)
	}
	if m == 0 {
		return nil
	}
	out := make([][]int, m)
	for i := 0; i < count; i++ {
		out[int64(i)%m] = append(out[int64(i)%m], i)
	}
	return out
}

func solveSplittableExplicit(in *core.Instance, lb, guess rat.R) (*SplitResult, error) {
	bundles := cutClasses(in, guess)
	sortBundles(bundles)
	perMachine := roundRobin(len(bundles), in.M)
	sched := &core.SplitSchedule{}
	for i, idxs := range perMachine {
		for _, bi := range idxs {
			for _, pc := range bundles[bi].pieces {
				sched.Pieces = append(sched.Pieces, core.SplitPiece{
					Job: pc.job, Machine: int64(i), Size: pc.size,
				})
			}
		}
	}
	return &SplitResult{
		Compact:    core.FromSplit(sched),
		Explicit:   sched,
		Guess:      guess.Rat(),
		LB:         lb.Rat(),
		SubClasses: int64(len(bundles)),
	}, nil
}

// solveSplittableCompact emits a machine-group schedule whose encoding stays
// polynomial in n even for exponential m. The construction follows the
// paper: only the C remainder sub-classes are handled explicitly; full
// windows of size exactly T̂ are stored as run-length groups (per job, since
// a class's interior windows consist of a single job's fragments), and any
// overflow beyond m machines pairs a remainder with a full window — feasible
// because overflow forces c ≥ 2.
func solveSplittableCompact(in *core.Instance, lb, guess rat.R) (*SplitResult, error) {
	byClass := in.ClassJobs()
	type fullRun struct { // count machines, each one piece (job, T̂)
		job   int
		count int64
	}
	var runs []fullRun
	var windows []bundle    // explicit full windows spanning a job boundary
	var remainders []bundle // per-class remainder, load < T̂
	for u, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		cur := bundle{class: u}
		for _, j := range jobs {
			remaining := rat.FromInt(in.P[j])
			// Fill the open boundary window first.
			if cur.load.Sign() > 0 {
				room := guess.Sub(cur.load)
				take := remaining
				if take.Cmp(room) > 0 {
					take = room
				}
				cur.pieces = append(cur.pieces, pieceRef{job: j, size: take})
				cur.load = cur.load.Add(take)
				remaining = remaining.Sub(take)
				if cur.load.Cmp(guess) == 0 {
					windows = append(windows, cur)
					cur = bundle{class: u}
				}
			}
			if remaining.Sign() == 0 {
				continue
			}
			// Whole windows of this job alone: count = floor(remaining/T̂).
			if full := remaining.FloorQuo(guess); full > 0 {
				runs = append(runs, fullRun{job: j, count: full})
				remaining = remaining.Sub(guess.MulInt(full))
			}
			if remaining.Sign() > 0 {
				cur.pieces = append(cur.pieces, pieceRef{job: j, size: remaining})
				cur.load = remaining
			}
		}
		if cur.load.Sign() > 0 {
			remainders = append(remainders, cur)
		}
	}
	var fullCount int64
	for _, r := range runs {
		fullCount += r.count
	}
	fullCount += int64(len(windows))
	total := fullCount + int64(len(remainders))
	overflow := total - in.M
	if overflow > 0 && in.Slots < 2 {
		// Cannot happen: overflow implies the slot count at T̂ exceeds m,
		// yet feasibility guarantees count ≤ c·m, so c ≥ 2.
		return nil, fmt.Errorf("approx: internal error: overflow %d with c=1", overflow)
	}
	sched := &core.CompactSplitSchedule{}
	// Pair `overflow` remainders with full windows drawn from the runs.
	paired := int64(0)
	for paired < overflow && len(remainders) > 0 {
		rem := remainders[len(remainders)-1]
		remainders = remainders[:len(remainders)-1]
		// Draw one full window: prefer run groups, fall back to explicit
		// boundary windows.
		var pieces []core.GroupPiece
		switch {
		case len(runs) > 0:
			r := &runs[len(runs)-1]
			pieces = append(pieces, core.GroupPiece{Job: r.job, Size: guess})
			r.count--
			if r.count == 0 {
				runs = runs[:len(runs)-1]
			}
		case len(windows) > 0:
			w := windows[len(windows)-1]
			windows = windows[:len(windows)-1]
			for _, pc := range w.pieces {
				pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
			}
		default:
			return nil, errCompactNeedsExplicit
		}
		for _, pc := range rem.pieces {
			pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
		}
		sched.Groups = append(sched.Groups, core.MachineGroup{Count: 1, Pieces: pieces})
		paired++
	}
	if paired < overflow {
		return nil, errCompactNeedsExplicit
	}
	for _, r := range runs {
		sched.Groups = append(sched.Groups, core.MachineGroup{
			Count:  r.count,
			Pieces: []core.GroupPiece{{Job: r.job, Size: guess}},
		})
	}
	for _, w := range windows {
		var pieces []core.GroupPiece
		for _, pc := range w.pieces {
			pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
		}
		sched.Groups = append(sched.Groups, core.MachineGroup{Count: 1, Pieces: pieces})
	}
	for _, rem := range remainders {
		var pieces []core.GroupPiece
		for _, pc := range rem.pieces {
			pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
		}
		sched.Groups = append(sched.Groups, core.MachineGroup{Count: 1, Pieces: pieces})
	}
	return &SplitResult{
		Compact:    sched,
		Guess:      guess.Rat(),
		LB:         lb.Rat(),
		SubClasses: total,
	}, nil
}
