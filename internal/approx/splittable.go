// Package approx implements the strongly polynomial constant-factor
// approximation algorithms of Section 3 of Jansen, Lassota, Maack
// (SPAA 2020): the 2-approximation for the splittable and preemptive
// variants (Algorithm 1 and its Algorithm 2 extension) and the
// 7/3-approximation for the non-preemptive variant (Theorem 6).
//
// All three share the paper's framework: guess the makespan T via the
// "advanced" binary search along class borders P_u/k (Lemma 2), split
// classes whose accumulated load exceeds T into the minimum number of
// sub-classes any schedule with makespan T must use, and distribute the
// sub-classes by round robin in non-ascending load order (Lemma 3).
package approx

import (
	"fmt"
	"math/big"
	"sort"

	"ccsched/internal/core"
)

// ExplicitMachineLimit bounds the number of machines for which the
// splittable solver emits an explicit piece-per-machine schedule. Above the
// limit it switches to the compact machine-group construction of Theorem 4's
// "Handling an Exponential Number of Machines" paragraph. Variable so tests
// can force either path.
var ExplicitMachineLimit int64 = 1 << 16

// SplitResult is the output of SolveSplittable.
type SplitResult struct {
	// Compact is the schedule in machine-group form; always populated.
	Compact *core.CompactSplitSchedule
	// Explicit is the piece-per-machine form, populated only when the
	// machine count is at most ExplicitMachineLimit.
	Explicit *core.SplitSchedule
	// Guess is the accepted makespan guess T̂ = max(LB, smallest feasible
	// border); the schedule's makespan is at most LB + T̂ ≤ 2·OPT.
	Guess *big.Rat
	// LB is the area lower bound Σp_j/m.
	LB *big.Rat
	// SubClasses is the number of sub-classes after splitting.
	SubClasses int64
}

// Makespan returns the schedule's makespan.
func (r *SplitResult) Makespan() *big.Rat { return r.Compact.Makespan() }

// pieceRef is a fragment of a job inside a sub-class.
type pieceRef struct {
	job  int
	size *big.Rat
}

// bundle is a sub-class: a set of job fragments of one class with
// accumulated load at most the guess T̂.
type bundle struct {
	class  int
	load   *big.Rat
	pieces []pieceRef
}

// SolveSplittable runs Algorithm 1 and returns a feasible schedule with
// makespan at most 2·OPT in time O(n² log n), for any machine count
// (Theorem 4). It returns core.ErrInfeasible when C > c·m.
func SolveSplittable(in *core.Instance) (*SplitResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	lb := core.RatFrac(in.TotalLoad(), in.M)
	border, err := core.SlotLowerBoundSplit(in)
	if err != nil {
		return nil, err
	}
	// T̂ = max(LB, smallest feasible border). Both terms lower-bound OPT and
	// the slot count is monotone, so T̂ stays feasible; cutting at T̂ ≥ LB
	// additionally caps the number of full-size windows by ΣP/T̂ ≤ m, which
	// the compact path relies on.
	guess := core.RatMax(lb, border)
	if in.N() == 0 {
		return &SplitResult{Compact: &core.CompactSplitSchedule{}, Guess: guess, LB: lb}, nil
	}
	if in.M <= ExplicitMachineLimit {
		return solveSplittableExplicit(in, lb, guess)
	}
	return solveSplittableCompact(in, lb, guess)
}

// cutClasses slices every class into sub-classes of load at most t: full
// windows of size exactly t plus at most one remainder per class. Jobs are
// consumed in index order, so a job is cut only at window boundaries.
func cutClasses(in *core.Instance, t *big.Rat) []bundle {
	byClass := in.ClassJobs()
	var out []bundle
	for u, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		cur := bundle{class: u, load: new(big.Rat)}
		for _, j := range jobs {
			remaining := core.RatInt(in.P[j])
			for remaining.Sign() > 0 {
				room := core.RatSub(t, cur.load)
				take := remaining
				if take.Cmp(room) > 0 {
					take = room
				}
				cur.pieces = append(cur.pieces, pieceRef{job: j, size: new(big.Rat).Set(take)})
				cur.load = core.RatAdd(cur.load, take)
				remaining = core.RatSub(remaining, take)
				if cur.load.Cmp(t) == 0 {
					out = append(out, cur)
					cur = bundle{class: u, load: new(big.Rat)}
				}
			}
		}
		if cur.load.Sign() > 0 {
			out = append(out, cur)
		}
	}
	return out
}

// sortBundles orders sub-classes by non-ascending load; ties keep the
// construction order so that consecutive windows of one class stay adjacent
// (the preemptive repacking argument relies on this).
func sortBundles(bs []bundle) {
	sort.SliceStable(bs, func(a, b int) bool { return bs[a].load.Cmp(bs[b].load) > 0 })
}

// roundRobin assigns sub-classes cyclically to machines 0..m-1 in the given
// order and returns, per machine, the indices of its sub-classes.
func roundRobin(count int, m int64) [][]int {
	if int64(count) < m {
		m = int64(count)
	}
	if m == 0 {
		return nil
	}
	out := make([][]int, m)
	for i := 0; i < count; i++ {
		out[int64(i)%m] = append(out[int64(i)%m], i)
	}
	return out
}

func solveSplittableExplicit(in *core.Instance, lb, guess *big.Rat) (*SplitResult, error) {
	bundles := cutClasses(in, guess)
	sortBundles(bundles)
	perMachine := roundRobin(len(bundles), in.M)
	sched := &core.SplitSchedule{}
	for i, idxs := range perMachine {
		for _, bi := range idxs {
			for _, pc := range bundles[bi].pieces {
				sched.Pieces = append(sched.Pieces, core.SplitPiece{
					Job: pc.job, Machine: int64(i), Size: pc.size,
				})
			}
		}
	}
	return &SplitResult{
		Compact:    core.FromSplit(sched),
		Explicit:   sched,
		Guess:      guess,
		LB:         lb,
		SubClasses: int64(len(bundles)),
	}, nil
}

// solveSplittableCompact emits a machine-group schedule whose encoding stays
// polynomial in n even for exponential m. The construction follows the
// paper: only the C remainder sub-classes are handled explicitly; full
// windows of size exactly T̂ are stored as run-length groups (per job, since
// a class's interior windows consist of a single job's fragments), and any
// overflow beyond m machines pairs a remainder with a full window — feasible
// because overflow forces c ≥ 2.
func solveSplittableCompact(in *core.Instance, lb, guess *big.Rat) (*SplitResult, error) {
	byClass := in.ClassJobs()
	type fullRun struct { // count machines, each one piece (job, T̂)
		job   int
		count int64
	}
	var runs []fullRun
	var windows []bundle    // explicit full windows spanning a job boundary
	var remainders []bundle // per-class remainder, load < T̂
	for u, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		cur := bundle{class: u, load: new(big.Rat)}
		for _, j := range jobs {
			remaining := core.RatInt(in.P[j])
			// Fill the open boundary window first.
			if cur.load.Sign() > 0 {
				room := core.RatSub(guess, cur.load)
				take := remaining
				if take.Cmp(room) > 0 {
					take = room
				}
				cur.pieces = append(cur.pieces, pieceRef{job: j, size: new(big.Rat).Set(take)})
				cur.load = core.RatAdd(cur.load, take)
				remaining = core.RatSub(remaining, take)
				if cur.load.Cmp(guess) == 0 {
					windows = append(windows, cur)
					cur = bundle{class: u, load: new(big.Rat)}
				}
			}
			if remaining.Sign() == 0 {
				continue
			}
			// Whole windows of this job alone: count = floor(remaining/T̂).
			q := new(big.Rat).Quo(remaining, guess)
			full := new(big.Int).Quo(q.Num(), q.Denom())
			if full.Sign() > 0 {
				cnt := full.Int64()
				runs = append(runs, fullRun{job: j, count: cnt})
				used := core.RatMul(guess, new(big.Rat).SetInt(full))
				remaining = core.RatSub(remaining, used)
			}
			if remaining.Sign() > 0 {
				cur.pieces = append(cur.pieces, pieceRef{job: j, size: remaining})
				cur.load = new(big.Rat).Set(remaining)
			}
		}
		if cur.load.Sign() > 0 {
			remainders = append(remainders, cur)
		}
	}
	var fullCount int64
	for _, r := range runs {
		fullCount += r.count
	}
	fullCount += int64(len(windows))
	total := fullCount + int64(len(remainders))
	overflow := total - in.M
	if overflow > 0 && in.Slots < 2 {
		// Cannot happen: overflow implies the slot count at T̂ exceeds m,
		// yet feasibility guarantees count ≤ c·m, so c ≥ 2.
		return nil, fmt.Errorf("approx: internal error: overflow %d with c=1", overflow)
	}
	sched := &core.CompactSplitSchedule{}
	// Pair `overflow` remainders with full windows drawn from the runs.
	paired := int64(0)
	for paired < overflow && len(remainders) > 0 {
		rem := remainders[len(remainders)-1]
		remainders = remainders[:len(remainders)-1]
		// Draw one full window: prefer run groups, fall back to explicit
		// boundary windows.
		var pieces []core.GroupPiece
		switch {
		case len(runs) > 0:
			r := &runs[len(runs)-1]
			pieces = append(pieces, core.GroupPiece{Job: r.job, Size: new(big.Rat).Set(guess)})
			r.count--
			if r.count == 0 {
				runs = runs[:len(runs)-1]
			}
		case len(windows) > 0:
			w := windows[len(windows)-1]
			windows = windows[:len(windows)-1]
			for _, pc := range w.pieces {
				pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
			}
		default:
			return nil, fmt.Errorf("approx: internal error: overflow without full windows")
		}
		for _, pc := range rem.pieces {
			pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
		}
		sched.Groups = append(sched.Groups, core.MachineGroup{Count: 1, Pieces: pieces})
		paired++
	}
	if paired < overflow {
		return nil, fmt.Errorf("approx: internal error: could not place %d overflow sub-classes", overflow-paired)
	}
	for _, r := range runs {
		sched.Groups = append(sched.Groups, core.MachineGroup{
			Count:  r.count,
			Pieces: []core.GroupPiece{{Job: r.job, Size: new(big.Rat).Set(guess)}},
		})
	}
	for _, w := range windows {
		var pieces []core.GroupPiece
		for _, pc := range w.pieces {
			pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
		}
		sched.Groups = append(sched.Groups, core.MachineGroup{Count: 1, Pieces: pieces})
	}
	for _, rem := range remainders {
		var pieces []core.GroupPiece
		for _, pc := range rem.pieces {
			pieces = append(pieces, core.GroupPiece{Job: pc.job, Size: pc.size})
		}
		sched.Groups = append(sched.Groups, core.MachineGroup{Count: 1, Pieces: pieces})
	}
	return &SplitResult{
		Compact:    sched,
		Guess:      guess,
		LB:         lb,
		SubClasses: total,
	}, nil
}
