package approx

import (
	"math/big"
	"testing"

	"ccsched/internal/core"
	"ccsched/internal/generator"
	"ccsched/internal/rat"
)

// ratioAtMost reports whether makespan/lb <= bound (bound given as num/den).
func ratioAtMost(t *testing.T, name string, makespan, lb *big.Rat, num, den int64) {
	t.Helper()
	if lb.Sign() == 0 {
		t.Fatalf("%s: zero lower bound", name)
	}
	limit := core.RatMul(lb, core.RatFrac(num, den))
	if makespan.Cmp(limit) > 0 {
		ratio := new(big.Rat).Quo(makespan, lb)
		t.Errorf("%s: makespan %s exceeds %d/%d x LB %s (ratio %.4f)",
			name, makespan.RatString(), num, den, lb.RatString(), core.RatFloat(ratio))
	}
}

func testConfigs() []generator.Config {
	return []generator.Config{
		{N: 1, Classes: 1, Machines: 1, Slots: 1, Seed: 1},
		{N: 12, Classes: 3, Machines: 4, Slots: 2, PMax: 50, Seed: 2},
		{N: 40, Classes: 8, Machines: 5, Slots: 2, PMax: 100, Seed: 3},
		{N: 100, Classes: 15, Machines: 7, Slots: 3, PMax: 1000, Seed: 4},
		{N: 60, Classes: 30, Machines: 3, Slots: 12, PMax: 9, Seed: 5},
		{N: 25, Classes: 25, Machines: 10, Slots: 1, PMax: 64, Seed: 6},
	}
}

func TestSolveSplittableAcrossFamilies(t *testing.T) {
	for _, fam := range generator.Families() {
		for ci, cfg := range testConfigs() {
			in := fam.Gen(cfg)
			res, err := SolveSplittable(in)
			if err != nil {
				t.Fatalf("%s/%d: %v", fam.Name, ci, err)
			}
			if err := res.Compact.Validate(in); err != nil {
				t.Fatalf("%s/%d: invalid compact schedule: %v", fam.Name, ci, err)
			}
			if res.Explicit != nil {
				if err := res.Explicit.Validate(in); err != nil {
					t.Fatalf("%s/%d: invalid explicit schedule: %v", fam.Name, ci, err)
				}
			}
			lb, err := core.LowerBound(in, core.Splittable)
			if err != nil {
				t.Fatal(err)
			}
			ratioAtMost(t, fam.Name, res.Makespan(), lb, 2, 1)
		}
	}
}

func TestSolveSplittableGuessIsLowerBound(t *testing.T) {
	// The accepted guess max(LB, border) equals the certified lower bound,
	// so Guess <= OPT always holds.
	in := generator.Uniform(generator.Config{N: 50, Classes: 9, Machines: 6, Slots: 2, Seed: 8})
	res, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	if res.Guess.Cmp(lb) != 0 {
		t.Errorf("Guess = %s, certified LB = %s", res.Guess.RatString(), lb.RatString())
	}
}

func TestSolveSplittableSingleJob(t *testing.T) {
	in := &core.Instance{P: []int64{100}, Class: []int{0}, M: 4, Slots: 1}
	res, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Splittable optimum is 25: the single class splits onto all machines.
	if got := res.Makespan(); got.Cmp(core.RatInt(50)) > 0 {
		t.Errorf("makespan %s exceeds 2 x 25", got.RatString())
	}
}

func TestSolveSplittableInfeasible(t *testing.T) {
	in := &core.Instance{P: []int64{1, 1, 1}, Class: []int{0, 1, 2}, M: 1, Slots: 2}
	if _, err := SolveSplittable(in); err == nil {
		t.Error("want infeasibility error")
	}
}

func TestSolveSplittableHugeMachines(t *testing.T) {
	in := &core.Instance{
		P:     []int64{1000, 999, 500, 123, 77, 3},
		Class: []int{0, 1, 1, 2, 3, 3},
		M:     1 << 45,
		Slots: 1,
	}
	res, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explicit != nil {
		t.Error("huge m should use the compact path")
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatalf("invalid compact schedule: %v", err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "huge-m", res.Makespan(), lb, 2, 1)
}

func TestCompactPathMatchesExplicitQuality(t *testing.T) {
	// Force the compact path on a moderate instance and compare against the
	// explicit path: both must be feasible and within ratio 2.
	in := generator.Uniform(generator.Config{N: 40, Classes: 6, Machines: 9, Slots: 2, PMax: 300, Seed: 17})
	explicit, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	compact, err := SolveSplittableOpts(in, Options{ExplicitMachineLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if compact.Explicit != nil {
		t.Fatal("expected compact-only result")
	}
	if err := compact.Compact.Validate(in); err != nil {
		t.Fatalf("compact path invalid: %v", err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "explicit", explicit.Makespan(), lb, 2, 1)
	ratioAtMost(t, "compact", compact.Makespan(), lb, 2, 1)
}

func TestCompactExpandRoundTrip(t *testing.T) {
	in := generator.FewLargeClasses(generator.Config{N: 20, Classes: 4, Machines: 6, Slots: 2, PMax: 40, Seed: 23})
	res, err := SolveSplittableOpts(in, Options{ExplicitMachineLimit: 1})
	if err != nil {
		t.Fatal(err)
	}
	exp, err := res.Compact.Expand(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	if err := exp.Validate(in); err != nil {
		t.Fatalf("expanded schedule invalid: %v", err)
	}
	if exp.Makespan().Cmp(res.Compact.Makespan()) != 0 {
		t.Error("expansion changed the makespan")
	}
}

func TestCutClassesInvariants(t *testing.T) {
	in := generator.Zipf(generator.Config{N: 80, Classes: 10, Machines: 5, Slots: 3, PMax: 200, Seed: 31})
	guess := rat.FromInt(137)
	bundles := cutClasses(in, guess)
	perJob := make(map[int]rat.R)
	for _, b := range bundles {
		if b.load.Cmp(guess) > 0 {
			t.Errorf("bundle load %s exceeds guess", b.load.RatString())
		}
		var sum rat.R
		for _, pc := range b.pieces {
			if in.Class[pc.job] != b.class {
				t.Errorf("bundle of class %d contains job %d of class %d", b.class, pc.job, in.Class[pc.job])
			}
			sum = sum.Add(pc.size)
			perJob[pc.job] = perJob[pc.job].Add(pc.size)
		}
		if sum.Cmp(b.load) != 0 {
			t.Error("bundle load does not match its pieces")
		}
	}
	for j := range in.P {
		if perJob[j].Cmp(rat.FromInt(in.P[j])) != 0 {
			t.Errorf("job %d not fully covered by bundles", j)
		}
	}
	// Sub-class count must match the slot formula Σ⌈P_u/T⌉.
	var want int64
	for _, pu := range in.ClassLoads() {
		want += core.RatCeilDiv(pu, 137)
	}
	if int64(len(bundles)) != want {
		t.Errorf("got %d bundles, want %d", len(bundles), want)
	}
}

func TestFigure1RoundRobinLayout(t *testing.T) {
	// Figure 1: classes sorted by load are dealt cyclically onto 4 machines:
	// class ranked i lands on machine i mod 4.
	in := generator.Figure1Instance()
	res, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Explicit == nil {
		t.Fatal("expected explicit schedule")
	}
	if err := res.Explicit.Validate(in); err != nil {
		t.Fatal(err)
	}
	// No class load exceeds the guess (total load 123 / 4 machines ≈ 30.75),
	// so classes map 1:1 to bundles and the round-robin rank equals the load
	// rank. Job u has load rank u (loads strictly decreasing).
	for _, pc := range res.Explicit.Pieces {
		want := int64(pc.Job % 4)
		if pc.Machine != want {
			t.Errorf("class %d on machine %d, want %d", pc.Job, pc.Machine, want)
		}
	}
	// Lemma 3: makespan <= sum/m + max class load = 123/4 + 20.
	limit := core.RatAdd(core.RatFrac(123, 4), core.RatInt(20))
	if res.Makespan().Cmp(limit) > 0 {
		t.Errorf("makespan %s violates the Lemma 3 bound %s", res.Makespan().RatString(), limit.RatString())
	}
}

func TestBorderVsPlainSearch(t *testing.T) {
	for _, cfg := range testConfigs() {
		in := generator.Uniform(cfg)
		border, err := BorderSearchBound(in)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := PlainIntegerBound(in)
		if err != nil {
			t.Fatal(err)
		}
		// border <= plain <= ceil(border)
		if core.RatInt(plain).Cmp(border) < 0 {
			t.Errorf("plain %d below border %s", plain, border.RatString())
		}
		ceil := new(big.Int).Add(
			new(big.Int).Quo(new(big.Int).Sub(border.Num(), big.NewInt(1)), border.Denom()),
			big.NewInt(1))
		if big.NewInt(plain).Cmp(ceil) > 0 {
			t.Errorf("plain %d above ceil(border) %s", plain, ceil.String())
		}
	}
}
