package approx

import (
	"testing"

	"ccsched/internal/core"
)

// TestSplittableHugeMOneSlot: the compact path with c = 1 must never stack
// two classes on one machine (the overflow-pairing branch requires c ≥ 2,
// which feasibility guarantees whenever stacking is needed).
func TestSplittableHugeMOneSlot(t *testing.T) {
	in := &core.Instance{
		P:     []int64{1 << 20, 1 << 18, 999},
		Class: []int{0, 1, 2},
		M:     1 << 30,
		Slots: 1,
	}
	res, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	for gi, g := range res.Compact.Groups {
		classes := map[int]bool{}
		for _, pc := range g.Pieces {
			classes[in.Class[pc.Job]] = true
		}
		if len(classes) > 1 {
			t.Errorf("group %d mixes %d classes with c=1", gi, len(classes))
		}
	}
}

// TestSplittableHugeMSingleClass: one giant class across an astronomical
// machine count exercises the per-job run-length splitting.
func TestSplittableHugeMSingleClass(t *testing.T) {
	in := &core.Instance{
		P:     []int64{1 << 40, 1 << 39, 12345},
		Class: []int{0, 0, 0},
		M:     1 << 44,
		Slots: 3,
	}
	res, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	lb, err := core.LowerBound(in, core.Splittable)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "single-class-huge", res.Makespan(), lb, 2, 1)
	if len(res.Compact.Groups) > 32 {
		t.Errorf("compact encoding has %d groups for 3 jobs", len(res.Compact.Groups))
	}
}

// TestPreemptiveSingleMachine: m = 1 degenerates to sequential execution.
func TestPreemptiveSingleMachine(t *testing.T) {
	in := &core.Instance{P: []int64{4, 6, 2}, Class: []int{0, 1, 0}, M: 1, Slots: 2}
	res, err := SolvePreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	if res.Makespan().Cmp(core.RatInt(12)) != 0 {
		t.Errorf("makespan %s, want 12 (sequential)", res.Makespan().RatString())
	}
}

// TestNonPreemptiveSingleJobClasses: C = n with c = 1 forces a pure
// load-balancing instance.
func TestNonPreemptiveSingleJobClasses(t *testing.T) {
	in := &core.Instance{
		P:     []int64{9, 7, 5, 3, 1},
		Class: []int{0, 1, 2, 3, 4},
		M:     2,
		Slots: 3,
	}
	res, err := SolveNonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	lb, err := core.LowerBound(in, core.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "unit-classes", core.RatInt(res.Makespan(in)), lb, 7, 3)
}

// TestSplittableEqualLoadsTie: identical class loads stress the stable
// ordering assumptions of round robin.
func TestSplittableEqualLoadsTie(t *testing.T) {
	in := &core.Instance{
		P:     []int64{10, 10, 10, 10, 10, 10},
		Class: []int{0, 1, 2, 3, 4, 5},
		M:     3,
		Slots: 2,
	}
	res, err := SolveSplittable(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Compact.Validate(in); err != nil {
		t.Fatal(err)
	}
	// Perfectly balanced: 6 classes of 10 over 3 machines = 20 each,
	// and the guess equals the area bound, so round robin is optimal.
	if res.Makespan().Cmp(core.RatInt(20)) != 0 {
		t.Errorf("makespan %s, want 20", res.Makespan().RatString())
	}
}
