package approx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccsched/internal/core"
	"ccsched/internal/generator"
)

func TestSolveNonPreemptiveAcrossFamilies(t *testing.T) {
	for _, fam := range generator.Families() {
		for ci, cfg := range testConfigs() {
			in := fam.Gen(cfg)
			res, err := SolveNonPreemptive(in)
			if err != nil {
				t.Fatalf("%s/%d: %v", fam.Name, ci, err)
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Fatalf("%s/%d: invalid schedule: %v", fam.Name, ci, err)
			}
			lb, err := core.LowerBound(in, core.NonPreemptive)
			if err != nil {
				t.Fatal(err)
			}
			ratioAtMost(t, fam.Name, core.RatInt(res.Makespan(in)), lb, 7, 3)
		}
	}
}

func TestSolveNonPreemptiveManyMachinesIsOptimal(t *testing.T) {
	in := &core.Instance{
		P:     []int64{9, 5, 14, 2},
		Class: []int{0, 1, 0, 2},
		M:     4,
		Slots: 1,
	}
	res, err := SolveNonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan(in); got != 14 {
		t.Errorf("makespan %d, want p_max = 14 (optimal)", got)
	}
}

func TestSolveNonPreemptiveAdversarialThirds(t *testing.T) {
	// The regime where the 7/3 analysis is tight: jobs just above T/2 and
	// T/3 within each class.
	in := generator.AdversarialThirds(generator.Config{
		N: 48, Classes: 6, Machines: 6, Slots: 2, PMax: 600, Seed: 77,
	})
	res, err := SolveNonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	lb, err := core.LowerBound(in, core.NonPreemptive)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "thirds", core.RatInt(res.Makespan(in)), lb, 7, 3)
}

func TestSplitClassesLPTInvariants(t *testing.T) {
	in := generator.Uniform(generator.Config{N: 60, Classes: 5, Machines: 4, Slots: 3, PMax: 90, Seed: 41})
	tGuess := in.PMax() * 2
	groups := splitClassesLPT(in, tGuess)
	seen := make(map[int]bool)
	for _, g := range groups {
		var load int64
		for _, j := range g.jobs {
			if in.Class[j] != g.class {
				t.Errorf("group of class %d contains job %d of class %d", g.class, j, in.Class[j])
			}
			if seen[j] {
				t.Errorf("job %d appears in two groups", j)
			}
			seen[j] = true
			load += in.P[j]
		}
		if load != g.load {
			t.Errorf("group load %d does not match jobs (%d)", g.load, load)
		}
		// Theorem 6: LPT over C_u >= area groups stays within T + T/3.
		if g.load > tGuess+tGuess/3+1 {
			t.Errorf("group load %d exceeds 4/3 x %d", g.load, tGuess)
		}
	}
	for j := range in.P {
		if !seen[j] {
			t.Errorf("job %d not assigned to any group", j)
		}
	}
}

func TestSolveNonPreemptiveInfeasible(t *testing.T) {
	in := &core.Instance{P: []int64{3, 3, 3}, Class: []int{0, 1, 2}, M: 1, Slots: 1}
	if _, err := SolveNonPreemptive(in); err == nil {
		t.Error("want infeasibility error")
	}
}

func TestSolveNonPreemptiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		in := &core.Instance{M: 1 + int64(rng.Intn(6)), Slots: 1 + rng.Intn(3)}
		cc := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			in.P = append(in.P, 1+int64(rng.Intn(60)))
			in.Class = append(in.Class, rng.Intn(cc))
		}
		norm, _ := in.Normalize()
		if core.CheckFeasible(norm) != nil {
			return true
		}
		res, err := SolveNonPreemptive(norm)
		if err != nil {
			return false
		}
		if res.Schedule.Validate(norm) != nil {
			return false
		}
		lb, err := core.LowerBound(norm, core.NonPreemptive)
		if err != nil || lb.Sign() == 0 {
			return false
		}
		return core.RatInt(res.Makespan(norm)).Cmp(core.RatMul(lb, core.RatFrac(7, 3))) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

// TestSplittablePreemptiveNonPreemptiveOrdering checks the intuitive
// dominance between the three relaxations on identical instances: the
// splittable guess never exceeds the preemptive guess, which never exceeds
// the non-preemptive guess.
func TestVariantGuessOrdering(t *testing.T) {
	for i := 0; i < 20; i++ {
		in := generator.Uniform(generator.Config{
			N: 30, Classes: 6, Machines: 4, Slots: 2, PMax: 100, Seed: int64(100 + i),
		})
		sres, err := SolveSplittable(in)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := SolvePreemptive(in)
		if err != nil {
			t.Fatal(err)
		}
		nres, err := SolveNonPreemptive(in)
		if err != nil {
			t.Fatal(err)
		}
		if sres.Guess.Cmp(pres.Guess) > 0 {
			t.Errorf("seed %d: splittable guess %s > preemptive guess %s",
				100+i, sres.Guess.RatString(), pres.Guess.RatString())
		}
		if pres.Guess.Cmp(core.RatInt(nres.Guess)) > 0 {
			t.Errorf("seed %d: preemptive guess %s > non-preemptive guess %d",
				100+i, pres.Guess.RatString(), nres.Guess)
		}
	}
}
