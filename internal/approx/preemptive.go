package approx

import (
	"math/big"

	"ccsched/internal/core"
	"ccsched/internal/rat"
)

// PreemptiveResult is the output of SolvePreemptive.
type PreemptiveResult struct {
	Schedule *core.PreemptiveSchedule
	// Guess is the accepted makespan guess T̂ = max(p_max, LB, border).
	Guess *big.Rat
	// LB is max(p_max, Σp_j/m).
	LB *big.Rat
	// Repacked reports whether the Algorithm 2 shift was applied.
	Repacked bool
}

// Makespan returns the schedule's makespan.
func (r *PreemptiveResult) Makespan() *big.Rat { return r.Schedule.Makespan() }

// SolvePreemptive runs Algorithm 1 with the Algorithm 2 extension and
// returns a feasible preemptive schedule with makespan at most 2·OPT in
// time O(n² log n) (Theorem 5).
//
// Two adaptions distinguish it from the splittable case: the lower bound
// additionally covers p_max (a job cannot run in parallel with itself), and
// when a class was split — i.e. some sub-class has load exactly T̂ — every
// machine's schedule above its first sub-class is shifted to start at time
// T̂, which separates the two pieces of any cut job.
func SolvePreemptive(in *core.Instance) (*PreemptiveResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	// With m >= n an optimal schedule places every job on its own machine
	// and achieves p_max exactly, as observed in the proof of Theorem 5.
	if in.M >= int64(in.N()) {
		sched := &core.PreemptiveSchedule{}
		for j := range in.P {
			sched.Pieces = append(sched.Pieces, core.PreemptivePiece{
				Job: j, Machine: int64(j), Size: rat.FromInt(in.P[j]),
			})
		}
		pm := core.RatInt(in.PMax())
		return &PreemptiveResult{Schedule: sched, Guess: pm, LB: new(big.Rat).Set(pm)}, nil
	}
	lb := rat.Max(rat.FromInt(in.PMax()), rat.Frac(in.TotalLoad(), in.M))
	border, err := core.SlotLowerBoundSplitR(in)
	if err != nil {
		return nil, err
	}
	guess := rat.Max(lb, border)
	bundles := cutClasses(in, guess)
	sortBundles(bundles)
	// Algorithm 2's repack condition: some sub-class has load exactly T̂,
	// which happens exactly when a class with P_u > T̂ was split.
	repack := false
	for i := range bundles {
		if bundles[i].load.Cmp(guess) == 0 {
			repack = true
			break
		}
	}
	perMachine := roundRobin(len(bundles), in.M)
	sched := &core.PreemptiveSchedule{}
	for i, idxs := range perMachine {
		var clock rat.R
		for row, bi := range idxs {
			if repack && row == 1 && clock.Cmp(guess) < 0 {
				// Shift everything above the first sub-class to start at T̂.
				clock = guess
			}
			for _, pc := range bundles[bi].pieces {
				sched.Pieces = append(sched.Pieces, core.PreemptivePiece{
					Job: pc.job, Machine: int64(i), Start: clock, Size: pc.size,
				})
				clock = clock.Add(pc.size)
			}
		}
	}
	return &PreemptiveResult{Schedule: sched, Guess: guess.Rat(), LB: lb.Rat(), Repacked: repack}, nil
}
