package approx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccsched/internal/core"
	"ccsched/internal/generator"
)

func TestSolvePreemptiveAcrossFamilies(t *testing.T) {
	for _, fam := range generator.Families() {
		for ci, cfg := range testConfigs() {
			in := fam.Gen(cfg)
			res, err := SolvePreemptive(in)
			if err != nil {
				t.Fatalf("%s/%d: %v", fam.Name, ci, err)
			}
			if err := res.Schedule.Validate(in); err != nil {
				t.Fatalf("%s/%d: invalid schedule: %v", fam.Name, ci, err)
			}
			lb, err := core.LowerBound(in, core.Preemptive)
			if err != nil {
				t.Fatal(err)
			}
			ratioAtMost(t, fam.Name, res.Makespan(), lb, 2, 1)
		}
	}
}

func TestSolvePreemptiveManyMachinesIsOptimal(t *testing.T) {
	in := &core.Instance{
		P:     []int64{9, 5, 14, 2},
		Class: []int{0, 1, 0, 2},
		M:     10,
		Slots: 1,
	}
	res, err := SolvePreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
	if got := res.Makespan(); got.Cmp(core.RatInt(14)) != 0 {
		t.Errorf("makespan %s, want p_max = 14 (optimal)", got.RatString())
	}
}

// TestSolvePreemptiveRepackRegression rebuilds the adversarial instance for
// which stacking sub-classes directly from time zero makes the two pieces of
// a cut job overlap: the Algorithm 2 shift is required.
func TestSolvePreemptiveRepackRegression(t *testing.T) {
	// Class 0: one job of 2. Class 1: one job of 8. Class 2: jobs 9 and 5,
	// P_2 = 14 > T = 12, so job 1 of class 2 is cut at the window border.
	in := &core.Instance{
		P:     []int64{2, 8, 9, 5},
		Class: []int{0, 1, 2, 2},
		M:     2,
		Slots: 2,
	}
	res, err := SolvePreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Repacked {
		t.Error("expected the repacking branch to trigger")
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatalf("invalid schedule: %v", err)
	}
	lb, err := core.LowerBound(in, core.Preemptive)
	if err != nil {
		t.Fatal(err)
	}
	ratioAtMost(t, "repack", res.Makespan(), lb, 2, 1)
}

func TestSolvePreemptiveNoRepackWhenNoSplit(t *testing.T) {
	// All class loads below the guess: nothing is split, no repack.
	in := &core.Instance{
		P:     []int64{4, 4, 4, 4, 4, 4},
		Class: []int{0, 1, 2, 3, 4, 5},
		M:     2,
		Slots: 3,
	}
	res, err := SolvePreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Repacked {
		t.Error("no class was split; repack should not trigger")
	}
	if err := res.Schedule.Validate(in); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePreemptiveInfeasible(t *testing.T) {
	in := &core.Instance{P: []int64{3, 3, 3}, Class: []int{0, 1, 2}, M: 1, Slots: 1}
	if _, err := SolvePreemptive(in); err == nil {
		t.Error("want infeasibility error")
	}
}

// TestSolvePreemptiveProperty fuzzes random instances: the schedule must
// always validate (in particular, never run a job in parallel with itself)
// and stay within twice the certified lower bound.
func TestSolvePreemptiveProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		in := &core.Instance{M: 1 + int64(rng.Intn(6)), Slots: 1 + rng.Intn(3)}
		cc := 1 + rng.Intn(6)
		for j := 0; j < n; j++ {
			in.P = append(in.P, 1+int64(rng.Intn(60)))
			in.Class = append(in.Class, rng.Intn(cc))
		}
		norm, _ := in.Normalize()
		if core.CheckFeasible(norm) != nil {
			return true
		}
		res, err := SolvePreemptive(norm)
		if err != nil {
			return false
		}
		if res.Schedule.Validate(norm) != nil {
			return false
		}
		lb, err := core.LowerBound(norm, core.Preemptive)
		if err != nil || lb.Sign() == 0 {
			return false
		}
		return res.Makespan().Cmp(core.RatMul(lb, core.RatInt(2))) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}
