package approx

import (
	"sort"

	"ccsched/internal/core"
)

// NonPreemptiveResult is the output of SolveNonPreemptive.
type NonPreemptiveResult struct {
	Schedule *core.NonPreemptiveSchedule
	// Guess is the accepted integral makespan guess T̂.
	Guess int64
	// LB is max(p_max, ⌈Σp_j/m⌉).
	LB int64
	// Groups is the number of class groups after the C_u split.
	Groups int
}

// Makespan returns the schedule's makespan.
func (r *NonPreemptiveResult) Makespan(in *core.Instance) int64 { return r.Schedule.Makespan(in) }

// SolveNonPreemptive implements the 7/3-approximation of Theorem 6 in time
// O(n² log² n). It follows the Algorithm 1 framework with three adaptions:
// the lower bound covers p_max, the per-class slot count is the refined
// C_u = max(⌈P_u/T⌉, k_u + ⌈ℓ_u/2⌉) bound, and classes are divided into C_u
// groups with the LPT rule (largest processing time first, onto the
// currently least loaded group) instead of fractional cutting.
func SolveNonPreemptive(in *core.Instance) (*NonPreemptiveResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := core.CheckFeasible(in); err != nil {
		return nil, err
	}
	n := in.N()
	// With m >= n each job gets its own machine: makespan p_max = OPT.
	if in.M >= int64(n) {
		s := &core.NonPreemptiveSchedule{Assign: make([]int64, n)}
		for j := range s.Assign {
			s.Assign[j] = int64(j)
		}
		return &NonPreemptiveResult{Schedule: s, Guess: in.PMax(), LB: in.PMax(), Groups: n}, nil
	}
	lb := in.PMax()
	if area := core.RatCeilDiv(in.TotalLoad(), in.M); area > lb {
		lb = area
	}
	slotLB, err := core.SlotLowerBoundNonPreemptive(in)
	if err != nil {
		return nil, err
	}
	guess := lb
	if slotLB > guess {
		guess = slotLB
	}
	groups := splitClassesLPT(in, guess)
	// Round robin over the groups in non-ascending load order (Lemma 3).
	sort.SliceStable(groups, func(a, b int) bool { return groups[a].load > groups[b].load })
	perMachine := roundRobin(len(groups), in.M)
	s := &core.NonPreemptiveSchedule{Assign: make([]int64, n)}
	for i, idxs := range perMachine {
		for _, gi := range idxs {
			for _, j := range groups[gi].jobs {
				s.Assign[j] = int64(i)
			}
		}
	}
	return &NonPreemptiveResult{Schedule: s, Guess: guess, LB: lb, Groups: len(groups)}, nil
}

// jobGroup is one of the C_u sub-classes of a class: whole jobs only.
type jobGroup struct {
	class int
	load  int64
	jobs  []int
}

// splitClassesLPT divides every class u into C_u(T) groups using LPT. By the
// analysis of Theorem 6, each group's load is at most T + T/3 when T is a
// feasible guess.
func splitClassesLPT(in *core.Instance, t int64) []jobGroup {
	byClass := in.ClassJobs()
	var out []jobGroup
	for u, jobs := range byClass {
		if len(jobs) == 0 {
			continue
		}
		ps := make([]int64, len(jobs))
		var pu int64
		for i, j := range jobs {
			ps[i] = in.P[j]
			pu += ps[i]
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a] > ps[b] })
		k := core.NonPreemptiveClassSlots(ps, pu, t)
		if k < 1 {
			k = 1
		}
		if k > int64(len(jobs)) {
			k = int64(len(jobs))
		}
		// LPT over the class's jobs into k groups.
		ordered := append([]int(nil), jobs...)
		sort.SliceStable(ordered, func(a, b int) bool { return in.P[ordered[a]] > in.P[ordered[b]] })
		gs := make([]jobGroup, k)
		for i := range gs {
			gs[i].class = u
		}
		for _, j := range ordered {
			best := 0
			for g := 1; g < len(gs); g++ {
				if gs[g].load < gs[best].load {
					best = g
				}
			}
			gs[best].jobs = append(gs[best].jobs, j)
			gs[best].load += in.P[j]
		}
		out = append(out, gs...)
	}
	return out
}
