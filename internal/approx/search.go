package approx

import (
	"math/big"

	"ccsched/internal/core"
)

// This file exposes the two makespan-guess searches side by side for the
// E4 ablation: the paper's "advanced" binary search along class borders
// P_u/k (Lemma 2, exact for rational optima) and the plain integer binary
// search the paper falls back to for the preemptive and non-preemptive
// cases, where the optimal makespan is integral.

// BorderSearchBound returns the smallest feasible border value (Lemma 2),
// i.e. the smallest rational T of the form P_u/k with Σ_u ⌈P_u/T⌉ ≤ c·m.
func BorderSearchBound(in *core.Instance) (*big.Rat, error) {
	return core.SlotLowerBoundSplit(in)
}

// PlainIntegerBound returns the smallest integer T ≥ 1 such that
// Σ_u ⌈P_u/T⌉ ≤ c·m, found by a plain binary search over [1, max P_u].
// For any instance, BorderSearchBound ≤ PlainIntegerBound ≤
// ⌈BorderSearchBound⌉.
func PlainIntegerBound(in *core.Instance) (int64, error) {
	if err := core.CheckFeasible(in); err != nil {
		return 0, err
	}
	loads := in.ClassLoads()
	budget := int64(in.Slots)
	if in.M <= (int64(1)<<60)/budget {
		budget *= in.M
	} else {
		budget = int64(1) << 60
	}
	count := func(t int64) int64 {
		var sum int64
		for _, pu := range loads {
			need := core.RatCeilDiv(pu, t)
			if need > budget || sum > budget-need {
				return budget + 1
			}
			sum += need
		}
		return sum
	}
	var hi int64 = 1
	for _, pu := range loads {
		if pu > hi {
			hi = pu
		}
	}
	lo := int64(1)
	for lo < hi {
		mid := lo + (hi-lo)/2
		if count(mid) <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
