package core

import "math/big"

// Rational helpers. Split and preemptive schedules carry exact rational
// piece sizes so that feasibility validation never suffers floating-point
// drift: the constant-factor algorithms cut classes at thresholds of the
// form P_u/k, whose denominators are bounded by m, and the PTASs cut at
// multiples of δ²T.
//
// Hot paths use rat.R, a value-type int64 fraction with a *big.Rat overflow
// escape hatch (see internal/rat); the *big.Rat helpers below remain for the
// public API boundary and for cold paths (exact solvers, reporting).

// RatInt returns x as an exact rational.
func RatInt(x int64) *big.Rat { return new(big.Rat).SetInt64(x) }

// RatFrac returns num/den as an exact rational. den must be nonzero.
func RatFrac(num, den int64) *big.Rat { return big.NewRat(num, den) }

// RatAdd returns a+b as a fresh rational.
func RatAdd(a, b *big.Rat) *big.Rat { return new(big.Rat).Add(a, b) }

// RatSub returns a-b as a fresh rational.
func RatSub(a, b *big.Rat) *big.Rat { return new(big.Rat).Sub(a, b) }

// RatMul returns a*b as a fresh rational.
func RatMul(a, b *big.Rat) *big.Rat { return new(big.Rat).Mul(a, b) }

// RatMax returns the larger of a and b (a on ties).
func RatMax(a, b *big.Rat) *big.Rat {
	if a.Cmp(b) >= 0 {
		return a
	}
	return b
}

// RatCeilDiv returns ⌈a/b⌉ for positive integers a,b.
func RatCeilDiv(a, b int64) int64 {
	return (a + b - 1) / b
}

// RatFloat returns a float64 approximation of r, for reporting only.
func RatFloat(r *big.Rat) float64 {
	f, _ := r.Float64()
	return f
}
