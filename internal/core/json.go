package core

import (
	"encoding/json"
	"fmt"
)

// JSON wire format for instances, used by the service layer (cmd/ccserved),
// the load generator (cmd/ccload), ccgen -json and ccsolve's JSON stdin:
//
//	{"machines": 4, "slots": 2, "p": [5, 3, 8], "class": [0, 1, 0]}
//
// The encoding mirrors the Instance struct with lower-case keys and is
// validated on decode exactly like the textual format (ReadInstance).

// instanceJSON is the wire shape of Instance.
type instanceJSON struct {
	Machines int64   `json:"machines"`
	Slots    int     `json:"slots"`
	P        []int64 `json:"p"`
	Class    []int   `json:"class"`
}

// MarshalJSON encodes the instance in the JSON wire format.
func (in *Instance) MarshalJSON() ([]byte, error) {
	return json.Marshal(instanceJSON{Machines: in.M, Slots: in.Slots, P: in.P, Class: in.Class})
}

// UnmarshalJSON decodes the JSON wire format and validates the result, so a
// successfully decoded instance is always safe to hand to the algorithms.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var w instanceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	tmp := Instance{P: w.P, Class: w.Class, M: w.Machines, Slots: w.Slots}
	if err := tmp.Validate(); err != nil {
		return err
	}
	*in = tmp
	return nil
}

// ParseVariant maps the conventional variant names ("splittable",
// "preemptive", "nonpreemptive" or "non-preemptive") to a Variant.
func ParseVariant(s string) (Variant, error) {
	switch s {
	case "splittable":
		return Splittable, nil
	case "preemptive":
		return Preemptive, nil
	case "nonpreemptive", "non-preemptive":
		return NonPreemptive, nil
	default:
		return 0, fmt.Errorf("core: unknown variant %q", s)
	}
}

// MarshalText implements encoding.TextMarshaler, so variants serialize as
// their conventional names in JSON.
func (v Variant) MarshalText() ([]byte, error) {
	switch v {
	case Splittable, Preemptive, NonPreemptive:
		return []byte(v.String()), nil
	default:
		return nil, fmt.Errorf("core: cannot marshal unknown variant %d", int(v))
	}
}

// UnmarshalText implements encoding.TextUnmarshaler; see ParseVariant.
func (v *Variant) UnmarshalText(text []byte) error {
	parsed, err := ParseVariant(string(text))
	if err != nil {
		return err
	}
	*v = parsed
	return nil
}
