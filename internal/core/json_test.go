package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

// TestInstanceJSONRoundTrip checks JSON encode/decode is lossless and agrees
// with the textual format: text → Instance → JSON → Instance → text must
// reproduce the original rendering byte for byte.
func TestInstanceJSONRoundTrip(t *testing.T) {
	text := "machines 5\nslots 2\njob 7 0\njob 3 1\njob 9 0\njob 2 2\n"
	in, err := ParseInstance(text)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var back Instance
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, &back) {
		t.Fatalf("round trip changed the instance:\n got %+v\nwant %+v", &back, in)
	}
	if got := FormatInstance(&back); got != text {
		t.Fatalf("text after JSON round trip:\n got %q\nwant %q", got, text)
	}
}

// TestInstanceJSONValidates checks decoding rejects structurally invalid
// instances just like ReadInstance does.
func TestInstanceJSONValidates(t *testing.T) {
	bad := []string{
		`{"machines":0,"slots":1,"p":[1],"class":[0]}`,   // no machines
		`{"machines":1,"slots":0,"p":[1],"class":[0]}`,   // no slots
		`{"machines":1,"slots":1,"p":[0],"class":[0]}`,   // non-positive p
		`{"machines":1,"slots":1,"p":[1],"class":[-1]}`,  // negative class
		`{"machines":1,"slots":1,"p":[1,2],"class":[0]}`, // length mismatch
		`{"machines":1,"slots":1,"p":[1],"class":[0,1]}`, // length mismatch
		// Total load overflowing int64 must be rejected: a negative Σp_j
		// once sent the approx tier into a non-terminating loop.
		`{"machines":2,"slots":1,"p":[4611686018427387904,4611686018427387904,4611686018427387904],"class":[0,0,0]}`,
	}
	for _, s := range bad {
		var in Instance
		if err := json.Unmarshal([]byte(s), &in); err == nil {
			t.Errorf("decoding %s succeeded, want validation error", s)
		}
	}
}

// TestVariantJSON checks the string encoding of Variant in both directions.
func TestVariantJSON(t *testing.T) {
	for _, v := range Variants {
		data, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		var back Variant
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("variant %v round-tripped to %v (wire %s)", v, back, data)
		}
	}
	var v Variant
	if err := json.Unmarshal([]byte(`"nonpreemptive"`), &v); err != nil || v != NonPreemptive {
		t.Fatalf("hyphenless alias: got %v, %v", v, err)
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &v); err == nil {
		t.Fatal("unknown variant decoded without error")
	}
}
