package core

import (
	"strings"
	"testing"
)

func TestInstanceRoundTrip(t *testing.T) {
	in := testInstance()
	text := FormatInstance(in)
	got, err := ParseInstance(text)
	if err != nil {
		t.Fatalf("ParseInstance() = %v", err)
	}
	if got.M != in.M || got.Slots != in.Slots || got.N() != in.N() {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
	for j := range in.P {
		if got.P[j] != in.P[j] || got.Class[j] != in.Class[j] {
			t.Errorf("job %d mismatch", j)
		}
	}
}

func TestParseInstanceCommentsAndBlanks(t *testing.T) {
	text := `
# a comment
machines 5

slots 2
job 10 0
# trailing comment
job 7 1
`
	in, err := ParseInstance(text)
	if err != nil {
		t.Fatalf("ParseInstance() = %v", err)
	}
	if in.M != 5 || in.Slots != 2 || in.N() != 2 {
		t.Errorf("parsed %+v", in)
	}
}

func TestParseInstanceErrors(t *testing.T) {
	cases := []struct {
		name, text string
	}{
		{"missing machines", "slots 1\njob 1 0\n"},
		{"missing slots", "machines 1\njob 1 0\n"},
		{"bad directive", "machines 1\nslots 1\nfrob 1\n"},
		{"machines arity", "machines\nslots 1\n"},
		{"slots arity", "machines 1\nslots\n"},
		{"job arity", "machines 1\nslots 1\njob 3\n"},
		{"bad number", "machines x\nslots 1\n"},
		{"bad slot number", "machines 1\nslots x\n"},
		{"bad job number", "machines 1\nslots 1\njob x 0\n"},
		{"bad job class", "machines 1\nslots 1\njob 3 x\n"},
		{"invalid instance", "machines 0\nslots 1\njob 3 0\n"},
		{"non-positive job", "machines 1\nslots 1\njob 0 0\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseInstance(tc.text); err == nil {
				t.Errorf("ParseInstance(%q) = nil error", tc.text)
			}
		})
	}
}

func TestWriteInstanceOutput(t *testing.T) {
	in := &Instance{P: []int64{4}, Class: []int{1}, M: 2, Slots: 1}
	text := FormatInstance(in)
	for _, want := range []string{"machines 2", "slots 1", "job 4 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}
