package core

import (
	"testing"

	"ccsched/internal/rat"
)

func TestNonPreemptiveMakespanAndValidate(t *testing.T) {
	in := testInstance() // P = 5,3,8,2,7,1; classes 0,0,1,2,1,2; m=3, c=2
	s := &NonPreemptiveSchedule{Assign: []int64{0, 0, 1, 2, 1, 2}}
	if err := s.Validate(in); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if got := s.Makespan(in); got != 15 {
		t.Errorf("Makespan() = %d, want 15", got)
	}
	if got := s.UsedMachines(); got != 3 {
		t.Errorf("UsedMachines() = %d, want 3", got)
	}
	loads := s.MachineLoads(in)
	if loads[0] != 8 || loads[1] != 15 || loads[2] != 3 {
		t.Errorf("MachineLoads() = %v", loads)
	}
}

func TestNonPreemptiveValidateRejections(t *testing.T) {
	in := testInstance()
	cases := []struct {
		name string
		s    *NonPreemptiveSchedule
	}{
		{"wrong length", &NonPreemptiveSchedule{Assign: []int64{0, 1}}},
		{"machine out of range", &NonPreemptiveSchedule{Assign: []int64{0, 0, 1, 2, 1, 3}}},
		{"negative machine", &NonPreemptiveSchedule{Assign: []int64{-1, 0, 1, 2, 1, 2}}},
		// Machine 0 gets classes 0,1,2 with budget 2.
		{"class budget exceeded", &NonPreemptiveSchedule{Assign: []int64{0, 0, 0, 0, 1, 2}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(in); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestSplitScheduleRoundTrip(t *testing.T) {
	in := testInstance()
	// Split job 2 (p=8, class 1) across machines 0 and 1.
	s := &SplitSchedule{Pieces: []SplitPiece{
		{Job: 0, Machine: 0, Size: rat.FromInt(5)},
		{Job: 1, Machine: 0, Size: rat.FromInt(3)},
		{Job: 2, Machine: 0, Size: rat.Frac(5, 2)},
		{Job: 2, Machine: 1, Size: rat.Frac(11, 2)},
		{Job: 3, Machine: 2, Size: rat.FromInt(2)},
		{Job: 4, Machine: 1, Size: rat.FromInt(7)},
		{Job: 5, Machine: 2, Size: rat.FromInt(1)},
	}}
	if err := s.Validate(in); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	want := RatFrac(25, 2) // machine 1: 11/2 + 7
	if got := s.Makespan(); got.Cmp(want) != 0 {
		t.Errorf("Makespan() = %s, want %s", got.RatString(), want.RatString())
	}
	if got := s.PieceCount(); got != 7 {
		t.Errorf("PieceCount() = %d, want 7", got)
	}
	if got := s.UsedMachines(); got != 3 {
		t.Errorf("UsedMachines() = %d, want 3", got)
	}
}

func TestSplitValidateRejections(t *testing.T) {
	in := testInstance()
	base := func() []SplitPiece {
		var ps []SplitPiece
		for j := range in.P {
			ps = append(ps, SplitPiece{Job: j, Machine: int64(in.Class[j]), Size: rat.FromInt(in.P[j])})
		}
		return ps
	}
	t.Run("valid base", func(t *testing.T) {
		s := &SplitSchedule{Pieces: base()}
		if err := s.Validate(in); err != nil {
			t.Fatalf("Validate() = %v", err)
		}
	})
	t.Run("missing coverage", func(t *testing.T) {
		s := &SplitSchedule{Pieces: base()[:5]}
		if err := s.Validate(in); err == nil {
			t.Error("want coverage error")
		}
	})
	t.Run("over coverage", func(t *testing.T) {
		ps := append(base(), SplitPiece{Job: 0, Machine: 1, Size: rat.Frac(1, 3)})
		s := &SplitSchedule{Pieces: ps}
		if err := s.Validate(in); err == nil {
			t.Error("want coverage error")
		}
	})
	t.Run("zero size", func(t *testing.T) {
		ps := base()
		ps[0].Size = rat.R{}
		s := &SplitSchedule{Pieces: ps}
		if err := s.Validate(in); err == nil {
			t.Error("want size error")
		}
	})
	t.Run("bad machine", func(t *testing.T) {
		ps := base()
		ps[0].Machine = 99
		s := &SplitSchedule{Pieces: ps}
		if err := s.Validate(in); err == nil {
			t.Error("want machine range error")
		}
	})
	t.Run("bad job", func(t *testing.T) {
		ps := append(base(), SplitPiece{Job: 17, Machine: 0, Size: rat.FromInt(1)})
		s := &SplitSchedule{Pieces: ps}
		if err := s.Validate(in); err == nil {
			t.Error("want job range error")
		}
	})
	t.Run("class budget", func(t *testing.T) {
		ps := base()
		for i := range ps {
			ps[i].Machine = 0 // classes 0,1,2 on one machine, budget 2
		}
		s := &SplitSchedule{Pieces: ps}
		if err := s.Validate(in); err == nil {
			t.Error("want class budget error")
		}
	})
}

func TestPreemptiveValidateAndMakespan(t *testing.T) {
	in := testInstance()
	// Job 2 (p=8) split into [0,4) on machine 0 and [4,8) on machine 1:
	// sequential, no overlap.
	s := &PreemptiveSchedule{Pieces: []PreemptivePiece{
		{Job: 0, Machine: 2, Start: rat.FromInt(0), Size: rat.FromInt(5)},
		{Job: 1, Machine: 2, Start: rat.FromInt(5), Size: rat.FromInt(3)},
		{Job: 2, Machine: 0, Start: rat.FromInt(0), Size: rat.FromInt(4)},
		{Job: 2, Machine: 1, Start: rat.FromInt(4), Size: rat.FromInt(4)},
		{Job: 3, Machine: 0, Start: rat.FromInt(4), Size: rat.FromInt(2)},
		{Job: 4, Machine: 1, Start: rat.FromInt(8), Size: rat.FromInt(7)},
		{Job: 5, Machine: 0, Start: rat.FromInt(6), Size: rat.FromInt(1)},
	}}
	if err := s.Validate(in); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if got := s.Makespan(); got.Cmp(RatInt(15)) != 0 {
		t.Errorf("Makespan() = %s, want 15", got.RatString())
	}
	if got := s.PieceCount(); got != 7 {
		t.Errorf("PieceCount() = %d, want 7", got)
	}
	if got := s.UsedMachines(); got != 3 {
		t.Errorf("UsedMachines() = %d, want 3", got)
	}
	loads := s.MachineLoads()
	if loads[0].Cmp(RatInt(7)) != 0 {
		t.Errorf("machine 0 load = %s, want 7", loads[0].RatString())
	}
}

func TestPreemptiveRejectsParallelSameJob(t *testing.T) {
	in := testInstance()
	s := &PreemptiveSchedule{Pieces: []PreemptivePiece{
		{Job: 0, Machine: 0, Start: rat.FromInt(0), Size: rat.FromInt(3)},
		{Job: 0, Machine: 1, Start: rat.FromInt(2), Size: rat.FromInt(2)}, // overlaps [2,3)
		{Job: 1, Machine: 0, Start: rat.FromInt(3), Size: rat.FromInt(3)},
		{Job: 2, Machine: 1, Start: rat.FromInt(4), Size: rat.FromInt(8)},
		{Job: 3, Machine: 2, Start: rat.FromInt(0), Size: rat.FromInt(2)},
		{Job: 4, Machine: 1, Start: rat.FromInt(12), Size: rat.FromInt(7)},
		{Job: 5, Machine: 2, Start: rat.FromInt(2), Size: rat.FromInt(1)},
	}}
	if err := s.Validate(in); err == nil {
		t.Error("want parallel-execution error")
	}
}

func TestPreemptiveRejectsMachineOverlap(t *testing.T) {
	in := &Instance{P: []int64{4, 4}, Class: []int{0, 1}, M: 1, Slots: 2}
	s := &PreemptiveSchedule{Pieces: []PreemptivePiece{
		{Job: 0, Machine: 0, Start: rat.FromInt(0), Size: rat.FromInt(4)},
		{Job: 1, Machine: 0, Start: rat.FromInt(3), Size: rat.FromInt(4)}, // overlaps [3,4)
	}}
	if err := s.Validate(in); err == nil {
		t.Error("want machine-overlap error")
	}
}

func TestPreemptiveTouchingIntervalsAllowed(t *testing.T) {
	in := &Instance{P: []int64{4, 4}, Class: []int{0, 1}, M: 1, Slots: 2}
	s := &PreemptiveSchedule{Pieces: []PreemptivePiece{
		{Job: 0, Machine: 0, Start: rat.FromInt(0), Size: rat.FromInt(4)},
		{Job: 1, Machine: 0, Start: rat.FromInt(4), Size: rat.FromInt(4)},
	}}
	if err := s.Validate(in); err != nil {
		t.Errorf("back-to-back intervals should be feasible: %v", err)
	}
}

func TestCompactSplitSchedule(t *testing.T) {
	// One class-job of size 100 spread as 10 machines x 10 units, m huge.
	in := &Instance{P: []int64{100}, Class: []int{0}, M: 1 << 50, Slots: 1}
	s := &CompactSplitSchedule{Groups: []MachineGroup{
		{Count: 10, Pieces: []GroupPiece{{Job: 0, Size: rat.FromInt(10)}}},
	}}
	if err := s.Validate(in); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if got := s.Makespan(); got.Cmp(RatInt(10)) != 0 {
		t.Errorf("Makespan() = %s, want 10", got.RatString())
	}
	if got := s.Machines(); got != 10 {
		t.Errorf("Machines() = %d, want 10", got)
	}
	exp, err := s.Expand(100)
	if err != nil {
		t.Fatalf("Expand() = %v", err)
	}
	if err := exp.Validate(in); err != nil {
		t.Errorf("expanded schedule invalid: %v", err)
	}
	if got := exp.Makespan(); got.Cmp(RatInt(10)) != 0 {
		t.Errorf("expanded Makespan() = %s, want 10", got.RatString())
	}
	if _, err := s.Expand(5); err == nil {
		t.Error("Expand(5) should refuse 10 machines")
	}
}

func TestCompactValidateRejections(t *testing.T) {
	in := &Instance{P: []int64{10, 10}, Class: []int{0, 1}, M: 4, Slots: 1}
	cases := []struct {
		name string
		s    *CompactSplitSchedule
	}{
		{"non-positive count", &CompactSplitSchedule{Groups: []MachineGroup{
			{Count: 0, Pieces: []GroupPiece{{Job: 0, Size: rat.FromInt(10)}}},
			{Count: 1, Pieces: []GroupPiece{{Job: 1, Size: rat.FromInt(10)}}},
		}}},
		{"too many machines", &CompactSplitSchedule{Groups: []MachineGroup{
			{Count: 5, Pieces: []GroupPiece{{Job: 0, Size: rat.FromInt(2)}}},
			{Count: 1, Pieces: []GroupPiece{{Job: 1, Size: rat.FromInt(10)}}},
		}}},
		{"class budget in group", &CompactSplitSchedule{Groups: []MachineGroup{
			{Count: 2, Pieces: []GroupPiece{{Job: 0, Size: rat.FromInt(5)}, {Job: 1, Size: rat.FromInt(5)}}},
		}}},
		{"wrong coverage", &CompactSplitSchedule{Groups: []MachineGroup{
			{Count: 2, Pieces: []GroupPiece{{Job: 0, Size: rat.FromInt(3)}}},
			{Count: 1, Pieces: []GroupPiece{{Job: 1, Size: rat.FromInt(10)}}},
		}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.s.Validate(in); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestFromSplit(t *testing.T) {
	in := testInstance()
	s := &SplitSchedule{Pieces: []SplitPiece{
		{Job: 0, Machine: 0, Size: rat.FromInt(5)},
		{Job: 1, Machine: 0, Size: rat.FromInt(3)},
		{Job: 2, Machine: 1, Size: rat.FromInt(8)},
		{Job: 3, Machine: 2, Size: rat.FromInt(2)},
		{Job: 4, Machine: 1, Size: rat.FromInt(7)},
		{Job: 5, Machine: 2, Size: rat.FromInt(1)},
	}}
	c := FromSplit(s)
	if err := c.Validate(in); err != nil {
		t.Fatalf("Validate() = %v", err)
	}
	if c.Makespan().Cmp(s.Makespan()) != 0 {
		t.Errorf("compact makespan %s != explicit %s", c.Makespan().RatString(), s.Makespan().RatString())
	}
}
