package core

import (
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzInstanceJSON round-trips arbitrary bytes through the Instance JSON
// codec: any input that decodes must satisfy the validated invariants
// (decode runs Validate), re-encode, and decode back to the same instance.
// This is the wire surface ccserved exposes to untrusted clients, so the
// codec must never accept an instance the solvers cannot safely run.
func FuzzInstanceJSON(f *testing.F) {
	f.Add([]byte(`{"machines": 4, "slots": 2, "p": [5, 3, 8], "class": [0, 1, 0]}`))
	f.Add([]byte(`{"machines": 1, "slots": 1, "p": [1], "class": [0]}`))
	f.Add([]byte(`{"machines": 1152921504606846976, "slots": 3, "p": [9223372036854775807], "class": [7]}`))
	f.Add([]byte(`{"machines": 0, "slots": 0, "p": [], "class": []}`))
	f.Add([]byte(`{"machines": 2, "slots": 1, "p": [4611686018427387904, 4611686018427387904, 1], "class": [0, 1, 2]}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var in Instance
		if err := json.Unmarshal(data, &in); err != nil {
			return // rejected inputs are fine; accepting a bad one is not
		}
		// Whatever decoded must already be safe for the solvers.
		if err := in.Validate(); err != nil {
			t.Fatalf("decoded instance fails Validate: %v\ninput: %q", err, data)
		}
		out, err := json.Marshal(&in)
		if err != nil {
			t.Fatalf("re-encoding a decoded instance: %v", err)
		}
		var back Instance
		if err := json.Unmarshal(out, &back); err != nil {
			t.Fatalf("decoding the re-encoded instance: %v\nencoded: %s", err, out)
		}
		if !reflect.DeepEqual(normalizeEmpty(&in), normalizeEmpty(&back)) {
			t.Fatalf("round trip changed the instance:\n first: %+v\nsecond: %+v", in, back)
		}
	})
}

// normalizeEmpty maps nil and empty slices onto one representation; the
// JSON round trip may turn [] into null, which is semantically identical.
func normalizeEmpty(in *Instance) *Instance {
	out := *in
	if len(out.P) == 0 {
		out.P = nil
	}
	if len(out.Class) == 0 {
		out.Class = nil
	}
	return &out
}
