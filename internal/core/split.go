package core

import (
	"fmt"
	"math/big"
	"sort"
)

// SplitPiece is one fragment of a job in a splittable schedule. Size is
// measured in processing-time units (not as a fraction of the job).
type SplitPiece struct {
	Job     int
	Machine int64
	Size    *big.Rat
}

// SplitSchedule is a schedule for the splittable variant: pieces of a job
// may be placed on any machines and may run concurrently; a machine's load
// is simply the sum of its piece sizes.
type SplitSchedule struct {
	Pieces []SplitPiece
}

// Makespan returns the maximum machine load.
func (s *SplitSchedule) Makespan() *big.Rat {
	loads := make(map[int64]*big.Rat)
	mx := new(big.Rat)
	for _, pc := range s.Pieces {
		l := loads[pc.Machine]
		if l == nil {
			l = new(big.Rat)
			loads[pc.Machine] = l
		}
		l.Add(l, pc.Size)
		if l.Cmp(mx) > 0 {
			mx = new(big.Rat).Set(l)
		}
	}
	return mx
}

// MachineLoads returns the load of every non-empty machine.
func (s *SplitSchedule) MachineLoads() map[int64]*big.Rat {
	loads := make(map[int64]*big.Rat)
	for _, pc := range s.Pieces {
		l := loads[pc.Machine]
		if l == nil {
			l = new(big.Rat)
			loads[pc.Machine] = l
		}
		l.Add(l, pc.Size)
	}
	return loads
}

// Validate checks feasibility for the splittable variant: positive piece
// sizes, machines within range, per-job piece sizes summing exactly to the
// job's processing time, and at most c distinct classes per machine.
func (s *SplitSchedule) Validate(in *Instance) error {
	jobTotal := make([]*big.Rat, in.N())
	classes := make(map[int64]map[int]bool)
	for k, pc := range s.Pieces {
		if pc.Job < 0 || pc.Job >= in.N() {
			return fmt.Errorf("core: piece %d references job %d outside [0,%d)", k, pc.Job, in.N())
		}
		if pc.Machine < 0 || pc.Machine >= in.M {
			return fmt.Errorf("core: piece %d on machine %d outside [0,%d)", k, pc.Machine, in.M)
		}
		if pc.Size == nil || pc.Size.Sign() <= 0 {
			return fmt.Errorf("core: piece %d of job %d has non-positive size", k, pc.Job)
		}
		if jobTotal[pc.Job] == nil {
			jobTotal[pc.Job] = new(big.Rat)
		}
		jobTotal[pc.Job].Add(jobTotal[pc.Job], pc.Size)
		set := classes[pc.Machine]
		if set == nil {
			set = make(map[int]bool)
			classes[pc.Machine] = set
		}
		set[in.Class[pc.Job]] = true
		if len(set) > in.Slots {
			return fmt.Errorf("core: machine %d hosts %d classes, budget is %d", pc.Machine, len(set), in.Slots)
		}
	}
	for j := range jobTotal {
		want := RatInt(in.P[j])
		if jobTotal[j] == nil || jobTotal[j].Cmp(want) != 0 {
			got := "0"
			if jobTotal[j] != nil {
				got = jobTotal[j].RatString()
			}
			return fmt.Errorf("core: job %d pieces sum to %s, want %d", j, got, in.P[j])
		}
	}
	return nil
}

// PieceCount returns the number of pieces; the paper guarantees all
// algorithms emit schedules with polynomially many pieces.
func (s *SplitSchedule) PieceCount() int { return len(s.Pieces) }

// UsedMachines returns the number of distinct machines receiving load.
func (s *SplitSchedule) UsedMachines() int64 {
	seen := make(map[int64]bool)
	for _, pc := range s.Pieces {
		seen[pc.Machine] = true
	}
	return int64(len(seen))
}

// sortPieces orders pieces by (machine, job) for deterministic output.
func (s *SplitSchedule) sortPieces() {
	sort.Slice(s.Pieces, func(a, b int) bool {
		if s.Pieces[a].Machine != s.Pieces[b].Machine {
			return s.Pieces[a].Machine < s.Pieces[b].Machine
		}
		return s.Pieces[a].Job < s.Pieces[b].Job
	})
}
