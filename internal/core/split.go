package core

import (
	"fmt"
	"math/big"
	"sort"

	"ccsched/internal/rat"
)

// SplitPiece is one fragment of a job in a splittable schedule. Size is
// measured in processing-time units (not as a fraction of the job).
type SplitPiece struct {
	Job     int   `json:"job"`
	Machine int64 `json:"machine"`
	Size    rat.R `json:"size"`
}

// SplitSchedule is a schedule for the splittable variant: pieces of a job
// may be placed on any machines and may run concurrently; a machine's load
// is simply the sum of its piece sizes.
type SplitSchedule struct {
	Pieces []SplitPiece `json:"pieces"`
}

// denseLimit decides whether machine indices are dense enough for slice
// accumulation: with k pieces at most k distinct machines receive load, so a
// small multiple of k bounds the wasted slots.
func denseLimit(pieces int) int64 { return int64(4*pieces) + 64 }

// MakespanR returns the maximum machine load as an exact rational value.
// Loads are accumulated into a slice keyed by machine index (falling back to
// a map only for sparse index sets), allocation-free per piece.
func (s *SplitSchedule) MakespanR() rat.R {
	var maxIdx int64 = -1
	for i := range s.Pieces {
		if m := s.Pieces[i].Machine; m > maxIdx {
			maxIdx = m
		}
	}
	var mx rat.R
	if maxIdx < denseLimit(len(s.Pieces)) {
		loads := make([]rat.R, maxIdx+1)
		for i := range s.Pieces {
			pc := &s.Pieces[i]
			l := loads[pc.Machine].Add(pc.Size)
			loads[pc.Machine] = l
			if l.Cmp(mx) > 0 {
				mx = l
			}
		}
		return mx
	}
	loads := make(map[int64]rat.R, len(s.Pieces))
	for i := range s.Pieces {
		pc := &s.Pieces[i]
		l := loads[pc.Machine].Add(pc.Size)
		loads[pc.Machine] = l
		if l.Cmp(mx) > 0 {
			mx = l
		}
	}
	return mx
}

// Makespan returns the maximum machine load.
func (s *SplitSchedule) Makespan() *big.Rat { return s.MakespanR().Rat() }

// MachineLoads returns the load of every non-empty machine.
func (s *SplitSchedule) MachineLoads() map[int64]*big.Rat {
	acc := make(map[int64]rat.R, len(s.Pieces))
	for i := range s.Pieces {
		pc := &s.Pieces[i]
		acc[pc.Machine] = acc[pc.Machine].Add(pc.Size)
	}
	loads := make(map[int64]*big.Rat, len(acc))
	for m, l := range acc {
		loads[m] = l.Rat()
	}
	return loads
}

// Validate checks feasibility for the splittable variant: positive piece
// sizes, machines within range, per-job piece sizes summing exactly to the
// job's processing time, and at most c distinct classes per machine.
func (s *SplitSchedule) Validate(in *Instance) error {
	jobTotal := make([]rat.R, in.N())
	touched := make([]bool, in.N())
	classes := make(map[int64]map[int]bool)
	for k := range s.Pieces {
		pc := &s.Pieces[k]
		if pc.Job < 0 || pc.Job >= in.N() {
			return fmt.Errorf("core: piece %d references job %d outside [0,%d)", k, pc.Job, in.N())
		}
		if pc.Machine < 0 || pc.Machine >= in.M {
			return fmt.Errorf("core: piece %d on machine %d outside [0,%d)", k, pc.Machine, in.M)
		}
		if pc.Size.Sign() <= 0 {
			return fmt.Errorf("core: piece %d of job %d has non-positive size", k, pc.Job)
		}
		jobTotal[pc.Job] = jobTotal[pc.Job].Add(pc.Size)
		touched[pc.Job] = true
		set := classes[pc.Machine]
		if set == nil {
			set = make(map[int]bool)
			classes[pc.Machine] = set
		}
		set[in.Class[pc.Job]] = true
		if len(set) > in.Slots {
			return fmt.Errorf("core: machine %d hosts %d classes, budget is %d", pc.Machine, len(set), in.Slots)
		}
	}
	for j := range jobTotal {
		if !touched[j] || jobTotal[j].Cmp(rat.FromInt(in.P[j])) != 0 {
			got := "0"
			if touched[j] {
				got = jobTotal[j].RatString()
			}
			return fmt.Errorf("core: job %d pieces sum to %s, want %d", j, got, in.P[j])
		}
	}
	return nil
}

// PieceCount returns the number of pieces; the paper guarantees all
// algorithms emit schedules with polynomially many pieces.
func (s *SplitSchedule) PieceCount() int { return len(s.Pieces) }

// UsedMachines returns the number of distinct machines receiving load.
func (s *SplitSchedule) UsedMachines() int64 {
	seen := make(map[int64]bool)
	for _, pc := range s.Pieces {
		seen[pc.Machine] = true
	}
	return int64(len(seen))
}

// sortPieces orders pieces by (machine, job) for deterministic output.
func (s *SplitSchedule) sortPieces() {
	sort.Slice(s.Pieces, func(a, b int) bool {
		if s.Pieces[a].Machine != s.Pieces[b].Machine {
			return s.Pieces[a].Machine < s.Pieces[b].Machine
		}
		return s.Pieces[a].Job < s.Pieces[b].Job
	})
}
