package core

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Textual instance format, used by the cmd/ tools and example programs:
//
//	# comment lines and blank lines are ignored
//	machines <m>
//	slots <c>
//	job <p> <class>        (one line per job, class 0-based)
//
// The format is line-oriented and order-insensitive apart from job order.

// WriteInstance writes the instance in the textual format.
func WriteInstance(w io.Writer, in *Instance) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "machines %d\n", in.M)
	fmt.Fprintf(bw, "slots %d\n", in.Slots)
	for j := range in.P {
		fmt.Fprintf(bw, "job %d %d\n", in.P[j], in.Class[j])
	}
	return bw.Flush()
}

// ReadInstance parses the textual format and validates the result.
func ReadInstance(r io.Reader) (*Instance, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	in := &Instance{}
	lineno := 0
	sawMachines, sawSlots := false, false
	for sc.Scan() {
		lineno++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "machines":
			if len(fields) != 2 {
				return nil, fmt.Errorf("core: line %d: machines needs one argument", lineno)
			}
			m, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineno, err)
			}
			in.M = m
			sawMachines = true
		case "slots":
			if len(fields) != 2 {
				return nil, fmt.Errorf("core: line %d: slots needs one argument", lineno)
			}
			c, err := strconv.Atoi(fields[1])
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineno, err)
			}
			in.Slots = c
			sawSlots = true
		case "job":
			if len(fields) != 3 {
				return nil, fmt.Errorf("core: line %d: job needs <p> <class>", lineno)
			}
			p, err := strconv.ParseInt(fields[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineno, err)
			}
			cl, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("core: line %d: %v", lineno, err)
			}
			in.P = append(in.P, p)
			in.Class = append(in.Class, cl)
		default:
			return nil, fmt.Errorf("core: line %d: unknown directive %q", lineno, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawMachines || !sawSlots {
		return nil, fmt.Errorf("core: missing %q or %q directive", "machines", "slots")
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

// FormatInstance renders the instance as a string in the textual format.
func FormatInstance(in *Instance) string {
	var b strings.Builder
	_ = WriteInstance(&b, in)
	return b.String()
}

// ParseInstance parses an instance from a string in the textual format.
func ParseInstance(s string) (*Instance, error) {
	return ReadInstance(strings.NewReader(s))
}
