package core

import (
	"fmt"
	"math/big"
	"sort"

	"ccsched/internal/rat"
)

// PreemptivePiece is one fragment of a job in a preemptive schedule. Unlike
// the splittable case, a piece carries an explicit start time, because
// pieces of the same job must not overlap in time.
type PreemptivePiece struct {
	Job     int   `json:"job"`
	Machine int64 `json:"machine"`
	Start   rat.R `json:"start"`
	Size    rat.R `json:"size"`
}

// End returns Start+Size.
func (p *PreemptivePiece) End() rat.R { return p.Start.Add(p.Size) }

// PreemptiveSchedule is a schedule σ = (π, λ, ξ, µ) for the preemptive
// variant: jobs may be cut, but two pieces of the same job — and two pieces
// sharing a machine — must occupy disjoint time intervals.
type PreemptiveSchedule struct {
	Pieces []PreemptivePiece `json:"pieces"`
}

// MakespanR returns the largest piece end time as an exact rational value.
func (s *PreemptiveSchedule) MakespanR() rat.R {
	var mx rat.R
	for i := range s.Pieces {
		if e := s.Pieces[i].End(); e.Cmp(mx) > 0 {
			mx = e
		}
	}
	return mx
}

// Makespan returns the largest piece end time.
func (s *PreemptiveSchedule) Makespan() *big.Rat { return s.MakespanR().Rat() }

// MachineLoads returns the summed processing per non-empty machine.
func (s *PreemptiveSchedule) MachineLoads() map[int64]*big.Rat {
	acc := make(map[int64]rat.R, len(s.Pieces))
	for i := range s.Pieces {
		pc := &s.Pieces[i]
		acc[pc.Machine] = acc[pc.Machine].Add(pc.Size)
	}
	loads := make(map[int64]*big.Rat, len(acc))
	for m, l := range acc {
		loads[m] = l.Rat()
	}
	return loads
}

type interval struct {
	start, end rat.R
	piece      int
}

func overlapInSorted(ivs []interval) (int, int, bool) {
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].start.Cmp(ivs[b].start) < 0 })
	for k := 1; k < len(ivs); k++ {
		if ivs[k-1].end.Cmp(ivs[k].start) > 0 {
			return ivs[k-1].piece, ivs[k].piece, true
		}
	}
	return 0, 0, false
}

// Validate checks feasibility for the preemptive variant: positive sizes,
// non-negative starts, machines within range, per-job sizes summing to p_j,
// at most c classes per machine, no two pieces overlapping on one machine,
// and no two pieces of the same job overlapping in time anywhere.
func (s *PreemptiveSchedule) Validate(in *Instance) error {
	jobTotal := make([]rat.R, in.N())
	touched := make([]bool, in.N())
	byMachine := make(map[int64][]interval)
	byJob := make(map[int][]interval)
	classes := make(map[int64]map[int]bool)
	for k := range s.Pieces {
		pc := &s.Pieces[k]
		if pc.Job < 0 || pc.Job >= in.N() {
			return fmt.Errorf("core: piece %d references job %d outside [0,%d)", k, pc.Job, in.N())
		}
		if pc.Machine < 0 || pc.Machine >= in.M {
			return fmt.Errorf("core: piece %d on machine %d outside [0,%d)", k, pc.Machine, in.M)
		}
		if pc.Size.Sign() <= 0 {
			return fmt.Errorf("core: piece %d of job %d has non-positive size", k, pc.Job)
		}
		if pc.Start.Sign() < 0 {
			return fmt.Errorf("core: piece %d of job %d starts before time zero", k, pc.Job)
		}
		jobTotal[pc.Job] = jobTotal[pc.Job].Add(pc.Size)
		touched[pc.Job] = true
		iv := interval{start: pc.Start, end: pc.End(), piece: k}
		byMachine[pc.Machine] = append(byMachine[pc.Machine], iv)
		byJob[pc.Job] = append(byJob[pc.Job], iv)
		set := classes[pc.Machine]
		if set == nil {
			set = make(map[int]bool)
			classes[pc.Machine] = set
		}
		set[in.Class[pc.Job]] = true
		if len(set) > in.Slots {
			return fmt.Errorf("core: machine %d hosts %d classes, budget is %d", pc.Machine, len(set), in.Slots)
		}
	}
	for j := range jobTotal {
		if !touched[j] || jobTotal[j].Cmp(rat.FromInt(in.P[j])) != 0 {
			got := "0"
			if touched[j] {
				got = jobTotal[j].RatString()
			}
			return fmt.Errorf("core: job %d pieces sum to %s, want %d", j, got, in.P[j])
		}
	}
	for i, ivs := range byMachine {
		if a, b, bad := overlapInSorted(ivs); bad {
			return fmt.Errorf("core: pieces %d and %d overlap on machine %d", a, b, i)
		}
	}
	for j, ivs := range byJob {
		if a, b, bad := overlapInSorted(ivs); bad {
			return fmt.Errorf("core: pieces %d and %d of job %d run in parallel", a, b, j)
		}
	}
	return nil
}

// PieceCount returns the number of pieces in the schedule.
func (s *PreemptiveSchedule) PieceCount() int { return len(s.Pieces) }

// UsedMachines returns the number of distinct machines receiving load.
func (s *PreemptiveSchedule) UsedMachines() int64 {
	seen := make(map[int64]bool)
	for i := range s.Pieces {
		seen[s.Pieces[i].Machine] = true
	}
	return int64(len(seen))
}
