package core

import (
	"fmt"
	"math/big"
	"sort"
)

// PreemptivePiece is one fragment of a job in a preemptive schedule. Unlike
// the splittable case, a piece carries an explicit start time, because
// pieces of the same job must not overlap in time.
type PreemptivePiece struct {
	Job     int
	Machine int64
	Start   *big.Rat
	Size    *big.Rat
}

// End returns Start+Size.
func (p *PreemptivePiece) End() *big.Rat { return RatAdd(p.Start, p.Size) }

// PreemptiveSchedule is a schedule σ = (π, λ, ξ, µ) for the preemptive
// variant: jobs may be cut, but two pieces of the same job — and two pieces
// sharing a machine — must occupy disjoint time intervals.
type PreemptiveSchedule struct {
	Pieces []PreemptivePiece
}

// Makespan returns the largest piece end time.
func (s *PreemptiveSchedule) Makespan() *big.Rat {
	mx := new(big.Rat)
	for i := range s.Pieces {
		if e := s.Pieces[i].End(); e.Cmp(mx) > 0 {
			mx = e
		}
	}
	return mx
}

// MachineLoads returns the summed processing per non-empty machine.
func (s *PreemptiveSchedule) MachineLoads() map[int64]*big.Rat {
	loads := make(map[int64]*big.Rat)
	for i := range s.Pieces {
		pc := &s.Pieces[i]
		l := loads[pc.Machine]
		if l == nil {
			l = new(big.Rat)
			loads[pc.Machine] = l
		}
		l.Add(l, pc.Size)
	}
	return loads
}

type interval struct {
	start, end *big.Rat
	piece      int
}

func overlapInSorted(ivs []interval) (int, int, bool) {
	sort.Slice(ivs, func(a, b int) bool { return ivs[a].start.Cmp(ivs[b].start) < 0 })
	for k := 1; k < len(ivs); k++ {
		if ivs[k-1].end.Cmp(ivs[k].start) > 0 {
			return ivs[k-1].piece, ivs[k].piece, true
		}
	}
	return 0, 0, false
}

// Validate checks feasibility for the preemptive variant: positive sizes,
// non-negative starts, machines within range, per-job sizes summing to p_j,
// at most c classes per machine, no two pieces overlapping on one machine,
// and no two pieces of the same job overlapping in time anywhere.
func (s *PreemptiveSchedule) Validate(in *Instance) error {
	jobTotal := make([]*big.Rat, in.N())
	byMachine := make(map[int64][]interval)
	byJob := make(map[int][]interval)
	classes := make(map[int64]map[int]bool)
	for k := range s.Pieces {
		pc := &s.Pieces[k]
		if pc.Job < 0 || pc.Job >= in.N() {
			return fmt.Errorf("core: piece %d references job %d outside [0,%d)", k, pc.Job, in.N())
		}
		if pc.Machine < 0 || pc.Machine >= in.M {
			return fmt.Errorf("core: piece %d on machine %d outside [0,%d)", k, pc.Machine, in.M)
		}
		if pc.Size == nil || pc.Size.Sign() <= 0 {
			return fmt.Errorf("core: piece %d of job %d has non-positive size", k, pc.Job)
		}
		if pc.Start == nil || pc.Start.Sign() < 0 {
			return fmt.Errorf("core: piece %d of job %d starts before time zero", k, pc.Job)
		}
		if jobTotal[pc.Job] == nil {
			jobTotal[pc.Job] = new(big.Rat)
		}
		jobTotal[pc.Job].Add(jobTotal[pc.Job], pc.Size)
		iv := interval{start: pc.Start, end: pc.End(), piece: k}
		byMachine[pc.Machine] = append(byMachine[pc.Machine], iv)
		byJob[pc.Job] = append(byJob[pc.Job], iv)
		set := classes[pc.Machine]
		if set == nil {
			set = make(map[int]bool)
			classes[pc.Machine] = set
		}
		set[in.Class[pc.Job]] = true
		if len(set) > in.Slots {
			return fmt.Errorf("core: machine %d hosts %d classes, budget is %d", pc.Machine, len(set), in.Slots)
		}
	}
	for j := range jobTotal {
		want := RatInt(in.P[j])
		if jobTotal[j] == nil || jobTotal[j].Cmp(want) != 0 {
			got := "0"
			if jobTotal[j] != nil {
				got = jobTotal[j].RatString()
			}
			return fmt.Errorf("core: job %d pieces sum to %s, want %d", j, got, in.P[j])
		}
	}
	for i, ivs := range byMachine {
		if a, b, bad := overlapInSorted(ivs); bad {
			return fmt.Errorf("core: pieces %d and %d overlap on machine %d", a, b, i)
		}
	}
	for j, ivs := range byJob {
		if a, b, bad := overlapInSorted(ivs); bad {
			return fmt.Errorf("core: pieces %d and %d of job %d run in parallel", a, b, j)
		}
	}
	return nil
}

// PieceCount returns the number of pieces in the schedule.
func (s *PreemptiveSchedule) PieceCount() int { return len(s.Pieces) }

// UsedMachines returns the number of distinct machines receiving load.
func (s *PreemptiveSchedule) UsedMachines() int64 {
	seen := make(map[int64]bool)
	for i := range s.Pieces {
		seen[s.Pieces[i].Machine] = true
	}
	return int64(len(seen))
}
