package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ccsched/internal/rat"
)

func TestCheckFeasible(t *testing.T) {
	ok := &Instance{P: []int64{1, 1, 1}, Class: []int{0, 1, 2}, M: 3, Slots: 1}
	if err := CheckFeasible(ok); err != nil {
		t.Errorf("CheckFeasible(ok) = %v", err)
	}
	bad := &Instance{P: []int64{1, 1, 1}, Class: []int{0, 1, 2}, M: 2, Slots: 1}
	if err := CheckFeasible(bad); err == nil {
		t.Error("CheckFeasible should reject C > c*m")
	}
	huge := &Instance{P: []int64{1, 1}, Class: []int{0, 1}, M: 1 << 60, Slots: 1}
	if err := CheckFeasible(huge); err != nil {
		t.Errorf("huge m must not overflow: %v", err)
	}
}

func TestSlotsNeededSplit(t *testing.T) {
	cases := []struct {
		pu   int64
		t    int64
		want int64
	}{
		{10, 10, 1}, {10, 9, 2}, {10, 5, 2}, {10, 3, 4}, {1, 100, 1},
	}
	for _, tc := range cases {
		if got := rat.CeilQuoInt(tc.pu, rat.FromInt(tc.t)); got != tc.want {
			t.Errorf("CeilQuoInt(%d, %d) = %d, want %d", tc.pu, tc.t, got, tc.want)
		}
	}
	// Fractional threshold: ⌈10 / (7/2)⌉ = ⌈20/7⌉ = 3.
	if got := rat.CeilQuoInt(10, rat.Frac(7, 2)); got != 3 {
		t.Errorf("CeilQuoInt(10, 7/2) = %d, want 3", got)
	}
}

func TestSlotLowerBoundSplitSimple(t *testing.T) {
	// One class of total load 30, m=3 machines with 1 slot each:
	// T >= 10 is needed so the class fits into 3 slots.
	in := &Instance{P: []int64{30}, Class: []int{0}, M: 3, Slots: 1}
	got, err := SlotLowerBoundSplit(in)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cmp(RatInt(10)) != 0 {
		t.Errorf("SlotLowerBoundSplit = %s, want 10", got.RatString())
	}
}

func TestSlotLowerBoundSplitMultiClass(t *testing.T) {
	// Two classes, loads 12 and 6; m=2, c=2 => 4 slots.
	// At T=4: 3+2 = 5 > 4 infeasible; at T=6: 2+1 = 3 <= 4 feasible.
	// Minimal feasible border: 12/3 = 4 gives 3+2=5 infeasible. T=6/1=6 ok,
	// 12/2=6 ok, what about 12/2=6 vs 6/1=6: answer must be <= 6. Check 4.8?
	// borders: 12/1..12/k, 6/1..6/k. T=12/3=4 infeasible, T=6 feasible.
	// Intermediate border 6/1=6 only. So bound = 6? But also T=12/2=6.
	in := &Instance{P: []int64{12, 6}, Class: []int{0, 1}, M: 2, Slots: 2}
	got, err := SlotLowerBoundSplit(in)
	if err != nil {
		t.Fatal(err)
	}
	// The minimal feasible border: try T = 12/2 = 6 -> 2+1=3 <= 4 ok;
	// next smaller border 6/1=6 same; 12/3=4 -> 3+2=5 infeasible;
	// 6/2=3 -> 4+2=6 infeasible. Hence 6... but is T=5 (not a border)
	// feasible? ceil(12/5)+ceil(6/5)=3+2=5 > 4 infeasible, consistent.
	if got.Cmp(RatInt(6)) != 0 {
		t.Errorf("SlotLowerBoundSplit = %s, want 6", got.RatString())
	}
}

func TestSlotLowerBoundSplitInfeasible(t *testing.T) {
	in := &Instance{P: []int64{1, 1, 1}, Class: []int{0, 1, 2}, M: 1, Slots: 2}
	if _, err := SlotLowerBoundSplit(in); err == nil {
		t.Error("want ErrInfeasible")
	}
}

func TestNonPreemptiveClassSlots(t *testing.T) {
	// T = 12. Jobs: 7 (big, >6), 5 (mid, >4), 4 (mid?, 3*4=12 !> 12 so not mid).
	// big = [7], mid = [5]; greedy: 7+5 = 12 <= 12 fits, ell = 0.
	// C2 = 1, C1 = ceil(16/12) = 2 => 2.
	ps := []int64{7, 5, 4}
	if got := NonPreemptiveClassSlots(ps, 16, 12); got != 2 {
		t.Errorf("slots = %d, want 2", got)
	}
	// T = 10: big = 7(>5), mid = 5(>10/3), 4(>10/3). 7+5=12 > 10, 7+4=11 > 10:
	// nothing fits on the 7. ell = 2 => C2 = 1 + 1 = 2; C1 = ceil(16/10) = 2.
	if got := NonPreemptiveClassSlots(ps, 16, 10); got != 2 {
		t.Errorf("slots = %d, want 2", got)
	}
	// T = 8: big = 7,5; mid = 4(3*4>8); 7+4>8, 5+4>8... 5 is big (2*5>8).
	// big=[7,5], mid=[4]: 5+4=9>8 and 7+4=11>8, ell=1 => C2 = 2+1 = 3.
	// C1 = ceil(16/8) = 2 => 3.
	if got := NonPreemptiveClassSlots(ps, 16, 8); got != 3 {
		t.Errorf("slots = %d, want 3", got)
	}
}

func TestNonPreemptiveClassSlotsGreedyIsMaximum(t *testing.T) {
	// Regression for the pairing order: bigs 9, 6 with T=15 leave caps 6, 9;
	// mids 8, 6 (both in (5, 7.5]). Wait: mid range is (T/3, T/2] = (5, 7.5].
	// Use mids 7, 6. Cap of big 9 is 6, cap of big 6 is 9. Maximum matching
	// pairs 7 with big 6 and 6 with big 9 => ell = 0, C2 = 2.
	// A wrong order (big 9 first taking 6? no - largest fitting for cap 6 is 6,
	// then big 6 takes 7) also gets 2; build a case that actually
	// discriminates: caps 4, 9 (bigs 11, 6? 11 > 15... use T=15, bigs 11 is
	// > 15/2; caps: 15-11=4, 15-6=9). mids: 6, 7 (in (5, 7.5]).
	// cap 4 fits nothing; cap 9 fits 7. Max matching = 1, ell = 1, C2 = 2+1 = 3.
	ps := []int64{11, 8, 7, 6}
	// big: 11, 8 (2*8=16>15); mid: 7, 6 (3*6=18>15, 6 <= 7.5).
	// caps: 15-11=4, 15-8=7. cap 7 fits 7 and 6 -> takes 7; cap 4 fits none.
	// ell = 1 -> C2 = 2 + 1 = 3. C1 = ceil(32/15) = 3. want 3.
	if got := NonPreemptiveClassSlots(ps, 32, 15); got != 3 {
		t.Errorf("slots = %d, want 3", got)
	}
}

func TestSlotLowerBoundNonPreemptive(t *testing.T) {
	// Three unit classes each with one job of size 10; m=3, c=1.
	in := &Instance{P: []int64{10, 10, 10}, Class: []int{0, 1, 2}, M: 3, Slots: 1}
	got, err := SlotLowerBoundNonPreemptive(in)
	if err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Errorf("bound = %d, want 10 (p_max)", got)
	}
}

func TestLowerBoundDominance(t *testing.T) {
	in := testInstance()
	for _, v := range Variants {
		lb, err := LowerBound(in, v)
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		area := RatFrac(in.TotalLoad(), in.M)
		if lb.Cmp(area) < 0 {
			t.Errorf("%v: bound %s below area %s", v, lb.RatString(), area.RatString())
		}
		if v != Splittable && lb.Cmp(RatInt(in.PMax())) < 0 {
			t.Errorf("%v: bound %s below p_max", v, lb.RatString())
		}
	}
}

func TestLowerBoundOrdering(t *testing.T) {
	// Splittable optimum <= preemptive optimum <= non-preemptive optimum,
	// and our bounds should respect the same ordering on random instances.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(20)
		in := &Instance{M: 1 + int64(rng.Intn(4)), Slots: 1 + rng.Intn(3)}
		cc := 1 + rng.Intn(4)
		for j := 0; j < n; j++ {
			in.P = append(in.P, 1+int64(rng.Intn(30)))
			in.Class = append(in.Class, rng.Intn(cc))
		}
		norm, _ := in.Normalize()
		if CheckFeasible(norm) != nil {
			return true // skip infeasible draws
		}
		s, err1 := LowerBound(norm, Splittable)
		p, err2 := LowerBound(norm, Preemptive)
		np, err3 := LowerBound(norm, NonPreemptive)
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return s.Cmp(p) <= 0 && p.Cmp(np) <= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLowerBoundInfeasible(t *testing.T) {
	in := &Instance{P: []int64{1, 1, 1, 1}, Class: []int{0, 1, 2, 3}, M: 1, Slots: 2}
	for _, v := range Variants {
		if _, err := LowerBound(in, v); err == nil {
			t.Errorf("%v: want infeasibility error", v)
		}
	}
}
