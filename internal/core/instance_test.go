package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testInstance() *Instance {
	return &Instance{
		P:     []int64{5, 3, 8, 2, 7, 1},
		Class: []int{0, 0, 1, 2, 1, 2},
		M:     3,
		Slots: 2,
	}
}

func TestVariantString(t *testing.T) {
	cases := map[Variant]string{
		Splittable:    "splittable",
		Preemptive:    "preemptive",
		NonPreemptive: "non-preemptive",
		Variant(99):   "Variant(99)",
	}
	for v, want := range cases {
		if got := v.String(); got != want {
			t.Errorf("Variant(%d).String() = %q, want %q", int(v), got, want)
		}
	}
}

func TestInstanceBasics(t *testing.T) {
	in := testInstance()
	if got := in.N(); got != 6 {
		t.Errorf("N() = %d, want 6", got)
	}
	if got := in.NumClasses(); got != 3 {
		t.Errorf("NumClasses() = %d, want 3", got)
	}
	if got := in.TotalLoad(); got != 26 {
		t.Errorf("TotalLoad() = %d, want 26", got)
	}
	if got := in.PMax(); got != 8 {
		t.Errorf("PMax() = %d, want 8", got)
	}
	loads := in.ClassLoads()
	want := []int64{8, 15, 3}
	for u := range want {
		if loads[u] != want[u] {
			t.Errorf("ClassLoads()[%d] = %d, want %d", u, loads[u], want[u])
		}
	}
}

func TestClassJobs(t *testing.T) {
	in := testInstance()
	jobs := in.ClassJobs()
	if len(jobs) != 3 {
		t.Fatalf("ClassJobs() has %d classes, want 3", len(jobs))
	}
	wantLens := []int{2, 2, 2}
	for u, js := range jobs {
		if len(js) != wantLens[u] {
			t.Errorf("class %d has %d jobs, want %d", u, len(js), wantLens[u])
		}
		for _, j := range js {
			if in.Class[j] != u {
				t.Errorf("job %d listed under class %d but has class %d", j, u, in.Class[j])
			}
		}
	}
}

func TestValidate(t *testing.T) {
	cases := []struct {
		name string
		mod  func(*Instance)
		ok   bool
	}{
		{"valid", func(in *Instance) {}, true},
		{"mismatched slices", func(in *Instance) { in.Class = in.Class[:2] }, false},
		{"zero machines", func(in *Instance) { in.M = 0 }, false},
		{"zero slots", func(in *Instance) { in.Slots = 0 }, false},
		{"zero processing time", func(in *Instance) { in.P[0] = 0 }, false},
		{"negative processing time", func(in *Instance) { in.P[1] = -3 }, false},
		{"negative class", func(in *Instance) { in.Class[0] = -1 }, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := testInstance()
			tc.mod(in)
			err := in.Validate()
			if tc.ok && err != nil {
				t.Errorf("Validate() = %v, want nil", err)
			}
			if !tc.ok && err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestNormalizeCompactsClasses(t *testing.T) {
	in := &Instance{
		P:     []int64{1, 2, 3, 4},
		Class: []int{7, 2, 7, 9},
		M:     2,
		Slots: 10,
	}
	out, orig := in.Normalize()
	if got := out.NumClasses(); got != 3 {
		t.Fatalf("normalized NumClasses() = %d, want 3", got)
	}
	wantOrig := []int{7, 2, 9}
	for i := range wantOrig {
		if orig[i] != wantOrig[i] {
			t.Errorf("orig[%d] = %d, want %d", i, orig[i], wantOrig[i])
		}
	}
	// Slots capped at min(C, n) = 3.
	if out.Slots != 3 {
		t.Errorf("normalized Slots = %d, want 3", out.Slots)
	}
	// Original untouched.
	if in.Class[0] != 7 || in.Slots != 10 {
		t.Error("Normalize mutated its receiver")
	}
}

func TestNormalizePreservesJobClassIdentity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		in := &Instance{M: 1 + int64(rng.Intn(5)), Slots: 1 + rng.Intn(5)}
		for j := 0; j < n; j++ {
			in.P = append(in.P, 1+int64(rng.Intn(50)))
			in.Class = append(in.Class, rng.Intn(100))
		}
		out, orig := in.Normalize()
		for j := range in.Class {
			if orig[out.Class[j]] != in.Class[j] {
				return false
			}
		}
		// Same-class pairs must stay same-class, distinct stay distinct.
		for a := range in.Class {
			for b := range in.Class {
				if (in.Class[a] == in.Class[b]) != (out.Class[a] == out.Class[b]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestClone(t *testing.T) {
	in := testInstance()
	cp := in.Clone()
	cp.P[0] = 999
	cp.Class[0] = 99
	cp.M = 77
	if in.P[0] == 999 || in.Class[0] == 99 || in.M == 77 {
		t.Error("Clone shares state with the original")
	}
}

func TestEncodingLength(t *testing.T) {
	in := testInstance()
	if got := in.EncodingLength(); got <= 0 {
		t.Errorf("EncodingLength() = %d, want positive", got)
	}
	// Doubling processing-time magnitudes must not shrink the encoding.
	big := in.Clone()
	for j := range big.P {
		big.P[j] *= 1 << 20
	}
	if big.EncodingLength() <= in.EncodingLength() {
		t.Error("larger numbers should not shrink the encoding length")
	}
}

func TestEffectiveMachines(t *testing.T) {
	in := testInstance()
	in.M = 1 << 40
	if got := in.EffectiveMachines(Splittable); got != 1<<40 {
		t.Errorf("splittable keeps m: got %d", got)
	}
	if got := in.EffectiveMachines(Preemptive); got != int64(in.N()) {
		t.Errorf("preemptive caps m at n: got %d", got)
	}
	if got := in.EffectiveMachines(NonPreemptive); got != int64(in.N()) {
		t.Errorf("non-preemptive caps m at n: got %d", got)
	}
	in.M = 2
	if got := in.EffectiveMachines(NonPreemptive); got != 2 {
		t.Errorf("small m preserved: got %d", got)
	}
}
