package core

import (
	"errors"
	"math/big"
	"sort"

	"ccsched/internal/rat"
)

// Certified lower bounds on the optimal makespan. Every experiment that
// reports an approximation ratio divides a schedule's makespan by one of
// these bounds, so a measured ratio always upper-bounds the true ratio.
//
// Three bound families are combined, following the paper's own arguments:
//
//   - area:  Σ p_j / m  (equal distribution; Lemma 2's lower bound LB),
//   - p_max: largest job (preemptive and non-preemptive only — a job must
//     run sequentially),
//   - class slots: any schedule with makespan T must reserve, per class u,
//     at least Slots_u(T) class slots, and only c·m exist in total. The
//     smallest T for which the counts fit is a valid lower bound. For the
//     splittable and preemptive variants Slots_u(T) = ⌈P_u/T⌉; the
//     non-preemptive variant additionally counts machines forced by jobs
//     larger than T/2 and T/3 (the paper's C²_u = k_u + ⌈ℓ_u/2⌉).

// ErrInfeasible reports an instance that admits no feasible schedule at any
// makespan: more classes than total class slots.
var ErrInfeasible = errors.New("core: more classes than total class slots (C > c*m)")

// CheckFeasible returns ErrInfeasible when C > c*m, i.e. no schedule of any
// makespan can host all classes.
func CheckFeasible(in *Instance) error {
	cc := int64(in.NumClasses())
	// Avoid overflow: c*m with m up to 2^62. If m alone covers C, fine.
	if in.M >= cc {
		return nil
	}
	if int64(in.Slots)*in.M < cc {
		return ErrInfeasible
	}
	return nil
}

// totalSlotsSplit returns Σ_u ⌈P_u/T⌉ but stops early once the sum exceeds
// limit (values above the limit are all equivalent for feasibility tests).
// The per-class count ⌈P_u/T⌉ runs on rat's 128-bit division fast path, so
// the whole sweep is allocation-free.
func totalSlotsSplit(loads []int64, t rat.R, limit int64) int64 {
	var sum int64
	for _, pu := range loads {
		need := rat.CeilQuoInt(pu, t)
		if need > limit || sum > limit-need {
			return limit + 1
		}
		sum += need
	}
	return sum
}

// totalSlotBudget returns c*m, saturating at a huge sentinel on overflow.
// Overstating the budget only weakens (never invalidates) the resulting
// lower bound, because a larger budget makes more makespan guesses feasible.
func totalSlotBudget(in *Instance) int64 {
	const sentinel = int64(1) << 60
	c := int64(in.Slots)
	if in.M > sentinel/c {
		return sentinel
	}
	return c * in.M
}

// SlotLowerBoundSplitR returns the smallest rational T (a "border" value
// P_u/k) such that Σ_u ⌈P_u/T⌉ ≤ c·m. This is a valid lower bound on the
// optimal makespan for the splittable and preemptive variants, following
// Lemma 2: only border values P_u/k can be minimal, and per class the count
// is monotone along its borders.
func SlotLowerBoundSplitR(in *Instance) (rat.R, error) {
	if err := CheckFeasible(in); err != nil {
		return rat.R{}, err
	}
	loads := in.ClassLoads()
	budget := totalSlotBudget(in)
	// All classes fit in one slot each at T = max P_u, which is feasible
	// because C <= c*m was checked above.
	var best rat.R
	for _, pu := range loads {
		if cand := rat.FromInt(pu); cand.Cmp(best) > 0 {
			best = cand
		}
	}
	if best.Sign() == 0 {
		return best, nil
	}
	// Per class, binary search the smallest feasible border P_u/k for
	// k in 1..kmax. Increasing k shrinks T = P_u/k and can only increase
	// the total slot count, so per-class feasibility is monotone in k.
	// Beyond k = n+m the counts can never fit a feasible budget (at the
	// optimum, Σ⌈P_u/T⌉ ≤ ΣP_u/T + C ≤ m + n since T ≥ ΣP/m).
	kmax := in.M
	if n := int64(in.N()) + in.M; kmax > n || kmax < 0 {
		kmax = n
	}
	for _, pu := range loads {
		if pu == 0 {
			continue
		}
		if totalSlotsSplit(loads, rat.FromInt(pu), budget) > budget {
			continue // even this class's largest border is infeasible
		}
		lo, hi := int64(1), kmax
		for lo < hi {
			mid := lo + (hi-lo+1)/2 // try larger k (smaller T)
			if totalSlotsSplit(loads, rat.Frac(pu, mid), budget) <= budget {
				lo = mid
			} else {
				hi = mid - 1
			}
		}
		if t := rat.Frac(pu, lo); t.Cmp(best) < 0 {
			best = t
		}
	}
	return best, nil
}

// SlotLowerBoundSplit is SlotLowerBoundSplitR at the *big.Rat API boundary.
func SlotLowerBoundSplit(in *Instance) (*big.Rat, error) {
	r, err := SlotLowerBoundSplitR(in)
	if err != nil {
		return nil, err
	}
	return r.Rat(), nil
}

// NonPreemptiveClassSlots computes the paper's C_u = max(C¹_u, C²_u) lower
// bound on class slots needed by class u under makespan T:
// C¹_u = ⌈P_u/T⌉ (area) and C²_u = k_u + ⌈ℓ_u/2⌉ where k_u counts jobs with
// p_j > T/2, and ℓ_u counts jobs with T/3 < p_j ≤ T/2 left after greedily
// stacking the largest fitting one on each p_j > T/2 job. ps must hold the
// class's processing times sorted in non-ascending order; pu is their sum.
func NonPreemptiveClassSlots(ps []int64, pu int64, t int64) int64 {
	c1 := RatCeilDiv(pu, t)
	// Partition by thresholds. ps must be sorted descending.
	var big_, mid []int64
	for _, p := range ps {
		switch {
		case 2*p > t:
			big_ = append(big_, p)
		case 3*p > t:
			mid = append(mid, p)
		}
	}
	// Greedy maximum matching: process big jobs from smallest (most head
	// room) to largest and stack the largest still-fitting mid job on each.
	// Iterating capacities in descending order and taking the largest
	// fitting item is the classical exchange-optimal rule, so the number of
	// placed mid jobs is maximum and C²_u stays a valid lower bound.
	used := make([]bool, len(mid))
	for bi := len(big_) - 1; bi >= 0; bi-- {
		b := big_[bi]
		for i := range mid {
			if !used[i] && b+mid[i] <= t {
				used[i] = true
				break // mid sorted descending, first fit is largest fit
			}
		}
	}
	var ell int64
	for i := range mid {
		if !used[i] {
			ell++
		}
	}
	c2 := int64(len(big_)) + (ell+1)/2
	if c2 > c1 {
		return c2
	}
	return c1
}

// SlotLowerBoundNonPreemptive returns the smallest integer T such that
// Σ_u C_u(T) ≤ c·m, with C_u as in Theorem 6. Makespans are integral in the
// non-preemptive case, so the bound is found by integer binary search.
func SlotLowerBoundNonPreemptive(in *Instance) (int64, error) {
	if err := CheckFeasible(in); err != nil {
		return 0, err
	}
	byClass := in.ClassJobs()
	sorted := make([][]int64, len(byClass))
	loads := in.ClassLoads()
	for u, jobs := range byClass {
		ps := make([]int64, len(jobs))
		for i, j := range jobs {
			ps[i] = in.P[j]
		}
		sort.Slice(ps, func(a, b int) bool { return ps[a] > ps[b] })
		sorted[u] = ps
	}
	budget := totalSlotBudget(in)
	total := func(t int64) int64 {
		var sum int64
		for u := range sorted {
			if len(sorted[u]) == 0 {
				continue
			}
			need := NonPreemptiveClassSlots(sorted[u], loads[u], t)
			if need > budget || sum > budget-need {
				return budget + 1
			}
			sum += need
		}
		return sum
	}
	lo, hi := in.PMax(), in.TotalLoad() // hi always feasible: one slot per class
	if lo < 1 {
		lo = 1
	}
	for lo < hi {
		mid := lo + (hi-lo)/2
		if total(mid) <= budget {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

// LowerBoundR returns a certified lower bound on the optimal makespan of the
// given variant, combining area, p_max and class-slot arguments.
func LowerBoundR(in *Instance, v Variant) (rat.R, error) {
	if err := CheckFeasible(in); err != nil {
		return rat.R{}, err
	}
	best := rat.Frac(in.TotalLoad(), in.M)
	if v != Splittable {
		best = rat.Max(best, rat.FromInt(in.PMax()))
	}
	switch v {
	case Splittable, Preemptive:
		slot, err := SlotLowerBoundSplitR(in)
		if err != nil {
			return rat.R{}, err
		}
		best = rat.Max(best, slot)
	case NonPreemptive:
		slot, err := SlotLowerBoundNonPreemptive(in)
		if err != nil {
			return rat.R{}, err
		}
		best = rat.Max(best, rat.FromInt(slot))
	}
	return best, nil
}

// LowerBound is LowerBoundR at the *big.Rat API boundary.
func LowerBound(in *Instance, v Variant) (*big.Rat, error) {
	r, err := LowerBoundR(in, v)
	if err != nil {
		return nil, err
	}
	return r.Rat(), nil
}
