// Package core defines the Class-Constrained Scheduling (CCS) problem model:
// instances, the three schedule variants of Jansen, Lassota and Maack
// ("Approximation Algorithms for Scheduling with Class Constraints",
// SPAA 2020), feasibility validation, makespan computation and certified
// lower bounds.
//
// An instance consists of n jobs, each with an integral processing time and
// a class, m identical machines, and a per-machine budget of c class slots:
// a machine may execute jobs from at most c distinct classes. The objective
// is always makespan minimization.
//
// Conventions: classes are 0-based (0..C-1) throughout the code base; the
// paper uses 1-based classes. The number of machines is an int64 because the
// splittable case explicitly permits m exponential in n.
package core

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Variant selects one of the three job-placement semantics studied in the
// paper.
type Variant int

const (
	// Splittable allows cutting jobs into arbitrary pieces; pieces of the
	// same job may run in parallel on different machines.
	Splittable Variant = iota
	// Preemptive allows cutting jobs, but pieces of the same job must not
	// overlap in time.
	Preemptive
	// NonPreemptive forbids splitting: each job runs on exactly one machine.
	NonPreemptive
)

// String returns the conventional name of the variant.
func (v Variant) String() string {
	switch v {
	case Splittable:
		return "splittable"
	case Preemptive:
		return "preemptive"
	case NonPreemptive:
		return "non-preemptive"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// Variants lists all three variants in the paper's order of introduction.
var Variants = []Variant{Splittable, Preemptive, NonPreemptive}

// Instance is a CCS instance I = [p_1..p_n, c_1..c_n, m, c].
//
// The zero value is an empty instance with no machines; call Validate before
// handing an externally produced instance to an algorithm.
type Instance struct {
	// P holds the processing times p_j > 0 of the n jobs.
	P []int64
	// Class holds the 0-based class c_j of each job, parallel to P.
	Class []int
	// M is the number of identical machines (may be huge, up to 2^62).
	M int64
	// Slots is the per-machine class-slot budget c >= 1.
	Slots int
}

// N returns the number of jobs.
func (in *Instance) N() int { return len(in.P) }

// NumClasses returns C, the number of classes, computed as one plus the
// largest class index present. Instances produced by Normalize have every
// class in 0..C-1 nonempty.
func (in *Instance) NumClasses() int {
	maxc := -1
	for _, c := range in.Class {
		if c > maxc {
			maxc = c
		}
	}
	return maxc + 1
}

// TotalLoad returns the sum of all processing times.
func (in *Instance) TotalLoad() int64 {
	var s int64
	for _, p := range in.P {
		s += p
	}
	return s
}

// PMax returns the largest processing time, or 0 for an empty instance.
func (in *Instance) PMax() int64 {
	var mx int64
	for _, p := range in.P {
		if p > mx {
			mx = p
		}
	}
	return mx
}

// ClassLoads returns the accumulated processing time P_u of every class u,
// indexed by class.
func (in *Instance) ClassLoads() []int64 {
	loads := make([]int64, in.NumClasses())
	for j, p := range in.P {
		loads[in.Class[j]] += p
	}
	return loads
}

// ClassJobs returns, for every class u, the indices of the jobs belonging
// to u.
func (in *Instance) ClassJobs() [][]int {
	jobs := make([][]int, in.NumClasses())
	for j, c := range in.Class {
		jobs[c] = append(jobs[c], j)
	}
	return jobs
}

// Validate checks the structural invariants the algorithms in this module
// rely on: parallel slices, positive processing times whose total load fits
// in an int64 (every solver accumulates Σp_j into int64 makespan guesses —
// an overflowed, negative total would send them into nonsense), non-negative
// classes, at least one machine, at least one class slot. It does not
// require classes to be contiguous; use Normalize for that.
func (in *Instance) Validate() error {
	if len(in.P) != len(in.Class) {
		return fmt.Errorf("core: %d processing times but %d classes", len(in.P), len(in.Class))
	}
	if in.M < 1 {
		return errors.New("core: need at least one machine")
	}
	if in.Slots < 1 {
		return errors.New("core: need at least one class slot per machine")
	}
	var total int64
	for j, p := range in.P {
		if p <= 0 {
			return fmt.Errorf("core: job %d has non-positive processing time %d", j, p)
		}
		if in.Class[j] < 0 {
			return fmt.Errorf("core: job %d has negative class %d", j, in.Class[j])
		}
		if p > math.MaxInt64-total {
			return fmt.Errorf("core: total processing time overflows int64 at job %d", j)
		}
		total += p
	}
	return nil
}

// Normalize returns a copy of the instance with class identifiers compacted
// to 0..C-1 (preserving first-appearance order), with the slot budget capped
// at min(c, C, n) as the paper assumes w.l.o.g., and reports the mapping
// from new class ids to original ones.
func (in *Instance) Normalize() (*Instance, []int) {
	remap := make(map[int]int)
	var orig []int
	out := &Instance{
		P:     append([]int64(nil), in.P...),
		Class: make([]int, len(in.Class)),
		M:     in.M,
		Slots: in.Slots,
	}
	for j, c := range in.Class {
		id, ok := remap[c]
		if !ok {
			id = len(orig)
			remap[c] = id
			orig = append(orig, c)
		}
		out.Class[j] = id
	}
	if cc := len(orig); out.Slots > cc && cc > 0 {
		out.Slots = cc
	}
	if n := len(out.P); out.Slots > n && n > 0 {
		out.Slots = n
	}
	return out, orig
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	return &Instance{
		P:     append([]int64(nil), in.P...),
		Class: append([]int(nil), in.Class...),
		M:     in.M,
		Slots: in.Slots,
	}
}

// EncodingLength returns |I| = O(Σ⌈log p_j⌉ + Σ⌈log c_j⌉ + n + ⌈log m⌉), the
// instance encoding length used in the paper's running-time statements.
func (in *Instance) EncodingLength() int {
	bitsOf := func(x int64) int {
		if x <= 1 {
			return 1
		}
		return bits.Len64(uint64(x))
	}
	total := bitsOf(in.M) + in.N()
	for j, p := range in.P {
		total += bitsOf(p) + bitsOf(int64(in.Class[j])+1)
	}
	return total
}

// EffectiveMachines returns the machine count that matters algorithmically:
// for the preemptive and non-preemptive variants a schedule never benefits
// from more than n machines, so m is capped at n there; the splittable
// variant may genuinely use more than n machines (cap c*n pieces is still
// enough, but we keep m as-is and rely on compact schedules).
func (in *Instance) EffectiveMachines(v Variant) int64 {
	if v == Splittable {
		return in.M
	}
	if n := int64(in.N()); in.M > n {
		return n
	}
	return in.M
}
