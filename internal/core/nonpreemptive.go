package core

import "fmt"

// NonPreemptiveSchedule assigns every job to exactly one machine.
type NonPreemptiveSchedule struct {
	// Assign[j] is the machine executing job j.
	Assign []int64 `json:"assign"`
}

// Makespan returns the maximum machine load under the instance's processing
// times.
func (s *NonPreemptiveSchedule) Makespan(in *Instance) int64 {
	loads := make(map[int64]int64, len(s.Assign))
	var mx int64
	for j, i := range s.Assign {
		loads[i] += in.P[j]
		if loads[i] > mx {
			mx = loads[i]
		}
	}
	return mx
}

// MachineLoads returns the load of every non-empty machine.
func (s *NonPreemptiveSchedule) MachineLoads(in *Instance) map[int64]int64 {
	loads := make(map[int64]int64)
	for j, i := range s.Assign {
		loads[i] += in.P[j]
	}
	return loads
}

// Validate checks that the schedule is feasible for the instance: every job
// is placed on an existing machine and no machine hosts more than c distinct
// classes.
func (s *NonPreemptiveSchedule) Validate(in *Instance) error {
	if len(s.Assign) != in.N() {
		return fmt.Errorf("core: schedule covers %d jobs, instance has %d", len(s.Assign), in.N())
	}
	classes := make(map[int64]map[int]bool)
	for j, i := range s.Assign {
		if i < 0 || i >= in.M {
			return fmt.Errorf("core: job %d assigned to machine %d outside [0,%d)", j, i, in.M)
		}
		set := classes[i]
		if set == nil {
			set = make(map[int]bool)
			classes[i] = set
		}
		set[in.Class[j]] = true
		if len(set) > in.Slots {
			return fmt.Errorf("core: machine %d hosts %d classes, budget is %d", i, len(set), in.Slots)
		}
	}
	return nil
}

// UsedMachines returns the number of distinct machines receiving jobs.
func (s *NonPreemptiveSchedule) UsedMachines() int64 {
	seen := make(map[int64]bool)
	for _, i := range s.Assign {
		seen[i] = true
	}
	return int64(len(seen))
}
