package core

import (
	"fmt"
	"math/big"

	"ccsched/internal/rat"
)

// The splittable variant explicitly allows the number of machines m to be
// exponential in n, so a schedule cannot always list machines one by one.
// CompactSplitSchedule run-length encodes groups of machines that receive
// the same piece layout, mirroring how Theorem 4 ("Handling an Exponential
// Number of Machines") stores only the number of machines filled with two
// size-T class pieces.

// GroupPiece describes one piece placed on *each* machine of a group: every
// machine in the group receives its own, distinct piece of job Job with the
// given Size. The pieces are distinct job fragments, so a group of k
// machines consumes k*Size units of the job.
type GroupPiece struct {
	Job  int   `json:"job"`
	Size rat.R `json:"size"`
}

// MachineGroup is a run of Count identical machines sharing a piece layout.
type MachineGroup struct {
	Count  int64        `json:"count"`
	Pieces []GroupPiece `json:"pieces"`
}

// Load returns the load of each machine in the group.
func (g *MachineGroup) Load() rat.R {
	var l rat.R
	for _, pc := range g.Pieces {
		l = l.Add(pc.Size)
	}
	return l
}

// CompactSplitSchedule is a splittable schedule in machine-group form. Its
// encoding size is polynomial in n even when m is exponential.
type CompactSplitSchedule struct {
	Groups []MachineGroup `json:"groups"`
}

// MakespanR returns the maximum group load as an exact rational value.
func (s *CompactSplitSchedule) MakespanR() rat.R {
	var mx rat.R
	for i := range s.Groups {
		if l := s.Groups[i].Load(); l.Cmp(mx) > 0 {
			mx = l
		}
	}
	return mx
}

// Makespan returns the maximum group load.
func (s *CompactSplitSchedule) Makespan() *big.Rat { return s.MakespanR().Rat() }

// Machines returns the total number of machines used by all groups.
func (s *CompactSplitSchedule) Machines() int64 {
	var total int64
	for i := range s.Groups {
		total += s.Groups[i].Count
	}
	return total
}

// Validate checks feasibility: group counts positive, total machines within
// m, per-machine class budget respected inside every group, and per-job
// totals (Σ Count*Size over all groups) equal to the processing times.
func (s *CompactSplitSchedule) Validate(in *Instance) error {
	jobTotal := make([]rat.R, in.N())
	touched := make([]bool, in.N())
	var used int64
	for gi := range s.Groups {
		g := &s.Groups[gi]
		if g.Count <= 0 {
			return fmt.Errorf("core: group %d has non-positive machine count %d", gi, g.Count)
		}
		used += g.Count
		set := make(map[int]bool)
		for _, pc := range g.Pieces {
			if pc.Job < 0 || pc.Job >= in.N() {
				return fmt.Errorf("core: group %d references job %d outside [0,%d)", gi, pc.Job, in.N())
			}
			if pc.Size.Sign() <= 0 {
				return fmt.Errorf("core: group %d piece of job %d has non-positive size", gi, pc.Job)
			}
			set[in.Class[pc.Job]] = true
			jobTotal[pc.Job] = jobTotal[pc.Job].Add(pc.Size.MulInt(g.Count))
			touched[pc.Job] = true
		}
		if len(set) > in.Slots {
			return fmt.Errorf("core: group %d hosts %d classes, budget is %d", gi, len(set), in.Slots)
		}
	}
	if used > in.M {
		return fmt.Errorf("core: schedule uses %d machines, instance has %d", used, in.M)
	}
	for j := range jobTotal {
		if !touched[j] || jobTotal[j].Cmp(rat.FromInt(in.P[j])) != 0 {
			got := "0"
			if touched[j] {
				got = jobTotal[j].RatString()
			}
			return fmt.Errorf("core: job %d group pieces sum to %s, want %d", j, got, in.P[j])
		}
	}
	return nil
}

// Expand materializes the compact schedule as an explicit SplitSchedule.
// It refuses to expand more than limit machines to protect callers from
// exponential blow-ups.
func (s *CompactSplitSchedule) Expand(limit int64) (*SplitSchedule, error) {
	if total := s.Machines(); total > limit {
		return nil, fmt.Errorf("core: refusing to expand %d machines (limit %d)", total, limit)
	}
	out := &SplitSchedule{}
	var machine int64
	for gi := range s.Groups {
		g := &s.Groups[gi]
		for k := int64(0); k < g.Count; k++ {
			for _, pc := range g.Pieces {
				out.Pieces = append(out.Pieces, SplitPiece{
					Job:     pc.Job,
					Machine: machine,
					Size:    pc.Size,
				})
			}
			machine++
		}
	}
	out.sortPieces()
	return out, nil
}

// FromSplit converts an explicit schedule into (trivially compact) group
// form, one group per machine. Useful for uniform reporting paths.
func FromSplit(s *SplitSchedule) *CompactSplitSchedule {
	perMachine := make(map[int64][]GroupPiece)
	var order []int64
	for _, pc := range s.Pieces {
		if _, ok := perMachine[pc.Machine]; !ok {
			order = append(order, pc.Machine)
		}
		perMachine[pc.Machine] = append(perMachine[pc.Machine], GroupPiece{Job: pc.Job, Size: pc.Size})
	}
	out := &CompactSplitSchedule{}
	for _, i := range order {
		out.Groups = append(out.Groups, MachineGroup{Count: 1, Pieces: perMachine[i]})
	}
	return out
}
