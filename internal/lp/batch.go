package lp

// The batched sibling kernel. A branch-and-bound branch creates two (or,
// for wider schemes, k) child LPs that differ from their parent — and from
// each other — only in one variable's bounds, and all share the parent's
// terminal basis as their warm-restore start. Solving them one SolveBounds
// at a time pays the O(m³) restore refactorization per child; SolveBatch
// pays it once and hands every later child a bit-identical O(m²) copy of
// the refactored inverse. Everything else about each solve — the
// verdict-only dual restore, the deterministic cold fallback — is exactly
// SolveBounds, so a batch returns precisely what k independent calls would.

import (
	"context"
	"errors"

	"ccsched/internal/faultinject"
	"ccsched/internal/trace"
)

// errBatchOut reports a SolveBatch output slice shorter than its item list.
var errBatchOut = errors.New("lp: SolveBatch out slice shorter than items")

// BatchBounds is one batch item's structural bounds for SolveBatch. Nil
// slices select the prepared problem's own bounds, as in SolveBounds.
type BatchBounds struct {
	Lower, Upper []float64
}

// restoreCache memoizes the start state of a warm restore — the basis
// columns, resting statuses and post-refactor basis inverse — so sibling
// solves sharing one warm Basis skip the per-solve refactorization. It is
// only ever consulted for the single warm Basis of one SolveBatch call and
// holds no bound- or RHS-dependent state (basic values are recomputed per
// solve).
type restoreCache struct {
	valid  bool
	basis  []int
	status []varStatus
	binv   []float64 // m×m, row-major
}

// capture snapshots the just-restored start state from st.
func (rc *restoreCache) capture(st *simplexState) {
	m := st.m
	if rc.basis == nil {
		rc.basis = make([]int, m)
		rc.status = make([]varStatus, len(st.status))
		rc.binv = make([]float64, m*m)
	}
	copy(rc.basis, st.basis)
	copy(rc.status, st.status)
	for i := 0; i < m; i++ {
		copy(rc.binv[i*m:(i+1)*m], st.binv[i])
	}
	rc.valid = true
}

// SolveBatch solves len(items) sibling programs — same prepared rows,
// per-item structural bounds — writing the i-th result into out[i]. All
// items share the single warm Basis (typically their common parent's
// terminal basis; nil disables warm restores exactly as in SolveBounds).
//
// Results are bit-identical to len(items) independent SolveBounds calls
// with the same arguments: the only thing the batch amortizes is the warm
// restore's refactorization, whose cached inverse is a deterministic
// function of the shared basis. Unlike SolveBounds, each out[i].X is copied
// out of the solver scratch, so every solution in the batch remains valid
// after the call (and after later solves on this Prepared).
//
// When bases is non-nil (length ≥ len(items)), bases[i] receives the
// terminal basis of item i's solve when it ended at an optimal basis (nil
// otherwise) — the per-item equivalent of calling CaptureBasis between
// solves, which the batch's state reuse would otherwise make impossible.
//
// The batch stops at the first error (cancellation included); out entries
// past the failed item are left zeroed.
func (pr *Prepared) SolveBatch(ctx context.Context, items []BatchBounds, warm *Basis, out []Solution, bases []*Basis) error {
	if err := faultinject.Check("lp.batch"); err != nil {
		return err
	}
	if len(out) < len(items) || (bases != nil && len(bases) < len(items)) {
		return errBatchOut
	}
	sp := pr.traceSpan.Child("lp_batch")
	var rc restoreCache
	for i := range items {
		out[i] = Solution{}
		if err := pr.solveBoundsCached(ctx, items[i].Lower, items[i].Upper, warm, &rc, &out[i]); err != nil {
			sp.End(trace.A("items", int64(len(items))), trace.A("err", 1))
			return err
		}
		if out[i].X != nil {
			out[i].X = append([]float64(nil), out[i].X...)
		}
		if bases != nil {
			bases[i] = pr.CaptureBasis()
		}
	}
	if sp.Enabled() {
		var pivots, warmHits int64
		for i := range items {
			pivots += int64(out[i].Iterations)
			if out[i].Warm {
				warmHits++
			}
		}
		sp.End(trace.A("items", int64(len(items))), trace.A("pivots", pivots), trace.A("warm_hits", warmHits))
	}
	return nil
}
