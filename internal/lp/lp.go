// Package lp implements a dense, bounded-variable revised simplex solver
// for linear programs
//
//	minimize    c·x
//	subject to  A_i·x  (≤ | = | ≥)  b_i      for every row i
//	            l ≤ x ≤ u                    (entries may be ±Inf)
//
// It exists because the paper's preprocessing lemmas (8, 12, 15) need the
// Lenstra–Shmoys–Tardos assignment-LP rounding and the PTAS fallback engine
// needs LP relaxations, while the build must be pure stdlib: the solver is
// the repository's substitute for an external LP library.
//
// The implementation is a textbook two-phase revised simplex with explicit
// lower/upper bound handling (nonbasic variables rest at either bound, the
// ratio test permits bound flips) and Bland's rule as an anti-cycling
// fallback. It is tuned for the moderate dimensions the PTAS produces
// (hundreds of rows, thousands of columns), not for industrial scale.
//
// Repeated solves over the same rows — branch-and-bound nodes, makespan
// re-probes — should go through Prepare/SolveBounds: the sparse columns and
// all dense scratch are built once on a pooled arena, per-solve bounds are
// patched in place, and a captured Basis enables the verdict-only warm
// dual-simplex restore (see warm.go) that prunes infeasible child nodes in a
// handful of pivots without ever changing which solution a solve returns.
package lp

import (
	"errors"
	"fmt"
	"math"
)

// Relation is the sense of one constraint row.
type Relation int

const (
	// LE means A_i·x ≤ b_i.
	LE Relation = iota
	// EQ means A_i·x = b_i.
	EQ
	// GE means A_i·x ≥ b_i.
	GE
)

// Status classifies the solver outcome.
type Status int

const (
	// Optimal means an optimal basic feasible solution was found.
	Optimal Status = iota
	// Infeasible means the constraints admit no solution.
	Infeasible
	// Unbounded means the objective decreases without bound.
	Unbounded
	// IterLimit means the iteration budget was exhausted.
	IterLimit
)

// String names the status for logs and error messages.
func (s Status) String() string {
	switch s {
	case Optimal:
		return "optimal"
	case Infeasible:
		return "infeasible"
	case Unbounded:
		return "unbounded"
	case IterLimit:
		return "iteration-limit"
	default:
		return fmt.Sprintf("Status(%d)", int(s))
	}
}

// Problem is a linear program in the general bounded form above.
type Problem struct {
	// NumVars is the number of structural variables.
	NumVars int
	// Obj is the minimization objective, length NumVars.
	Obj []float64
	// A holds one dense row per constraint, each of length NumVars.
	A [][]float64
	// Rel holds the sense of each row, parallel to A.
	Rel []Relation
	// B is the right-hand side, parallel to A.
	B []float64
	// Lower and Upper are variable bounds, length NumVars; use
	// math.Inf(-1) / math.Inf(1) for free directions.
	Lower, Upper []float64
}

// Validate checks dimensional consistency and bound sanity.
func (p *Problem) Validate() error {
	if p.NumVars < 0 {
		return errors.New("lp: negative variable count")
	}
	if len(p.Obj) != p.NumVars || len(p.Lower) != p.NumVars || len(p.Upper) != p.NumVars {
		return fmt.Errorf("lp: objective/bounds length mismatch (n=%d)", p.NumVars)
	}
	if len(p.A) != len(p.B) || len(p.A) != len(p.Rel) {
		return fmt.Errorf("lp: %d rows, %d rhs, %d relations", len(p.A), len(p.B), len(p.Rel))
	}
	for i, row := range p.A {
		if len(row) != p.NumVars {
			return fmt.Errorf("lp: row %d has %d entries, want %d", i, len(row), p.NumVars)
		}
	}
	for j := 0; j < p.NumVars; j++ {
		if p.Lower[j] > p.Upper[j] {
			return fmt.Errorf("lp: variable %d has lower %g > upper %g", j, p.Lower[j], p.Upper[j])
		}
	}
	return nil
}

// NewProblem allocates a problem with n variables, no rows, default bounds
// [0, +Inf) and zero objective.
func NewProblem(n int) *Problem {
	p := &Problem{
		NumVars: n,
		Obj:     make([]float64, n),
		Lower:   make([]float64, n),
		Upper:   make([]float64, n),
	}
	for j := range p.Upper {
		p.Upper[j] = math.Inf(1)
	}
	return p
}

// AddRow appends a constraint row (copied).
func (p *Problem) AddRow(coef []float64, rel Relation, rhs float64) {
	row := make([]float64, p.NumVars)
	copy(row, coef)
	p.A = append(p.A, row)
	p.Rel = append(p.Rel, rel)
	p.B = append(p.B, rhs)
}

// Solution is the solver output.
type Solution struct {
	Status Status
	// X is the structural variable assignment (valid when Status is
	// Optimal; best effort otherwise). Solutions produced by
	// Prepared.SolveBounds alias the solver's scratch: copy X before the
	// next solve on the same Prepared.
	X []float64
	// Obj is c·X.
	Obj float64
	// Iterations counts simplex pivots over both phases (and any warm
	// dual-restore pivots that preceded them).
	Iterations int
	// Warm reports that the verdict came from the warm-start dual restore
	// (only ever true for Status Infeasible; see Prepared.SolveBounds).
	Warm bool
}
