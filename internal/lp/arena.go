package lp

import "sync"

// The scratch arena. One branch-and-bound run performs thousands of simplex
// solves over the same matrix, and a PTAS makespan search performs many such
// runs back to back; without pooling, every solve allocates O(m²) of dense
// state (basis inverse, refactorization workspace) plus column storage,
// which dominated the allocation profile of the PTAS tier. A scratch holds
// one slab per element type and hands out bump-allocated sub-slices; Prepare
// sizes every slab up front, so handed-out slices are never invalidated by
// growth. Released scratches return to a sync.Pool and are reused by later
// Prepare calls, making the steady-state allocation cost of a re-solve zero.

// scratch is a bump-allocated arena for one Prepared solver.
type scratch struct {
	f64                                  []float64
	i32                                  []int32
	vs                                   []varStatus
	ints                                 []int
	cols                                 []spCol
	rows                                 [][]float64
	nf64, ni32, nvs, nints, ncols, nrows int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func newScratch() *scratch {
	sc := scratchPool.Get().(*scratch)
	sc.nf64, sc.ni32, sc.nvs, sc.nints, sc.ncols, sc.nrows = 0, 0, 0, 0, 0, 0
	return sc
}

func releaseScratch(sc *scratch) {
	if sc != nil {
		scratchPool.Put(sc)
	}
}

// ensure grows every slab to the given total capacities before any sub-slice
// is handed out. Growing later would detach already-returned slices from the
// slab, so Prepare computes exact totals first.
func (sc *scratch) ensure(f64, i32, vs, ints, cols, rows int) {
	if cap(sc.f64) < f64 {
		sc.f64 = make([]float64, f64)
	}
	if cap(sc.i32) < i32 {
		sc.i32 = make([]int32, i32)
	}
	if cap(sc.vs) < vs {
		sc.vs = make([]varStatus, vs)
	}
	if cap(sc.ints) < ints {
		sc.ints = make([]int, ints)
	}
	if cap(sc.cols) < cols {
		sc.cols = make([]spCol, cols)
	}
	if cap(sc.rows) < rows {
		sc.rows = make([][]float64, rows)
	}
}

// The bump allocators return full-capacity sub-slices of reused slabs: the
// contents are garbage from earlier solves, and every consumer initializes
// what it reads.

func (sc *scratch) f64s(n int) []float64 {
	out := sc.f64[sc.nf64 : sc.nf64+n : sc.nf64+n]
	sc.nf64 += n
	return out
}

func (sc *scratch) i32s(n int) []int32 {
	out := sc.i32[sc.ni32 : sc.ni32+n : sc.ni32+n]
	sc.ni32 += n
	return out
}

func (sc *scratch) statuses(n int) []varStatus {
	out := sc.vs[sc.nvs : sc.nvs+n : sc.nvs+n]
	sc.nvs += n
	return out
}

func (sc *scratch) intSlice(n int) []int {
	out := sc.ints[sc.nints : sc.nints+n : sc.nints+n]
	sc.nints += n
	return out
}

func (sc *scratch) colHdrs(n int) []spCol {
	out := sc.cols[sc.ncols : sc.ncols+n : sc.ncols+n]
	sc.ncols += n
	return out
}

func (sc *scratch) rowHdrs(n int) [][]float64 {
	out := sc.rows[sc.nrows : sc.nrows+n : sc.nrows+n]
	sc.nrows += n
	return out
}
