package lp

import "fmt"

// Basis serialization. Scheduling sessions carry a terminal root basis
// across re-solves as a verdict-only warm hint (see warm.go); durable
// sessions additionally carry it across process restarts. A Basis restored
// from bytes is exactly as safe as a live one: tryWarmInfeasible either
// proves the current bounds infeasible with a Farkas-style argument over
// the *actual* problem data, or gives up and the cold solve runs — so a
// stale (or even adversarial) snapshot can waste pivots but never flip a
// verdict. RestoreBasis still validates shape and internal consistency
// strictly: the dual restore's "no sign-compatible entering column"
// conclusion scans nonbasic columns by status, so a basis whose status
// vector disagrees with its basic set could hide a column from the scan;
// such snapshots are rejected here rather than trusted there.

// BasisSnapshot is the serializable form of a Basis, produced by
// Basis.Snapshot and accepted by RestoreBasis. All fields are plain
// integers, so the JSON round trip is exact.
type BasisSnapshot struct {
	// Cols are the M basic column indices.
	Cols []int `json:"cols"`
	// Status is the resting status of every column (values 0-3: at lower
	// bound, at upper bound, free, basic), of length NCols.
	Status []int8 `json:"status"`
	// ArtSign are the artificial column signs (each exactly +1 or -1), of
	// length M.
	ArtSign []int8 `json:"art_sign"`
	// M and NCols are the row and column counts of the producing solve;
	// a restored basis only warm-starts problems with matching counts.
	M     int `json:"m"`
	NCols int `json:"ncols"`
}

// Snapshot returns the serializable form of b, or nil for a nil basis.
func (b *Basis) Snapshot() *BasisSnapshot {
	if b == nil {
		return nil
	}
	s := &BasisSnapshot{
		Cols:    append([]int(nil), b.cols...),
		Status:  make([]int8, len(b.status)),
		ArtSign: make([]int8, len(b.artSign)),
		M:       b.m,
		NCols:   b.ncols,
	}
	for i, st := range b.status {
		s.Status[i] = int8(st)
	}
	for i, v := range b.artSign {
		if v >= 0 {
			s.ArtSign[i] = 1
		} else {
			s.ArtSign[i] = -1
		}
	}
	return s
}

// RestoreBasis validates s and rebuilds a Basis usable as a warm hint. The
// restored basis never takes the live fast path (its scratch state is gone),
// only the refactorizing one. Shape errors, out-of-range indices, status
// values outside the enum, artificial signs other than ±1, and any
// disagreement between the basic column set and the status vector are
// rejected — everything else is safe by the verdict-only restore contract.
func RestoreBasis(s *BasisSnapshot) (*Basis, error) {
	if s == nil {
		return nil, fmt.Errorf("lp: nil basis snapshot")
	}
	if s.M < 1 || s.NCols < 2*s.M {
		return nil, fmt.Errorf("lp: basis snapshot has m=%d ncols=%d", s.M, s.NCols)
	}
	if len(s.Cols) != s.M {
		return nil, fmt.Errorf("lp: basis snapshot has %d basic columns, want %d", len(s.Cols), s.M)
	}
	if len(s.Status) != s.NCols {
		return nil, fmt.Errorf("lp: basis snapshot has %d statuses, want %d", len(s.Status), s.NCols)
	}
	if len(s.ArtSign) != s.M {
		return nil, fmt.Errorf("lp: basis snapshot has %d artificial signs, want %d", len(s.ArtSign), s.M)
	}
	b := &Basis{
		cols:    make([]int, s.M),
		status:  make([]varStatus, s.NCols),
		artSign: make([]float64, s.M),
		m:       s.M,
		ncols:   s.NCols,
	}
	basic := make(map[int]bool, s.M)
	for i, c := range s.Cols {
		if c < 0 || c >= s.NCols {
			return nil, fmt.Errorf("lp: basic column %d out of range [0,%d)", c, s.NCols)
		}
		if basic[c] {
			return nil, fmt.Errorf("lp: duplicate basic column %d", c)
		}
		basic[c] = true
		b.cols[i] = c
	}
	for j, st := range s.Status {
		if st < int8(atLower) || st > int8(inBasis) {
			return nil, fmt.Errorf("lp: column %d has status %d outside [%d,%d]", j, st, atLower, inBasis)
		}
		if (varStatus(st) == inBasis) != basic[j] {
			return nil, fmt.Errorf("lp: column %d status disagrees with the basic set", j)
		}
		b.status[j] = varStatus(st)
	}
	for i, v := range s.ArtSign {
		if v != 1 && v != -1 {
			return nil, fmt.Errorf("lp: artificial sign %d is not ±1", v)
		}
		b.artSign[i] = float64(v)
	}
	return b, nil
}
