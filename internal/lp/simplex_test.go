package lp

import (
	"math"
	"math/rand"
	"testing"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSimpleLP(t *testing.T) {
	// max x+y s.t. x+2y <= 4, 3x+y <= 6, x,y >= 0  => min -(x+y)
	// Optimum at intersection: x = 8/5, y = 6/5, obj = 14/5.
	p := NewProblem(2)
	p.Obj = []float64{-1, -1}
	p.AddRow([]float64{1, 2}, LE, 4)
	p.AddRow([]float64{3, 1}, LE, 6)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal {
		t.Fatalf("status = %v", sol.Status)
	}
	if !approxEq(sol.Obj, -14.0/5, 1e-7) {
		t.Errorf("obj = %v, want -2.8", sol.Obj)
	}
	if !approxEq(sol.X[0], 1.6, 1e-7) || !approxEq(sol.X[1], 1.2, 1e-7) {
		t.Errorf("x = %v", sol.X)
	}
}

func TestEqualityConstraint(t *testing.T) {
	// min x + 2y s.t. x + y = 3, x,y in [0, 2]. Optimum x=2, y=1, obj=4.
	p := NewProblem(2)
	p.Obj = []float64{1, 2}
	p.Upper = []float64{2, 2}
	p.AddRow([]float64{1, 1}, EQ, 3)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Obj, 4, 1e-7) {
		t.Fatalf("status=%v obj=%v", sol.Status, sol.Obj)
	}
}

func TestGEConstraint(t *testing.T) {
	// min 2x + 3y s.t. x + y >= 4, x <= 3, y <= 3. Optimum x=3, y=1, obj=9.
	p := NewProblem(2)
	p.Obj = []float64{2, 3}
	p.Upper = []float64{3, 3}
	p.AddRow([]float64{1, 1}, GE, 4)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Obj, 9, 1e-7) {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Obj, sol.X)
	}
}

func TestInfeasible(t *testing.T) {
	p := NewProblem(1)
	p.Upper = []float64{1}
	p.AddRow([]float64{1}, GE, 2)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Infeasible {
		t.Fatalf("status = %v, want infeasible", sol.Status)
	}
}

func TestUnbounded(t *testing.T) {
	p := NewProblem(1)
	p.Obj = []float64{-1}
	p.AddRow([]float64{0}, LE, 1) // vacuous row keeps m > 0
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Unbounded {
		t.Fatalf("status = %v, want unbounded", sol.Status)
	}
}

func TestFreeVariable(t *testing.T) {
	// min x with x free, x >= -5 via constraint: optimum -5.
	p := NewProblem(1)
	p.Obj = []float64{1}
	p.Lower = []float64{math.Inf(-1)}
	p.Upper = []float64{math.Inf(1)}
	p.AddRow([]float64{1}, GE, -5)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Obj, -5, 1e-7) {
		t.Fatalf("status=%v obj=%v", sol.Status, sol.Obj)
	}
}

func TestBoundFlipPath(t *testing.T) {
	// max x1 + x2 + x3 with all in [0, 1] and x1 + x2 + x3 <= 2.5:
	// forces bound structure; optimum 2.5.
	p := NewProblem(3)
	p.Obj = []float64{-1, -1, -1}
	p.Upper = []float64{1, 1, 1}
	p.AddRow([]float64{1, 1, 1}, LE, 2.5)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Obj, -2.5, 1e-7) {
		t.Fatalf("status=%v obj=%v x=%v", sol.Status, sol.Obj, sol.X)
	}
}

func TestDegenerateKleeMintyLike(t *testing.T) {
	// A degenerate LP that stresses anti-cycling: transportation-style ties.
	p := NewProblem(4)
	p.Obj = []float64{-1, -1, 0, 0}
	p.AddRow([]float64{1, 0, 1, 0}, EQ, 1)
	p.AddRow([]float64{0, 1, 0, 1}, EQ, 1)
	p.AddRow([]float64{1, 1, 0, 0}, LE, 1)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.Obj, -1, 1e-7) {
		t.Fatalf("status=%v obj=%v", sol.Status, sol.Obj)
	}
}

func TestFixedVariables(t *testing.T) {
	// x fixed at 2 by bounds; min y s.t. y >= x.
	p := NewProblem(2)
	p.Obj = []float64{0, 1}
	p.Lower = []float64{2, 0}
	p.Upper = []float64{2, math.Inf(1)}
	p.AddRow([]float64{-1, 1}, GE, 0)
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != Optimal || !approxEq(sol.X[1], 2, 1e-7) {
		t.Fatalf("status=%v x=%v", sol.Status, sol.X)
	}
}

// bruteForceLP enumerates all candidate vertices of a small LP (every
// subset of tight constraints/bounds) and returns the best feasible
// objective, or NaN when infeasible. Only for n <= 3 and few rows.
func bruteForceLP(t *testing.T, p *Problem) float64 {
	t.Helper()
	n := p.NumVars
	// Collect hyperplanes: rows (as equalities) and finite bounds.
	var planes []plane
	for i, row := range p.A {
		planes = append(planes, plane{row, p.B[i]})
	}
	for j := 0; j < n; j++ {
		e := make([]float64, n)
		e[j] = 1
		if !math.IsInf(p.Lower[j], -1) {
			planes = append(planes, plane{e, p.Lower[j]})
		}
		if !math.IsInf(p.Upper[j], 1) {
			planes = append(planes, plane{e, p.Upper[j]})
		}
	}
	feasible := func(x []float64) bool {
		for j := 0; j < n; j++ {
			if x[j] < p.Lower[j]-1e-6 || x[j] > p.Upper[j]+1e-6 {
				return false
			}
		}
		for i, row := range p.A {
			dot := 0.0
			for j := 0; j < n; j++ {
				dot += row[j] * x[j]
			}
			switch p.Rel[i] {
			case LE:
				if dot > p.B[i]+1e-6 {
					return false
				}
			case GE:
				if dot < p.B[i]-1e-6 {
					return false
				}
			case EQ:
				if math.Abs(dot-p.B[i]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	best := math.NaN()
	// Choose n planes, solve the linear system, keep feasible vertices.
	idx := make([]int, n)
	var rec func(start, d int)
	rec = func(start, d int) {
		if d == n {
			x := solveSquare(planes, idx, n)
			if x == nil || !feasible(x) {
				return
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += p.Obj[j] * x[j]
			}
			if math.IsNaN(best) || obj < best {
				best = obj
			}
			return
		}
		for i := start; i < len(planes); i++ {
			idx[d] = i
			rec(i+1, d+1)
		}
	}
	rec(0, 0)
	return best
}

type plane struct {
	a   []float64
	rhs float64
}

func solveSquare(planes []plane, idx []int, n int) []float64 {
	aug := make([][]float64, n)
	for r := 0; r < n; r++ {
		aug[r] = make([]float64, n+1)
		copy(aug[r], planes[idx[r]].a)
		aug[r][n] = planes[idx[r]].rhs
	}
	for col := 0; col < n; col++ {
		piv := -1
		for r := col; r < n; r++ {
			if math.Abs(aug[r][col]) > 1e-9 {
				piv = r
				break
			}
		}
		if piv < 0 {
			return nil
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		f := aug[col][col]
		for c := col; c <= n; c++ {
			aug[col][c] /= f
		}
		for r := 0; r < n; r++ {
			if r == col || aug[r][col] == 0 {
				continue
			}
			g := aug[r][col]
			for c := col; c <= n; c++ {
				aug[r][c] -= g * aug[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := 0; r < n; r++ {
		x[r] = aug[r][n]
	}
	return x
}

func TestAgainstVertexEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(2)
		rows := 1 + rng.Intn(3)
		p := NewProblem(n)
		for j := 0; j < n; j++ {
			p.Obj[j] = float64(rng.Intn(11) - 5)
			p.Upper[j] = float64(1 + rng.Intn(5)) // finite box keeps it bounded
		}
		for i := 0; i < rows; i++ {
			row := make([]float64, n)
			for j := range row {
				row[j] = float64(rng.Intn(7) - 3)
			}
			rel := Relation(rng.Intn(3))
			p.AddRow(row, rel, float64(rng.Intn(9)-2))
		}
		sol, err := Solve(p)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceLP(t, p)
		switch sol.Status {
		case Optimal:
			if math.IsNaN(want) {
				t.Errorf("trial %d: simplex optimal %v but brute force says infeasible", trial, sol.Obj)
			} else if !approxEq(sol.Obj, want, 1e-5) {
				t.Errorf("trial %d: simplex %v, brute force %v", trial, sol.Obj, want)
			}
		case Infeasible:
			if !math.IsNaN(want) {
				t.Errorf("trial %d: simplex infeasible but brute force found %v", trial, want)
			}
		case Unbounded:
			t.Errorf("trial %d: unexpected unbounded on a box-bounded LP", trial)
		}
	}
}

func TestValidateErrors(t *testing.T) {
	p := NewProblem(2)
	p.Obj = []float64{1}
	if err := p.Validate(); err == nil {
		t.Error("want objective length error")
	}
	p = NewProblem(1)
	p.Lower[0] = 2
	p.Upper[0] = 1
	if err := p.Validate(); err == nil {
		t.Error("want crossed bounds error")
	}
	p = NewProblem(1)
	p.A = append(p.A, []float64{1, 2})
	p.B = append(p.B, 1)
	p.Rel = append(p.Rel, LE)
	if err := p.Validate(); err == nil {
		t.Error("want row length error")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		Optimal: "optimal", Infeasible: "infeasible",
		Unbounded: "unbounded", IterLimit: "iteration-limit",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
}
