package lp

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// randomBoundedLP builds a feasible-by-construction bounded LP with random
// integer data, the shape the N-fold flattening produces (equality rows,
// finite box).
func randomBoundedLP(rng *rand.Rand, m, n int) *Problem {
	p := NewProblem(n)
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		p.Lower[j] = 0
		p.Upper[j] = float64(2 + rng.Intn(8))
		x[j] = float64(rng.Intn(int(p.Upper[j]) + 1))
	}
	for i := 0; i < m; i++ {
		row := make([]float64, n)
		rhs := 0.0
		for j := 0; j < n; j++ {
			if rng.Intn(3) == 0 {
				row[j] = float64(rng.Intn(7) - 3)
				rhs += row[j] * x[j]
			}
		}
		p.AddRow(row, EQ, rhs)
	}
	return p
}

// TestPreparedMatchesSolveCtx pins the arithmetic identity of the pooled
// re-solve path: repeated SolveBounds on one Prepared must return exactly
// (bit for bit) what a fresh SolveCtx returns for the same bounds.
func TestPreparedMatchesSolveCtx(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := randomBoundedLP(rng, 4, 9)
		pr, err := Prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		lower := append([]float64(nil), p.Lower...)
		upper := append([]float64(nil), p.Upper...)
		for patch := 0; patch < 10; patch++ {
			j := rng.Intn(p.NumVars)
			upper[j] = math.Max(lower[j], upper[j]-1)
			var got Solution
			if err := pr.SolveBounds(context.Background(), lower, upper, nil, &got); err != nil {
				t.Fatal(err)
			}
			q := *p
			q.Lower, q.Upper = lower, upper
			want, err := SolveCtx(context.Background(), &q)
			if err != nil {
				t.Fatal(err)
			}
			if got.Status != want.Status || got.Iterations != want.Iterations {
				t.Fatalf("trial %d patch %d: prepared (%v, %d iters) != fresh (%v, %d iters)",
					trial, patch, got.Status, got.Iterations, want.Status, want.Iterations)
			}
			for k := range want.X {
				if got.X[k] != want.X[k] {
					t.Fatalf("trial %d patch %d: X[%d] = %v != %v", trial, patch, k, got.X[k], want.X[k])
				}
			}
		}
		pr.Release()
	}
}

// TestWarmVerdictOnly checks the warm-start contract on random bound
// patches: a warm solve must return the same status as a cold solve, the
// identical X whenever a solution exists, and sol.Warm only together with
// Infeasible.
func TestWarmVerdictOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	warmProofs := 0
	for trial := 0; trial < 60; trial++ {
		p := randomBoundedLP(rng, 5, 10)
		pr, err := Prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		var root Solution
		if err := pr.SolveBounds(context.Background(), nil, nil, nil, &root); err != nil {
			t.Fatal(err)
		}
		if root.Status != Optimal {
			pr.Release()
			continue
		}
		basis := pr.CaptureBasis()
		if basis == nil {
			t.Fatal("CaptureBasis returned nil after an optimal solve")
		}
		lower := append([]float64(nil), p.Lower...)
		upper := append([]float64(nil), p.Upper...)
		j := rng.Intn(p.NumVars)
		// Tighten hard enough that infeasibility is common.
		upper[j] = lower[j]
		var warm Solution
		if err := pr.SolveBounds(context.Background(), lower, upper, basis, &warm); err != nil {
			t.Fatal(err)
		}
		prCold, err := Prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		var cold Solution
		if err := prCold.SolveBounds(context.Background(), lower, upper, nil, &cold); err != nil {
			t.Fatal(err)
		}
		if warm.Status != cold.Status {
			t.Fatalf("trial %d: warm status %v != cold status %v", trial, warm.Status, cold.Status)
		}
		if warm.Warm {
			warmProofs++
			if warm.Status != Infeasible {
				t.Fatalf("trial %d: Warm set with status %v", trial, warm.Status)
			}
		}
		if cold.Status == Optimal {
			for k := range cold.X {
				if warm.X[k] != cold.X[k] {
					t.Fatalf("trial %d: warm X[%d] = %v != cold %v", trial, k, warm.X[k], cold.X[k])
				}
			}
		}
		pr.Release()
		prCold.Release()
	}
	if warmProofs == 0 {
		t.Fatal("no warm restore ever proved infeasibility; the test is vacuous")
	}
}

// TestWarmRestoreProvesInfeasible pins the textbook case: the parent's
// optimal basis plus one tightened bound that empties the feasible region
// must be recognized by the dual restore without a cold solve.
func TestWarmRestoreProvesInfeasible(t *testing.T) {
	p := NewProblem(2)
	p.Upper[0], p.Upper[1] = 6, 6
	p.AddRow([]float64{1, 1}, EQ, 10)
	pr, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Release()
	var root Solution
	if err := pr.SolveBounds(context.Background(), nil, nil, nil, &root); err != nil {
		t.Fatal(err)
	}
	if root.Status != Optimal {
		t.Fatalf("root status %v", root.Status)
	}
	basis := pr.CaptureBasis()
	var child Solution
	if err := pr.SolveBounds(context.Background(), []float64{0, 0}, []float64{2, 6}, basis, &child); err != nil {
		t.Fatal(err)
	}
	if child.Status != Infeasible {
		t.Fatalf("child status %v, want Infeasible", child.Status)
	}
	if !child.Warm {
		t.Fatal("infeasibility was not proven by the warm restore")
	}
}

// TestPreparedSolveAllocs pins the pooled re-solve to zero steady-state
// allocations: after Prepare, solving under fresh bounds must not allocate.
func TestPreparedSolveAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := randomBoundedLP(rng, 8, 24)
	pr, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Release()
	lower := append([]float64(nil), p.Lower...)
	upper := append([]float64(nil), p.Upper...)
	var sol Solution
	ctx := context.Background()
	// Warm the path once (lazy runtime state aside, the solve itself is
	// allocation-free).
	if err := pr.SolveBounds(ctx, lower, upper, nil, &sol); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(100, func() {
		if err := pr.SolveBounds(ctx, lower, upper, nil, &sol); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0.5 {
		t.Fatalf("pooled re-solve allocates %.1f objects per run, want 0", avg)
	}
}

// TestCaptureBasisAfterRelease verifies the use-after-Release guard.
func TestCaptureBasisAfterRelease(t *testing.T) {
	p := NewProblem(1)
	p.AddRow([]float64{1}, LE, 1)
	pr, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	pr.Release()
	if b := pr.CaptureBasis(); b != nil {
		t.Fatal("CaptureBasis after Release should return nil")
	}
	var sol Solution
	if err := pr.SolveBounds(context.Background(), nil, nil, nil, &sol); err == nil {
		t.Fatal("SolveBounds after Release should fail")
	}
}
