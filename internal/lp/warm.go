package lp

// Warm starts. A branch-and-bound child differs from its parent by a single
// tightened variable bound, so the parent's optimal basis is one or two dual
// pivots away from deciding the child — while a cold solve re-runs a full
// Phase-1/Phase-2 simplex from the artificial basis. The catch is
// determinism: a warm solve that *returned* a different optimal vertex than
// the cold solve would steer branch-and-bound down a different tree and
// change which schedule the PTAS ultimately emits. The restore below is
// therefore verdict-only: starting from a captured basis it runs a bounded
// dual simplex that either proves the child's bounds infeasible (pruning the
// node without any cold work — the common case for the losing side of a
// branch) or abandons the attempt, in which case the ordinary cold solve
// runs and returns exactly what it always returned. Warm-started and cold
// pipelines thus make identical decisions everywhere, which the PTAS parity
// tests check end to end.
//
// The restore is only attempted for identically-zero objectives (the PTAS's
// feasibility LPs): with zero costs every basis is dual feasible, so the
// dual simplex needs no ratio test and its infeasibility certificate — a
// violated basic bound whose row offers no sign-compatible entering column —
// is the textbook Farkas argument.

// Basis is a snapshot of a simplex basis: the basic column set, the resting
// status of every nonbasic column, and the artificial column signs chosen by
// the solve that produced it. Capture one with Prepared.CaptureBasis after a
// solve and pass it to SolveBounds on a related problem (same row and column
// counts) to enable the warm restore. A Basis is immutable and safe to share
// across goroutines; restoring it never mutates it.
type Basis struct {
	cols     []int
	status   []varStatus
	artSign  []float64
	m, ncols int
	// liveID links the snapshot to the solve that produced it; the owning
	// Prepared remembers its most recent capture (lastCaptured) instead of
	// the Basis pointing back at the Prepared, so a long-lived Basis (the
	// cross-probe root hint) never pins a released solver or its problem.
	liveID uint64
}

// CaptureBasis snapshots the terminal basis of the most recent successful
// SolveBounds on this Prepared. It returns nil if the last solve did not end
// at an optimal basis (or the scratch has since been disturbed), so callers
// can pass the result straight through as an optional warm hint.
func (pr *Prepared) CaptureBasis() *Basis {
	if pr.released || pr.liveID == 0 {
		return nil
	}
	st := &pr.st
	b := &Basis{
		cols:    append([]int(nil), st.basis...),
		status:  append([]varStatus(nil), st.status...),
		artSign: make([]float64, pr.m),
		m:       pr.m,
		ncols:   pr.ncols,
		liveID:  pr.liveID,
	}
	for i := 0; i < pr.m; i++ {
		b.artSign[i] = st.cols[pr.n+pr.m+i].val[0]
	}
	pr.lastCaptured = b
	return b
}

// maxRestorePivots caps the dual restore. Restore pivots are cheap (O(m)
// incremental value updates, no refactorization), but an attempt that has
// not certified infeasibility after this many is unlikely to beat the cold
// solve it would have to fall back to anyway. 64 keeps >95% of observed
// certificates on the PTAS workloads while bounding the waste on feasible
// children.
const maxRestorePivots = 64

// tryWarmInfeasible runs the verdict-only dual-simplex restore described in
// the file comment. It returns (true, pivots) only when the current bounds
// are proven infeasible; any other outcome — primal feasibility reached,
// pivot budget exhausted, singular refactorization — returns false and the
// caller falls through to the cold solve. Bounds and b must already be set.
//
// rc, when non-nil, memoizes the restored start state across sibling solves
// (see SolveBatch): the first restore from warm captures the post-refactor
// basis inverse into rc, and later calls with the same warm copy it back in
// O(m²) instead of refactoring in O(m³). Refactorization is a deterministic
// function of the basis columns, so the copied inverse is bit-identical to
// the one a fresh refactor would build — and the restore stays verdict-only
// regardless, so caching can never change what any solve returns.
func (pr *Prepared) tryWarmInfeasible(warm *Basis, rc *restoreCache) (bool, int) {
	st := &pr.st
	m, n := pr.m, pr.n
	// Artificials stay pinned at zero (the captured basis postdates Phase 1)
	// and keep the signs they had when the basis was captured, so the basis
	// matrix is reproduced exactly.
	for i := 0; i < m; i++ {
		j := n + m + i
		st.lo[j], st.up[j] = 0, 0
		st.cols[j].val[0] = warm.artSign[i]
	}
	switch {
	case rc != nil && rc.valid:
		// Sibling fast path: a previous solve in the batch already restored
		// this warm basis; copy its start state instead of refactoring. The
		// basic values still depend on this solve's bounds, so they are
		// always recomputed.
		pr.liveID = 0
		copy(st.status, rc.status)
		copy(st.basis, rc.basis)
		for i := 0; i < m; i++ {
			copy(st.binv[i], rc.binv[i*m:(i+1)*m])
		}
		st.recomputeXB()
	case warm == pr.lastCaptured && warm.liveID == pr.liveID && pr.liveID != 0:
		// Live fast path: st still holds the captured basis, statuses and
		// basis inverse (depth-first search explores the first child while
		// its parent's state is still resident). Only the basic values need
		// refreshing under the new bounds.
		pr.liveID = 0
		st.recomputeXB()
		if rc != nil {
			rc.capture(st)
		}
	default:
		pr.liveID = 0
		copy(st.status, warm.status)
		copy(st.basis, warm.cols)
		if err := st.refactor(); err != nil {
			return false, 0 // singular under these columns: no usable start
		}
		if rc != nil {
			rc.capture(st)
		}
	}
	pivots := 0
	for ; pivots < maxRestorePivots; pivots++ {
		if st.done != nil && pivots%8 == 0 {
			select {
			case <-st.done:
				st.interrupted = true
				return false, pivots
			default:
			}
		}
		// Most-violated basic bound picks the leaving row.
		r, toLower := -1, false
		worst := feasTol
		for k := 0; k < m; k++ {
			bk := st.basis[k]
			if v := st.lo[bk] - st.xb[k]; v > worst {
				r, toLower, worst = k, true, v
			}
			if v := st.xb[k] - st.up[bk]; v > worst {
				r, toLower, worst = k, false, v
			}
		}
		if r < 0 {
			return false, pivots // primal feasible: nothing to prove
		}
		// Row r of B^{-1}A decides which nonbasic columns can repair the
		// violation. xb[r] must increase when below its lower bound; moving
		// nonbasic j by t changes xb[r] by −t·α_j, and t is sign-constrained
		// by j's resting bound.
		rho := st.binv[r]
		enter := -1
		bestMag := pivotTol
		for j := 0; j < st.ncols; j++ {
			switch st.status[j] {
			case inBasis:
				continue
			case atLower, atUpper, atFree:
			}
			if st.lo[j] == st.up[j] {
				continue // fixed: cannot move
			}
			col := st.cols[j]
			alpha := 0.0
			for k, i := range col.idx {
				alpha += rho[i] * col.val[k]
			}
			mag := alpha
			if mag < 0 {
				mag = -mag
			}
			if mag <= pivotTol {
				continue
			}
			ok := false
			switch st.status[j] {
			case atLower: // t ≥ 0
				ok = (toLower && alpha < 0) || (!toLower && alpha > 0)
			case atUpper: // t ≤ 0
				ok = (toLower && alpha > 0) || (!toLower && alpha < 0)
			case atFree: // either direction
				ok = true
			}
			if ok && mag > bestMag {
				bestMag, enter = mag, j
			}
		}
		if enter < 0 {
			// No column can move xb[r] toward its bound: every feasible
			// point violates it at least as much as the current basis does.
			return true, pivots
		}
		// The leaving variable exits at the bound it violated.
		target := st.up[st.basis[r]]
		leaveAt := atUpper
		if toLower {
			target = st.lo[st.basis[r]]
			leaveAt = atLower
		}
		// Full entering direction for the eta update and the O(m)
		// incremental move of the basic values.
		w := st.w
		colE := st.cols[enter]
		for i := 0; i < m; i++ {
			wi := 0.0
			row := st.binv[i]
			for k, ci := range colE.idx {
				wi += row[ci] * colE.val[k]
			}
			w[i] = wi
		}
		theta := (st.xb[r] - target) / w[r]
		enterVal := st.nonbasicValue(enter) + theta
		for k := 0; k < m; k++ {
			st.xb[k] -= theta * w[k]
		}
		leaving := st.basis[r]
		st.status[leaving] = leaveAt
		st.status[enter] = inBasis
		st.basis[r] = enter
		st.pivotBinv(r, w)
		st.xb[r] = enterVal
	}
	return false, pivots
}
