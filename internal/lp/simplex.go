package lp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"ccsched/internal/faultinject"
	"ccsched/internal/trace"
)

const (
	costTol  = 1e-9 // reduced-cost optimality tolerance
	pivotTol = 1e-9 // minimum magnitude of an acceptable pivot element
	feasTol  = 1e-7 // bound/constraint feasibility tolerance
	// refactorEvery bounds error drift: the basis inverse is rebuilt from
	// scratch after this many pivots.
	refactorEvery = 64
	// blandAfter switches to Bland's anti-cycling rule after this many
	// consecutive degenerate pivots.
	blandAfter = 40
)

// spCol is a sparse column of the standard-form constraint matrix.
type spCol struct {
	idx []int32
	val []float64
}

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	atFree // nonbasic free variable resting at zero
	inBasis
)

// simplexState is the mutable solver state over the standard-form program
// min obj·x  s.t.  Acol x = b,  lo ≤ x ≤ up, where columns comprise the
// structural variables, one slack per row, and one artificial per row.
type simplexState struct {
	m, ncols    int
	cols        []spCol // ncols sparse columns of logical length m
	lo, up      []float64
	b           []float64
	status      []varStatus
	basis       []int       // m basic column indices
	binv        [][]float64 // dense m×m basis inverse
	xb          []float64   // values of basic variables
	y, w        []float64   // pivot scratch (dual vector, entering direction)
	aug         [][]float64 // m×2m refactorization scratch
	rhs         []float64   // refactorization right-hand-side scratch
	iters       int
	maxIters    int
	degenerate  int // consecutive degenerate pivots
	bland       bool
	done        <-chan struct{} // cancellation signal, checked between pivots
	ctx         context.Context // for surfacing ctx.Err() on interruption
	interrupted bool            // the done channel fired mid-optimize
}

// ctxCheckEvery is how many simplex pivots pass between cancellation polls;
// one pivot is O(m·ncols), so cancellation latency stays well below one
// branch-and-bound node.
const ctxCheckEvery = 32

// Prepared is a reusable solver for one constraint matrix: the sparse
// standard-form columns and every piece of dense scratch (the m×m basis
// inverse, basic values, refactorization workspace) are allocated once — on
// a pooled arena — so repeated solves that differ only in variable bounds
// (branch-and-bound nodes, makespan-guess re-probes) stop paying O(m²)
// allocations and the O(m·n) validation scan per solve.
//
// A Prepared is NOT safe for concurrent use; each goroutine must Prepare its
// own. Call Release when done to return the arena to the pool.
type Prepared struct {
	p        *Problem // shell; rows, objective and default bounds are read from it
	m, n     int
	ncols    int
	zeroObj  bool
	st       simplexState
	phase1   []float64
	phase2   []float64
	resid    []float64
	xout     []float64
	sc       *scratch
	released bool
	// solveSeq/liveID implement the live-state fast path for warm restores:
	// liveID is nonzero while st still holds the terminal state of the
	// solve that produced it, so a Basis captured from that solve
	// (lastCaptured) can be restored without refactoring.
	solveSeq     uint64
	liveID       uint64
	lastCaptured *Basis
	// rayValid marks that the most recent SolveBounds ended in a cold
	// phase-1 infeasibility and st still holds its terminal state, so
	// InfeasibilityRay can derive the Farkas ray on demand (the derivation
	// is O(m²); deferring it keeps non-root infeasible nodes, which nobody
	// asks a ray of, at zero extra cost).
	rayValid bool
	// traceSpan, when enabled, parents the lp_batch spans SolveBatch
	// records (see SetTraceSpan). Purely observational.
	traceSpan trace.Span
}

// SetTraceSpan attaches a parent trace span to this Prepared: subsequent
// SolveBatch calls record an lp_batch child span (batch size, summed pivots,
// warm-restore hits) under it. The zero Span detaches. Tracing reads only
// already-computed Solution fields and never alters a solve.
func (pr *Prepared) SetTraceSpan(sp trace.Span) { pr.traceSpan = sp }

// errReleased is returned when a Prepared is used after Release.
var errReleased = errors.New("lp: Prepared used after Release")

// Prepare validates p once and builds a reusable solver for its rows. The
// problem's bounds act as defaults; SolveBounds may override them per call.
func Prepare(p *Problem) (*Prepared, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	m, n := len(p.A), p.NumVars
	ncols := n + 2*m
	nnz := 0
	for i := range p.A {
		row := p.A[i]
		for j := 0; j < n; j++ {
			if row[j] != 0 {
				nnz++
			}
		}
	}
	pr := &Prepared{p: p, m: m, n: n, ncols: ncols, sc: newScratch()}
	pr.zeroObj = true
	for _, c := range p.Obj {
		if c != 0 {
			pr.zeroObj = false
			break
		}
	}
	sc := pr.sc
	sc.ensure(
		nnz+2*m+ // column values
			2*ncols+ // lo, up
			m+ // b
			m*m+ // binv
			2*m*m+ // aug
			2*ncols+ // phase1, phase2
			n+ // xout
			6*m, // xb, y, w, rhs, resid + slack for alignment
		nnz+2*m, // column indices
		ncols,   // statuses
		m,       // basis
		ncols,   // column headers
		2*m,     // binv + aug row headers
	)
	idxSlab := sc.i32s(nnz + 2*m)
	valSlab := sc.f64s(nnz + 2*m)
	cols := sc.colHdrs(ncols)
	pos := 0
	for j := 0; j < n; j++ {
		start := pos
		for i := 0; i < m; i++ {
			if v := p.A[i][j]; v != 0 {
				idxSlab[pos] = int32(i)
				valSlab[pos] = v
				pos++
			}
		}
		cols[j] = spCol{idx: idxSlab[start:pos:pos], val: valSlab[start:pos:pos]}
	}
	// Slack columns: row i gets slack n+i with A x + s = b.
	for i := 0; i < m; i++ {
		idxSlab[pos] = int32(i)
		valSlab[pos] = 1
		cols[n+i] = spCol{idx: idxSlab[pos : pos+1 : pos+1], val: valSlab[pos : pos+1 : pos+1]}
		pos++
	}
	// Artificial columns: the sign is set per solve from the residuals.
	for i := 0; i < m; i++ {
		idxSlab[pos] = int32(i)
		valSlab[pos] = 1
		cols[n+m+i] = spCol{idx: idxSlab[pos : pos+1 : pos+1], val: valSlab[pos : pos+1 : pos+1]}
		pos++
	}
	st := &pr.st
	st.m, st.ncols = m, ncols
	st.cols = cols
	st.lo, st.up = sc.f64s(ncols), sc.f64s(ncols)
	st.b = sc.f64s(m)
	st.status = sc.statuses(ncols)
	st.basis = sc.intSlice(m)
	binvFlat := sc.f64s(m * m)
	st.binv = sc.rowHdrs(m)
	for i := 0; i < m; i++ {
		st.binv[i] = binvFlat[i*m : (i+1)*m : (i+1)*m]
	}
	augFlat := sc.f64s(2 * m * m)
	st.aug = sc.rowHdrs(m)
	for i := 0; i < m; i++ {
		st.aug[i] = augFlat[i*2*m : (i+1)*2*m : (i+1)*2*m]
	}
	st.xb = sc.f64s(m)
	st.y = sc.f64s(m)
	st.w = sc.f64s(m)
	st.rhs = sc.f64s(m)
	pr.resid = sc.f64s(m)
	pr.phase1 = sc.f64s(ncols)
	pr.phase2 = sc.f64s(ncols)
	pr.xout = sc.f64s(n)
	st.maxIters = 20000 + 200*ncols
	return pr, nil
}

// Release returns the solver's arena to the pool. The Prepared (and any
// Solution.X pointing into its scratch) must not be used afterwards.
func (pr *Prepared) Release() {
	if pr.released {
		return
	}
	pr.released = true
	pr.liveID = 0
	pr.lastCaptured = nil
	releaseScratch(pr.sc)
	pr.sc = nil
}

// SolveBounds solves the prepared program under the given structural bounds
// (nil slices select the problem's own bounds). The result is written into
// sol; sol.X aliases internal scratch and is only valid until the next call
// on this Prepared (callers that keep solutions must copy it).
//
// When warm is non-nil and the objective is identically zero, a bounded
// dual-simplex restore runs first: starting from the captured basis it
// either proves the new bounds infeasible — returning Status Infeasible with
// sol.Warm set, in a handful of pivots — or gives up and falls through to
// the ordinary cold two-phase solve. The restore never influences anything
// but that early Infeasible verdict, so warm-started and cold solves return
// bit-identical solutions whenever a solution exists: this is what keeps
// branch-and-bound trajectories (and therefore every schedule the PTAS
// emits) independent of warm-starting.
func (pr *Prepared) SolveBounds(ctx context.Context, lower, upper []float64, warm *Basis, sol *Solution) error {
	if err := faultinject.Check("lp.solve"); err != nil {
		return err
	}
	return pr.solveBoundsCached(ctx, lower, upper, warm, nil, sol)
}

// solveBoundsCached is SolveBounds with an optional warm-restore cache (see
// tryWarmInfeasible and SolveBatch). A nil rc is exactly SolveBounds.
func (pr *Prepared) solveBoundsCached(ctx context.Context, lower, upper []float64, warm *Basis, rc *restoreCache, sol *Solution) error {
	if pr.released {
		return errReleased
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	*sol = Solution{}
	pr.rayValid = false
	m, n := pr.m, pr.n
	st := &pr.st
	p := pr.p
	if lower == nil {
		lower = p.Lower
	}
	if upper == nil {
		upper = p.Upper
	}
	// Structural bounds; an empty box is infeasible without any pivoting.
	for j := 0; j < n; j++ {
		if lower[j] > upper[j] {
			sol.Status = Infeasible
			return nil
		}
		st.lo[j], st.up[j] = lower[j], upper[j]
	}
	// Slack bounds are fixed by the row relations.
	for i := 0; i < m; i++ {
		j := n + i
		switch p.Rel[i] {
		case LE:
			st.lo[j], st.up[j] = 0, math.Inf(1)
		case GE:
			st.lo[j], st.up[j] = math.Inf(-1), 0
		case EQ:
			st.lo[j], st.up[j] = 0, 0
		}
	}
	copy(st.b, p.B)
	st.done = ctx.Done()
	st.ctx = ctx
	st.interrupted = false

	if warm != nil && pr.zeroObj && warm.m == m && warm.ncols == pr.ncols {
		proved, pivots := pr.tryWarmInfeasible(warm, rc)
		sol.Iterations += pivots
		if st.interrupted {
			return st.ctx.Err()
		}
		if proved {
			sol.Status = Infeasible
			sol.Warm = true
			return nil
		}
	}
	return pr.solveCold(sol)
}

// solveCold runs the ordinary two-phase simplex from the artificial basis.
// It is arithmetically identical to the pre-warm-start solver: scratch reuse
// only changes where the numbers live, never their values.
func (pr *Prepared) solveCold(sol *Solution) error {
	m, n := pr.m, pr.n
	st := &pr.st
	p := pr.p
	pr.liveID = 0
	st.iters = 0
	st.degenerate = 0
	st.bland = false
	// Artificial bounds reset (a preceding solve pinned them to zero).
	for i := 0; i < m; i++ {
		j := n + m + i
		st.lo[j], st.up[j] = 0, math.Inf(1)
	}
	// Initial nonbasic statuses.
	for j := 0; j < n+m; j++ {
		switch {
		case !math.IsInf(st.lo[j], -1):
			st.status[j] = atLower
		case !math.IsInf(st.up[j], 1):
			st.status[j] = atUpper
		default:
			st.status[j] = atFree
		}
	}
	// Residuals at the initial nonbasic point determine artificial signs.
	resid := pr.resid
	copy(resid, st.b)
	for j := 0; j < n+m; j++ {
		if v := st.nonbasicValue(j); v != 0 {
			col := st.cols[j]
			for k, i := range col.idx {
				resid[i] -= col.val[k] * v
			}
		}
	}
	// Artificial columns form the initial basis: a diagonal ±1 matrix whose
	// signs match the residuals, so the basis inverse is the same diagonal.
	for i := 0; i < m; i++ {
		row := st.binv[i]
		for k := range row {
			row[k] = 0
		}
		j := n + m + i
		if resid[i] >= 0 {
			st.cols[j].val[0] = 1
			st.binv[i][i] = 1
			st.xb[i] = resid[i]
		} else {
			st.cols[j].val[0] = -1
			st.binv[i][i] = -1
			st.xb[i] = -resid[i]
		}
		st.status[j] = inBasis
		st.basis[i] = j
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := pr.phase1
	for j := range phase1 {
		phase1[j] = 0
	}
	for i := 0; i < m; i++ {
		phase1[n+m+i] = 1
	}
	stat := st.optimize(phase1)
	if st.interrupted {
		return st.ctx.Err()
	}
	if stat == IterLimit {
		sol.Status = IterLimit
		sol.X = st.extract(n, pr.xout)
		sol.Iterations += st.iters
		return nil
	}
	if st.objective(phase1) > 1e-6 {
		sol.Status = Infeasible
		sol.Iterations += st.iters
		pr.rayValid = true
		return nil
	}
	// Pin artificials to zero so phase 2 cannot reuse them.
	for i := 0; i < m; i++ {
		st.up[n+m+i] = 0
	}
	// Phase 2: the real objective (zero on slacks and artificials).
	phase2 := pr.phase2
	copy(phase2, p.Obj)
	for j := n; j < len(phase2); j++ {
		phase2[j] = 0
	}
	stat = st.optimize(phase2)
	if st.interrupted {
		return st.ctx.Err()
	}
	x := st.extract(n, pr.xout)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Obj[j] * x[j]
	}
	sol.X = x
	sol.Obj = obj
	sol.Iterations += st.iters
	switch stat {
	case Unbounded:
		sol.Status = Unbounded
	case IterLimit:
		sol.Status = IterLimit
	default:
		sol.Status = Optimal
		pr.solveSeq++
		pr.liveID = pr.solveSeq
	}
	return nil
}

// InfeasibilityRay derives the Farkas ray of the most recent SolveBounds
// call if (and only if) it ended with a cold phase-1 Infeasible verdict:
// y = c_B·B⁻¹ with the phase-1 costs (1 on artificials). At the phase-1
// optimum with positive objective, max over the bound box of y·Ax is
// strictly below y·b, so y certifies that no x satisfies the rows — a
// certificate a caller can cheaply re-verify against a *related* problem
// (see nfold.Problem.CertifiesInfeasible) without trusting this
// derivation. Warm-restore infeasibility verdicts and all non-infeasible
// outcomes return nil. The derivation reads the solver's terminal state,
// so call it before the next solve on this Prepared; the returned slice is
// freshly allocated and safe to retain.
func (pr *Prepared) InfeasibilityRay() []float64 {
	if pr.released || !pr.rayValid {
		return nil
	}
	st := &pr.st
	ray := make([]float64, pr.m)
	for k := 0; k < pr.m; k++ {
		cb := pr.phase1[st.basis[k]]
		if cb == 0 {
			continue
		}
		row := st.binv[k]
		for i := 0; i < pr.m; i++ {
			ray[i] += cb * row[i]
		}
	}
	return ray
}

// Solve runs the two-phase bounded-variable revised simplex.
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve under a context: cancellation is polled every
// ctxCheckEvery pivots, so a canceled context aborts the solve with
// ctx.Err() within a bounded number of pivot steps. The PTAS guess search
// relies on this to abandon losing speculative makespan probes promptly.
//
// Callers solving the same rows repeatedly under changing bounds should use
// Prepare/SolveBounds instead: this convenience wrapper re-prepares (and
// copies the solution out of the pooled scratch) on every call.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	pr, err := Prepare(p)
	if err != nil {
		return nil, err
	}
	defer pr.Release()
	sol := &Solution{}
	if err := pr.SolveBounds(ctx, nil, nil, nil, sol); err != nil {
		return nil, err
	}
	if sol.X != nil {
		sol.X = append([]float64(nil), sol.X...)
	}
	return sol, nil
}

func (st *simplexState) nonbasicValue(j int) float64 {
	switch st.status[j] {
	case atLower:
		return st.lo[j]
	case atUpper:
		return st.up[j]
	default:
		return 0
	}
}

func (st *simplexState) objective(obj []float64) float64 {
	total := 0.0
	for i, j := range st.basis {
		total += obj[j] * st.xb[i]
	}
	for j := 0; j < st.ncols; j++ {
		if st.status[j] != inBasis {
			total += obj[j] * st.nonbasicValue(j)
		}
	}
	return total
}

// optimize runs simplex pivots on the given objective until optimality,
// unboundedness or the iteration cap.
func (st *simplexState) optimize(obj []float64) Status {
	m := st.m
	y := st.y
	w := st.w
	for ; st.iters < st.maxIters; st.iters++ {
		if st.done != nil && st.iters%ctxCheckEvery == 0 {
			select {
			case <-st.done:
				st.interrupted = true
				return IterLimit
			default:
			}
		}
		// Dual vector y = obj_B^T · B^{-1}.
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for k, j := range st.basis {
			if c := obj[j]; c != 0 {
				row := st.binv[k]
				for i := 0; i < m; i++ {
					y[i] += c * row[i]
				}
			}
		}
		// Pricing: pick an entering variable.
		enter, dir := -1, 0.0
		best := costTol
		for j := 0; j < st.ncols; j++ {
			stj := st.status[j]
			if stj == inBasis || st.lo[j] == st.up[j] {
				continue
			}
			col := st.cols[j]
			d := obj[j]
			for k, i := range col.idx {
				d -= y[i] * col.val[k]
			}
			var cand float64 // improvement magnitude, candidate direction
			var cdir float64
			switch stj {
			case atLower:
				if d < -costTol {
					cand, cdir = -d, 1
				}
			case atUpper:
				if d > costTol {
					cand, cdir = d, -1
				}
			case atFree:
				if d < -costTol {
					cand, cdir = -d, 1
				} else if d > costTol {
					cand, cdir = d, -1
				}
			}
			if cdir == 0 {
				continue
			}
			if st.bland {
				enter, dir = j, cdir
				break
			}
			if cand > best {
				best, enter, dir = cand, j, cdir
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Direction in basic space: w = B^{-1}·A_enter.
		colE := st.cols[enter]
		for i := 0; i < m; i++ {
			wi := 0.0
			row := st.binv[i]
			for k, ci := range colE.idx {
				wi += row[ci] * colE.val[k]
			}
			w[i] = wi
		}
		// Ratio test: largest step t ≥ 0 keeping everything in bounds.
		const tieTol = 1e-12
		tMax := st.up[enter] - st.lo[enter] // bound-flip limit
		leave := -1
		leaveAt := atLower
		consider := func(k int, t float64, at varStatus) {
			if t < 0 {
				t = 0
			}
			switch {
			case t < tMax-tieTol:
				tMax, leave, leaveAt = t, k, at
			case t < tMax+tieTol && leave >= 0 && st.bland && st.basis[k] < st.basis[leave]:
				// Bland's rule breaks ties toward the smallest variable
				// index, which guarantees termination under degeneracy.
				leave, leaveAt = k, at
			}
		}
		for k := 0; k < m; k++ {
			delta := -dir * w[k] // d(xb_k)/dt
			switch bk := st.basis[k]; {
			case delta > pivotTol:
				if lim := st.up[bk]; !math.IsInf(lim, 1) {
					consider(k, (lim-st.xb[k])/delta, atUpper)
				}
			case delta < -pivotTol:
				if lim := st.lo[bk]; !math.IsInf(lim, -1) {
					consider(k, (lim-st.xb[k])/delta, atLower)
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax <= pivotTol {
			st.degenerate++
			if st.degenerate > blandAfter {
				st.bland = true
			}
		} else {
			st.degenerate = 0
		}
		// Move the basic values.
		for k := 0; k < m; k++ {
			st.xb[k] += -dir * w[k] * tMax
		}
		if leave < 0 {
			// Bound flip: the entering variable traverses its whole range.
			if st.status[enter] == atLower {
				st.status[enter] = atUpper
			} else {
				st.status[enter] = atLower
			}
			continue
		}
		// Pivot: enter replaces basis[leave].
		enterVal := st.nonbasicValue(enter) + dir*tMax
		leaving := st.basis[leave]
		st.status[leaving] = leaveAt
		st.status[enter] = inBasis
		st.basis[leave] = enter
		st.pivotBinv(leave, w)
		st.xb[leave] = enterVal
		if (st.iters+1)%refactorEvery == 0 {
			if err := st.refactor(); err != nil {
				// Singular refactor should not happen; treat as limit.
				return IterLimit
			}
		}
	}
	return IterLimit
}

// pivotBinv applies the eta update for a pivot in basic row r with direction
// vector w = B^{-1}A_enter.
func (st *simplexState) pivotBinv(r int, w []float64) {
	m := st.m
	piv := w[r]
	rowR := st.binv[r]
	inv := 1 / piv
	for i := 0; i < m; i++ {
		rowR[i] *= inv
	}
	for k := 0; k < m; k++ {
		if k == r {
			continue
		}
		f := w[k]
		if f == 0 {
			continue
		}
		row := st.binv[k]
		for i := 0; i < m; i++ {
			row[i] -= f * rowR[i]
		}
	}
}

// refactor rebuilds binv from the basis columns via Gauss-Jordan with
// partial pivoting and recomputes the basic values, washing out drift.
func (st *simplexState) refactor() error {
	m := st.m
	// Assemble [B | I].
	aug := st.aug
	for i := 0; i < m; i++ {
		row := aug[i]
		for k := range row {
			row[k] = 0
		}
		row[m+i] = 1
	}
	for k, j := range st.basis {
		col := st.cols[j]
		for ki, i := range col.idx {
			aug[i][k] = col.val[ki]
		}
	}
	for col := 0; col < m; col++ {
		piv, pv := col, math.Abs(aug[col][col])
		for r := col + 1; r < m; r++ {
			if a := math.Abs(aug[r][col]); a > pv {
				piv, pv = r, a
			}
		}
		if pv < 1e-12 {
			return fmt.Errorf("lp: singular basis during refactor")
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := 1 / aug[col][col]
		for c := col; c < 2*m; c++ {
			aug[col][c] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for c := col; c < 2*m; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(st.binv[i], aug[i][m:])
	}
	st.recomputeXB()
	return nil
}

// recomputeXB refreshes the basic values from the basis inverse:
// xb = B^{-1}(b − Σ_nonbasic A_j v_j).
func (st *simplexState) recomputeXB() {
	m := st.m
	rhs := st.rhs
	copy(rhs, st.b)
	for j := 0; j < st.ncols; j++ {
		if st.status[j] == inBasis {
			continue
		}
		if v := st.nonbasicValue(j); v != 0 {
			col := st.cols[j]
			for k, i := range col.idx {
				rhs[i] -= col.val[k] * v
			}
		}
	}
	for i := 0; i < m; i++ {
		xi := 0.0
		row := st.binv[i]
		for k := 0; k < m; k++ {
			xi += row[k] * rhs[k]
		}
		st.xb[i] = xi
	}
}

// extract writes the structural variable values into out.
func (st *simplexState) extract(n int, out []float64) []float64 {
	x := out[:n]
	for j := 0; j < n; j++ {
		if st.status[j] != inBasis {
			x[j] = st.nonbasicValue(j)
		}
	}
	for k, j := range st.basis {
		if j < n {
			x[j] = st.xb[k]
		}
	}
	return x
}
