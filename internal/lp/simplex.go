package lp

import (
	"context"
	"fmt"
	"math"
)

const (
	costTol  = 1e-9 // reduced-cost optimality tolerance
	pivotTol = 1e-9 // minimum magnitude of an acceptable pivot element
	feasTol  = 1e-7 // bound/constraint feasibility tolerance
	// refactorEvery bounds error drift: the basis inverse is rebuilt from
	// scratch after this many pivots.
	refactorEvery = 64
	// blandAfter switches to Bland's anti-cycling rule after this many
	// consecutive degenerate pivots.
	blandAfter = 40
)

// spCol is a sparse column of the standard-form constraint matrix.
type spCol struct {
	idx []int32
	val []float64
}

type varStatus int8

const (
	atLower varStatus = iota
	atUpper
	atFree // nonbasic free variable resting at zero
	inBasis
)

// simplexState is the mutable solver state over the standard-form program
// min obj·x  s.t.  Acol x = b,  lo ≤ x ≤ up, where columns comprise the
// structural variables, one slack per row, and one artificial per row.
type simplexState struct {
	m, ncols    int
	cols        []spCol // ncols sparse columns of logical length m
	lo, up      []float64
	b           []float64
	status      []varStatus
	basis       []int       // m basic column indices
	binv        [][]float64 // dense m×m basis inverse
	xb          []float64   // values of basic variables
	iters       int
	maxIters    int
	degenerate  int // consecutive degenerate pivots
	bland       bool
	done        <-chan struct{} // cancellation signal, checked between pivots
	ctxErr      func() error
	interrupted bool // the done channel fired mid-optimize
}

// ctxCheckEvery is how many simplex pivots pass between cancellation polls;
// one pivot is O(m·ncols), so cancellation latency stays well below one
// branch-and-bound node.
const ctxCheckEvery = 32

// Solve runs the two-phase bounded-variable revised simplex.
func Solve(p *Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// SolveCtx is Solve under a context: cancellation is polled every
// ctxCheckEvery pivots, so a canceled context aborts the solve with
// ctx.Err() within a bounded number of pivot steps. The PTAS guess search
// relies on this to abandon losing speculative makespan probes promptly.
func SolveCtx(ctx context.Context, p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m := len(p.A)
	n := p.NumVars
	st := &simplexState{
		m:        m,
		ncols:    n + 2*m,
		b:        append([]float64(nil), p.B...),
		maxIters: 20000 + 200*(n+2*m),
		done:     ctx.Done(),
		ctxErr:   ctx.Err,
	}
	st.cols = make([]spCol, st.ncols)
	st.lo = make([]float64, st.ncols)
	st.up = make([]float64, st.ncols)
	st.status = make([]varStatus, st.ncols)
	// Structural columns.
	for j := 0; j < n; j++ {
		var col spCol
		for i := 0; i < m; i++ {
			if v := p.A[i][j]; v != 0 {
				col.idx = append(col.idx, int32(i))
				col.val = append(col.val, v)
			}
		}
		st.cols[j] = col
		st.lo[j], st.up[j] = p.Lower[j], p.Upper[j]
	}
	// Slack columns: row i gets slack n+i with A x + s = b.
	for i := 0; i < m; i++ {
		col := spCol{idx: []int32{int32(i)}, val: []float64{1}}
		j := n + i
		st.cols[j] = col
		switch p.Rel[i] {
		case LE:
			st.lo[j], st.up[j] = 0, math.Inf(1)
		case GE:
			st.lo[j], st.up[j] = math.Inf(-1), 0
		case EQ:
			st.lo[j], st.up[j] = 0, 0
		}
	}
	// Initial nonbasic statuses.
	for j := 0; j < n+m; j++ {
		switch {
		case !math.IsInf(st.lo[j], -1):
			st.status[j] = atLower
		case !math.IsInf(st.up[j], 1):
			st.status[j] = atUpper
		default:
			st.status[j] = atFree
		}
	}
	// Residuals at the initial nonbasic point determine artificial signs.
	resid := make([]float64, m)
	copy(resid, st.b)
	for j := 0; j < n+m; j++ {
		if v := st.nonbasicValue(j); v != 0 {
			col := st.cols[j]
			for k, i := range col.idx {
				resid[i] -= col.val[k] * v
			}
		}
	}
	// Artificial columns form the initial basis: a diagonal ±1 matrix whose
	// signs match the residuals, so the basis inverse is the same diagonal.
	st.basis = make([]int, m)
	st.xb = make([]float64, m)
	st.binv = identity(m)
	for i := 0; i < m; i++ {
		col := spCol{idx: []int32{int32(i)}, val: []float64{1}}
		j := n + m + i
		if resid[i] >= 0 {
			st.xb[i] = resid[i]
		} else {
			col.val[0] = -1
			st.binv[i][i] = -1
			st.xb[i] = -resid[i]
		}
		st.cols[j] = col
		st.lo[j], st.up[j] = 0, math.Inf(1)
		st.status[j] = inBasis
		st.basis[i] = j
	}

	// Phase 1: minimize the sum of artificials.
	phase1 := make([]float64, st.ncols)
	for i := 0; i < m; i++ {
		phase1[n+m+i] = 1
	}
	stat := st.optimize(phase1)
	if st.interrupted {
		return nil, st.ctxErr()
	}
	if stat == IterLimit {
		return &Solution{Status: IterLimit, X: st.extract(n), Iterations: st.iters}, nil
	}
	if st.objective(phase1) > 1e-6 {
		return &Solution{Status: Infeasible, Iterations: st.iters}, nil
	}
	// Pin artificials to zero so phase 2 cannot reuse them.
	for i := 0; i < m; i++ {
		j := n + m + i
		st.up[j] = 0
	}
	// Phase 2: the real objective (zero on slacks and artificials).
	phase2 := make([]float64, st.ncols)
	copy(phase2, p.Obj)
	stat = st.optimize(phase2)
	if st.interrupted {
		return nil, st.ctxErr()
	}
	x := st.extract(n)
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.Obj[j] * x[j]
	}
	switch stat {
	case Unbounded:
		return &Solution{Status: Unbounded, X: x, Obj: obj, Iterations: st.iters}, nil
	case IterLimit:
		return &Solution{Status: IterLimit, X: x, Obj: obj, Iterations: st.iters}, nil
	}
	return &Solution{Status: Optimal, X: x, Obj: obj, Iterations: st.iters}, nil
}

func identity(m int) [][]float64 {
	out := make([][]float64, m)
	for i := range out {
		out[i] = make([]float64, m)
		out[i][i] = 1
	}
	return out
}

func (st *simplexState) nonbasicValue(j int) float64 {
	switch st.status[j] {
	case atLower:
		return st.lo[j]
	case atUpper:
		return st.up[j]
	default:
		return 0
	}
}

func (st *simplexState) objective(obj []float64) float64 {
	total := 0.0
	for i, j := range st.basis {
		total += obj[j] * st.xb[i]
	}
	for j := 0; j < st.ncols; j++ {
		if st.status[j] != inBasis {
			total += obj[j] * st.nonbasicValue(j)
		}
	}
	return total
}

// optimize runs simplex pivots on the given objective until optimality,
// unboundedness or the iteration cap.
func (st *simplexState) optimize(obj []float64) Status {
	m := st.m
	y := make([]float64, m)
	w := make([]float64, m)
	for ; st.iters < st.maxIters; st.iters++ {
		if st.done != nil && st.iters%ctxCheckEvery == 0 {
			select {
			case <-st.done:
				st.interrupted = true
				return IterLimit
			default:
			}
		}
		// Dual vector y = obj_B^T · B^{-1}.
		for i := 0; i < m; i++ {
			y[i] = 0
		}
		for k, j := range st.basis {
			if c := obj[j]; c != 0 {
				row := st.binv[k]
				for i := 0; i < m; i++ {
					y[i] += c * row[i]
				}
			}
		}
		// Pricing: pick an entering variable.
		enter, dir := -1, 0.0
		best := costTol
		for j := 0; j < st.ncols; j++ {
			stj := st.status[j]
			if stj == inBasis || st.lo[j] == st.up[j] {
				continue
			}
			col := st.cols[j]
			d := obj[j]
			for k, i := range col.idx {
				d -= y[i] * col.val[k]
			}
			var cand float64 // improvement magnitude, candidate direction
			var cdir float64
			switch stj {
			case atLower:
				if d < -costTol {
					cand, cdir = -d, 1
				}
			case atUpper:
				if d > costTol {
					cand, cdir = d, -1
				}
			case atFree:
				if d < -costTol {
					cand, cdir = -d, 1
				} else if d > costTol {
					cand, cdir = d, -1
				}
			}
			if cdir == 0 {
				continue
			}
			if st.bland {
				enter, dir = j, cdir
				break
			}
			if cand > best {
				best, enter, dir = cand, j, cdir
			}
		}
		if enter < 0 {
			return Optimal
		}
		// Direction in basic space: w = B^{-1}·A_enter.
		colE := st.cols[enter]
		for i := 0; i < m; i++ {
			wi := 0.0
			row := st.binv[i]
			for k, ci := range colE.idx {
				wi += row[ci] * colE.val[k]
			}
			w[i] = wi
		}
		// Ratio test: largest step t ≥ 0 keeping everything in bounds.
		const tieTol = 1e-12
		tMax := st.up[enter] - st.lo[enter] // bound-flip limit
		leave := -1
		leaveAt := atLower
		consider := func(k int, t float64, at varStatus) {
			if t < 0 {
				t = 0
			}
			switch {
			case t < tMax-tieTol:
				tMax, leave, leaveAt = t, k, at
			case t < tMax+tieTol && leave >= 0 && st.bland && st.basis[k] < st.basis[leave]:
				// Bland's rule breaks ties toward the smallest variable
				// index, which guarantees termination under degeneracy.
				leave, leaveAt = k, at
			}
		}
		for k := 0; k < m; k++ {
			delta := -dir * w[k] // d(xb_k)/dt
			switch bk := st.basis[k]; {
			case delta > pivotTol:
				if lim := st.up[bk]; !math.IsInf(lim, 1) {
					consider(k, (lim-st.xb[k])/delta, atUpper)
				}
			case delta < -pivotTol:
				if lim := st.lo[bk]; !math.IsInf(lim, -1) {
					consider(k, (lim-st.xb[k])/delta, atLower)
				}
			}
		}
		if math.IsInf(tMax, 1) {
			return Unbounded
		}
		if tMax < 0 {
			tMax = 0
		}
		if tMax <= pivotTol {
			st.degenerate++
			if st.degenerate > blandAfter {
				st.bland = true
			}
		} else {
			st.degenerate = 0
		}
		// Move the basic values.
		for k := 0; k < m; k++ {
			st.xb[k] += -dir * w[k] * tMax
		}
		if leave < 0 {
			// Bound flip: the entering variable traverses its whole range.
			if st.status[enter] == atLower {
				st.status[enter] = atUpper
			} else {
				st.status[enter] = atLower
			}
			continue
		}
		// Pivot: enter replaces basis[leave].
		enterVal := st.nonbasicValue(enter) + dir*tMax
		leaving := st.basis[leave]
		st.status[leaving] = leaveAt
		st.status[enter] = inBasis
		st.basis[leave] = enter
		st.pivotBinv(leave, w)
		st.xb[leave] = enterVal
		if (st.iters+1)%refactorEvery == 0 {
			if err := st.refactor(); err != nil {
				// Singular refactor should not happen; treat as limit.
				return IterLimit
			}
		}
	}
	return IterLimit
}

// pivotBinv applies the eta update for a pivot in basic row r with direction
// vector w = B^{-1}A_enter.
func (st *simplexState) pivotBinv(r int, w []float64) {
	m := st.m
	piv := w[r]
	rowR := st.binv[r]
	inv := 1 / piv
	for i := 0; i < m; i++ {
		rowR[i] *= inv
	}
	for k := 0; k < m; k++ {
		if k == r {
			continue
		}
		f := w[k]
		if f == 0 {
			continue
		}
		row := st.binv[k]
		for i := 0; i < m; i++ {
			row[i] -= f * rowR[i]
		}
	}
}

// refactor rebuilds binv from the basis columns via Gauss-Jordan with
// partial pivoting and recomputes the basic values, washing out drift.
func (st *simplexState) refactor() error {
	m := st.m
	// Assemble [B | I].
	aug := make([][]float64, m)
	for i := 0; i < m; i++ {
		aug[i] = make([]float64, 2*m)
		aug[i][m+i] = 1
	}
	for k, j := range st.basis {
		col := st.cols[j]
		for ki, i := range col.idx {
			aug[i][k] = col.val[ki]
		}
	}
	for col := 0; col < m; col++ {
		piv, pv := col, math.Abs(aug[col][col])
		for r := col + 1; r < m; r++ {
			if a := math.Abs(aug[r][col]); a > pv {
				piv, pv = r, a
			}
		}
		if pv < 1e-12 {
			return fmt.Errorf("lp: singular basis during refactor")
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := 1 / aug[col][col]
		for c := col; c < 2*m; c++ {
			aug[col][c] *= inv
		}
		for r := 0; r < m; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for c := col; c < 2*m; c++ {
				aug[r][c] -= f * aug[col][c]
			}
		}
	}
	for i := 0; i < m; i++ {
		copy(st.binv[i], aug[i][m:])
	}
	// Recompute basic values: xb = B^{-1}(b - Σ_nonbasic A_j v_j).
	rhs := make([]float64, m)
	copy(rhs, st.b)
	for j := 0; j < st.ncols; j++ {
		if st.status[j] == inBasis {
			continue
		}
		if v := st.nonbasicValue(j); v != 0 {
			col := st.cols[j]
			for k, i := range col.idx {
				rhs[i] -= col.val[k] * v
			}
		}
	}
	for i := 0; i < m; i++ {
		xi := 0.0
		row := st.binv[i]
		for k := 0; k < m; k++ {
			xi += row[k] * rhs[k]
		}
		st.xb[i] = xi
	}
	return nil
}

// extract returns the structural variable values.
func (st *simplexState) extract(n int) []float64 {
	x := make([]float64, n)
	for j := 0; j < n; j++ {
		if st.status[j] != inBasis {
			x[j] = st.nonbasicValue(j)
		}
	}
	for k, j := range st.basis {
		if j < n {
			x[j] = st.xb[k]
		}
	}
	return x
}
