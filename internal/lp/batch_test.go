package lp

import (
	"context"
	"math/rand"
	"testing"
)

// TestSolveBatchMatchesSolveBounds pins the batched sibling kernel's
// contract: for any warm basis and any list of sibling bound patches, the
// batch returns exactly what the same number of independent SolveBounds
// calls would — status, X and iteration counts bit for bit — while the
// cached restore actually amortizes the refactorization (same verdicts, by
// construction, whatever path restored the basis).
func TestSolveBatchMatchesSolveBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ctx := context.Background()
	for trial := 0; trial < 40; trial++ {
		p := randomBoundedLP(rng, 5, 10)
		pr, err := Prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		var root Solution
		if err := pr.SolveBounds(ctx, nil, nil, nil, &root); err != nil {
			t.Fatal(err)
		}
		if root.Status != Optimal {
			pr.Release()
			continue
		}
		warm := pr.CaptureBasis()
		// Sibling items: each tightens one variable, branch-child style.
		k := 2 + rng.Intn(3)
		items := make([]BatchBounds, k)
		for i := range items {
			lower := append([]float64(nil), p.Lower...)
			upper := append([]float64(nil), p.Upper...)
			j := rng.Intn(p.NumVars)
			if rng.Intn(2) == 0 {
				upper[j] = lower[j] // often infeasible: exercises the dual restore
			} else {
				upper[j] = upper[j] - 1
			}
			items[i] = BatchBounds{Lower: lower, Upper: upper}
		}
		out := make([]Solution, k)
		bases := make([]*Basis, k)
		if err := pr.SolveBatch(ctx, items, warm, out, bases); err != nil {
			t.Fatal(err)
		}
		// Reference: independent SolveBounds calls on a fresh Prepared with
		// the same warm basis.
		ref, err := Prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		for i := range items {
			var want Solution
			if err := ref.SolveBounds(ctx, items[i].Lower, items[i].Upper, warm, &want); err != nil {
				t.Fatal(err)
			}
			got := out[i]
			if got.Status != want.Status {
				t.Fatalf("trial %d item %d: status %v != %v", trial, i, got.Status, want.Status)
			}
			if want.Status == Optimal {
				for j := range want.X {
					if got.X[j] != want.X[j] {
						t.Fatalf("trial %d item %d: X[%d] = %v != %v", trial, i, j, got.X[j], want.X[j])
					}
				}
				wantBasis := ref.CaptureBasis()
				if (bases[i] == nil) != (wantBasis == nil) {
					t.Fatalf("trial %d item %d: basis presence %v != %v", trial, i, bases[i] != nil, wantBasis != nil)
				}
			}
		}
		// Batch solutions must survive later solves on the same Prepared
		// (SolveBounds aliases its scratch; SolveBatch copies).
		snapshot := make([][]float64, k)
		for i := range out {
			if out[i].X != nil {
				snapshot[i] = append([]float64(nil), out[i].X...)
			}
		}
		var again Solution
		if err := pr.SolveBounds(ctx, nil, nil, nil, &again); err != nil {
			t.Fatal(err)
		}
		for i := range out {
			for j := range snapshot[i] {
				if out[i].X[j] != snapshot[i][j] {
					t.Fatalf("trial %d: batch X[%d][%d] mutated by a later solve", trial, i, j)
				}
			}
		}
		pr.Release()
		ref.Release()
	}
}

// TestSolveBatchCapturedBasesUsable feeds a batch's captured child bases
// back as warm starts — the parallel branch-and-bound's actual usage — and
// checks the grandchild verdicts agree with cold solves.
func TestSolveBatchCapturedBasesUsable(t *testing.T) {
	rng := rand.New(rand.NewSource(67))
	ctx := context.Background()
	used := 0
	for trial := 0; trial < 30; trial++ {
		p := randomBoundedLP(rng, 5, 10)
		pr, err := Prepare(p)
		if err != nil {
			t.Fatal(err)
		}
		var root Solution
		if err := pr.SolveBounds(ctx, nil, nil, nil, &root); err != nil {
			t.Fatal(err)
		}
		if root.Status != Optimal {
			pr.Release()
			continue
		}
		warm := pr.CaptureBasis()
		j := rng.Intn(p.NumVars)
		lower := append([]float64(nil), p.Lower...)
		upperA := append([]float64(nil), p.Upper...)
		upperB := append([]float64(nil), p.Upper...)
		upperA[j] = lower[j]
		upperB[j] = upperB[j] - 1
		items := []BatchBounds{{Lower: lower, Upper: upperA}, {Lower: lower, Upper: upperB}}
		out := make([]Solution, 2)
		bases := make([]*Basis, 2)
		if err := pr.SolveBatch(ctx, items, warm, out, bases); err != nil {
			t.Fatal(err)
		}
		for i := range items {
			if bases[i] == nil {
				continue
			}
			used++
			// Grandchild: tighten another variable below item i.
			j2 := (j + 1 + rng.Intn(p.NumVars-1)) % p.NumVars
			gUpper := append([]float64(nil), items[i].Upper...)
			gUpper[j2] = lower[j2]
			var warmSol, coldSol Solution
			if err := pr.SolveBounds(ctx, items[i].Lower, gUpper, bases[i], &warmSol); err != nil {
				t.Fatal(err)
			}
			cold, err := Prepare(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := cold.SolveBounds(ctx, items[i].Lower, gUpper, nil, &coldSol); err != nil {
				t.Fatal(err)
			}
			if warmSol.Status != coldSol.Status {
				t.Fatalf("trial %d item %d: grandchild warm %v != cold %v", trial, i, warmSol.Status, coldSol.Status)
			}
			if coldSol.Status == Optimal {
				for idx := range coldSol.X {
					if warmSol.X[idx] != coldSol.X[idx] {
						t.Fatalf("trial %d item %d: grandchild X[%d] diverged", trial, i, idx)
					}
				}
			}
			cold.Release()
		}
		pr.Release()
	}
	if used == 0 {
		t.Fatal("no batch item ever captured a usable basis; the test is vacuous")
	}
}

// TestSolveBatchShortSlices pins the argument validation: an out (or bases)
// slice shorter than the item list is an error, not a silent truncation.
func TestSolveBatchShortSlices(t *testing.T) {
	p := randomBoundedLP(rand.New(rand.NewSource(71)), 3, 6)
	pr, err := Prepare(p)
	if err != nil {
		t.Fatal(err)
	}
	defer pr.Release()
	items := []BatchBounds{{}, {}}
	if err := pr.SolveBatch(context.Background(), items, nil, make([]Solution, 1), nil); err == nil {
		t.Fatal("short out slice accepted")
	}
	if err := pr.SolveBatch(context.Background(), items, nil, make([]Solution, 2), make([]*Basis, 1)); err == nil {
		t.Fatal("short bases slice accepted")
	}
}
