// The service example is a from-scratch HTTP client for ccserved: it
// generates an instance, submits it as JSON, reads back the schedule,
// validates it locally against the submitted instance, and prints the
// server's coalescing/caching counters. It uses only net/http,
// encoding/json and the public ccsched codecs — exactly what a client in
// another language would reimplement.
//
// Run the daemon first:
//
//	go run ./cmd/ccserved -addr :8080
//	go run ./examples/service -url http://localhost:8080
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/big"
	"net/http"

	"ccsched"
)

// solveRequest mirrors ccserved's POST /v1/solve body.
type solveRequest struct {
	Instance  *ccsched.Instance `json:"instance"`
	Options   ccsched.Options   `json:"options"`
	TimeoutMs int64             `json:"timeout_ms,omitempty"`
}

// solveResponse mirrors the fields of the reply this example reads.
type solveResponse struct {
	ID        string          `json:"id"`
	Status    string          `json:"status"`
	Result    *ccsched.Result `json:"result"`
	Error     string          `json:"error"`
	SolveMs   float64         `json:"solve_ms"`
	Coalesced bool            `json:"coalesced"`
	Cached    bool            `json:"cached"`
}

func main() {
	url := flag.String("url", "http://localhost:8080", "ccserved base URL")
	flag.Parse()

	in, err := ccsched.Generate("zipf", ccsched.GeneratorConfig{
		N: 60, Classes: 12, Machines: 6, Slots: 2, PMax: 100, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	body, err := json.Marshal(solveRequest{
		Instance:  in,
		Options:   ccsched.Options{Variant: ccsched.NonPreemptive, Tier: ccsched.TierApprox},
		TimeoutMs: 30000,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Submit twice: the second submission is answered without a second
	// solve (coalesced into the first while it runs, or served from the
	// result cache after it finished).
	for attempt := 1; attempt <= 2; attempt++ {
		resp, err := http.Post(*url+"/v1/solve?wait=60s", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatalf("is ccserved running at %s? %v", *url, err)
		}
		var sr solveResponse
		err = json.NewDecoder(resp.Body).Decode(&sr)
		resp.Body.Close()
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			log.Fatalf("HTTP %d: %s", resp.StatusCode, sr.Error)
		}
		// Never trust a scheduler blindly: validate the returned schedule
		// against the instance we submitted.
		if err := sr.Result.NonPreemptive.Validate(in); err != nil {
			log.Fatalf("server returned an invalid schedule: %v", err)
		}
		ratio, _ := new(big.Rat).Quo(sr.Result.Makespan, sr.Result.LowerBound).Float64()
		fmt.Printf("attempt %d: job %s makespan=%s (%.3f x certified lower bound) solve=%.1fms coalesced=%v cached=%v\n",
			attempt, sr.ID, sr.Result.Makespan.RatString(), ratio, sr.SolveMs, sr.Coalesced, sr.Cached)
	}

	var metrics map[string]any
	resp, err := http.Get(*url + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	err = json.NewDecoder(resp.Body).Decode(&metrics)
	resp.Body.Close()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("server counters: requests=%v solves=%v coalesced=%v result_cache_hits=%v\n",
		metrics["requests_total"], metrics["solves_total"],
		metrics["coalesced_hits_total"], metrics["result_cache_hits_total"])
}
