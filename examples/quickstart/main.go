// Quickstart: build a small class-constrained scheduling instance by hand
// and solve it with all three variants' 2- and 7/3-approximations, plus the
// non-preemptive PTAS, printing makespans against the certified lower
// bounds.
package main

import (
	"fmt"
	"log"

	"ccsched"
)

func main() {
	// Eight jobs in three classes, two machines, two class slots each.
	in := &ccsched.Instance{
		P:     []int64{9, 7, 6, 5, 4, 4, 3, 2},
		Class: []int{0, 1, 0, 2, 1, 2, 0, 1},
		M:     2,
		Slots: 2,
	}
	if err := ccsched.CheckFeasible(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: n=%d jobs, C=%d classes, m=%d machines, c=%d slots\n\n",
		in.N(), in.NumClasses(), in.M, in.Slots)

	for _, v := range []ccsched.Variant{ccsched.Splittable, ccsched.Preemptive, ccsched.NonPreemptive} {
		lb, err := ccsched.LowerBound(in, v)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s lower bound %s\n", v.String()+":", lb.RatString())
	}
	fmt.Println()

	s, err := ccsched.ApproxSplittable(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := s.Compact.Validate(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("splittable 2-approx:     makespan %s (%d machine groups)\n",
		s.Makespan().RatString(), len(s.Compact.Groups))

	p, err := ccsched.ApproxPreemptive(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := p.Schedule.Validate(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("preemptive 2-approx:     makespan %s (%d pieces, repacked=%v)\n",
		p.Makespan().RatString(), p.Schedule.PieceCount(), p.Repacked)

	np, err := ccsched.ApproxNonPreemptive(in)
	if err != nil {
		log.Fatal(err)
	}
	if err := np.Schedule.Validate(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-preemptive 7/3-approx: makespan %d\n", np.Makespan(in))

	res, err := ccsched.PTASNonPreemptive(in, ccsched.PTASOptions{Epsilon: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	if err := res.Schedule.Validate(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-preemptive PTAS ε=.5:  makespan %d (engine %s)\n",
		res.Makespan(in), res.Report.Engine)

	_, opt, err := ccsched.ExactNonPreemptive(in)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("non-preemptive optimum:    makespan %d\n", opt)
}
