// Parallelsolve: the unified context-aware Solve API end to end — a
// generated workload solved through the PTAS tier with a deadline,
// speculative parallel makespan-guess probes, and a shared feasibility
// cache that makes the repeat solve skip every guess ILP.
//
// Run with:
//
//	go run ./examples/parallelsolve
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"ccsched"
)

func main() {
	// A video-on-demand-shaped workload: Zipf-popular movies (classes)
	// across 5 servers with 3 content slots each.
	in, err := ccsched.Generate("zipf", ccsched.GeneratorConfig{
		N: 60, Classes: 12, Machines: 5, Slots: 3, PMax: 500, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("instance: n=%d jobs, C=%d classes, m=%d machines, c=%d slots\n\n",
		in.N(), in.NumClasses(), in.M, in.Slots)

	// A deadline bounds the whole solve: cancellation reaches the ILP
	// engines at iteration boundaries, so even a mid-ILP solve stops
	// within one augmentation iteration or branch-and-bound node.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	cache := ccsched.NewFeasibilityCache()
	opts := ccsched.Options{
		Variant:     ccsched.Splittable,
		Tier:        ccsched.TierPTAS,
		Epsilon:     0.5,
		Parallelism: 4, // speculative guess probes; results are bit-identical at any setting
		Cache:       cache,
		MaxNodes:    300, // bound each probe's exact engine
	}

	start := time.Now()
	res, err := ccsched.Solve(ctx, in, opts)
	if err != nil {
		log.Fatal(err) // a missed deadline surfaces as context.DeadlineExceeded
	}
	cold := time.Since(start)
	if err := res.CompactSplit.Validate(in); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cold solve: makespan %s, lower bound %s\n",
		res.Makespan.RatString(), res.LowerBound.RatString())
	fmt.Printf("            %d guess probes (engine %s), %s\n\n",
		res.Report.Guesses, res.Report.Engine, cold.Round(time.Millisecond))

	// Identical workload, warm cache: every guess verdict is memoized, so
	// no ILP is solved again.
	start = time.Now()
	res2, err := ccsched.Solve(ctx, in, opts)
	if err != nil {
		log.Fatal(err)
	}
	warm := time.Since(start)
	fmt.Printf("warm solve: makespan %s (identical: %v), %d cache hits, %s\n",
		res2.Makespan.RatString(), res2.Makespan.Cmp(res.Makespan) == 0,
		res2.Report.CacheHits, warm.Round(time.Millisecond))
}
